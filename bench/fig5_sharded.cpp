// High-concurrency serving sweep over the sharded CPU backend: measured
// request throughput and latency of the conflict-aware multi-worker
// ServingEngine versus worker-lane and shard counts — the Fig. 5
// latency/throughput trade re-run with the parallelism the paper's
// hardware Updater exploits (per-vertex chronological writes, no global
// serialization) mapped onto CPU threads.
//
// The submit loop saturates the bounded queue, so every micro-batch forms
// at the size cap and throughput is limited by batch service time and
// footprint conflicts only. Rows cover both conflict policies:
//   * relaxed       — write footprints disjoint (bounded-staleness reads)
//   * deterministic — read footprints tracked too; bit-identical to "cpu"
// plus, with --pipelined (default on), the staged dataflow pipeline: one
// row per policy where the four engine stages of adjacent micro-batches
// overlap on stage workers instead of whole batches on lanes.
// --require_pipelined_speedup gates the relaxed pipelined row's speedup
// over the serial single-worker baseline (report-only on one core — stage
// overlap needs real parallel hardware, same convention as the kernel
// sweep's batched-GRU gate).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench/common.hpp"
#include "perf/auto_tuner.hpp"
#include "runtime/serving.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{
      .edge_scale = "2.0", .batch = "32", .memory_budget = "0",
      .autotune = "0"};
  bench::add_common_flags(args, defaults);
  args.add_flag("users", "20000", "synthetic users (graph size drives "
                                  "footprint conflict rate)");
  args.add_flag("items", "20000", "synthetic items");
  args.add_flag("events", "8000", "serving requests per configuration");
  args.add_flag("shards", "4,64", "comma-separated shard counts to sweep");
  args.add_flag("pipelined", "1", "also sweep the staged pipeline mode");
  args.add_flag("pipeline_depth", "4", "in-flight batches (StageContext "
                                       "slots) in pipelined mode");
  args.add_flag("require_pipelined_speedup", "0",
                "fail unless pipelined relaxed >= this x serial 1-worker "
                "throughput (0 = report only; always report-only on 1 core)");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);

  bench::banner(
      "Fig. 5 (sharded) — serving throughput vs workers & shards",
      "Zhou et al., IPDPS'22, Fig. 5 + §II-A per-vertex write parallelism");

  // A sparse, low-skew interaction graph: footprints of consecutive
  // micro-batches are usually disjoint, which is what lane-level
  // parallelism feeds on. (The default Zipf-1.4 users put one hot user in
  // ~30% of all events — every batch would conflict with every other, the
  // workload where the scheduler correctly degenerates to serial.)
  data::SyntheticConfig dcfg;
  dcfg.name = "sharded-serve";
  dcfg.num_users = static_cast<std::uint32_t>(args.get_int("users"));
  dcfg.num_items = static_cast<std::uint32_t>(args.get_int("items"));
  dcfg.num_edges = static_cast<std::size_t>(30000.0 * common.edge_scale);
  dcfg.edge_dim = 32;
  dcfg.user_zipf_s = 0.0;     // uniform users
  dcfg.num_communities = 1;   // item picks spread over the whole catalogue
  dcfg.repeat_prob = 0.2;     // mild recency, not hot-item hammering
  dcfg.pareto_xm = 3600.0;    // a user's next event lands batches away
  dcfg.seed = 7;
  const auto ds = data::make_synthetic(dcfg);
  const auto model = bench::make_model(bench::config_for(ds, "npM"), ds);

  // Sweep 1..max_workers lanes. The sweep always goes to at least 4 so the
  // conflict scheduler is exercised everywhere; actual speedup tops out at
  // the machine's core count (flat curves on small machines are honest
  // measurements, not bench bugs).
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_workers =
      common.threads > 0 ? static_cast<std::size_t>(common.threads)
                         : std::max<std::size_t>(4, std::min<std::size_t>(8, hw));
  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= max_workers; w *= 2) worker_counts.push_back(w);

  const auto region = ds.test_range();
  const std::size_t events =
      std::min(region.size(), static_cast<std::size_t>(args.get_int("events")));
  std::printf("dataset: %zu nodes, %zu edges; serving %zu events, "
              "micro-batch cap %zu, %zu hardware thread(s)\n\n",
              static_cast<std::size_t>(ds.num_nodes()), ds.num_edges(), events,
              common.batch, hw);

  Table t({"shards", "workers", "mode", "thpt (kreq/s)", "speedup",
           "peak overlap", "in-flight", "p50 (ms)", "p95 (ms)",
           "p50 queue (ms)", "p50 service (ms)", "botlnk p95 (ms)"});

  const bool sweep_pipelined = args.get_int("pipelined") != 0;
  const auto depth =
      static_cast<std::size_t>(args.get_int("pipeline_depth"));
  const double require_speedup =
      std::stod(args.get("require_pipelined_speedup"));
  double best_pipelined_speedup = 0.0;

  for (const auto& shard_str : bench::split_csv(args.get("shards"))) {
    const auto shards = static_cast<std::size_t>(std::stoull(shard_str));
    for (const bool deterministic : {false, true}) {
      double base_rps = 0.0;
      // Worker-lane sweep, then (optionally) one staged-pipeline run per
      // policy: same backend, same stream — workers column shows the
      // pipeline depth there, and "speedup" stays relative to the serial
      // single-worker row of this (shards, policy) block.
      std::vector<std::pair<std::size_t, bool>> runs;
      for (std::size_t workers : worker_counts) runs.push_back({workers, false});
      if (sweep_pipelined) runs.push_back({depth, true});
      for (const auto& [lanes, pipelined] : runs) {
        runtime::BackendOptions bopts;
        bopts.threads = static_cast<int>(max_workers);
        bopts.shards = shards;
        bopts.memory_budget =
            bench::resolve_memory_budget(common.memory_budget, model, ds);
        auto backend = runtime::make_backend("sharded-cpu", model, ds, bopts);
        runtime::fast_forward(*backend, region.begin);

        runtime::ServingOptions sopts;
        sopts.max_batch = common.batch;
        sopts.max_wait_s = 1e-3;
        sopts.workers = pipelined ? 1 : lanes;
        sopts.pipelined = pipelined;
        sopts.pipeline_depth = depth;
        sopts.deterministic = deterministic;
        const auto s =
            bench::serve_stream(*backend, region.begin, events, sopts).stats;
        if (!pipelined && lanes == 1) base_rps = s.throughput_rps;
        const double speedup =
            base_rps > 0.0 ? s.throughput_rps / base_rps : 1.0;
        if (pipelined && !deterministic)
          best_pipelined_speedup = std::max(best_pipelined_speedup, speedup);
        const std::string mode =
            pipelined ? (deterministic ? "pipelined-det" : "pipelined")
                      : (deterministic ? "deterministic" : "relaxed");
        t.add_row({shard_str, std::to_string(lanes), mode,
                   Table::num(s.throughput_rps / 1e3, 2),
                   Table::num(speedup, 2) + "x",
                   std::to_string(s.peak_parallel_batches),
                   std::to_string(s.peak_in_flight_batches),
                   Table::num(s.p50_latency_s * 1e3, 2),
                   Table::num(s.p95_latency_s * 1e3, 2),
                   Table::num(s.p50_queue_wait_s * 1e3, 2),
                   Table::num(s.p50_service_s * 1e3, 2),
                   bench::bottleneck_cell(s)});
      }
    }
  }

  // ---- auto-tuned row: the DSE loop picks the configuration ---------------
  // Tuning runs on a throwaway backend (its calibration serves consume the
  // same stream indices); the tuned config is then measured on a fresh
  // backend over exactly the slice the sweep rows used, so the comparison
  // is apples-to-apples.
  if (common.autotune) {
    const auto first_shards = static_cast<std::size_t>(
        std::stoull(bench::split_csv(args.get("shards")).front()));
    runtime::BackendOptions bopts;
    bopts.threads = static_cast<int>(max_workers);
    bopts.shards = first_shards;
    bopts.memory_budget =
        bench::resolve_memory_budget(common.memory_budget, model, ds);
    perf::AutoTunerOptions topts;
    topts.hardware_threads = hw;
    // The search's calibration + validation serves must fit the stream
    // region (2 calibration runs + top-K validation runs).
    topts.calib_events =
        std::min<std::size_t>(topts.calib_events, region.size() / 6);
    topts.validate_events =
        std::min<std::size_t>(topts.validate_events, region.size() / 6);
    perf::TuneResult tuned;
    {
      auto scratch = runtime::make_backend("sharded-cpu", model, ds, bopts);
      runtime::fast_forward(*scratch, region.begin);
      perf::AutoTuner tuner(*scratch, topts);
      tuned = tuner.search(region.begin);
    }
    std::printf("\n%s\n", tuned.describe().c_str());
    auto backend = runtime::make_backend("sharded-cpu", model, ds, bopts);
    runtime::fast_forward(*backend, region.begin);
    const auto s =
        bench::serve_stream(*backend, region.begin, events, tuned.options)
            .stats;
    t.add_row({std::to_string(first_shards),
               std::to_string(tuned.options.pipelined
                                  ? tuned.options.pipeline_depth
                                  : tuned.options.workers),
               "auto-tuned", Table::num(s.throughput_rps / 1e3, 2), "-",
               std::to_string(s.peak_parallel_batches),
               std::to_string(s.peak_in_flight_batches),
               Table::num(s.p50_latency_s * 1e3, 2),
               Table::num(s.p95_latency_s * 1e3, 2),
               Table::num(s.p50_queue_wait_s * 1e3, 2),
               Table::num(s.p50_service_s * 1e3, 2),
               bench::bottleneck_cell(s)});
  }
  t.print(std::cout, "sharded-cpu serving sweep");
  t.write_csv("fig5_sharded.csv");

  if (sweep_pipelined) {
    std::printf("\nbest pipelined (relaxed) speedup vs serial 1-worker: "
                "%.2fx\n", best_pipelined_speedup);
    if (require_speedup > 0.0) {
      if (hw <= 1) {
        std::printf("single hardware thread: stage overlap cannot buy wall "
                    "time; %.2fx gate is report-only here\n", require_speedup);
      } else if (best_pipelined_speedup < require_speedup) {
        std::printf("FAIL: pipelined speedup %.2fx < required %.2fx\n",
                    best_pipelined_speedup, require_speedup);
        return 1;
      } else {
        std::printf("gate passed: %.2fx >= %.2fx\n", best_pipelined_speedup,
                    require_speedup);
      }
    }
  }
  return 0;
}
