// Fig. 5 (left two columns): inference latency and throughput versus batch
// size for the CPU (multi-thread) and GPU baselines running the TGN
// baseline model, and the U200/ZCU104 accelerators running the co-designed
// NP(L/M/S) models.
//
// Every platform is a runtime::make_backend case driven through the shared
// measure_stream loop — no per-backend driver code lives here.
#include <iostream>

#include "bench/common.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  // Batch sizes are the swept variable here, so no --batch flag.
  const bench::CommonFlagDefaults defaults{.batch = nullptr,
                                           .datasets = "wikipedia,reddit,gdelt",
                                           .memory_budget = "0"};
  bench::add_common_flags(args, defaults);
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;

  bench::banner("Fig. 5 (batch sweep) — latency & throughput vs batch size",
                "Zhou et al., IPDPS'22, Fig. 5 left/middle columns");

  const auto names = common.datasets;
  const std::vector<std::size_t> batch_sizes = {100, 200, 500, 1000, 2000,
                                                4000};

  for (const auto& name : names) {
    const auto ds = data::by_name(name, scale);
    // Measurement region: the test split, re-streamed per batch size.
    const auto region = ds.test_range();

    Table t({"batch", "CPU lat (ms)", "GPU lat (ms)", "U200-L (ms)",
             "U200-M (ms)", "U200-S (ms)", "ZCU104-M (ms)", "CPU thpt (kE/s)",
             "GPU thpt (kE/s)", "U200-M thpt (kE/s)", "ZCU104-M thpt (kE/s)"});

    const auto base_model =
        bench::make_model(bench::config_for(ds, "baseline"), ds);
    // Co-designed models for the FPGA runs.
    std::vector<core::TgnModel> np_models;
    np_models.reserve(3);
    for (const char* s : {"npL", "npM", "npS"})
      np_models.push_back(bench::make_model(bench::config_for(ds, s), ds));

    runtime::BackendOptions mt;
    mt.threads = common.threads;
    // Budget applies to the engine-backed CPU row only; the modelled
    // platforms (gpu-sim, fpga) have their own memory model.
    mt.memory_budget =
        bench::resolve_memory_budget(common.memory_budget, base_model, ds);
    runtime::BackendOptions u200, zcu;
    u200.fpga_device = "u200";
    zcu.fpga_device = "zcu104";
    const std::vector<bench::PlatformCase> cases = {
        {"cpu", "cpu-mt", &base_model, mt},
        {"gpu", "gpu-sim", &base_model, {}},
        {"u200-L", "fpga", &np_models[0], u200},
        {"u200-M", "fpga", &np_models[1], u200},
        {"u200-S", "fpga", &np_models[2], u200},
        {"zcu-M", "fpga", &np_models[1], zcu},
    };

    for (std::size_t batch : batch_sizes) {
      if (region.size() < batch) break;
      std::vector<runtime::StreamResult> res;
      res.reserve(cases.size());
      for (const auto& c : cases)
        res.push_back(bench::measure_case(c, ds, region, batch));

      t.add_row({std::to_string(batch),
                 Table::num(res[0].mean_latency_s() * 1e3, 2),
                 Table::num(res[1].mean_latency_s() * 1e3, 2),
                 Table::num(res[2].mean_latency_s() * 1e3, 2),
                 Table::num(res[3].mean_latency_s() * 1e3, 2),
                 Table::num(res[4].mean_latency_s() * 1e3, 2),
                 Table::num(res[5].mean_latency_s() * 1e3, 2),
                 Table::num(res[0].throughput_eps() / 1e3, 1),
                 Table::num(res[1].throughput_eps() / 1e3, 1),
                 Table::num(res[3].throughput_eps() / 1e3, 1),
                 Table::num(res[5].throughput_eps() / 1e3, 1)});
    }
    t.print(std::cout, "Fig. 5 batch sweep — " + name);
    t.write_csv("fig5_sweep_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
