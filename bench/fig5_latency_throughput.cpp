// Fig. 5 (left two columns): inference latency and throughput versus batch
// size for the CPU (multi-thread) and GPU baselines running the TGN
// baseline model, and the U200/ZCU104 accelerators running the co-designed
// NP(L/M/S) models.
#include <iostream>
#include <thread>

#include "baselines/cpu_runner.hpp"
#include "baselines/gpu_sim.hpp"
#include "bench/common.hpp"
#include "fpga/accelerator.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "1.0", "dataset scale vs 30k-edge default");
  args.add_flag("datasets", "wikipedia,reddit,gdelt", "comma-separated list");
  args.add_flag("threads", "0", "CPU threads (0 = hw concurrency)");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());

  bench::banner("Fig. 5 (batch sweep) — latency & throughput vs batch size",
                "Zhou et al., IPDPS'22, Fig. 5 left/middle columns");

  std::vector<std::string> names;
  {
    std::string list = args.get("datasets");
    for (std::size_t pos = 0; pos < list.size();) {
      const auto comma = list.find(',', pos);
      names.push_back(list.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  const std::vector<std::size_t> batch_sizes = {100, 200, 500, 1000, 2000,
                                                4000};

  for (const auto& name : names) {
    const auto ds = data::by_name(name, scale);
    // Measurement region: the test split, re-streamed per batch size.
    const auto region = ds.test_range();

    Table t({"batch", "CPU lat (ms)", "GPU lat (ms)", "U200-L (ms)",
             "U200-M (ms)", "U200-S (ms)", "ZCU104-M (ms)", "CPU thpt (kE/s)",
             "GPU thpt (kE/s)", "U200-M thpt (kE/s)", "ZCU104-M thpt (kE/s)"});

    const auto base_cfg = core::baseline_config(ds.edge_dim(), ds.node_dim());
    const auto base_model = bench::make_model(base_cfg, ds);
    baselines::GpuSim gpu(baselines::titan_xp(), base_cfg);

    // Co-designed models for the FPGA runs.
    const char sizes[] = {'L', 'M', 'S'};
    std::vector<core::TgnModel> np_models;
    np_models.reserve(3);
    for (char s : sizes)
      np_models.push_back(bench::make_model(
          core::np_config(s, ds.edge_dim(), ds.node_dim()), ds));

    for (std::size_t batch : batch_sizes) {
      if (region.size() < batch) break;

      baselines::CpuRunner cpu(base_model, ds, threads);
      cpu.warmup({0, region.begin});
      const auto cpu_run = cpu.run(region, batch);

      const double gpu_lat = gpu.batch_seconds(batch, 2 * batch);
      const double gpu_total = gpu.run_seconds(ds, region, batch);

      // FPGA runs: one accelerator per (model, device) pair.
      std::vector<double> u200_lat(3, 0.0);
      double u200_m_tp = 0.0, zcu_m_lat = 0.0, zcu_m_tp = 0.0;
      for (int i = 0; i < 3; ++i) {
        fpga::Accelerator acc(np_models[static_cast<std::size_t>(i)], ds,
                              fpga::u200_design(), fpga::alveo_u200());
        acc.warmup({0, region.begin});
        const auto run = acc.run(region, batch);
        u200_lat[static_cast<std::size_t>(i)] = run.mean_latency_s();
        if (i == 1) u200_m_tp = run.throughput_eps();
      }
      {
        fpga::Accelerator acc(np_models[1], ds, fpga::zcu104_design(),
                              fpga::zcu104());
        acc.warmup({0, region.begin});
        const auto run = acc.run(region, batch);
        zcu_m_lat = run.mean_latency_s();
        zcu_m_tp = run.throughput_eps();
      }

      t.add_row({std::to_string(batch),
                 Table::num(cpu_run.mean_latency_s() * 1e3, 2),
                 Table::num(gpu_lat * 1e3, 2),
                 Table::num(u200_lat[0] * 1e3, 2),
                 Table::num(u200_lat[1] * 1e3, 2),
                 Table::num(u200_lat[2] * 1e3, 2),
                 Table::num(zcu_m_lat * 1e3, 2),
                 Table::num(cpu_run.throughput_eps() / 1e3, 1),
                 Table::num(static_cast<double>(region.size()) / gpu_total /
                                1e3,
                            1),
                 Table::num(u200_m_tp / 1e3, 1),
                 Table::num(zcu_m_tp / 1e3, 1)});
    }
    t.print(std::cout, "Fig. 5 batch sweep — " + name);
    t.write_csv("fig5_sweep_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
