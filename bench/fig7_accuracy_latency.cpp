// Fig. 7: accuracy-latency scatter on the Wikipedia-like dataset at batch
// size 200 — the TGN baseline on CPU/GPU, APAN on CPU/GPU, and the
// co-designed NP(L/M/S) models on U200 and ZCU104. Training and accuracy
// evaluation stay model-specific; every latency number comes from a runtime
// backend driven through the shared measure_stream loop.
#include <iostream>
#include <memory>
#include <thread>

#include "baselines/apan.hpp"
#include "bench/common.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.edge_scale = "0.27",
                                           .memory_budget = "0"};
  bench::add_common_flags(args, defaults);
  args.add_flag("epochs", "3", "training epochs per model");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;
  const std::size_t batch = common.batch;

  bench::banner("Fig. 7 — accuracy vs latency (wikipedia, batch 200)",
                "Zhou et al., IPDPS'22, Fig. 7");

  const auto ds = data::wikipedia_like(scale);
  const auto region = ds.test_range();
  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  topts.batch_size = batch;

  Table t({"method", "platform", "AP", "latency (ms)"});

  // ---- TGN baseline (teacher): CPU measured + GPU modelled.
  const auto base_cfg = bench::config_for(ds, "baseline");
  auto teacher = std::make_unique<core::TgnModel>(base_cfg, 1);
  Rng drng(2);
  core::Decoder tdec(base_cfg, drng);
  std::printf("  training TGN baseline ...\n");
  const auto tfit = core::fit_and_eval(*teacher, tdec, ds, topts);
  {
    runtime::BackendOptions mt;
    mt.threads = common.threads;
    // Budget-constrained CPU rows: accuracy is budget-invariant (paging is
    // bit-exact), only the latency column moves.
    mt.memory_budget =
        bench::resolve_memory_budget(common.memory_budget, *teacher, ds);
    const auto cpu = bench::measure_case(
        {"cpu", "cpu-mt", teacher.get(), mt}, ds, region, batch);
    t.add_row({"TGN", "CPU", Table::num(tfit.test_ap, 4),
               Table::num(cpu.mean_latency_s() * 1e3, 2)});
    const auto gpu = bench::measure_case({"gpu", "gpu-sim", teacher.get(), {}},
                                         ds, region, batch);
    t.add_row({"TGN", "GPU", Table::num(tfit.test_ap, 4),
               Table::num(gpu.mean_latency_s() * 1e3, 2)});

    // Quantized frontier point: same trained weights, int8 inference. The
    // AP is re-measured through an int8 engine under the exact protocol
    // fit_and_eval uses (warmup to val_end, same batch size and negative-
    // sampling seed), so the delta vs the fp32 row is quantization alone
    // (tests pin it to <= 0.01); latency reuses the fp32 row's cpu-mt
    // backend with the :int8 suffix.
    core::InferenceEngine q(*teacher, ds, /*use_fifo=*/true);
    q.set_precision(kernels::Precision::kInt8);
    q.warmup({0, ds.val_end}, topts.batch_size);
    Rng qrng(topts.seed + 1);
    const double qap =
        q.evaluate_ap(ds.test_range(), tdec, topts.batch_size, qrng);
    const auto qlat = bench::measure_case(
        {"cpu:int8", "cpu-mt:int8", teacher.get(), mt}, ds, region, batch);
    t.add_row({"TGN int8", "CPU", Table::num(qap, 4),
               Table::num(qlat.mean_latency_s() * 1e3, 2)});
  }

  // ---- APAN: CPU measured + GPU modelled (few, tiny kernels).
  {
    baselines::ApanConfig acfg;
    acfg.edge_dim = ds.edge_dim();
    acfg.node_dim = ds.node_dim();
    baselines::Apan apan(acfg, ds, 5);
    baselines::Apan::TrainOptions aopts;
    aopts.epochs = topts.epochs + 2;  // APAN is cheap to train
    aopts.batch_size = batch;
    std::printf("  training APAN ...\n");
    apan.train(aopts);
    apan.reset_state();
    apan.fast_forward({0, ds.val_end});
    Rng arng(7);
    const double ap = apan.evaluate_ap(ds.test_range(), batch, arng);
    apan.reset_state();
    runtime::BackendOptions ao;
    ao.apan = &apan;
    const auto lat = bench::measure_case({"apan", "apan", teacher.get(), ao},
                                         ds, region, batch);
    t.add_row({"APAN", "CPU", Table::num(ap, 4),
               Table::num(lat.mean_latency_s() * 1e3, 2)});
    // GPU: mailbox attention is ~8 logical kernels with tiny GEMMs; the
    // latency is essentially the launch budget.
    const auto spec = baselines::titan_xp();
    const double gpu_lat =
        8.0 * spec.framework_ops_factor * spec.kernel_launch_s;
    t.add_row({"APAN", "GPU", Table::num(ap, 4),
               Table::num(gpu_lat * 1e3, 2)});
  }

  // ---- Co-designed students on the FPGAs (distilled from the teacher).
  for (char size : {'L', 'M', 'S'}) {
    const auto cfg = core::np_config(size, ds.edge_dim(), ds.node_dim());
    core::TgnModel student(cfg, 10 + size);
    core::Decoder sdec(cfg, drng);
    core::TrainOptions sopts = topts;
    sopts.teacher = teacher.get();
    std::printf("  training NP(%c) student ...\n", size);
    const auto sfit = core::fit_and_eval(student, sdec, ds, sopts);

    for (const auto* dev : {"u200", "zcu104"}) {
      runtime::BackendOptions fo;
      fo.fpga_device = dev;
      const auto run =
          bench::measure_case({dev, "fpga", &student, fo}, ds, region, batch);
      t.add_row({std::string("Ours NP(") + size + ")",
                 dev == std::string("u200") ? "U200" : "ZCU104",
                 Table::num(sfit.test_ap, 4),
                 Table::num(run.mean_latency_s() * 1e3, 2)});
    }
  }

  t.print(std::cout, "Fig. 7 — accuracy vs latency");
  t.write_csv("fig7_accuracy_latency.csv");
  return 0;
}
