// Tuned-vs-default serving configurations across Zipf skews and backend
// flavors, written to BENCH_autotune.json (each PR's CI run uploads the
// JSON as an artifact — the repo's auto-tuning trajectory).
//
// For each (skew, backend) combination the AutoTuner runs its DSE loop on
// a throwaway backend — two calibration serves at different batch sizes,
// model ranking of the candidate grid, measured validation of the top-K —
// and the winning ServingOptions is then measured on a FRESH backend over
// exactly the stream slice two hand-coded defaults are measured on:
//
//   * "default"      — ServingOptions{} (batch 256, 2 ms wait, serial),
//   * "fig5-default" — the serving sweeps' hard-coded row (batch 32,
//                      1 ms wait, serial).
//
// --require_tuned_speedup gates tuned throughput >= factor x the BEST
// default on every combination (report-only on a single hardware thread —
// parallel candidates need real cores, the same convention as the other
// perf gates).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "perf/auto_tuner.hpp"
#include "runtime/serving.hpp"
#include "util/table.hpp"

using namespace tgnn;

namespace {

struct Row {
  double zipf = 0.0;
  std::string backend;
  std::string config;  ///< "default" | "fig5-default" | "tuned"
  std::size_t max_batch = 0;
  std::size_t workers = 1;
  bool pipelined = false;
  std::size_t pipeline_depth = 0;
  double thpt_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double predicted_rps = 0.0;  ///< tuned rows: the model's claim
  std::string bottleneck;
};

void write_json(const std::string& path, std::size_t hw, bool gates_enforced,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_autotune\",\n");
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"gates_enforced\": %s,\n",
               gates_enforced ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"zipf\": %.2f, \"backend\": \"%s\", \"config\": \"%s\", "
        "\"max_batch\": %zu, \"workers\": %zu, \"pipelined\": %s, "
        "\"pipeline_depth\": %zu, \"thpt_rps\": %.1f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"predicted_rps\": %.1f, "
        "\"bottleneck\": \"%s\"}%s\n",
        r.zipf, r.backend.c_str(), r.config.c_str(), r.max_batch, r.workers,
        r.pipelined ? "true" : "false", r.pipeline_depth, r.thpt_rps,
        r.p50_ms, r.p95_ms, r.predicted_rps, r.bottleneck.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.edge_scale = "2.0",
                                           .batch = nullptr,
                                           .threads = nullptr,
                                           .backend = nullptr};
  bench::add_common_flags(args, defaults);
  args.add_flag("users", "8000", "synthetic users");
  args.add_flag("items", "4000", "synthetic items");
  args.add_flag("events", "2500", "measured requests per configuration row");
  args.add_flag("skews", "0.0,1.1", "comma-separated user Zipf exponents");
  args.add_flag("backends", "cpu,sharded-cpu",
                "comma-separated backend flavors to tune "
                "(cpu | cpu-mt | sharded-cpu)");
  args.add_flag("require_tuned_speedup", "0",
                "fail unless tuned >= this x the best default row on every "
                "combination (0 = report only; always report-only on 1 core)");
  args.add_flag("out", "BENCH_autotune.json", "output JSON path");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);

  bench::banner(
      "Auto-tuner — tuned vs default serving configs across skews & backends",
      "Zhou et al., IPDPS'22 §V DSE loop, applied to the software runtime");

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  Table t({"zipf", "backend", "config", "batch", "mode", "thpt (kreq/s)",
           "vs best default", "p50 (ms)", "p95 (ms)", "botlnk p95 (ms)"});
  std::vector<Row> rows;
  const double require_speedup = std::stod(args.get("require_tuned_speedup"));
  const bool gates_enforced = require_speedup > 0.0 && hw > 1;
  bool failed = false;

  for (const auto& skew_str : bench::split_csv(args.get("skews"))) {
    const double zipf = std::stod(skew_str);
    data::SyntheticConfig dcfg;
    dcfg.name = "autotune-z" + skew_str;
    dcfg.num_users = static_cast<std::uint32_t>(args.get_int("users"));
    dcfg.num_items = static_cast<std::uint32_t>(args.get_int("items"));
    dcfg.num_edges = static_cast<std::size_t>(30000.0 * common.edge_scale);
    dcfg.edge_dim = 32;
    dcfg.user_zipf_s = zipf;
    dcfg.seed = 11;
    const auto ds = data::make_synthetic(dcfg);
    const auto model = bench::make_model(bench::config_for(ds, "npM"), ds);
    const auto region = ds.test_range();
    const std::size_t events = std::min(
        region.size(), static_cast<std::size_t>(args.get_int("events")));

    for (const auto& key : bench::split_csv(args.get("backends"))) {
      runtime::BackendOptions bopts;

      // The DSE loop, on a throwaway backend (calibration serves traffic).
      perf::AutoTunerOptions topts;
      topts.hardware_threads = hw;
      topts.calib_events =
          std::min<std::size_t>(topts.calib_events, region.size() / 6);
      topts.validate_events =
          std::min<std::size_t>(topts.validate_events, region.size() / 6);
      if (key == "cpu-mt") topts.backend_threads = hw;
      perf::TuneResult tuned;
      {
        auto scratch = runtime::make_backend(key, model, ds, bopts);
        runtime::fast_forward(*scratch, region.begin);
        perf::AutoTuner tuner(*scratch, topts);
        tuned = tuner.search(region.begin);
      }
      std::printf("zipf %.1f, %s: %s\n\n", zipf, key.c_str(),
                  tuned.describe().c_str());

      // Three measured rows on identical fresh-backend stream slices.
      struct Config {
        std::string label;
        runtime::ServingOptions sopts;
      };
      runtime::ServingOptions fig5_opts;
      fig5_opts.max_batch = 32;
      fig5_opts.max_wait_s = 1e-3;
      const std::vector<Config> configs = {
          {"default", runtime::ServingOptions{}},
          {"fig5-default", fig5_opts},
          {"tuned", tuned.options},
      };
      double best_default = 0.0;
      double tuned_rps = 0.0;
      for (const auto& cfg : configs) {
        auto backend = runtime::make_backend(key, model, ds, bopts);
        runtime::fast_forward(*backend, region.begin);
        const auto s =
            bench::serve_stream(*backend, region.begin, events, cfg.sopts)
                .stats;
        Row r;
        r.zipf = zipf;
        r.backend = key;
        r.config = cfg.label;
        r.max_batch = cfg.sopts.max_batch;
        r.workers = cfg.sopts.workers;
        r.pipelined = cfg.sopts.pipelined;
        r.pipeline_depth = cfg.sopts.pipeline_depth;
        r.thpt_rps = s.throughput_rps;
        r.p50_ms = s.p50_latency_s * 1e3;
        r.p95_ms = s.p95_latency_s * 1e3;
        r.bottleneck = bench::bottleneck_cell(s);
        if (cfg.label == "tuned") {
          r.predicted_rps = tuned.predicted.throughput_rps;
          tuned_rps = r.thpt_rps;
        } else {
          best_default = std::max(best_default, r.thpt_rps);
        }
        const std::string mode =
            cfg.sopts.pipelined
                ? "pipelined/" + std::to_string(cfg.sopts.pipeline_depth)
                : (cfg.sopts.workers > 1
                       ? std::to_string(cfg.sopts.workers) + " workers"
                       : "serial");
        rows.push_back(r);
        t.add_row({skew_str, key, cfg.label,
                   std::to_string(cfg.sopts.max_batch), mode,
                   Table::num(r.thpt_rps / 1e3, 2),
                   cfg.label == "tuned" && best_default > 0.0
                       ? Table::num(r.thpt_rps / best_default, 2) + "x"
                       : "-",
                   Table::num(r.p50_ms, 2), Table::num(r.p95_ms, 2),
                   r.bottleneck});
      }
      if (require_speedup > 0.0 && gates_enforced &&
          tuned_rps < require_speedup * best_default) {
        std::printf("FAIL: zipf %.1f %s tuned %.0f req/s < %.2f x best "
                    "default %.0f req/s\n",
                    zipf, key.c_str(), tuned_rps, require_speedup,
                    best_default);
        failed = true;
      }
    }
  }

  t.print(std::cout, "auto-tuned vs hand-coded serving configurations");
  t.write_csv("fig_autotune.csv");
  write_json(args.get("out"), hw, gates_enforced, rows);

  if (require_speedup > 0.0 && !gates_enforced) {
    std::printf("single hardware thread: parallel candidates cannot win "
                "here; %.2fx gate is report-only\n", require_speedup);
  } else if (require_speedup > 0.0 && !failed) {
    std::printf("gates passed: tuned >= %.2fx best default everywhere\n",
                require_speedup);
  }
  return failed ? 1 : 0;
}
