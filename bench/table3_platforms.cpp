// Table III: specifications of the hardware platforms modelled in this
// repository, plus a same-workload comparison of every registered runtime
// backend driven through the one shared streaming loop — the five execution
// paths of the paper behind a single make_backend seam.
#include <iostream>
#include <thread>

#include "bench/common.hpp"
#include "fpga/device.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.edge_scale = "0.27",
                                           .backend = ""};
  bench::add_common_flags(args, defaults);
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;
  const std::size_t batch = common.batch;

  bench::banner("Table III — hardware platform specifications",
                "Zhou et al., IPDPS'22, Table III");

  Table t({"platform", "dies/sockets", "compute resources per die",
           "ext. memory BW"});
  for (const auto& dev : {fpga::alveo_u200(), fpga::zcu104()}) {
    t.add_row({dev.name, std::to_string(dev.dies),
               std::to_string(dev.luts_per_die / 1000) + "K LUTs, " +
                   std::to_string(dev.dsps_per_die) + " DSPs, " +
                   std::to_string(dev.brams_per_die) + " BRAMs, " +
                   std::to_string(dev.urams_per_die) + " URAMs",
               Table::num(dev.ddr_bandwidth_gbps, 1) + " GB/s DDR4"});
  }
  const auto gpu = baselines::titan_xp();
  t.add_row({gpu.name + " (GPU baseline, modelled)", "1",
             Table::num(gpu.peak_flops / 1e12, 2) + " TFLOP/s fp32",
             Table::num(gpu.mem_bw / 1e9, 0) + " GB/s HBM"});
  t.add_row({"Host CPU (measured)", "-",
             std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads",
             "host DDR"});
  t.print(std::cout, "Table III");
  t.write_csv("table3_platforms.csv");

  // ---- Same workload through every registered backend (unified runtime).
  const auto ds = data::wikipedia_like(scale);
  const auto region = ds.test_range();
  const auto base_model =
      bench::make_model(bench::config_for(ds, "baseline"), ds);
  const auto np_model = bench::make_model(bench::config_for(ds, "npM"), ds);

  runtime::BackendOptions mt;
  mt.threads = common.threads;
  runtime::BackendOptions u200, zcu;
  u200.fpga_device = "u200";
  zcu.fpga_device = "zcu104";
  const auto cases = bench::filter_cases(
      {
          {"cpu", "cpu", &base_model, {}},
          {"cpu-mt", "cpu-mt", &base_model, mt},
          {"sharded-cpu", "sharded-cpu", &base_model, mt},
          {"gpu-sim", "gpu-sim", &base_model, {}},
          {"apan", "apan", &base_model, {}},
          {"fpga/u200", "fpga", &np_model, u200},
          {"fpga/zcu104", "fpga", &np_model, zcu},
      },
      common.backend);

  Table m({"backend", "platform", "model", "mean lat (ms)", "p95 lat (ms)",
           "thpt (kE/s)", "timing"});
  for (const auto& c : cases) {
    auto backend = runtime::make_backend(c.key, *c.model, ds, c.opts);
    const auto run = runtime::measure_stream(*backend, region, batch);
    const bool modelled = c.key == "gpu-sim" || c.key == "fpga";
    m.add_row({c.label, backend->describe(),
               c.model == &np_model ? "NP(M)" : "TGN baseline",
               Table::num(run.mean_latency_s() * 1e3, 3),
               Table::num(run.percentile(0.95) * 1e3, 3),
               Table::num(run.throughput_eps() / 1e3, 1),
               modelled ? "modelled" : "measured"});
  }
  m.print(std::cout, "Table III (cont.) — unified-runtime comparison, batch " +
                         std::to_string(batch));
  m.write_csv("table3_backends.csv");
  return 0;
}
