// Table III: specifications of the hardware platforms modelled in this
// repository (the FPGA devices the simulator is parameterized with and the
// CPU/GPU baselines).
#include <iostream>
#include <thread>

#include "baselines/gpu_sim.hpp"
#include "bench/common.hpp"
#include "fpga/device.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main() {
  bench::banner("Table III — hardware platform specifications",
                "Zhou et al., IPDPS'22, Table III");

  Table t({"platform", "dies/sockets", "compute resources per die",
           "ext. memory BW"});
  for (const auto& dev : {fpga::alveo_u200(), fpga::zcu104()}) {
    t.add_row({dev.name, std::to_string(dev.dies),
               std::to_string(dev.luts_per_die / 1000) + "K LUTs, " +
                   std::to_string(dev.dsps_per_die) + " DSPs, " +
                   std::to_string(dev.brams_per_die) + " BRAMs, " +
                   std::to_string(dev.urams_per_die) + " URAMs",
               Table::num(dev.ddr_bandwidth_gbps, 1) + " GB/s DDR4"});
  }
  const auto gpu = baselines::titan_xp();
  t.add_row({gpu.name + " (GPU baseline, modelled)", "1",
             Table::num(gpu.peak_flops / 1e12, 2) + " TFLOP/s fp32",
             Table::num(gpu.mem_bw / 1e9, 0) + " GB/s HBM"});
  t.add_row({"Host CPU (measured)", "-",
             std::to_string(std::thread::hardware_concurrency()) +
                 " hardware threads",
             "host DDR"});
  t.print(std::cout, "Table III");
  t.write_csv("table3_platforms.csv");
  return 0;
}
