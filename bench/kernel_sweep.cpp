// Kernel sweep: reference vs fused vs batch-level hot-path kernels at
// serving-realistic micro-batch sizes, reported as ns/event and GFLOP/s
// and written to BENCH_kernels.json — the repo's kernel-level perf
// trajectory (each PR's CI run uploads the JSON as an artifact).
//
// Three variants per kernel and batch size m:
//   reference  — the scalar training-path ops
//   single-row — the fused kernel driven one event at a time (m calls),
//                i.e. what a per-row inference pipeline pays per event
//   fused      — ONE m-row batched call (the batch-level pipeline)
// "fused" rows carry speedup_vs_reference and, for m > 1,
// speedup_vs_single_row — the gain that batching alone buys (register-
// blocked micro-kernels + row-panel threading; single-row calls can use
// neither).
//
// Unlike bench/micro_kernels (google-benchmark, optional dependency), this
// binary is dependency-free so the perf-smoke CI job can always build and
// run it. --require_gru_speedup N gates fused-vs-reference at batch <= 32;
// --require_batched_gru_speedup N gates fused-vs-single-row at batch >= 16
// — the regression gates on the fused layer's and the batched pipeline's
// reasons to exist.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include <omp.h>

#include "kernels/fused.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gemm_dispatch.hpp"
#include "kernels/quant.hpp"
#include "nn/gru_cell.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/config.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/simplified_attention.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace tgnn;

namespace {

struct Row {
  std::string kernel;
  std::string variant;  ///< "reference" | "single-row" | "fused"
  std::string dtype = "fp32";  ///< "fp32" | "int8" | "bf16"
  std::size_t batch;    ///< events (rows / nodes) per measured unit
  double ns_per_event = 0.0;
  double gflops = 0.0;
  double speedup = 0.0;         ///< fused rows: reference over fused
  double speedup_single = 0.0;  ///< fused rows: single-row over fused
  double speedup_fp32 = 0.0;    ///< non-fp32 rows: fp32 fused over this
};

/// Time `fn` (one call = `events` events, `flops` flops): warm up, then run
/// until `min_s` elapsed, and report per-event latency + throughput.
template <typename Fn>
Row time_kernel(const std::string& kernel, const std::string& variant,
                std::size_t events, double flops, double min_s, Fn&& fn) {
  for (int i = 0; i < 3; ++i) fn();
  Stopwatch sw;
  std::size_t iters = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = sw.seconds();
  } while (elapsed < min_s);
  Row r;
  r.kernel = kernel;
  r.variant = variant;
  r.batch = events;
  const double per_call = elapsed / static_cast<double>(iters);
  r.ns_per_event = per_call * 1e9 / static_cast<double>(events);
  r.gflops = flops / per_call * 1e-9;
  return r;
}

double gru_flops(const nn::GruCell& gru, std::size_t m) {
  return 2.0 * static_cast<double>(gru.macs(m));
}

void write_json(const std::string& path, const core::ModelConfig& cfg,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel_sweep\",\n");
  std::fprintf(f, "  \"simd_arch\": \"%s\",\n", kernels::simd_arch_name());
  std::fprintf(f, "  \"quant_arch\": \"%s\",\n", kernels::quant_arch_name());
  std::fprintf(f,
               "  \"config\": {\"mem_dim\": %zu, \"time_dim\": %zu, "
               "\"emb_dim\": %zu, \"edge_dim\": %zu, \"num_neighbors\": %zu},\n",
               cfg.mem_dim, cfg.time_dim, cfg.emb_dim, cfg.edge_dim,
               cfg.num_neighbors);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"dtype\": "
                 "\"%s\", \"batch\": %zu, \"ns_per_event\": %.1f, "
                 "\"gflops\": %.3f",
                 r.kernel.c_str(), r.variant.c_str(), r.dtype.c_str(), r.batch,
                 r.ns_per_event, r.gflops);
    if (r.speedup > 0.0)
      std::fprintf(f, ", \"speedup_vs_reference\": %.2f", r.speedup);
    if (r.speedup_single > 0.0)
      std::fprintf(f, ", \"speedup_vs_single_row\": %.2f", r.speedup_single);
    if (r.speedup_fp32 > 0.0)
      std::fprintf(f, ", \"speedup_vs_fp32\": %.2f", r.speedup_fp32);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", "BENCH_kernels.json", "output JSON path");
  args.add_flag("min_ms", "120", "min measured wall time per kernel (ms)");
  args.add_flag("require_gru_speedup", "0",
                "exit non-zero unless fused GRU >= this x reference at "
                "batch <= 32 (0 = report only)");
  args.add_flag("require_batched_gru_speedup", "0",
                "exit non-zero unless one batched fused GRU call >= this x "
                "the same rows driven single-row, at batch >= 16 (0 = "
                "report only)");
  args.add_flag("require_int8_speedup", "0",
                "exit non-zero unless the int8 batched affine GEMM >= this x "
                "the fp32 fused call at batch >= 16 (0 = report only; "
                "auto-downgrades to report-only on the generic int8 tier or "
                "a single hardware thread)");
  if (!args.parse(argc, argv)) return 1;
  const std::string out_path = args.get("out");
  const double min_s = static_cast<double>(args.get_int("min_ms")) * 1e-3;
  const double require = args.get_double("require_gru_speedup");
  const double require_batched =
      args.get_double("require_batched_gru_speedup");
  const double require_int8 = args.get_double("require_int8_speedup");

  core::ModelConfig cfg;  // paper dims: mem 100, time 100, emb 100, edge 172
  Rng rng(1);
  std::vector<Row> rows;
  std::printf("kernel dispatch: %s (fp32), %s (int8)\n\n",
              kernels::simd_arch_name(), kernels::quant_arch_name());

  // Append reference / (optional) single-row / fused rows of one kernel at
  // one batch size and derive both speedups.
  auto push = [&rows](Row ref, Row single, Row fused, bool has_single) {
    fused.speedup = ref.ns_per_event / fused.ns_per_event;
    rows.push_back(ref);
    if (has_single) {
      fused.speedup_single = single.ns_per_event / fused.ns_per_event;
      rows.push_back(single);
    }
    rows.push_back(fused);
  };

  // ---- GRU memory updater: the per-event serving bottleneck.
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  gru.prepare(kernels::Precision::kInt8);  // one-time weight snapshot
  for (const std::size_t m : {1u, 8u, 16u, 32u, 128u}) {
    const Tensor x = Tensor::randn(m, cfg.gru_in_dim(), rng, 0.5f);
    const Tensor h = Tensor::randn(m, cfg.mem_dim, rng, 0.5f);
    kernels::GruScratch ws, ws1;
    Tensor out, out1;
    Tensor xi(1, cfg.gru_in_dim()), hi(1, cfg.mem_dim);
    const double flops = gru_flops(gru, m);
    Row ref = time_kernel("gru_forward", "reference", m, flops, min_s, [&] {
      Tensor s = gru.forward(x, h);
      (void)s;
    });
    Row single;
    if (m > 1)
      single = time_kernel("gru_forward", "single-row", m, flops, min_s, [&] {
        for (std::size_t r = 0; r < m; ++r) {
          std::copy(x.row(r).begin(), x.row(r).end(), xi.row(0).begin());
          std::copy(h.row(r).begin(), h.row(r).end(), hi.row(0).begin());
          gru.forward_into(xi, hi, ws1, out1);
        }
      });
    Row fused = time_kernel("gru_forward", "fused", m, flops, min_s,
                            [&] { gru.forward_into(x, h, ws, out); });
    push(ref, single, fused, m > 1);
    if (m >= 16) {
      // The quantized fused GRU: per-batch activation quantization is paid
      // inside the timer, the weight snapshot outside (one-time at model
      // load) — exactly the serving cost split.
      kernels::GruScratch wsq;
      Tensor outq;
      Row qrow = time_kernel("gru_forward", "fused", m, flops, min_s, [&] {
        gru.forward_into(x, h, wsq, outq, kernels::Precision::kInt8);
      });
      qrow.dtype = "int8";
      qrow.speedup_fp32 = fused.ns_per_event / qrow.ns_per_event;
      rows.push_back(qrow);
    }
  }

  // ---- Vanilla attention: nodes with full neighbor tables, per node
  // (single-row = the per-row GNN stage) and whole-micro-batch batched.
  {
    const std::size_t n = cfg.num_neighbors;
    core::VanillaAttention att(cfg, rng);
    for (const std::size_t m : {1u, 16u, 32u}) {
      std::vector<std::size_t> seg(m + 1);
      for (std::size_t i = 0; i <= m; ++i) seg[i] = i * n;
      const Tensor f = Tensor::randn(m, cfg.mem_dim, rng, 0.5f);
      const Tensor q_in = Tensor::randn(m, cfg.q_in_dim(), rng, 0.5f);
      const Tensor kv_in = Tensor::randn(m * n, cfg.kv_in_dim(), rng, 0.5f);
      const double flops =
          2.0 * static_cast<double>(att.wq.macs(m) + att.wk.macs(m * n) +
                                    att.wv.macs(m * n) + att.wo.macs(m) +
                                    2 * m * n * cfg.emb_dim);
      core::VanillaAttention::InferScratch ws;
      core::VanillaAttention::BatchScratch bs;
      core::AttnNodeInput in;
      in.q_in.reserve(1, cfg.q_in_dim());
      in.kv_in.reserve(n, cfg.kv_in_dim());
      std::vector<float> out_row(cfg.emb_dim);
      Tensor out(m, cfg.emb_dim);
      Row ref =
          time_kernel("vanilla_attention", "reference", m, flops, min_s, [&] {
            for (std::size_t i = 0; i < m; ++i) {
              in.q_in.resize(1, cfg.q_in_dim());
              std::copy(q_in.row(i).begin(), q_in.row(i).end(),
                        in.q_in.row(0).begin());
              in.kv_in.resize(n, cfg.kv_in_dim());
              for (std::size_t j = 0; j < n; ++j)
                std::copy(kv_in.row(i * n + j).begin(),
                          kv_in.row(i * n + j).end(), in.kv_in.row(j).begin());
              Tensor hh = att.forward(f.row(i), in);
              (void)hh;
            }
          });
      Row single;
      if (m > 1)
        single = time_kernel(
            "vanilla_attention", "single-row", m, flops, min_s, [&] {
              for (std::size_t i = 0; i < m; ++i) {
                in.q_in.resize(1, cfg.q_in_dim());
                std::copy(q_in.row(i).begin(), q_in.row(i).end(),
                          in.q_in.row(0).begin());
                in.kv_in.resize(n, cfg.kv_in_dim());
                for (std::size_t j = 0; j < n; ++j)
                  std::copy(kv_in.row(i * n + j).begin(),
                            kv_in.row(i * n + j).end(),
                            in.kv_in.row(j).begin());
                att.forward_into(f.row(i), in, ws, out_row);
              }
            });
      Row fused = time_kernel("vanilla_attention", "fused", m, flops, min_s,
                              [&] {
                                att.forward_batch_into(f, q_in, kv_in, seg, bs,
                                                       out);
                              });
      push(ref, single, fused, m > 1);
    }
  }

  // ---- Simplified attention (score + aggregate), full budget.
  {
    core::SimplifiedAttention sat(cfg, rng);
    std::vector<double> dts(cfg.num_neighbors);
    for (std::size_t j = 0; j < dts.size(); ++j)
      dts[j] = 10.0 * static_cast<double>(j + 1);
    const auto scores0 = sat.score(dts, 0);
    const std::size_t kept = scores0.keep.size();
    for (const std::size_t m : {1u, 16u, 32u}) {
      std::vector<std::size_t> seg(m + 1);
      for (std::size_t i = 0; i <= m; ++i) seg[i] = i * kept;
      const Tensor v_in = Tensor::randn(m * kept, cfg.kv_in_dim(), rng, 0.5f);
      const Tensor f = Tensor::randn(m, cfg.mem_dim, rng, 0.5f);
      const double flops =
          2.0 * static_cast<double>(
                    sat.wv.macs(m * kept) + sat.wo.macs(m) +
                    m * cfg.num_neighbors * cfg.num_neighbors +
                    m * kept * cfg.emb_dim);
      core::SimplifiedAttention::InferScratch ws;
      core::SimplifiedAttention::ScoreScratch sws;
      core::SimplifiedAttention::Scores scores;
      core::SimplifiedAttention::BatchScratch bs;
      std::vector<float> logits(m * kept);
      Tensor v_node(kept, cfg.kv_in_dim());
      std::vector<float> out_row(cfg.emb_dim);
      Tensor out(m, cfg.emb_dim);
      Row ref = time_kernel(
          "simplified_attention", "reference", m, flops, min_s, [&] {
            for (std::size_t i = 0; i < m; ++i) {
              const auto s = sat.score(dts, 0);
              for (std::size_t r = 0; r < kept; ++r)
                std::copy(v_in.row(i * kept + r).begin(),
                          v_in.row(i * kept + r).end(), v_node.row(r).begin());
              Tensor hh = sat.aggregate(f.row(i), s, v_node);
              (void)hh;
            }
          });
      Row single;
      if (m > 1)
        single = time_kernel(
            "simplified_attention", "single-row", m, flops, min_s, [&] {
              for (std::size_t i = 0; i < m; ++i) {
                sat.score_into(dts, 0, sws, scores);
                for (std::size_t r = 0; r < kept; ++r)
                  std::copy(v_in.row(i * kept + r).begin(),
                            v_in.row(i * kept + r).end(),
                            v_node.row(r).begin());
                sat.aggregate_into(f.row(i), scores, v_node, ws, out_row);
              }
            });
      Row fused = time_kernel(
          "simplified_attention", "fused", m, flops, min_s, [&] {
            for (std::size_t i = 0; i < m; ++i) {
              sat.score_into(dts, 0, sws, scores);
              for (std::size_t idx = 0; idx < kept; ++idx)
                logits[i * kept + idx] = scores.logits[scores.keep[idx]];
            }
            sat.aggregate_batch_into(f, logits, v_in, seg, bs, out);
          });
      push(ref, single, fused, m > 1);
    }
  }

  // ---- Link-prediction decoder.
  {
    core::Decoder dec(cfg, rng);
    for (const std::size_t m : {1u, 32u}) {
      const Tensor x = Tensor::randn(m, 3 * cfg.emb_dim, rng, 0.5f);
      const double flops =
          2.0 * static_cast<double>(dec.l1.macs(m) + dec.l2.macs(m));
      core::Decoder::InferScratch ws, ws1;
      Tensor xi(1, 3 * cfg.emb_dim);
      Row ref = time_kernel("decoder", "reference", m, flops, min_s, [&] {
        Tensor y = dec.forward(x);
        (void)y;
      });
      Row single;
      if (m > 1)
        single = time_kernel("decoder", "single-row", m, flops, min_s, [&] {
          for (std::size_t r = 0; r < m; ++r) {
            std::copy(x.row(r).begin(), x.row(r).end(), xi.row(0).begin());
            dec.forward_into(xi, ws1);
          }
        });
      Row fused = time_kernel("decoder", "fused", m, flops, min_s,
                              [&] { dec.forward_into(x, ws); });
      push(ref, single, fused, m > 1);
    }
  }

  // ---- Raw GEMM (the GRU input-gate shape) for the GFLOP/s headline.
  {
    const std::size_t m = 32, k = cfg.gru_in_dim(), n = cfg.mem_dim;
    const Tensor a = Tensor::randn(m, k, rng, 0.5f);
    const Tensor b = Tensor::randn(n, k, rng, 0.5f);
    Tensor c(m, n);
    const double flops = 2.0 * static_cast<double>(m * k * n);
    Row ref = time_kernel("gemm_nt_32x472x100", "reference", m, flops, min_s,
                          [&] {
                            Tensor y = ops::matmul_nt(a, b);
                            (void)y;
                          });
    Row single =
        time_kernel("gemm_nt_32x472x100", "single-row", m, flops, min_s, [&] {
          for (std::size_t r = 0; r < m; ++r)
            kernels::gemm_nt(a.row(r).data(), b.data(), c.row(r).data(), 1, k,
                             n);
        });
    Row fused = time_kernel("gemm_nt_32x472x100", "fused", m, flops, min_s,
                            [&] {
                              kernels::gemm_nt(a.data(), b.data(), c.data(), m,
                                               k, n);
                            });
    push(ref, single, fused, true);
  }

  // ---- Precision ladder on the batched affine GEMM (the GRU gate shape):
  // fp32 fused vs int8 (dynamic per-row activation quantization + integer
  // GEMM, quantization inside the timer) vs bf16 (weight storage halved,
  // expanded in-register — a memory-format option, not a speed one). The
  // int8 rows' speedup_vs_fp32 is what --require_int8_speedup gates.
  {
    const std::size_t k = cfg.gru_in_dim(), n = cfg.mem_dim;
    const Tensor w = Tensor::randn(n, k, rng, 0.5f);
    const Tensor bias(1, n);  // zero bias: pure GEMM + epilogue
    kernels::QuantWeight qw;
    kernels::quantize_weight(w, qw);
    kernels::Bf16Weight bw;
    kernels::bf16_from_tensor(w, bw);
    for (const std::size_t m : {16u, 32u, 128u}) {
      const Tensor x = Tensor::randn(m, k, rng, 0.5f);
      Tensor y;
      const double flops = 2.0 * static_cast<double>(m * k * n);
      const std::string name = "affine_nt_472x100";
      Row fp = time_kernel(name, "fused", m, flops, min_s,
                           [&] { kernels::affine_into(x, w, bias, y); });
      kernels::QuantActs qx;
      Row qi = time_kernel(name, "fused", m, flops, min_s, [&] {
        kernels::quantize_rows_into(x, qx);
        kernels::qaffine_into(qx, qw, bias, y);
      });
      qi.dtype = "int8";
      qi.speedup_fp32 = fp.ns_per_event / qi.ns_per_event;
      Row bf = time_kernel(name, "fused", m, flops, min_s,
                           [&] { kernels::bf16_affine_into(x, bw, bias, y); });
      bf.dtype = "bf16";
      bf.speedup_fp32 = fp.ns_per_event / bf.ns_per_event;
      rows.push_back(fp);
      rows.push_back(qi);
      rows.push_back(bf);
    }
  }

  std::printf("%-26s %-11s %-5s %7s %14s %10s %8s %8s %8s\n", "kernel",
              "variant", "dtype", "batch", "ns/event", "GFLOP/s", "vs-ref",
              "vs-1row", "vs-fp32");
  auto ratio = [](double v) {
    return v > 0.0 ? std::to_string(v).substr(0, 4) + "x" : std::string("-");
  };
  for (const Row& r : rows)
    std::printf("%-26s %-11s %-5s %7zu %14.1f %10.3f %8s %8s %8s\n",
                r.kernel.c_str(), r.variant.c_str(), r.dtype.c_str(), r.batch,
                r.ns_per_event, r.gflops, ratio(r.speedup).c_str(),
                ratio(r.speedup_single).c_str(),
                ratio(r.speedup_fp32).c_str());

  write_json(out_path, cfg, rows);
  std::printf("\nwrote %s\n", out_path.c_str());

  bool ok = true;
  if (require > 0.0) {
    for (const Row& r : rows)
      if (r.kernel == "gru_forward" && r.variant == "fused" && r.batch <= 32 &&
          r.speedup < require) {
        std::fprintf(stderr,
                     "FAIL: fused gru_forward batch=%zu speedup %.2fx < "
                     "required %.2fx vs reference\n",
                     r.batch, r.speedup, require);
        ok = false;
      }
    if (ok)
      std::printf("fused GRU speedup >= %.2fx at every batch <= 32: OK\n",
                  require);
  }
  if (require_batched > 0.0 && omp_get_max_threads() < 2) {
    // The batched-vs-single-row target combines register blocking with the
    // row-panel OpenMP split; on one core the second lever doesn't exist
    // (micro-kernels alone measure ~1.4-1.9x), so the gate would fail by
    // construction. Report-only there; CI runners are multi-core.
    std::printf(
        "batched GRU gate skipped: single hardware thread (report-only)\n");
  } else if (require_batched > 0.0) {
    for (const Row& r : rows)
      if (r.kernel == "gru_forward" && r.variant == "fused" && r.batch >= 16 &&
          r.speedup_single < require_batched) {
        std::fprintf(stderr,
                     "FAIL: batched gru_forward batch=%zu speedup %.2fx < "
                     "required %.2fx vs single-row\n",
                     r.batch, r.speedup_single, require_batched);
        ok = false;
      }
    if (ok)
      std::printf(
          "batched GRU speedup >= %.2fx vs single-row at every batch >= 16: "
          "OK\n",
          require_batched);
  }
  if (require_int8 > 0.0 &&
      std::string(kernels::quant_arch_name()) == "generic") {
    // Without an int8 SIMD tier (avx2 maddubs / avx512 VNNI) the integer
    // path has no dot-product instruction advantage over fp32 FMA and the
    // gate would fail by construction. Report-only there.
    std::printf(
        "int8 GEMM gate skipped: generic int8 tier (report-only)\n");
  } else if (require_int8 > 0.0 && omp_get_max_threads() < 2) {
    // Parity with the batched-GRU gate: single-hardware-thread runners
    // measure under scheduler noise big enough to flake a 2x bar.
    std::printf(
        "int8 GEMM gate skipped: single hardware thread (report-only)\n");
  } else if (require_int8 > 0.0) {
    for (const Row& r : rows)
      if (r.kernel == "affine_nt_472x100" && r.dtype == "int8" &&
          r.batch >= 16 && r.speedup_fp32 < require_int8) {
        std::fprintf(stderr,
                     "FAIL: int8 affine batch=%zu speedup %.2fx < required "
                     "%.2fx vs fp32 fused\n",
                     r.batch, r.speedup_fp32, require_int8);
        ok = false;
      }
    if (ok)
      std::printf(
          "int8 affine speedup >= %.2fx vs fp32 fused at every batch >= 16: "
          "OK\n",
          require_int8);
  }
  return ok ? 0 : 1;
}
