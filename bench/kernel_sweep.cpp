// Kernel sweep: fused (src/kernels) vs reference (tensor/ops) hot-path
// kernels at serving-realistic micro-batch sizes, reported as ns/event and
// GFLOP/s and written to BENCH_kernels.json — the repo's kernel-level perf
// trajectory (each PR's CI run uploads the JSON as an artifact).
//
// Unlike bench/micro_kernels (google-benchmark, optional dependency), this
// binary is dependency-free so the perf-smoke CI job can always build and
// run it. --require_gru_speedup N makes it exit non-zero when the fused
// GRU forward is not at least N× the reference at every batch <= 32 — the
// regression gate on the fused layer's reason to exist.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/gemm.hpp"
#include "nn/gru_cell.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/config.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/simplified_attention.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace tgnn;

namespace {

struct Row {
  std::string kernel;
  std::string variant;     ///< "reference" | "fused"
  std::size_t batch;       ///< events (rows / nodes) per call
  double ns_per_event = 0.0;
  double gflops = 0.0;
  double speedup = 0.0;    ///< fused rows: reference ns/event over fused
};

/// Time `fn` (one call = `events` events, `flops` flops): warm up, then run
/// until `min_s` elapsed, and report per-event latency + throughput.
template <typename Fn>
Row time_kernel(const std::string& kernel, const std::string& variant,
                std::size_t events, double flops, double min_s, Fn&& fn) {
  for (int i = 0; i < 3; ++i) fn();
  Stopwatch sw;
  std::size_t iters = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = sw.seconds();
  } while (elapsed < min_s);
  Row r;
  r.kernel = kernel;
  r.variant = variant;
  r.batch = events;
  const double per_call = elapsed / static_cast<double>(iters);
  r.ns_per_event = per_call * 1e9 / static_cast<double>(events);
  r.gflops = flops / per_call * 1e-9;
  return r;
}

double gru_flops(const nn::GruCell& gru, std::size_t m) {
  return 2.0 * static_cast<double>(gru.macs(m));
}

void write_json(const std::string& path, const core::ModelConfig& cfg,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel_sweep\",\n");
  std::fprintf(f,
               "  \"config\": {\"mem_dim\": %zu, \"time_dim\": %zu, "
               "\"emb_dim\": %zu, \"edge_dim\": %zu, \"num_neighbors\": %zu},\n",
               cfg.mem_dim, cfg.time_dim, cfg.emb_dim, cfg.edge_dim,
               cfg.num_neighbors);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", \"batch\": "
                 "%zu, \"ns_per_event\": %.1f, \"gflops\": %.3f",
                 r.kernel.c_str(), r.variant.c_str(), r.batch, r.ns_per_event,
                 r.gflops);
    if (r.speedup > 0.0) std::fprintf(f, ", \"speedup_vs_reference\": %.2f", r.speedup);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("out", "BENCH_kernels.json", "output JSON path");
  args.add_flag("min_ms", "120", "min measured wall time per kernel (ms)");
  args.add_flag("require_gru_speedup", "0",
                "exit non-zero unless fused GRU >= this x reference at "
                "batch <= 32 (0 = report only)");
  if (!args.parse(argc, argv)) return 1;
  const std::string out_path = args.get("out");
  const double min_s = static_cast<double>(args.get_int("min_ms")) * 1e-3;
  const double require = args.get_double("require_gru_speedup");

  core::ModelConfig cfg;  // paper dims: mem 100, time 100, emb 100, edge 172
  Rng rng(1);
  std::vector<Row> rows;

  // Pair up reference/fused runs of one kernel and derive the speedup.
  auto pair = [&rows](Row ref, Row fused) {
    fused.speedup = ref.ns_per_event / fused.ns_per_event;
    rows.push_back(ref);
    rows.push_back(fused);
  };

  // ---- GRU memory updater: the per-event serving bottleneck.
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  for (const std::size_t m : {1u, 8u, 32u, 128u}) {
    const Tensor x = Tensor::randn(m, cfg.gru_in_dim(), rng, 0.5f);
    const Tensor h = Tensor::randn(m, cfg.mem_dim, rng, 0.5f);
    kernels::GruScratch ws;
    Tensor out;
    pair(time_kernel("gru_forward", "reference", m, gru_flops(gru, m), min_s,
                     [&] {
                       Tensor s = gru.forward(x, h);
                       (void)s;
                     }),
         time_kernel("gru_forward", "fused", m, gru_flops(gru, m), min_s,
                     [&] { gru.forward_into(x, h, ws, out); }));
  }

  // ---- Vanilla attention, one node with a full neighbor table.
  {
    const std::size_t n = cfg.num_neighbors;
    core::VanillaAttention att(cfg, rng);
    core::AttnNodeInput in;
    in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng, 0.5f);
    in.kv_in = Tensor::randn(n, cfg.kv_in_dim(), rng, 0.5f);
    const Tensor f = Tensor::randn(1, cfg.mem_dim, rng, 0.5f);
    const double flops =
        2.0 * static_cast<double>(att.wq.macs(1) + att.wk.macs(n) +
                                  att.wv.macs(n) + att.wo.macs(1) +
                                  2 * n * cfg.emb_dim);
    core::VanillaAttention::InferScratch ws;
    std::vector<float> out(cfg.emb_dim);
    pair(time_kernel("vanilla_attention", "reference", 1, flops, min_s,
                     [&] {
                       Tensor hh = att.forward(f.row(0), in);
                       (void)hh;
                     }),
         time_kernel("vanilla_attention", "fused", 1, flops, min_s,
                     [&] { att.forward_into(f.row(0), in, ws, out); }));
  }

  // ---- Simplified attention (score + aggregate), full budget.
  {
    core::SimplifiedAttention sat(cfg, rng);
    std::vector<double> dts(cfg.num_neighbors);
    for (std::size_t j = 0; j < dts.size(); ++j)
      dts[j] = 10.0 * static_cast<double>(j + 1);
    const auto scores0 = sat.score(dts, 0);
    const std::size_t kept = scores0.keep.size();
    const Tensor v_in = Tensor::randn(kept, cfg.kv_in_dim(), rng, 0.5f);
    const Tensor f = Tensor::randn(1, cfg.mem_dim, rng, 0.5f);
    const double flops = 2.0 * static_cast<double>(
                                   sat.wv.macs(kept) + sat.wo.macs(1) +
                                   cfg.num_neighbors * cfg.num_neighbors +
                                   kept * cfg.emb_dim);
    core::SimplifiedAttention::InferScratch ws;
    core::SimplifiedAttention::ScoreScratch sws;
    core::SimplifiedAttention::Scores scores;
    std::vector<float> out(cfg.emb_dim);
    pair(time_kernel("simplified_attention", "reference", 1, flops, min_s,
                     [&] {
                       const auto s = sat.score(dts, 0);
                       Tensor hh = sat.aggregate(f.row(0), s, v_in);
                       (void)hh;
                     }),
         time_kernel("simplified_attention", "fused", 1, flops, min_s, [&] {
           sat.score_into(dts, 0, sws, scores);
           sat.aggregate_into(f.row(0), scores, v_in, ws, out);
         }));
  }

  // ---- Link-prediction decoder.
  {
    core::Decoder dec(cfg, rng);
    for (const std::size_t m : {1u, 32u}) {
      const Tensor x = Tensor::randn(m, 3 * cfg.emb_dim, rng, 0.5f);
      const double flops =
          2.0 * static_cast<double>(dec.l1.macs(m) + dec.l2.macs(m));
      core::Decoder::InferScratch ws;
      pair(time_kernel("decoder", "reference", m, flops, min_s,
                       [&] {
                         Tensor y = dec.forward(x);
                         (void)y;
                       }),
           time_kernel("decoder", "fused", m, flops, min_s,
                       [&] { dec.forward_into(x, ws); }));
    }
  }

  // ---- Raw GEMM (the GRU input-gate shape) for the GFLOP/s headline.
  {
    const std::size_t m = 32, k = cfg.gru_in_dim(), n = cfg.mem_dim;
    const Tensor a = Tensor::randn(m, k, rng, 0.5f);
    const Tensor b = Tensor::randn(n, k, rng, 0.5f);
    Tensor c(m, n);
    const double flops = 2.0 * static_cast<double>(m * k * n);
    pair(time_kernel("gemm_nt_32x472x100", "reference", m, flops, min_s,
                     [&] {
                       Tensor y = ops::matmul_nt(a, b);
                       (void)y;
                     }),
         time_kernel("gemm_nt_32x472x100", "fused", m, flops, min_s, [&] {
           kernels::gemm_nt(a.data(), b.data(), c.data(), m, k, n);
         }));
  }

  std::printf("%-26s %-10s %7s %14s %10s %9s\n", "kernel", "variant", "batch",
              "ns/event", "GFLOP/s", "speedup");
  for (const Row& r : rows)
    std::printf("%-26s %-10s %7zu %14.1f %10.3f %9s\n", r.kernel.c_str(),
                r.variant.c_str(), r.batch, r.ns_per_event, r.gflops,
                r.speedup > 0.0 ? (std::to_string(r.speedup).substr(0, 4) + "x").c_str()
                                : "-");

  write_json(out_path, cfg, rows);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (require > 0.0) {
    bool ok = true;
    for (const Row& r : rows)
      if (r.kernel == "gru_forward" && r.variant == "fused" &&
          r.batch <= 32 && r.speedup < require) {
        std::fprintf(stderr,
                     "FAIL: fused gru_forward batch=%zu speedup %.2fx < "
                     "required %.2fx\n",
                     r.batch, r.speedup, require);
        ok = false;
      }
    if (!ok) return 1;
    std::printf("fused GRU speedup >= %.2fx at every batch <= 32: OK\n",
                require);
  }
  return 0;
}
