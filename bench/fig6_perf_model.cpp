// Fig. 6: predicted (Section V analytic model) vs actual (cycle simulator)
// latency and throughput for the NP(M) model on the Wikipedia-like dataset,
// on both FPGAs, across batch sizes — with the per-point prediction error.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "fpga/accelerator.hpp"
#include "perf/perf_model.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.batch = nullptr,
                                           .threads = nullptr};
  bench::add_common_flags(args, defaults);
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;

  bench::banner("Fig. 6 — performance model vs cycle simulator",
                "Zhou et al., IPDPS'22, Fig. 6 (paper error: 9.9-12.8%)");

  const auto ds = data::wikipedia_like(scale);
  const auto cfg = core::np_config('M', ds.edge_dim(), ds.node_dim());
  const auto model = bench::make_model(cfg, ds);
  const auto region = ds.test_range();
  const std::vector<std::size_t> batches = {100, 200, 500, 1000, 2000, 4000};

  struct Case {
    fpga::DesignConfig dc;
    fpga::FpgaDevice dev;
  };
  double err_sum = 0.0;
  std::size_t err_n = 0;
  for (const auto& c : {Case{fpga::u200_design(), fpga::alveo_u200()},
                        Case{fpga::zcu104_design(), fpga::zcu104()}}) {
    Table t({"batch", "actual lat (ms)", "pred lat (ms)", "lat err",
             "actual thpt (kE/s)", "pred thpt (kE/s)", "thpt err"});
    for (std::size_t batch : batches) {
      if (region.size() < batch) break;
      runtime::BackendOptions fo;
      fo.fpga_device = c.dc.name == "U200" ? "u200" : "zcu104";
      auto backend = runtime::make_backend("fpga", model, ds, fo);
      runtime::fast_forward(*backend, region.begin);
      const auto run = runtime::run_stream(
          *backend, {region.begin, region.begin + batch}, batch);
      const double actual_lat = run.mean_latency_s();
      const double actual_tp = run.throughput_eps();

      perf::PerfModel pm(c.dc, c.dev, cfg);
      pm.set_vertices_per_edge(perf::PerfModel::measure_vertices_per_edge(
          ds, {region.begin, region.begin + batch}, c.dc.nb));
      const auto pred = pm.predict(batch);

      const double lat_err =
          std::fabs(pred.latency_s - actual_lat) / actual_lat;
      const double tp_err =
          std::fabs(pred.throughput_eps - actual_tp) / actual_tp;
      err_sum += lat_err;
      ++err_n;
      t.add_row({std::to_string(batch), Table::num(actual_lat * 1e3, 3),
                 Table::num(pred.latency_s * 1e3, 3), Table::pct(lat_err),
                 Table::num(actual_tp / 1e3, 1),
                 Table::num(pred.throughput_eps / 1e3, 1),
                 Table::pct(tp_err)});
    }
    t.print(std::cout, "Fig. 6 — " + c.dc.name + ", NP(M), wikipedia");
    t.write_csv("fig6_" + c.dc.name + ".csv");
    std::printf("\n");
  }
  std::printf("mean latency prediction error: %.1f%% (paper: 9.9%%-12.8%%)\n",
              100.0 * err_sum / static_cast<double>(err_n));
  return 0;
}
