// Shared helpers for the benchmark harnesses: dataset construction at a
// bench-friendly scale, model construction, and uniform header printing.
//
// Every bench binary regenerates one table or figure of the paper; see
// DESIGN.md §3 for the experiment index. Benches print the paper's rows and
// also write a CSV next to the binary for plotting.
#pragma once

#include <cstdio>
#include <string>

#include "data/synthetic.hpp"
#include "tgnn/config.hpp"
#include "tgnn/inference.hpp"
#include "tgnn/model.hpp"

namespace tgnn::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

/// Model config matching a dataset's feature dims.
inline core::ModelConfig config_for(const data::Dataset& ds,
                                    const std::string& preset) {
  if (preset == "baseline")
    return core::baseline_config(ds.edge_dim(), ds.node_dim());
  return core::np_config(preset.back(), ds.edge_dim(), ds.node_dim());
}

/// Build a model and, when it uses the LUT encoder, fit it on the training
/// stream (required before any encode call).
inline core::TgnModel make_model(const core::ModelConfig& cfg,
                                 const data::Dataset& ds,
                                 std::uint64_t seed = 1) {
  core::TgnModel model(cfg, seed);
  if (model.lut_encoder())
    model.fit_lut(core::collect_dt_samples(ds, ds.train_range()));
  return model;
}

}  // namespace tgnn::bench
