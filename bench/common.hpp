// Shared helpers for the benchmark harnesses: dataset construction at a
// bench-friendly scale, model construction, uniform header printing, and
// the runtime-layer glue every bench drives its platforms through.
//
// Every bench binary regenerates one table or figure of the paper; see
// DESIGN.md for the experiment index. Benches print the paper's rows and
// also write a CSV next to the binary for plotting.
//
// Platform execution goes through runtime::make_backend +
// runtime::measure_stream / measure_windows — benches declare WHICH
// backends and models to compare, never how to drive them.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tgnn/config.hpp"
#include "tgnn/inference.hpp"
#include "tgnn/model.hpp"
#include "util/argparse.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

/// Model config matching a dataset's feature dims.
inline core::ModelConfig config_for(const data::Dataset& ds,
                                    const std::string& preset) {
  if (preset == "baseline")
    return core::baseline_config(ds.edge_dim(), ds.node_dim());
  return core::np_config(preset.back(), ds.edge_dim(), ds.node_dim());
}

/// Build a model and, when it uses the LUT encoder, fit it on the training
/// stream (required before any encode call).
inline core::TgnModel make_model(const core::ModelConfig& cfg,
                                 const data::Dataset& ds,
                                 std::uint64_t seed = 1) {
  core::TgnModel model(cfg, seed);
  if (model.lut_encoder())
    model.fit_lut(core::collect_dt_samples(ds, ds.train_range()));
  return model;
}

/// Split a comma-separated CLI list ("wikipedia,reddit,gdelt").
inline std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < list.size();) {
    const auto comma = list.find(',', pos);
    out.push_back(list.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// ---- shared bench CLI -------------------------------------------------------
//
// Every bench takes the same core flags (--edge_scale / --batch / --threads
// / --backend / --datasets); only the defaults — and whether a backend
// override or a dataset list makes sense — differ per bench. The pair
// add_common_flags / read_common_flags replaces the per-bench copies of
// this block; benches still register their own extra flags (--epochs,
// --bins, ...) on the same parser.

struct CommonFlagDefaults {
  std::string edge_scale = "1.0";
  /// Any nullptr below means: do NOT register that flag — the bench has no
  /// use for it, and accepting a flag that silently does nothing would let
  /// users believe they measured a configuration they didn't.
  const char* batch = "200";
  const char* threads = "0";
  /// --backend: only for benches whose platform set is row-per-case (a
  /// structural fixed-column table cannot be restricted).
  const char* backend = nullptr;
  const char* datasets = nullptr;
  /// --memory_budget: resident vertex-state budget for the engine-backed
  /// platforms ("0" = all-resident; "25m", "512k", or "50%" of the state).
  /// Registered only by benches that route it into BackendOptions.
  const char* memory_budget = nullptr;
  /// --autotune: run perf::AutoTuner::search() over the bench's workload
  /// and add/use the tuned configuration. Registered only by serving
  /// benches that actually route the result into a ServingEngine.
  const char* autotune = nullptr;
};

struct CommonFlags {
  double edge_scale = 1.0;
  std::size_t batch = 200;
  int threads = 0;  ///< 0 = hardware concurrency
  std::string backend;
  std::vector<std::string> datasets;
  std::string memory_budget = "0";  ///< raw spec; resolve per model+dataset
  bool autotune = false;
};

inline void add_common_flags(ArgParser& args,
                             const CommonFlagDefaults& d = {}) {
  args.add_flag("edge_scale", d.edge_scale,
                "dataset scale vs 30k-edge default");
  if (d.batch != nullptr)
    args.add_flag("batch", d.batch, "inference batch size");
  if (d.threads != nullptr)
    args.add_flag("threads", d.threads,
                  "CPU threads / lanes (0 = hw concurrency)");
  if (d.backend != nullptr)
    args.add_flag("backend", d.backend,
                  "runtime backend key (empty = bench default set)");
  if (d.datasets != nullptr)
    args.add_flag("datasets", d.datasets, "comma-separated dataset list");
  if (d.memory_budget != nullptr)
    args.add_flag("memory_budget", d.memory_budget,
                  "vertex-state budget: bytes, k/m/g, or % (0 = resident)");
  if (d.autotune != nullptr)
    args.add_flag("autotune", d.autotune,
                  "run the measured-profile auto-tuner over this workload "
                  "(1 = on)");
}

inline CommonFlags read_common_flags(const ArgParser& args,
                                     const CommonFlagDefaults& d = {}) {
  CommonFlags f;
  f.edge_scale = args.get_double("edge_scale");
  if (d.batch != nullptr)
    f.batch = static_cast<std::size_t>(args.get_int("batch"));
  if (d.threads != nullptr) f.threads = static_cast<int>(args.get_int("threads"));
  if (d.backend != nullptr) f.backend = args.get("backend");
  if (d.datasets != nullptr) f.datasets = split_csv(args.get("datasets"));
  if (d.memory_budget != nullptr) f.memory_budget = args.get("memory_budget");
  if (d.autotune != nullptr) f.autotune = args.get_int("autotune") != 0;
  return f;
}

// ---- shared serving sweep loop ----------------------------------------------
//
// fig5_sharded, fig_overload, and fig_autotune all measure the same thing:
// construct a ServingEngine over a warmed backend, feed it a stream slice,
// drain, read the stats. The submit discipline is the only difference —
// closed loop (saturating, throughput measurement) versus a paced open
// loop at a target offered rate (overload measurement). One helper covers
// both so the sweep loop exists exactly once.

/// One serving run's outcome: the engine's stats plus the row's wall time
/// (submit of the first request to drain completion — the denominator for
/// goodput in open-loop rows, where served < submitted).
struct ServeRunResult {
  runtime::ServingStats stats;
  double wall_s = 0.0;
};

/// Serve `events` stream requests starting at `begin` on `backend` (which
/// must already be fast-forwarded to `begin`) under `sopts`.
/// offered_rps == 0: closed loop — submit as fast as admission allows.
/// offered_rps > 0: open loop — pace submissions at the offered rate
/// (sleep-wait, 20 us granularity, matching the overload bench's pacing).
inline ServeRunResult serve_stream(runtime::Backend& backend,
                                   std::size_t begin, std::size_t events,
                                   const runtime::ServingOptions& sopts,
                                   double offered_rps = 0.0) {
  runtime::ServingEngine server(backend, sopts);
  Stopwatch clock;
  for (std::size_t i = 0; i < events; ++i) {
    if (offered_rps > 0.0) {
      const double target_s = static_cast<double>(i) / offered_rps;
      while (clock.seconds() < target_s)
        std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    server.submit(begin + i);
  }
  server.drain();
  return {server.stats(), clock.seconds()};
}

/// Table-cell label of a stage profile's bottleneck: abbreviated stage
/// name + its p95 in ms ("gnn 1.23").
inline std::string bottleneck_cell(const runtime::ServingStats& s) {
  static constexpr const char* kAbbrev[core::kNumStages] = {"mem", "gthr",
                                                            "gnn", "dec"};
  const std::size_t k = s.stage_profile.bottleneck_stage();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s %.2f", kAbbrev[k],
                s.p95_stage_s[k] * 1e3);
  return buf;
}

/// Resolve a --memory_budget spec against the vertex-state footprint of
/// one (model, dataset) pair — "%" is relative to that footprint. Returns
/// 0 (all-resident) for "0" or an empty spec.
inline std::size_t resolve_memory_budget(const std::string& spec,
                                         const core::TgnModel& model,
                                         const data::Dataset& ds) {
  if (spec.empty() || spec == "0") return 0;
  return runtime::parse_memory_budget(
      spec, core::RuntimeState::state_bytes(ds.graph.num_nodes(),
                                            model.config()));
}

/// One platform row of a bench: which backend key to build, over which
/// model, with which options. Benches declare a list of these and drive
/// them all through the same runtime loop.
struct PlatformCase {
  std::string label;
  std::string key;  ///< runtime backend registry key
  const core::TgnModel* model = nullptr;
  runtime::BackendOptions opts;
};

/// Pure matching core of the --backend override: keep only the cases
/// built on that registry key — or, since keys are no longer unique per
/// case (precision suffixes, device options), whose label matches exactly.
/// Empty override keeps all cases. No I/O and no exit — independently
/// testable (and fuzzable); filter_cases adds the CLI behavior.
inline std::vector<PlatformCase> match_cases(std::vector<PlatformCase> cases,
                                             const std::string& backend) {
  if (backend.empty()) return cases;
  std::vector<PlatformCase> out;
  for (auto& c : cases)
    if (c.key == backend || c.label == backend) out.push_back(std::move(c));
  return out;
}

/// match_cases plus the CLI contract: only meaningful for benches whose
/// output is one row per case. An override matching ZERO cases warns to
/// stderr with everything this bench offers and aborts — an empty table
/// would read as a successful no-op measurement.
inline std::vector<PlatformCase> filter_cases(std::vector<PlatformCase> cases,
                                              const std::string& backend) {
  std::vector<PlatformCase> out = match_cases(cases, backend);
  if (out.empty() && !backend.empty()) {
    std::fprintf(stderr,
                 "warning: --backend '%s' matches none of this bench's cases"
                 " (neither as key nor as label); available:\n",
                 backend.c_str());
    for (const auto& c : cases)
      std::fprintf(stderr, "  %-14s (%s)\n", c.key.c_str(), c.label.c_str());
    std::exit(1);
  }
  return out;
}

/// Build the case's backend, fast-forward to the measurement region, and
/// stream it in fixed-size batches — the uniform bench measurement.
inline runtime::StreamResult measure_case(const PlatformCase& c,
                                          const data::Dataset& ds,
                                          const graph::BatchRange& region,
                                          std::size_t batch) {
  auto backend = runtime::make_backend(c.key, *c.model, ds, c.opts);
  return runtime::measure_stream(*backend, region, batch);
}

/// Same, streaming fixed time windows (the 15-minute real-time scenario).
inline runtime::StreamResult measure_case_windows(
    const PlatformCase& c, const data::Dataset& ds,
    const graph::BatchRange& region, double window_s) {
  auto backend = runtime::make_backend(c.key, *c.model, ds, c.opts);
  return runtime::measure_windows(*backend, region, window_s);
}

}  // namespace tgnn::bench
