// Shared helpers for the benchmark harnesses: dataset construction at a
// bench-friendly scale, model construction, uniform header printing, and
// the runtime-layer glue every bench drives its platforms through.
//
// Every bench binary regenerates one table or figure of the paper; see
// DESIGN.md for the experiment index. Benches print the paper's rows and
// also write a CSV next to the binary for plotting.
//
// Platform execution goes through runtime::make_backend +
// runtime::measure_stream / measure_windows — benches declare WHICH
// backends and models to compare, never how to drive them.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "tgnn/config.hpp"
#include "tgnn/inference.hpp"
#include "tgnn/model.hpp"

namespace tgnn::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n\n");
}

/// Model config matching a dataset's feature dims.
inline core::ModelConfig config_for(const data::Dataset& ds,
                                    const std::string& preset) {
  if (preset == "baseline")
    return core::baseline_config(ds.edge_dim(), ds.node_dim());
  return core::np_config(preset.back(), ds.edge_dim(), ds.node_dim());
}

/// Build a model and, when it uses the LUT encoder, fit it on the training
/// stream (required before any encode call).
inline core::TgnModel make_model(const core::ModelConfig& cfg,
                                 const data::Dataset& ds,
                                 std::uint64_t seed = 1) {
  core::TgnModel model(cfg, seed);
  if (model.lut_encoder())
    model.fit_lut(core::collect_dt_samples(ds, ds.train_range()));
  return model;
}

/// Split a comma-separated CLI list ("wikipedia,reddit,gdelt").
inline std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < list.size();) {
    const auto comma = list.find(',', pos);
    out.push_back(list.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One platform row of a bench: which backend key to build, over which
/// model, with which options. Benches declare a list of these and drive
/// them all through the same runtime loop.
struct PlatformCase {
  std::string label;
  std::string key;  ///< runtime backend registry key
  const core::TgnModel* model = nullptr;
  runtime::BackendOptions opts;
};

/// Build the case's backend, fast-forward to the measurement region, and
/// stream it in fixed-size batches — the uniform bench measurement.
inline runtime::StreamResult measure_case(const PlatformCase& c,
                                          const data::Dataset& ds,
                                          const graph::BatchRange& region,
                                          std::size_t batch) {
  auto backend = runtime::make_backend(c.key, *c.model, ds, c.opts);
  return runtime::measure_stream(*backend, region, batch);
}

/// Same, streaming fixed time windows (the 15-minute real-time scenario).
inline runtime::StreamResult measure_case_windows(
    const PlatformCase& c, const data::Dataset& ds,
    const graph::BatchRange& region, double window_s) {
  auto backend = runtime::make_backend(c.key, *c.model, ds, c.opts);
  return runtime::measure_windows(*backend, region, window_s);
}

}  // namespace tgnn::bench
