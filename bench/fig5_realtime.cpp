// Fig. 5 (right column): real-time inference latency when processing the
// incoming stream in fixed 15-minute windows over the test days, comparing
// the GPU baseline and the two FPGA accelerators (NP(M) model) — all as
// runtime backends through the shared windowed streaming loop.
#include <iostream>

#include "bench/common.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{
      .batch = nullptr, .threads = nullptr, .backend = ""};
  bench::add_common_flags(args, defaults);
  args.add_flag("window_min", "15", "streaming window (minutes)");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;
  const double window = args.get_double("window_min") * 60.0;

  bench::banner("Fig. 5 (right) — real-time latency, 15-minute windows",
                "Zhou et al., IPDPS'22, Fig. 5 right column");

  for (const std::string name : {"wikipedia", "reddit", "gdelt"}) {
    const auto ds = data::by_name(name, scale);
    const auto region = ds.test_range();
    const auto base_model =
        bench::make_model(bench::config_for(ds, "baseline"), ds);
    const auto np_model = bench::make_model(bench::config_for(ds, "npM"), ds);

    runtime::BackendOptions u200, zcu;
    u200.fpga_device = "u200";
    zcu.fpga_device = "zcu104";
    const auto cases = bench::filter_cases(
        {
            {"GPU (TGN baseline)", "gpu-sim", &base_model, {}},
            {"U200 NP(M)", "fpga", &np_model, u200},
            {"ZCU104 NP(M)", "fpga", &np_model, zcu},
        },
        common.backend);

    Table t({"platform", "windows", "mean (ms)", "p95 (ms)", "max (ms)"});
    for (const auto& c : cases) {
      const auto run = bench::measure_case_windows(c, ds, region, window);
      t.add_row({c.label, std::to_string(run.batch_latency_s.size()),
                 Table::num(run.mean_latency_s() * 1e3, 2),
                 Table::num(run.percentile(0.95) * 1e3, 2),
                 Table::num(run.percentile(1.0) * 1e3, 2)});
    }
    t.print(std::cout, "Fig. 5 real-time — " + name);
    t.write_csv("fig5_realtime_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
