// Fig. 5 (right column): real-time inference latency when processing the
// incoming stream in fixed 15-minute windows over the test days, comparing
// the GPU baseline and the two FPGA accelerators (NP(M) model).
#include <algorithm>
#include <iostream>

#include "baselines/cpu_runner.hpp"
#include "baselines/gpu_sim.hpp"
#include "bench/common.hpp"
#include "fpga/accelerator.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

namespace {

struct LatStats {
  double mean = 0.0, p95 = 0.0, max = 0.0;
};

LatStats stats_of(std::vector<double> lat) {
  LatStats s;
  if (lat.empty()) return s;
  for (double l : lat) s.mean += l;
  s.mean /= static_cast<double>(lat.size());
  std::sort(lat.begin(), lat.end());
  s.p95 = lat[static_cast<std::size_t>(0.95 * (lat.size() - 1))];
  s.max = lat.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "1.0", "dataset scale vs 30k-edge default");
  args.add_flag("window_min", "15", "streaming window (minutes)");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");
  const double window = args.get_double("window_min") * 60.0;

  bench::banner("Fig. 5 (right) — real-time latency, 15-minute windows",
                "Zhou et al., IPDPS'22, Fig. 5 right column");

  for (const std::string name : {"wikipedia", "reddit", "gdelt"}) {
    const auto ds = data::by_name(name, scale);
    const auto region = ds.test_range();
    const auto cfg = core::np_config('M', ds.edge_dim(), ds.node_dim());
    const auto model = bench::make_model(cfg, ds);
    const auto base_cfg = core::baseline_config(ds.edge_dim(), ds.node_dim());

    // GPU baseline latency per window (modelled, TGN baseline model).
    baselines::GpuSim gpu(baselines::titan_xp(), base_cfg);
    std::vector<double> gpu_lat;
    for (const auto& w :
         ds.graph.fixed_window_batches(region.begin, region.end, window)) {
      if (w.size() == 0) continue;
      gpu_lat.push_back(gpu.batch_seconds(w.size(), 2 * w.size()));
    }

    Table t({"platform", "windows", "mean (ms)", "p95 (ms)", "max (ms)"});
    const auto g = stats_of(gpu_lat);
    t.add_row({"GPU (TGN baseline)", std::to_string(gpu_lat.size()),
               Table::num(g.mean * 1e3, 2), Table::num(g.p95 * 1e3, 2),
               Table::num(g.max * 1e3, 2)});

    struct Case {
      const char* label;
      fpga::DesignConfig dc;
      fpga::FpgaDevice dev;
    };
    for (const auto& c :
         {Case{"U200 NP(M)", fpga::u200_design(), fpga::alveo_u200()},
          Case{"ZCU104 NP(M)", fpga::zcu104_design(), fpga::zcu104()}}) {
      fpga::Accelerator acc(model, ds, c.dc, c.dev);
      acc.warmup({0, region.begin});
      const auto run = acc.run_windows(region, window);
      const auto s = stats_of(run.batch_latency_s);
      t.add_row({c.label, std::to_string(run.batch_latency_s.size()),
                 Table::num(s.mean * 1e3, 2), Table::num(s.p95 * 1e3, 2),
                 Table::num(s.max * 1e3, 2)});
    }
    t.print(std::cout, "Fig. 5 real-time — " + name);
    t.write_csv("fig5_realtime_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
