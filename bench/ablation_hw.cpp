// Ablations of the hardware design choices DESIGN.md calls out:
//  (a) Updater redundant-write elimination: writes vs invalidations vs
//      committed DDR traffic across batch sizes.
//  (b) DDR burst-efficiency sensitivity: alpha(l) and the resulting T_LS
//      across burst lengths.
//  (c) Prefetching: pipeline latency with the Eq.16-enabled prefetch stage
//      vs a serialized schedule where neighbor fetch must wait for the MUU
//      (what a vanilla-attention design would be forced into).
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/data_loader.hpp"
#include "perf/perf_model.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "0.5", "dataset scale vs 30k-edge default");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");

  bench::banner("Ablations — Updater dedup, burst efficiency, prefetching",
                "design-choice ablations (DESIGN.md section 5)");

  const auto ds = data::wikipedia_like(scale);
  const auto cfg = core::np_config('M', ds.edge_dim(), ds.node_dim());
  const auto model = bench::make_model(cfg, ds);
  const auto region = ds.test_range();

  // ---- (a) Updater redundant-write elimination.
  {
    Table t({"batch", "vertex writes", "eliminated", "eliminated %",
             "DDR write bytes saved (KB)"});
    for (std::size_t batch : {100u, 500u, 2000u}) {
      fpga::Accelerator acc(model, ds, fpga::u200_design(),
                            fpga::alveo_u200());
      acc.warmup({0, region.begin});
      acc.run(region, batch);
      const auto& st = acc.updater_stats();
      const double frac = st.writes == 0
                              ? 0.0
                              : static_cast<double>(st.invalidations) /
                                    static_cast<double>(st.writes);
      const double row_bytes =
          static_cast<double>(cfg.mem_dim + cfg.raw_mail_dim() + 1) * 4.0 +
          12.0;
      t.add_row({std::to_string(batch), std::to_string(st.writes),
                 std::to_string(st.invalidations), Table::pct(frac),
                 Table::num(static_cast<double>(st.invalidations) * row_bytes /
                                1024.0,
                            1)});
    }
    t.print(std::cout, "(a) Updater cache: redundant vertex-update elimination");
    t.write_csv("ablation_updater.csv");
    std::printf("\n");
  }

  // ---- (b) burst-efficiency sweep.
  {
    Table t({"burst bytes", "alpha(l)", "effective BW (GB/s)",
             "T_LS per Nb batch (us)"});
    fpga::DdrModel ddr(fpga::alveo_u200().ddr_bandwidth_gbps);
    fpga::DataLoader loader(cfg);
    fpga::BatchShape shape;
    shape.edges = fpga::u200_design().nb;
    shape.vertices = 2 * shape.edges;
    shape.neighbors = shape.vertices * cfg.effective_neighbors();
    shape.commits = shape.vertices;
    const std::size_t total = loader.total_bytes(shape);
    for (std::size_t burst : {16u, 64u, 256u, 1024u, 4096u}) {
      t.add_row({std::to_string(burst), Table::num(ddr.alpha(burst), 3),
                 Table::num(ddr.alpha(burst) *
                                fpga::alveo_u200().ddr_bandwidth_gbps,
                            1),
                 Table::num(ddr.seconds_for(total, burst) * 1e6, 2)});
    }
    t.print(std::cout,
            "(b) DDR burst efficiency alpha(l) (Lu et al., FPGA'21 model)");
    t.write_csv("ablation_burst.csv");
    std::printf("\n");
  }

  // ---- (c) prefetch vs serialized neighbor fetch.
  {
    Table t({"batch", "with prefetch (ms)", "serialized fetch (ms)",
             "prefetch speedup"});
    for (std::size_t batch : {200u, 1000u, 4000u}) {
      if (region.size() < batch) break;
      fpga::Accelerator acc(model, ds, fpga::u200_design(),
                            fpga::alveo_u200());
      acc.warmup({0, region.begin});
      const auto edges =
          ds.graph.edges({region.begin, region.begin + batch});
      const double with = acc.simulate_batch_seconds(edges);

      // Without Eq. 16 the attention scores need K/Q over fetched features,
      // so the neighbor fetch serializes behind the MUU instead of
      // overlapping with it: each wave pays the prefetch time on top of the
      // pipeline period.
      perf::PerfModel pm(fpga::u200_design(), fpga::alveo_u200(), cfg);
      pm.set_vertices_per_edge(perf::PerfModel::measure_vertices_per_edge(
          ds, {region.begin, region.begin + batch}, fpga::u200_design().nb));
      fpga::DataLoader loader(cfg);
      fpga::DdrModel ddr(fpga::alveo_u200().ddr_bandwidth_gbps);
      fpga::BatchShape shape;
      shape.edges = fpga::u200_design().nb;
      shape.vertices = 2 * shape.edges;
      shape.neighbors = shape.vertices * cfg.effective_neighbors();
      const double fetch = loader.prefetch_neighbors(shape).seconds(ddr);
      const double waves =
          std::ceil(static_cast<double>(batch) /
                    static_cast<double>(fpga::u200_design().nb *
                                        fpga::u200_design().ncu));
      const double without = with + waves * fetch;
      t.add_row({std::to_string(batch), Table::num(with * 1e3, 3),
                 Table::num(without * 1e3, 3),
                 Table::num(without / with, 2) + "x"});
    }
    t.print(std::cout, "(c) prefetching enabled by Eq. 16");
    t.write_csv("ablation_prefetch.csv");
  }
  return 0;
}
