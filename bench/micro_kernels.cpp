// Google-benchmark microbenchmarks of the kernels every experiment sits on:
// GEMM shapes used by the model, the GRU cell, both attention variants, the
// two time encoders, and the hardware-model primitives (FIFO, Updater
// cache). These quantify the per-op claims behind Table II (SAT removes the
// K/Q GEMMs; LUT turns the encoder into a table read).
#include <benchmark/benchmark.h>

#include "fpga/fifo.hpp"
#include "fpga/updater_cache.hpp"
#include "kernels/fused.hpp"
#include "kernels/gemm.hpp"
#include "nn/gru_cell.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/lut_time_encoder.hpp"
#include "tgnn/simplified_attention.hpp"
#include "tgnn/time_encoder.hpp"
#include "util/rng.hpp"

using namespace tgnn;

namespace {

core::ModelConfig paper_cfg() {
  core::ModelConfig cfg;  // mem 100, time 100, emb 100, edge 172, mr 10
  return cfg;
}

void BM_Gemm(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  const Tensor a = Tensor::randn(m, k, rng);
  const Tensor b = Tensor::randn(n, k, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * k * n));
}
BENCHMARK(BM_Gemm)
    ->Args({200, 472, 100})   // GRU input gate on a 200-edge batch
    ->Args({200, 372, 100})   // attention V
    ->Args({1, 372, 100})     // per-node V
    ->Args({400, 100, 100});  // hidden-to-hidden

void BM_GemmFused(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  const Tensor a = Tensor::randn(m, k, rng);
  const Tensor b = Tensor::randn(n, k, rng);
  Tensor c(m, n);
  for (auto _ : state) {
    kernels::gemm_nt(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * k * n));
}
BENCHMARK(BM_GemmFused)
    ->Args({200, 472, 100})
    ->Args({200, 372, 100})
    ->Args({1, 372, 100})
    ->Args({400, 100, 100});

void BM_GruCellForward(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(2);
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  const Tensor x = Tensor::randn(rows, cfg.gru_in_dim(), rng);
  const Tensor h = Tensor::randn(rows, cfg.mem_dim, rng);
  for (auto _ : state) {
    Tensor out = gru.forward(x, h);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_GruCellForward)->Arg(10)->Arg(100)->Arg(400);

void BM_GruCellForwardFused(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(2);
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  const Tensor x = Tensor::randn(rows, cfg.gru_in_dim(), rng);
  const Tensor h = Tensor::randn(rows, cfg.mem_dim, rng);
  kernels::GruScratch ws;
  Tensor out;
  for (auto _ : state) {
    gru.forward_into(x, h, ws, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_GruCellForwardFused)->Arg(10)->Arg(100)->Arg(400);

void BM_VanillaAttentionNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(3);
  core::VanillaAttention att(cfg, rng);
  core::AttnNodeInput in;
  in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng);
  in.kv_in = Tensor::randn(n, cfg.kv_in_dim(), rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  for (auto _ : state) {
    Tensor h = att.forward(f.row(0), in);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_VanillaAttentionNode)->Arg(2)->Arg(6)->Arg(10);

void BM_VanillaAttentionNodeFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(3);
  core::VanillaAttention att(cfg, rng);
  core::AttnNodeInput in;
  in.q_in = Tensor::randn(1, cfg.q_in_dim(), rng);
  in.kv_in = Tensor::randn(n, cfg.kv_in_dim(), rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  core::VanillaAttention::InferScratch ws;
  std::vector<float> out(cfg.emb_dim);
  for (auto _ : state) {
    att.forward_into(f.row(0), in, ws, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_VanillaAttentionNodeFused)->Arg(2)->Arg(6)->Arg(10);

void BM_SimplifiedAttentionNode(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(4);
  core::SimplifiedAttention sat(cfg, rng);
  std::vector<double> dts(cfg.num_neighbors);
  for (std::size_t j = 0; j < dts.size(); ++j)
    dts[j] = 10.0 * static_cast<double>(j + 1);
  const auto scores = sat.score(dts, budget);
  Rng rng2(5);
  const Tensor v_in =
      Tensor::randn(scores.keep.size(), cfg.kv_in_dim(), rng2);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng2);
  for (auto _ : state) {
    const auto s = sat.score(dts, budget);
    Tensor h = sat.aggregate(f.row(0), s, v_in);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_SimplifiedAttentionNode)->Arg(2)->Arg(6)->Arg(10);

void BM_SimplifiedAttentionNodeFused(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(4);
  core::SimplifiedAttention sat(cfg, rng);
  std::vector<double> dts(cfg.num_neighbors);
  for (std::size_t j = 0; j < dts.size(); ++j)
    dts[j] = 10.0 * static_cast<double>(j + 1);
  const auto scores0 = sat.score(dts, budget);
  Rng rng2(5);
  const Tensor v_in =
      Tensor::randn(scores0.keep.size(), cfg.kv_in_dim(), rng2);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng2);
  core::SimplifiedAttention::InferScratch ws;
  core::SimplifiedAttention::ScoreScratch sws;
  core::SimplifiedAttention::Scores scores;
  std::vector<float> out(cfg.emb_dim);
  for (auto _ : state) {
    sat.score_into(dts, budget, sws, scores);
    sat.aggregate_into(f.row(0), scores, v_in, ws, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SimplifiedAttentionNodeFused)->Arg(2)->Arg(6)->Arg(10);

void BM_DecoderForward(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(9);
  core::Decoder dec(cfg, rng);
  const Tensor x = Tensor::randn(rows, 3 * cfg.emb_dim, rng);
  for (auto _ : state) {
    Tensor y = dec.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_DecoderForward)->Arg(1)->Arg(32);

void BM_DecoderForwardFused(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cfg = paper_cfg();
  Rng rng(9);
  core::Decoder dec(cfg, rng);
  const Tensor x = Tensor::randn(rows, 3 * cfg.emb_dim, rng);
  core::Decoder::InferScratch ws;
  for (auto _ : state) {
    const Tensor& y = dec.forward_into(x, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_DecoderForwardFused)->Arg(1)->Arg(32);

void BM_CosTimeEncoder(benchmark::State& state) {
  Rng rng(6);
  core::CosTimeEncoder enc(100, rng);
  Tensor out(1, 100);
  double dt = 0.0;
  for (auto _ : state) {
    enc.encode_scalar(dt += 1.0, out.row(0));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CosTimeEncoder);

void BM_LutTimeEncoder(benchmark::State& state) {
  core::LutTimeEncoder enc(128, 100);
  Rng rng(7);
  std::vector<double> samples(5000);
  for (auto& s : samples) s = rng.pareto(1.0, 1.2);
  enc.fit(samples, nullptr);
  Tensor out(1, 100);
  double dt = 0.0;
  for (auto _ : state) {
    enc.encode_scalar(dt += 1.0, out.row(0));
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LutTimeEncoder);

void BM_UpdaterCacheWriteDrain(benchmark::State& state) {
  fpga::UpdaterCache cache(64, 2);
  Rng rng(8);
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i)
      cache.write(i % 2, static_cast<std::uint32_t>(rng.uniform_int(32)));
    auto out = cache.drain();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_UpdaterCacheWriteDrain);

void BM_FifoPushPop(benchmark::State& state) {
  fpga::Fifo<std::uint64_t> fifo(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    fifo.push(v++);
    benchmark::DoNotOptimize(fifo.pop());
  }
}
BENCHMARK(BM_FifoPushPop);

}  // namespace

BENCHMARK_MAIN();
