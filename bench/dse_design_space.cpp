// Design-space exploration with the predictive performance model — the
// paper's stated purpose for Section V ("estimate the performance based on
// algorithm parameters, design configurations, and memory characteristics").
//
// Sweeps the accelerator design point (Ncu, Sg, SFAM, SFTM, Nb) for each
// device, filters by the resource estimator (must fit the board), and ranks
// feasible designs by predicted throughput — showing where the published
// Table IV configurations sit in their own design space and which resource
// binds first.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "fpga/resource_estimator.hpp"
#include "perf/perf_model.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

namespace {

struct Candidate {
  fpga::DesignConfig dc;
  fpga::Utilization util;
  perf::Prediction pred;
  bool fits = false;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("model", "M", "pruning budget preset: L, M or S");
  args.add_flag("top", "8", "designs to show per device");
  if (!args.parse(argc, argv)) return 1;
  const auto cfg = core::np_config(args.get("model")[0], 172, 0);
  const auto top_n = static_cast<std::size_t>(args.get_int("top"));

  bench::banner("Design-space exploration via the Section V model",
                "application of Zhou et al., IPDPS'22, Section V");

  struct Board {
    fpga::FpgaDevice dev;
    fpga::DesignConfig published;
  };
  for (const auto& board :
       {Board{fpga::alveo_u200(), fpga::u200_design()},
        Board{fpga::zcu104(), fpga::zcu104_design()}}) {
    std::vector<Candidate> cands;
    for (int ncu : {1, 2, 3, 4}) {
      for (std::size_t sg : {4u, 8u, 16u}) {
        for (std::size_t sfam : {8u, 16u, 32u}) {
          for (std::size_t sftm : {16u, 64u, 128u}) {
            for (std::size_t nb : {8u, 16u, 32u}) {
              Candidate c;
              c.dc = board.published;  // keep frequency/scan of the board
              c.dc.ncu = ncu;
              c.dc.sg = sg;
              c.dc.sfam = sfam;
              c.dc.sftm = sftm;
              c.dc.nb = nb;
              c.util =
                  fpga::ResourceEstimator(c.dc, cfg, board.dev).estimate();
              c.fits = c.util.fits(board.dev);
              if (!c.fits) continue;
              perf::PerfModel pm(c.dc, board.dev, cfg);
              // Typical warm-stream dedup for these workloads.
              pm.set_vertices_per_edge(1.4);
              c.pred = pm.steady_state();
              cands.push_back(c);
            }
          }
        }
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.pred.throughput_eps > b.pred.throughput_eps;
              });

    Table t({"rank", "Ncu", "Sg", "SFAM", "SFTM", "Nb", "DSP", "DSP util",
             "pred thpt (kE/s)", "bound by"});
    for (std::size_t r = 0; r < std::min(top_n, cands.size()); ++r) {
      const auto& c = cands[r];
      const char* bound =
          c.pred.t_ls_s >= c.pred.t_comp_s ? "memory" : "compute";
      t.add_row({std::to_string(r + 1), std::to_string(c.dc.ncu),
                 std::to_string(c.dc.sg), std::to_string(c.dc.sfam),
                 std::to_string(c.dc.sftm), std::to_string(c.dc.nb),
                 std::to_string(c.util.dsps),
                 Table::pct(static_cast<double>(c.util.dsps) /
                            static_cast<double>(board.dev.total_dsps())),
                 Table::num(c.pred.throughput_eps / 1e3, 1), bound});
    }
    t.print(std::cout, board.dev.name + " — top feasible designs, NP(" +
                           args.get("model") + ") model");

    // Where does the published Table IV configuration rank?
    perf::PerfModel pub_pm(board.published, board.dev, cfg);
    pub_pm.set_vertices_per_edge(1.4);
    const double pub_tp = pub_pm.steady_state().throughput_eps;
    std::size_t rank = 1;
    for (const auto& c : cands)
      if (c.pred.throughput_eps > pub_tp) ++rank;
    std::printf("published Table IV design: %.1f kE/s predicted -> rank "
                "%zu/%zu feasible designs\n\n",
                pub_tp / 1e3, rank, cands.size());
  }
  std::printf(
      "caveat: the model scores raw MAC-array throughput; designs above "
      "~80%% DSP\nutilization usually fail timing closure at the target "
      "clock after P&R, which\nis why the published configurations are "
      "conservative.\n");
  return 0;
}
