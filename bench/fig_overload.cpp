// Overload sweep: goodput, shed rate, and admitted-request latency versus
// offered load under deadline-aware admission, written to
// BENCH_overload.json (each PR's CI run uploads the JSON as an artifact —
// the repo's overload-behavior trajectory).
//
// Phase 1 probes capacity: the engine serves a tight blocking-admission
// stream and its throughput is taken as the sustainable service rate.
// Phase 2 offers a paced open-loop stream at 0.5x / 1.0x / 2.0x that
// capacity with the kDeadline policy armed: requests whose queue wait
// exceeds the budget are dropped before dispatch instead of being served
// late. Two properties are gated (report-only on a single hardware
// thread, matching the other perf gates' convention):
//
//   * bounded tail — at 2x offered load, the p99 latency of ADMITTED
//     requests stays within --require_p99_factor of the lightly-loaded
//     (0.5x) p99: the deadline converts unbounded queueing delay into
//     typed drops;
//   * preserved goodput — the 2x row still serves at least
//     --require_goodput of the probed capacity: shedding the excess must
//     not starve the work the engine can actually do.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "perf/auto_tuner.hpp"
#include "runtime/serving.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace tgnn;

namespace {

struct Row {
  double offered_x = 0.0;    ///< offered load as a multiple of capacity
  double offered_rps = 0.0;
  std::size_t submitted = 0;
  std::size_t served = 0;
  std::size_t expired = 0;
  std::size_t shed = 0;
  double goodput_rps = 0.0;  ///< served / wall time of the row
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p99_vs_unloaded = 1.0;  ///< vs the 0.5x row
};

void write_json(const std::string& path, double capacity_rps,
                double deadline_ms, std::size_t hw, bool gates_enforced,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_overload\",\n");
  std::fprintf(f, "  \"capacity_rps\": %.1f,\n", capacity_rps);
  std::fprintf(f, "  \"deadline_ms\": %.3f,\n", deadline_ms);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  std::fprintf(f, "  \"gates_enforced\": %s,\n",
               gates_enforced ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"offered_x\": %.2f, \"offered_rps\": %.1f, "
        "\"submitted\": %zu, \"served\": %zu, \"expired\": %zu, "
        "\"shed\": %zu, \"goodput_rps\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"p99_vs_unloaded\": %.2f}%s\n",
        r.offered_x, r.offered_rps, r.submitted, r.served, r.expired, r.shed,
        r.goodput_rps, r.p50_ms, r.p99_ms, r.p99_vs_unloaded,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{
      .batch = "64", .threads = nullptr, .autotune = "0"};
  bench::add_common_flags(args, defaults);
  args.add_flag("users", "4000", "synthetic users");
  args.add_flag("items", "2000", "synthetic items");
  args.add_flag("events", "3000", "requests offered per sweep row");
  args.add_flag("offered", "0.5,1.0,2.0",
                "offered load as multiples of the probed capacity");
  args.add_flag("deadline_ms", "0",
                "queue-wait budget for admitted requests "
                "(0 = auto: two batch service times at capacity)");
  args.add_flag("require_p99_factor", "0",
                "fail if the 2x row's admitted p99 > this x the 0.5x row's "
                "p99 (0 = report only; always report-only on 1 core)");
  args.add_flag("require_goodput", "0",
                "fail if the 2x row's goodput < this x capacity "
                "(0 = report only; always report-only on 1 core)");
  args.add_flag("out", "BENCH_overload.json", "output JSON path");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);

  bench::banner("Overload sweep — goodput & tail latency vs offered load",
                "Zhou et al., IPDPS'22 serving model + deadline-aware "
                "admission control");

  data::SyntheticConfig dcfg;
  dcfg.name = "overload";
  dcfg.num_users = static_cast<std::uint32_t>(args.get_int("users"));
  dcfg.num_items = static_cast<std::uint32_t>(args.get_int("items"));
  dcfg.num_edges = static_cast<std::size_t>(30000.0 * common.edge_scale);
  dcfg.edge_dim = 16;
  dcfg.seed = 17;
  const auto ds = data::make_synthetic(dcfg);
  const auto model = bench::make_model(bench::config_for(ds, "npM"), ds);

  const auto region = ds.test_range();
  const std::size_t events = std::min(
      region.size() / 2, static_cast<std::size_t>(args.get_int("events")));
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());

  // ---- phase 0 (optional): the auto-tuner picks the serving config --------
  // Tuned on a throwaway backend over the same stream prefix; the probe and
  // every sweep row then run the tuned batch/wait (admission overrides
  // still applied per phase below).
  runtime::ServingOptions base_sopts;
  base_sopts.max_batch = common.batch;
  base_sopts.max_wait_s = 1e-4;
  if (common.autotune) {
    runtime::BackendOptions bopts;
    auto scratch = runtime::make_backend("cpu", model, ds, bopts);
    runtime::fast_forward(*scratch, region.begin);
    perf::AutoTunerOptions topts;
    topts.hardware_threads = hw;
    topts.calib_events =
        std::min<std::size_t>(topts.calib_events, region.size() / 6);
    topts.validate_events =
        std::min<std::size_t>(topts.validate_events, region.size() / 6);
    perf::AutoTuner tuner(*scratch, topts);
    const auto tuned = tuner.search(region.begin);
    std::printf("%s\n\n", tuned.describe().c_str());
    base_sopts = tuned.options;
  }

  // ---- phase 1: capacity probe (blocking admission, closed loop) ----------
  double capacity_rps = 0.0;
  std::string probe_summary;
  {
    runtime::BackendOptions bopts;
    auto backend = runtime::make_backend("cpu", model, ds, bopts);
    runtime::fast_forward(*backend, region.begin);
    const auto probe =
        bench::serve_stream(*backend, region.begin, events, base_sopts).stats;
    capacity_rps = probe.throughput_rps;
    probe_summary = probe.describe();
  }
  const double deadline_flag = std::stod(args.get("deadline_ms"));
  const double deadline_s =
      deadline_flag > 0.0
          ? deadline_flag * 1e-3
          : 2.0 * static_cast<double>(base_sopts.max_batch) / capacity_rps;
  std::printf("dataset: %zu nodes, %zu edges; %zu requests per row, batch "
              "%zu, %zu hardware thread(s)\n",
              static_cast<std::size_t>(ds.num_nodes()), ds.num_edges(), events,
              base_sopts.max_batch, hw);
  std::printf("probed capacity: %.0f req/s; deadline budget %.2f ms\n",
              capacity_rps, deadline_s * 1e3);
  std::printf("capacity-probe %s\n", probe_summary.c_str());

  // ---- phase 2: paced open-loop sweep under kDeadline ---------------------
  Table t({"offered", "req/s", "served", "expired", "shed",
           "goodput (req/s)", "p50 (ms)", "p99 (ms)", "p99 vs unloaded"});
  std::vector<Row> rows;
  for (const auto& mult_str : bench::split_csv(args.get("offered"))) {
    Row r;
    r.offered_x = std::stod(mult_str);
    r.offered_rps = r.offered_x * capacity_rps;
    r.submitted = events;

    runtime::BackendOptions bopts;
    auto backend = runtime::make_backend("cpu", model, ds, bopts);
    runtime::fast_forward(*backend, region.begin);
    runtime::ServingOptions sopts = base_sopts;
    sopts.admission = runtime::AdmissionPolicy::kDeadline;
    sopts.deadline_s = deadline_s;
    const auto run = bench::serve_stream(*backend, region.begin, events,
                                         sopts, r.offered_rps);
    const double wall_s = run.wall_s;
    const auto& s = run.stats;
    r.served = s.num_requests;
    r.expired = s.num_expired;
    r.shed = s.num_shed;
    r.goodput_rps = static_cast<double>(r.served) / wall_s;
    r.p50_ms = s.p50_latency_s * 1e3;
    r.p99_ms = s.p99_latency_s * 1e3;
    if (!rows.empty() && rows[0].p99_ms > 0.0)
      r.p99_vs_unloaded = r.p99_ms / rows[0].p99_ms;

    t.add_row({mult_str + "x", Table::num(r.offered_rps, 0),
               std::to_string(r.served), std::to_string(r.expired),
               std::to_string(r.shed), Table::num(r.goodput_rps, 0),
               Table::num(r.p50_ms, 2), Table::num(r.p99_ms, 2),
               Table::num(r.p99_vs_unloaded, 2) + "x"});
    rows.push_back(r);
  }

  t.print(std::cout, "overload sweep (cpu backend, deadline admission)");
  t.write_csv("fig_overload.csv");

  const double require_p99 = std::stod(args.get("require_p99_factor"));
  const double require_goodput = std::stod(args.get("require_goodput"));
  const bool gates_requested = require_p99 > 0.0 || require_goodput > 0.0;
  const bool gates_enforced = gates_requested && hw > 1;
  write_json(args.get("out"), capacity_rps, deadline_s * 1e3, hw,
             gates_enforced, rows);

  bool failed = false;
  const Row* overload = nullptr;
  for (const auto& r : rows)
    if (r.offered_x >= 2.0) overload = &r;
  if (gates_requested && overload != nullptr) {
    if (!gates_enforced) {
      std::printf("single hardware thread: the pacing thread competes with "
                  "serving for the one core; gates are report-only here\n");
    } else {
      if (require_p99 > 0.0 &&
          overload->p99_vs_unloaded > require_p99) {
        std::printf("FAIL: 2x-load admitted p99 is %.2fx the unloaded p99 "
                    "(> %.2fx)\n",
                    overload->p99_vs_unloaded, require_p99);
        failed = true;
      }
      if (require_goodput > 0.0 &&
          overload->goodput_rps < require_goodput * capacity_rps) {
        std::printf("FAIL: 2x-load goodput %.0f req/s < %.2f x capacity "
                    "(%.0f req/s)\n",
                    overload->goodput_rps, require_goodput,
                    require_goodput * capacity_rps);
        failed = true;
      }
      if (!failed) std::printf("gates passed\n");
    }
  }
  return failed ? 1 : 0;
}
