// Fig. 1: frequency histogram of the time-encoder input dt on the
// Wikipedia- and Reddit-like datasets, demonstrating the power-law shape
// that motivates equal-frequency LUT binning (§III-C). Rendered as an ASCII
// histogram + CSV of the bin counts.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "1.0", "dataset scale vs 30k-edge default");
  args.add_flag("bins", "25", "histogram bins over the dt range (days)");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");
  const auto n_bins = static_cast<std::size_t>(args.get_int("bins"));

  bench::banner("Fig. 1 — frequency of time-encoder input dt",
                "Zhou et al., IPDPS'22, Fig. 1");

  for (const std::string name : {"wikipedia", "reddit"}) {
    const auto ds = data::by_name(name, scale);
    auto dts = core::collect_dt_samples(ds, {0, ds.num_edges()});
    for (auto& d : dts) d /= 86400.0;  // days, as in the paper's axis

    const double max_dt = 25.0;  // paper plots 0..25 days
    std::vector<std::size_t> hist(n_bins, 0);
    std::size_t clipped = 0;
    for (double d : dts) {
      if (d >= max_dt) {
        ++clipped;
        continue;
      }
      ++hist[static_cast<std::size_t>(d / max_dt *
                                      static_cast<double>(n_bins))];
    }
    const std::size_t peak = *std::max_element(hist.begin(), hist.end());

    std::printf("-- %s: %zu dt samples, %zu beyond %.0f days --\n",
                name.c_str(), dts.size(), clipped, max_dt);
    Table t({"dt (days)", "count", "histogram"});
    for (std::size_t b = 0; b < n_bins; ++b) {
      const double lo =
          max_dt * static_cast<double>(b) / static_cast<double>(n_bins);
      const int width =
          peak == 0 ? 0
                    : static_cast<int>(50.0 * static_cast<double>(hist[b]) /
                                       static_cast<double>(peak));
      t.add_row({Table::num(lo, 1), std::to_string(hist[b]),
                 std::string(static_cast<std::size_t>(width), '#')});
    }
    t.print(std::cout, "Fig. 1 — " + name);
    t.write_csv("fig1_" + name + ".csv");

    // The power-law property the LUT binning relies on.
    std::sort(dts.begin(), dts.end());
    double mean = 0.0;
    for (double d : dts) mean += d / static_cast<double>(dts.size());
    std::printf("median = %.4f days, mean = %.4f days (heavy tail: mean/median "
                "= %.1f)\n\n",
                dts[dts.size() / 2], mean, mean / dts[dts.size() / 2]);
  }
  return 0;
}
