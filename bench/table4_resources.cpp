// Table IV: design configurations and estimated resource utilization of the
// accelerator on both FPGAs (architectural estimate; the paper reports
// post-place-&-route numbers from Vitis 2020.2 — see EXPERIMENTS.md).
#include <iostream>

#include "bench/common.hpp"
#include "fpga/resource_estimator.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main() {
  bench::banner("Table IV — design configuration and resource utilization",
                "Zhou et al., IPDPS'22, Table IV");

  const auto cfg = core::np_config('M', 172, 0);

  Table t({"design", "Ncu", "Sg^2", "SFAM", "SFTM", "LUT", "DSP", "BRAM",
           "URAM", "freq (MHz)", "fits device"});
  struct Case {
    fpga::DesignConfig dc;
    fpga::FpgaDevice dev;
  };
  for (const auto& c : {Case{fpga::u200_design(), fpga::alveo_u200()},
                        Case{fpga::zcu104_design(), fpga::zcu104()}}) {
    fpga::ResourceEstimator est(c.dc, cfg, c.dev);
    const auto u = est.estimate();
    t.add_row({c.dc.name, std::to_string(c.dc.ncu),
               std::to_string(c.dc.sg) + "x" + std::to_string(c.dc.sg),
               std::to_string(c.dc.sfam), std::to_string(c.dc.sftm),
               std::to_string(u.luts / 1000) + "k", std::to_string(u.dsps),
               std::to_string(u.brams), std::to_string(u.urams),
               Table::num(u.freq_mhz, 0), u.fits(c.dev) ? "yes" : "NO"});
  }
  t.print(std::cout, "Table IV (architectural estimates)");
  t.write_csv("table4_resources.csv");

  std::printf(
      "\npaper (post-P&R, Vitis 2020.2): U200 563k LUT / 2512 DSP / 1415 "
      "BRAM / 448 URAM @250MHz; ZCU104 125k LUT / 744 DSP / 240 BRAM / 0 "
      "URAM @125MHz\n");
  std::printf(
      "estimates count the datapath (MAC arrays at 5 DSP each, FIFOs, "
      "caches, fused LUT tables); HLS control overhead is booked to "
      "fabric.\n");
  return 0;
}
