// Out-of-core vertex state sweep: serving latency and hot-set hit rate
// versus the resident memory budget (100% / 50% / 10% of the vertex-state
// footprint), written to BENCH_oocore.json — the repo's capacity-scaling
// trajectory (each PR's CI run uploads the JSON as an artifact).
//
// The workload is the serving scenario the paged store is built for: a
// Zipf-skewed request stream over a graph whose vertex state dwarfs the
// budget. The head of the popularity distribution stays resident (CLOCK
// keeps re-referenced pages), the tail pages through the spill file, and
// the prefetch hook hides cold faults behind the previous batch. Two
// properties are asserted / gated:
//
//   * bit-identity — every budget serves the exact embeddings the
//     all-resident run produces (checked on a probe batch after the
//     stream; paging must never change numerics);
//   * bounded degradation — --require_p99_inflation gates p99 latency at
//     the 50% budget against the resident row, and --require_hit_rate
//     gates the 50%-budget hit rate (Zipf skew means half the state
//     should cover far more than half the accesses). Both gates are
//     report-only on a single hardware thread, matching the other perf
//     gates' convention.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "runtime/serving.hpp"
#include "tensor/ops.hpp"
#include "util/table.hpp"

using namespace tgnn;

namespace {

struct Row {
  double budget_pct = 0.0;
  std::size_t budget_bytes = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;
  double hit_rate = 1.0;
  graph::VertexStoreStats store;
  double p99_inflation = 1.0;  ///< vs the all-resident row
  bool bit_identical = true;   ///< probe batch matches the resident run
};

void write_json(const std::string& path, std::size_t num_nodes,
                std::size_t state_bytes, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_oocore\",\n");
  std::fprintf(f, "  \"num_nodes\": %zu,\n", num_nodes);
  std::fprintf(f, "  \"state_bytes\": %zu,\n", state_bytes);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"budget_pct\": %.0f, \"budget_bytes\": %zu, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"throughput_rps\": %.1f, \"hit_rate\": %.4f, "
        "\"evictions\": %llu, \"spill_page_writes\": %llu, "
        "\"spill_page_reads\": %llu, \"prefetch_loads\": %llu, "
        "\"writeback_invalidations\": %llu, "
        "\"p99_inflation_vs_resident\": %.2f, \"bit_identical\": %s}%s\n",
        r.budget_pct, r.budget_bytes, r.p50_ms, r.p95_ms, r.p99_ms,
        r.throughput_rps, r.hit_rate,
        static_cast<unsigned long long>(r.store.evictions),
        static_cast<unsigned long long>(r.store.spill_page_writes),
        static_cast<unsigned long long>(r.store.spill_page_reads),
        static_cast<unsigned long long>(r.store.prefetch_loads),
        static_cast<unsigned long long>(r.store.writeback_invalidations),
        r.p99_inflation, r.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.batch = "64", .threads = nullptr};
  bench::add_common_flags(args, defaults);
  args.add_flag("users", "40000", "synthetic users (Zipf-skewed requesters)");
  args.add_flag("items", "20000", "synthetic items");
  args.add_flag("events", "4000", "serving requests per budget row");
  args.add_flag("budgets", "100,50,10",
                "comma-separated budgets as % of the vertex-state bytes");
  args.add_flag("pipelined", "1",
                "serve through the staged pipeline (prefetch fires one "
                "stage early); 0 = serial engine loop");
  args.add_flag("require_p99_inflation", "0",
                "fail if 50%%-budget p99 > this x resident p99 "
                "(0 = report only; always report-only on 1 core)");
  args.add_flag("require_hit_rate", "0",
                "fail if the 50%%-budget hit rate is below this "
                "(0 = report only; always report-only on 1 core)");
  args.add_flag("out", "BENCH_oocore.json", "output JSON path");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);

  bench::banner("Out-of-core sweep — latency & hit rate vs resident budget",
                "Zhou et al., IPDPS'22, §IV-B Updater cache, re-targeted "
                "RAM-vs-spill");

  // A Zipf-skewed interaction stream (the synthetic generator's default
  // user skew) over a graph whose vertex state is ~10x the smallest
  // budget: the capacity regime the paged store exists for.
  data::SyntheticConfig dcfg;
  dcfg.name = "oocore";
  dcfg.num_users = static_cast<std::uint32_t>(args.get_int("users"));
  dcfg.num_items = static_cast<std::uint32_t>(args.get_int("items"));
  dcfg.num_edges = static_cast<std::size_t>(30000.0 * common.edge_scale);
  dcfg.edge_dim = 16;
  dcfg.seed = 17;
  const auto ds = data::make_synthetic(dcfg);
  const auto model = bench::make_model(bench::config_for(ds, "npM"), ds);
  const std::size_t state_bytes = core::RuntimeState::state_bytes(
      ds.graph.num_nodes(), model.config());

  const auto region = ds.test_range();
  const std::size_t events = std::min(
      region.size(), static_cast<std::size_t>(args.get_int("events")));
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const bool pipelined = args.get_int("pipelined") != 0;
  std::printf("dataset: %zu nodes, %zu edges; vertex state %.1f MiB; "
              "serving %zu events, batch %zu, %s engine, %zu hardware "
              "thread(s)\n\n",
              static_cast<std::size_t>(ds.num_nodes()), ds.num_edges(),
              static_cast<double>(state_bytes) / (1024.0 * 1024.0), events,
              common.batch, pipelined ? "pipelined" : "serial", hw);

  Table t({"budget", "MiB", "p50 (ms)", "p95 (ms)", "p99 (ms)",
           "thpt (kreq/s)", "hit rate", "evictions", "spill W", "spill R",
           "prefetch", "p99 vs resident", "bit-identical"});

  std::vector<Row> rows;
  Tensor resident_probe;  // embeddings of the probe batch
  const graph::BatchRange probe{region.begin + events,
                                std::min(region.begin + events + common.batch,
                                         region.end)};

  for (const auto& pct_str : bench::split_csv(args.get("budgets"))) {
    Row r;
    r.budget_pct = std::stod(pct_str);
    r.budget_bytes = r.budget_pct >= 100.0
                         ? 0  // all-resident, no cap
                         : runtime::parse_memory_budget(pct_str + "%",
                                                        state_bytes);

    runtime::BackendOptions bopts;
    bopts.memory_budget = r.budget_bytes;
    auto backend = runtime::make_backend("cpu", model, ds, bopts);
    runtime::fast_forward(*backend, region.begin);

    runtime::ServingOptions sopts;
    sopts.max_batch = common.batch;
    sopts.max_wait_s = 1e-3;
    sopts.pipelined = pipelined;
    sopts.deterministic = pipelined;  // keep every row's stream identical
    runtime::ServingEngine server(*backend, sopts);
    for (std::size_t i = region.begin; i < region.begin + events; ++i)
      server.submit(i);
    server.drain();

    const auto s = server.stats();
    r.p50_ms = s.p50_latency_s * 1e3;
    r.p95_ms = s.p95_latency_s * 1e3;
    r.p99_ms = s.p99_latency_s * 1e3;
    r.throughput_rps = s.throughput_rps;
    r.store = s.store;
    r.hit_rate = s.store.hit_rate();

    // Bit-identity probe: the state the stream left behind must produce
    // the exact embeddings the all-resident run produces.
    const auto out = backend->process_batch(probe);
    if (rows.empty()) {
      resident_probe = out.functional.embeddings;
      r.p99_inflation = 1.0;
    } else {
      r.bit_identical =
          out.functional.embeddings.size() == resident_probe.size() &&
          ops::max_abs_diff(out.functional.embeddings, resident_probe) == 0.0f;
      r.p99_inflation =
          rows[0].p99_ms > 0.0 ? r.p99_ms / rows[0].p99_ms : 1.0;
    }

    t.add_row({pct_str + "%",
               Table::num(static_cast<double>(r.budget_bytes == 0
                                                  ? state_bytes
                                                  : r.budget_bytes) /
                              (1024.0 * 1024.0),
                          1),
               Table::num(r.p50_ms, 2), Table::num(r.p95_ms, 2),
               Table::num(r.p99_ms, 2),
               Table::num(r.throughput_rps / 1e3, 2),
               Table::num(r.hit_rate, 4), std::to_string(r.store.evictions),
               std::to_string(r.store.spill_page_writes),
               std::to_string(r.store.spill_page_reads),
               std::to_string(r.store.prefetch_loads),
               Table::num(r.p99_inflation, 2) + "x",
               r.bit_identical ? "yes" : "NO"});
    rows.push_back(r);
  }

  t.print(std::cout, "out-of-core budget sweep (cpu backend)");
  t.write_csv("fig_oocore.csv");
  write_json(args.get("out"), static_cast<std::size_t>(ds.num_nodes()),
             state_bytes, rows);

  bool failed = false;
  for (const auto& r : rows)
    if (!r.bit_identical) {
      std::printf("FAIL: %.0f%% budget is not bit-identical to resident\n",
                  r.budget_pct);
      failed = true;
    }

  const double require_inflation = std::stod(args.get("require_p99_inflation"));
  const double require_hit = std::stod(args.get("require_hit_rate"));
  const Row* half = nullptr;
  for (const auto& r : rows)
    if (r.budget_pct == 50.0) half = &r;
  if ((require_inflation > 0.0 || require_hit > 0.0) && half != nullptr) {
    if (hw <= 1) {
      std::printf("single hardware thread: paging competes with serving for "
                  "the one core; gates are report-only here\n");
    } else {
      if (require_inflation > 0.0 && half->p99_inflation > require_inflation) {
        std::printf("FAIL: 50%% budget p99 inflation %.2fx > %.2fx\n",
                    half->p99_inflation, require_inflation);
        failed = true;
      }
      if (require_hit > 0.0 && half->hit_rate < require_hit) {
        std::printf("FAIL: 50%% budget hit rate %.4f < %.4f\n", half->hit_rate,
                    require_hit);
        failed = true;
      }
    }
  }
  if (!failed && (require_inflation > 0.0 || require_hit > 0.0) && hw > 1)
    std::printf("gates passed\n");
  return failed ? 1 : 0;
}
