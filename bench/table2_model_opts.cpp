// Table II: accuracy (AP), complexity, and single-thread throughput of the
// accumulated model optimizations — Baseline -> +SAT -> +LUT -> +NP(L/M/S)
// — on the three datasets. Students with simplified attention are trained
// with knowledge distillation from the dataset's baseline teacher (Eq. 17).
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "tgnn/complexity.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "0.27", "dataset scale vs 30k-edge default");
  args.add_flag("epochs", "3", "training epochs per model");
  args.add_flag("batch", "200", "training/inference batch size");
  args.add_flag("datasets", "wikipedia,reddit,gdelt", "comma-separated list");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");

  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  topts.batch_size = static_cast<std::size_t>(args.get_int("batch"));

  bench::banner("Table II — accumulated model optimizations",
                "Zhou et al., IPDPS'22, Table II");

  const auto names = bench::split_csv(args.get("datasets"));

  for (const auto& name : names) {
    const auto ds = data::by_name(name, scale);
    const auto ladder = core::presets(ds.edge_dim(), ds.node_dim());

    Table t({"model", "|N(v)|", "kMEM", "kMEM%", "kMAC(GRU)", "kMAC(GNN)",
             "kMAC(tot)", "kMAC%", "AP", "dAP", "thpt (kE/s)", "speedup"});

    // Train the teacher first; it supervises every simplified student.
    std::unique_ptr<core::TgnModel> teacher;
    double base_macs = 0.0, base_mems = 0.0, base_ap = 0.0, base_tp = 0.0;

    for (const auto& rung : ladder) {
      auto model = std::make_unique<core::TgnModel>(rung.config, 1);
      Rng drng(2);
      core::Decoder dec(rung.config, drng);
      core::TrainOptions opts = topts;
      if (rung.config.attention == core::AttentionKind::kSimplified)
        opts.teacher = teacher.get();
      std::printf("  training %-9s on %-9s ...\n", rung.label.c_str(),
                  name.c_str());
      const auto fit = core::fit_and_eval(*model, dec, ds, opts);

      const auto run = bench::measure_case({"cpu", "cpu", model.get(), {}}, ds,
                                           ds.test_range(), topts.batch_size);

      const auto rep = core::analyze(rung.config);
      if (rung.label == "Baseline") {
        base_macs = rep.total_macs();
        base_mems = rep.total_mems();
        base_ap = fit.test_ap;
        base_tp = run.throughput_eps();
        teacher = std::move(model);
      }
      t.add_row({rung.label,
                 std::to_string(rung.config.effective_neighbors()),
                 Table::num(rep.total_mems() / 1e3, 1),
                 Table::pct(rep.total_mems() / base_mems),
                 Table::num(rep.gru_macs() / 1e3, 1),
                 Table::num(rep.gnn_macs() / 1e3, 1),
                 Table::num(rep.total_macs() / 1e3, 1),
                 Table::pct(rep.total_macs() / base_macs),
                 Table::num(fit.test_ap, 4),
                 Table::num(fit.test_ap - base_ap, 4),
                 Table::num(run.throughput_eps() / 1e3, 2),
                 Table::num(run.throughput_eps() / base_tp, 2) + "x"});
    }
    t.print(std::cout, "Table II — " + name);
    t.write_csv("table2_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
