// Table II: accuracy (AP), complexity, and single-thread throughput of the
// accumulated model optimizations — Baseline -> +SAT -> +LUT -> +NP(L/M/S)
// — on the three datasets. Students with simplified attention are trained
// with knowledge distillation from the dataset's baseline teacher (Eq. 17).
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "tgnn/complexity.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.edge_scale = "0.27",
                                           .backend = "cpu",
                                           .datasets = "wikipedia,reddit,gdelt"};
  bench::add_common_flags(args, defaults);
  args.add_flag("epochs", "3", "training epochs per model");
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;

  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  topts.batch_size = common.batch;

  // --backend accepts precision-suffixed keys ("cpu:int8"); when one is
  // chosen, re-measure AP through an engine at that precision so the AP
  // column describes what the measured backend actually computes (a bad
  // suffix is left to make_backend, whose error message lists the options).
  kernels::Precision prec = kernels::Precision::kFp32;
  if (const auto pos = common.backend.find(':'); pos != std::string::npos)
    kernels::parse_precision(common.backend.substr(pos + 1), prec);

  bench::banner("Table II — accumulated model optimizations",
                "Zhou et al., IPDPS'22, Table II");

  const auto names = common.datasets;

  for (const auto& name : names) {
    const auto ds = data::by_name(name, scale);
    const auto ladder = core::presets(ds.edge_dim(), ds.node_dim());

    Table t({"model", "|N(v)|", "kMEM", "kMEM%", "kMAC(GRU)", "kMAC(GNN)",
             "kMAC(tot)", "kMAC%", "AP", "dAP", "thpt (kE/s)", "speedup"});

    // Train the teacher first; it supervises every simplified student.
    std::unique_ptr<core::TgnModel> teacher;
    double base_macs = 0.0, base_mems = 0.0, base_ap = 0.0, base_tp = 0.0;

    for (const auto& rung : ladder) {
      auto model = std::make_unique<core::TgnModel>(rung.config, 1);
      Rng drng(2);
      core::Decoder dec(rung.config, drng);
      core::TrainOptions opts = topts;
      if (rung.config.attention == core::AttentionKind::kSimplified)
        opts.teacher = teacher.get();
      std::printf("  training %-9s on %-9s ...\n", rung.label.c_str(),
                  name.c_str());
      const auto fit = core::fit_and_eval(*model, dec, ds, opts);

      // Same protocol as fit_and_eval's test pass, at the requested
      // precision — so dAP stays a within-precision column.
      double ap = fit.test_ap;
      if (prec != kernels::Precision::kFp32) {
        core::InferenceEngine q(*model, ds, /*use_fifo=*/true);
        q.set_precision(prec);
        q.warmup({0, ds.val_end}, opts.batch_size);
        Rng qrng(opts.seed + 1);
        ap = q.evaluate_ap(ds.test_range(), dec, opts.batch_size, qrng);
      }

      runtime::BackendOptions bopts;
      bopts.threads = common.threads;
      const auto run =
          bench::measure_case({common.backend, common.backend, model.get(),
                               bopts},
                              ds, ds.test_range(), topts.batch_size);

      const auto rep = core::analyze(rung.config);
      if (rung.label == "Baseline") {
        base_macs = rep.total_macs();
        base_mems = rep.total_mems();
        base_ap = ap;
        base_tp = run.throughput_eps();
        teacher = std::move(model);
      }
      t.add_row({rung.label,
                 std::to_string(rung.config.effective_neighbors()),
                 Table::num(rep.total_mems() / 1e3, 1),
                 Table::pct(rep.total_mems() / base_mems),
                 Table::num(rep.gru_macs() / 1e3, 1),
                 Table::num(rep.gnn_macs() / 1e3, 1),
                 Table::num(rep.total_macs() / 1e3, 1),
                 Table::pct(rep.total_macs() / base_macs),
                 Table::num(ap, 4),
                 Table::num(ap - base_ap, 4),
                 Table::num(run.throughput_eps() / 1e3, 2),
                 Table::num(run.throughput_eps() / base_tp, 2) + "x"});
    }
    t.print(std::cout, "Table II — " + name);
    t.write_csv("table2_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
