// Table I: kMEM / kMAC counts and per-part execution time (sample / memory /
// GNN / update) per dynamic node embedding for the TGN-attn baseline on the
// Wikipedia- and Reddit-like datasets, on 1 CPU thread, many CPU threads,
// and the modelled GPU — three runtime backends through one shared loop,
// with the per-part split coming from StreamResult.parts.
#include <iostream>
#include <thread>

#include "bench/common.hpp"
#include "tgnn/complexity.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  const bench::CommonFlagDefaults defaults{.edge_scale = "0.4"};
  bench::add_common_flags(args, defaults);
  if (!args.parse(argc, argv)) return 1;
  const auto common = bench::read_common_flags(args, defaults);
  const double scale = common.edge_scale;
  const std::size_t batch = common.batch;
  int threads = common.threads;
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());

  bench::banner("Table I — per-embedding complexity and execution time",
                "Zhou et al., IPDPS'22, Table I");

  for (const std::string name : {"wikipedia", "reddit"}) {
    const auto ds = data::by_name(name, scale);
    const auto cfg = bench::config_for(ds, "baseline");
    const auto rep = core::analyze(cfg);
    const auto model = bench::make_model(cfg, ds);

    runtime::BackendOptions mt;
    mt.threads = threads;
    const bench::PlatformCase cases[] = {
        {"1-thread", "cpu", &model, {}},
        {"n-thread", "cpu-mt", &model, mt},
        {"gpu", "gpu-sim", &model, {}},
    };
    // Measurement region: the test split after warming through train+val.
    const auto r1 = bench::measure_case(cases[0], ds, ds.test_range(), batch);
    const auto rn = bench::measure_case(cases[1], ds, ds.test_range(), batch);
    const auto rg = bench::measure_case(cases[2], ds, ds.test_range(), batch);

    Table t({"part", "kMEM", "kMEM%", "kMAC", "kMAC%", "1-thread (ns)",
             std::to_string(threads) + "-thread (ns)", "GPU (ns)"});
    auto per_emb = [](const runtime::StreamResult& r, double sec) {
      return sec * 1e9 / static_cast<double>(r.num_embeddings);
    };
    struct Row {
      const char* name;
      core::PartCount c;
      double t1, tn, tg;
    };
    const Row rows[] = {
        {"sample", rep.sample, per_emb(r1, r1.parts.sample),
         per_emb(rn, rn.parts.sample), per_emb(rg, rg.parts.sample)},
        {"memory", rep.memory, per_emb(r1, r1.parts.memory),
         per_emb(rn, rn.parts.memory), per_emb(rg, rg.parts.memory)},
        {"GNN", rep.gnn, per_emb(r1, r1.parts.gnn), per_emb(rn, rn.parts.gnn),
         per_emb(rg, rg.parts.gnn)},
        {"update", rep.update, per_emb(r1, r1.parts.update),
         per_emb(rn, rn.parts.update), per_emb(rg, rg.parts.update)},
    };
    for (const auto& row : rows) {
      t.add_row({row.name, Table::num(row.c.mems / 1e3, 1),
                 Table::pct(row.c.mems / rep.total_mems()),
                 Table::num(row.c.macs / 1e3, 1),
                 Table::pct(row.c.macs / rep.total_macs()),
                 Table::num(row.t1, 0), Table::num(row.tn, 0),
                 Table::num(row.tg, 0)});
    }
    t.add_row({"total", Table::num(rep.total_mems() / 1e3, 1), "100%",
               Table::num(rep.total_macs() / 1e3, 1), "100%",
               Table::num(per_emb(r1, r1.parts.total()), 0),
               Table::num(per_emb(rn, rn.parts.total()), 0),
               Table::num(per_emb(rg, rg.parts.total()), 0)});
    t.print(std::cout, "Table I — " + name + " (per dynamic node embedding)");
    t.write_csv("table1_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
