// Table I: kMEM / kMAC counts and per-part execution time (sample / memory /
// GNN / update) per dynamic node embedding for the TGN-attn baseline on the
// Wikipedia- and Reddit-like datasets, on 1 CPU thread, many CPU threads,
// and the modelled GPU.
#include <iostream>
#include <thread>

#include "baselines/cpu_runner.hpp"
#include "baselines/gpu_sim.hpp"
#include "bench/common.hpp"
#include "tgnn/complexity.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edge_scale", "0.4", "dataset scale vs 30k-edge default");
  args.add_flag("batch", "200", "inference batch size");
  args.add_flag("threads", "0", "parallel CPU threads (0 = hw concurrency)");
  if (!args.parse(argc, argv)) return 1;
  const double scale = args.get_double("edge_scale");
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  int threads = static_cast<int>(args.get_int("threads"));
  if (threads <= 0)
    threads = static_cast<int>(std::thread::hardware_concurrency());

  bench::banner("Table I — per-embedding complexity and execution time",
                "Zhou et al., IPDPS'22, Table I");

  for (const std::string name : {"wikipedia", "reddit"}) {
    const auto ds = data::by_name(name, scale);
    const auto cfg = core::baseline_config(ds.edge_dim(), ds.node_dim());
    const auto rep = core::analyze(cfg);
    const auto model = bench::make_model(cfg, ds);

    // Measured per-part times on 1 thread and `threads` threads.
    auto run_cpu = [&](int t) {
      baselines::CpuRunner runner(model, ds, t);
      runner.warmup({0, ds.val_end});
      return runner.run(ds.test_range(), batch);
    };
    const auto r1 = run_cpu(1);
    const auto rn = run_cpu(threads);

    // Modelled GPU per-part times for the same number of embeddings.
    baselines::GpuSim gpu(baselines::titan_xp(), cfg);
    const std::size_t bat_emb =
        r1.num_embeddings / std::max<std::size_t>(1, r1.batch_latency_s.size());
    core::PartTimes gp = gpu.batch_parts(batch, bat_emb);

    Table t({"part", "kMEM", "kMEM%", "kMAC", "kMAC%", "1-thread (ns)",
             std::to_string(threads) + "-thread (ns)", "GPU (ns)"});
    struct Row {
      const char* name;
      core::PartCount c;
      double t1, tn, tg;
    };
    const double n_emb = static_cast<double>(r1.num_embeddings);
    auto ns1 = [&](double sec) { return sec * 1e9 / n_emb; };
    auto nsn = [&](double sec) {
      return sec * 1e9 / static_cast<double>(rn.num_embeddings);
    };
    auto nsg = [&](double sec) {
      return sec * 1e9 / static_cast<double>(bat_emb);
    };
    const Row rows[] = {
        {"sample", rep.sample, ns1(r1.parts.sample), nsn(rn.parts.sample),
         nsg(gp.sample)},
        {"memory", rep.memory, ns1(r1.parts.memory), nsn(rn.parts.memory),
         nsg(gp.memory)},
        {"GNN", rep.gnn, ns1(r1.parts.gnn), nsn(rn.parts.gnn), nsg(gp.gnn)},
        {"update", rep.update, ns1(r1.parts.update), nsn(rn.parts.update),
         nsg(gp.update)},
    };
    for (const auto& row : rows) {
      t.add_row({row.name, Table::num(row.c.mems / 1e3, 1),
                 Table::pct(row.c.mems / rep.total_mems()),
                 Table::num(row.c.macs / 1e3, 1),
                 Table::pct(row.c.macs / rep.total_macs()),
                 Table::num(row.t1, 0), Table::num(row.tn, 0),
                 Table::num(row.tg, 0)});
    }
    t.add_row({"total", Table::num(rep.total_mems() / 1e3, 1), "100%",
               Table::num(rep.total_macs() / 1e3, 1), "100%",
               Table::num(ns1(r1.parts.total()), 0),
               Table::num(nsn(rn.parts.total()), 0),
               Table::num(nsg(gp.total()), 0)});
    t.print(std::cout, "Table I — " + name + " (per dynamic node embedding)");
    t.write_csv("table1_" + name + ".csv");
    std::printf("\n");
  }
  return 0;
}
