// Real-time recommendation from dynamic embeddings — the "recommender
// systems" application of §I. For each test interaction we ask: given the
// user's *current* dynamic embedding, how highly does the item they are
// about to interact with rank among candidate items?
//
// Reported: hit@k against a random-candidate set, versus a popularity
// baseline — showing that the temporal embeddings carry real preference
// signal, not just global popularity.
//
//   ./recommendation [--edges 8000] [--epochs 3] [--candidates 50]
#include <algorithm>
#include <cstdio>
#include <map>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edges", "8000", "number of synthetic interactions");
  args.add_flag("epochs", "3", "training epochs");
  args.add_flag("candidates", "50", "candidate pool size per query");
  args.add_flag("queries", "300", "number of recommendation queries");
  if (!args.parse(argc, argv)) return 1;

  const double scale = static_cast<double>(args.get_int("edges")) / 30000.0;
  const auto ds = data::wikipedia_like(scale);

  const auto cfg = core::np_config('M', ds.edge_dim(), ds.node_dim());
  core::TgnModel model(cfg, 1);
  Rng drng(2);
  core::Decoder dec(cfg, drng);
  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  std::printf("training NP(M) model (%zu epochs) ...\n", topts.epochs);
  core::Trainer(model, dec, ds, topts).train();

  // The ranker runs behind the unified runtime seam — swap the "cpu-mt" key
  // for "fpga" to rank on the simulated accelerator instead.
  auto backend = runtime::make_backend("cpu-mt", model, ds);
  runtime::fast_forward(*backend, ds.val_end);

  // Popularity baseline: training-period interaction counts per item.
  std::map<graph::NodeId, std::size_t> popularity;
  for (std::size_t i = 0; i < ds.train_end; ++i)
    ++popularity[ds.graph.edge(i).dst];

  Rng rng(11);
  const auto n_cand = static_cast<std::size_t>(args.get_int("candidates"));
  const auto max_queries = static_cast<std::size_t>(args.get_int("queries"));
  const auto pool = data::destination_pool(ds);

  std::size_t queries = 0;
  std::size_t hit1 = 0, hit5 = 0, hit10 = 0;
  std::size_t pop_hit10 = 0, rand_hit10 = 0;

  for (const auto& b : ds.graph.fixed_size_batches(
           ds.val_end, ds.num_edges(), 100)) {
    const auto edges = ds.graph.edges(b);
    if (queries >= max_queries) break;
    // Candidate set per query: the true next item + random distractors.
    std::vector<graph::NodeId> cands;
    for (const auto& e : edges) {
      (void)e;
      for (std::size_t c = 0; c + 1 < n_cand; ++c)
        cands.push_back(pool[rng.uniform_int(pool.size())]);
    }
    const auto res = backend->process_batch(b, cands).functional;

    std::size_t cursor = 0;
    for (const auto& e : edges) {
      if (queries >= max_queries) break;
      const auto hu = res.embedding_of(e.src);
      struct Scored {
        double score;
        graph::NodeId item;
        bool truth;
      };
      std::vector<Scored> ranked;
      ranked.push_back({dec.score(hu, res.embedding_of(e.dst)), e.dst, true});
      for (std::size_t c = 0; c + 1 < n_cand; ++c) {
        const graph::NodeId item = cands[cursor++];
        ranked.push_back(
            {dec.score(hu, res.embedding_of(item)), item, item == e.dst});
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const Scored& a, const Scored& b) {
                         return a.score > b.score;
                       });
      std::size_t rank = n_cand;
      for (std::size_t r = 0; r < ranked.size(); ++r)
        if (ranked[r].truth) {
          rank = r;
          break;
        }
      ++queries;
      if (rank < 1) ++hit1;
      if (rank < 5) ++hit5;
      if (rank < 10) ++hit10;

      // Popularity baseline on the same candidate set.
      std::stable_sort(ranked.begin(), ranked.end(),
                       [&](const Scored& a, const Scored& b) {
                         return popularity[a.item] > popularity[b.item];
                       });
      for (std::size_t r = 0; r < std::min<std::size_t>(10, ranked.size()); ++r)
        if (ranked[r].truth) {
          ++pop_hit10;
          break;
        }
      // Random baseline: P(hit@10) = 10 / n_cand.
      if (rng.uniform() < 10.0 / static_cast<double>(n_cand)) ++rand_hit10;
    }
  }

  const auto pct = [&](std::size_t h) {
    return 100.0 * static_cast<double>(h) / static_cast<double>(queries);
  };
  std::printf("\n%zu queries, %zu candidates each\n", queries, n_cand);
  std::printf("TGNN embeddings : hit@1 %.1f%%  hit@5 %.1f%%  hit@10 %.1f%%\n",
              pct(hit1), pct(hit5), pct(hit10));
  std::printf("popularity      : hit@10 %.1f%%\n", pct(pop_hit10));
  std::printf("random          : hit@10 %.1f%%\n", pct(rand_hit10));
  return 0;
}
