// Edge deployment study — the paper's IoT/embedded motivation for the
// ZCU104 port (§VI-A: "the proposed design can be deployed on light-weight
// embedded platforms").
//
// Streams the test period in 15-minute windows through the simulated
// ZCU104 accelerator with each pruning budget NP(L/M/S), checks resource
// fit, and reports whether the real-time deadline (every window processed
// before the next arrives, and the paper's 10 ms interactive target) holds.
//
//   ./edge_deployment [--edges 15000] [--window_min 15]
#include <cstdio>

#include "data/synthetic.hpp"
#include "fpga/device.hpp"
#include "fpga/resource_estimator.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "tgnn/inference.hpp"
#include "util/argparse.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edges", "15000", "number of synthetic interactions");
  args.add_flag("window_min", "15", "streaming window (minutes)");
  if (!args.parse(argc, argv)) return 1;

  const double scale = static_cast<double>(args.get_int("edges")) / 30000.0;
  const double window = args.get_double("window_min") * 60.0;
  const auto ds = data::wikipedia_like(scale);
  const auto dev = fpga::zcu104();
  const auto dc = fpga::zcu104_design();

  std::printf("deploying on %s (%.1f GB/s DDR, %d CU @ %.0f MHz)\n",
              dev.name.c_str(), dev.ddr_bandwidth_gbps, dc.ncu, dc.freq_mhz);
  std::printf("stream: %zu interactions over %.1f days; window = %.0f min\n\n",
              ds.num_edges(), (ds.graph.t_max() - ds.graph.t_min()) / 86400.0,
              window / 60.0);

  for (char size : {'L', 'M', 'S'}) {
    const auto cfg = core::np_config(size, ds.edge_dim(), ds.node_dim());

    // Resource check first — deployment is a no-go if the design doesn't fit.
    fpga::ResourceEstimator est(dc, cfg, dev);
    const auto util = est.estimate();
    std::printf("NP(%c): %zu DSP / %zu BRAM / %zu URAM -> %s\n", size,
                util.dsps, util.brams, util.urams,
                util.fits(dev) ? "fits" : "DOES NOT FIT");
    if (!util.fits(dev)) continue;

    core::TgnModel model(cfg, 1);
    model.fit_lut(core::collect_dt_samples(ds, ds.train_range()));
    runtime::BackendOptions fo;
    fo.fpga_device = "zcu104";
    auto backend = runtime::make_backend("fpga", model, ds, fo);
    const auto run =
        runtime::measure_windows(*backend, ds.test_range(), window);

    const double p50 = run.percentile(0.50);
    const double p99 = run.percentile(0.99);
    const double worst = run.percentile(1.0);
    std::size_t deadline_misses = 0;
    for (double l : run.batch_latency_s)
      if (l > 10e-3) ++deadline_misses;  // paper: <10 ms meets real-time needs

    std::printf("  %zu windows: latency p50 %.2f ms, p99 %.2f ms, worst %.2f "
                "ms; throughput %.1f kE/s\n",
                run.batch_latency_s.size(), p50 * 1e3, p99 * 1e3, worst * 1e3,
                run.throughput_eps() / 1e3);
    std::printf("  10 ms interactive deadline: %zu/%zu windows missed; "
                "window budget (%.0f s) headroom: %.0fx\n\n",
                deadline_misses, run.batch_latency_s.size(), window,
                window / worst);
  }
  std::printf("(compare: the U200 datacenter deployment in "
              "bench/fig5_latency_throughput)\n");
  return 0;
}
