// Quickstart: train a small TGN-attn teacher on a synthetic temporal graph,
// distill a co-designed student (simplified attention + LUT time encoder +
// neighbor pruning), compare their test accuracy and single-thread
// throughput through the unified runtime layer, then serve the student
// online through the micro-batching ServingEngine — the whole co-design
// story in ~100 lines.
//
//   ./quickstart [--edges 8000] [--epochs 2]
#include <cstdio>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "runtime/serving.hpp"
#include "tgnn/complexity.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edges", "8000", "number of synthetic interactions");
  args.add_flag("epochs", "2", "training epochs");
  if (!args.parse(argc, argv)) return 1;

  // 1. A Wikipedia-like synthetic dynamic graph (172-d edge features).
  const double scale = static_cast<double>(args.get_int("edges")) / 30000.0;
  const auto ds = data::wikipedia_like(scale);
  std::printf("dataset: %zu nodes, %zu edges, %.1f days\n",
              static_cast<std::size_t>(ds.num_nodes()), ds.num_edges(),
              (ds.graph.t_max() - ds.graph.t_min()) / 86400.0);

  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  topts.verbose = true;

  // 2. Teacher: vanilla temporal attention (Eq. 11-15).
  core::ModelConfig teacher_cfg =
      core::baseline_config(ds.edge_dim(), ds.node_dim());
  core::TgnModel teacher(teacher_cfg, /*seed=*/1);
  Rng drng(2);
  core::Decoder teacher_dec(teacher_cfg, drng);
  std::printf("\n[teacher: TGN-attn baseline]\n");
  const auto teacher_fit = core::fit_and_eval(teacher, teacher_dec, ds, topts);
  std::printf("teacher test AP = %.4f\n", teacher_fit.test_ap);

  // 3. Student: simplified attention + LUT encoder + NP(M) (4 neighbors),
  //    trained with knowledge distillation from the teacher (Eq. 17).
  core::ModelConfig student_cfg =
      core::np_config('M', ds.edge_dim(), ds.node_dim());
  core::TgnModel student(student_cfg, /*seed=*/3);
  core::Decoder student_dec(student_cfg, drng);
  core::TrainOptions sopts = topts;
  sopts.teacher = &teacher;
  std::printf("\n[student: +SAT +LUT +NP(M), distilled]\n");
  const auto student_fit = core::fit_and_eval(student, student_dec, ds, sopts);
  std::printf("student test AP = %.4f (teacher - student = %+.4f)\n",
              student_fit.test_ap, teacher_fit.test_ap - student_fit.test_ap);

  // 4. Complexity + single-thread throughput comparison.
  const auto ct = core::analyze(teacher_cfg);
  const auto cs = core::analyze(student_cfg);
  std::printf("\nkMAC/embedding: teacher %.1f -> student %.1f (%.0f%%)\n",
              ct.total_macs() / 1e3, cs.total_macs() / 1e3,
              100.0 * cs.total_macs() / ct.total_macs());
  std::printf("kMEM/embedding: teacher %.1f -> student %.1f (%.0f%%)\n",
              ct.total_mems() / 1e3, cs.total_mems() / 1e3,
              100.0 * cs.total_mems() / ct.total_mems());

  auto cpu_t = runtime::make_backend("cpu", teacher, ds);
  const auto res_t = runtime::measure_stream(*cpu_t, ds.test_range(), 200);
  auto cpu_s = runtime::make_backend("cpu", student, ds);
  const auto res_s = runtime::measure_stream(*cpu_s, ds.test_range(), 200);
  std::printf("1-thread throughput: teacher %.2f kE/s -> student %.2f kE/s "
              "(%.2fx)\n",
              res_t.throughput_eps() / 1e3, res_s.throughput_eps() / 1e3,
              res_s.throughput_eps() / res_t.throughput_eps());

  // 5. Serve the student online: individual edge events, coalesced into
  //    micro-batches by the ServingEngine (batch cap 64, 2 ms flush), on
  //    the sharded CPU backend — two worker lanes execute micro-batches
  //    with disjoint vertex footprints concurrently while per-vertex state
  //    writes stay chronological (use workers = 1 or deterministic = true
  //    for output bit-identical to the serial "cpu" backend).
  runtime::BackendOptions serve_opts;
  serve_opts.threads = 2;  // two lanes even on small machines
  auto serve_backend =
      runtime::make_backend("sharded-cpu", student, ds, serve_opts);
  serve_backend->reset();
  runtime::fast_forward(*serve_backend, ds.val_end);
  runtime::ServingOptions sopt2;
  sopt2.max_batch = 64;
  sopt2.max_wait_s = 2e-3;
  sopt2.workers = 2;
  {
    runtime::ServingEngine server(*serve_backend, sopt2);
    for (std::size_t i = ds.val_end; i < ds.num_edges(); ++i) server.submit(i);
    server.drain();
    const auto st = server.stats();
    std::printf("\nserving %zu test events through the conflict-aware "
                "micro-batch scheduler (%zu workers):\n",
                st.num_requests, server.workers());
    std::printf("  %zu batches (mean size %.1f), latency p50 %.2f ms / p95 "
                "%.2f ms / p99 %.2f ms, %.1f kreq/s\n",
                st.num_batches, st.mean_batch_size, st.p50_latency_s * 1e3,
                st.p95_latency_s * 1e3, st.p99_latency_s * 1e3,
                st.throughput_rps / 1e3);
    std::printf("  latency split p50: %.2f ms queue wait + %.2f ms batch "
                "service\n",
                st.p50_queue_wait_s * 1e3, st.p50_service_s * 1e3);
  }
  return 0;
}
