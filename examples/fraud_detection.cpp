// Fraud detection on a transaction stream — the paper's motivating
// application ("a fraud detection application would like to frequently
// examine all users involved in newly appearing transactions", §II-A).
//
// Scenario: train a co-designed TGNN on normal user-item interactions, then
// stream the test period in small batches. For every incoming transaction
// we score the (user, item) pair from the fresh dynamic embeddings; injected
// fraudulent transactions (random cross-community pairs that break the
// users' behavioural patterns) should receive markedly lower scores.
//
//   ./fraud_detection [--edges 8000] [--epochs 3] [--fraud_rate 0.05]
#include <algorithm>
#include <cstdio>

#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "runtime/driver.hpp"
#include "tgnn/trainer.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"

using namespace tgnn;

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("edges", "8000", "number of synthetic transactions");
  args.add_flag("epochs", "3", "training epochs");
  args.add_flag("fraud_rate", "0.05", "fraction of test edges replaced by fraud");
  args.add_flag("batch", "100", "streaming batch size");
  if (!args.parse(argc, argv)) return 1;

  const double scale = static_cast<double>(args.get_int("edges")) / 30000.0;
  const auto ds = data::wikipedia_like(scale);
  std::printf("transaction stream: %zu nodes, %zu transactions\n",
              static_cast<std::size_t>(ds.num_nodes()), ds.num_edges());

  // Train the co-designed NP(M) model (what would run on the accelerator).
  const auto cfg = core::np_config('M', ds.edge_dim(), ds.node_dim());
  core::TgnModel model(cfg, 1);
  Rng drng(2);
  core::Decoder dec(cfg, drng);
  core::TrainOptions topts;
  topts.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  std::printf("training NP(M) model (%zu epochs) ...\n", topts.epochs);
  core::Trainer(model, dec, ds, topts).train();

  // Stream the test period; inject fraud by rewiring a fraction of the
  // incoming edges to random destinations (pattern-breaking transactions).
  // The scorer runs behind the unified runtime seam — swap the "cpu-mt" key
  // for "fpga" to score on the simulated accelerator instead.
  auto backend = runtime::make_backend("cpu-mt", model, ds);
  runtime::fast_forward(*backend, ds.val_end);

  Rng rng(7);
  const double fraud_rate = args.get_double("fraud_rate");
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  const auto pool = data::destination_pool(ds);

  std::vector<double> normal_scores, fraud_scores;
  for (const auto& b : ds.graph.fixed_size_batches(
           ds.val_end, ds.num_edges(), batch)) {
    const auto edges = ds.graph.edges(b);
    // Pick fraud positions and their substitute destinations.
    std::vector<graph::NodeId> alt(edges.size());
    std::vector<bool> is_fraud(edges.size());
    for (std::size_t k = 0; k < edges.size(); ++k) {
      is_fraud[k] = rng.bernoulli(fraud_rate);
      alt[k] = pool[rng.uniform_int(pool.size())];
    }
    // Embed the batch's vertices plus the substitute destinations.
    const auto res = backend->process_batch(b, alt).functional;
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const auto hu = res.embedding_of(edges[k].src);
      if (is_fraud[k])
        fraud_scores.push_back(dec.score(hu, res.embedding_of(alt[k])));
      else
        normal_scores.push_back(
            dec.score(hu, res.embedding_of(edges[k].dst)));
    }
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  std::printf("\nscored %zu normal and %zu fraudulent transactions\n",
              normal_scores.size(), fraud_scores.size());
  std::printf("mean score: normal %+.3f, fraud %+.3f\n", mean(normal_scores),
              mean(fraud_scores));

  // Detection quality: AUC of normal-vs-fraud separation and recall at a
  // fixed 5%-alert budget.
  std::vector<core::ScoredSample> samples;
  for (double s : normal_scores) samples.push_back({-s, false});
  for (double s : fraud_scores) samples.push_back({-s, true});  // low = alarm
  std::printf("fraud-detection AUC = %.4f\n", core::auc_roc(samples));

  std::vector<double> all;
  for (double s : normal_scores) all.push_back(s);
  for (double s : fraud_scores) all.push_back(s);
  std::sort(all.begin(), all.end());
  const double threshold = all[all.size() / 20];  // lowest 5% alerted
  std::size_t caught = 0;
  for (double s : fraud_scores)
    if (s <= threshold) ++caught;
  std::printf("alerting on the lowest 5%% of scores catches %.1f%% of fraud\n",
              100.0 * static_cast<double>(caught) /
                  static_cast<double>(std::max<std::size_t>(1,
                                                            fraud_scores.size())));
  return 0;
}
