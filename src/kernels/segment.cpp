#include "kernels/segment.hpp"

#include <cmath>

#include "kernels/gemm.hpp"
#include "kernels/gemm_dispatch.hpp"
#include "tensor/ops.hpp"

namespace tgnn::kernels {

void segment_attention_logits(const float* q, const float* k_rows,
                              std::span<const std::size_t> seg,
                              std::size_t emb, float* out) {
  const std::size_t n_segs = seg.size() - 1;
  const detail::KernelTable& kt = detail::active_kernels();
  for (std::size_t s = 0; s < n_segs; ++s) {
    const std::size_t lo = seg[s], hi = seg[s + 1];
    if (hi == lo) continue;
    const std::size_t len = hi - lo;
    // Same m=1 gemm + scale pass the per-row path runs per node.
    kt.gemm(detail::Act::kNone, /*accumulate=*/false, q + s * emb,
            k_rows + lo * emb, nullptr, out + lo, 1, emb, len);
    const float scale = 1.0f / std::sqrt(static_cast<float>(len));
    for (std::size_t r = lo; r < hi; ++r) out[r] *= scale;
  }
}

void segment_softmax(float* v, std::span<const std::size_t> seg) {
  const std::size_t n_segs = seg.size() - 1;
  for (std::size_t s = 0; s < n_segs; ++s) {
    const std::size_t lo = seg[s], hi = seg[s + 1];
    if (hi > lo) ops::softmax_span({v + lo, hi - lo});
  }
}

void segment_weighted_rowsum(const float* w, const float* rows,
                             std::span<const std::size_t> seg, std::size_t n,
                             float* out, std::size_t out_stride) {
  const std::size_t n_segs = seg.size() - 1;
  for (std::size_t s = 0; s < n_segs; ++s) {
    const std::size_t lo = seg[s], hi = seg[s + 1];
    weighted_rowsum(w + lo, rows + lo * n, out + s * out_stride, hi - lo, n);
  }
}

}  // namespace tgnn::kernels
