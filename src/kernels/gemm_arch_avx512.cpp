// AVX-512 build of the explicit-lane GEMM micro-kernels. The lane width
// stays 8 (256-bit vectors under AVX512VL) so the arithmetic is identical
// to the AVX2 variant element-for-element; the win is the 32-register file
// keeping the full 4x4 accumulator block resident.
#include "kernels/gemm_dispatch.hpp"

#if defined(__GNUC__) && defined(__AVX512F__) && defined(__AVX512VL__) && \
    defined(__FMA__)

#include <cstddef>
#include <cstring>

#define TGNN_LANES_NS lanes_avx512
#define TGNN_LANES_WIDTH 8
#include "kernels/gemm_lanes.inc"
#undef TGNN_LANES_NS
#undef TGNN_LANES_WIDTH

namespace tgnn::kernels::detail {

KernelTable avx512_kernel_table() {
  return {&lanes_avx512::gemm_entry, &lanes_avx512::dot_entry, "avx512"};
}

}  // namespace tgnn::kernels::detail

#else

namespace tgnn::kernels::detail {

KernelTable avx512_kernel_table() { return {}; }

}  // namespace tgnn::kernels::detail

#endif
