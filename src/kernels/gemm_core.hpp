// INTERNAL: the portable (baseline-ISA) register-blocked GEMM core, plus
// the activation/threshold vocabulary shared with the arch-dispatched lane
// kernels (gemm_dispatch.hpp). Not part of the kernels/ public API —
// include gemm.hpp or fused.hpp instead.
//
// This TU-neutral core is the *generic* entry of the kernel dispatch
// table: it is what runs when the host CPU (or compiler) offers nothing
// better. The AVX2/AVX-512 variants in gemm_lanes.inc replace it wholesale
// at startup; within one process exactly one variant ever runs, so every
// caller — per-row inference, batched inference, every backend — sees one
// consistent set of per-element accumulation orders.
//
// Determinism contract (what makes batched == per-row provable): per
// output element the accumulation sequence depends only on the inner
// dimension k and the element's column-block position — never on how many
// rows m the call carries and never on the OpenMP thread count. The m loop
// only selects which elements are computed, so splitting one m-row call
// into m single-row calls is bit-identical.
#pragma once

#include <cmath>
#include <cstddef>

namespace tgnn::kernels::detail {

// Parallelize when the fork/join is amortized: either the output is large
// (the original reference-ops policy) or the call carries enough MACs —
// the batched-inference shapes, where splitting the row panels across the
// OpenMP team is the "cpu-mt" scaling mechanism. Per-node attention shapes
// (m ~ 10 neighbors) stay under both bounds and run serial.
constexpr std::size_t kParallelThreshold = 64 * 64;   // m * n
constexpr std::size_t kParallelMacs = 1u << 17;       // m * k * n
// Register block: one pass over the A row feeds this many B rows at once.
constexpr std::size_t kColBlock = 4;

inline bool parallel_worthwhile(std::size_t m, std::size_t k, std::size_t n) {
  return m * n >= kParallelThreshold || m * k * n >= kParallelMacs;
}

enum class Act { kNone, kSigmoid, kTanh, kRelu };

template <Act A>
inline float activate(float v) {
  if constexpr (A == Act::kSigmoid) return 1.0f / (1.0f + std::exp(-v));
  if constexpr (A == Act::kTanh) return std::tanh(v);
  if constexpr (A == Act::kRelu) return v > 0.0f ? v : 0.0f;
  return v;
}

inline float dot_simd(const float* a, const float* b, std::size_t k) {
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < k; ++i) acc += a[i] * b[i];
  return acc;
}

/// c = act((Accumulate ? c : 0) + a[m,k]·b[n,k]ᵀ + bias), bias nullable.
template <Act A, bool Accumulate>
void gemm_nt_act(const float* a, const float* b, const float* bias, float* c,
                 std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (parallel_worthwhile(m, k, n))
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3)
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j + 0] = activate<A>((Accumulate ? crow[j + 0] : 0.0f) + acc0 +
                                (bias != nullptr ? bias[j + 0] : 0.0f));
      crow[j + 1] = activate<A>((Accumulate ? crow[j + 1] : 0.0f) + acc1 +
                                (bias != nullptr ? bias[j + 1] : 0.0f));
      crow[j + 2] = activate<A>((Accumulate ? crow[j + 2] : 0.0f) + acc2 +
                                (bias != nullptr ? bias[j + 2] : 0.0f));
      crow[j + 3] = activate<A>((Accumulate ? crow[j + 3] : 0.0f) + acc3 +
                                (bias != nullptr ? bias[j + 3] : 0.0f));
    }
    for (; j < n; ++j) {
      const float acc = dot_simd(arow, b + j * k, k);
      crow[j] = activate<A>((Accumulate ? crow[j] : 0.0f) + acc +
                            (bias != nullptr ? bias[j] : 0.0f));
    }
  }
}

}  // namespace tgnn::kernels::detail
