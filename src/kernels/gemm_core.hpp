// INTERNAL: the one register-blocked, omp-simd GEMM core both kernel TUs
// instantiate. Not part of the kernels/ public API — include gemm.hpp or
// fused.hpp instead.
//
// Keeping the blocked loop (and its tuning constants) in exactly one place
// is what makes the determinism contract auditable: every caller — plain
// gemm_nt, every fused affine+activation epilogue — accumulates each
// output element in the same shape-dependent order, never a thread-count-
// dependent one.
#pragma once

#include <cmath>
#include <cstddef>

namespace tgnn::kernels::detail {

// Parallelize only when the output is large enough to amortize the
// fork/join (matches the reference ops' policy); per-node attention shapes
// stay serial.
constexpr std::size_t kParallelThreshold = 64 * 64;
// Register block: one pass over the A row feeds this many B rows at once.
constexpr std::size_t kColBlock = 4;

enum class Act { kNone, kSigmoid, kTanh, kRelu };

template <Act A>
inline float activate(float v) {
  if constexpr (A == Act::kSigmoid) return 1.0f / (1.0f + std::exp(-v));
  if constexpr (A == Act::kTanh) return std::tanh(v);
  if constexpr (A == Act::kRelu) return v > 0.0f ? v : 0.0f;
  return v;
}

inline float dot_simd(const float* a, const float* b, std::size_t k) {
  float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < k; ++i) acc += a[i] * b[i];
  return acc;
}

/// c = act((Accumulate ? c : 0) + a[m,k]·b[n,k]ᵀ + bias), bias nullable.
template <Act A, bool Accumulate>
void gemm_nt_act(const float* a, const float* b, const float* bias, float* c,
                 std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (m * n >= kParallelThreshold)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3)
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j + 0] = activate<A>((Accumulate ? crow[j + 0] : 0.0f) + acc0 +
                                (bias != nullptr ? bias[j + 0] : 0.0f));
      crow[j + 1] = activate<A>((Accumulate ? crow[j + 1] : 0.0f) + acc1 +
                                (bias != nullptr ? bias[j + 1] : 0.0f));
      crow[j + 2] = activate<A>((Accumulate ? crow[j + 2] : 0.0f) + acc2 +
                                (bias != nullptr ? bias[j + 2] : 0.0f));
      crow[j + 3] = activate<A>((Accumulate ? crow[j + 3] : 0.0f) + acc3 +
                                (bias != nullptr ? bias[j + 3] : 0.0f));
    }
    for (; j < n; ++j) {
      const float acc = dot_simd(arow, b + j * k, k);
      crow[j] = activate<A>((Accumulate ? crow[j] : 0.0f) + acc +
                            (bias != nullptr ? bias[j] : 0.0f));
    }
  }
}

}  // namespace tgnn::kernels::detail
