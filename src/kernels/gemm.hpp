// Raw-pointer GEMM kernels for the inference hot path.
//
// These are the vectorized counterparts of the reference loops in
// tensor/ops.cpp: row-major, float32, register-blocked over 4 output
// columns (one A-row load feeds 4 simultaneous dot products) with
// `omp simd` reductions over the shared inner dimension. They write into
// caller-owned buffers and never allocate — the fused layer (fused.hpp)
// builds every model kernel (GRU gates, attention projections, decoder)
// on top of them.
//
// Determinism: per output element the accumulation sequence depends only
// on the shapes, never on the OpenMP thread count, so results are
// bit-identical across "cpu", "cpu-mt", and "sharded-cpu". They may differ
// from the scalar reference ops by float-reassociation rounding (~1e-7
// relative), which is why the training/gradcheck path keeps the reference
// ops and tests pin fused-vs-reference parity to 1e-6.
#pragma once

#include <cstddef>

namespace tgnn::kernels {

/// c[m,n] = a[m,k] · b[n,k]ᵀ  (b row-major as [n,k] — the weight-matrix
/// layout of nn::Linear). Adds into c when `accumulate`.
void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate = false);

/// out[n] (+)= Σ_j w[j] · rows[j,n] — the attention read-out
/// (alpha-weighted sum of V rows). Adds into out when `accumulate`.
void weighted_rowsum(const float* w, const float* rows, float* out,
                     std::size_t r, std::size_t n, bool accumulate = false);

/// Single dot product with an `omp simd` reduction (exposed for logits).
float dot(const float* a, const float* b, std::size_t k);

}  // namespace tgnn::kernels
