// Segment kernels for the ragged (variable-degree) attention stage of the
// batched inference pipeline.
//
// A micro-batch packs every vertex's neighbor rows into one contiguous
// [total, dim] matrix; `seg` is the CSR-style offset array (n_segs + 1
// entries, seg[0] == 0, seg[s] <= seg[s+1] == row range of segment s).
// Each function below is, by construction, the per-segment loop of the
// per-row path run over all segments — same underlying kernels in the same
// per-segment order — so batched and per-row attention stay bit-identical.
//
// Empty segments (zero-degree vertices) are well-defined everywhere:
// logits produce no rows, softmax skips them, and weighted_rowsum zero-
// fills the output row — matching the per-row path's neighborless case.
#pragma once

#include <cstddef>
#include <span>

namespace tgnn::kernels {

/// Scaled attention logits per segment: for segment s and row r in
/// [seg[s], seg[s+1]), out[r] = dot(q_row_s, k_rows[r]) / sqrt(len_s).
/// q: [n_segs, emb] row-major, k_rows: [total, emb].
void segment_attention_logits(const float* q, const float* k_rows,
                              std::span<const std::size_t> seg,
                              std::size_t emb, float* out);

/// In-place numerically-stable softmax over each segment of `v`
/// (ops::softmax_span per segment, including its uniform fallback for
/// all-(-inf)/non-finite rows).
void segment_softmax(float* v, std::span<const std::size_t> seg);

/// Per-segment weighted row sum: out_row_s = sum_r w[r] * rows[r,:] over
/// the segment's rows; empty segments zero-fill their output row. Output
/// rows live at out + s * out_stride (out_stride >= n lets the result land
/// directly in the first n columns of a wider staging matrix).
void segment_weighted_rowsum(const float* w, const float* rows,
                             std::span<const std::size_t> seg, std::size_t n,
                             float* out, std::size_t out_stride);

}  // namespace tgnn::kernels
