#include "kernels/fused.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "kernels/gemm_dispatch.hpp"

namespace tgnn::kernels {

namespace {

using detail::Act;

void check(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void check_affine(const Tensor& x, const Tensor& w, const Tensor& b,
                  const char* who) {
  if (w.cols() != x.cols() || b.size() != w.rows())
    throw std::invalid_argument(std::string(who) + ": shape mismatch");
}

template <Act A>
void affine_act_into(const Tensor& x, const Tensor& w, const Tensor& b,
                     Tensor& y, const char* who) {
  check_affine(x, w, b, who);
  y.resize(x.rows(), w.rows());
  detail::active_kernels().gemm(A, /*accumulate=*/false, x.data(), w.data(),
                                b.data(), y.data(), x.rows(), x.cols(),
                                w.rows());
}

}  // namespace

void affine_into(const Tensor& x, const Tensor& w, const Tensor& b,
                 Tensor& y) {
  affine_act_into<Act::kNone>(x, w, b, y, "affine_into");
}

void affine_sigmoid_into(const Tensor& x, const Tensor& w, const Tensor& b,
                         Tensor& y) {
  affine_act_into<Act::kSigmoid>(x, w, b, y, "affine_sigmoid_into");
}

void affine_tanh_into(const Tensor& x, const Tensor& w, const Tensor& b,
                      Tensor& y) {
  affine_act_into<Act::kTanh>(x, w, b, y, "affine_tanh_into");
}

void affine_relu_into(const Tensor& x, const Tensor& w, const Tensor& b,
                      Tensor& y) {
  affine_act_into<Act::kRelu>(x, w, b, y, "affine_relu_into");
}

void affine2_sigmoid_into(const Tensor& x, const Tensor& wi, const Tensor& bi,
                          const Tensor& h, const Tensor& wh, const Tensor& bh,
                          Tensor& y) {
  check_affine(x, wi, bi, "affine2_sigmoid_into(x)");
  check_affine(h, wh, bh, "affine2_sigmoid_into(h)");
  check(x.rows() == h.rows() && wi.rows() == wh.rows(),
        "affine2_sigmoid_into: row mismatch");
  y.resize(x.rows(), wi.rows());
  const detail::KernelTable& kt = detail::active_kernels();
  kt.gemm(Act::kNone, /*accumulate=*/false, x.data(), wi.data(), bi.data(),
          y.data(), x.rows(), x.cols(), wi.rows());
  kt.gemm(Act::kSigmoid, /*accumulate=*/true, h.data(), wh.data(), bh.data(),
          y.data(), h.rows(), h.cols(), wh.rows());
}

void affine_row_into(std::span<const float> x, const Tensor& w,
                     const Tensor& b, std::span<float> out) {
  check(x.size() == w.cols() && out.size() == w.rows() &&
            b.size() == w.rows(),
        "affine_row_into: shape mismatch");
  detail::active_kernels().gemm(Act::kNone, /*accumulate=*/false, x.data(),
                                w.data(), b.data(), out.data(), 1, x.size(),
                                w.rows());
}

namespace {

/// The shared GRU elementwise epilogue: n = tanh(out + r∘q), s' =
/// (1-z)∘n + z∘h, in place over `out`. One definition so the fp32 / int8 /
/// bf16 paths finish identically.
void gru_elementwise_finish(const Tensor& h, GruScratch& ws, Tensor& out,
                            std::size_t m, std::size_t hid) {
  float* po = out.data();
  const float* pr = ws.r.data();
  const float* pz = ws.z.data();
  const float* pq = ws.q.data();
  const float* ph = h.data();
  const std::size_t total = m * hid;
  // tanhf dominates this pass at serving batch sizes; split rows across
  // the team like the GEMMs do (elementwise, so bit-invariant to threads).
#pragma omp parallel for schedule(static) if (m >= 16)
  for (std::size_t i = 0; i < total; ++i) {
    const float n = std::tanh(po[i] + pr[i] * pq[i]);
    po[i] = (1.0f - pz[i]) * n + pz[i] * ph[i];
  }
}

}  // namespace

void gru_forward_into(const Tensor& x, const Tensor& h, const GruWeights& w,
                      GruScratch& ws, Tensor& out) {
  const std::size_t m = x.rows(), hid = h.cols();
  check(h.rows() == m, "gru_forward_into: batch mismatch");

  // r = sigmoid(W_ir x + b_ir + W_hr h + b_hr); z likewise.
  affine2_sigmoid_into(x, *w.w_ir, *w.b_ir, h, *w.w_hr, *w.b_hr, ws.r);
  affine2_sigmoid_into(x, *w.w_iz, *w.b_iz, h, *w.w_hz, *w.b_hz, ws.z);
  // q = W_hn h + b_hn (pre reset-gating).
  affine_into(h, *w.w_hn, *w.b_hn, ws.q);
  // out <- W_in x + b_in, then one elementwise pass finishes
  // n = tanh(out + r∘q) and s' = (1-z)∘n + z∘h.
  affine_into(x, *w.w_in, *w.b_in, out);
  gru_elementwise_finish(h, ws, out, m, hid);
}

void qgru_forward_into(const Tensor& x, const Tensor& h, const GruWeights& w,
                       const QuantGruWeights& qw, GruScratch& ws,
                       Tensor& out) {
  const std::size_t m = x.rows(), hid = h.cols();
  check(h.rows() == m, "qgru_forward_into: batch mismatch");

  // Quantize each input panel once; all six GEMMs reuse the panels, so the
  // per-row scale pass costs O(m·k) against the GEMMs' O(3·m·k·hid).
  quantize_rows_into(x, ws.qx);
  quantize_rows_into(h, ws.qh);
  qaffine2_sigmoid_into(ws.qx, qw.w_ir, *w.b_ir, ws.qh, qw.w_hr, *w.b_hr,
                        ws.r);
  qaffine2_sigmoid_into(ws.qx, qw.w_iz, *w.b_iz, ws.qh, qw.w_hz, *w.b_hz,
                        ws.z);
  qaffine_into(ws.qh, qw.w_hn, *w.b_hn, ws.q);
  qaffine_into(ws.qx, qw.w_in, *w.b_in, out);
  gru_elementwise_finish(h, ws, out, m, hid);
}

void bf16_gru_forward_into(const Tensor& x, const Tensor& h,
                           const GruWeights& w, const Bf16GruWeights& bw,
                           GruScratch& ws, Tensor& out) {
  const std::size_t m = x.rows(), hid = h.cols();
  check(h.rows() == m, "bf16_gru_forward_into: batch mismatch");

  bf16_affine2_sigmoid_into(x, bw.w_ir, *w.b_ir, h, bw.w_hr, *w.b_hr, ws.r);
  bf16_affine2_sigmoid_into(x, bw.w_iz, *w.b_iz, h, bw.w_hz, *w.b_hz, ws.z);
  bf16_affine_into(h, bw.w_hn, *w.b_hn, ws.q);
  bf16_affine_into(x, bw.w_in, *w.b_in, out);
  gru_elementwise_finish(h, ws, out, m, hid);
}

}  // namespace tgnn::kernels
