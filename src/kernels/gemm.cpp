#include "kernels/gemm.hpp"

#include "kernels/gemm_dispatch.hpp"

namespace tgnn::kernels {

float dot(const float* a, const float* b, std::size_t k) {
  return detail::active_kernels().dot(a, b, k);
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate) {
  detail::active_kernels().gemm(detail::Act::kNone, accumulate, a, b, nullptr,
                                c, m, k, n);
}

void weighted_rowsum(const float* w, const float* rows, float* out,
                     std::size_t r, std::size_t n, bool accumulate) {
  if (!accumulate)
    for (std::size_t d = 0; d < n; ++d) out[d] = 0.0f;
  for (std::size_t j = 0; j < r; ++j) {
    const float wj = w[j];
    const float* row = rows + j * n;
#pragma omp simd
    for (std::size_t d = 0; d < n; ++d) out[d] += wj * row[d];
  }
}

}  // namespace tgnn::kernels
