// AVX2+FMA build of the explicit-lane GEMM micro-kernels. CMake compiles
// this TU with -mavx2 -mfma when the compiler supports them; otherwise the
// guards below degrade it to a stub table the dispatcher skips.
#include "kernels/gemm_dispatch.hpp"

#if defined(__GNUC__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstddef>
#include <cstring>

#include "kernels/quant_core.hpp"

#define TGNN_LANES_NS lanes_avx2
#include "kernels/gemm_lanes.inc"
#undef TGNN_LANES_NS

namespace tgnn::kernels::detail {

namespace quant_avx2 {

// int8·int8 via the maddubs sign trick: maddubs wants u8·s8, so feed it
// |a| (u8) and b·sign(a) — the pairwise i16 sums cannot saturate because
// |a|,|b| <= 127 (2·127² < 32767). madd with ones widens to exact i32.
inline __m256i dot_step(__m256i acc, __m256i va, __m256i vb) {
  const __m256i abs_a = _mm256_sign_epi8(va, va);
  const __m256i sgn_b = _mm256_sign_epi8(vb, va);
  const __m256i p16 = _mm256_maddubs_epi16(abs_a, sgn_b);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(p16, _mm256_set1_epi16(1)));
}

inline std::int32_t hsum(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

inline __m256i loadv(const std::int8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

template <Act A, bool Accumulate>
void qgemm(const std::int8_t* a, const float* a_scale, const std::int8_t* b,
           float b_scale, const float* bias, float* c, std::size_t m,
           std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (parallel_worthwhile(m, k, n))
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    float* crow = c + i * n;
    const float s = a_scale[i] * b_scale;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const std::int8_t* b0 = b + (j + 0) * k;
      const std::int8_t* b1 = b + (j + 1) * k;
      const std::int8_t* b2 = b + (j + 2) * k;
      const std::int8_t* b3 = b + (j + 3) * k;
      __m256i v0 = _mm256_setzero_si256(), v1 = _mm256_setzero_si256();
      __m256i v2 = _mm256_setzero_si256(), v3 = _mm256_setzero_si256();
      std::size_t kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        const __m256i va = loadv(arow + kk);
        v0 = dot_step(v0, va, loadv(b0 + kk));
        v1 = dot_step(v1, va, loadv(b1 + kk));
        v2 = dot_step(v2, va, loadv(b2 + kk));
        v3 = dot_step(v3, va, loadv(b3 + kk));
      }
      std::int32_t acc0 = hsum(v0), acc1 = hsum(v1);
      std::int32_t acc2 = hsum(v2), acc3 = hsum(v3);
      for (; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j + 0] = quant_finish<A>(Accumulate ? crow[j + 0] : 0.0f, acc0, s,
                                    bias != nullptr ? bias[j + 0] : 0.0f);
      crow[j + 1] = quant_finish<A>(Accumulate ? crow[j + 1] : 0.0f, acc1, s,
                                    bias != nullptr ? bias[j + 1] : 0.0f);
      crow[j + 2] = quant_finish<A>(Accumulate ? crow[j + 2] : 0.0f, acc2, s,
                                    bias != nullptr ? bias[j + 2] : 0.0f);
      crow[j + 3] = quant_finish<A>(Accumulate ? crow[j + 3] : 0.0f, acc3, s,
                                    bias != nullptr ? bias[j + 3] : 0.0f);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      __m256i v = _mm256_setzero_si256();
      std::size_t kk = 0;
      for (; kk + 32 <= k; kk += 32)
        v = dot_step(v, loadv(arow + kk), loadv(brow + kk));
      std::int32_t acc = hsum(v);
      for (; kk < k; ++kk)
        acc += static_cast<std::int32_t>(arow[kk]) * brow[kk];
      crow[j] = quant_finish<A>(Accumulate ? crow[j] : 0.0f, acc, s,
                                bias != nullptr ? bias[j] : 0.0f);
    }
  }
}

void qgemm_entry(Act act, bool accumulate, const std::int8_t* a,
                 const float* a_scale, const std::int8_t* b, float b_scale,
                 const std::int32_t* /*b_row_sum*/, const float* bias,
                 float* c, std::size_t m, std::size_t k, std::size_t n) {
  switch (act) {
    case Act::kNone:
      accumulate
          ? qgemm<Act::kNone, true>(a, a_scale, b, b_scale, bias, c, m, k, n)
          : qgemm<Act::kNone, false>(a, a_scale, b, b_scale, bias, c, m, k, n);
      break;
    case Act::kSigmoid:
      accumulate ? qgemm<Act::kSigmoid, true>(a, a_scale, b, b_scale, bias, c,
                                              m, k, n)
                 : qgemm<Act::kSigmoid, false>(a, a_scale, b, b_scale, bias, c,
                                               m, k, n);
      break;
    case Act::kTanh:
      accumulate
          ? qgemm<Act::kTanh, true>(a, a_scale, b, b_scale, bias, c, m, k, n)
          : qgemm<Act::kTanh, false>(a, a_scale, b, b_scale, bias, c, m, k, n);
      break;
    case Act::kRelu:
      accumulate
          ? qgemm<Act::kRelu, true>(a, a_scale, b, b_scale, bias, c, m, k, n)
          : qgemm<Act::kRelu, false>(a, a_scale, b, b_scale, bias, c, m, k, n);
      break;
  }
}

// ---- per-row quantization -------------------------------------------------
// GCC autovectorizes neither the absmax-normalized multiply+round nor the
// float->int8 narrowing store, so the pass is hand-vectorized: cvtps2dq
// rounds half-to-even under the default MXCSR — identical to the rint the
// scalar tiers/tails use — and two saturating packs plus a lane-fixing
// permute narrow 32 int32 to 32 int8 (values are pre-clamped to ±127, so
// the packs never actually saturate).

inline float absmax(const float* x, std::size_t k) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vm = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= k; i += 8)
    vm = _mm256_max_ps(vm, _mm256_and_ps(mask, _mm256_loadu_ps(x + i)));
  __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(vm),
                         _mm256_extractf128_ps(vm, 1));
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
  float m = _mm_cvtss_f32(m4);
  for (; i < k; ++i) m = std::fmax(m, std::fabs(x[i]));
  return m;
}

/// 8 floats -> 8 clamped, half-even-rounded int32. The min-first order
/// sends a NaN element to +127, matching quantize_span_scalar's fmin.
inline __m256i cvt_clamp8(const float* p, __m256 inv, __m256 lo, __m256 hi) {
  __m256 v = _mm256_mul_ps(_mm256_loadu_ps(p), inv);
  v = _mm256_max_ps(_mm256_min_ps(v, hi), lo);
  return _mm256_cvtps_epi32(v);
}

void quantize_rows(const float* x, std::size_t m, std::size_t k,
                   std::size_t stride, std::int8_t* q, float* scale) {
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  // packs_epi32/16 interleave 128-bit lanes; this permute restores source
  // order (dwords [a0 b0 c0 d0 | a1 b1 c1 d1] -> [a0 a1 b0 b1 ...]).
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * k;
    std::int8_t* qrow = q + i * stride;
    std::memset(qrow + k, 0, stride - k);
    const float s = quant_scale_from_absmax(absmax(row, k));
    scale[i] = s;
    if (!(s > 0.0f)) {
      std::memset(qrow, 0, k);
      continue;
    }
    const float invf = 1.0f / s;
    const __m256 inv = _mm256_set1_ps(invf);
    std::size_t j = 0;
    for (; j + 32 <= k; j += 32) {
      const __m256i i0 = cvt_clamp8(row + j + 0, inv, lo, hi);
      const __m256i i1 = cvt_clamp8(row + j + 8, inv, lo, hi);
      const __m256i i2 = cvt_clamp8(row + j + 16, inv, lo, hi);
      const __m256i i3 = cvt_clamp8(row + j + 24, inv, lo, hi);
      const __m256i p16a = _mm256_packs_epi32(i0, i1);
      const __m256i p16b = _mm256_packs_epi32(i2, i3);
      const __m256i p8 = _mm256_permutevar8x32_epi32(
          _mm256_packs_epi16(p16a, p16b), perm);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(qrow + j), p8);
    }
    quantize_span_scalar(row + j, invf, qrow + j, k - j);
  }
}

}  // namespace quant_avx2

KernelTable avx2_kernel_table() {
  return {&lanes_avx2::gemm_entry, &lanes_avx2::dot_entry, "avx2+fma"};
}

QuantKernelTable avx2_quant_table() {
  return {&quant_avx2::qgemm_entry, &quant_avx2::quantize_rows,
          "avx2-maddubs"};
}

}  // namespace tgnn::kernels::detail

#else

namespace tgnn::kernels::detail {

KernelTable avx2_kernel_table() { return {}; }

QuantKernelTable avx2_quant_table() { return {}; }

}  // namespace tgnn::kernels::detail

#endif
