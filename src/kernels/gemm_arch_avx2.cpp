// AVX2+FMA build of the explicit-lane GEMM micro-kernels. CMake compiles
// this TU with -mavx2 -mfma when the compiler supports them; otherwise the
// guards below degrade it to a stub table the dispatcher skips.
#include "kernels/gemm_dispatch.hpp"

#if defined(__GNUC__) && defined(__AVX2__) && defined(__FMA__)

#include <cstddef>
#include <cstring>

#define TGNN_LANES_NS lanes_avx2
#include "kernels/gemm_lanes.inc"
#undef TGNN_LANES_NS

namespace tgnn::kernels::detail {

KernelTable avx2_kernel_table() {
  return {&lanes_avx2::gemm_entry, &lanes_avx2::dot_entry, "avx2+fma"};
}

}  // namespace tgnn::kernels::detail

#else

namespace tgnn::kernels::detail {

KernelTable avx2_kernel_table() { return {}; }

}  // namespace tgnn::kernels::detail

#endif
