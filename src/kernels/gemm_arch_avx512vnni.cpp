// AVX-512 VNNI build of the int8 GEMM micro-kernel. CMake compiles this TU
// with -mavx512f/-mavx512vl/-mavx512bw/-mavx512vnni when the compiler
// supports them; otherwise the guards degrade it to a stub tier the
// dispatcher skips. This is a separate TU from gemm_arch_avx512.cpp so the
// fp32 lane kernels are never compiled under VNNI/BW flags their runtime
// check does not verify.
//
// vpdpbusd computes u8·s8 dots, and AVX-512 has no vpsignb to replay the
// avx2 sign trick, so the kernel runs in the offset domain instead: the s8
// activations are biased to u8 by XOR 0x80 (a+128), and the surplus
// 128·Σb_j is subtracted afterwards using the per-output-row weight sums
// the quantizer precomputes (QuantWeight::row_sum). The scalar k-tail uses
// the same offset arithmetic so one correction covers the whole row.
// Products and row lengths here keep the i32 accumulators far from
// overflow: 4·255·127 per step, k <= a few thousand.
#include "kernels/gemm_dispatch.hpp"

#if defined(__GNUC__) && defined(__AVX512F__) && defined(__AVX512VL__) && \
    defined(__AVX512BW__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "kernels/quant_core.hpp"

// GCC's 512->256/128 extract intrinsics route _mm256_undefined_si256()
// through a masked builtin, which GCC 12 falsely flags (PR105593). Every
// accumulator below is explicitly zero-initialized.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace tgnn::kernels::detail {

namespace quant_avx512vnni {

inline __m512i loadv(const std::int8_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

/// Offset a to u8: a + 128 == a XOR 0x80 for two's-complement int8.
inline __m512i offset_u8(__m512i va) {
  return _mm512_xor_si512(va, _mm512_set1_epi8(static_cast<char>(0x80)));
}

// Explicit tree reduction instead of _mm512_reduce_add_epi32, whose
// _mm256_undefined_si256 plumbing trips -Wmaybe-uninitialized under GCC.
inline std::int32_t hsum(__m512i v) {
  const __m256i half = _mm256_add_epi32(_mm512_castsi512_si256(v),
                                        _mm512_extracti64x4_epi64(v, 1));
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(half),
                            _mm256_extracti128_si256(half, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

template <Act A, bool Accumulate>
void qgemm(const std::int8_t* a, const float* a_scale, const std::int8_t* b,
           float b_scale, const std::int32_t* b_row_sum, const float* bias,
           float* c, std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (parallel_worthwhile(m, k, n))
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    float* crow = c + i * n;
    const float s = a_scale[i] * b_scale;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const std::int8_t* b0 = b + (j + 0) * k;
      const std::int8_t* b1 = b + (j + 1) * k;
      const std::int8_t* b2 = b + (j + 2) * k;
      const std::int8_t* b3 = b + (j + 3) * k;
      __m512i v0 = _mm512_setzero_si512(), v1 = _mm512_setzero_si512();
      __m512i v2 = _mm512_setzero_si512(), v3 = _mm512_setzero_si512();
      std::size_t kk = 0;
      for (; kk + 64 <= k; kk += 64) {
        const __m512i ua = offset_u8(loadv(arow + kk));
        v0 = _mm512_dpbusd_epi32(v0, ua, loadv(b0 + kk));
        v1 = _mm512_dpbusd_epi32(v1, ua, loadv(b1 + kk));
        v2 = _mm512_dpbusd_epi32(v2, ua, loadv(b2 + kk));
        v3 = _mm512_dpbusd_epi32(v3, ua, loadv(b3 + kk));
      }
      // Offset-domain accumulators; the scalar tail stays in the same
      // domain so the single 128·row_sum correction below is exact.
      std::int32_t acc0 = hsum(v0), acc1 = hsum(v1);
      std::int32_t acc2 = hsum(v2), acc3 = hsum(v3);
      for (; kk < k; ++kk) {
        const std::int32_t ua = static_cast<std::int32_t>(arow[kk]) + 128;
        acc0 += ua * b0[kk];
        acc1 += ua * b1[kk];
        acc2 += ua * b2[kk];
        acc3 += ua * b3[kk];
      }
      acc0 -= 128 * b_row_sum[j + 0];
      acc1 -= 128 * b_row_sum[j + 1];
      acc2 -= 128 * b_row_sum[j + 2];
      acc3 -= 128 * b_row_sum[j + 3];
      crow[j + 0] = quant_finish<A>(Accumulate ? crow[j + 0] : 0.0f, acc0, s,
                                    bias != nullptr ? bias[j + 0] : 0.0f);
      crow[j + 1] = quant_finish<A>(Accumulate ? crow[j + 1] : 0.0f, acc1, s,
                                    bias != nullptr ? bias[j + 1] : 0.0f);
      crow[j + 2] = quant_finish<A>(Accumulate ? crow[j + 2] : 0.0f, acc2, s,
                                    bias != nullptr ? bias[j + 2] : 0.0f);
      crow[j + 3] = quant_finish<A>(Accumulate ? crow[j + 3] : 0.0f, acc3, s,
                                    bias != nullptr ? bias[j + 3] : 0.0f);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      __m512i v = _mm512_setzero_si512();
      std::size_t kk = 0;
      for (; kk + 64 <= k; kk += 64)
        v = _mm512_dpbusd_epi32(v, offset_u8(loadv(arow + kk)),
                                loadv(brow + kk));
      std::int32_t acc = hsum(v);
      for (; kk < k; ++kk)
        acc += (static_cast<std::int32_t>(arow[kk]) + 128) * brow[kk];
      acc -= 128 * b_row_sum[j];
      crow[j] = quant_finish<A>(Accumulate ? crow[j] : 0.0f, acc, s,
                                bias != nullptr ? bias[j] : 0.0f);
    }
  }
}

void qgemm_entry(Act act, bool accumulate, const std::int8_t* a,
                 const float* a_scale, const std::int8_t* b, float b_scale,
                 const std::int32_t* b_row_sum, const float* bias, float* c,
                 std::size_t m, std::size_t k, std::size_t n) {
  switch (act) {
    case Act::kNone:
      accumulate ? qgemm<Act::kNone, true>(a, a_scale, b, b_scale, b_row_sum,
                                           bias, c, m, k, n)
                 : qgemm<Act::kNone, false>(a, a_scale, b, b_scale, b_row_sum,
                                            bias, c, m, k, n);
      break;
    case Act::kSigmoid:
      accumulate ? qgemm<Act::kSigmoid, true>(a, a_scale, b, b_scale,
                                              b_row_sum, bias, c, m, k, n)
                 : qgemm<Act::kSigmoid, false>(a, a_scale, b, b_scale,
                                               b_row_sum, bias, c, m, k, n);
      break;
    case Act::kTanh:
      accumulate ? qgemm<Act::kTanh, true>(a, a_scale, b, b_scale, b_row_sum,
                                           bias, c, m, k, n)
                 : qgemm<Act::kTanh, false>(a, a_scale, b, b_scale, b_row_sum,
                                            bias, c, m, k, n);
      break;
    case Act::kRelu:
      accumulate ? qgemm<Act::kRelu, true>(a, a_scale, b, b_scale, b_row_sum,
                                           bias, c, m, k, n)
                 : qgemm<Act::kRelu, false>(a, a_scale, b, b_scale, b_row_sum,
                                            bias, c, m, k, n);
      break;
  }
}

// ---- per-row quantization -------------------------------------------------
// Same contract as the avx2 tier (see gemm_arch_avx2.cpp): cvtps2dq rounds
// half-to-even like the scalar rint tails, values are clamped to ±127
// before converting, and vpmovsdb narrows 16 int32 straight to 16 int8.

inline float absmax(const float* x, std::size_t k) {
  __m512 vm = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16)
    vm = _mm512_max_ps(vm, _mm512_abs_ps(_mm512_loadu_ps(x + i)));
  float m = _mm512_reduce_max_ps(vm);
  for (; i < k; ++i) m = std::fmax(m, std::fabs(x[i]));
  return m;
}

void quantize_rows(const float* x, std::size_t m, std::size_t k,
                   std::size_t stride, std::int8_t* q, float* scale) {
  const __m512 hi = _mm512_set1_ps(127.0f);
  const __m512 lo = _mm512_set1_ps(-127.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * k;
    std::int8_t* qrow = q + i * stride;
    std::memset(qrow + k, 0, stride - k);
    const float s = quant_scale_from_absmax(absmax(row, k));
    scale[i] = s;
    if (!(s > 0.0f)) {
      std::memset(qrow, 0, k);
      continue;
    }
    const float invf = 1.0f / s;
    const __m512 inv = _mm512_set1_ps(invf);
    std::size_t j = 0;
    for (; j + 16 <= k; j += 16) {
      __m512 v = _mm512_mul_ps(_mm512_loadu_ps(row + j), inv);
      v = _mm512_max_ps(_mm512_min_ps(v, hi), lo);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(qrow + j),
                       _mm512_cvtsepi32_epi8(_mm512_cvtps_epi32(v)));
    }
    quantize_span_scalar(row + j, invf, qrow + j, k - j);
  }
}

}  // namespace quant_avx512vnni

QuantKernelTable avx512_quant_table() {
  return {&quant_avx512vnni::qgemm_entry, &quant_avx512vnni::quantize_rows,
          "avx512-vnni"};
}

}  // namespace tgnn::kernels::detail

#else

namespace tgnn::kernels::detail {

QuantKernelTable avx512_quant_table() { return {}; }

}  // namespace tgnn::kernels::detail

#endif
