// Fused affine + activation kernels over Tensor, and the fused GRU forward.
//
// Every function writes into a caller-owned output (resized in place, so a
// reused buffer never re-allocates in steady state) instead of returning a
// fresh Tensor — the allocation-free contract of the inference hot path.
// The reference ops in tensor/ops.cpp stay as the training/gradcheck path;
// tests/kernels pins the two within 1e-6 of each other.
//
// Layering: kernels depends only on tensor/. The nn and tgnn layers call
// down into it (GruCell::forward_into, VanillaAttention::forward_into,
// SimplifiedAttention::aggregate_into, Decoder::score_with), each routing
// its scratch through the engine's BatchWorkspace.
#pragma once

#include <span>

#include "kernels/quant.hpp"
#include "tensor/tensor.hpp"

namespace tgnn::kernels {

/// y = x·wᵀ + b. x: [m,k], w: [n,k], b: [n]; y resized to [m,n].
void affine_into(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& y);
/// y = sigmoid(x·wᵀ + b).
void affine_sigmoid_into(const Tensor& x, const Tensor& w, const Tensor& b,
                         Tensor& y);
/// y = tanh(x·wᵀ + b).
void affine_tanh_into(const Tensor& x, const Tensor& w, const Tensor& b,
                      Tensor& y);
/// y = relu(x·wᵀ + b).
void affine_relu_into(const Tensor& x, const Tensor& w, const Tensor& b,
                      Tensor& y);

/// y = sigmoid(x·wiᵀ + bi + h·whᵀ + bh) — the GRU gate shape with both
/// GEMMs, both biases, and the activation in one kernel.
void affine2_sigmoid_into(const Tensor& x, const Tensor& wi, const Tensor& bi,
                          const Tensor& h, const Tensor& wh, const Tensor& bh,
                          Tensor& y);

/// Single-row affine straight into a caller-owned span (e.g. one row of the
/// batch's embeddings matrix): out = x·wᵀ + b, out.size() == w.rows().
void affine_row_into(std::span<const float> x, const Tensor& w,
                     const Tensor& b, std::span<float> out);

/// Non-owning view of a GruCell's 12 parameter tensors.
struct GruWeights {
  const Tensor *w_ir, *w_iz, *w_in, *b_ir, *b_iz, *b_in;
  const Tensor *w_hr, *w_hz, *w_hn, *b_hr, *b_hz, *b_hn;
};

/// Gate scratch for gru_forward_into; embed one per BatchWorkspace. The
/// quantized-activation panels (qx, qh) are touched only by the int8 path
/// and stay empty under fp32/bf16.
struct GruScratch {
  Tensor r, z, q;
  QuantActs qx, qh;
  void reserve(std::size_t rows, std::size_t hid) {
    r.reserve(rows, hid);
    z.reserve(rows, hid);
    q.reserve(rows, hid);
  }
};

/// Fused GRU forward (Eq. 7-10): out = (1-z)∘tanh(x·w_inᵀ + b_in + r∘q) +
/// z∘h, with r/z gates from affine2_sigmoid_into and q = h·w_hnᵀ + b_hn.
/// x: [m, in], h: [m, hid]; out resized to [m, hid]. Zero allocations once
/// `ws` and `out` have capacity.
void gru_forward_into(const Tensor& x, const Tensor& h, const GruWeights& w,
                      GruScratch& ws, Tensor& out);

/// One-time int8 snapshot of a GruCell's six weight matrices (biases stay
/// fp32, read from GruWeights).
struct QuantGruWeights {
  QuantWeight w_ir, w_iz, w_in, w_hr, w_hz, w_hn;
  [[nodiscard]] bool ready() const { return w_ir.ready(); }
};

/// bf16 snapshot of the six weight matrices.
struct Bf16GruWeights {
  Bf16Weight w_ir, w_iz, w_in, w_hr, w_hz, w_hn;
  [[nodiscard]] bool ready() const { return w_ir.ready(); }
};

/// Int8 fused GRU forward: x and h are per-row-quantized ONCE into ws.qx /
/// ws.qh and reused across all six gate GEMMs; gates, the elementwise
/// epilogue, and the new state are fp32 — the state the caller commits to
/// VertexMemory is never quantized.
void qgru_forward_into(const Tensor& x, const Tensor& h, const GruWeights& w,
                       const QuantGruWeights& qw, GruScratch& ws, Tensor& out);

/// bf16-weight fused GRU forward (fp32 activations and epilogue).
void bf16_gru_forward_into(const Tensor& x, const Tensor& h,
                           const GruWeights& w, const Bf16GruWeights& bw,
                           GruScratch& ws, Tensor& out);

}  // namespace tgnn::kernels
