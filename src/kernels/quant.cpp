#include "kernels/quant.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "kernels/gemm_dispatch.hpp"
#include "kernels/quant_core.hpp"

namespace tgnn::kernels {

namespace {

using detail::Act;

void check(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kInt8:
      return "int8";
    case Precision::kBf16:
      return "bf16";
    case Precision::kFp32:
      break;
  }
  return "fp32";
}

bool parse_precision(const std::string& s, Precision& out) {
  if (s == "fp32") {
    out = Precision::kFp32;
  } else if (s == "int8") {
    out = Precision::kInt8;
  } else if (s == "bf16") {
    out = Precision::kBf16;
  } else {
    return false;
  }
  return true;
}

void quantize_row_with_scale(std::span<const float> x, float scale,
                             std::span<std::int8_t> q) {
  check(x.size() == q.size(), "quantize_row_with_scale: size mismatch");
  if (!(scale > 0.0f)) {  // scale-0 guard (also catches NaN/negative scales)
    std::fill(q.begin(), q.end(), std::int8_t{0});
    return;
  }
  // Scalar half-even rounding — bit-identical to the cvtps2dq the vector
  // tiers use, so weights (quantized here once at load) and activations
  // (quantized by the dispatched pass below) share one rounding rule.
  detail::quantize_span_scalar(x.data(), 1.0f / scale, q.data(), x.size());
}

float quantize_row(std::span<const float> x, std::span<std::int8_t> q) {
  check(x.size() == q.size(), "quantize_row: size mismatch");
  float scale = 0.0f;
  detail::active_quant_kernels().quantize(x.data(), 1, x.size(), x.size(),
                                          q.data(), &scale);
  return scale;
}

void quantize_rows_into(const Tensor& x, QuantActs& out) {
  const std::size_t m = x.rows(), k = x.cols();
  out.rows = m;
  out.cols = k;
  out.stride = quant_padded(k);
  if (out.data.size() < m * out.stride) out.data.resize(m * out.stride);
  if (out.scale.size() < m) out.scale.resize(m);
  // Hot path: one dispatched pass over the whole panel (see QuantizeRowsFn
  // in gemm_dispatch.hpp for why this is hand-vectorized per tier).
  detail::active_quant_kernels().quantize(x.data(), m, k, out.stride,
                                          out.data.data(), out.scale.data());
}

void dequantize_into(const QuantActs& a, Tensor& out) {
  out.resize(a.rows, a.cols);
  for (std::size_t i = 0; i < a.rows; ++i) {
    const float s = a.scale[i];
    float* row = out.data() + i * a.cols;
    const std::int8_t* q = a.data.data() + i * a.stride;
    for (std::size_t j = 0; j < a.cols; ++j)
      row[j] = static_cast<float>(q[j]) * s;
  }
}

void quantize_weight(const Tensor& w, QuantWeight& out) {
  const std::size_t rows = w.rows(), cols = w.cols();
  out.rows = rows;
  out.cols = cols;
  out.stride = quant_padded(cols);
  out.data.assign(rows * out.stride, 0);
  out.row_sum.assign(rows, 0);
  out.scale = detail::quant_scale_from_absmax(
      detail::row_absmax_simd(w.data(), w.size()));
  for (std::size_t r = 0; r < rows; ++r) {
    std::int8_t* qrow = &out.data[r * out.stride];
    quantize_row_with_scale(w.row(r), out.scale,
                            std::span<std::int8_t>(qrow, cols));
    std::int32_t s = 0;
    for (std::size_t cidx = 0; cidx < cols; ++cidx) s += qrow[cidx];
    out.row_sum[r] = s;
  }
}

void dequantize_weight(const QuantWeight& w, Tensor& out) {
  out.resize(w.rows, w.cols);
  for (std::size_t i = 0; i < w.rows; ++i)
    for (std::size_t j = 0; j < w.cols; ++j)
      out.data()[i * w.cols + j] =
          static_cast<float>(w.data[i * w.stride + j]) * w.scale;
}

std::uint16_t bf16_from_float(float v) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  // Round to nearest even on the truncated 16 bits; NaN stays NaN (the
  // rounding add cannot carry a NaN mantissa down to zero).
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

float bf16_to_float(std::uint16_t v) { return detail::bf16_expand(v); }

void bf16_from_tensor(const Tensor& w, Bf16Weight& out) {
  out.rows = w.rows();
  out.cols = w.cols();
  out.data.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    out.data[i] = bf16_from_float(w.data()[i]);
}

namespace {

void check_qaffine(const QuantActs& x, const QuantWeight& w, const Tensor& b,
                   const char* who) {
  if (!w.ready())
    throw std::logic_error(std::string(who) +
                           ": weight not quantized (call prepare first)");
  if (w.cols != x.cols || b.size() != w.rows)
    throw std::invalid_argument(std::string(who) + ": shape mismatch");
}

void qaffine_act_into(Act act, bool accumulate, const QuantActs& x,
                      const QuantWeight& w, const Tensor& b, Tensor& y,
                      const char* who) {
  check_qaffine(x, w, b, who);
  if (!accumulate) y.resize(x.rows, w.rows);
  // The GEMM runs over the PADDED row length: the pad codes are zero, which
  // every tier's integer dot treats as an exact no-op, and k becoming a
  // vector-width multiple means no kernel ever takes its scalar k-tail.
  detail::active_quant_kernels().qgemm(act, accumulate, x.data.data(),
                                       x.scale.data(), w.data.data(), w.scale,
                                       w.row_sum.data(), b.data(), y.data(),
                                       x.rows, x.stride, w.rows);
}

void check_bf16_affine(const Tensor& x, const Bf16Weight& w, const Tensor& b,
                       const char* who) {
  if (!w.ready())
    throw std::logic_error(std::string(who) +
                           ": weight not converted (call prepare first)");
  if (w.cols != x.cols() || b.size() != w.rows)
    throw std::invalid_argument(std::string(who) + ": shape mismatch");
}

template <Act A, bool Accumulate>
void bf16_dispatch(const Tensor& x, const Bf16Weight& w, const Tensor& b,
                   Tensor& y) {
  detail::bf16_gemm_nt_act<A, Accumulate>(x.data(), w.data.data(), b.data(),
                                          y.data(), x.rows(), x.cols(),
                                          w.rows);
}

}  // namespace

void qaffine_into(const QuantActs& x, const QuantWeight& w, const Tensor& b,
                  Tensor& y) {
  qaffine_act_into(Act::kNone, false, x, w, b, y, "qaffine_into");
}

void qaffine_relu_into(const QuantActs& x, const QuantWeight& w,
                       const Tensor& b, Tensor& y) {
  qaffine_act_into(Act::kRelu, false, x, w, b, y, "qaffine_relu_into");
}

void qaffine2_sigmoid_into(const QuantActs& x, const QuantWeight& wi,
                           const Tensor& bi, const QuantActs& h,
                           const QuantWeight& wh, const Tensor& bh,
                           Tensor& y) {
  check(x.rows == h.rows && wi.rows == wh.rows,
        "qaffine2_sigmoid_into: row mismatch");
  qaffine_act_into(Act::kNone, false, x, wi, bi, y, "qaffine2_sigmoid_into(x)");
  qaffine_act_into(Act::kSigmoid, true, h, wh, bh, y,
                   "qaffine2_sigmoid_into(h)");
}

void bf16_affine_into(const Tensor& x, const Bf16Weight& w, const Tensor& b,
                      Tensor& y) {
  check_bf16_affine(x, w, b, "bf16_affine_into");
  y.resize(x.rows(), w.rows);
  bf16_dispatch<Act::kNone, false>(x, w, b, y);
}

void bf16_affine_relu_into(const Tensor& x, const Bf16Weight& w,
                           const Tensor& b, Tensor& y) {
  check_bf16_affine(x, w, b, "bf16_affine_relu_into");
  y.resize(x.rows(), w.rows);
  bf16_dispatch<Act::kRelu, false>(x, w, b, y);
}

void bf16_affine2_sigmoid_into(const Tensor& x, const Bf16Weight& wi,
                               const Tensor& bi, const Tensor& h,
                               const Bf16Weight& wh, const Tensor& bh,
                               Tensor& y) {
  check_bf16_affine(x, wi, bi, "bf16_affine2_sigmoid_into(x)");
  check_bf16_affine(h, wh, bh, "bf16_affine2_sigmoid_into(h)");
  check(x.rows() == h.rows() && wi.rows == wh.rows,
        "bf16_affine2_sigmoid_into: row mismatch");
  y.resize(x.rows(), wi.rows);
  bf16_dispatch<Act::kNone, false>(x, wi, bi, y);
  bf16_dispatch<Act::kSigmoid, true>(h, wh, bh, y);
}

const char* quant_arch_name() {
  return detail::active_quant_kernels().name;
}

}  // namespace tgnn::kernels
