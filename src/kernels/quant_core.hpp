// INTERNAL: the portable int8 GEMM core and the dequantization epilogue
// shared by every int8 ISA tier. Not part of the kernels/ public API —
// include quant.hpp instead.
//
// The int8 kernels have a stronger determinism story than the fp32 lanes:
// the int32 accumulation is EXACT, so the per-element integer dot product
// is identical no matter how a tier blocks or vectorizes it. The only
// floating-point arithmetic is the fixed epilogue below — one expression,
// shared by every tier — so generic / avx2-maddubs / avx512-vnni are
// bit-identical, per element, across row counts and thread counts.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "kernels/gemm_core.hpp"

namespace tgnn::kernels::detail {

// ---- quantization primitives shared by every tier --------------------------
// The per-row quantize pass is itself dispatched (QuantizeRowsFn): GCC will
// not autovectorize a float->int8 narrowing store, so the avx tiers use
// cvtps2dq + pack intrinsics. Everything scalar here rounds half-to-even
// (rint under the default rounding mode) to MATCH cvtps2dq bit-for-bit, so
// the quantized panels are identical across tiers for finite inputs.

/// Row scale from a row's absolute maximum; a row of inf/NaN degrades to the
/// largest finite scale (elements then saturate deterministically), a
/// zero row yields scale 0 (callers emit all-zero codes — the scale-0 guard).
inline float quant_scale_from_absmax(float absmax) {
  if (!std::isfinite(absmax)) absmax = std::numeric_limits<float>::max();
  return absmax / 127.0f;
}

/// Exact max over |x|; max is order-insensitive for finite floats, so every
/// tier's blocking produces the same value.
inline float row_absmax_simd(const float* x, std::size_t len) {
  float m = 0.0f;
#pragma omp simd reduction(max : m)
  for (std::size_t i = 0; i < len; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

/// Scalar quantize of `len` elements with the scale pre-inverted: clamp to
/// ±127 BEFORE the convert (huge/inf inputs saturate instead of hitting
/// float->int UB; a NaN element clamps through fmin to +127), then round
/// half-to-even. Used by the generic tier and every vector tier's k-tail.
inline void quantize_span_scalar(const float* x, float inv, std::int8_t* q,
                                 std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    float v = x[i] * inv;
    v = std::fmax(-127.0f, std::fmin(v, 127.0f));
    q[i] = static_cast<std::int8_t>(
        static_cast<std::int32_t>(std::rint(v)));
  }
}

/// Baseline-ISA QuantizeRowsFn: per-row absmax -> scale -> scalar quantize,
/// rows stored at `stride` with zeroed padding.
inline void quantize_rows_generic(const float* x, std::size_t m, std::size_t k,
                                  std::size_t stride, std::int8_t* q,
                                  float* scale) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * k;
    std::int8_t* qrow = q + i * stride;
    std::memset(qrow + k, 0, stride - k);
    const float s = quant_scale_from_absmax(row_absmax_simd(row, k));
    scale[i] = s;
    if (!(s > 0.0f)) {
      std::memset(qrow, 0, k);
      continue;
    }
    quantize_span_scalar(row, 1.0f / s, qrow, k);
  }
}

/// bf16 -> fp32 is exact: place the 16 stored bits as the high half.
inline float bf16_expand(std::uint16_t v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v) << 16);
}

/// The ONE dequantization epilogue: c = act(base + idot·s + bias), where
/// s = a_scale[i]·b_scale is folded by the caller. Every tier must funnel
/// its exact int32 dot through this expression, in this association order.
template <Act A>
inline float quant_finish(float base, std::int32_t idot, float s, float bias) {
  return activate<A>(base + static_cast<float>(idot) * s + bias);
}

inline std::int32_t qdot_scalar(const std::int8_t* a, const std::int8_t* b,
                                std::size_t k) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < k; ++i)
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return acc;
}

/// c = act((Accumulate ? c : 0) + (a_scale[i]·b_scale)·(a[m,k]·b[n,k]ᵀ) +
/// bias), bias nullable. Baseline-ISA build; the omp-simd widening dot
/// vectorizes to pmaddwd-class code where the autovectorizer can.
template <Act A, bool Accumulate>
void qgemm_nt_act(const std::int8_t* a, const float* a_scale,
                  const std::int8_t* b, float b_scale, const float* bias,
                  float* c, std::size_t m, std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (parallel_worthwhile(m, k, n))
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    float* crow = c + i * n;
    const float s = a_scale[i] * b_scale;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const std::int8_t* b0 = b + (j + 0) * k;
      const std::int8_t* b1 = b + (j + 1) * k;
      const std::int8_t* b2 = b + (j + 2) * k;
      const std::int8_t* b3 = b + (j + 3) * k;
      std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3)
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j + 0] = quant_finish<A>(Accumulate ? crow[j + 0] : 0.0f, acc0, s,
                                    bias != nullptr ? bias[j + 0] : 0.0f);
      crow[j + 1] = quant_finish<A>(Accumulate ? crow[j + 1] : 0.0f, acc1, s,
                                    bias != nullptr ? bias[j + 1] : 0.0f);
      crow[j + 2] = quant_finish<A>(Accumulate ? crow[j + 2] : 0.0f, acc2, s,
                                    bias != nullptr ? bias[j + 2] : 0.0f);
      crow[j + 3] = quant_finish<A>(Accumulate ? crow[j + 3] : 0.0f, acc3, s,
                                    bias != nullptr ? bias[j + 3] : 0.0f);
    }
    for (; j < n; ++j) {
      const std::int32_t acc = qdot_scalar(arow, b + j * k, k);
      crow[j] = quant_finish<A>(Accumulate ? crow[j] : 0.0f, acc, s,
                                bias != nullptr ? bias[j] : 0.0f);
    }
  }
}

/// bf16-weight GEMM: fp32 activations, weights expanded from bf16 in the
/// inner loop (one 16-bit shift — autovectorizable on every ISA, which is
/// why bf16 has no per-arch tiers). Accumulation and epilogue match the
/// fp32 generic core element-for-element.
template <Act A, bool Accumulate>
void bf16_gemm_nt_act(const float* a, const std::uint16_t* b,
                      const float* bias, float* c, std::size_t m,
                      std::size_t k, std::size_t n) {
#pragma omp parallel for schedule(static) if (parallel_worthwhile(m, k, n))
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + kColBlock <= n; j += kColBlock) {
      const std::uint16_t* b0 = b + (j + 0) * k;
      const std::uint16_t* b1 = b + (j + 1) * k;
      const std::uint16_t* b2 = b + (j + 2) * k;
      const std::uint16_t* b3 = b + (j + 3) * k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3)
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * bf16_expand(b0[kk]);
        acc1 += av * bf16_expand(b1[kk]);
        acc2 += av * bf16_expand(b2[kk]);
        acc3 += av * bf16_expand(b3[kk]);
      }
      crow[j + 0] = activate<A>((Accumulate ? crow[j + 0] : 0.0f) + acc0 +
                                (bias != nullptr ? bias[j + 0] : 0.0f));
      crow[j + 1] = activate<A>((Accumulate ? crow[j + 1] : 0.0f) + acc1 +
                                (bias != nullptr ? bias[j + 1] : 0.0f));
      crow[j + 2] = activate<A>((Accumulate ? crow[j + 2] : 0.0f) + acc2 +
                                (bias != nullptr ? bias[j + 2] : 0.0f));
      crow[j + 3] = activate<A>((Accumulate ? crow[j + 3] : 0.0f) + acc3 +
                                (bias != nullptr ? bias[j + 3] : 0.0f));
    }
    for (; j < n; ++j) {
      const std::uint16_t* brow = b + j * k;
      float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += arow[kk] * bf16_expand(brow[kk]);
      crow[j] = activate<A>((Accumulate ? crow[j] : 0.0f) + acc +
                            (bias != nullptr ? bias[j] : 0.0f));
    }
  }
}

}  // namespace tgnn::kernels::detail
