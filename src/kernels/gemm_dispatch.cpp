#include "kernels/gemm_dispatch.hpp"

#include <cstdlib>
#include <cstring>

#include "kernels/quant_core.hpp"

namespace tgnn::kernels::detail {

namespace {

void generic_gemm(Act act, bool accumulate, const float* a, const float* b,
                  const float* bias, float* c, std::size_t m, std::size_t k,
                  std::size_t n) {
  switch (act) {
    case Act::kNone:
      accumulate ? gemm_nt_act<Act::kNone, true>(a, b, bias, c, m, k, n)
                 : gemm_nt_act<Act::kNone, false>(a, b, bias, c, m, k, n);
      break;
    case Act::kSigmoid:
      accumulate ? gemm_nt_act<Act::kSigmoid, true>(a, b, bias, c, m, k, n)
                 : gemm_nt_act<Act::kSigmoid, false>(a, b, bias, c, m, k, n);
      break;
    case Act::kTanh:
      accumulate ? gemm_nt_act<Act::kTanh, true>(a, b, bias, c, m, k, n)
                 : gemm_nt_act<Act::kTanh, false>(a, b, bias, c, m, k, n);
      break;
    case Act::kRelu:
      accumulate ? gemm_nt_act<Act::kRelu, true>(a, b, bias, c, m, k, n)
                 : gemm_nt_act<Act::kRelu, false>(a, b, bias, c, m, k, n);
      break;
  }
}

float generic_dot(const float* a, const float* b, std::size_t k) {
  return dot_simd(a, b, k);
}

KernelTable generic_table() { return {&generic_gemm, &generic_dot, "generic"}; }

void generic_qgemm(Act act, bool accumulate, const std::int8_t* a,
                   const float* a_scale, const std::int8_t* b, float b_scale,
                   const std::int32_t* /*b_row_sum*/, const float* bias,
                   float* c, std::size_t m, std::size_t k, std::size_t n) {
  switch (act) {
    case Act::kNone:
      accumulate
          ? qgemm_nt_act<Act::kNone, true>(a, a_scale, b, b_scale, bias, c, m,
                                           k, n)
          : qgemm_nt_act<Act::kNone, false>(a, a_scale, b, b_scale, bias, c, m,
                                            k, n);
      break;
    case Act::kSigmoid:
      accumulate
          ? qgemm_nt_act<Act::kSigmoid, true>(a, a_scale, b, b_scale, bias, c,
                                              m, k, n)
          : qgemm_nt_act<Act::kSigmoid, false>(a, a_scale, b, b_scale, bias, c,
                                               m, k, n);
      break;
    case Act::kTanh:
      accumulate
          ? qgemm_nt_act<Act::kTanh, true>(a, a_scale, b, b_scale, bias, c, m,
                                           k, n)
          : qgemm_nt_act<Act::kTanh, false>(a, a_scale, b, b_scale, bias, c, m,
                                            k, n);
      break;
    case Act::kRelu:
      accumulate
          ? qgemm_nt_act<Act::kRelu, true>(a, a_scale, b, b_scale, bias, c, m,
                                           k, n)
          : qgemm_nt_act<Act::kRelu, false>(a, a_scale, b, b_scale, bias, c, m,
                                            k, n);
      break;
  }
}

void generic_quantize_rows(const float* x, std::size_t m, std::size_t k,
                           std::size_t stride, std::int8_t* q, float* scale) {
  quantize_rows_generic(x, m, k, stride, q, scale);
}

QuantKernelTable generic_quant_table() {
  return {&generic_qgemm, &generic_quantize_rows, "generic"};
}

QuantKernelTable resolve_quant() {
  // Same TGNN_KERNEL_ARCH cap as the fp32 resolver; the int8 tier ladder
  // just has different runtime requirements per rung.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; nothing
  // in the process calls setenv.
  const char* force = std::getenv("TGNN_KERNEL_ARCH");
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  const bool want_512 = force == nullptr || std::strcmp(force, "avx512") == 0;
  const bool want_avx2 = force == nullptr || std::strcmp(force, "avx2") == 0;
  if (want_512 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vnni")) {
    const QuantKernelTable t = avx512_quant_table();
    if (t.qgemm != nullptr) return t;
  }
  if ((want_512 || want_avx2) && __builtin_cpu_supports("avx2")) {
    const QuantKernelTable t = avx2_quant_table();
    if (t.qgemm != nullptr) return t;
  }
#else
  (void)force;
#endif
  return generic_quant_table();
}

KernelTable resolve() {
  // TGNN_KERNEL_ARCH=generic|avx2|avx512 caps the variant (testing/debug);
  // a capped variant the CPU or build can't run falls back to the next one.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; nothing
  // in the process calls setenv.
  const char* force = std::getenv("TGNN_KERNEL_ARCH");
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  const bool want_512 = force == nullptr || std::strcmp(force, "avx512") == 0;
  const bool want_avx2 = force == nullptr || std::strcmp(force, "avx2") == 0;
  if (want_512 && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("fma")) {
    const KernelTable t = avx512_kernel_table();
    if (t.gemm != nullptr) return t;
  }
  if ((want_512 || want_avx2) && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    const KernelTable t = avx2_kernel_table();
    if (t.gemm != nullptr) return t;
  }
#else
  (void)force;
#endif
  return generic_table();
}

}  // namespace

const KernelTable& active_kernels() {
  static const KernelTable table = resolve();
  return table;
}

const QuantKernelTable& active_quant_kernels() {
  static const QuantKernelTable table = resolve_quant();
  return table;
}

}  // namespace tgnn::kernels::detail

namespace tgnn::kernels {

const char* simd_arch_name() { return detail::active_kernels().name; }

}  // namespace tgnn::kernels
