// Quantized (int8 / bf16) inference kernels — the software counterpart of
// the paper's fixed-point accelerator datapath, behind the same runtime-ISA
// dispatch seam as the fp32 GEMMs (gemm_dispatch.hpp).
//
// Scheme (symmetric, zero-point-free):
//   * weights  — per-tensor scale, quantized ONCE at model load:
//                s_w = absmax(W)/127, Q = round(W/s_w), clamped to ±127.
//   * activations — per-ROW dynamic scale, quantized per batch: row i of a
//                staged matrix (vertex memory gathers, packed neighbor kv
//                rows, GRU mail rows) gets s_i = absmax(row)/127. An
//                all-zero row gets s_i = 0 and q = 0 (the scale-0 guard:
//                dequantization multiplies by s_i, so no division ever
//                happens on the zero row).
//   * accumulation — int32 exact (int8·int8 widening dot), dequantized in
//                fp32 in the epilogue: y = act(s_i·s_w·idot + bias). Biases
//                and activation functions stay fp32, so every stage
//                boundary (vertex memory, embeddings, logits) is fp32 and
//                the persistent state layout is untouched.
//
// Because the int32 dot is EXACT, the result is independent of lane width,
// blocking shape, and summation order — every ISA tier (generic, avx2
// maddubs, avx512 VNNI) produces bit-identical output, a stronger guarantee
// than the fp32 kernels give (pinned by tests/kernels/quant_test.cpp).
//
// bf16 is a weights-only storage format: weights are truncated to bfloat16
// (round-to-nearest-even), expanded to fp32 in-register inside the GEMM,
// and everything else runs the fp32 path. It halves weight memory traffic
// on any ISA (the expansion is one 16-bit shift), which is why there is no
// per-arch bf16 kernel.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace tgnn::kernels {

/// Numeric mode of the inference hot path. Training is always fp32.
enum class Precision { kFp32, kInt8, kBf16 };

[[nodiscard]] const char* precision_name(Precision p);
/// "fp32" | "int8" | "bf16" -> enum; false on anything else.
bool parse_precision(const std::string& s, Precision& out);

/// Quantized rows are stored padded to the widest int8 vector width (the
/// avx512 tier eats 64 codes per step). Padding codes are ZERO, and a zero
/// code contributes exactly 0 to every tier's integer dot (in the VNNI
/// offset domain the surplus 128·0 also cancels), so kernels run over the
/// padded length and never need a scalar k-tail — which otherwise dominates
/// at the model's k≈100–500 (e.g. k=472 leaves a 24-element scalar tail per
/// output element).
inline constexpr std::size_t kQuantKPad = 64;
[[nodiscard]] constexpr std::size_t quant_padded(std::size_t k) {
  return (k + kQuantKPad - 1) / kQuantKPad * kQuantKPad;
}

/// Per-tensor-scale int8 snapshot of a [rows, cols] weight matrix (row-major
/// like the fp32 Tensor it shadows, rows padded to `stride` zeros — see
/// kQuantKPad). `row_sum[j]` = sum of row j's quantized values — the VNNI
/// kernel's unsigned-offset correction term.
struct QuantWeight {
  std::vector<std::int8_t> data;     ///< [rows * stride]
  std::vector<std::int32_t> row_sum; ///< [rows]
  float scale = 0.0f;
  std::size_t rows = 0, cols = 0, stride = 0;
  [[nodiscard]] bool ready() const { return !data.empty(); }
};

/// bf16 (truncated fp32, RNE) snapshot of a weight matrix.
struct Bf16Weight {
  std::vector<std::uint16_t> data;  ///< [rows * cols]
  std::size_t rows = 0, cols = 0;
  [[nodiscard]] bool ready() const { return !data.empty(); }
};

/// Per-row dynamically quantized activation panel; reused across batches
/// (grow-don't-shrink, like every other workspace buffer). Rows are stored
/// at `stride` = quant_padded(cols), zero-padded like QuantWeight.
struct QuantActs {
  std::vector<std::int8_t> data;  ///< [rows * stride]
  std::vector<float> scale;       ///< [rows]
  std::size_t rows = 0, cols = 0, stride = 0;
};

// ---- quantize / dequantize primitives -------------------------------------

/// Quantize one row with an explicit scale: q = round(x/scale) clamped to
/// ±127 (the saturation guard — values beyond ±127·scale clip). scale <= 0
/// writes all zeros.
void quantize_row_with_scale(std::span<const float> x, float scale,
                             std::span<std::int8_t> q);
/// Per-row dynamic scale: absmax(x)/127 (0 for an all-zero row); quantizes
/// the row with it and returns it.
float quantize_row(std::span<const float> x, std::span<std::int8_t> q);
/// Per-row dynamic quantization of a whole [m, k] panel into `out`.
void quantize_rows_into(const Tensor& x, QuantActs& out);
/// x̂ = q·scale, the round-trip inverse (tests / diagnostics).
void dequantize_into(const QuantActs& a, Tensor& out);

/// Per-tensor weight quantization (scale = absmax/127; all-zero weight gets
/// scale 0 and all-zero q).
void quantize_weight(const Tensor& w, QuantWeight& out);
/// Dequantized copy ŵ = q·scale (tests / diagnostics).
void dequantize_weight(const QuantWeight& w, Tensor& out);

[[nodiscard]] std::uint16_t bf16_from_float(float v);  ///< RNE truncation
[[nodiscard]] float bf16_to_float(std::uint16_t v);
void bf16_from_tensor(const Tensor& w, Bf16Weight& out);

// ---- int8 fused affine entries --------------------------------------------
// Quantized counterparts of the fused.hpp affine family: x is a per-row-
// quantized panel (quantize_rows_into), w a per-tensor-quantized weight,
// bias/outputs fp32. y resized to [x.rows, w.rows].

/// y = s_x[i]·s_w·(q_x·q_wᵀ) + b
void qaffine_into(const QuantActs& x, const QuantWeight& w, const Tensor& b,
                  Tensor& y);
/// y = relu(...)
void qaffine_relu_into(const QuantActs& x, const QuantWeight& w,
                       const Tensor& b, Tensor& y);
/// y = sigmoid(x-part + h-part) — the GRU gate shape (two quantized GEMMs,
/// both biases, sigmoid on the fp32 sum).
void qaffine2_sigmoid_into(const QuantActs& x, const QuantWeight& wi,
                           const Tensor& bi, const QuantActs& h,
                           const QuantWeight& wh, const Tensor& bh, Tensor& y);

// ---- bf16 fused affine entries --------------------------------------------
// fp32 activations against bf16-stored weights; same shapes as fused.hpp.

void bf16_affine_into(const Tensor& x, const Bf16Weight& w, const Tensor& b,
                      Tensor& y);
void bf16_affine_relu_into(const Tensor& x, const Bf16Weight& w,
                           const Tensor& b, Tensor& y);
void bf16_affine2_sigmoid_into(const Tensor& x, const Bf16Weight& wi,
                               const Tensor& bi, const Tensor& h,
                               const Bf16Weight& wh, const Tensor& bh,
                               Tensor& y);

/// Name of the int8 micro-kernel tier in use ("generic" | "avx2-maddubs" |
/// "avx512-vnni"), resolved once per process like simd_arch_name().
const char* quant_arch_name();

}  // namespace tgnn::kernels
