// INTERNAL: runtime ISA dispatch for the GEMM micro-kernels.
//
// The repo compiles for baseline x86-64 (portability), but the serving hot
// path should run as fast as the *host* allows (ROADMAP north star). The
// kernels library is therefore built three times:
//
//   generic  — the omp-simd core in gemm_core.hpp, baseline ISA
//   avx2     — gemm_lanes.inc compiled with -mavx2 -mfma
//   avx512   — gemm_lanes.inc compiled with -mavx512f/-mavx512vl -mfma
//
// and `active_kernels()` picks the best table the CPU supports, exactly
// once per process. Because the choice is process-global, every caller —
// per-row and batched inference, every backend, every thread — runs the
// same variant, so the bit-identity contracts between execution modes are
// unaffected by dispatch. Bits may differ *across machines* of different
// ISA level (FMA contracts mul+add into one rounding), which the repo has
// never promised — the same was already true of compiler/-march choice.
//
// The lane kernels themselves keep a stronger, source-level guarantee:
// every micro-kernel (1x4 row, 4x4 block, column tail) accumulates each
// output element in the same explicitly-written 8-lane + pairwise-tree
// order, so per element the result is invariant to the row-blocking shape
// and row count m — the property the batched pipeline's equivalence tests
// pin (see gemm_lanes.inc).
#pragma once

#include <cstddef>

#include "kernels/gemm_core.hpp"

namespace tgnn::kernels::detail {

using GemmFn = void (*)(Act act, bool accumulate, const float* a,
                        const float* b, const float* bias, float* c,
                        std::size_t m, std::size_t k, std::size_t n);
using DotFn = float (*)(const float* a, const float* b, std::size_t k);

struct KernelTable {
  GemmFn gemm = nullptr;
  DotFn dot = nullptr;
  const char* name = "none";
};

/// Arch tables; `gemm == nullptr` when the TU was built without the ISA
/// (unsupported compiler flag) — the resolver skips such entries.
KernelTable avx2_kernel_table();
KernelTable avx512_kernel_table();

/// The table every public kernel entry routes through; resolved on first
/// use (thread-safe magic static) from CPU feature detection.
const KernelTable& active_kernels();

}  // namespace tgnn::kernels::detail

namespace tgnn::kernels {

/// Name of the micro-kernel variant in use ("generic" | "avx2+fma" |
/// "avx512"), for bench banners and diagnostics.
const char* simd_arch_name();

}  // namespace tgnn::kernels
