// INTERNAL: runtime ISA dispatch for the GEMM micro-kernels.
//
// The repo compiles for baseline x86-64 (portability), but the serving hot
// path should run as fast as the *host* allows (ROADMAP north star). The
// kernels library is therefore built three times:
//
//   generic  — the omp-simd core in gemm_core.hpp, baseline ISA
//   avx2     — gemm_lanes.inc compiled with -mavx2 -mfma
//   avx512   — gemm_lanes.inc compiled with -mavx512f/-mavx512vl -mfma
//
// and `active_kernels()` picks the best table the CPU supports, exactly
// once per process. Because the choice is process-global, every caller —
// per-row and batched inference, every backend, every thread — runs the
// same variant, so the bit-identity contracts between execution modes are
// unaffected by dispatch. Bits may differ *across machines* of different
// ISA level (FMA contracts mul+add into one rounding), which the repo has
// never promised — the same was already true of compiler/-march choice.
//
// The lane kernels themselves keep a stronger, source-level guarantee:
// every micro-kernel (1x4 row, 4x4 block, column tail) accumulates each
// output element in the same explicitly-written 8-lane + pairwise-tree
// order, so per element the result is invariant to the row-blocking shape
// and row count m — the property the batched pipeline's equivalence tests
// pin (see gemm_lanes.inc).
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/gemm_core.hpp"

namespace tgnn::kernels::detail {

using GemmFn = void (*)(Act act, bool accumulate, const float* a,
                        const float* b, const float* bias, float* c,
                        std::size_t m, std::size_t k, std::size_t n);
using DotFn = float (*)(const float* a, const float* b, std::size_t k);

struct KernelTable {
  GemmFn gemm = nullptr;
  DotFn dot = nullptr;
  const char* name = "none";
};

/// Arch tables; `gemm == nullptr` when the TU was built without the ISA
/// (unsupported compiler flag) — the resolver skips such entries.
KernelTable avx2_kernel_table();
KernelTable avx512_kernel_table();

/// The table every public kernel entry routes through; resolved on first
/// use (thread-safe magic static) from CPU feature detection.
const KernelTable& active_kernels();

// ---- int8 tier ------------------------------------------------------------
// The quantized GEMM has its own dispatch axis because its ISA ladder
// differs from fp32's (maddubs needs avx2 only; the top tier needs
// AVX512BW+VNNI, which not every avx512f/vl machine has). Unlike the fp32
// lanes, every int8 tier is bit-identical by construction — the int32
// accumulation is exact and the fp32 epilogue is one shared expression
// (quant_core.hpp) — so mixing tiers across processes can never split
// numerics.

/// c = act((accumulate ? c : 0) + (a_scale[i]·b_scale)·(a[m,k]·b[n,k]ᵀ)
///         + bias). a: per-row-quantized activations (a_scale[m]); b:
/// per-tensor-quantized weights, b_row_sum[n] = per-output-row sums of b's
/// quantized values (the unsigned-offset correction the VNNI tier needs;
/// other tiers ignore it). bias nullable.
using QGemmFn = void (*)(Act act, bool accumulate, const std::int8_t* a,
                         const float* a_scale, const std::int8_t* b,
                         float b_scale, const std::int32_t* b_row_sum,
                         const float* bias, float* c, std::size_t m,
                         std::size_t k, std::size_t n);

/// Per-row dynamic quantization of an [m, k] fp32 panel: row i gets
/// scale[i] = absmax(row)/127 (0 for an all-zero row — the scale-0 guard)
/// and q = clamp(round_half_even(x/scale), ±127), written at q + i·stride
/// with the [k, stride) pad bytes zeroed (stride >= k; see kQuantKPad). On
/// the hot path this runs once per staged activation matrix, so it is
/// dispatched like the GEMMs: the float->int8 narrowing store only
/// vectorizes through pack intrinsics. All tiers round half-to-even
/// (cvtps2dq under default MXCSR == rint), so the quantized panel — and
/// hence the whole int8 path — is bit-identical across tiers for finite
/// inputs.
using QuantizeRowsFn = void (*)(const float* x, std::size_t m, std::size_t k,
                                std::size_t stride, std::int8_t* q,
                                float* scale);

struct QuantKernelTable {
  QGemmFn qgemm = nullptr;
  QuantizeRowsFn quantize = nullptr;
  const char* name = "none";
};

/// Arch tiers; `qgemm == nullptr` when the TU was built without the ISA.
QuantKernelTable avx2_quant_table();     ///< maddubs sign-trick (gemm_arch_avx2.cpp)
QuantKernelTable avx512_quant_table();   ///< VNNI dpbusd (gemm_arch_avx512vnni.cpp)

/// Resolved once per process, honoring the same TGNN_KERNEL_ARCH cap as the
/// fp32 table ("avx512" selects the VNNI tier where the CPU has it).
const QuantKernelTable& active_quant_kernels();

}  // namespace tgnn::kernels::detail

namespace tgnn::kernels {

/// Name of the micro-kernel variant in use ("generic" | "avx2+fma" |
/// "avx512"), for bench banners and diagnostics.
const char* simd_arch_name();

}  // namespace tgnn::kernels
