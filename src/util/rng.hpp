// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components in this repository (synthetic dataset generation,
// weight initialization, negative sampling) draw from Xoshiro256** seeded via
// SplitMix64, so a fixed seed reproduces every table and figure bit-for-bit.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace tgnn {

/// Xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 2^256 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& s : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough mapping.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  /// Standard normal via Box-Muller.
  double normal() {
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) {
    double u = 0.0;
    while (u == 0.0) u = uniform();
    return -std::log(u) / lambda;
  }

  /// Pareto (power-law) with minimum xm and shape alpha; heavy tail for
  /// inter-event times matching Fig. 1's power-law dt distribution.
  double pareto(double xm, double alpha) {
    double u = 0.0;
    while (u == 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Zipf-distributed index in [0, n) with exponent s (approximate, via
  /// rejection-free inverse-CDF over precomputed table is avoided; uses the
  /// standard rejection method which is adequate for generator use).
  std::size_t zipf(std::size_t n, double s);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace tgnn
