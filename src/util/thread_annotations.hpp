// Clang thread-safety annotation macros — the compile-time half of the
// concurrency contract (DESIGN.md "Correctness tooling").
//
// The runtime has five independently-locked concurrent layers (shard
// locks, the pipelined stage channels, the serving queue, the thread
// pool, and the out-of-core VertexStore); TSan can only catch a lock
// violation a test happens to interleave, but clang's -Wthread-safety
// analysis proves lock discipline at compile time the way the paper's
// statically-scheduled dataflow proves hazard-freedom in hardware. The
// macros expand to clang capability attributes under clang and to nothing
// elsewhere, so gcc builds are untouched.
//
// Conventions (enforced by the dedicated CI job, which builds with
// -Wthread-safety -Werror=thread-safety):
//  * every mutex-protected member is TGNN_GUARDED_BY(mu_),
//  * every private helper that assumes the lock is TGNN_REQUIRES(mu_),
//  * every public method that takes the lock itself is TGNN_EXCLUDES(mu_),
//  * raw std::mutex / std::condition_variable are never used directly in
//    concurrent code — util/mutex.hpp wraps them in annotated capability
//    types (libstdc++'s are unannotated, so the analysis cannot see
//    through them).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TGNN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TGNN_THREAD_ANNOTATION(x)  // no-op: analysis is clang-only
#endif

/// Marks a type as a lockable capability ("mutex", "shared mutex", ...).
#define TGNN_CAPABILITY(x) TGNN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define TGNN_SCOPED_CAPABILITY TGNN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define TGNN_GUARDED_BY(x) TGNN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define TGNN_PT_GUARDED_BY(x) TGNN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires the capability (exclusively / shared).
#define TGNN_ACQUIRE(...) \
  TGNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TGNN_ACQUIRE_SHARED(...) \
  TGNN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the capability.
#define TGNN_RELEASE(...) \
  TGNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TGNN_RELEASE_SHARED(...) \
  TGNN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Release either an exclusive or a shared hold (scoped-lock destructors).
#define TGNN_RELEASE_GENERIC(...) \
  TGNN_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define TGNN_TRY_ACQUIRE(b, ...) \
  TGNN_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must already hold the capability (exclusively / shared).
#define TGNN_REQUIRES(...) \
  TGNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TGNN_REQUIRES_SHARED(...) \
  TGNN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself —
/// the annotation that turns self-deadlock into a compile error).
#define TGNN_EXCLUDES(...) TGNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define TGNN_RETURN_CAPABILITY(x) TGNN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch, always paired with a comment explaining why the analysis
/// cannot see the invariant (e.g. lock-free publication protocols).
#define TGNN_NO_THREAD_SAFETY_ANALYSIS \
  TGNN_THREAD_ANNOTATION(no_thread_safety_analysis)
