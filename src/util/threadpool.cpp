#include "util/threadpool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tgnn {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> task;
        {
          util::MutexLock lk(mu_);
          while (!stop_ && tasks_.empty()) cv_task_.wait(lk);
          if (stop_ && tasks_.empty()) return;
          task = std::move(tasks_.front());
          tasks_.pop();
        }
        task();
        {
          util::MutexLock lk(mu_);
          TGNN_DCHECK(in_flight_ > 0, "task completion with zero in flight");
          if (--in_flight_ == 0) cv_done_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    util::MutexLock lk(mu_);
    ++in_flight_;
    tasks_.push(std::move(task));
    TGNN_DCHECK(in_flight_ >= tasks_.size(),
                "queued tasks exceed the in-flight count");
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  util::MutexLock lk(mu_);
  while (in_flight_ != 0) cv_done_.wait(lk);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

}  // namespace tgnn
