#include "util/threadpool.hpp"

#include <algorithm>

namespace tgnn {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock lk(mu_);
          cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
          if (stop_ && tasks_.empty()) return;
          task = std::move(tasks_.front());
          tasks_.pop();
        }
        task();
        {
          std::lock_guard lk(mu_);
          if (--in_flight_ == 0) cv_done_.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    ++in_flight_;
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

}  // namespace tgnn
