#include "util/argparse.hpp"

#include <cstdio>
#include <stdexcept>

namespace tgnn {

void ArgParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare flag treated as boolean
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage(argv[0]);
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("unknown flag: " + name);
  return it->second.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const auto v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

void ArgParser::print_usage(const std::string& prog) const {
  std::fprintf(stderr, "usage: %s [flags]\n", prog.c_str());
  for (const auto& [name, flag] : flags_)
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.c_str());
}

}  // namespace tgnn
