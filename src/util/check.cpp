#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace tgnn::util::detail {

namespace {
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const char* msg) {
  // One unbuffered write: the abort message must survive even when the
  // process is wedged mid-lock (these fire inside concurrent machinery).
  std::fprintf(stderr, "TGNN_CHECK failed: %s:%d: %s%s%s\n", file, line, expr,
               msg[0] != '\0' ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}
}  // namespace

void check_fail(const char* file, int line, const char* expr) {
  fail(file, line, expr, "");
}

void check_fail(const char* file, int line, const char* expr,
                const std::string& msg) {
  fail(file, line, expr, msg.c_str());
}

}  // namespace tgnn::util::detail
