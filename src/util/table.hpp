// Plain-text table printer used by the benchmark harnesses to emit the
// paper's tables/figure series in a aligned, diff-friendly format, plus a
// CSV sink for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tgnn {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  /// Format as percentage with given precision (value is a fraction).
  static std::string pct(double fraction, int precision = 1);

  /// Render to an output stream with a title line and column separators.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Write as CSV (header + rows) to the given path. Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tgnn
