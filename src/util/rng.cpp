#include "util/rng.hpp"

#include <stdexcept>

namespace tgnn {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("categorical: zero total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be > 0");
  // Rejection sampling (Devroye). Adequate for dataset generation.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      const auto k = static_cast<std::size_t>(x) - 1;
      if (k < n) return k;
    }
  }
}

}  // namespace tgnn
