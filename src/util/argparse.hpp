// Tiny command-line flag parser shared by benches and examples.
// Flags take the form --name=value or --name value; unknown flags error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tgnn {

class ArgParser {
 public:
  /// Register a flag with a default value and help text before parse().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv; returns false (and prints usage) on error or --help.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  void print_usage(const std::string& prog) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

}  // namespace tgnn
