// Monotonic wall-clock stopwatch used by every benchmark harness.
#pragma once

#include <chrono>

namespace tgnn {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }
  [[nodiscard]] double nanos() const { return seconds() * 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tgnn
