// Executable contracts: TGNN_CHECK / TGNN_DCHECK (DESIGN.md "Correctness
// tooling").
//
// TGNN_CHECK is always compiled in: it states an invariant whose violation
// means the process state is corrupt and continuing would serve wrong
// answers — it aborts with file:line, the failed expression, and an
// optional message. Use it where the cost is negligible against the code
// around it (per-batch, per-page — never per-element).
//
// TGNN_DCHECK compiles to nothing unless the tree is configured with
// -DTGNN_CHECKED=ON (the checked-invariant build, run as its own CI job).
// Use it for per-element assertions and for the heavyweight structural
// validators (VertexStore::check_invariants, the serving hazard-ledger
// audit) that would tax the hot path. The expression still parses in
// unchecked builds, so a checked-only variable never rots.
#pragma once

#include <string>

namespace tgnn::util {

/// True when the tree was configured with -DTGNN_CHECKED=ON. Lets tests
/// and validators branch on whether auto-invoked invariant checks are
/// active without reaching for the preprocessor.
#ifdef TGNN_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

namespace detail {
[[noreturn]] void check_fail(const char* file, int line, const char* expr);
[[noreturn]] void check_fail(const char* file, int line, const char* expr,
                             const std::string& msg);
}  // namespace detail

}  // namespace tgnn::util

/// Abort (in every build) unless `cond` holds. An optional second argument
/// — any expression convertible to std::string — is evaluated only on
/// failure and appended to the abort message.
#define TGNN_CHECK(cond, ...)                                       \
  (static_cast<bool>(cond)                                          \
       ? static_cast<void>(0)                                       \
       : ::tgnn::util::detail::check_fail(__FILE__, __LINE__,       \
                                          #cond __VA_OPT__(, ) __VA_ARGS__))

/// TGNN_CHECK in checked builds (-DTGNN_CHECKED=ON); in regular builds the
/// condition is parsed and type-checked but never evaluated.
#ifdef TGNN_CHECKED
#define TGNN_DCHECK(cond, ...) TGNN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define TGNN_DCHECK(cond, ...) \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#endif
