#include "util/fault_injector.hpp"

namespace tgnn::util {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

/// SplitMix64 finalizer: a seeded stateless hash of the check ordinal, so
/// the fault decision for check k depends only on (seed, site, k).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kStageExec: return "stage-exec";
    case FaultSite::kSpillRead: return "spill-read";
    case FaultSite::kSpillWrite: return "spill-write";
    case FaultSite::kSpillOpen: return "spill-open";
    case FaultSite::kChannelHandoff: return "channel-handoff";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, bool transient,
                             std::uint64_t ordinal)
    : std::runtime_error(std::string("injected ") +
                         (transient ? "transient" : "permanent") +
                         " fault at " + fault_site_name(site) + " (check #" +
                         std::to_string(ordinal) + ")"),
      site_(site),
      transient_(transient),
      ordinal_(ordinal) {}

void FaultInjector::arm(FaultSite site, FaultPlan plan) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  s.plan = plan;
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm(FaultSite site) {
  sites_[static_cast<std::size_t>(site)].armed.store(
      false, std::memory_order_release);
}

void FaultInjector::check(FaultSite site) {
  SiteState& s = sites_[static_cast<std::size_t>(site)];
  // The ordinal is claimed unconditionally so concurrent checks at one
  // site each get a distinct, stable decision.
  const std::uint64_t ordinal =
      s.checks.fetch_add(1, std::memory_order_relaxed);
  if (!s.armed.load(std::memory_order_acquire)) return;
  const FaultPlan& plan = s.plan;
  if (ordinal < plan.skip_first) return;
  if (plan.probability < 1.0) {
    const std::uint64_t h =
        mix(seed_ ^ (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ULL)
            ^ (ordinal + 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= plan.probability) return;
  }
  if (plan.max_faults != 0) {
    // Claim a fault slot; back off once the budget is spent.
    std::uint64_t n = s.injected.load(std::memory_order_relaxed);
    for (;;) {
      if (n >= plan.max_faults) return;
      if (s.injected.compare_exchange_weak(n, n + 1,
                                           std::memory_order_relaxed))
        break;
    }
  } else {
    s.injected.fetch_add(1, std::memory_order_relaxed);
  }
  throw InjectedFault(site, plan.transient, ordinal);
}

std::uint64_t FaultInjector::checks(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].checks.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].injected.load(
      std::memory_order_relaxed);
}

void set_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace tgnn::util
