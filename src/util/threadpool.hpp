// Minimal blocking thread pool for the multi-threaded CPU baseline.
//
// The reference TGNN kernels are parallelized two ways: OpenMP inside GEMM
// (src/tensor/ops.cpp) and this pool for task-level parallelism across
// independent vertices in the CPU baseline (mirrors the paper's 32-thread
// CPU runs). parallel_for partitions [0, n) into contiguous chunks.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tgnn {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n), partitioned into size() contiguous chunks.
  /// Blocks until all chunks complete. Exceptions in workers terminate.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      TGNN_EXCLUDES(mu_);

  /// Enqueue a task for asynchronous execution (FIFO per pool; with one
  /// worker this is a strict serial executor — the property the runtime
  /// ServingEngine relies on for chronological state writes).
  void submit(std::function<void()> task) TGNN_EXCLUDES(mu_);
  /// Block until every submitted task has finished.
  void wait_idle() TGNN_EXCLUDES(mu_);

 private:
  std::vector<std::thread> workers_;
  util::Mutex mu_;
  util::CondVar cv_task_;  ///< signals: task queued or stop
  util::CondVar cv_done_;  ///< signals: in_flight_ reached zero
  std::queue<std::function<void()>> tasks_ TGNN_GUARDED_BY(mu_);
  /// Tasks submitted but not yet finished (queued + running). Invariant:
  /// in_flight_ >= tasks_.size(), restored by every queue transition.
  std::size_t in_flight_ TGNN_GUARDED_BY(mu_) = 0;
  bool stop_ TGNN_GUARDED_BY(mu_) = false;
};

}  // namespace tgnn
