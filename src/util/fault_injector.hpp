// Deterministic fault injection for the serving stack's failure paths.
//
// Production code marks its fallible seams with fault_point(site); with no
// injector installed that is a single relaxed atomic load and the whole
// harness costs nothing. Tests install a seeded FaultInjector and arm
// individual sites with a FaultPlan; an armed check throws InjectedFault,
// which the seam's owner must convert into a bounded retry (transient) or
// a clean typed failure (permanent) — never a deadlock, never a partial
// state commit.
//
// Determinism contract: whether check number k at a site faults depends
// only on (seed, site, k). Sites keep independent counters, so two runs
// that issue the same per-site check sequences inject the same faults,
// regardless of cross-site interleaving. That is what makes the CI fault
// matrix (seeds x sites) reproducible under TSan's scheduling noise.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tgnn::util {

/// Where a fault can be injected. One enumerator per seam the runtime
/// guards; keep kNumFaultSites in sync.
enum class FaultSite : std::size_t {
  kStageExec = 0,      ///< backend stage / batch execution entry
  kSpillRead = 1,      ///< PagedFile::read_page
  kSpillWrite = 2,     ///< PagedFile::write_page
  kSpillOpen = 3,      ///< PagedFile::ensure_open (mkstemp/ftruncate/mmap)
  kChannelHandoff = 4  ///< stage-channel push between pipeline stages
};
inline constexpr std::size_t kNumFaultSites = 5;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// The typed error an armed fault_point throws. `transient()` faults are
/// the retryable class (the seam owner retries with bounded backoff);
/// permanent ones must surface as a typed request/batch failure.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, bool transient, std::uint64_t ordinal);

  [[nodiscard]] FaultSite site() const { return site_; }
  [[nodiscard]] bool transient() const { return transient_; }
  /// Which check at the site fired (0-based) — stable across reruns.
  [[nodiscard]] std::uint64_t ordinal() const { return ordinal_; }

 private:
  FaultSite site_;
  bool transient_;
  std::uint64_t ordinal_;
};

/// Per-site injection schedule.
struct FaultPlan {
  /// Probability that any one check faults (decided by a seeded hash of
  /// the check ordinal — no shared RNG stream, no ordering sensitivity).
  double probability = 1.0;
  /// Transient faults are retried by the seam owner; permanent ones fail
  /// the enclosing request/batch with a typed outcome.
  bool transient = true;
  /// Stop injecting after this many faults at the site (0 = unbounded).
  std::uint64_t max_faults = 0;
  /// Let the first N checks pass untouched (place a fault mid-stream).
  std::uint64_t skip_first = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm/disarm a site. Not synchronized against concurrent check():
  /// install the full plan before starting the workload under test.
  void arm(FaultSite site, FaultPlan plan);
  void disarm(FaultSite site);

  /// The production-side probe: throws InjectedFault when the site's plan
  /// says this check faults. Thread-safe and lock-free.
  void check(FaultSite site);

  [[nodiscard]] std::uint64_t checks(FaultSite site) const;
  [[nodiscard]] std::uint64_t injected(FaultSite site) const;

 private:
  struct SiteState {
    std::atomic<bool> armed{false};
    FaultPlan plan;
    std::atomic<std::uint64_t> checks{0};
    std::atomic<std::uint64_t> injected{0};
  };

  std::uint64_t seed_;
  SiteState sites_[kNumFaultSites];
};

/// Install/remove the process-global injector (tests only; pass nullptr
/// to remove). The caller owns the injector and must keep it alive — and
/// quiesce the workload — across install/remove.
void set_fault_injector(FaultInjector* injector);
[[nodiscard]] FaultInjector* fault_injector();

/// The seam marker production code calls. No injector installed = one
/// relaxed load, no branch taken.
inline void fault_point(FaultSite site) {
  if (FaultInjector* fi = fault_injector(); fi != nullptr) fi->check(site);
}

}  // namespace tgnn::util
