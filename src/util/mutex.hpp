// Annotated locking primitives: thin wrappers over the std synchronization
// types that carry the clang thread-safety capability attributes libstdc++
// lacks. Concurrent code in this repo locks through these (never through
// raw std::mutex) so the -Wthread-safety CI build can prove lock
// discipline; at runtime they compile down to exactly the std types.
//
// Condition-variable waits deliberately take no predicate lambda: the
// analysis treats a lambda body as a separate unannotated function, so a
// predicate reading guarded state would defeat the whole point. Callers
// write the standard explicit form instead —
//
//   MutexLock lk(mu_);
//   while (!ready_) cv_.wait(lk);     // guarded reads stay in this scope
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace tgnn::util {

class CondVar;
class MutexLock;

/// std::mutex as a clang capability.
class TGNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TGNN_ACQUIRE() { mu_.lock(); }
  void unlock() TGNN_RELEASE() { mu_.unlock(); }
  bool try_lock() TGNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over Mutex (std::unique_lock underneath). Supports the manual
/// unlock()/lock() window the serving scheduler uses around backend calls;
/// the destructor releases only if currently held.
class TGNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TGNN_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() TGNN_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Reacquire after a manual unlock() (e.g. around a blocking backend
  /// call that must not run under the engine mutex).
  void lock() TGNN_ACQUIRE() { lk_.lock(); }
  void unlock() TGNN_RELEASE() { lk_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable bound to MutexLock. Waits keep the capability
/// state unchanged (held on entry, held on return), which is exactly what
/// the analysis assumes of an unannotated callee — no escape hatch needed.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lk) { cv_.wait(lk.lk_); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lk.lk_, d);
  }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex as a clang capability (the shard lock table's
/// reader/writer locks).
class TGNN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TGNN_ACQUIRE() { mu_.lock(); }
  void unlock() TGNN_RELEASE() { mu_.unlock(); }
  void lock_shared() TGNN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() TGNN_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold on a SharedMutex (a shard-row write).
class TGNN_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) TGNN_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ExclusiveLock() TGNN_RELEASE() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared hold on a SharedMutex (a cross-batch shard-row read).
class TGNN_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) TGNN_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() TGNN_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace tgnn::util
