#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tgnn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return ss.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::size_t total = 1;
  for (auto w : width) total += w + 3;

  if (!title.empty()) os << "== " << title << " ==\n";
  auto rule = [&] { os << std::string(total, '-') << "\n"; };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << "\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ",";
      // Quote cells containing commas.
      if (cells[c].find(',') != std::string::npos)
        f << '"' << cells[c] << '"';
      else
        f << cells[c];
    }
    f << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return static_cast<bool>(f);
}

}  // namespace tgnn
