#include "tgnn/time_encoder.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace tgnn::core {

CosTimeEncoder::CosTimeEncoder(std::size_t dim, tgnn::Rng& rng)
    : omega("time_enc.omega", Tensor(dim)), phi("time_enc.phi", Tensor(dim)) {
  // TGAT-style init: omega spans decades of frequency so the encoder can
  // resolve both second-scale and day-scale gaps; phi small random.
  for (std::size_t k = 0; k < dim; ++k) {
    const double expo =
        -static_cast<double>(k) * 9.0 /
        static_cast<double>(std::max<std::size_t>(1, dim - 1));
    omega.value[k] = static_cast<float>(std::pow(10.0, expo));
    phi.value[k] = rng.uniform(-0.1f, 0.1f);
  }
}

Tensor CosTimeEncoder::encode(const std::vector<double>& dts) const {
  Tensor out(dts.size(), dim());
  for (std::size_t i = 0; i < dts.size(); ++i) encode_scalar(dts[i], out.row(i));
  return out;
}

void CosTimeEncoder::encode_scalar(double dt, std::span<float> out) const {
  if (out.size() != dim())
    throw std::invalid_argument("CosTimeEncoder: output span size mismatch");
  for (std::size_t k = 0; k < out.size(); ++k)
    out[k] = std::cos(omega.value[k] * static_cast<float>(dt) + phi.value[k]);
}

void CosTimeEncoder::backward(const std::vector<double>& dts,
                              const Tensor& dout) {
  if (dout.rows() != dts.size() || dout.cols() != dim())
    throw std::invalid_argument("CosTimeEncoder::backward: shape mismatch");
  for (std::size_t i = 0; i < dts.size(); ++i) {
    const auto dt = static_cast<float>(dts[i]);
    const auto g = dout.row(i);
    for (std::size_t k = 0; k < dim(); ++k) {
      const float s = -std::sin(omega.value[k] * dt + phi.value[k]);
      omega.grad[k] += g[k] * s * dt;
      phi.grad[k] += g[k] * s;
    }
  }
}

std::vector<nn::Parameter*> CosTimeEncoder::parameters() {
  return {&omega, &phi};
}

}  // namespace tgnn::core
