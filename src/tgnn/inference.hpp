// Staged TGNN inference per Algorithm 1.
//
// RuntimeState bundles the persistent vertex tables (memory, mailbox,
// neighbor structure); InferenceEngine streams edge batches through the
// model as an explicit four-stage pipeline — the software port of the
// paper's hardware dataflow (memory-update unit -> embedding unit ->
// decoder, wired by bounded FIFOs):
//
//   MemoryUpdate   : mailbox drain -> GRU -> updated node memory (Eq. 1)
//   NeighborGather : temporal neighbor sampling + CSR pack / kv-row staging
//   GnnCompute     : batched attention GEMMs -> dynamic embeddings (Eq. 2)
//   Decode         : state write-back (memory commit, fresh mail, neighbor
//                    table extension); pair scoring rides on the produced
//                    embeddings (evaluate_ap / the serving decoder)
//
// Each stage operates on a per-batch StageContext, so a caller holding two
// contexts can run stage k of batch i concurrently with stage k-1 of batch
// i+1 — the cross-batch overlap the runtime's pipelined ServingEngine
// schedules (with a vertex-footprint hazard check; see DESIGN.md "The
// staged serving pipeline"). process_batch is the serial driver: the four
// stages back to back on the engine's own context, bit-identical to the
// pre-staged monolithic loop.
//
// The stages are individually timed (PartTimes) to reproduce the Table I
// breakdown. Negative-sample vertices can be embedded alongside a batch
// (for AP evaluation) without mutating their state.
//
// Within a batch, temporal dependencies between its edges are ignored while
// state writes stay chronological — the standard TGN setup the paper adopts
// (§II-A) and the property the hardware Updater enforces on the FPGA side.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "graph/neighbor_table.hpp"
#include "graph/vertex_state.hpp"
#include "kernels/fused.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/metrics.hpp"
#include "tgnn/model.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::graph {
class ShardLockTable;
}

namespace tgnn::core {

/// Persistent per-vertex state. `use_fifo` selects the hardware-style
/// bounded FIFO neighbor table (§IV-A) over the unbounded software sampler.
///
/// `memory_budget_bytes` caps the RESIDENT size of the two big tables
/// (memory + mailbox): 0 (the default) keeps everything in flat RAM
/// exactly as before; a nonzero budget is split between the tables
/// proportionally to their total row footprint and each then spills its
/// cold pages through a graph::VertexStore. The neighbor table and the
/// mail_valid flags stay resident — they are an order of magnitude
/// smaller and are touched by footprint/admission logic outside the pin
/// windows.
struct RuntimeState {
  RuntimeState(graph::NodeId num_nodes, const ModelConfig& cfg, bool use_fifo,
               std::size_t memory_budget_bytes = 0);

  graph::VertexMemory memory;
  graph::VertexMailbox mailbox;
  std::unique_ptr<graph::NeighborFinder> finder;  ///< null if use_fifo
  std::unique_ptr<graph::NeighborTable> table;    ///< null if !use_fifo
  std::vector<std::uint8_t> mail_valid;  ///< consume-once flag per vertex

  /// Temporal neighbors of v strictly before t, at most k, oldest -> newest,
  /// filled into `out` (reusing its capacity — the hot path never
  /// allocates in steady state; there is deliberately no allocating
  /// overload).
  void neighbors_into(graph::NodeId v, double t, std::size_t k,
                      std::vector<graph::NeighborHit>& out) const;
  void insert_edge(const graph::TemporalEdge& e);
  void reset();

  // ---- out-of-core seam (every call a no-op when all-resident) ---------
  /// True iff either table runs with a budget (spill-backed).
  [[nodiscard]] bool out_of_core() const {
    return memory.out_of_core() || mailbox.out_of_core();
  }
  /// Pin `nodes`' memory rows (and mailbox rows too when `with_mail`)
  /// resident; the matching unpin releases them. Pin windows are what
  /// keep the engine's raw row pointers valid across stages.
  void pin_rows(std::span<const graph::NodeId> nodes, bool with_mail);
  void unpin_rows(std::span<const graph::NodeId> nodes, bool with_mail);
  /// Fault `nodes`' memory pages in without pinning (the pipelined
  /// scheduler's one-stage-early prefetch hook).
  void prefetch_rows(std::span<const graph::NodeId> nodes);
  /// Combined memory + mailbox store counters.
  [[nodiscard]] graph::VertexStoreStats store_stats() const;
  /// Flat-RAM footprint of the two tables at these dims — what a byte
  /// budget (or a "mem=50%" factory suffix) is measured against.
  [[nodiscard]] static std::size_t state_bytes(graph::NodeId num_nodes,
                                               const ModelConfig& cfg);
};

/// Per-batch functional output: the unique involved vertices and their
/// dynamic embeddings. (Hoisted to namespace scope so StageContext can hold
/// one; InferenceEngine::BatchResult remains an alias.)
struct BatchResult {
  std::vector<graph::NodeId> nodes;  ///< unique involved vertices
  Tensor embeddings;                 ///< [nodes.size(), emb_dim]
  std::unordered_map<graph::NodeId, std::size_t> index;
  [[nodiscard]] std::span<const float> embedding_of(graph::NodeId v) const {
    return embeddings.row(index.at(v));
  }
};

/// The explicit pipeline stages of one batch, in dataflow order. Values are
/// contiguous from 0 so schedulers can index FIFOs / workers by stage.
enum class Stage : std::size_t {
  kMemoryUpdate = 0,    ///< mailbox drain + GRU (Eq. 1)
  kNeighborGather = 1,  ///< neighbor sampling + CSR pack + kv-row staging
  kGnnCompute = 2,      ///< batched attention GEMMs (Eq. 2)
  kDecode = 3,          ///< pair scoring + chronological state write-back
};
inline constexpr std::size_t kNumStages = 4;

struct PartTimes {
  double sample = 0.0, memory = 0.0, gnn = 0.0, update = 0.0;  // seconds
  [[nodiscard]] double total() const { return sample + memory + gnn + update; }
  PartTimes& operator+=(const PartTimes& o) {
    sample += o.sample;
    memory += o.memory;
    gnn += o.gnn;
    update += o.update;
    return *this;
  }
};

/// Reusable scratch for one batch's trip through the stages. All per-batch
/// intermediates live here, sized on first use (or up-front via reserve())
/// and recycled, so steady-state batches do no heap allocation beyond the
/// returned BatchResult itself. One workspace per in-flight batch — the
/// serial engine owns one; the pipelined serving path owns one per
/// StageContext slot, which is what makes cross-batch stage overlap safe.
struct BatchWorkspace {
  /// Grow-don't-shrink sizing shared by every per-element buffer here: the
  /// one high-water-mark growth rule (geometric growth via std::vector,
  /// capacity kept until destruction) that reserve() and the ragged-batch
  /// overflow paths both use.
  template <typename T>
  static void grow_to(std::vector<T>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
  }

  std::vector<double> t_event;                        ///< per unique vertex
  std::vector<std::vector<graph::NeighborHit>> nbrs;  ///< per unique vertex
  std::vector<std::size_t> mail_rows;
  std::vector<const float*> mem_ptr;
  Tensor x;               ///< GRU gather [mail_rows, gru_in_dim]
  Tensor h;               ///< GRU state gather [mail_rows, mem_dim]
  Tensor s_new;           ///< fused-GRU output [mail_rows, mem_dim]
  kernels::GruScratch gru;  ///< fused-GRU gate buffers
  std::vector<float> raw;  ///< one raw-mail scratch row

  /// Per-thread GNN-stage scratch (index = OpenMP thread id). The batched
  /// pipeline uses it only for the gather loops (mem_row locked reads,
  /// per-node score scratch); the per-row pipeline for everything.
  struct GnnScratch {
    Tensor fp;             ///< [1, mem_dim] f'_i of the center vertex
    AttnNodeInput attn_in; ///< vanilla path: q/kv gather, resized in place
    Tensor v_in;           ///< simplified path: V gather for kept slots
    std::vector<double> dts;
    std::vector<float> mem_row;  ///< locked-read copy of a neighbor's memory
    // Fused-kernel scratch: projections, logits, and FTM input of the
    // attention variants (tgnn layer writes embeddings straight into the
    // batch result through these).
    VanillaAttention::InferScratch attn;
    SimplifiedAttention::InferScratch sat;
    SimplifiedAttention::ScoreScratch score;
    SimplifiedAttention::Scores scores;
  };
  std::vector<GnnScratch> gnn;

  /// Batch-level staging for the batched GNN stage: every per-event input
  /// is gathered once into these contiguous row-major matrices (neighbor
  /// rows packed CSR-style behind `seg`) by NeighborGather, each model
  /// stage then runs as a single batched GEMM in GnnCompute, and the final
  /// FTM GEMM scatters embeddings straight into the batch result.
  struct GnnBatch {
    std::vector<std::size_t> seg;  ///< [n_nodes + 1] CSR offsets into kv_in
    Tensor fp;                     ///< [n_nodes, mem_dim] f'_i rows
    Tensor q_in;                   ///< vanilla: [n_nodes, q_in_dim]
    Tensor kv_in;                  ///< [total, kv_in_dim] packed neighbor rows
    std::vector<float> logits;     ///< simplified: packed kept-slot logits
    std::vector<SimplifiedAttention::Scores> scores;  ///< per node
    VanillaAttention::BatchScratch attn;
    SimplifiedAttention::BatchScratch sat;
  };
  GnnBatch gb;

  /// Pre-size every buffer for batches of up to `max_nodes` unique vertices
  /// so the first measured batch already runs allocation-free. Growth
  /// policy: buffers sized here are high-water marks — a ragged batch that
  /// overflows them grows the underlying vector through grow_to() /
  /// Tensor::resize and the capacity is kept for every later batch; nothing
  /// ever shrinks until the workspace is destroyed.
  void reserve(std::size_t max_nodes, const ModelConfig& cfg);
};

/// Everything one batch carries between pipeline stages: its identity in
/// the stream, the per-batch workspace, the accumulated functional result,
/// and the per-stage timing. Carved out of the engine so several batches
/// can be in flight at once — the engine itself holds no per-batch state
/// during stage_run, only the shared RuntimeState (whose cross-batch
/// access the caller keeps hazard-free; see runtime/serving.hpp).
struct StageContext {
  graph::BatchRange range{0, 0};
  std::vector<graph::NodeId> extras;  ///< embedded without mutating state
  std::size_t num_real = 0;   ///< nodes with real events (commit state)
  double t_batch_end = 0.0;   ///< extras are embedded at this timestamp
  BatchResult res;            ///< filled across the stages
  PartTimes parts;            ///< per-stage timing (Table I breakdown)
  BatchWorkspace ws;          ///< all per-batch intermediates
  /// Out-of-core pin windows (empty on all-resident state): the batch's
  /// endpoint rows (memory + mailbox, pinned by stage_begin) and its
  /// sampled neighbors (memory only, pinned by NeighborGather). Both are
  /// released at the end of Decode — the raw row pointers the stages
  /// carry (mem_ptr, build_raw_mail spans) stay valid exactly that long.
  std::vector<graph::NodeId> pinned_nodes;
  std::vector<graph::NodeId> pinned_nbrs;
};

class InferenceEngine {
 public:
  using BatchResult = tgnn::core::BatchResult;

  /// `memory_budget` bytes caps the resident vertex state of the engine's
  /// own RuntimeState (0 = all-resident); see RuntimeState.
  InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                  bool use_fifo_sampler = true, std::size_t memory_budget = 0);

  /// Operate over an externally owned RuntimeState instead of a private
  /// one. Several engines may share `state` — each keeps its own
  /// StageContext workspace, so N engines over one state are N execution
  /// lanes over one logical vertex store (the sharded runtime backend). The
  /// caller is responsible for never running two lanes on conflicting
  /// vertex sets; see set_shard_locks() for the one guarded exception.
  InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                  RuntimeState& state);

  /// Process one batch of the edge stream (Alg. 1 loop body): stage_begin +
  /// the four stages in order on the engine's own context. extra_nodes are
  /// embedded too (using, but not mutating, their state).
  BatchResult process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extra_nodes = {},
                            PartTimes* times = nullptr);

  // ---- staged execution -----------------------------------------------
  // The same batch loop, exposed stage by stage over caller-owned contexts
  // so a scheduler can overlap stages of adjacent batches. Contract:
  //   * stage_begin binds a batch to a context; stage_run must then be
  //     called once per Stage in enum order; stage_finish releases the
  //     result and the context may be reused.
  //   * stage_run calls on DISTINCT contexts are safe from different
  //     threads provided the in-flight batches' vertex footprints are
  //     disjoint (writes always; reads too unless shard locks are armed) —
  //     the engine touches no per-batch state outside the context.
  //   * interleaving with process_batch on the same engine is allowed
  //     between batches, not within one.

  /// Bind [r, extras] to `ctx`: collect the unique involved vertices and
  /// per-vertex event times. Reads only the immutable edge stream.
  void stage_begin(StageContext& ctx, const graph::BatchRange& r,
                   std::span<const graph::NodeId> extra_nodes = {});
  /// Execute one pipeline stage of the batch bound to `ctx`.
  void stage_run(Stage s, StageContext& ctx);
  /// Release the batch's functional result; `ctx` is reusable afterwards.
  BatchResult stage_finish(StageContext& ctx) { return std::move(ctx.res); }
  /// Abandon a batch mid-pipeline (a faulted stage): release its pin
  /// window and clear the context so it can be rebound. Safe before
  /// Decode has run — stages 0..2 write only the context, so an aborted
  /// batch leaves per-vertex state exactly as it was (no partial commit,
  /// no chronology break).
  void stage_abort(StageContext& ctx);

  /// Vertices a batch will READ beyond its own endpoints: the sampled
  /// temporal neighbors of every endpoint, from current state (sorted,
  /// deduplicated). Only meaningful while no concurrent batch writes r's
  /// endpoints (their neighbor rows are then quiescent) — the deterministic
  /// serving modes' exact-footprint query.
  void read_footprint(const graph::BatchRange& r,
                      std::vector<graph::NodeId>& out) const;

  /// Stream a range through memory/mailbox/neighbor updates WITHOUT
  /// computing embeddings — fast-forwards the state (used to warm up to the
  /// test split before evaluation).
  void warmup(const graph::BatchRange& range, std::size_t batch_size = 500);

  /// Temporal link-prediction AP over a range: for each edge, score the
  /// observed pair and one random negative destination.
  double evaluate_ap(const graph::BatchRange& range, const Decoder& dec,
                     std::size_t batch_size, tgnn::Rng& rng);

  void reset() { state_->reset(); }

  /// Parallelize the GNN stage across OpenMP threads (the multi-threaded
  /// CPU baseline of Table I; the thread count is whatever
  /// omp_set_num_threads was given). In batched mode this parallelizes the
  /// gather loops over vertices AND lets the batched GEMMs split their row
  /// panels across the team — threading over the batch matrix, not over
  /// events, so per-element accumulation order (and hence every bit of the
  /// output) is thread-count invariant.
  void set_parallel_gnn(bool on) { parallel_gnn_ = on; }

  /// Select the GNN-stage execution pipeline. Batched (default) gathers
  /// the whole micro-batch into contiguous matrices and runs each model
  /// stage as one batched kernel call; per-row is the legacy
  /// node-at-a-time path (its gather+compute both run inside GnnCompute).
  /// Both produce bit-identical embeddings (pinned by
  /// tests/tgnn/batched_inference_test.cpp) — the switch exists for those
  /// equivalence tests and for A/B latency measurements.
  void set_batched_gnn(bool on) { batched_gnn_ = on; }
  [[nodiscard]] bool batched_gnn() const { return batched_gnn_; }

  /// Numeric mode of the hot path (GRU, attention projections, decoder
  /// scoring). Switching away from fp32 snapshots the model's weights at
  /// reduced precision (TgnModel::prepare_precision) and forces the batched
  /// GNN pipeline — dynamic activation quantization amortizes only over
  /// batched GEMM panels, so the per-row path stays fp32-only. Persistent
  /// vertex state and every stage boundary remain fp32 regardless; see
  /// DESIGN.md "The quantized inference path". Engines pick up
  /// ModelConfig::inference_precision at construction; this overrides it.
  void set_precision(kernels::Precision p);
  [[nodiscard]] kernels::Precision precision() const { return precision_; }

  /// Arm concurrent-lane mode: while set, reads of vertex memory OUTSIDE
  /// the current batch take the vertex's shard lock (shared) and copy the
  /// row, and memory write-backs take it exclusively. This is the only
  /// vertex state two lanes processing write-disjoint batches can touch
  /// concurrently — everything else (mailbox, neighbor rows, memory of the
  /// batch's own vertices) is accessed only for the batch's endpoints,
  /// which the conflict-aware scheduler keeps disjoint across lanes.
  /// Pass nullptr to disarm (the serial default; zero overhead).
  void set_shard_locks(const graph::ShardLockTable* locks) {
    shard_locks_ = locks;
  }

  [[nodiscard]] RuntimeState& state() { return *state_; }
  [[nodiscard]] const RuntimeState& state() const { return *state_; }
  [[nodiscard]] const TgnModel& model() const { return model_; }
  [[nodiscard]] const data::Dataset& dataset() const { return ds_; }

  /// All destination node ids appearing in the dataset (negative pool).
  [[nodiscard]] const std::vector<graph::NodeId>& dst_pool() const {
    return dst_pool_;
  }

  /// Pre-size the serial context's workspace for batches of up to
  /// `max_batch_edges` edges (runtime backends call this once at warmup).
  void reserve_workspace(std::size_t max_batch_edges);
  /// Same sizing rule, applied to a caller-owned pipeline context.
  void reserve_context(StageContext& ctx, std::size_t max_batch_edges) const;

 private:
  void stage_memory_update(StageContext& ctx);
  void stage_neighbor_gather(StageContext& ctx);
  void stage_gnn_compute(StageContext& ctx);
  void stage_decode(StageContext& ctx);

  /// Memory row of v as this batch sees it: the (possibly GRU-updated)
  /// local row when v is in the batch, else the shared table — through v's
  /// shard lock into `scratch` in concurrent-lane mode.
  std::span<const float> memory_of(graph::NodeId v, const StageContext& ctx,
                                   std::vector<float>& scratch) const;
  /// f'_v written into `out` (memory_of + optional node-feature projection).
  void f_prime_of(graph::NodeId v, const StageContext& ctx,
                  std::vector<float>& scratch, std::span<float> out) const;
  /// One attention K/V input row [f'_j || e_ij || Phi(dt)] for neighbor
  /// `hit`, written into `row` (kv_in_dim wide). The ONE definition of the
  /// kv row layout — both GNN pipelines build every row through it, which
  /// is what keeps their gathers byte-identical.
  void gather_kv_row(const graph::NeighborHit& hit, double dt,
                     const StageContext& ctx, std::vector<float>& scratch,
                     std::span<float> row) const;

  /// The batched GNN pipeline, split at the stage boundary: gather stages
  /// every per-event input into GnnBatch (NeighborGather), compute runs
  /// the batched kernels and scatters embeddings (GnnCompute).
  void gnn_gather_batched(StageContext& ctx);
  void gnn_compute_batched(StageContext& ctx);
  /// The legacy per-row GNN path (gather + compute fused, inside
  /// GnnCompute); bit-identical to the batched path — see DESIGN.md.
  void gnn_stage_per_row(StageContext& ctx);

  /// Batched pipeline selection as actually executed: a reduced-precision
  /// engine always runs batched (quantization has nothing to amortize
  /// against on the per-row path).
  [[nodiscard]] bool use_batched_gnn() const {
    return batched_gnn_ || precision_ != kernels::Precision::kFp32;
  }

  const TgnModel& model_;
  const data::Dataset& ds_;
  std::unique_ptr<RuntimeState> owned_state_;  ///< null when state is shared
  RuntimeState* state_;
  std::vector<graph::NodeId> dst_pool_;
  bool parallel_gnn_ = false;
  bool batched_gnn_ = true;
  kernels::Precision precision_ = kernels::Precision::kFp32;
  const graph::ShardLockTable* shard_locks_ = nullptr;
  StageContext ctx_;  ///< the serial path's own context (process_batch)
};

/// Inter-event time gaps observed while streaming `range` — the dt samples
/// the LUT time encoder is fitted on (both mail ages and neighbor ages are
/// gaps of this same process).
std::vector<double> collect_dt_samples(const data::Dataset& ds,
                                       const graph::BatchRange& range);

}  // namespace tgnn::core
