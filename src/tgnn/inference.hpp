// Batched TGNN inference per Algorithm 1.
//
// RuntimeState bundles the persistent vertex tables (memory, mailbox,
// neighbor structure); InferenceEngine streams edge batches through the
// model:
//
//   sample : gather each involved vertex's temporal neighbors
//   memory : consume cached mail -> GRU -> updated node memory (Eq. 1)
//   GNN    : attention over neighbors -> dynamic embeddings (Eq. 2)
//   update : write back memory, cache fresh messages, extend neighbor table
//
// The four stages are individually timed (PartTimes) to reproduce the
// Table I breakdown. Negative-sample vertices can be embedded alongside a
// batch (for AP evaluation) without mutating their state.
//
// Within a batch, temporal dependencies between its edges are ignored while
// state writes stay chronological — the standard TGN setup the paper adopts
// (§II-A) and the property the hardware Updater enforces on the FPGA side.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "graph/neighbor_table.hpp"
#include "graph/vertex_state.hpp"
#include "kernels/fused.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/metrics.hpp"
#include "tgnn/model.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::graph {
class ShardLockTable;
}

namespace tgnn::core {

/// Persistent per-vertex state. `use_fifo` selects the hardware-style
/// bounded FIFO neighbor table (§IV-A) over the unbounded software sampler.
struct RuntimeState {
  RuntimeState(graph::NodeId num_nodes, const ModelConfig& cfg, bool use_fifo);

  graph::VertexMemory memory;
  graph::VertexMailbox mailbox;
  std::unique_ptr<graph::NeighborFinder> finder;  ///< null if use_fifo
  std::unique_ptr<graph::NeighborTable> table;    ///< null if !use_fifo
  std::vector<std::uint8_t> mail_valid;  ///< consume-once flag per vertex

  /// Temporal neighbors of v strictly before t, at most k, oldest -> newest,
  /// filled into `out` (reusing its capacity — the hot path never
  /// allocates in steady state; there is deliberately no allocating
  /// overload).
  void neighbors_into(graph::NodeId v, double t, std::size_t k,
                      std::vector<graph::NeighborHit>& out) const;
  void insert_edge(const graph::TemporalEdge& e);
  void reset();
};

/// Reusable scratch for one engine's process_batch hot path. All per-batch
/// intermediates live here, sized on first use (or up-front via reserve())
/// and recycled, so steady-state batches do no heap allocation beyond the
/// returned BatchResult itself. One workspace per engine — i.e. per runtime
/// backend — which is what makes backends safely independent.
struct BatchWorkspace {
  std::vector<double> t_event;                        ///< per unique vertex
  std::vector<std::vector<graph::NeighborHit>> nbrs;  ///< per unique vertex
  std::vector<std::size_t> mail_rows;
  std::vector<const float*> mem_ptr;
  Tensor x;               ///< GRU gather [mail_rows, gru_in_dim]
  Tensor h;               ///< GRU state gather [mail_rows, mem_dim]
  Tensor s_new;           ///< fused-GRU output [mail_rows, mem_dim]
  kernels::GruScratch gru;  ///< fused-GRU gate buffers
  std::vector<float> raw;  ///< one raw-mail scratch row

  /// Per-thread GNN-stage scratch (index = OpenMP thread id). The batched
  /// pipeline uses it only for the gather loops (mem_row locked reads,
  /// per-node score scratch); the per-row pipeline for everything.
  struct GnnScratch {
    Tensor fp;             ///< [1, mem_dim] f'_i of the center vertex
    AttnNodeInput attn_in; ///< vanilla path: q/kv gather, resized in place
    Tensor v_in;           ///< simplified path: V gather for kept slots
    std::vector<double> dts;
    std::vector<float> mem_row;  ///< locked-read copy of a neighbor's memory
    // Fused-kernel scratch: projections, logits, and FTM input of the
    // attention variants (tgnn layer writes embeddings straight into the
    // batch result through these).
    VanillaAttention::InferScratch attn;
    SimplifiedAttention::InferScratch sat;
    SimplifiedAttention::ScoreScratch score;
    SimplifiedAttention::Scores scores;
  };
  std::vector<GnnScratch> gnn;

  /// Batch-level staging for the batched GNN stage: every per-event input
  /// is gathered once into these contiguous row-major matrices (neighbor
  /// rows packed CSR-style behind `seg`), each model stage then runs as a
  /// single batched GEMM, and the final FTM GEMM scatters embeddings
  /// straight into the batch result.
  struct GnnBatch {
    std::vector<std::size_t> seg;  ///< [n_nodes + 1] CSR offsets into kv_in
    Tensor fp;                     ///< [n_nodes, mem_dim] f'_i rows
    Tensor q_in;                   ///< vanilla: [n_nodes, q_in_dim]
    Tensor kv_in;                  ///< [total, kv_in_dim] packed neighbor rows
    std::vector<float> logits;     ///< simplified: packed kept-slot logits
    std::vector<SimplifiedAttention::Scores> scores;  ///< per node
    VanillaAttention::BatchScratch attn;
    SimplifiedAttention::BatchScratch sat;
  };
  GnnBatch gb;

  /// Pre-size every buffer for batches of up to `max_nodes` unique vertices
  /// so the first measured batch already runs allocation-free. Growth
  /// policy: buffers sized here are high-water marks — a ragged batch that
  /// overflows them grows the underlying vector (geometrically, via
  /// std::vector) and the capacity is kept for every later batch; nothing
  /// ever shrinks until the engine is destroyed.
  void reserve(std::size_t max_nodes, const ModelConfig& cfg);
};

struct PartTimes {
  double sample = 0.0, memory = 0.0, gnn = 0.0, update = 0.0;  // seconds
  [[nodiscard]] double total() const { return sample + memory + gnn + update; }
  PartTimes& operator+=(const PartTimes& o) {
    sample += o.sample;
    memory += o.memory;
    gnn += o.gnn;
    update += o.update;
    return *this;
  }
};

class InferenceEngine {
 public:
  InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                  bool use_fifo_sampler = true);

  /// Operate over an externally owned RuntimeState instead of a private
  /// one. Several engines may share `state` — each keeps its own
  /// BatchWorkspace, so N engines over one state are N execution lanes over
  /// one logical vertex store (the sharded runtime backend). The caller is
  /// responsible for never running two lanes on conflicting vertex sets;
  /// see set_shard_locks() for the one guarded exception.
  InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                  RuntimeState& state);

  struct BatchResult {
    std::vector<graph::NodeId> nodes;  ///< unique involved vertices
    Tensor embeddings;                 ///< [nodes.size(), emb_dim]
    std::unordered_map<graph::NodeId, std::size_t> index;
    [[nodiscard]] std::span<const float> embedding_of(graph::NodeId v) const {
      return embeddings.row(index.at(v));
    }
  };

  /// Process one batch of the edge stream (Alg. 1 loop body). extra_nodes
  /// are embedded too (using, but not mutating, their state).
  BatchResult process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extra_nodes = {},
                            PartTimes* times = nullptr);

  /// Stream a range through memory/mailbox/neighbor updates WITHOUT
  /// computing embeddings — fast-forwards the state (used to warm up to the
  /// test split before evaluation).
  void warmup(const graph::BatchRange& range, std::size_t batch_size = 500);

  /// Temporal link-prediction AP over a range: for each edge, score the
  /// observed pair and one random negative destination.
  double evaluate_ap(const graph::BatchRange& range, const Decoder& dec,
                     std::size_t batch_size, tgnn::Rng& rng);

  void reset() { state_->reset(); }

  /// Parallelize the GNN stage across OpenMP threads (the multi-threaded
  /// CPU baseline of Table I; the thread count is whatever
  /// omp_set_num_threads was given). In batched mode this parallelizes the
  /// gather loops over vertices AND lets the batched GEMMs split their row
  /// panels across the team — threading over the batch matrix, not over
  /// events, so per-element accumulation order (and hence every bit of the
  /// output) is thread-count invariant.
  void set_parallel_gnn(bool on) { parallel_gnn_ = on; }

  /// Select the GNN-stage execution pipeline. Batched (default) gathers
  /// the whole micro-batch into contiguous matrices and runs each model
  /// stage as one batched kernel call; per-row is the legacy
  /// node-at-a-time path. Both produce bit-identical embeddings (pinned by
  /// tests/tgnn/batched_inference_test.cpp) — the switch exists for those
  /// equivalence tests and for A/B latency measurements.
  void set_batched_gnn(bool on) { batched_gnn_ = on; }
  [[nodiscard]] bool batched_gnn() const { return batched_gnn_; }

  /// Arm concurrent-lane mode: while set, reads of vertex memory OUTSIDE
  /// the current batch take the vertex's shard lock (shared) and copy the
  /// row, and memory write-backs take it exclusively. This is the only
  /// vertex state two lanes processing write-disjoint batches can touch
  /// concurrently — everything else (mailbox, neighbor rows, memory of the
  /// batch's own vertices) is accessed only for the batch's endpoints,
  /// which the conflict-aware scheduler keeps disjoint across lanes.
  /// Pass nullptr to disarm (the serial default; zero overhead).
  void set_shard_locks(const graph::ShardLockTable* locks) {
    shard_locks_ = locks;
  }

  [[nodiscard]] RuntimeState& state() { return *state_; }
  [[nodiscard]] const TgnModel& model() const { return model_; }
  [[nodiscard]] const data::Dataset& dataset() const { return ds_; }

  /// All destination node ids appearing in the dataset (negative pool).
  [[nodiscard]] const std::vector<graph::NodeId>& dst_pool() const {
    return dst_pool_;
  }

  /// Pre-size the batch workspace for batches of up to `max_batch_edges`
  /// edges (runtime backends call this once at warmup).
  void reserve_workspace(std::size_t max_batch_edges);

 private:
  /// Memory row of v as this batch sees it: the (possibly GRU-updated)
  /// local row when v is in the batch, else the shared table — through v's
  /// shard lock into `scratch` in concurrent-lane mode.
  std::span<const float> memory_of(graph::NodeId v, const BatchResult& res,
                                   std::vector<float>& scratch) const;
  /// f'_v written into `out` (memory_of + optional node-feature projection).
  void f_prime_of(graph::NodeId v, const BatchResult& res,
                  std::vector<float>& scratch, std::span<float> out) const;
  /// One attention K/V input row [f'_j || e_ij || Phi(dt)] for neighbor
  /// `hit`, written into `row` (kv_in_dim wide). The ONE definition of the
  /// kv row layout — both GNN pipelines build every row through it, which
  /// is what keeps their gathers byte-identical.
  void gather_kv_row(const graph::NeighborHit& hit, double dt,
                     const BatchResult& res, std::vector<float>& scratch,
                     std::span<float> row) const;

  /// The two GNN-stage pipelines (embeddings for every node in `res`);
  /// bit-identical to each other by construction — see DESIGN.md.
  void gnn_stage_batched(const BatchResult& res,
                         std::span<const double> t_event, Tensor& embeddings);
  void gnn_stage_per_row(const BatchResult& res,
                         std::span<const double> t_event, Tensor& embeddings);

  const TgnModel& model_;
  const data::Dataset& ds_;
  std::unique_ptr<RuntimeState> owned_state_;  ///< null when state is shared
  RuntimeState* state_;
  std::vector<graph::NodeId> dst_pool_;
  bool parallel_gnn_ = false;
  bool batched_gnn_ = true;
  const graph::ShardLockTable* shard_locks_ = nullptr;
  BatchWorkspace ws_;
};

/// Inter-event time gaps observed while streaming `range` — the dt samples
/// the LUT time encoder is fitted on (both mail ages and neighbor ages are
/// gaps of this same process).
std::vector<double> collect_dt_samples(const data::Dataset& ds,
                                       const graph::BatchRange& range);

}  // namespace tgnn::core
