// Evaluation metrics for temporal link prediction.
#pragma once

#include <vector>

namespace tgnn::core {

struct ScoredSample {
  double score = 0.0;
  bool positive = false;
};

/// Average Precision: mean of precision@k over the ranks k of positive
/// samples when sorted by descending score (ties broken stably).
/// This is the AP the paper reports in Table II / Fig. 7.
double average_precision(std::vector<ScoredSample> samples);

/// Area under the ROC curve (reported by TGN-family papers alongside AP;
/// used here as a secondary sanity metric in tests).
double auc_roc(const std::vector<ScoredSample>& samples);

}  // namespace tgnn::core
