#include "tgnn/simplified_attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "kernels/fused.hpp"
#include "kernels/gemm.hpp"
#include "kernels/segment.hpp"
#include "util/rng.hpp"

namespace tgnn::core {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Raw dt spans microseconds to days; W_t consumes log1p(dt) so the logits
// stay in a trainable range at every time scale. Monotone, so "older
// neighbor -> larger input" is preserved.
float dt_feature(double dt) { return std::log1p(static_cast<float>(std::max(0.0, dt))); }

}  // namespace

SimplifiedAttention::SimplifiedAttention(const ModelConfig& cfg, tgnn::Rng& rng)
    : a("sat.a", Tensor(cfg.num_neighbors)),
      wt("sat.wt",
         Tensor::randn(cfg.num_neighbors, cfg.num_neighbors, rng, 0.05f)),
      wv("sat.wv", cfg.kv_in_dim(), cfg.emb_dim, rng),
      wo("sat.wo", cfg.emb_dim + cfg.mem_dim, cfg.emb_dim, rng) {
  // Slight recency prior: newest slot (highest index) starts favored,
  // mirroring the intuition of Eq. 16 that chronology drives attention.
  const std::size_t mr = cfg.num_neighbors;
  for (std::size_t i = 0; i < mr; ++i)
    a.value[i] = 0.1f * static_cast<float>(i) / static_cast<float>(mr);
}

SimplifiedAttention::Scores SimplifiedAttention::score(
    const std::vector<double>& dts, std::size_t budget) const {
  Scores s;
  ScoreScratch ws;
  score_into(dts, budget, ws, s);
  return s;
}

void SimplifiedAttention::score_into(const std::vector<double>& dts,
                                     std::size_t budget, ScoreScratch& ws,
                                     Scores& s) const {
  const std::size_t mr = slots();
  if (dts.size() > mr)
    throw std::invalid_argument("SimplifiedAttention::score: too many dts");
  const std::size_t valid = dts.size();

  s.dts.assign(mr, 0.0);
  std::copy(dts.begin(), dts.end(), s.dts.begin());

  // logits = a + W_t * feat(dt); masked (empty) slots get -inf.
  s.logits.assign(mr, kNegInf);
  ws.feat.assign(mr, 0.0f);
  for (std::size_t j = 0; j < valid; ++j) ws.feat[j] = dt_feature(s.dts[j]);
  for (std::size_t i = 0; i < valid; ++i) {
    float acc = a.value[i];
    for (std::size_t j = 0; j < mr; ++j) acc += wt.value(i, j) * ws.feat[j];
    s.logits[i] = acc;
  }

  // Top-`budget` valid slots by logit (§III-B). Kept indices ascending so
  // downstream consumers keep the chronological slot order.
  const std::size_t k = std::min(budget == 0 ? valid : budget, valid);
  ws.order.resize(valid);
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::partial_sort(ws.order.begin(), ws.order.begin() + k, ws.order.end(),
                    [&](std::size_t x, std::size_t y) {
                      return s.logits[x] > s.logits[y];
                    });
  s.keep.assign(ws.order.begin(), ws.order.begin() + k);
  std::sort(s.keep.begin(), s.keep.end());
}

Tensor SimplifiedAttention::aggregate(std::span<const float> f_self,
                                      const Scores& scores, const Tensor& v_in,
                                      Cache* cache) const {
  const std::size_t kept = scores.keep.size();
  if (v_in.rows() != kept)
    throw std::invalid_argument("SimplifiedAttention::aggregate: rows != kept");
  const std::size_t emb = wv.out_dim();

  Tensor v, attn(1, emb);
  std::vector<float> alpha(kept, 0.0f);
  if (kept > 0) {
    v = wv.forward(v_in);
    // Softmax over the kept slots' logits only (paper: "apply softmax
    // function only on the temporal neighbors with top logit values").
    // softmax_span also guards the all-masked / non-finite row case.
    for (std::size_t idx = 0; idx < kept; ++idx)
      alpha[idx] = scores.logits[scores.keep[idx]];
    ops::softmax_span(alpha);
    for (std::size_t idx = 0; idx < kept; ++idx)
      for (std::size_t d = 0; d < emb; ++d) attn(0, d) += alpha[idx] * v(idx, d);
  }

  Tensor fo_in(1, emb + f_self.size());
  for (std::size_t d = 0; d < emb; ++d) fo_in(0, d) = attn(0, d);
  for (std::size_t d = 0; d < f_self.size(); ++d) fo_in(0, emb + d) = f_self[d];
  Tensor h = wo.forward(fo_in);

  if (cache) {
    cache->scores = scores;
    cache->alpha = std::move(alpha);
    cache->v_in = v_in;
    cache->v = std::move(v);
    cache->attn = std::move(attn);
    cache->fo_in = std::move(fo_in);
  }
  return h;
}

void SimplifiedAttention::aggregate_into(std::span<const float> f_self,
                                         const Scores& scores,
                                         const Tensor& v_in, InferScratch& ws,
                                         std::span<float> out) const {
  const std::size_t kept = scores.keep.size();
  if (v_in.rows() != kept)
    throw std::invalid_argument("SimplifiedAttention::aggregate: rows != kept");
  const std::size_t emb = wv.out_dim();

  ws.fo_in.resize(1, emb + f_self.size());
  float* fo = ws.fo_in.data();
  if (kept > 0) {
    wv.forward_into(v_in, ws.v);
    ws.alpha.resize(1, kept);
    for (std::size_t idx = 0; idx < kept; ++idx)
      ws.alpha[idx] = scores.logits[scores.keep[idx]];
    ops::softmax_span(ws.alpha.row(0));
    kernels::weighted_rowsum(ws.alpha.data(), ws.v.data(), fo, kept, emb);
  } else {
    std::fill(fo, fo + emb, 0.0f);
  }
  std::copy(f_self.begin(), f_self.end(), fo + emb);
  kernels::affine_row_into(ws.fo_in.row(0), wo.w.value, wo.b.value, out);
}

void SimplifiedAttention::aggregate_batch_into(
    const Tensor& f_self, std::span<float> logits, const Tensor& v_in,
    std::span<const std::size_t> seg, BatchScratch& ws, Tensor& out,
    kernels::Precision p) const {
  const std::size_t n_nodes = f_self.rows();
  const std::size_t total = v_in.rows();
  const std::size_t emb = wv.out_dim();
  const std::size_t mem = f_self.cols();
  if (seg.size() != n_nodes + 1 || logits.size() != total ||
      (n_nodes > 0 && seg[n_nodes] != total))
    throw std::invalid_argument("aggregate_batch_into: segment mismatch");

  if (total > 0) {
    switch (p) {
      case kernels::Precision::kInt8:
        kernels::quantize_rows_into(v_in, ws.qv);
        wv.forward_q_into(ws.qv, ws.v);
        break;
      case kernels::Precision::kBf16:
        wv.forward_bf16_into(v_in, ws.v);
        break;
      case kernels::Precision::kFp32:
        wv.forward_into(v_in, ws.v);
        break;
    }
  }

  // Kept-slot softmax per segment (softmax_span semantics, including the
  // uniform fallback on all-masked rows), then the alpha-weighted V sum
  // straight into the FTM staging matrix (empty segments zero-fill — the
  // zero-degree-vertex case).
  kernels::segment_softmax(logits.data(), seg);
  ws.fo_in.resize(n_nodes, emb + mem);
  kernels::segment_weighted_rowsum(logits.data(), ws.v.data(), seg, emb,
                                   ws.fo_in.data(), emb + mem);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto fs = f_self.row(i);
    std::copy(fs.begin(), fs.end(), ws.fo_in.row(i).begin() + emb);
  }

  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_rows_into(ws.fo_in, ws.qfo);
      wo.forward_q_into(ws.qfo, out);
      break;
    case kernels::Precision::kBf16:
      wo.forward_bf16_into(ws.fo_in, out);
      break;
    case kernels::Precision::kFp32:
      kernels::affine_into(ws.fo_in, wo.w.value, wo.b.value, out);
      break;
  }
}

void SimplifiedAttention::prepare(kernels::Precision p) const {
  wv.prepare(p);
  wo.prepare(p);
}

SimplifiedAttention::InputGrads SimplifiedAttention::backward(const Cache& c,
                                                              const Tensor& dh) {
  const std::size_t kept = c.scores.keep.size();
  const std::size_t emb = wv.out_dim();
  const std::size_t mem = c.fo_in.cols() - emb;

  Tensor dfo_in = wo.backward(c.fo_in, dh);
  Tensor dattn(1, emb);
  InputGrads g;
  g.df_self = Tensor(1, mem);
  for (std::size_t d = 0; d < emb; ++d) dattn(0, d) = dfo_in(0, d);
  for (std::size_t d = 0; d < mem; ++d) g.df_self(0, d) = dfo_in(0, emb + d);

  if (kept == 0) {
    g.dv_in = Tensor(0, wv.in_dim());
    return g;
  }

  // attn = sum alpha_idx v_idx
  std::vector<float> dalpha(kept, 0.0f);
  Tensor dv(kept, emb);
  for (std::size_t idx = 0; idx < kept; ++idx) {
    float acc = 0.0f;
    for (std::size_t d = 0; d < emb; ++d) {
      acc += dattn(0, d) * c.v(idx, d);
      dv(idx, d) = c.alpha[idx] * dattn(0, d);
    }
    dalpha[idx] = acc;
  }
  // Softmax backward over kept slots.
  float dot = 0.0f;
  for (std::size_t idx = 0; idx < kept; ++idx) dot += c.alpha[idx] * dalpha[idx];
  std::vector<float> dlogits_kept(kept);
  for (std::size_t idx = 0; idx < kept; ++idx)
    dlogits_kept[idx] = c.alpha[idx] * (dalpha[idx] - dot);

  // Scatter into full-slot dlogits and push into a / W_t.
  std::vector<float> dlogits(slots(), 0.0f);
  for (std::size_t idx = 0; idx < kept; ++idx)
    dlogits[c.scores.keep[idx]] = dlogits_kept[idx];
  backward_logits(c.scores, dlogits);

  g.dv_in = wv.backward(c.v_in, dv);
  return g;
}

void SimplifiedAttention::backward_logits(const Scores& scores,
                                          std::span<const float> dlogits) {
  const std::size_t mr = slots();
  if (dlogits.size() != mr)
    throw std::invalid_argument("backward_logits: size mismatch");
  std::vector<float> feat(mr, 0.0f);
  for (std::size_t j = 0; j < mr; ++j) feat[j] = dt_feature(scores.dts[j]);
  for (std::size_t i = 0; i < mr; ++i) {
    const float dl = dlogits[i];
    if (dl == 0.0f || scores.logits[i] == kNegInf) continue;
    a.grad[i] += dl;
    for (std::size_t j = 0; j < mr; ++j) wt.grad(i, j) += dl * feat[j];
  }
}

std::vector<nn::Parameter*> SimplifiedAttention::parameters() {
  std::vector<nn::Parameter*> out = {&a, &wt};
  for (auto* l : {&wv, &wo})
    for (auto* p : l->parameters()) out.push_back(p);
  return out;
}

}  // namespace tgnn::core
