#include "tgnn/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace tgnn::core {

double average_precision(std::vector<ScoredSample> samples) {
  if (samples.empty()) throw std::invalid_argument("average_precision: empty");
  std::stable_sort(samples.begin(), samples.end(),
                   [](const ScoredSample& a, const ScoredSample& b) {
                     return a.score > b.score;
                   });
  std::size_t tp = 0;
  double ap = 0.0;
  for (std::size_t k = 0; k < samples.size(); ++k) {
    if (samples[k].positive) {
      ++tp;
      ap += static_cast<double>(tp) / static_cast<double>(k + 1);
    }
  }
  if (tp == 0) return 0.0;
  return ap / static_cast<double>(tp);
}

double auc_roc(const std::vector<ScoredSample>& samples) {
  // Rank-sum formulation with midrank tie handling.
  std::vector<std::size_t> idx(samples.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return samples[a].score < samples[b].score;
  });
  std::size_t pos = 0, neg = 0;
  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() &&
           samples[idx[j + 1]].score == samples[idx[i]].score)
      ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (samples[idx[k]].positive) {
        rank_sum += midrank;
        ++pos;
      } else {
        ++neg;
      }
    }
    i = j + 1;
  }
  if (pos == 0 || neg == 0) return 0.5;
  return (rank_sum - 0.5 * static_cast<double>(pos) *
                         static_cast<double>(pos + 1)) /
         (static_cast<double>(pos) * static_cast<double>(neg));
}

}  // namespace tgnn::core
