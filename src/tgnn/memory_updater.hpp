// GRU memory updater (Eq. 7-10) — thin wrapper around nn::GruCell that adds
// the TGNN-specific input layout [raw_mail || Phi(dt)] and exposes the MAC
// split the complexity meter and the FPGA MUU need.
#pragma once

#include "nn/gru_cell.hpp"
#include "tgnn/config.hpp"

namespace tgnn::core {

class MemoryUpdater {
 public:
  MemoryUpdater() = default;
  MemoryUpdater(const ModelConfig& cfg, tgnn::Rng& rng)
      : gru("memory_updater", cfg.gru_in_dim(), cfg.mem_dim, rng) {}

  /// x: [m, gru_in_dim] rows of [raw_mail || Phi(dt)], h: [m, mem_dim].
  Tensor forward(const Tensor& x, const Tensor& h,
                 nn::GruCell::Cache* cache = nullptr) const {
    return gru.forward(x, h, cache);
  }

  /// Fused inference forward into a caller-owned buffer (no cache). This
  /// is the memory stage's batch entry point: one call carries ALL of a
  /// micro-batch's mail rows ([m, gru_in_dim] / [m, mem_dim]), and the
  /// underlying GEMMs are bit-invariant to m, so any row partition of a
  /// batch produces identical memory updates. Non-fp32 precisions require
  /// prepare(p); the produced state is always fp32.
  void forward_into(const Tensor& x, const Tensor& h, kernels::GruScratch& ws,
                    Tensor& out,
                    kernels::Precision p = kernels::Precision::kFp32) const {
    gru.forward_into(x, h, ws, out, p);
  }

  /// Snapshot the GRU weights for a reduced-precision path.
  void prepare(kernels::Precision p) const { gru.prepare(p); }

  nn::GruCell::InputGrads backward(const nn::GruCell::Cache& cache,
                                   const Tensor& ds_new) {
    return gru.backward(cache, ds_new);
  }

  [[nodiscard]] std::vector<nn::Parameter*> parameters() {
    return gru.parameters();
  }

  nn::GruCell gru;
};

}  // namespace tgnn::core
