// Model checkpointing: save / load every parameter of a TgnModel (+ its
// decoder, + the LUT encoder's bin edges) to a single binary file, so a
// trained co-designed model can be exported once and deployed on the
// accelerator without retraining.
//
// Format (little-endian):
//   magic "TGNN" | u32 version | u64 param-count
//   per parameter: u32 name-len | name bytes | u64 rows | u64 cols | f32 data
//   u64 lut-edge-count | f64 edges (0 when the model has no LUT encoder)
//
// Loading validates that parameter names and shapes match the target model
// exactly — a checkpoint can only be restored into an identically-configured
// model.
#pragma once

#include <cstdint>
#include <string>

#include "tgnn/decoder.hpp"
#include "tgnn/inference.hpp"
#include "tgnn/model.hpp"

namespace tgnn::core {

/// Save model (+ optional decoder) parameters. Returns false on I/O error.
bool save_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder = nullptr);

/// Restore parameters saved by save_checkpoint into an identically
/// configured model. Throws std::runtime_error on format/shape mismatch;
/// returns false if the file cannot be opened.
bool load_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder = nullptr);

// ---- runtime-state checkpoint ----------------------------------------------
//
// Snapshot of the serving engine's mutable per-vertex state plus the
// stream cursor — the fault-tolerance counterpart of the model checkpoint
// above. Format (little-endian, magic "TGNS", version 1):
//
//   magic | u32 version
//   u64 num_nodes | u64 mem_dim | u64 raw_mail_dim
//   u8 use_fifo | u64 fifo_capacity (0 for the unbounded sampler)
//   u64 stream_cursor            (next edge index to submit)
//   u64 mem rows    | per row: u64 node | f64 ts | f32[mem_dim]
//   u64 mail rows   | per row: u64 node | f64 ts | f32[raw_mail_dim]
//   u8 mail_valid[num_nodes]
//   u64 nbr rows    | per row: u64 node | u64 count
//                              | count x (u64 node, u64 eid, f64 ts)
//
// Rows are sparse (only touched vertices appear), so a checkpoint costs
// what the stream has actually written, not the full table footprint. On
// an out-of-core state the save path reads through the store, faulting
// spilled pages in as needed — spilled content round-trips bit-exactly.

/// Save `state` + the stream cursor. Returns false on I/O error.
bool save_state(const std::string& path, const RuntimeState& state,
                std::uint64_t stream_cursor);

/// Restore into an identically-configured RuntimeState (same node count,
/// dims, and sampler kind): resets it, then replays the saved rows, so the
/// restored engine continues bit-identically to an uninterrupted run.
/// Throws std::runtime_error on format/config mismatch; returns false if
/// the file cannot be opened.
bool load_state(const std::string& path, RuntimeState& state,
                std::uint64_t& stream_cursor);

}  // namespace tgnn::core
