// Model checkpointing: save / load every parameter of a TgnModel (+ its
// decoder, + the LUT encoder's bin edges) to a single binary file, so a
// trained co-designed model can be exported once and deployed on the
// accelerator without retraining.
//
// Format (little-endian):
//   magic "TGNN" | u32 version | u64 param-count
//   per parameter: u32 name-len | name bytes | u64 rows | u64 cols | f32 data
//   u64 lut-edge-count | f64 edges (0 when the model has no LUT encoder)
//
// Loading validates that parameter names and shapes match the target model
// exactly — a checkpoint can only be restored into an identically-configured
// model.
#pragma once

#include <string>

#include "tgnn/decoder.hpp"
#include "tgnn/model.hpp"

namespace tgnn::core {

/// Save model (+ optional decoder) parameters. Returns false on I/O error.
bool save_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder = nullptr);

/// Restore parameters saved by save_checkpoint into an identically
/// configured model. Throws std::runtime_error on format/shape mismatch;
/// returns false if the file cannot be opened.
bool load_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder = nullptr);

}  // namespace tgnn::core
