#include "tgnn/lut_time_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tgnn::core {

LutTimeEncoder::LutTimeEncoder(std::size_t bins, std::size_t dim)
    : entries("lut_time_enc.entries", Tensor(bins, dim)) {
  if (bins < 2) throw std::invalid_argument("LutTimeEncoder: bins must be >= 2");
}

void LutTimeEncoder::fit(std::vector<double> dt_samples,
                         const TimeEncoderBase* init) {
  if (dt_samples.empty())
    throw std::invalid_argument("LutTimeEncoder::fit: no samples");
  std::sort(dt_samples.begin(), dt_samples.end());
  const std::size_t b = bins();
  edges_.clear();
  edges_.reserve(b - 1);
  // Equal-frequency boundaries: quantiles at k/b for k = 1..b-1.
  for (std::size_t k = 1; k < b; ++k) {
    const std::size_t idx =
        std::min(dt_samples.size() - 1, k * dt_samples.size() / b);
    double e = dt_samples[idx];
    if (!edges_.empty() && e <= edges_.back())
      e = std::nextafter(edges_.back(), 1e300);  // keep edges strictly increasing
    edges_.push_back(e);
  }
  if (init) {
    if (init->dim() != dim())
      throw std::invalid_argument("LutTimeEncoder::fit: init dim mismatch");
    // Initialize each entry at the median dt of its bin.
    for (std::size_t k = 0; k < b; ++k) {
      const std::size_t lo = k * dt_samples.size() / b;
      const std::size_t hi =
          std::max(lo + 1, (k + 1) * dt_samples.size() / b);
      const double median = dt_samples[(lo + hi - 1) / 2];
      init->encode_scalar(median, entries.value.row(k));
    }
  }
}

void LutTimeEncoder::restore_edges(std::vector<double> edges) {
  if (edges.size() != bins() - 1)
    throw std::invalid_argument("restore_edges: wrong edge count");
  for (std::size_t i = 1; i < edges.size(); ++i)
    if (edges[i] <= edges[i - 1])
      throw std::invalid_argument("restore_edges: edges not increasing");
  edges_ = std::move(edges);
}

std::size_t LutTimeEncoder::bin_of(double dt) const {
  if (!fitted())
    throw std::logic_error("LutTimeEncoder: fit() not called");
  // First bin whose upper edge exceeds dt.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), dt);
  return static_cast<std::size_t>(it - edges_.begin());
}

Tensor LutTimeEncoder::encode(const std::vector<double>& dts) const {
  Tensor out(dts.size(), dim());
  for (std::size_t i = 0; i < dts.size(); ++i) encode_scalar(dts[i], out.row(i));
  return out;
}

void LutTimeEncoder::encode_scalar(double dt, std::span<float> out) const {
  const auto src = entries.value.row(bin_of(dt));
  std::copy(src.begin(), src.end(), out.begin());
}

void LutTimeEncoder::backward(const std::vector<double>& dts,
                              const Tensor& dout) {
  if (dout.rows() != dts.size() || dout.cols() != dim())
    throw std::invalid_argument("LutTimeEncoder::backward: shape mismatch");
  for (std::size_t i = 0; i < dts.size(); ++i) {
    auto dst = entries.grad.row(bin_of(dts[i]));
    const auto g = dout.row(i);
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] += g[k];
  }
}

std::vector<nn::Parameter*> LutTimeEncoder::parameters() { return {&entries}; }

Tensor LutTimeEncoder::fuse_with(const Tensor& w) const {
  if (w.cols() != dim())
    throw std::invalid_argument("LutTimeEncoder::fuse_with: dim mismatch");
  // [bins, dim] x [out, dim]^T -> [bins, out]
  return ops::matmul_nt(entries.value, w);
}

}  // namespace tgnn::core
