// Model configuration for TGN-attn and its co-designed variants.
//
// The paper's ablation ladder (Table II) is expressed as four switches:
//   Baseline  : vanilla attention + cos time encoder + 10 neighbors
//   +SAT      : simplified attention (Eq. 16)
//   +LUT      : LUT time encoder (§III-C)
//   +NP(L/M/S): neighbor pruning budget 6/4/2 (§III-B)
// `presets()` below returns exactly that ladder.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernels/quant.hpp"

namespace tgnn::core {

enum class AttentionKind {
  kVanilla,     ///< Transformer-style temporal attention (Eq. 11-15)
  kSimplified,  ///< time-difference-only attention (Eq. 16)
};

enum class TimeEncoderKind {
  kCos,  ///< Phi(dt) = cos(omega*dt + phi) (Eq. 6)
  kLut,  ///< 128-entry equal-frequency look-up table (§III-C)
};

struct ModelConfig {
  std::size_t mem_dim = 100;   ///< node memory width |s_v|
  std::size_t time_dim = 100;  ///< time-encoding width |Phi(dt)|
  std::size_t emb_dim = 100;   ///< output embedding width |h_v|
  std::size_t edge_dim = 172;  ///< |f_e| (0 for GDELT-like data)
  std::size_t node_dim = 0;    ///< |f_v| (200 for GDELT-like data)

  std::size_t num_neighbors = 10;  ///< sampler budget mr (Vertex Neighbor Table width)
  std::size_t prune_budget = 0;    ///< NP budget; 0 = pruning disabled

  AttentionKind attention = AttentionKind::kVanilla;
  TimeEncoderKind time_encoder = TimeEncoderKind::kCos;
  std::size_t lut_bins = 128;

  std::size_t decoder_hidden = 64;  ///< downstream link-prediction MLP width

  /// Numeric mode of the inference hot path — the software analogue of the
  /// paper's fixed-point accelerator datapath. Training is always fp32;
  /// engines pick this up at construction, and runtime backend keys like
  /// "cpu:int8" override it (runtime/backend.hpp).
  kernels::Precision inference_precision = kernels::Precision::kFp32;

  /// Raw cached-message width: [s_self || s_other || f_e].
  [[nodiscard]] std::size_t raw_mail_dim() const {
    return 2 * mem_dim + edge_dim;
  }
  /// GRU input width: raw mail plus the time encoding of the mail age.
  [[nodiscard]] std::size_t gru_in_dim() const {
    return raw_mail_dim() + time_dim;
  }
  /// Attention key/value input width: [f'_j || e_ij || Phi(dt)].
  [[nodiscard]] std::size_t kv_in_dim() const {
    return mem_dim + edge_dim + time_dim;
  }
  /// Attention query input width: [f'_i || Phi(0)].
  [[nodiscard]] std::size_t q_in_dim() const { return mem_dim + time_dim; }

  /// Neighbors actually aggregated after pruning.
  [[nodiscard]] std::size_t effective_neighbors() const {
    return (prune_budget > 0 && prune_budget < num_neighbors) ? prune_budget
                                                              : num_neighbors;
  }

  [[nodiscard]] bool uses_pruning() const {
    return prune_budget > 0 && prune_budget < num_neighbors;
  }
};

/// One rung of the Table II ladder.
struct ModelPreset {
  std::string label;  ///< "Baseline", "+SAT", "+LUT", "+NP(L)", ...
  ModelConfig config;
};

/// The accumulated-optimization ladder of Table II for a dataset with the
/// given feature dims.
std::vector<ModelPreset> presets(std::size_t edge_dim, std::size_t node_dim);

/// Named single presets (for benches that need one row).
ModelConfig baseline_config(std::size_t edge_dim, std::size_t node_dim);
ModelConfig np_config(char size /* 'L','M','S' */, std::size_t edge_dim,
                      std::size_t node_dim);

}  // namespace tgnn::core
