#include "tgnn/attention.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/fused.hpp"
#include "kernels/gemm.hpp"
#include "kernels/segment.hpp"
#include "util/rng.hpp"

namespace tgnn::core {

VanillaAttention::VanillaAttention(const ModelConfig& cfg, tgnn::Rng& rng)
    : wq("attn.wq", cfg.q_in_dim(), cfg.emb_dim, rng),
      wk("attn.wk", cfg.kv_in_dim(), cfg.emb_dim, rng),
      wv("attn.wv", cfg.kv_in_dim(), cfg.emb_dim, rng),
      wo("attn.wo", cfg.emb_dim + cfg.mem_dim, cfg.emb_dim, rng) {}

Tensor VanillaAttention::forward(std::span<const float> f_self,
                                 const AttnNodeInput& in, Cache* cache) const {
  const std::size_t n = in.kv_in.rows();
  const std::size_t emb = wq.out_dim();

  Tensor q = wq.forward(in.q_in);  // [1, emb]
  Tensor k, v, logits, alpha, attn(1, emb);
  if (n > 0) {
    k = wk.forward(in.kv_in);  // [n, emb]
    v = wv.forward(in.kv_in);  // [n, emb]
    const float scale = 1.0f / std::sqrt(static_cast<float>(n));
    logits = Tensor(1, n);
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t d = 0; d < emb; ++d) acc += q(0, d) * k(j, d);
      logits(0, j) = acc * scale;
    }
    alpha = logits;
    ops::softmax_span(alpha.row(0));
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t d = 0; d < emb; ++d) attn(0, d) += alpha(0, j) * v(j, d);
  }

  // FTM: h = W_o [attn || f'_i] + b_o
  Tensor fo_in(1, emb + f_self.size());
  for (std::size_t d = 0; d < emb; ++d) fo_in(0, d) = attn(0, d);
  for (std::size_t d = 0; d < f_self.size(); ++d)
    fo_in(0, emb + d) = f_self[d];
  Tensor h = wo.forward(fo_in);

  if (cache) {
    cache->in = in;
    cache->q = std::move(q);
    cache->k = std::move(k);
    cache->v = std::move(v);
    cache->logits = std::move(logits);
    cache->alpha = std::move(alpha);
    cache->attn = std::move(attn);
    cache->fo_in = std::move(fo_in);
  }
  return h;
}

void VanillaAttention::forward_into(std::span<const float> f_self,
                                    const AttnNodeInput& in, InferScratch& ws,
                                    std::span<float> out) const {
  const std::size_t n = in.kv_in.rows();
  const std::size_t emb = wq.out_dim();

  ws.fo_in.resize(1, emb + f_self.size());
  float* fo = ws.fo_in.data();
  if (n > 0) {
    // q feeds only the logits, so a neighborless node skips the projection.
    wq.forward_into(in.q_in, ws.q);
    wk.forward_into(in.kv_in, ws.k);
    wv.forward_into(in.kv_in, ws.v);
    // logits = q Kᵀ / sqrt(n), softmaxed in place, then attn = alpha V
    // accumulated straight into the FTM input's first emb columns.
    ws.alpha.resize(1, n);
    kernels::gemm_nt(ws.q.data(), ws.k.data(), ws.alpha.data(), 1, emb, n);
    const float scale = 1.0f / std::sqrt(static_cast<float>(n));
    for (std::size_t j = 0; j < n; ++j) ws.alpha[j] *= scale;
    ops::softmax_span(ws.alpha.row(0));
    kernels::weighted_rowsum(ws.alpha.data(), ws.v.data(), fo, n, emb);
  } else {
    std::fill(fo, fo + emb, 0.0f);
  }
  std::copy(f_self.begin(), f_self.end(), fo + emb);
  kernels::affine_row_into(ws.fo_in.row(0), wo.w.value, wo.b.value, out);
}

void VanillaAttention::forward_batch_into(
    const Tensor& f_self, const Tensor& q_in, const Tensor& kv_in,
    std::span<const std::size_t> seg, BatchScratch& ws, Tensor& out,
    kernels::Precision p) const {
  const std::size_t n_nodes = q_in.rows();
  const std::size_t total = kv_in.rows();
  const std::size_t emb = wq.out_dim();
  const std::size_t mem = f_self.cols();
  if (seg.size() != n_nodes + 1 || f_self.rows() != n_nodes ||
      (n_nodes > 0 && seg[n_nodes] != total))
    throw std::invalid_argument("forward_batch_into: segment mismatch");

  // Whole-batch projections. q rows of neighborless nodes are computed but
  // never read (their segment is empty) — the GEMM is cheaper batched than
  // branched. Under int8 each staged panel is quantized ONCE; the kv panel
  // feeds both the wk and wv GEMMs.
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_rows_into(q_in, ws.qq);
      wq.forward_q_into(ws.qq, ws.q);
      if (total > 0) {
        kernels::quantize_rows_into(kv_in, ws.qkv);
        wk.forward_q_into(ws.qkv, ws.k);
        wv.forward_q_into(ws.qkv, ws.v);
      }
      break;
    case kernels::Precision::kBf16:
      wq.forward_bf16_into(q_in, ws.q);
      if (total > 0) {
        wk.forward_bf16_into(kv_in, ws.k);
        wv.forward_bf16_into(kv_in, ws.v);
      }
      break;
    case kernels::Precision::kFp32:
      wq.forward_into(q_in, ws.q);
      if (total > 0) {
        wk.forward_into(kv_in, ws.k);
        wv.forward_into(kv_in, ws.v);
      }
      break;
  }

  // Ragged attention: per-segment scaled logits -> softmax -> weighted
  // rowsum straight into the FTM staging matrix's first emb columns (empty
  // segments zero-fill, the neighborless-node case).
  ws.alpha.resize(total);
  kernels::segment_attention_logits(ws.q.data(), ws.k.data(), seg, emb,
                                    ws.alpha.data());
  kernels::segment_softmax(ws.alpha.data(), seg);
  ws.fo_in.resize(n_nodes, emb + mem);
  kernels::segment_weighted_rowsum(ws.alpha.data(), ws.v.data(), seg, emb,
                                   ws.fo_in.data(), emb + mem);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto fs = f_self.row(i);
    std::copy(fs.begin(), fs.end(), ws.fo_in.row(i).begin() + emb);
  }

  // FTM over the whole batch, written straight into the embeddings matrix.
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_rows_into(ws.fo_in, ws.qfo);
      wo.forward_q_into(ws.qfo, out);
      break;
    case kernels::Precision::kBf16:
      wo.forward_bf16_into(ws.fo_in, out);
      break;
    case kernels::Precision::kFp32:
      kernels::affine_into(ws.fo_in, wo.w.value, wo.b.value, out);
      break;
  }
}

void VanillaAttention::prepare(kernels::Precision p) const {
  for (const auto* l : {&wq, &wk, &wv, &wo}) l->prepare(p);
}

std::vector<float> VanillaAttention::logits(std::span<const float> /*f_self*/,
                                            const AttnNodeInput& in) const {
  const std::size_t n = in.kv_in.rows();
  std::vector<float> out(n, 0.0f);
  if (n == 0) return out;
  Tensor q = wq.forward(in.q_in);
  Tensor k = wk.forward(in.kv_in);
  const std::size_t emb = wq.out_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  for (std::size_t j = 0; j < n; ++j) {
    float acc = 0.0f;
    for (std::size_t d = 0; d < emb; ++d) acc += q(0, d) * k(j, d);
    out[j] = acc * scale;
  }
  return out;
}

VanillaAttention::InputGrads VanillaAttention::backward(const Cache& c,
                                                        const Tensor& dh) {
  const std::size_t n = c.in.kv_in.rows();
  const std::size_t emb = wq.out_dim();
  const std::size_t mem = c.fo_in.cols() - emb;

  // FTM backward.
  Tensor dfo_in = wo.backward(c.fo_in, dh);  // [1, emb+mem]
  Tensor dattn(1, emb);
  InputGrads g;
  g.df_self = Tensor(1, mem);
  for (std::size_t d = 0; d < emb; ++d) dattn(0, d) = dfo_in(0, d);
  for (std::size_t d = 0; d < mem; ++d) g.df_self(0, d) = dfo_in(0, emb + d);

  Tensor dq(1, emb);
  if (n > 0) {
    // attn = sum_j alpha_j v_j
    Tensor dalpha(1, n), dv(n, emb);
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t d = 0; d < emb; ++d) {
        acc += dattn(0, d) * c.v(j, d);
        dv(j, d) = c.alpha(0, j) * dattn(0, d);
      }
      dalpha(0, j) = acc;
    }
    // Softmax backward: dlogit_j = alpha_j * (dalpha_j - sum_k alpha_k dalpha_k)
    float dot = 0.0f;
    for (std::size_t j = 0; j < n; ++j) dot += c.alpha(0, j) * dalpha(0, j);
    Tensor dlogits(1, n);
    for (std::size_t j = 0; j < n; ++j)
      dlogits(0, j) = c.alpha(0, j) * (dalpha(0, j) - dot);

    // logits_j = scale * q . k_j
    const float scale = 1.0f / std::sqrt(static_cast<float>(n));
    Tensor dk(n, emb);
    for (std::size_t j = 0; j < n; ++j) {
      const float dl = dlogits(0, j) * scale;
      for (std::size_t d = 0; d < emb; ++d) {
        dq(0, d) += dl * c.k(j, d);
        dk(j, d) = dl * c.q(0, d);
      }
    }
    // Linear backwards accumulate param grads and give input grads.
    g.dkv_in = wk.backward(c.in.kv_in, dk);
    g.dkv_in += wv.backward(c.in.kv_in, dv);
  } else {
    g.dkv_in = Tensor(0, wk.in_dim());
  }
  g.dq_in = wq.backward(c.in.q_in, dq);
  return g;
}

std::vector<nn::Parameter*> VanillaAttention::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto* l : {&wq, &wk, &wv, &wo})
    for (auto* p : l->parameters()) out.push_back(p);
  return out;
}

}  // namespace tgnn::core
