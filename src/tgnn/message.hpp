// Message construction (Eq. 4-5): when an edge (i, j, f_e, t) arrives, node i
// caches the raw message [s_i || s_j || f_e] with timestamp t (and j caches
// the mirrored one). The time encoding Phi(dt) is appended by the *consumer*
// (the GRU updater) at the node's next event, where dt = t_event - t_mail —
// this split is what lets the LUT encoder pre-fuse Phi with the GRU weight
// matrices (§III-C).
#pragma once

#include <span>

namespace tgnn::core {

/// Writes [s_self || s_other || f_e] into `out`.
/// f_e may be empty (datasets without edge features).
/// |out| must equal |s_self| + |s_other| + |f_e|.
void build_raw_mail(std::span<const float> s_self,
                    std::span<const float> s_other,
                    std::span<const float> f_e, std::span<float> out);

/// Writes [raw_mail || time_enc] into `out`: the GRU input row.
void build_gru_input(std::span<const float> raw_mail,
                     std::span<const float> time_enc, std::span<float> out);

}  // namespace tgnn::core
