// TGN-attn model assembly: time encoder + GRU memory updater + one of the
// two attention aggregators + (optional) node-feature projection W_s of
// Eq. 11. Owns the parameter registry handed to the optimizer.
//
// The model is *stateless* with respect to the graph: persistent vertex
// state (memory / mailbox / neighbor table) lives in RuntimeState
// (inference.hpp) so that several engines (CPU baseline, FPGA functional
// sim, teacher vs student during distillation) can run the same weights
// over independent streams.
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "tgnn/attention.hpp"
#include "tgnn/config.hpp"
#include "tgnn/lut_time_encoder.hpp"
#include "tgnn/memory_updater.hpp"
#include "tgnn/simplified_attention.hpp"
#include "tgnn/time_encoder.hpp"

namespace tgnn::core {

class TgnModel {
 public:
  TgnModel(const ModelConfig& cfg, std::uint64_t seed);

  [[nodiscard]] const ModelConfig& config() const { return cfg_; }

  /// Fit the LUT time encoder's bin boundaries (no-op for the cos encoder).
  /// `dt_samples` should be representative time gaps from the training
  /// stream; entries are initialized from a cos encoder evaluated at bin
  /// medians (§III-C: "learned in the training process" — this is the init).
  void fit_lut(const std::vector<double>& dt_samples);

  [[nodiscard]] TimeEncoderBase& time_encoder() { return *time_enc_; }
  [[nodiscard]] const TimeEncoderBase& time_encoder() const {
    return *time_enc_;
  }
  /// Non-null iff config().time_encoder == kLut.
  [[nodiscard]] LutTimeEncoder* lut_encoder() { return lut_; }
  [[nodiscard]] const LutTimeEncoder* lut_encoder() const { return lut_; }

  [[nodiscard]] MemoryUpdater& updater() { return updater_; }
  [[nodiscard]] const MemoryUpdater& updater() const { return updater_; }

  /// Exactly one of these is non-null, per config().attention.
  [[nodiscard]] VanillaAttention* vanilla() { return vanilla_.get(); }
  [[nodiscard]] const VanillaAttention* vanilla() const { return vanilla_.get(); }
  [[nodiscard]] SimplifiedAttention* simplified() { return sat_.get(); }
  [[nodiscard]] const SimplifiedAttention* simplified() const {
    return sat_.get();
  }

  /// Node-feature projection W_s f_i + b_s (Eq. 11); null if node_dim == 0.
  [[nodiscard]] nn::Linear* node_proj() { return ws_.get(); }
  [[nodiscard]] const nn::Linear* node_proj() const { return ws_.get(); }

  /// f'_i = s_i (+ W_s f_i + b_s if node features exist). Writes into `out`.
  void f_prime(std::span<const float> s, std::span<const float> f_node,
               std::span<float> out) const;

  /// One-time reduced-precision snapshot of the inference hot path's
  /// weights (GRU + attention projections). kFp32 is a no-op. node_proj /
  /// f_prime stay fp32: they run per row in the gather stage, where dynamic
  /// quantization has nothing to amortize against. Derived-cache mutation
  /// only, so const — callable on shared model references.
  void prepare_precision(kernels::Precision p) const;

  [[nodiscard]] nn::ParamStore& params() { return params_; }

 private:
  ModelConfig cfg_;
  std::unique_ptr<TimeEncoderBase> time_enc_;
  LutTimeEncoder* lut_ = nullptr;  ///< alias into time_enc_ when LUT
  MemoryUpdater updater_;
  std::unique_ptr<VanillaAttention> vanilla_;
  std::unique_ptr<SimplifiedAttention> sat_;
  std::unique_ptr<nn::Linear> ws_;
  nn::ParamStore params_;
};

}  // namespace tgnn::core
