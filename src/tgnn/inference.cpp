#include "tgnn/inference.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include <omp.h>

#include "graph/shard_map.hpp"
#include "tgnn/message.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::core {

namespace {

// Split a byte budget between the memory and mailbox stores proportionally
// to their flat footprints, so both tables keep the same resident fraction.
graph::VertexStoreOptions split_budget(std::size_t budget,
                                       std::size_t own_bytes,
                                       std::size_t total_bytes) {
  graph::VertexStoreOptions o;
  if (budget != 0 && total_bytes != 0)
    o.budget_bytes = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(budget) * static_cast<double>(own_bytes) /
               static_cast<double>(total_bytes)));
  return o;
}

std::size_t memory_table_bytes(graph::NodeId n, const ModelConfig& cfg) {
  return std::size_t{n} * graph::VertexMemory::store_row_bytes(cfg.mem_dim);
}

std::size_t mailbox_table_bytes(graph::NodeId n, const ModelConfig& cfg) {
  return std::size_t{n} *
         graph::VertexMailbox::store_row_bytes(cfg.raw_mail_dim());
}

}  // namespace

RuntimeState::RuntimeState(graph::NodeId num_nodes, const ModelConfig& cfg,
                           bool use_fifo, std::size_t memory_budget_bytes)
    : memory(num_nodes, cfg.mem_dim,
             split_budget(memory_budget_bytes,
                          memory_table_bytes(num_nodes, cfg),
                          state_bytes(num_nodes, cfg))),
      mailbox(num_nodes, cfg.raw_mail_dim(),
              split_budget(memory_budget_bytes,
                           mailbox_table_bytes(num_nodes, cfg),
                           state_bytes(num_nodes, cfg))),
      mail_valid(num_nodes, 0) {
  if (use_fifo)
    table = std::make_unique<graph::NeighborTable>(num_nodes,
                                                   cfg.num_neighbors);
  else
    finder = std::make_unique<graph::NeighborFinder>(num_nodes);
}

std::size_t RuntimeState::state_bytes(graph::NodeId num_nodes,
                                      const ModelConfig& cfg) {
  return memory_table_bytes(num_nodes, cfg) +
         mailbox_table_bytes(num_nodes, cfg);
}

void RuntimeState::pin_rows(std::span<const graph::NodeId> nodes,
                            bool with_mail) {
  memory.pin_rows(nodes);
  if (with_mail) {
    try {
      mailbox.pin_rows(nodes);
    } catch (...) {
      // Keep the all-or-nothing pin contract across both stores: a spill
      // fault in the mailbox pin releases the memory pins before it
      // surfaces, so the batch abort path has nothing to clean up here.
      memory.unpin_rows(nodes);
      throw;
    }
  }
}

void RuntimeState::unpin_rows(std::span<const graph::NodeId> nodes,
                              bool with_mail) {
  memory.unpin_rows(nodes);
  if (with_mail) mailbox.unpin_rows(nodes);
}

void RuntimeState::prefetch_rows(std::span<const graph::NodeId> nodes) {
  memory.prefetch_rows(nodes);
  mailbox.prefetch_rows(nodes);
}

graph::VertexStoreStats RuntimeState::store_stats() const {
  graph::VertexStoreStats s = memory.store_stats();
  s += mailbox.store_stats();
  return s;
}

void RuntimeState::neighbors_into(graph::NodeId v, double t, std::size_t k,
                                  std::vector<graph::NeighborHit>& out) const {
  if (finder) {
    finder->most_recent_into(v, t, k, out);
    return;
  }
  // FIFO table: all stored entries are strictly in the past (batch edges are
  // inserted after embedding computation), so the row is directly usable.
  table->row_into(v, out);
  if (out.size() > k) out.erase(out.begin(), out.end() - static_cast<long>(k));
}

void BatchWorkspace::reserve(std::size_t max_nodes, const ModelConfig& cfg) {
  t_event.reserve(max_nodes);
  grow_to(nbrs, max_nodes);
  for (auto& n : nbrs) n.reserve(cfg.num_neighbors);
  mail_rows.reserve(max_nodes);
  mem_ptr.reserve(max_nodes);
  x.reserve(max_nodes, cfg.gru_in_dim());
  h.reserve(max_nodes, cfg.mem_dim);
  s_new.reserve(max_nodes, cfg.mem_dim);
  gru.reserve(max_nodes, cfg.mem_dim);
  raw.reserve(cfg.raw_mail_dim());

  // Batched-GNN staging: the packed neighbor matrices are bounded by
  // max_nodes * num_neighbors rows (the FIFO table width caps per-vertex
  // degree); pruning only shrinks the simplified path below that.
  const std::size_t max_rows = max_nodes * cfg.num_neighbors;
  gb.seg.reserve(max_nodes + 1);
  gb.fp.reserve(max_nodes, cfg.mem_dim);
  gb.q_in.reserve(max_nodes, cfg.q_in_dim());
  gb.kv_in.reserve(max_rows, cfg.kv_in_dim());
  gb.logits.reserve(max_rows);
  grow_to(gb.scores, max_nodes);
  gb.attn.q.reserve(max_nodes, cfg.emb_dim);
  gb.attn.k.reserve(max_rows, cfg.emb_dim);
  gb.attn.v.reserve(max_rows, cfg.emb_dim);
  gb.attn.fo_in.reserve(max_nodes, cfg.emb_dim + cfg.mem_dim);
  gb.attn.alpha.reserve(max_rows);
  gb.sat.v.reserve(max_rows, cfg.emb_dim);
  gb.sat.fo_in.reserve(max_nodes, cfg.emb_dim + cfg.mem_dim);
}

void RuntimeState::insert_edge(const graph::TemporalEdge& e) {
  if (finder)
    finder->insert(e);
  else
    table->insert_edge(e);
}

void RuntimeState::reset() {
  memory.reset();
  mailbox.reset();
  std::fill(mail_valid.begin(), mail_valid.end(), 0);
  if (finder) finder->clear();
  if (table)
    table = std::make_unique<graph::NeighborTable>(memory.num_nodes(),
                                                   table->capacity());
}

InferenceEngine::InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                                 bool use_fifo_sampler,
                                 std::size_t memory_budget)
    : model_(model), ds_(ds),
      owned_state_(std::make_unique<RuntimeState>(ds.graph.num_nodes(),
                                                  model.config(),
                                                  use_fifo_sampler,
                                                  memory_budget)),
      state_(owned_state_.get()), dst_pool_(data::destination_pool(ds)) {
  set_precision(model.config().inference_precision);
}

InferenceEngine::InferenceEngine(const TgnModel& model, const data::Dataset& ds,
                                 RuntimeState& state)
    : model_(model), ds_(ds), state_(&state),
      dst_pool_(data::destination_pool(ds)) {
  set_precision(model.config().inference_precision);
}

void InferenceEngine::set_precision(kernels::Precision p) {
  // Snapshot before flipping the member: if quantization throws, the
  // engine stays in its previous, consistent mode.
  model_.prepare_precision(p);
  precision_ = p;
}

InferenceEngine::BatchResult InferenceEngine::process_batch(
    const graph::BatchRange& r, std::span<const graph::NodeId> extra_nodes,
    PartTimes* times) {
  // The serial driver: the four stages back to back on the engine's own
  // context — bit-identical to the pre-staged monolithic loop (the stages
  // are the same statements; only MemoryUpdate and the neighbor sampling
  // swapped places, and neither reads what the other writes).
  stage_begin(ctx_, r, extra_nodes);
  stage_run(Stage::kMemoryUpdate, ctx_);
  stage_run(Stage::kNeighborGather, ctx_);
  stage_run(Stage::kGnnCompute, ctx_);
  stage_run(Stage::kDecode, ctx_);
  if (times) *times += ctx_.parts;
  return stage_finish(ctx_);
}

void InferenceEngine::stage_begin(StageContext& ctx, const graph::BatchRange& r,
                                  std::span<const graph::NodeId> extra_nodes) {
  Stopwatch sw;
  ctx.range = r;
  ctx.extras.assign(extra_nodes.begin(), extra_nodes.end());
  ctx.parts = PartTimes{};
  ctx.res = BatchResult{};

  // Collect unique involved vertices; per-vertex event time = its most
  // recent timestamp within the batch (in-batch dependencies are ignored).
  // Reads only the immutable edge stream, so a pipelined scheduler may run
  // this before the batch is admitted past the hazard check.
  const auto edges = ds_.graph.edges(r);
  std::vector<double>& t_event = ctx.ws.t_event;
  t_event.clear();
  auto touch = [&](graph::NodeId v, double ts) {
    auto [it, inserted] = ctx.res.index.try_emplace(v, ctx.res.nodes.size());
    if (inserted) {
      ctx.res.nodes.push_back(v);
      t_event.push_back(ts);
    } else {
      t_event[it->second] = std::max(t_event[it->second], ts);
    }
  };
  ctx.t_batch_end = edges.empty() ? 0.0 : edges.back().ts;
  for (const auto& e : edges) {
    touch(e.src, e.ts);
    touch(e.dst, e.ts);
  }
  ctx.num_real = ctx.res.nodes.size();
  for (graph::NodeId v : ctx.extras) touch(v, ctx.t_batch_end);

  // Out-of-core: open the batch's pin window. Every stage from here to the
  // end of Decode holds raw pointers into the endpoint rows (mem_ptr, the
  // build_raw_mail spans), so their pages must not move until then.
  // Defensive: release leftovers first if a previous batch on this context
  // was abandoned mid-flight.
  if (!ctx.pinned_nbrs.empty()) {
    state_->unpin_rows(ctx.pinned_nbrs, /*with_mail=*/false);
    ctx.pinned_nbrs.clear();
  }
  if (!ctx.pinned_nodes.empty()) {
    state_->unpin_rows(ctx.pinned_nodes, /*with_mail=*/true);
    ctx.pinned_nodes.clear();
  }
  if (state_->out_of_core()) {
    // Pin BEFORE recording the pin set: if the pin faults (it rolls its
    // own work back), the context must not claim pins it never got.
    state_->pin_rows(ctx.res.nodes, /*with_mail=*/true);
    ctx.pinned_nodes = ctx.res.nodes;
  }
  ctx.parts.sample += sw.seconds();
}

void InferenceEngine::stage_abort(StageContext& ctx) {
  if (!ctx.pinned_nbrs.empty()) {
    state_->unpin_rows(ctx.pinned_nbrs, /*with_mail=*/false);
    ctx.pinned_nbrs.clear();
  }
  if (!ctx.pinned_nodes.empty()) {
    state_->unpin_rows(ctx.pinned_nodes, /*with_mail=*/true);
    ctx.pinned_nodes.clear();
  }
  ctx.res = BatchResult{};
}

void InferenceEngine::stage_run(Stage s, StageContext& ctx) {
  switch (s) {
    case Stage::kMemoryUpdate:
      stage_memory_update(ctx);
      return;
    case Stage::kNeighborGather:
      stage_neighbor_gather(ctx);
      return;
    case Stage::kGnnCompute:
      stage_gnn_compute(ctx);
      return;
    case Stage::kDecode:
      stage_decode(ctx);
      return;
  }
  throw std::invalid_argument("InferenceEngine::stage_run: unknown stage");
}

void InferenceEngine::stage_memory_update(StageContext& ctx) {
  // Consume cached mail through the GRU (Eq. 1). Touches only the batch's
  // own vertices' mailbox/memory/mail_valid rows.
  Stopwatch sw;
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx.ws;
  const std::size_t n_nodes = ctx.res.nodes.size();
  std::vector<std::size_t>& mail_rows = ws.mail_rows;  // indices into nodes
  mail_rows.clear();
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const graph::NodeId v = ctx.res.nodes[i];
    if (state_->mailbox.has_mail(v) && state_->mail_valid[v])
      mail_rows.push_back(i);
  }
  Tensor& s_new = ws.s_new;  // [mail_rows, mem]
  if (!mail_rows.empty()) {
    ws.x.resize(mail_rows.size(), cfg.gru_in_dim());
    ws.h.resize(mail_rows.size(), cfg.mem_dim);
    // Gather [raw_mail || Phi(dt)] and the current memory rows into the
    // contiguous GRU operands; all reads are of the batch's own vertices,
    // so rows are independent and the gather parallelizes freely.
#pragma omp parallel for schedule(static) if (parallel_gnn_)
    for (std::size_t k = 0; k < mail_rows.size(); ++k) {
      const std::size_t i = mail_rows[k];
      const graph::NodeId v = ctx.res.nodes[i];
      const auto mail = state_->mailbox.mail(v);
      const double dt =
          std::max(0.0, ws.t_event[i] - state_->mailbox.mail_ts(v));
      auto row = ws.x.row(k);
      std::copy(mail.begin(), mail.end(), row.begin());
      model_.time_encoder().encode_scalar(
          dt, row.subspan(mail.size(), cfg.time_dim));
      const auto mem = state_->memory.get(v);
      std::copy(mem.begin(), mem.end(), ws.h.row(k).begin());
    }
    model_.updater().forward_into(ws.x, ws.h, ws.gru, s_new, precision_);
  }
  // Row lookup: updated memory if in this batch's mail set, else the table.
  std::vector<const float*>& mem_ptr = ws.mem_ptr;
  mem_ptr.assign(n_nodes, nullptr);
  for (std::size_t i = 0; i < n_nodes; ++i)
    mem_ptr[i] = state_->memory.get(ctx.res.nodes[i]).data();
  for (std::size_t k = 0; k < mail_rows.size(); ++k)
    mem_ptr[mail_rows[k]] = s_new.row(k).data();
  ctx.parts.memory += sw.seconds();
}

void InferenceEngine::stage_neighbor_gather(StageContext& ctx) {
  // Sample: neighbor lists BEFORE this batch's edges are inserted (Decode
  // inserts them; the hazard check keeps concurrent batches' endpoint rows
  // disjoint, so the rows read here are quiescent).
  Stopwatch sw;
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx.ws;
  const std::size_t n_nodes = ctx.res.nodes.size();
  BatchWorkspace::grow_to(ws.nbrs, n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    state_->neighbors_into(ctx.res.nodes[i], ws.t_event[i], cfg.num_neighbors,
                           ws.nbrs[i]);
  // Out-of-core: pin the sampled neighbors' memory rows now that they are
  // known — this both protects the (possibly parallel) kv gathers below
  // and IS the synchronous fault-in, one stage before GnnCompute reads
  // the rows. Unique ids so the pin count stays bounded by the footprint.
  if (state_->out_of_core()) {
    auto& pn = ctx.pinned_nbrs;
    pn.clear();
    for (std::size_t i = 0; i < n_nodes; ++i)
      for (const auto& hit : ws.nbrs[i]) pn.push_back(hit.node);
    std::sort(pn.begin(), pn.end());
    pn.erase(std::unique(pn.begin(), pn.end()), pn.end());
    try {
      state_->pin_rows(pn, /*with_mail=*/false);
    } catch (...) {
      pn.clear();  // pin rolled itself back; don't claim what we don't hold
      throw;
    }
  }
  ctx.parts.sample += sw.seconds();

  // CSR pack + kv-row staging (batched pipeline only; the per-row path
  // gathers inside GnnCompute). Counted as GNN time, as the gather was
  // when it lived inside the monolithic GNN stage.
  if (use_batched_gnn()) {
    sw.reset();
    gnn_gather_batched(ctx);
    ctx.parts.gnn += sw.seconds();
  }
}

void InferenceEngine::stage_gnn_compute(StageContext& ctx) {
  // Dynamic embeddings via attention over sampled neighbors (Eq. 2): the
  // batched GEMMs over the staged operands (default) or the legacy per-row
  // path — bit-identical by construction.
  Stopwatch sw;
  const ModelConfig& cfg = model_.config();
  ctx.res.embeddings = Tensor(ctx.res.nodes.size(), cfg.emb_dim);
  if (use_batched_gnn())
    gnn_compute_batched(ctx);
  else
    gnn_stage_per_row(ctx);
  ctx.parts.gnn += sw.seconds();
}

void InferenceEngine::stage_decode(StageContext& ctx) {
  // Chronological write-back (Alg. 1 lines 4-8, 12-14). Extra
  // (negative-sample) vertices were embedded with their *transiently*
  // updated memory, but only vertices with real events commit state — the
  // TGN convention for evaluation negatives. Pair scoring consumes
  // ctx.res.embeddings (evaluate_ap / the serving decoder) and rides on
  // this stage's slot in the pipeline.
  Stopwatch sw;
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx.ws;
  for (std::size_t k = 0; k < ws.mail_rows.size(); ++k) {
    const std::size_t i = ws.mail_rows[k];
    if (i >= ctx.num_real) continue;
    const graph::NodeId v = ctx.res.nodes[i];
    if (shard_locks_ != nullptr) {
      util::ExclusiveLock lock(shard_locks_->mutex_of(v));
      state_->memory.set(v, ws.s_new.row(k), ws.t_event[i]);
    } else {
      state_->memory.set(v, ws.s_new.row(k), ws.t_event[i]);
    }
    state_->mail_valid[v] = 0;  // consume-once
  }
  // Cache fresh messages from updated memory; last write per vertex wins
  // ("most recent" aggregator).
  const auto edges = ds_.graph.edges(ctx.range);
  std::vector<float>& raw = ws.raw;
  raw.resize(cfg.raw_mail_dim());
  for (const auto& e : edges) {
    const auto fe = cfg.edge_dim > 0
                        ? std::span<const float>(ds_.edge_features.row(e.eid))
                        : std::span<const float>{};
    build_raw_mail(state_->memory.get(e.src), state_->memory.get(e.dst), fe,
                   raw);
    state_->mailbox.put(e.src, raw, e.ts);
    state_->mail_valid[e.src] = 1;
    build_raw_mail(state_->memory.get(e.dst), state_->memory.get(e.src), fe,
                   raw);
    state_->mailbox.put(e.dst, raw, e.ts);
    state_->mail_valid[e.dst] = 1;
  }
  for (const auto& e : edges) state_->insert_edge(e);
  // Close the batch's pin window: state is committed, no raw row pointer
  // outlives this stage. Unpinning the dirtied endpoint pages is what
  // queues their chronological write-back.
  if (!ctx.pinned_nbrs.empty()) {
    state_->unpin_rows(ctx.pinned_nbrs, /*with_mail=*/false);
    ctx.pinned_nbrs.clear();
  }
  if (!ctx.pinned_nodes.empty()) {
    state_->unpin_rows(ctx.pinned_nodes, /*with_mail=*/true);
    ctx.pinned_nodes.clear();
  }
  ctx.parts.update += sw.seconds();
}

std::span<const float> InferenceEngine::memory_of(
    graph::NodeId v, const StageContext& ctx,
    std::vector<float>& scratch) const {
  // Memory of a batch vertex comes from the (possibly GRU-updated) local
  // row; memory of anyone else comes from the shared table. In concurrent-
  // lane mode the latter is the one read that can race with another lane's
  // write-back, so it goes through the vertex's shard lock into `scratch`.
  const ModelConfig& cfg = model_.config();
  auto it = ctx.res.index.find(v);
  if (it != ctx.res.index.end())
    return {ctx.ws.mem_ptr[it->second], cfg.mem_dim};
  if (shard_locks_ != nullptr) {
    scratch.resize(cfg.mem_dim);
    util::SharedLock lock(shard_locks_->mutex_of(v));
    const auto mem = state_->memory.get(v);
    std::copy(mem.begin(), mem.end(), scratch.begin());
    return {scratch.data(), scratch.size()};
  }
  return state_->memory.get(v);
}

void InferenceEngine::f_prime_of(graph::NodeId v, const StageContext& ctx,
                                 std::vector<float>& scratch,
                                 std::span<float> out) const {
  const ModelConfig& cfg = model_.config();
  const auto feat = cfg.node_dim > 0
                        ? std::span<const float>(ds_.node_features.row(v))
                        : std::span<const float>{};
  model_.f_prime(memory_of(v, ctx, scratch), feat, out);
}

void InferenceEngine::gather_kv_row(const graph::NeighborHit& hit, double dt,
                                    const StageContext& ctx,
                                    std::vector<float>& scratch,
                                    std::span<float> row) const {
  const ModelConfig& cfg = model_.config();
  f_prime_of(hit.node, ctx, scratch, row.first(cfg.mem_dim));
  if (cfg.edge_dim > 0) {
    const auto ef = ds_.edge_features.row(hit.eid);
    std::copy(ef.begin(), ef.end(), row.begin() + cfg.mem_dim);
  }
  model_.time_encoder().encode_scalar(
      dt, row.subspan(cfg.mem_dim + cfg.edge_dim, cfg.time_dim));
}

void InferenceEngine::gnn_gather_batched(StageContext& ctx) {
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx.ws;
  const auto& nbrs = ws.nbrs;
  const auto& t_event = ws.t_event;
  BatchWorkspace::GnnBatch& gb = ws.gb;
  const std::size_t n_nodes = ctx.res.nodes.size();
  const std::size_t n_threads =
      parallel_gnn_
          ? static_cast<std::size_t>(std::max(1, omp_get_max_threads()))
          : 1;
  BatchWorkspace::grow_to(ws.gnn, n_threads);

  // ---- gather f'_i of every center vertex into one contiguous matrix
  // (shared by both attention variants).
  gb.fp.resize(n_nodes, cfg.mem_dim);
#pragma omp parallel for schedule(static) if (parallel_gnn_)
  for (std::size_t i = 0; i < n_nodes; ++i) {
    auto& sc = ws.gnn[static_cast<std::size_t>(omp_get_thread_num())];
    f_prime_of(ctx.res.nodes[i], ctx, sc.mem_row, gb.fp.row(i));
  }

  gb.seg.resize(n_nodes + 1);
  gb.seg[0] = 0;
  if (model_.vanilla() != nullptr) {
    // ---- gather: q rows + packed [f'_j || e_ij || Phi(dt)] neighbor rows.
    for (std::size_t i = 0; i < n_nodes; ++i)
      gb.seg[i + 1] = gb.seg[i] + nbrs[i].size();
    gb.q_in.resize(n_nodes, cfg.q_in_dim());
    gb.kv_in.resize(gb.seg[n_nodes], cfg.kv_in_dim());
#pragma omp parallel for schedule(dynamic, 8) if (parallel_gnn_)
    for (std::size_t i = 0; i < n_nodes; ++i) {
      auto& sc = ws.gnn[static_cast<std::size_t>(omp_get_thread_num())];
      auto q = gb.q_in.row(i);
      const auto fp = gb.fp.row(i);
      std::copy(fp.begin(), fp.end(), q.begin());
      model_.time_encoder().encode_scalar(
          0.0, q.subspan(cfg.mem_dim, cfg.time_dim));
      const auto& nb = nbrs[i];
      for (std::size_t j = 0; j < nb.size(); ++j)
        gather_kv_row(nb[j], std::max(0.0, t_event[i] - nb[j].ts), ctx,
                      sc.mem_row, gb.kv_in.row(gb.seg[i] + j));
    }
  } else {
    const auto* sat = model_.simplified();
    BatchWorkspace::grow_to(gb.scores, n_nodes);
    // ---- phase 1: dt-only logits + pruning per node (tiny mr x mr work;
    // what makes the kept-slot gather below possible before any V fetch).
#pragma omp parallel for schedule(dynamic, 8) if (parallel_gnn_)
    for (std::size_t i = 0; i < n_nodes; ++i) {
      auto& sc = ws.gnn[static_cast<std::size_t>(omp_get_thread_num())];
      const auto& nb = nbrs[i];
      sc.dts.resize(nb.size());
      for (std::size_t j = 0; j < nb.size(); ++j)
        sc.dts[j] = std::max(0.0, t_event[i] - nb[j].ts);
      sat->score_into(sc.dts, cfg.prune_budget, sc.score, gb.scores[i]);
    }
    // ---- gather: packed kept-slot V rows + their logits.
    for (std::size_t i = 0; i < n_nodes; ++i)
      gb.seg[i + 1] = gb.seg[i] + gb.scores[i].keep.size();
    gb.kv_in.resize(gb.seg[n_nodes], cfg.kv_in_dim());
    gb.logits.resize(gb.seg[n_nodes]);
#pragma omp parallel for schedule(dynamic, 8) if (parallel_gnn_)
    for (std::size_t i = 0; i < n_nodes; ++i) {
      auto& sc = ws.gnn[static_cast<std::size_t>(omp_get_thread_num())];
      const SimplifiedAttention::Scores& s = gb.scores[i];
      for (std::size_t idx = 0; idx < s.keep.size(); ++idx) {
        const std::size_t slot = s.keep[idx];
        gather_kv_row(nbrs[i][slot], s.dts[slot], ctx, sc.mem_row,
                      gb.kv_in.row(gb.seg[i] + idx));
        gb.logits[gb.seg[i] + idx] = s.logits[slot];
      }
    }
  }
}

void InferenceEngine::gnn_compute_batched(StageContext& ctx) {
  // ---- batched compute + scatter into the embeddings matrix: each model
  // stage is ONE kernel call over the operands NeighborGather staged.
  BatchWorkspace::GnnBatch& gb = ctx.ws.gb;
  if (const auto* att = model_.vanilla()) {
    att->forward_batch_into(gb.fp, gb.q_in, gb.kv_in, gb.seg, gb.attn,
                            ctx.res.embeddings, precision_);
  } else {
    model_.simplified()->aggregate_batch_into(gb.fp, gb.logits, gb.kv_in,
                                              gb.seg, gb.sat,
                                              ctx.res.embeddings, precision_);
  }
}

void InferenceEngine::gnn_stage_per_row(StageContext& ctx) {
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx.ws;
  const auto& nbrs = ws.nbrs;
  const auto& t_event = ws.t_event;
  Tensor& embeddings = ctx.res.embeddings;
  const std::size_t n_nodes = ctx.res.nodes.size();
  const std::size_t n_threads =
      parallel_gnn_
          ? static_cast<std::size_t>(std::max(1, omp_get_max_threads()))
          : 1;
  BatchWorkspace::grow_to(ws.gnn, n_threads);
#pragma omp parallel for schedule(dynamic, 8) if (parallel_gnn_)
  for (std::size_t i = 0; i < n_nodes; ++i) {
    auto& sc = ws.gnn[static_cast<std::size_t>(omp_get_thread_num())];
    sc.fp.resize(1, cfg.mem_dim);
    const graph::NodeId u = ctx.res.nodes[i];
    const auto& nb = nbrs[i];
    f_prime_of(u, ctx, sc.mem_row, sc.fp.row(0));

    // Both attention variants run their fused inference path, writing the
    // embedding straight into the batch result's row.
    if (const auto* att = model_.vanilla()) {
      AttnNodeInput& in = sc.attn_in;
      in.q_in.resize(1, cfg.q_in_dim());
      {
        auto q = in.q_in.row(0);
        std::copy(sc.fp.row(0).begin(), sc.fp.row(0).end(), q.begin());
        model_.time_encoder().encode_scalar(
            0.0, q.subspan(cfg.mem_dim, cfg.time_dim));
      }
      in.kv_in.resize(nb.size(), cfg.kv_in_dim());
      for (std::size_t j = 0; j < nb.size(); ++j)
        gather_kv_row(nb[j], std::max(0.0, t_event[i] - nb[j].ts), ctx,
                      sc.mem_row, in.kv_in.row(j));
      att->forward_into(sc.fp.row(0), in, sc.attn, embeddings.row(i));
    } else {
      const auto* sat = model_.simplified();
      sc.dts.resize(nb.size());
      for (std::size_t j = 0; j < nb.size(); ++j)
        sc.dts[j] = std::max(0.0, t_event[i] - nb[j].ts);
      sat->score_into(sc.dts, cfg.prune_budget, sc.score, sc.scores);
      const auto& scores = sc.scores;
      sc.v_in.resize(scores.keep.size(), cfg.kv_in_dim());
      for (std::size_t k = 0; k < scores.keep.size(); ++k)
        gather_kv_row(nb[scores.keep[k]], sc.dts[scores.keep[k]], ctx,
                      sc.mem_row, sc.v_in.row(k));
      sat->aggregate_into(sc.fp.row(0), scores, sc.v_in, sc.sat,
                          embeddings.row(i));
    }
  }
}

void InferenceEngine::read_footprint(const graph::BatchRange& r,
                                     std::vector<graph::NodeId>& out) const {
  out.clear();
  const auto edges = ds_.graph.edges(r);
  // Per unique endpoint, the stages sample neighbors at the vertex's most
  // recent in-batch event time — mirror that exactly so the footprint is a
  // superset of the gather/compute stages' reads.
  std::unordered_map<graph::NodeId, double> t_event;
  for (const auto& e : edges) {
    for (graph::NodeId v : {e.src, e.dst}) {
      auto [it, inserted] = t_event.try_emplace(v, e.ts);
      if (!inserted) it->second = std::max(it->second, e.ts);
    }
  }
  const std::size_t k = model_.config().num_neighbors;
  std::vector<graph::NeighborHit> hits;
  for (const auto& [v, t] : t_event) {
    state_->neighbors_into(v, t, k, hits);
    for (const auto& h : hits) out.push_back(h.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void InferenceEngine::reserve_workspace(std::size_t max_batch_edges) {
  reserve_context(ctx_, max_batch_edges);
}

void InferenceEngine::reserve_context(StageContext& ctx,
                                      std::size_t max_batch_edges) const {
  // Each edge touches at most two unique vertices.
  ctx.ws.reserve(2 * max_batch_edges, model_.config());
}

void InferenceEngine::warmup(const graph::BatchRange& range,
                             std::size_t batch_size) {
  const ModelConfig& cfg = model_.config();
  BatchWorkspace& ws = ctx_.ws;
  for (const auto& b : ds_.graph.fixed_size_batches(range.begin, range.end,
                                                    batch_size)) {
    const auto edges = ds_.graph.edges(b);
    // Memory + mailbox + neighbor updates only (skip the GNN stage).
    std::unordered_map<graph::NodeId, double> tev;
    for (const auto& e : edges) {
      tev[e.src] = std::max(tev.count(e.src) ? tev[e.src] : e.ts, e.ts);
      tev[e.dst] = std::max(tev.count(e.dst) ? tev[e.dst] : e.ts, e.ts);
    }
    // Out-of-core: warmup touches only this mini-batch's endpoints — pin
    // them for the duration of the mini-batch (the build_raw_mail calls
    // below hold two row spans at once).
    std::vector<graph::NodeId> pinned;
    if (state_->out_of_core()) {
      pinned.reserve(tev.size());
      for (const auto& [v, t] : tev) pinned.push_back(v);
      state_->pin_rows(pinned, /*with_mail=*/true);
    }
    std::vector<graph::NodeId> mail_nodes;
    for (const auto& [v, t] : tev)
      if (state_->mailbox.has_mail(v) && state_->mail_valid[v])
        mail_nodes.push_back(v);
    if (!mail_nodes.empty()) {
      // Same fused GRU path as process_batch, reusing the engine workspace,
      // so a warmed-up state is bit-identical to a streamed one.
      ws.x.resize(mail_nodes.size(), cfg.gru_in_dim());
      ws.h.resize(mail_nodes.size(), cfg.mem_dim);
      for (std::size_t k = 0; k < mail_nodes.size(); ++k) {
        const graph::NodeId v = mail_nodes[k];
        const auto mail = state_->mailbox.mail(v);
        auto row = ws.x.row(k);
        std::copy(mail.begin(), mail.end(), row.begin());
        model_.time_encoder().encode_scalar(
            std::max(0.0, tev[v] - state_->mailbox.mail_ts(v)),
            row.subspan(mail.size(), cfg.time_dim));
        const auto mem = state_->memory.get(v);
        std::copy(mem.begin(), mem.end(), ws.h.row(k).begin());
      }
      model_.updater().forward_into(ws.x, ws.h, ws.gru, ws.s_new,
                                    precision_);
      for (std::size_t k = 0; k < mail_nodes.size(); ++k) {
        state_->memory.set(mail_nodes[k], ws.s_new.row(k), tev[mail_nodes[k]]);
        state_->mail_valid[mail_nodes[k]] = 0;
      }
    }
    std::vector<float> raw(cfg.raw_mail_dim());
    for (const auto& e : edges) {
      const auto fe = cfg.edge_dim > 0
                          ? std::span<const float>(ds_.edge_features.row(e.eid))
                          : std::span<const float>{};
      build_raw_mail(state_->memory.get(e.src), state_->memory.get(e.dst), fe,
                     raw);
      state_->mailbox.put(e.src, raw, e.ts);
      state_->mail_valid[e.src] = 1;
      build_raw_mail(state_->memory.get(e.dst), state_->memory.get(e.src), fe,
                     raw);
      state_->mailbox.put(e.dst, raw, e.ts);
      state_->mail_valid[e.dst] = 1;
    }
    for (const auto& e : edges) state_->insert_edge(e);
    if (!pinned.empty()) state_->unpin_rows(pinned, /*with_mail=*/true);
  }
}

double InferenceEngine::evaluate_ap(const graph::BatchRange& range,
                                    const Decoder& dec, std::size_t batch_size,
                                    tgnn::Rng& rng) {
  if (dst_pool_.empty())
    throw std::logic_error("evaluate_ap: empty negative pool");
  std::vector<ScoredSample> samples;
  if (range.end > range.begin)
    samples.reserve(2 * (range.end - range.begin));  // one pos + one neg per edge
  Decoder::InferScratch dec_ws;
  // Score at the engine's precision: the decoder consumes this engine's
  // embeddings, so AP deltas measure the whole quantized path end to end.
  dec.prepare(precision_);
  std::vector<graph::NodeId> negs;
  for (const auto& b : ds_.graph.fixed_size_batches(range.begin, range.end,
                                                    batch_size)) {
    const auto edges = ds_.graph.edges(b);
    negs.resize(edges.size());
    for (auto& v : negs) v = dst_pool_[rng.uniform_int(dst_pool_.size())];
    const auto res = process_batch(b, negs);
    // Batched decoder: all 2E pair rows of the micro-batch through one
    // fused forward instead of 2E single-row calls.
    const std::size_t emb = res.embeddings.cols();
    dec_ws.x.resize(2 * edges.size(), 3 * emb);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      Decoder::build_pair(res.embedding_of(edges[k].src),
                          res.embedding_of(edges[k].dst),
                          dec_ws.x.row(2 * k));
      Decoder::build_pair(res.embedding_of(edges[k].src),
                          res.embedding_of(negs[k]), dec_ws.x.row(2 * k + 1));
    }
    const Tensor& logits = dec.forward_into(dec_ws.x, dec_ws, precision_);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      samples.push_back({logits(2 * k, 0), true});
      samples.push_back({logits(2 * k + 1, 0), false});
    }
  }
  return average_precision(std::move(samples));
}

std::vector<double> collect_dt_samples(const data::Dataset& ds,
                                       const graph::BatchRange& range) {
  std::vector<double> out;
  std::unordered_map<graph::NodeId, double> last;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const auto& e = ds.graph.edge(i);
    for (graph::NodeId v : {e.src, e.dst}) {
      auto it = last.find(v);
      if (it != last.end()) out.push_back(std::max(0.0, e.ts - it->second));
      last[v] = e.ts;
    }
  }
  if (out.empty()) out.push_back(1.0);
  return out;
}

}  // namespace tgnn::core
