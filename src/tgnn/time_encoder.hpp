// Time encoders mapping a scalar time difference to a vector.
//
// The baseline encoder is Eq. 6: Phi(dt) = cos(omega * dt + phi) with
// learnable omega, phi — the Transformer-style functional time encoding of
// TGAT/TGN. The LUT encoder (lut_time_encoder.hpp) replaces it per §III-C.
//
// Both implement TimeEncoderBase so the model assembly and the FPGA
// simulator can swap them freely.
#pragma once

#include <span>
#include <vector>

#include "nn/parameter.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::core {

class TimeEncoderBase {
 public:
  virtual ~TimeEncoderBase() = default;

  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Encode a batch of time differences -> [m, dim].
  [[nodiscard]] virtual Tensor encode(const std::vector<double>& dts) const = 0;

  /// Encode one dt into `out` (|out| == dim). Hot path for per-neighbor use.
  virtual void encode_scalar(double dt, std::span<float> out) const = 0;

  /// Accumulate parameter gradients given upstream d(output).
  virtual void backward(const std::vector<double>& dts, const Tensor& dout) = 0;

  [[nodiscard]] virtual std::vector<nn::Parameter*> parameters() = 0;

  /// MACs consumed per encoded dt at inference (cos: dim mul+add treated as
  /// dim MACs; LUT: 0 — a table read).
  [[nodiscard]] virtual std::size_t macs_per_encode() const = 0;
};

/// Eq. 6: Phi(dt)_k = cos(omega_k * dt + phi_k).
class CosTimeEncoder final : public TimeEncoderBase {
 public:
  CosTimeEncoder(std::size_t dim, tgnn::Rng& rng);

  [[nodiscard]] std::size_t dim() const override { return omega.value.size(); }
  [[nodiscard]] Tensor encode(const std::vector<double>& dts) const override;
  void encode_scalar(double dt, std::span<float> out) const override;
  void backward(const std::vector<double>& dts, const Tensor& dout) override;
  [[nodiscard]] std::vector<nn::Parameter*> parameters() override;
  [[nodiscard]] std::size_t macs_per_encode() const override { return dim(); }

  nn::Parameter omega;  ///< [dim]
  nn::Parameter phi;    ///< [dim]
};

}  // namespace tgnn::core
