// LUT-based time encoder (§III-C).
//
// The cos encoder is nonlinear in dt, which blocks the "reverse the
// computation order" trick of pre-multiplying the encoding by the downstream
// weight matrices. The paper therefore quantizes dt into 128 intervals with
// equal occurrence counts (the input dt follows a power law — Fig. 1 — so
// equal-frequency bins are dense near zero) and learns one output vector per
// interval. At inference each entry's product with the weight matrices can
// be precomputed and stored on-chip, making the encode a 1-cycle table read.
//
// fit() computes the bin edges from training-set dt samples; entries are
// initialized from a fitted cos encoder so distillation starts close to the
// teacher.
#pragma once

#include "tgnn/time_encoder.hpp"

namespace tgnn::core {

class LutTimeEncoder final : public TimeEncoderBase {
 public:
  /// `bins` entries of width `dim`. Must call fit() before encode().
  LutTimeEncoder(std::size_t bins, std::size_t dim);

  /// Compute equal-frequency bin boundaries from observed dt samples and
  /// initialize each entry to `init` evaluated at the bin's median dt
  /// (pass nullptr for zero init).
  void fit(std::vector<double> dt_samples, const TimeEncoderBase* init);

  [[nodiscard]] bool fitted() const { return !edges_.empty(); }
  [[nodiscard]] std::size_t bins() const { return entries.value.rows(); }

  /// Index of the bin containing dt.
  [[nodiscard]] std::size_t bin_of(double dt) const;
  /// Upper boundary of each bin (size bins-1; last bin is open-ended).
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// Restore previously fitted boundaries (checkpoint loading). Must be
  /// strictly increasing and of size bins()-1.
  void restore_edges(std::vector<double> edges);

  [[nodiscard]] std::size_t dim() const override { return entries.value.cols(); }
  [[nodiscard]] Tensor encode(const std::vector<double>& dts) const override;
  void encode_scalar(double dt, std::span<float> out) const override;
  void backward(const std::vector<double>& dts, const Tensor& dout) override;
  [[nodiscard]] std::vector<nn::Parameter*> parameters() override;
  /// Table read: no arithmetic.
  [[nodiscard]] std::size_t macs_per_encode() const override { return 0; }

  /// Precompute W * entry_b for every bin b (the on-chip fused table the
  /// accelerator stores): returns [bins, W.rows()]. W is [out, dim].
  [[nodiscard]] Tensor fuse_with(const Tensor& w) const;

  /// On-chip bytes of the fused tables for the given fused output widths
  /// (for the FPGA resource estimator).
  [[nodiscard]] std::size_t fused_bytes(std::size_t total_out_dim) const {
    return bins() * total_out_dim * sizeof(float);
  }

  nn::Parameter entries;  ///< [bins, dim]

 private:
  std::vector<double> edges_;  ///< ascending upper bounds, size bins-1
};

}  // namespace tgnn::core
