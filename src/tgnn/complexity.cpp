#include "tgnn/complexity.hpp"

namespace tgnn::core {

ComplexityReport analyze(const ModelConfig& cfg) {
  const auto mem = static_cast<double>(cfg.mem_dim);
  const auto time = static_cast<double>(cfg.time_dim);
  const auto emb = static_cast<double>(cfg.emb_dim);
  const auto edge = static_cast<double>(cfg.edge_dim);
  const auto node = static_cast<double>(cfg.node_dim);
  const auto mr = static_cast<double>(cfg.num_neighbors);
  const auto n_eff = static_cast<double>(cfg.effective_neighbors());
  const bool lut = cfg.time_encoder == TimeEncoderKind::kLut;
  const bool sat = cfg.attention == AttentionKind::kSimplified;

  ComplexityReport r;

  // --- sample: read the vertex's neighbor-table row (id, eid, ts per slot).
  r.sample.mems = mr * 3.0;
  r.sample.macs = 0.0;

  // --- memory: read cached mail + own memory; encode mail age; run GRU.
  const double raw_mail = 2.0 * mem + edge;
  r.memory.mems = raw_mail + mem;
  // Time encoding of the mail age (cos: one fma per output element; LUT: 0).
  double gru_in = raw_mail + time;
  double enc_macs = lut ? 0.0 : time;
  // With the LUT encoder the Phi-slice x W_i* products are pre-fused into
  // the table (§III-C), so the GRU's effective input width shrinks by time.
  if (lut) gru_in -= time;
  r.memory.macs = enc_macs + 3.0 * (gru_in + mem) * mem;

  // --- gnn: attention over n_eff neighbors + feature transformation.
  // Per neighbor loads: neighbor memory + edge feature.
  r.gnn.mems = n_eff * (mem + edge);
  if (node > 0.0) r.gnn.mems += (n_eff + 1.0) * node;  // node features

  double kv_in = mem + edge + time;
  double q_in = mem + time;
  if (lut) {
    kv_in -= time;  // Phi x W pre-fused
    q_in -= time;
  }
  const double enc_per_nbr = lut ? 0.0 : time;
  double gnn_macs = 0.0;
  if (node > 0.0) gnn_macs += (n_eff + 1.0) * node * mem;  // W_s f projections
  if (sat) {
    // Logits: a + W_t dt over mr slots; V for kept slots only; weighted sum;
    // FTM.
    gnn_macs += mr * mr;                            // W_t dt
    gnn_macs += n_eff * (enc_per_nbr + kv_in * emb);  // Phi + V
    gnn_macs += n_eff * emb;                        // alpha-weighted sum
  } else {
    gnn_macs += q_in * emb + (lut ? 0.0 : time);     // q (+ Phi(0))
    gnn_macs += n_eff * (enc_per_nbr + 2.0 * kv_in * emb);  // Phi + K + V
    gnn_macs += n_eff * emb * 2.0;                   // q.k scores + alpha V
  }
  gnn_macs += (emb + mem) * emb;  // FTM
  r.gnn.macs = gnn_macs;

  // --- update: write back memory, mail, neighbor-table entry.
  r.update.mems = mem + raw_mail + 3.0;
  r.update.macs = 0.0;

  return r;
}

double bytes_per_embedding(const ModelConfig& cfg) {
  const ComplexityReport r = analyze(cfg);
  return r.total_mems() * 4.0;
}

}  // namespace tgnn::core
