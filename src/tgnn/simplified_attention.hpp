// Simplified temporal attention (Eq. 16) + temporal neighbor pruning
// (§III-B) — the paper's core model contribution.
//
//   alpha'(u) = Softmax(a + W_t * dt_u)
//
// where a is a learnable per-slot bias vector and W_t maps the node's
// time-difference vector dt_u = [t_u - t_v0, ..., t_u - t_v(mr-1)] to
// per-slot logit offsets. Slots are the mr timestamp-sorted entries of the
// vertex's FIFO neighbor table; missing entries are masked.
//
// Because the logits depend only on dt (not on neighbor features), they are
// available *before* any neighbor state is fetched. That enables:
//   * pruning — only the top-`budget` slots by logit get their V computed
//     (a linear cut in both MACs and DDR traffic), and
//   * prefetching — the accelerator schedules neighbor-memory loads from
//     the logits alone (Fig. 4, stage 7-(1) before stage 3).
//
// The two-phase API mirrors that: score() gives logits + the kept slots;
// aggregate() consumes V inputs for kept slots only.
#pragma once

#include "nn/linear.hpp"
#include "tgnn/config.hpp"

namespace tgnn::core {

class SimplifiedAttention {
 public:
  struct Scores {
    std::vector<float> logits;     ///< [mr], masked slots = -inf
    std::vector<std::size_t> keep; ///< indices of kept slots, ascending
    std::vector<double> dts;       ///< the dt vector used (padded)
  };

  struct Cache {
    Scores scores;
    std::vector<float> alpha;  ///< softmax over kept slots (size keep.size())
    Tensor v_in;               ///< [kept, kv_in_dim]
    Tensor v;                  ///< [kept, emb]
    Tensor attn;               ///< [1, emb]
    Tensor fo_in;              ///< [1, emb + mem]
  };

  struct InputGrads {
    Tensor dv_in;    ///< [kept, kv_in_dim]
    Tensor df_self;  ///< [1, mem]
  };

  SimplifiedAttention() = default;
  SimplifiedAttention(const ModelConfig& cfg, tgnn::Rng& rng);

  /// Number of neighbor slots mr.
  [[nodiscard]] std::size_t slots() const { return a.value.size(); }

  /// Phase 1: logits from time differences alone. `dts` holds one entry per
  /// *valid* neighbor (oldest -> newest, size <= mr); it is zero-padded to
  /// mr internally. `budget` = how many slots to keep (pruning); clipped to
  /// the number of valid slots.
  [[nodiscard]] Scores score(const std::vector<double>& dts,
                             std::size_t budget) const;

  /// Reusable intermediates for score_into.
  struct ScoreScratch {
    std::vector<float> feat;
    std::vector<std::size_t> order;
  };

  /// Allocation-free score(): fills `out` in place, reusing its vectors'
  /// capacity (and `ws` for the intermediates).
  void score_into(const std::vector<double>& dts, std::size_t budget,
                  ScoreScratch& ws, Scores& out) const;

  /// Phase 2: v_in rows correspond to scores.keep order. Returns h [1, emb].
  Tensor aggregate(std::span<const float> f_self, const Scores& scores,
                   const Tensor& v_in, Cache* cache = nullptr) const;

  /// Reusable buffers for aggregate_into; one per GNN worker thread.
  struct InferScratch {
    Tensor v;      ///< [kept, emb]
    Tensor alpha;  ///< [1, kept] kept-slot logits, softmaxed in place
    Tensor fo_in;  ///< [1, emb + mem]
  };

  /// Fused inference aggregate: h written straight into `out` (one row of
  /// the batch embeddings). No cache/backward; parity with aggregate()
  /// pinned to 1e-6 by tests/kernels.
  void aggregate_into(std::span<const float> f_self, const Scores& scores,
                      const Tensor& v_in, InferScratch& ws,
                      std::span<float> out) const;

  /// Reusable buffers for aggregate_batch_into (one per engine workspace).
  /// The QuantActs panels are touched only by the int8 path.
  struct BatchScratch {
    Tensor v;      ///< [total_kept, emb]
    Tensor fo_in;  ///< [n_nodes, emb + mem]
    kernels::QuantActs qv;   ///< quantized v_in panel
    kernels::QuantActs qfo;  ///< quantized FTM input panel
  };

  /// Batched inference aggregate over a whole micro-batch: one wv / wo
  /// GEMM instead of one per node. f_self: [n_nodes, mem_dim] rows of
  /// f'_i; v_in: every node's kept-slot rows packed into [total_kept,
  /// kv_in_dim] with CSR offsets `seg`; `logits`: the kept slots' logits
  /// packed the same way, softmaxed in place (it holds alpha afterwards —
  /// same in-place convention as aggregate_into's scratch). Row i of `out`
  /// (resized to [n_nodes, emb]) receives h_i. Bit-identical to n_nodes
  /// aggregate_into calls.
  /// Non-fp32 precisions (require prepare(p)) swap the wv / wo GEMMs for
  /// quantized variants; logits depend only on dt (never on quantized
  /// values), and the softmax / weighted rowsum stay fp32.
  void aggregate_batch_into(const Tensor& f_self, std::span<float> logits,
                            const Tensor& v_in,
                            std::span<const std::size_t> seg, BatchScratch& ws,
                            Tensor& out,
                            kernels::Precision p = kernels::Precision::kFp32)
      const;

  /// Snapshot wv/wo for a reduced-precision path (a and wt feed only the
  /// dt-based logits, which stay fp32).
  void prepare(kernels::Precision p) const;

  InputGrads backward(const Cache& cache, const Tensor& dh);

  /// Distillation hook: adds dlogits (over all mr slots; masked slots
  /// ignored) into the a / W_t gradients. Used by the trainer to apply the
  /// soft-cross-entropy loss of Eq. 17 directly on the logits.
  void backward_logits(const Scores& scores, std::span<const float> dlogits);

  [[nodiscard]] std::vector<nn::Parameter*> parameters();

  nn::Parameter a;   ///< [mr] shared attention bias
  nn::Parameter wt;  ///< [mr, mr] time-offset matrix
  nn::Linear wv;     ///< kv_in_dim -> emb
  nn::Linear wo;     ///< emb + mem -> emb (FTM)
};

}  // namespace tgnn::core
