// Self-supervised training of TGN-attn models, with the paper's knowledge
// distillation (§III-A, Eq. 17).
//
// Objective per batch of temporal edges:
//   * link-prediction BCE: observed (u, v) pairs are positives; (u, v')
//     with a random destination v' are negatives; both scored by the
//     decoder on the dynamic embeddings.
//   * when a teacher model is supplied and the student uses simplified
//     attention: soft cross-entropy at temperature T between the student's
//     logits a + W_t dt and the teacher's vanilla attention logits over the
//     same neighbor slots.
//
// Gradient flow: decoder -> embeddings -> attention (incl. time encoder and
// a/W_t) -> target node memory -> GRU updater (one step; memory is detached
// across batches as in TGN). Neighbor memories and edge features are treated
// as constants within the step.
//
// The trainer maintains its own RuntimeState (and one for the teacher) and
// streams the training split chronologically each epoch.
#pragma once

#include <optional>

#include "nn/optim.hpp"
#include "tgnn/inference.hpp"
#include "util/rng.hpp"

namespace tgnn::core {

struct TrainOptions {
  std::size_t epochs = 3;
  std::size_t batch_size = 200;
  double lr = 1e-3;
  double grad_clip = 5.0;

  /// Distillation (active only when teacher != nullptr and the model uses
  /// simplified attention).
  const TgnModel* teacher = nullptr;
  double distill_weight = 1.0;
  double temperature = 1.0;  ///< paper sets T = 1

  std::uint64_t seed = 7;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_loss;      ///< mean total loss per epoch
  std::vector<double> epoch_bce;       ///< BCE component
  std::vector<double> epoch_distill;   ///< distillation component
  double train_ap = 0.0;               ///< AP of last epoch's online scores
};

class Trainer {
 public:
  Trainer(TgnModel& model, Decoder& decoder, const data::Dataset& ds,
          TrainOptions opts);

  TrainStats train();

 private:
  struct BatchLoss {
    double bce = 0.0;
    double distill = 0.0;
  };
  BatchLoss train_batch(const graph::BatchRange& r,
                        std::vector<ScoredSample>* score_sink);

  TgnModel& model_;
  Decoder& decoder_;
  const data::Dataset& ds_;
  TrainOptions opts_;
  RuntimeState state_;
  std::optional<InferenceEngine> teacher_engine_;
  nn::ParamStore all_params_;
  std::unique_ptr<nn::Adam> adam_;
  tgnn::Rng rng_;
  std::vector<graph::NodeId> dst_pool_;
};

/// Convenience pipeline used by Table II / Fig. 7: trains the model
/// (optionally distilling from `teacher`), then measures test AP with a
/// fresh engine (reset -> warm up through train+val -> evaluate on test).
struct FitResult {
  TrainStats stats;
  double test_ap = 0.0;
};
FitResult fit_and_eval(TgnModel& model, Decoder& decoder,
                       const data::Dataset& ds, TrainOptions opts);

}  // namespace tgnn::core
