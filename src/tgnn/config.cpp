#include "tgnn/config.hpp"

#include <stdexcept>

namespace tgnn::core {

ModelConfig baseline_config(std::size_t edge_dim, std::size_t node_dim) {
  ModelConfig cfg;
  cfg.edge_dim = edge_dim;
  cfg.node_dim = node_dim;
  return cfg;
}

ModelConfig np_config(char size, std::size_t edge_dim, std::size_t node_dim) {
  ModelConfig cfg = baseline_config(edge_dim, node_dim);
  cfg.attention = AttentionKind::kSimplified;
  cfg.time_encoder = TimeEncoderKind::kLut;
  switch (size) {
    case 'L': cfg.prune_budget = 6; break;
    case 'M': cfg.prune_budget = 4; break;
    case 'S': cfg.prune_budget = 2; break;
    default: throw std::invalid_argument("np_config: size must be L/M/S");
  }
  return cfg;
}

std::vector<ModelPreset> presets(std::size_t edge_dim, std::size_t node_dim) {
  std::vector<ModelPreset> out;
  ModelConfig cfg = baseline_config(edge_dim, node_dim);
  out.push_back({"Baseline", cfg});

  cfg.attention = AttentionKind::kSimplified;
  out.push_back({"+SAT", cfg});

  cfg.time_encoder = TimeEncoderKind::kLut;
  out.push_back({"+LUT", cfg});

  cfg.prune_budget = 6;
  out.push_back({"+NP(L)", cfg});
  cfg.prune_budget = 4;
  out.push_back({"+NP(M)", cfg});
  cfg.prune_budget = 2;
  out.push_back({"+NP(S)", cfg});
  return out;
}

}  // namespace tgnn::core
