// Downstream temporal link-prediction decoder: a 2-layer MLP scoring a pair
// of dynamic node embeddings. This is the "external downstream edge
// classifier" of §II — it consumes TGNN output embeddings; the TGNN itself
// is trained end-to-end through it by self-supervision on temporal edges.
//
// Input per pair: [h_u || h_v || h_u .* h_v] — the elementwise product term
// gives the MLP a direct affinity channel (without it, a 2-layer MLP
// struggles to express dot-product-like similarity).
#pragma once

#include "nn/linear.hpp"
#include "tgnn/config.hpp"

namespace tgnn::core {

class Decoder {
 public:
  struct Cache {
    Tensor x;       ///< [m, 3*emb]
    Tensor hidden;  ///< [m, hid] post-ReLU
  };

  Decoder() = default;
  Decoder(const ModelConfig& cfg, tgnn::Rng& rng);

  /// Build one input row [h_u || h_v || h_u .* h_v] into `out` (3*emb).
  static void build_pair(std::span<const float> hu, std::span<const float> hv,
                         std::span<float> out);

  /// Given d(input row) and the pair, accumulate into dh_u / dh_v
  /// (routes the concat and product slices).
  static void route_pair_grad(std::span<const float> dx,
                              std::span<const float> hu,
                              std::span<const float> hv, std::span<float> dhu,
                              std::span<float> dhv);

  /// x rows = build_pair outputs; returns logits [m, 1].
  Tensor forward(const Tensor& x, Cache* cache = nullptr) const;

  /// Returns d(x): [m, 3*emb].
  Tensor backward(const Cache& cache, const Tensor& dlogits);

  /// Score one pair without allocating a batch.
  [[nodiscard]] double score(std::span<const float> hu,
                             std::span<const float> hv) const;

  /// Reusable buffers for the fused scoring/forward path. The QuantActs
  /// panels are touched only by the int8 path.
  struct InferScratch {
    Tensor x;       ///< [m, 3*emb]
    Tensor hidden;  ///< [m, hid]
    Tensor logits;  ///< [m, 1]
    kernels::QuantActs qx;  ///< quantized pair-input panel
    kernels::QuantActs qh;  ///< quantized post-ReLU hidden panel
  };

  /// Fused inference forward (affine+ReLU kernel, no cache): logits written
  /// into ws.logits, which is also returned. Non-fp32 precisions (require
  /// prepare(p)) run both MLP GEMMs quantized; the ReLU between them and
  /// the logits are fp32.
  const Tensor& forward_into(const Tensor& x, InferScratch& ws,
                             kernels::Precision p =
                                 kernels::Precision::kFp32) const;

  /// Snapshot l1/l2 for a reduced-precision path (see nn::Linear).
  void prepare(kernels::Precision p) const;

  /// score(), allocation-free: reuses `ws` across calls.
  [[nodiscard]] double score_with(InferScratch& ws, std::span<const float> hu,
                                  std::span<const float> hv) const;

  [[nodiscard]] std::vector<nn::Parameter*> parameters();

  nn::Linear l1;  ///< 3*emb -> hidden
  nn::Linear l2;  ///< hidden -> 1
};

}  // namespace tgnn::core
