#include "tgnn/model.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace tgnn::core {

TgnModel::TgnModel(const ModelConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
  tgnn::Rng rng(seed);

  if (cfg.time_encoder == TimeEncoderKind::kCos) {
    time_enc_ = std::make_unique<CosTimeEncoder>(cfg.time_dim, rng);
  } else {
    auto lut = std::make_unique<LutTimeEncoder>(cfg.lut_bins, cfg.time_dim);
    lut_ = lut.get();
    time_enc_ = std::move(lut);
  }

  updater_ = MemoryUpdater(cfg, rng);

  if (cfg.attention == AttentionKind::kVanilla)
    vanilla_ = std::make_unique<VanillaAttention>(cfg, rng);
  else
    sat_ = std::make_unique<SimplifiedAttention>(cfg, rng);

  if (cfg.node_dim > 0)
    ws_ = std::make_unique<nn::Linear>("node_proj", cfg.node_dim, cfg.mem_dim,
                                       rng);

  for (auto* p : time_enc_->parameters()) params_.add(p);
  params_.add_all(updater_.parameters());
  if (vanilla_) params_.add_all(vanilla_->parameters());
  if (sat_) params_.add_all(sat_->parameters());
  if (ws_) params_.add_all(ws_->parameters());
}

void TgnModel::fit_lut(const std::vector<double>& dt_samples) {
  if (!lut_) return;
  tgnn::Rng rng(0xF17);
  CosTimeEncoder init(cfg_.time_dim, rng);
  lut_->fit(dt_samples, &init);
}

void TgnModel::f_prime(std::span<const float> s, std::span<const float> f_node,
                       std::span<float> out) const {
  if (out.size() != cfg_.mem_dim)
    throw std::invalid_argument("f_prime: bad output size");
  std::copy(s.begin(), s.end(), out.begin());
  if (ws_) {
    if (f_node.size() != cfg_.node_dim)
      throw std::invalid_argument("f_prime: bad node-feature size");
    // out += W_s f + b_s (row-vector affine, done scalar: node projection is
    // once per involved vertex, not hot).
    for (std::size_t o = 0; o < cfg_.mem_dim; ++o) {
      float acc = ws_->b.value[o];
      for (std::size_t i = 0; i < cfg_.node_dim; ++i)
        acc += ws_->w.value(o, i) * f_node[i];
      out[o] += acc;
    }
  }
}

void TgnModel::prepare_precision(kernels::Precision p) const {
  if (p == kernels::Precision::kFp32) return;
  updater_.prepare(p);
  if (vanilla_) vanilla_->prepare(p);
  if (sat_) sat_->prepare(p);
}

}  // namespace tgnn::core
