#include "tgnn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "tgnn/message.hpp"
#include "util/rng.hpp"

namespace tgnn::core {

Trainer::Trainer(TgnModel& model, Decoder& decoder, const data::Dataset& ds,
                 TrainOptions opts)
    : model_(model), decoder_(decoder), ds_(ds), opts_(opts),
      state_(ds.graph.num_nodes(), model.config(), /*use_fifo=*/true),
      rng_(opts.seed) {
  // Fit the LUT encoder's bins on training-stream time gaps before any
  // parameter sees a gradient.
  if (model_.lut_encoder() && !model_.lut_encoder()->fitted())
    model_.fit_lut(collect_dt_samples(ds_, ds_.train_range()));

  if (opts_.teacher) {
    if (model_.config().attention != AttentionKind::kSimplified)
      throw std::invalid_argument(
          "Trainer: distillation requires a simplified-attention student");
    if (opts_.teacher->config().attention != AttentionKind::kVanilla)
      throw std::invalid_argument("Trainer: teacher must use vanilla attention");
    teacher_engine_.emplace(*opts_.teacher, ds_, /*use_fifo=*/true);
  }

  all_params_.add_all(model_.params().params());
  for (auto* p : decoder_.parameters()) all_params_.add(p);
  nn::Adam::Options aopts;
  aopts.lr = opts_.lr;
  adam_ = std::make_unique<nn::Adam>(all_params_, aopts);

  std::set<graph::NodeId> dsts;
  for (const auto& e : ds_.graph.edges()) dsts.insert(e.dst);
  dst_pool_.assign(dsts.begin(), dsts.end());
}

TrainStats Trainer::train() {
  TrainStats stats;
  const auto batches = ds_.graph.fixed_size_batches(
      ds_.train_range().begin, ds_.train_range().end, opts_.batch_size);
  for (std::size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    state_.reset();
    if (teacher_engine_) teacher_engine_->reset();
    double ep_bce = 0.0, ep_dist = 0.0;
    std::vector<ScoredSample> scores;
    const bool last_epoch = epoch + 1 == opts_.epochs;
    for (const auto& b : batches) {
      const BatchLoss l = train_batch(b, last_epoch ? &scores : nullptr);
      ep_bce += l.bce;
      ep_dist += l.distill;
    }
    ep_bce /= static_cast<double>(batches.size());
    ep_dist /= static_cast<double>(batches.size());
    stats.epoch_bce.push_back(ep_bce);
    stats.epoch_distill.push_back(ep_dist);
    stats.epoch_loss.push_back(ep_bce + ep_dist);
    if (last_epoch && !scores.empty())
      stats.train_ap = average_precision(std::move(scores));
    if (opts_.verbose)
      std::printf("  epoch %zu: bce=%.4f distill=%.4f\n", epoch + 1, ep_bce,
                  ep_dist);
  }
  return stats;
}

Trainer::BatchLoss Trainer::train_batch(const graph::BatchRange& r,
                                        std::vector<ScoredSample>* score_sink) {
  const ModelConfig& cfg = model_.config();
  const auto edges = ds_.graph.edges(r);
  BatchLoss out;
  if (edges.empty()) return out;

  // ---- unique involved vertices (+ negatives) with event times.
  std::vector<graph::NodeId> nodes;
  std::vector<double> t_event;
  std::unordered_map<graph::NodeId, std::size_t> index;
  auto touch = [&](graph::NodeId v, double ts) {
    auto [it, inserted] = index.try_emplace(v, nodes.size());
    if (inserted) {
      nodes.push_back(v);
      t_event.push_back(ts);
    } else {
      t_event[it->second] = std::max(t_event[it->second], ts);
    }
  };
  for (const auto& e : edges) {
    touch(e.src, e.ts);
    touch(e.dst, e.ts);
  }
  const std::size_t num_real = nodes.size();
  std::vector<graph::NodeId> negs(edges.size());
  const double t_end = edges.back().ts;
  for (auto& v : negs) {
    v = dst_pool_[rng_.uniform_int(dst_pool_.size())];
    touch(v, t_end);
  }
  const std::size_t n_nodes = nodes.size();

  // ---- sample (before inserting this batch's edges).
  std::vector<std::vector<graph::NeighborHit>> nbrs(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    state_.neighbors_into(nodes[i], t_event[i], cfg.num_neighbors, nbrs[i]);

  // ---- memory stage with cache.
  std::vector<std::size_t> mail_rows;
  std::vector<long> mail_row_of(n_nodes, -1);
  for (std::size_t i = 0; i < n_nodes; ++i)
    if (state_.mailbox.has_mail(nodes[i]) && state_.mail_valid[nodes[i]]) {
      mail_row_of[i] = static_cast<long>(mail_rows.size());
      mail_rows.push_back(i);
    }
  nn::GruCell::Cache gru_cache;
  std::vector<double> mail_dts(mail_rows.size());
  Tensor s_new;
  if (!mail_rows.empty()) {
    Tensor x(mail_rows.size(), cfg.gru_in_dim());
    Tensor h(mail_rows.size(), cfg.mem_dim);
    for (std::size_t k = 0; k < mail_rows.size(); ++k) {
      const std::size_t i = mail_rows[k];
      const graph::NodeId v = nodes[i];
      const auto mail = state_.mailbox.mail(v);
      mail_dts[k] = std::max(0.0, t_event[i] - state_.mailbox.mail_ts(v));
      auto row = x.row(k);
      std::copy(mail.begin(), mail.end(), row.begin());
      model_.time_encoder().encode_scalar(
          mail_dts[k], row.subspan(mail.size(), cfg.time_dim));
      const auto mem = state_.memory.get(v);
      std::copy(mem.begin(), mem.end(), h.row(k).begin());
    }
    s_new = model_.updater().forward(x, h, &gru_cache);
  }
  auto memory_of = [&](graph::NodeId v) -> std::span<const float> {
    auto it = index.find(v);
    if (it != index.end() && mail_row_of[it->second] >= 0)
      return s_new.row(static_cast<std::size_t>(mail_row_of[it->second]));
    return state_.memory.get(v);
  };
  auto node_feat_of = [&](graph::NodeId v) -> std::span<const float> {
    if (cfg.node_dim == 0) return {};
    return ds_.node_features.row(v);
  };

  // ---- f' for every node (cache for W_s backward).
  Tensor f_prime(n_nodes, cfg.mem_dim);
  for (std::size_t i = 0; i < n_nodes; ++i)
    model_.f_prime(memory_of(nodes[i]), node_feat_of(nodes[i]),
                   f_prime.row(i));

  // ---- attention forward with caches.
  std::vector<VanillaAttention::Cache> van_caches;
  std::vector<SimplifiedAttention::Cache> sat_caches;
  if (model_.vanilla())
    van_caches.resize(n_nodes);
  else
    sat_caches.resize(n_nodes);
  Tensor embeddings(n_nodes, cfg.emb_dim);
  // Per-node dt lists (neighbor ages) reused in backward.
  std::vector<std::vector<double>> nbr_dts(n_nodes);

  Tensor fpj(1, cfg.mem_dim);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const auto& nb = nbrs[i];
    nbr_dts[i].resize(nb.size());
    for (std::size_t j = 0; j < nb.size(); ++j)
      nbr_dts[i][j] = std::max(0.0, t_event[i] - nb[j].ts);

    Tensor h;
    if (const auto* att = model_.vanilla()) {
      AttnNodeInput in;
      in.q_in = Tensor(1, cfg.q_in_dim());
      {
        auto q = in.q_in.row(0);
        std::copy(f_prime.row(i).begin(), f_prime.row(i).end(), q.begin());
        model_.time_encoder().encode_scalar(0.0,
                                            q.subspan(cfg.mem_dim, cfg.time_dim));
      }
      in.kv_in = Tensor(nb.size(), cfg.kv_in_dim());
      for (std::size_t j = 0; j < nb.size(); ++j) {
        auto row = in.kv_in.row(j);
        model_.f_prime(memory_of(nb[j].node), node_feat_of(nb[j].node),
                       fpj.row(0));
        std::copy(fpj.row(0).begin(), fpj.row(0).end(), row.begin());
        if (cfg.edge_dim > 0) {
          const auto ef = ds_.edge_features.row(nb[j].eid);
          std::copy(ef.begin(), ef.end(), row.begin() + cfg.mem_dim);
        }
        model_.time_encoder().encode_scalar(
            nbr_dts[i][j], row.subspan(cfg.mem_dim + cfg.edge_dim, cfg.time_dim));
      }
      h = att->forward(f_prime.row(i), in, &van_caches[i]);
    } else {
      const auto* sat = model_.simplified();
      const auto scores = sat->score(nbr_dts[i], cfg.prune_budget);
      Tensor v_in(scores.keep.size(), cfg.kv_in_dim());
      for (std::size_t k = 0; k < scores.keep.size(); ++k) {
        const auto& hit = nb[scores.keep[k]];
        auto row = v_in.row(k);
        model_.f_prime(memory_of(hit.node), node_feat_of(hit.node), fpj.row(0));
        std::copy(fpj.row(0).begin(), fpj.row(0).end(), row.begin());
        if (cfg.edge_dim > 0) {
          const auto ef = ds_.edge_features.row(hit.eid);
          std::copy(ef.begin(), ef.end(), row.begin() + cfg.mem_dim);
        }
        model_.time_encoder().encode_scalar(
            nbr_dts[i][scores.keep[k]],
            row.subspan(cfg.mem_dim + cfg.edge_dim, cfg.time_dim));
      }
      h = sat->aggregate(f_prime.row(i), scores, v_in, &sat_caches[i]);
    }
    std::copy(h.row(0).begin(), h.row(0).end(), embeddings.row(i).begin());
  }

  // ---- decoder + BCE.
  const std::size_t n_pairs = 2 * edges.size();
  Tensor pairs(n_pairs, 3 * cfg.emb_dim);
  Tensor targets(n_pairs, 1);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const auto hu = embeddings.row(index.at(edges[k].src));
    const auto hv = embeddings.row(index.at(edges[k].dst));
    const auto hn = embeddings.row(index.at(negs[k]));
    Decoder::build_pair(hu, hv, pairs.row(k));
    targets(k, 0) = 1.0f;
    Decoder::build_pair(hu, hn, pairs.row(edges.size() + k));
    targets(edges.size() + k, 0) = 0.0f;
  }
  Decoder::Cache dec_cache;
  Tensor logits = decoder_.forward(pairs, &dec_cache);
  const auto bce = nn::bce_with_logits(logits, targets);
  out.bce = bce.value;
  if (score_sink)
    for (std::size_t k = 0; k < n_pairs; ++k)
      score_sink->push_back({logits(k, 0), targets(k, 0) > 0.5f});

  // ---- distillation loss on attention logits (Eq. 17).
  // Computed before the backward pass so its gradient joins the same step.
  struct DistillItem {
    std::size_t node_row;
    std::vector<float> dlogits;  ///< over all mr slots
  };
  std::vector<DistillItem> distill_items;
  if (teacher_engine_ && model_.simplified()) {
    const auto& teacher = *opts_.teacher;
    auto& tstate = teacher_engine_->state();
    auto t_memory_of = [&](graph::NodeId v) -> std::span<const float> {
      return tstate.memory.get(v);
    };
    Tensor tfp(1, cfg.mem_dim);
    Tensor tfpj(1, cfg.mem_dim);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const auto& nb = nbrs[i];
      if (nb.size() < 2) continue;  // nothing to align on 0/1 slots
      // Teacher logits over the same chronological slots, from the
      // teacher's own state.
      teacher.f_prime(t_memory_of(nodes[i]), node_feat_of(nodes[i]),
                      tfp.row(0));
      AttnNodeInput tin;
      tin.q_in = Tensor(1, cfg.q_in_dim());
      {
        auto q = tin.q_in.row(0);
        std::copy(tfp.row(0).begin(), tfp.row(0).end(), q.begin());
        teacher.time_encoder().encode_scalar(
            0.0, q.subspan(cfg.mem_dim, cfg.time_dim));
      }
      tin.kv_in = Tensor(nb.size(), cfg.kv_in_dim());
      for (std::size_t j = 0; j < nb.size(); ++j) {
        auto row = tin.kv_in.row(j);
        teacher.f_prime(t_memory_of(nb[j].node), node_feat_of(nb[j].node),
                        tfpj.row(0));
        std::copy(tfpj.row(0).begin(), tfpj.row(0).end(), row.begin());
        if (cfg.edge_dim > 0) {
          const auto ef = ds_.edge_features.row(nb[j].eid);
          std::copy(ef.begin(), ef.end(), row.begin() + cfg.mem_dim);
        }
        teacher.time_encoder().encode_scalar(
            nbr_dts[i][j], row.subspan(cfg.mem_dim + cfg.edge_dim, cfg.time_dim));
      }
      const auto t_logits = teacher.vanilla()->logits(tfp.row(0), tin);

      const auto& s_scores = sat_caches[i].scores;
      Tensor srow(1, nb.size()), trow(1, nb.size());
      for (std::size_t j = 0; j < nb.size(); ++j) {
        srow(0, j) = s_scores.logits[j];
        trow(0, j) = t_logits[j];
      }
      const auto dist =
          nn::soft_cross_entropy(srow, trow, opts_.temperature);
      out.distill += opts_.distill_weight * dist.value;
      DistillItem item;
      item.node_row = i;
      item.dlogits.assign(model_.simplified()->slots(), 0.0f);
      for (std::size_t j = 0; j < nb.size(); ++j)
        item.dlogits[j] =
            static_cast<float>(opts_.distill_weight) * dist.grad(0, j);
      distill_items.push_back(std::move(item));
    }
    out.distill /= static_cast<double>(std::max<std::size_t>(1, n_nodes));
  }

  // ================= backward =================
  all_params_.zero_grad();

  // Decoder -> per-node embedding grads.
  Tensor dpairs = decoder_.backward(dec_cache, bce.grad);
  Tensor dh(n_nodes, cfg.emb_dim);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    const std::size_t iu = index.at(edges[k].src);
    const std::size_t iv = index.at(edges[k].dst);
    const std::size_t in_ = index.at(negs[k]);
    Decoder::route_pair_grad(dpairs.row(k), embeddings.row(iu),
                             embeddings.row(iv), dh.row(iu), dh.row(iv));
    Decoder::route_pair_grad(dpairs.row(edges.size() + k), embeddings.row(iu),
                             embeddings.row(in_), dh.row(iu), dh.row(in_));
  }

  // Attention backward per node -> df' and time-encoder grads.
  Tensor df_prime(n_nodes, cfg.mem_dim);
  Tensor dh_row(1, cfg.emb_dim);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::copy(dh.row(i).begin(), dh.row(i).end(), dh_row.row(0).begin());
    if (auto* att = model_.vanilla()) {
      auto g = att->backward(van_caches[i], dh_row);
      for (std::size_t d = 0; d < cfg.mem_dim; ++d)
        df_prime(i, d) += g.dq_in(0, d) + g.df_self(0, d);
      // Time-encoder grads: q slice at dt = 0, kv slices at neighbor ages.
      {
        Tensor dphi(1, cfg.time_dim);
        for (std::size_t d = 0; d < cfg.time_dim; ++d)
          dphi(0, d) = g.dq_in(0, cfg.mem_dim + d);
        model_.time_encoder().backward({0.0}, dphi);
      }
      if (g.dkv_in.rows() > 0) {
        Tensor dphi(g.dkv_in.rows(), cfg.time_dim);
        for (std::size_t j = 0; j < g.dkv_in.rows(); ++j)
          for (std::size_t d = 0; d < cfg.time_dim; ++d)
            dphi(j, d) = g.dkv_in(j, cfg.mem_dim + cfg.edge_dim + d);
        model_.time_encoder().backward(nbr_dts[i], dphi);
      }
    } else {
      auto* sat = model_.simplified();
      auto g = sat->backward(sat_caches[i], dh_row);
      for (std::size_t d = 0; d < cfg.mem_dim; ++d)
        df_prime(i, d) += g.df_self(0, d);
      const auto& keep = sat_caches[i].scores.keep;
      if (!keep.empty()) {
        Tensor dphi(keep.size(), cfg.time_dim);
        std::vector<double> kept_dts(keep.size());
        for (std::size_t k = 0; k < keep.size(); ++k) {
          kept_dts[k] = nbr_dts[i][keep[k]];
          for (std::size_t d = 0; d < cfg.time_dim; ++d)
            dphi(k, d) = g.dv_in(k, cfg.mem_dim + cfg.edge_dim + d);
        }
        model_.time_encoder().backward(kept_dts, dphi);
      }
    }
  }

  // Distillation gradient directly into a / W_t.
  for (const auto& item : distill_items)
    model_.simplified()->backward_logits(sat_caches[item.node_row].scores,
                                         item.dlogits);

  // f' -> node memory (+ W_s).
  if (auto* ws = model_.node_proj()) {
    Tensor node_feats(n_nodes, cfg.node_dim);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const auto f = ds_.node_features.row(nodes[i]);
      std::copy(f.begin(), f.end(), node_feats.row(i).begin());
    }
    ws->backward(node_feats, df_prime);  // also yields d(node feats): dropped
  }
  if (!mail_rows.empty()) {
    Tensor ds_new(mail_rows.size(), cfg.mem_dim);
    for (std::size_t k = 0; k < mail_rows.size(); ++k) {
      const std::size_t i = mail_rows[k];
      std::copy(df_prime.row(i).begin(), df_prime.row(i).end(),
                ds_new.row(k).begin());
    }
    auto g = model_.updater().backward(gru_cache, ds_new);
    // Route the GRU input's time-encoding slice into the encoder.
    Tensor dphi(mail_rows.size(), cfg.time_dim);
    for (std::size_t k = 0; k < mail_rows.size(); ++k)
      for (std::size_t d = 0; d < cfg.time_dim; ++d)
        dphi(k, d) = g.dx(k, cfg.raw_mail_dim() + d);
    model_.time_encoder().backward(mail_dts, dphi);
  }

  all_params_.clip_grad_norm(opts_.grad_clip);
  adam_->step();

  // ================= commit state =================
  // Negatives were embedded with transiently updated memory but do not
  // commit (mirrors InferenceEngine::process_batch).
  for (std::size_t k = 0; k < mail_rows.size(); ++k) {
    const std::size_t i = mail_rows[k];
    if (i >= num_real) continue;
    state_.memory.set(nodes[i], s_new.row(k), t_event[i]);
    state_.mail_valid[nodes[i]] = 0;
  }
  std::vector<float> raw(cfg.raw_mail_dim());
  for (const auto& e : edges) {
    const auto fe = cfg.edge_dim > 0
                        ? std::span<const float>(ds_.edge_features.row(e.eid))
                        : std::span<const float>{};
    build_raw_mail(state_.memory.get(e.src), state_.memory.get(e.dst), fe, raw);
    state_.mailbox.put(e.src, raw, e.ts);
    state_.mail_valid[e.src] = 1;
    build_raw_mail(state_.memory.get(e.dst), state_.memory.get(e.src), fe, raw);
    state_.mailbox.put(e.dst, raw, e.ts);
    state_.mail_valid[e.dst] = 1;
  }
  for (const auto& e : edges) state_.insert_edge(e);

  // Advance the teacher's state over the same batch (structure-only; the
  // teacher is frozen).
  if (teacher_engine_) teacher_engine_->warmup({r.begin, r.end}, r.size());

  return out;
}

FitResult fit_and_eval(TgnModel& model, Decoder& decoder,
                       const data::Dataset& ds, TrainOptions opts) {
  FitResult out;
  Trainer trainer(model, decoder, ds, opts);
  out.stats = trainer.train();
  InferenceEngine engine(model, ds, /*use_fifo=*/true);
  engine.warmup({0, ds.val_end}, opts.batch_size);
  tgnn::Rng rng(opts.seed + 1);
  out.test_ap = engine.evaluate_ap(ds.test_range(), decoder, opts.batch_size,
                                   rng);
  return out;
}

}  // namespace tgnn::core
