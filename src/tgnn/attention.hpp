// Vanilla temporal attention aggregator (Eq. 11-15) — the teacher model's
// GNN layer and the paper's baseline.
//
// Per target node i with n timestamp-sorted temporal neighbors:
//   q     = W_q [f'_i || Phi(0)] + b_q
//   K_j   = W_k [f'_j || e_ij || Phi(dt_j)] + b_k
//   V_j   = W_v [f'_j || e_ij || Phi(dt_j)] + b_v
//   alpha = softmax(q K^T / sqrt(n))
//   attn  = alpha V
//   h_i   = W_o [attn || f'_i] + b_o            (Feature Transformation)
//
// The final projection is the paper's FTM ("transform(h_v, s_v, W)").
// Nodes with zero neighbors produce attn = 0 and still pass through the FTM,
// so cold-start vertices get an embedding derived from their own state.
//
// forward() caches everything backward() needs; backward() returns gradients
// w.r.t. the q-input row and the kv-input rows so the model can route the
// slices (self state, edge features, time encodings) to their producers.
#pragma once

#include "nn/linear.hpp"
#include "tgnn/config.hpp"

namespace tgnn::core {

/// Per-node attention workspace (inputs assembled by the model).
struct AttnNodeInput {
  Tensor q_in;   ///< [1, q_in_dim] = [f'_i || Phi(0)]
  Tensor kv_in;  ///< [n, kv_in_dim] = rows [f'_j || e_ij || Phi(dt_j)]
};

class VanillaAttention {
 public:
  struct Cache {
    AttnNodeInput in;
    Tensor q;       ///< [1, emb]
    Tensor k;       ///< [n, emb]
    Tensor v;       ///< [n, emb]
    Tensor logits;  ///< [1, n] (scaled)
    Tensor alpha;   ///< [1, n]
    Tensor attn;    ///< [1, emb]
    Tensor fo_in;   ///< [1, emb + mem] = [attn || f'_i]
  };

  struct InputGrads {
    Tensor dq_in;   ///< [1, q_in_dim]
    Tensor dkv_in;  ///< [n, kv_in_dim]
    Tensor df_self; ///< [1, mem] — gradient reaching f'_i via the FTM skip path
  };

  VanillaAttention() = default;
  VanillaAttention(const ModelConfig& cfg, tgnn::Rng& rng);

  /// f_self: the target's f'_i (length mem_dim). Returns h_i [1, emb].
  Tensor forward(std::span<const float> f_self, const AttnNodeInput& in,
                 Cache* cache = nullptr) const;

  /// Reusable buffers for forward_into; one per GNN worker thread (lives in
  /// the engine's BatchWorkspace::GnnScratch).
  struct InferScratch {
    Tensor q;      ///< [1, emb]
    Tensor k;      ///< [n, emb]
    Tensor v;      ///< [n, emb]
    Tensor alpha;  ///< [1, n] logits, softmaxed in place
    Tensor fo_in;  ///< [1, emb + mem]
  };

  /// Fused inference forward: h_i written straight into `out` (one row of
  /// the batch embeddings), all intermediates in `ws`. No cache/backward;
  /// parity with forward() pinned to 1e-6 by tests/kernels.
  void forward_into(std::span<const float> f_self, const AttnNodeInput& in,
                    InferScratch& ws, std::span<float> out) const;

  /// Reusable buffers for forward_batch_into (one per engine workspace).
  /// The QuantActs panels are touched only by the int8 path.
  struct BatchScratch {
    Tensor q;      ///< [n_nodes, emb]
    Tensor k;      ///< [total, emb]
    Tensor v;      ///< [total, emb]
    Tensor fo_in;  ///< [n_nodes, emb + mem]
    std::vector<float> alpha;  ///< [total] packed logits -> alpha
    kernels::QuantActs qq;   ///< quantized q_in panel
    kernels::QuantActs qkv;  ///< quantized kv_in panel (shared by wk and wv)
    kernels::QuantActs qfo;  ///< quantized FTM input panel
  };

  /// Batched inference forward over a whole micro-batch: one projection
  /// GEMM per weight matrix instead of one per node. f_self: [n_nodes,
  /// mem_dim] rows of f'_i; q_in: [n_nodes, q_in_dim]; kv_in: every node's
  /// neighbor rows packed into [total, kv_in_dim] with CSR offsets `seg`
  /// (n_nodes + 1 entries). Row i of `out` (resized to [n_nodes, emb])
  /// receives h_i. Bit-identical to n_nodes forward_into calls — pinned by
  /// tests/kernels and the engine-level batched-vs-per-row tests.
  ///
  /// Non-fp32 precisions (require prepare(p)) swap the four projection
  /// GEMMs for their quantized variants; the ragged attention core
  /// (logits/softmax/weighted rowsum) always runs fp32 on the projected
  /// values, so alpha never accumulates quantization error on top of the
  /// projections'.
  void forward_batch_into(const Tensor& f_self, const Tensor& q_in,
                          const Tensor& kv_in,
                          std::span<const std::size_t> seg, BatchScratch& ws,
                          Tensor& out,
                          kernels::Precision p = kernels::Precision::kFp32)
      const;

  /// Snapshot wq/wk/wv/wo for a reduced-precision path (see nn::Linear).
  void prepare(kernels::Precision p) const;

  /// Attention logits only (for distillation teachers): [n] scaled scores.
  [[nodiscard]] std::vector<float> logits(std::span<const float> f_self,
                                          const AttnNodeInput& in) const;

  InputGrads backward(const Cache& cache, const Tensor& dh);

  [[nodiscard]] std::vector<nn::Parameter*> parameters();

  nn::Linear wq;  ///< q_in_dim  -> emb
  nn::Linear wk;  ///< kv_in_dim -> emb
  nn::Linear wv;  ///< kv_in_dim -> emb
  nn::Linear wo;  ///< emb + mem -> emb   (FTM)
};

}  // namespace tgnn::core
