// Analytic complexity meter: MACs and external-memory element accesses per
// generated dynamic node embedding, broken down into the paper's four parts
// (sample / memory / GNN / update — Table I) and reacting to every model
// switch (SAT, LUT, NP — Table II).
//
// Counting conventions (matching §II-B):
//  * learnable parameters are assumed resident on-chip — weight reads are
//    NOT memory accesses;
//  * a MEM is one 4-byte element moved from/to external memory;
//  * a MAC is one multiply-accumulate; the dot-product score q.k counts emb
//    MACs per neighbor; cos() evaluation counts 1 MAC per output element
//    (the omega*dt + phi fma).
#pragma once

#include "tgnn/config.hpp"

namespace tgnn::core {

struct PartCount {
  double macs = 0.0;
  double mems = 0.0;
};

struct ComplexityReport {
  PartCount sample;  ///< neighbor-table access
  PartCount memory;  ///< message aggregation + GRU memory update
  PartCount gnn;     ///< attention aggregation + feature transform
  PartCount update;  ///< write-back of memory / mail / neighbor table

  [[nodiscard]] double total_macs() const {
    return sample.macs + memory.macs + gnn.macs + update.macs;
  }
  [[nodiscard]] double total_mems() const {
    return sample.mems + memory.mems + gnn.mems + update.mems;
  }
  /// Split used by Table II's #(GRU) / #(GNN) columns.
  [[nodiscard]] double gru_macs() const { return memory.macs; }
  [[nodiscard]] double gnn_macs() const { return gnn.macs; }
};

/// Per-embedding counts for the given configuration.
ComplexityReport analyze(const ModelConfig& cfg);

/// External-memory *bytes* moved per embedding (Zd = 4): drives the FPGA
/// DDR traffic model and the GPU roofline baseline.
double bytes_per_embedding(const ModelConfig& cfg);

}  // namespace tgnn::core
