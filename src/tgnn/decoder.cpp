#include "tgnn/decoder.hpp"

#include <stdexcept>

#include "kernels/fused.hpp"
#include "util/rng.hpp"

namespace tgnn::core {

Decoder::Decoder(const ModelConfig& cfg, tgnn::Rng& rng)
    : l1("decoder.l1", 3 * cfg.emb_dim, cfg.decoder_hidden, rng),
      l2("decoder.l2", cfg.decoder_hidden, 1, rng) {}

void Decoder::build_pair(std::span<const float> hu, std::span<const float> hv,
                         std::span<float> out) {
  const std::size_t d = hu.size();
  if (hv.size() != d || out.size() != 3 * d)
    throw std::invalid_argument("Decoder::build_pair: size mismatch");
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = hu[i];
    out[d + i] = hv[i];
    out[2 * d + i] = hu[i] * hv[i];
  }
}

void Decoder::route_pair_grad(std::span<const float> dx,
                              std::span<const float> hu,
                              std::span<const float> hv, std::span<float> dhu,
                              std::span<float> dhv) {
  const std::size_t d = hu.size();
  for (std::size_t i = 0; i < d; ++i) {
    dhu[i] += dx[i] + dx[2 * d + i] * hv[i];
    dhv[i] += dx[d + i] + dx[2 * d + i] * hu[i];
  }
}

Tensor Decoder::forward(const Tensor& x, Cache* cache) const {
  Tensor hidden = l1.forward(x);
  ops::relu_inplace(hidden);
  Tensor logits = l2.forward(hidden);
  if (cache) {
    cache->x = x;
    cache->hidden = std::move(hidden);
  }
  return logits;
}

const Tensor& Decoder::forward_into(const Tensor& x, InferScratch& ws,
                                    kernels::Precision p) const {
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_rows_into(x, ws.qx);
      l1.forward_q_relu_into(ws.qx, ws.hidden);
      kernels::quantize_rows_into(ws.hidden, ws.qh);
      l2.forward_q_into(ws.qh, ws.logits);
      break;
    case kernels::Precision::kBf16:
      l1.forward_bf16_relu_into(x, ws.hidden);
      l2.forward_bf16_into(ws.hidden, ws.logits);
      break;
    case kernels::Precision::kFp32:
      kernels::affine_relu_into(x, l1.w.value, l1.b.value, ws.hidden);
      kernels::affine_into(ws.hidden, l2.w.value, l2.b.value, ws.logits);
      break;
  }
  return ws.logits;
}

void Decoder::prepare(kernels::Precision p) const {
  l1.prepare(p);
  l2.prepare(p);
}

double Decoder::score_with(InferScratch& ws, std::span<const float> hu,
                           std::span<const float> hv) const {
  ws.x.resize(1, 3 * hu.size());
  build_pair(hu, hv, ws.x.row(0));
  return forward_into(ws.x, ws)(0, 0);
}

Tensor Decoder::backward(const Cache& c, const Tensor& dlogits) {
  Tensor dhidden = l2.backward(c.hidden, dlogits);
  for (std::size_t i = 0; i < dhidden.size(); ++i)
    if (c.hidden[i] <= 0.0f) dhidden[i] = 0.0f;
  return l1.backward(c.x, dhidden);
}

double Decoder::score(std::span<const float> hu,
                      std::span<const float> hv) const {
  Tensor x(1, 3 * hu.size());
  build_pair(hu, hv, x.row(0));
  return forward(x)(0, 0);
}

std::vector<nn::Parameter*> Decoder::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto* l : {&l1, &l2})
    for (auto* p : l->parameters()) out.push_back(p);
  return out;
}

}  // namespace tgnn::core
