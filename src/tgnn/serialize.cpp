#include "tgnn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tgnn::core {

namespace {

constexpr char kMagic[4] = {'T', 'G', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

constexpr char kStateMagic[4] = {'T', 'G', 'N', 'S'};
constexpr std::uint32_t kStateVersion = 1;

std::vector<nn::Parameter*> all_params(TgnModel& model, Decoder* decoder) {
  std::vector<nn::Parameter*> out = model.params().params();
  if (decoder)
    for (auto* p : decoder->parameters()) out.push_back(p);
  return out;
}

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(f);
}

}  // namespace

bool save_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kMagic, 4);
  write_pod(f, kVersion);

  const auto params = all_params(model, decoder);
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  for (const auto* p : params) {
    write_pod(f, static_cast<std::uint32_t>(p->name.size()));
    f.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(f, static_cast<std::uint64_t>(p->value.rows()));
    write_pod(f, static_cast<std::uint64_t>(p->value.cols()));
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }

  // LUT bin edges (needed to reproduce bin_of at deployment).
  const auto* lut = model.lut_encoder();
  const auto& edges =
      lut && lut->fitted() ? lut->edges() : std::vector<double>{};
  write_pod(f, static_cast<std::uint64_t>(edges.size()));
  for (double e : edges) write_pod(f, e);
  return static_cast<bool>(f);
}

bool load_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  std::uint32_t version = 0;
  if (!f || std::memcmp(magic, kMagic, 4) != 0 || !read_pod(f, version) ||
      version != kVersion)
    throw std::runtime_error("load_checkpoint: bad magic/version");

  const auto params = all_params(model, decoder);
  std::uint64_t count = 0;
  if (!read_pod(f, count) || count != params.size())
    throw std::runtime_error("load_checkpoint: parameter count mismatch");

  for (auto* p : params) {
    std::uint32_t name_len = 0;
    if (!read_pod(f, name_len))
      throw std::runtime_error("load_checkpoint: truncated file");
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    std::uint64_t rows = 0, cols = 0;
    if (!f || !read_pod(f, rows) || !read_pod(f, cols))
      throw std::runtime_error("load_checkpoint: truncated file");
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols())
      throw std::runtime_error("load_checkpoint: parameter mismatch at '" +
                               p->name + "' (file has '" + name + "' " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols) + ")");
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!f) throw std::runtime_error("load_checkpoint: truncated data");
  }

  std::uint64_t n_edges = 0;
  if (!read_pod(f, n_edges))
    throw std::runtime_error("load_checkpoint: missing LUT section");
  std::vector<double> edges(n_edges);
  for (auto& e : edges)
    if (!read_pod(f, e))
      throw std::runtime_error("load_checkpoint: truncated LUT edges");
  auto* lut = model.lut_encoder();
  if (lut && !edges.empty()) {
    lut->restore_edges(edges);
  } else if (lut && edges.empty()) {
    throw std::runtime_error(
        "load_checkpoint: model expects LUT edges but file has none");
  }
  return true;
}

namespace {

/// True if any lane of the span is nonzero — the "row was ever written"
/// test that keeps the state checkpoint sparse.
bool any_nonzero(std::span<const float> v) {
  for (float x : v)
    if (x != 0.0f) return true;
  return false;
}

[[noreturn]] void state_fail(const std::string& what) {
  throw std::runtime_error("load_state: " + what);
}

}  // namespace

bool save_state(const std::string& path, const RuntimeState& state,
                std::uint64_t stream_cursor) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kStateMagic, 4);
  write_pod(f, kStateVersion);

  const auto num_nodes = static_cast<std::uint64_t>(state.memory.num_nodes());
  write_pod(f, num_nodes);
  write_pod(f, static_cast<std::uint64_t>(state.memory.dim()));
  write_pod(f, static_cast<std::uint64_t>(state.mailbox.raw_dim()));
  write_pod(f, static_cast<std::uint8_t>(state.table != nullptr ? 1 : 0));
  write_pod(f, static_cast<std::uint64_t>(
                   state.table != nullptr ? state.table->capacity() : 0));
  write_pod(f, stream_cursor);

  // Memory rows: only vertices ever updated. Reading through get() faults
  // spilled pages in, so an out-of-core state serializes bit-exactly.
  std::vector<graph::NodeId> touched;
  for (graph::NodeId v = 0; v < num_nodes; ++v)
    if (state.memory.last_update(v) != 0.0 || any_nonzero(state.memory.get(v)))
      touched.push_back(v);
  write_pod(f, static_cast<std::uint64_t>(touched.size()));
  for (const graph::NodeId v : touched) {
    write_pod(f, static_cast<std::uint64_t>(v));
    write_pod(f, state.memory.last_update(v));
    const auto row = state.memory.get(v);
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }

  // Mailbox rows: only vertices holding a message (has_mail covers the
  // valid byte; the separate consume-once flags follow as a flat vector).
  touched.clear();
  for (graph::NodeId v = 0; v < num_nodes; ++v)
    if (state.mailbox.has_mail(v)) touched.push_back(v);
  write_pod(f, static_cast<std::uint64_t>(touched.size()));
  for (const graph::NodeId v : touched) {
    write_pod(f, static_cast<std::uint64_t>(v));
    write_pod(f, state.mailbox.mail_ts(v));
    const auto row = state.mailbox.mail(v);
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
  }

  f.write(reinterpret_cast<const char*>(state.mail_valid.data()),
          static_cast<std::streamsize>(state.mail_valid.size()));

  // Neighbor state, oldest -> newest per vertex — the order insert() (or
  // restore_history) reproduces exactly.
  touched.clear();
  for (graph::NodeId v = 0; v < num_nodes; ++v) {
    const std::size_t n = state.table != nullptr ? state.table->fill(v)
                                                 : state.finder->degree(v);
    if (n != 0) touched.push_back(v);
  }
  write_pod(f, static_cast<std::uint64_t>(touched.size()));
  for (const graph::NodeId v : touched) {
    const std::vector<graph::NeighborHit> hits =
        state.table != nullptr ? state.table->row(v) : state.finder->history(v);
    write_pod(f, static_cast<std::uint64_t>(v));
    write_pod(f, static_cast<std::uint64_t>(hits.size()));
    for (const auto& h : hits) {
      write_pod(f, static_cast<std::uint64_t>(h.node));
      write_pod(f, static_cast<std::uint64_t>(h.eid));
      write_pod(f, h.ts);
    }
  }
  return static_cast<bool>(f);
}

bool load_state(const std::string& path, RuntimeState& state,
                std::uint64_t& stream_cursor) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  std::uint32_t version = 0;
  if (!f || std::memcmp(magic, kStateMagic, 4) != 0 ||
      !read_pod(f, version) || version != kStateVersion)
    state_fail("bad magic/version");

  std::uint64_t num_nodes = 0, mem_dim = 0, raw_dim = 0, fifo_cap = 0;
  std::uint8_t use_fifo = 0;
  if (!read_pod(f, num_nodes) || !read_pod(f, mem_dim) ||
      !read_pod(f, raw_dim) || !read_pod(f, use_fifo) ||
      !read_pod(f, fifo_cap) || !read_pod(f, stream_cursor))
    state_fail("truncated header");
  if (num_nodes != state.memory.num_nodes() || mem_dim != state.memory.dim() ||
      raw_dim != state.mailbox.raw_dim())
    state_fail("state shape mismatch (nodes/dims differ from checkpoint)");
  if ((use_fifo != 0) != (state.table != nullptr))
    state_fail("sampler kind mismatch (FIFO table vs unbounded finder)");
  if (state.table != nullptr && fifo_cap != state.table->capacity())
    state_fail("FIFO capacity mismatch");

  state.reset();

  std::uint64_t rows = 0;
  if (!read_pod(f, rows)) state_fail("truncated memory section");
  std::vector<float> buf(mem_dim);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t v = 0;
    double ts = 0.0;
    if (!read_pod(f, v) || !read_pod(f, ts) || v >= num_nodes)
      state_fail("bad memory row");
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(mem_dim * sizeof(float)));
    if (!f) state_fail("truncated memory row");
    state.memory.set(static_cast<graph::NodeId>(v), buf, ts);
  }

  if (!read_pod(f, rows)) state_fail("truncated mailbox section");
  buf.assign(raw_dim, 0.0f);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t v = 0;
    double ts = 0.0;
    if (!read_pod(f, v) || !read_pod(f, ts) || v >= num_nodes)
      state_fail("bad mailbox row");
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(raw_dim * sizeof(float)));
    if (!f) state_fail("truncated mailbox row");
    state.mailbox.put(static_cast<graph::NodeId>(v), buf, ts);
  }

  f.read(reinterpret_cast<char*>(state.mail_valid.data()),
         static_cast<std::streamsize>(state.mail_valid.size()));
  if (!f) state_fail("truncated mail_valid section");

  if (!read_pod(f, rows)) state_fail("truncated neighbor section");
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t v = 0, count = 0;
    if (!read_pod(f, v) || !read_pod(f, count) || v >= num_nodes)
      state_fail("bad neighbor row");
    std::vector<graph::NeighborHit> hits(count);
    for (auto& h : hits) {
      std::uint64_t node = 0, eid = 0;
      if (!read_pod(f, node) || !read_pod(f, eid) || !read_pod(f, h.ts))
        state_fail("truncated neighbor entries");
      h.node = static_cast<graph::NodeId>(node);
      h.eid = static_cast<graph::EdgeId>(eid);
    }
    if (state.table != nullptr) {
      for (const auto& h : hits)
        state.table->insert(static_cast<graph::NodeId>(v), h.node, h.eid,
                            h.ts);
    } else {
      state.finder->restore_history(static_cast<graph::NodeId>(v),
                                    std::move(hits));
    }
  }
  return true;
}

}  // namespace tgnn::core
