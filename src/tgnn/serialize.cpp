#include "tgnn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tgnn::core {

namespace {

constexpr char kMagic[4] = {'T', 'G', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

std::vector<nn::Parameter*> all_params(TgnModel& model, Decoder* decoder) {
  std::vector<nn::Parameter*> out = model.params().params();
  if (decoder)
    for (auto* p : decoder->parameters()) out.push_back(p);
  return out;
}

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& f, T& v) {
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(f);
}

}  // namespace

bool save_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kMagic, 4);
  write_pod(f, kVersion);

  const auto params = all_params(model, decoder);
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  for (const auto* p : params) {
    write_pod(f, static_cast<std::uint32_t>(p->name.size()));
    f.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(f, static_cast<std::uint64_t>(p->value.rows()));
    write_pod(f, static_cast<std::uint64_t>(p->value.cols()));
    f.write(reinterpret_cast<const char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }

  // LUT bin edges (needed to reproduce bin_of at deployment).
  const auto* lut = model.lut_encoder();
  const auto& edges =
      lut && lut->fitted() ? lut->edges() : std::vector<double>{};
  write_pod(f, static_cast<std::uint64_t>(edges.size()));
  for (double e : edges) write_pod(f, e);
  return static_cast<bool>(f);
}

bool load_checkpoint(const std::string& path, TgnModel& model,
                     Decoder* decoder) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  std::uint32_t version = 0;
  if (!f || std::memcmp(magic, kMagic, 4) != 0 || !read_pod(f, version) ||
      version != kVersion)
    throw std::runtime_error("load_checkpoint: bad magic/version");

  const auto params = all_params(model, decoder);
  std::uint64_t count = 0;
  if (!read_pod(f, count) || count != params.size())
    throw std::runtime_error("load_checkpoint: parameter count mismatch");

  for (auto* p : params) {
    std::uint32_t name_len = 0;
    if (!read_pod(f, name_len))
      throw std::runtime_error("load_checkpoint: truncated file");
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    std::uint64_t rows = 0, cols = 0;
    if (!f || !read_pod(f, rows) || !read_pod(f, cols))
      throw std::runtime_error("load_checkpoint: truncated file");
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols())
      throw std::runtime_error("load_checkpoint: parameter mismatch at '" +
                               p->name + "' (file has '" + name + "' " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols) + ")");
    f.read(reinterpret_cast<char*>(p->value.data()),
           static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!f) throw std::runtime_error("load_checkpoint: truncated data");
  }

  std::uint64_t n_edges = 0;
  if (!read_pod(f, n_edges))
    throw std::runtime_error("load_checkpoint: missing LUT section");
  std::vector<double> edges(n_edges);
  for (auto& e : edges)
    if (!read_pod(f, e))
      throw std::runtime_error("load_checkpoint: truncated LUT edges");
  auto* lut = model.lut_encoder();
  if (lut && !edges.empty()) {
    lut->restore_edges(edges);
  } else if (lut && edges.empty()) {
    throw std::runtime_error(
        "load_checkpoint: model expects LUT edges but file has none");
  }
  return true;
}

}  // namespace tgnn::core
