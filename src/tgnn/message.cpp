#include "tgnn/message.hpp"

#include <algorithm>
#include <stdexcept>

namespace tgnn::core {

void build_raw_mail(std::span<const float> s_self,
                    std::span<const float> s_other,
                    std::span<const float> f_e, std::span<float> out) {
  if (out.size() != s_self.size() + s_other.size() + f_e.size())
    throw std::invalid_argument("build_raw_mail: size mismatch");
  auto it = std::copy(s_self.begin(), s_self.end(), out.begin());
  it = std::copy(s_other.begin(), s_other.end(), it);
  std::copy(f_e.begin(), f_e.end(), it);
}

void build_gru_input(std::span<const float> raw_mail,
                     std::span<const float> time_enc, std::span<float> out) {
  if (out.size() != raw_mail.size() + time_enc.size())
    throw std::invalid_argument("build_gru_input: size mismatch");
  auto it = std::copy(raw_mail.begin(), raw_mail.end(), out.begin());
  std::copy(time_enc.begin(), time_enc.end(), it);
}

}  // namespace tgnn::core
