// GRU cell exactly as the paper's memory updater (Eq. 7-10):
//
//   r = sigmoid(W_ir m + b_ir + W_hr s + b_hr)
//   z = sigmoid(W_iz m + b_iz + W_hz s + b_hz)
//   n = tanh  (W_in m + b_in + r .* (W_hn s + b_hn))
//   s' = (1 - z) .* n + z .* s
//
// where m is the aggregated message (input) and s the node memory (hidden
// state). Forward caches every gate activation so backward() can produce
// analytic gradients for both the parameters and the (m, s) inputs — needed
// because the training loss backpropagates into the message, which itself
// contains node memory and the time encoding.
#pragma once

#include <string>
#include <vector>

#include "kernels/fused.hpp"
#include "nn/parameter.hpp"
#include "tensor/ops.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::nn {

class GruCell {
 public:
  /// Forward intermediates required by backward().
  struct Cache {
    Tensor x;   ///< input messages [m, in]
    Tensor h;   ///< previous hidden state [m, hid]
    Tensor r;   ///< reset gate post-sigmoid
    Tensor z;   ///< update gate post-sigmoid
    Tensor n;   ///< candidate post-tanh
    Tensor q;   ///< W_hn h + b_hn (pre reset-gating)
  };

  /// Gradients w.r.t. the two inputs.
  struct InputGrads {
    Tensor dx;
    Tensor dh;
  };

  GruCell() = default;
  GruCell(std::string name, std::size_t input_dim, std::size_t hidden_dim,
          tgnn::Rng& rng);

  /// Returns the new hidden state s'; fills cache for backward.
  Tensor forward(const Tensor& x, const Tensor& h, Cache* cache = nullptr) const;

  /// Inference-only fused forward (kernels::gru_forward_into): writes s'
  /// into `out`, reusing `ws` gate buffers — zero steady-state allocations
  /// and vectorized GEMMs. No cache, so not usable for backward; parity
  /// with forward() is pinned to 1e-6 by tests/kernels. Non-fp32 precisions
  /// route to the quantized fused kernels and require prepare(p) first; the
  /// produced state s' is always fp32 (VertexMemory never holds quantized
  /// state).
  void forward_into(const Tensor& x, const Tensor& h, kernels::GruScratch& ws,
                    Tensor& out,
                    kernels::Precision p = kernels::Precision::kFp32) const;

  /// One-time snapshot of the six weight matrices for a reduced-precision
  /// path (biases stay fp32). kFp32 is a no-op; re-run after weight updates.
  void prepare(kernels::Precision p) const;

  /// Accumulates parameter grads; returns gradients w.r.t. x and h.
  InputGrads backward(const Cache& cache, const Tensor& dh_new);

  [[nodiscard]] std::vector<Parameter*> parameters();

  [[nodiscard]] std::size_t input_dim() const { return w_ir.value.cols(); }
  [[nodiscard]] std::size_t hidden_dim() const { return w_ir.value.rows(); }

  /// MACs for a forward pass over m rows (three input + three hidden GEMMs).
  [[nodiscard]] std::size_t macs(std::size_t m_rows) const {
    return m_rows * 3 * (input_dim() + hidden_dim()) * hidden_dim();
  }

  // Input-to-hidden weights [hid, in] and biases [hid].
  Parameter w_ir, w_iz, w_in, b_ir, b_iz, b_in;
  // Hidden-to-hidden weights [hid, hid] and biases [hid].
  Parameter w_hr, w_hz, w_hn, b_hr, b_hz, b_hn;

  // Reduced-precision weight snapshots (prepare()); derived caches, never
  // checkpointed.
  mutable kernels::QuantGruWeights qw;
  mutable kernels::Bf16GruWeights bw16;
};

}  // namespace tgnn::nn
