#include "nn/linear.hpp"

#include "kernels/fused.hpp"
#include "util/rng.hpp"

namespace tgnn::nn {

Linear::Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
               tgnn::Rng& rng)
    : w(name + ".w", Tensor::xavier(out_dim, in_dim, rng)),
      b(name + ".b", Tensor(out_dim)) {}

Tensor Linear::forward(const Tensor& x) const {
  return ops::affine(x, w.value, b.value);
}

void Linear::forward_into(const Tensor& x, Tensor& y) const {
  kernels::affine_into(x, w.value, b.value, y);
}

void Linear::prepare(kernels::Precision p) const {
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_weight(w.value, qw);
      break;
    case kernels::Precision::kBf16:
      kernels::bf16_from_tensor(w.value, bw16);
      break;
    case kernels::Precision::kFp32:
      break;
  }
}

void Linear::forward_q_into(const kernels::QuantActs& x, Tensor& y) const {
  kernels::qaffine_into(x, qw, b.value, y);
}

void Linear::forward_q_relu_into(const kernels::QuantActs& x,
                                 Tensor& y) const {
  kernels::qaffine_relu_into(x, qw, b.value, y);
}

void Linear::forward_bf16_into(const Tensor& x, Tensor& y) const {
  kernels::bf16_affine_into(x, bw16, b.value, y);
}

void Linear::forward_bf16_relu_into(const Tensor& x, Tensor& y) const {
  kernels::bf16_affine_relu_into(x, bw16, b.value, y);
}

Tensor Linear::backward(const Tensor& x, const Tensor& dy) {
  // dW += dY^T X : [out, m] x [m, in]
  ops::matmul_tn_acc(dy, x, w.grad);
  Tensor db = ops::colsum(dy);
  b.grad += db;
  // dX = dY W : [m, out] x [out, in]
  return ops::matmul(dy, w.value);
}

std::vector<Parameter*> Linear::parameters() { return {&w, &b}; }

}  // namespace tgnn::nn
