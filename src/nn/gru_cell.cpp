#include "nn/gru_cell.hpp"

#include "util/rng.hpp"

namespace tgnn::nn {

namespace {

Tensor gate_pre(const Tensor& x, const Parameter& wi, const Parameter& bi,
                const Tensor& h, const Parameter& wh, const Parameter& bh) {
  Tensor pre = ops::affine(x, wi.value, bi.value);
  pre += ops::affine(h, wh.value, bh.value);
  return pre;
}

}  // namespace

GruCell::GruCell(std::string name, std::size_t input_dim, std::size_t hidden_dim,
                 tgnn::Rng& rng)
    : w_ir(name + ".w_ir", Tensor::xavier(hidden_dim, input_dim, rng)),
      w_iz(name + ".w_iz", Tensor::xavier(hidden_dim, input_dim, rng)),
      w_in(name + ".w_in", Tensor::xavier(hidden_dim, input_dim, rng)),
      b_ir(name + ".b_ir", Tensor(hidden_dim)),
      b_iz(name + ".b_iz", Tensor(hidden_dim)),
      b_in(name + ".b_in", Tensor(hidden_dim)),
      w_hr(name + ".w_hr", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      w_hz(name + ".w_hz", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      w_hn(name + ".w_hn", Tensor::xavier(hidden_dim, hidden_dim, rng)),
      b_hr(name + ".b_hr", Tensor(hidden_dim)),
      b_hz(name + ".b_hz", Tensor(hidden_dim)),
      b_hn(name + ".b_hn", Tensor(hidden_dim)) {}

Tensor GruCell::forward(const Tensor& x, const Tensor& h, Cache* cache) const {
  Tensor r = ops::sigmoid(gate_pre(x, w_ir, b_ir, h, w_hr, b_hr));
  Tensor z = ops::sigmoid(gate_pre(x, w_iz, b_iz, h, w_hz, b_hz));
  Tensor q = ops::affine(h, w_hn.value, b_hn.value);
  Tensor n_pre = ops::affine(x, w_in.value, b_in.value);
  n_pre += ops::hadamard(r, q);
  Tensor n = ops::tanh(n_pre);

  // s' = (1 - z) .* n + z .* h
  Tensor out(h.rows(), h.cols());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = (1.0f - z[i]) * n[i] + z[i] * h[i];

  if (cache) {
    cache->x = x;
    cache->h = h;
    cache->r = std::move(r);
    cache->z = std::move(z);
    cache->n = std::move(n);
    cache->q = std::move(q);
  }
  return out;
}

void GruCell::forward_into(const Tensor& x, const Tensor& h,
                           kernels::GruScratch& ws, Tensor& out,
                           kernels::Precision p) const {
  const kernels::GruWeights w{
      &w_ir.value, &w_iz.value, &w_in.value, &b_ir.value,
      &b_iz.value, &b_in.value, &w_hr.value, &w_hz.value,
      &w_hn.value, &b_hr.value, &b_hz.value, &b_hn.value};
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::qgru_forward_into(x, h, w, qw, ws, out);
      break;
    case kernels::Precision::kBf16:
      kernels::bf16_gru_forward_into(x, h, w, bw16, ws, out);
      break;
    case kernels::Precision::kFp32:
      kernels::gru_forward_into(x, h, w, ws, out);
      break;
  }
}

void GruCell::prepare(kernels::Precision p) const {
  switch (p) {
    case kernels::Precision::kInt8:
      kernels::quantize_weight(w_ir.value, qw.w_ir);
      kernels::quantize_weight(w_iz.value, qw.w_iz);
      kernels::quantize_weight(w_in.value, qw.w_in);
      kernels::quantize_weight(w_hr.value, qw.w_hr);
      kernels::quantize_weight(w_hz.value, qw.w_hz);
      kernels::quantize_weight(w_hn.value, qw.w_hn);
      break;
    case kernels::Precision::kBf16:
      kernels::bf16_from_tensor(w_ir.value, bw16.w_ir);
      kernels::bf16_from_tensor(w_iz.value, bw16.w_iz);
      kernels::bf16_from_tensor(w_in.value, bw16.w_in);
      kernels::bf16_from_tensor(w_hr.value, bw16.w_hr);
      kernels::bf16_from_tensor(w_hz.value, bw16.w_hz);
      kernels::bf16_from_tensor(w_hn.value, bw16.w_hn);
      break;
    case kernels::Precision::kFp32:
      break;
  }
}

GruCell::InputGrads GruCell::backward(const Cache& c, const Tensor& dh_new) {
  const std::size_t m = dh_new.rows(), hid = dh_new.cols();

  // d n = dh' .* (1 - z); d z = dh' .* (h - n); dh (direct) = dh' .* z
  Tensor dn(m, hid), dz(m, hid), dh(m, hid);
  for (std::size_t i = 0; i < dh_new.size(); ++i) {
    dn[i] = dh_new[i] * (1.0f - c.z[i]);
    dz[i] = dh_new[i] * (c.h[i] - c.n[i]);
    dh[i] = dh_new[i] * c.z[i];
  }

  // Through tanh: dn_pre = dn .* (1 - n^2)
  Tensor dn_pre(m, hid);
  for (std::size_t i = 0; i < dn.size(); ++i)
    dn_pre[i] = dn[i] * (1.0f - c.n[i] * c.n[i]);

  // n_pre = W_in x + b_in + r .* q
  Tensor dr(m, hid), dq(m, hid);
  for (std::size_t i = 0; i < dn_pre.size(); ++i) {
    dr[i] = dn_pre[i] * c.q[i];
    dq[i] = dn_pre[i] * c.r[i];
  }

  // Through sigmoids: pre-activation grads.
  Tensor dr_pre(m, hid), dz_pre(m, hid);
  for (std::size_t i = 0; i < dr.size(); ++i) {
    dr_pre[i] = dr[i] * c.r[i] * (1.0f - c.r[i]);
    dz_pre[i] = dz[i] * c.z[i] * (1.0f - c.z[i]);
  }

  // Accumulate parameter gradients.
  ops::matmul_tn_acc(dr_pre, c.x, w_ir.grad);
  ops::matmul_tn_acc(dz_pre, c.x, w_iz.grad);
  ops::matmul_tn_acc(dn_pre, c.x, w_in.grad);
  b_ir.grad += ops::colsum(dr_pre);
  b_iz.grad += ops::colsum(dz_pre);
  b_in.grad += ops::colsum(dn_pre);

  ops::matmul_tn_acc(dr_pre, c.h, w_hr.grad);
  ops::matmul_tn_acc(dz_pre, c.h, w_hz.grad);
  ops::matmul_tn_acc(dq, c.h, w_hn.grad);
  b_hr.grad += ops::colsum(dr_pre);
  b_hz.grad += ops::colsum(dz_pre);
  b_hn.grad += ops::colsum(dq);

  // Input gradients.
  InputGrads g;
  g.dx = ops::matmul(dr_pre, w_ir.value);
  g.dx += ops::matmul(dz_pre, w_iz.value);
  g.dx += ops::matmul(dn_pre, w_in.value);

  g.dh = std::move(dh);
  g.dh += ops::matmul(dr_pre, w_hr.value);
  g.dh += ops::matmul(dz_pre, w_hz.value);
  g.dh += ops::matmul(dq, w_hn.value);
  return g;
}

std::vector<Parameter*> GruCell::parameters() {
  return {&w_ir, &w_iz, &w_in, &b_ir, &b_iz, &b_in,
          &w_hr, &w_hz, &w_hn, &b_hr, &b_hz, &b_hn};
}

}  // namespace tgnn::nn
