// Training losses:
//  * Binary cross-entropy with logits — the self-supervised temporal link
//    prediction objective (positive = observed temporal edge, negative =
//    sampled non-edge).
//  * Soft cross-entropy at temperature T — the knowledge-distillation loss
//    of Eq. 17 that aligns the student's simplified attention logits with
//    the teacher's vanilla attention logits.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace tgnn::nn {

struct LossResult {
  double value = 0.0;  ///< mean loss over the batch
  Tensor grad;         ///< d loss / d logits (already divided by batch size)
};

/// BCE over logits x with targets y in {0,1}; both [m,1] (or any equal shape).
LossResult bce_with_logits(const Tensor& logits, const Tensor& targets);

/// Distillation loss between student and teacher attention logits (Eq. 17):
///   L = -sum softmax(teacher/T) . log softmax(student/T), averaged over rows.
/// Returns gradient w.r.t. the student logits. The teacher is a constant.
LossResult soft_cross_entropy(const Tensor& student_logits,
                              const Tensor& teacher_logits, double temperature);

/// Numerically stable scalar sigmoid.
double stable_sigmoid(double x);

}  // namespace tgnn::nn
