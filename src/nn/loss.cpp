#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tgnn::nn {

double stable_sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

LossResult bce_with_logits(const Tensor& logits, const Tensor& targets) {
  if (logits.size() != targets.size())
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  const std::size_t m = logits.size();
  LossResult res;
  res.grad = Tensor(logits.rows(), logits.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double x = logits[i];
    const double y = targets[i];
    // max(x,0) - x*y + log(1 + exp(-|x|)) : stable BCE-with-logits.
    total += std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::fabs(x)));
    res.grad[i] =
        static_cast<float>((stable_sigmoid(x) - y) / static_cast<double>(m));
  }
  res.value = total / static_cast<double>(m);
  return res;
}

LossResult soft_cross_entropy(const Tensor& student_logits,
                              const Tensor& teacher_logits, double temperature) {
  if (student_logits.rows() != teacher_logits.rows() ||
      student_logits.cols() != teacher_logits.cols())
    throw std::invalid_argument("soft_cross_entropy: shape mismatch");
  if (temperature <= 0.0)
    throw std::invalid_argument("soft_cross_entropy: T must be > 0");

  const std::size_t m = student_logits.rows(), n = student_logits.cols();
  LossResult res;
  res.grad = Tensor(m, n);
  double total = 0.0;
  std::vector<double> p(n), q(n);
  for (std::size_t i = 0; i < m; ++i) {
    // Teacher probabilities p = softmax(teacher / T).
    double mx_t = -1e300, mx_s = -1e300;
    for (std::size_t j = 0; j < n; ++j) {
      mx_t = std::max(mx_t, static_cast<double>(teacher_logits(i, j)));
      mx_s = std::max(mx_s, static_cast<double>(student_logits(i, j)));
    }
    double zt = 0.0, zs = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      p[j] = std::exp((teacher_logits(i, j) - mx_t) / temperature);
      q[j] = std::exp((student_logits(i, j) - mx_s) / temperature);
      zt += p[j];
      zs += q[j];
    }
    for (std::size_t j = 0; j < n; ++j) {
      p[j] /= zt;
      q[j] /= zs;
      // -p log q  with log q computed stably.
      const double logq =
          (student_logits(i, j) - mx_s) / temperature - std::log(zs);
      total -= p[j] * logq;
      // dL/d student_logit = (q - p) / (T * m)
      res.grad(i, j) =
          static_cast<float>((q[j] - p[j]) /
                             (temperature * static_cast<double>(m)));
    }
  }
  res.value = total / static_cast<double>(m);
  return res;
}

}  // namespace tgnn::nn
