// Learnable parameter = value tensor + gradient accumulator, plus a registry
// that the optimizer walks. Layers own their Parameters and register them
// with the module's ParamStore; the trainer hands the store to Adam.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace tgnn::nn {

struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void zero_grad() { grad.zero(); }
};

/// Flat registry of parameters owned by the model's layers.
/// Non-owning: layers keep the Parameter objects alive.
class ParamStore {
 public:
  void add(Parameter* p) { params_.push_back(p); }
  void add_all(const std::vector<Parameter*>& ps) {
    params_.insert(params_.end(), ps.begin(), ps.end());
  }

  [[nodiscard]] const std::vector<Parameter*>& params() const { return params_; }

  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t count() const;

  /// Global gradient-norm clipping (returns the pre-clip norm).
  double clip_grad_norm(double max_norm);

 private:
  std::vector<Parameter*> params_;
};

}  // namespace tgnn::nn
