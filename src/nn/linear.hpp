// Fully-connected layer with analytic backward.
//
// Forward:  Y = X W^T + b,  X: [m, in], W: [out, in], b: [out].
// Backward: dX = dY W, dW += dY^T X, db += colsum(dY).
#pragma once

#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/ops.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::nn {

class Linear {
 public:
  Linear() = default;
  Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
         tgnn::Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Fused inference forward: y = X Wᵀ + b written into a caller-owned
  /// buffer (kernels::affine_into) — no allocation once y has capacity.
  void forward_into(const Tensor& x, Tensor& y) const;

  /// Backward: given dY and the forward input X, accumulates weight/bias
  /// grads and returns dX.
  Tensor backward(const Tensor& x, const Tensor& dy);

  [[nodiscard]] std::vector<Parameter*> parameters();

  [[nodiscard]] std::size_t in_dim() const { return w.value.cols(); }
  [[nodiscard]] std::size_t out_dim() const { return w.value.rows(); }

  /// Number of multiply-accumulates for a forward pass over m rows.
  [[nodiscard]] std::size_t macs(std::size_t m_rows) const {
    return m_rows * in_dim() * out_dim();
  }

  Parameter w;  ///< [out, in]
  Parameter b;  ///< [out]
};

}  // namespace tgnn::nn
