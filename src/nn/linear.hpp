// Fully-connected layer with analytic backward.
//
// Forward:  Y = X W^T + b,  X: [m, in], W: [out, in], b: [out].
// Backward: dX = dY W, dW += dY^T X, db += colsum(dY).
#pragma once

#include <string>
#include <vector>

#include "kernels/quant.hpp"
#include "nn/parameter.hpp"
#include "tensor/ops.hpp"

namespace tgnn {
class Rng;
}

namespace tgnn::nn {

class Linear {
 public:
  Linear() = default;
  Linear(std::string name, std::size_t in_dim, std::size_t out_dim,
         tgnn::Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Fused inference forward: y = X Wᵀ + b written into a caller-owned
  /// buffer (kernels::affine_into) — no allocation once y has capacity.
  void forward_into(const Tensor& x, Tensor& y) const;

  /// One-time weight snapshot for a reduced-precision inference path
  /// (re-runs unconditionally, so call again if weights changed — e.g.
  /// after a training step). kFp32 is a no-op; the fp32 weights always stay
  /// the source of truth, so precisions can be switched freely.
  void prepare(kernels::Precision p) const;

  /// Int8 forward against a caller-quantized activation panel (the caller
  /// owns quantization so one panel can feed several layers — e.g. the
  /// attention kv panel feeds both wk and wv). Requires prepare(kInt8).
  void forward_q_into(const kernels::QuantActs& x, Tensor& y) const;
  /// Same with a fused ReLU epilogue.
  void forward_q_relu_into(const kernels::QuantActs& x, Tensor& y) const;

  /// bf16-weight forward (fp32 activations). Requires prepare(kBf16).
  void forward_bf16_into(const Tensor& x, Tensor& y) const;
  void forward_bf16_relu_into(const Tensor& x, Tensor& y) const;

  /// Backward: given dY and the forward input X, accumulates weight/bias
  /// grads and returns dX.
  Tensor backward(const Tensor& x, const Tensor& dy);

  [[nodiscard]] std::vector<Parameter*> parameters();

  [[nodiscard]] std::size_t in_dim() const { return w.value.cols(); }
  [[nodiscard]] std::size_t out_dim() const { return w.value.rows(); }

  /// Number of multiply-accumulates for a forward pass over m rows.
  [[nodiscard]] std::size_t macs(std::size_t m_rows) const {
    return m_rows * in_dim() * out_dim();
  }

  Parameter w;  ///< [out, in]
  Parameter b;  ///< [out]

  // Reduced-precision weight snapshots (prepare()); mutable because they
  // are derived caches of `w`, not model state — checkpoints never carry
  // them and training never reads them.
  mutable kernels::QuantWeight qw;
  mutable kernels::Bf16Weight bw16;
};

}  // namespace tgnn::nn
