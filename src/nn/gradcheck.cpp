#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace tgnn::nn {

GradCheckResult check_gradients(ParamStore& store,
                                const std::function<double()>& loss_fn,
                                double eps, std::size_t max_checks_per_param) {
  GradCheckResult res;
  for (auto* p : store.params()) {
    const std::size_t n = p->value.size();
    // Deterministic stride so large matrices are subsampled evenly.
    const std::size_t stride = std::max<std::size_t>(1, n / max_checks_per_param);
    for (std::size_t i = 0; i < n; i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(eps);
      const double lp = loss_fn();
      p->value[i] = saved - static_cast<float>(eps);
      const double lm = loss_fn();
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = p->grad[i];
      const double abs_err = std::fabs(numeric - analytic);
      const double rel_err =
          abs_err / std::max(1e-4, std::fabs(numeric) + std::fabs(analytic));
      if (rel_err > res.max_rel_err) {
        res.max_rel_err = rel_err;
        res.worst_param = p->name + "[" + std::to_string(i) + "]";
      }
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
    }
  }
  return res;
}

}  // namespace tgnn::nn
