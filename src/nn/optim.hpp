// Adam optimizer (Kingma & Ba) over a ParamStore, with optional weight decay.
#pragma once

#include <vector>

#include "nn/parameter.hpp"

namespace tgnn::nn {

class Adam {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(ParamStore& store, Options opts);
  explicit Adam(ParamStore& store) : Adam(store, Options()) {}

  /// One update step from accumulated gradients.
  void step();

  void set_lr(double lr) { opts_.lr = lr; }
  [[nodiscard]] double lr() const { return opts_.lr; }
  [[nodiscard]] std::size_t steps() const { return t_; }

 private:
  ParamStore& store_;
  Options opts_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;  ///< first-moment estimate per parameter
  std::vector<Tensor> v_;  ///< second-moment estimate per parameter
};

}  // namespace tgnn::nn
