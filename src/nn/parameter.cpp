#include "nn/parameter.hpp"

#include <cmath>

namespace tgnn::nn {

std::size_t ParamStore::count() const {
  std::size_t n = 0;
  for (const auto* p : params_) n += p->value.size();
  return n;
}

double ParamStore::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (const auto* p : params_)
    for (std::size_t i = 0; i < p->grad.size(); ++i)
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto* p : params_) p->grad *= scale;
  }
  return norm;
}

}  // namespace tgnn::nn
