// Finite-difference gradient checking used by the property tests: every
// analytic backward in this repo (Linear, GRU, attention, time encoders,
// full model) is validated against central differences.
#pragma once

#include <functional>
#include <string>

#include "nn/parameter.hpp"

namespace tgnn::nn {

struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string worst_param;
  bool ok(double tol) const { return max_rel_err < tol; }
};

/// loss_fn must recompute the full forward pass and return the scalar loss
/// (gradients are NOT needed from it). analytic gradients must already be
/// accumulated in the parameters' grad fields before calling.
///
/// For each scalar parameter theta: numeric = (L(theta+eps) - L(theta-eps)) / 2eps,
/// relative error = |numeric - analytic| / max(1e-4, |numeric| + |analytic|).
GradCheckResult check_gradients(ParamStore& store,
                                const std::function<double()>& loss_fn,
                                double eps = 1e-3,
                                std::size_t max_checks_per_param = 24);

}  // namespace tgnn::nn
