#include "nn/optim.hpp"

#include <cmath>

namespace tgnn::nn {

Adam::Adam(ParamStore& store, Options opts) : store_(store), opts_(opts) {
  m_.reserve(store.params().size());
  v_.reserve(store.params().size());
  for (const auto* p : store.params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  const auto& params = store_.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter& p = *params[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      double g = p.grad[i];
      if (opts_.weight_decay != 0.0) g += opts_.weight_decay * p.value[i];
      m[i] = static_cast<float>(opts_.beta1 * m[i] + (1.0 - opts_.beta1) * g);
      v[i] = static_cast<float>(opts_.beta2 * v[i] + (1.0 - opts_.beta2) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p.value[i] -=
          static_cast<float>(opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps));
    }
  }
}

}  // namespace tgnn::nn
