// Analytic performance model of Section V (Eq. 18-22).
//
// Given the algorithm parameters (feature widths, neighbor budget), the
// design configuration (Ncu, Sg, SFAM, SFTM, Nb, frequency), and the memory
// characteristics (peak bandwidth + burst efficiency alpha(l)), predicts
// the pipeline period Tp, the maximum throughput Nb*Ncu/Tp, and the latency
// of an N-edge batch.
//
// Two calibrations beyond the paper's closed forms, both computable from
// workload statistics the model is allowed to know a priori:
//  * vertices-per-edge: Eq. 20 implicitly assumes every edge contributes
//    two distinct vertices per processing batch; real streams repeat
//    endpoints. measure_vertices_per_edge() samples the dedup factor.
//  * pipeline fill: Eq. 22 charges (beta - 1) full periods for fill; the
//    scheduler's actual fill is the sum of the (unequal) stage durations.
//
// The model still deliberately excludes DDR refresh, per-chunk vertex-count
// variance, and Updater commit contention — the error sources the paper
// cites for its 9.9-12.8% mismatch (Fig. 6); the cycle simulator charges
// all three.
#pragma once

#include "data/dataset.hpp"
#include "fpga/ddr_model.hpp"
#include "fpga/device.hpp"
#include "tgnn/config.hpp"

namespace tgnn::perf {

struct Prediction {
  double t_comp_s = 0.0;  ///< Eq. 19/20 (dominant compute stage)
  double t_ls_s = 0.0;    ///< Eq. 21 (total load/store per batch)
  double tp_s = 0.0;      ///< Eq. 18
  double fill_s = 0.0;    ///< pipeline fill (first batch end-to-end)
  double throughput_eps = 0.0;  ///< Eq. 22 (max throughput)
  double latency_s = 0.0;       ///< Eq. 22 for a batch of N edges
};

class PerfModel {
 public:
  PerfModel(fpga::DesignConfig dc, fpga::FpgaDevice dev, core::ModelConfig mc);

  /// Expected unique vertices touched per edge within an Nb window
  /// (in (0, 2]); default 2.0 = worst case, no repeated endpoints.
  void set_vertices_per_edge(double v);

  /// Sample the dedup factor of a workload: mean unique endpoints per edge
  /// over consecutive nb-edge windows of `range`.
  static double measure_vertices_per_edge(const data::Dataset& ds,
                                          const graph::BatchRange& range,
                                          std::size_t nb);

  /// Pipeline period and max throughput (batch-size independent).
  [[nodiscard]] Prediction steady_state() const;

  /// Full prediction for an application batch of `batch_edges` edges.
  [[nodiscard]] Prediction predict(std::size_t batch_edges) const;

  /// Number of pipeline stages beta in Eq. 22.
  static constexpr std::size_t kBeta = 9;

 private:
  /// All 9 stage durations (seconds) for one processing batch.
  [[nodiscard]] std::vector<double> stage_durations() const;

  fpga::DesignConfig dc_;
  fpga::FpgaDevice dev_;
  core::ModelConfig mc_;
  fpga::DdrModel ddr_;
  double vertices_per_edge_ = 2.0;
};

}  // namespace tgnn::perf
