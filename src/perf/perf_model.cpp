#include "perf/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "fpga/data_loader.hpp"
#include "fpga/embedding_unit.hpp"
#include "fpga/memory_update_unit.hpp"

namespace tgnn::perf {

PerfModel::PerfModel(fpga::DesignConfig dc, fpga::FpgaDevice dev,
                     core::ModelConfig mc)
    : dc_(std::move(dc)), dev_(std::move(dev)), mc_(std::move(mc)),
      ddr_(dev_.ddr_bandwidth_gbps) {}

void PerfModel::set_vertices_per_edge(double v) {
  if (v <= 0.0 || v > 2.0)
    throw std::invalid_argument("vertices_per_edge must be in (0, 2]");
  vertices_per_edge_ = v;
}

double PerfModel::measure_vertices_per_edge(const data::Dataset& ds,
                                            const graph::BatchRange& range,
                                            std::size_t nb) {
  if (range.size() == 0 || nb == 0) return 2.0;
  std::size_t vertices = 0, edges = 0;
  for (std::size_t base = range.begin; base < range.end; base += nb) {
    const std::size_t end = std::min(range.end, base + nb);
    std::set<graph::NodeId> uniq;
    for (std::size_t i = base; i < end; ++i) {
      uniq.insert(ds.graph.edge(i).src);
      uniq.insert(ds.graph.edge(i).dst);
    }
    vertices += uniq.size();
    edges += end - base;
  }
  return static_cast<double>(vertices) / static_cast<double>(edges);
}

std::vector<double> PerfModel::stage_durations() const {
  const double cyc = dc_.cycle_seconds();
  const auto nv = static_cast<std::size_t>(
      std::ceil(vertices_per_edge_ * static_cast<double>(dc_.nb)));

  const fpga::MemoryUpdateUnit muu(dc_, mc_);
  const fpga::EmbeddingUnit eu(dc_, mc_);
  fpga::DataLoader loader(mc_);
  fpga::BatchShape shape;
  shape.edges = dc_.nb;
  shape.vertices = nv;
  shape.neighbors = nv * mc_.effective_neighbors();
  shape.commits = nv;

  // Mirror the simulator's 9-stage schedule (fpga/accelerator.cpp).
  return {
      loader.load_edges(shape).seconds(ddr_),
      loader.load_vertex_state(shape).seconds(ddr_),
      loader.prefetch_neighbors(shape).seconds(ddr_),
      cyc * static_cast<double>(muu.encode_cycles(nv)),
      cyc * static_cast<double>(muu.gate_cycles(nv)),
      cyc * static_cast<double>(eu.attention_cycles(nv) +
                                eu.encode_cycles(nv)),
      cyc * static_cast<double>(eu.aggregation_cycles(nv) +
                                eu.transform_cycles(nv)),
      loader.writeback_state(shape).seconds(ddr_),
      loader.store_embeddings(shape).seconds(ddr_),
  };
}

Prediction PerfModel::steady_state() const {
  const auto stages = stage_durations();

  Prediction p;
  // Eq. 19/20: the dominant compute stage.
  p.t_comp_s = std::max({stages[3], stages[4], stages[5], stages[6]});
  // Eq. 21: total load/store per processing batch.
  p.t_ls_s = stages[0] + stages[1] + stages[2] + stages[7] + stages[8];
  // Eq. 18. The DDR stages occupy distinct channels in the simulated
  // architecture, so the steady-state period is bounded by the largest
  // single stage, with Eq. 18's max(T_comp, T_LS) as the conservative cap.
  const double max_stage = *std::max_element(stages.begin(), stages.end());
  p.tp_s = std::max(p.t_comp_s, max_stage);
  // Pipeline fill: first batch traverses every stage once.
  p.fill_s = 0.0;
  for (double s : stages) p.fill_s += s;
  // Eq. 22, with the Ncu CUs working processing batches in parallel.
  p.throughput_eps =
      static_cast<double>(dc_.nb) * static_cast<double>(dc_.ncu) / p.tp_s;
  return p;
}

Prediction PerfModel::predict(std::size_t batch_edges) const {
  Prediction p = steady_state();
  const double waves = std::ceil(static_cast<double>(batch_edges) /
                                 static_cast<double>(dc_.nb * dc_.ncu));
  // Eq. 22 refined: latency = fill + (waves - 1) * Tp.
  p.latency_s = p.fill_s + std::max(0.0, waves - 1.0) * p.tp_s;
  return p;
}

}  // namespace tgnn::perf
