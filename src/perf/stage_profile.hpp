// Low-overhead per-stage profiling of the software serving pipeline — the
// measurement half of the runtime auto-tuner (the other half is the
// calibrated cost model in perf/auto_tuner.hpp).
//
// The ServingEngine feeds one record() per completed micro-batch: the four
// engine-stage times (core::Stage — MemoryUpdate / NeighborGather /
// GnnCompute / Decode), the batch's edge count, its unique-vertex count
// (the gather fan-out / endpoint-dedup factor the Section V model calls
// vertices-per-edge), and the submit-queue depth at completion. The
// profiler keeps an EWMA mean per signal plus a small fixed ring of recent
// samples per stage for percentiles — O(1) doubles per batch, no
// allocation after construction — so it stays on in production serving.
//
// Attribution convention: profiles recorded from aggregate PartTimes
// (serial / multi-worker modes) map the buckets memory -> MemoryUpdate,
// sample -> NeighborGather, gnn -> GnnCompute, update -> Decode. The
// batched GNN gather is charged to the gnn bucket by PartTimes even though
// it executes inside the NeighborGather stage, so bucket profiles shift
// some gather time into GnnCompute versus the stage-wall times the
// pipelined scheduler records; the cost model only needs the sum and the
// max, and the calibration tests pin the resulting error.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "tgnn/inference.hpp"

namespace tgnn::perf {

/// Human-readable name of a pipeline stage index (core::Stage order).
[[nodiscard]] const char* stage_name(std::size_t stage);

/// One stage's time statistics over the profiled batches (seconds).
struct StageStat {
  double ewma_s = 0.0;  ///< exponentially weighted mean per-batch time
  double mean_s = 0.0;  ///< plain mean over everything recorded
  double p50_s = 0.0;   ///< percentiles over the recent-sample window
  double p95_s = 0.0;
  /// Affine cost fit t(B) = fixed_s + per_edge_s * B, least-squares over
  /// the recent window's (batch_edges, time) pairs — what lets one live
  /// profile calibrate the software cost model. Live batch sizes vary
  /// (max_wait flushes, contiguous-run caps), which is the variance the
  /// fit needs; when every batch formed at the same size the fit falls
  /// back to through-origin (fixed_s = 0), i.e. "no evidence that
  /// resizing changes per-edge cost".
  double fixed_s = 0.0;
  double per_edge_s = 0.0;
};

/// Snapshot of the measured pipeline shape — everything the software cost
/// model needs to rank serving configurations.
struct StageProfile {
  std::array<StageStat, core::kNumStages> stages;
  std::size_t batches = 0;        ///< records this snapshot summarizes
  double ewma_batch_edges = 0.0;  ///< EWMA micro-batch size (edges)
  double mean_batch_edges = 0.0;
  /// Unique endpoints per edge within a batch (EWMA) — the dedup factor
  /// Section V's Eq. 20 calibrates with measure_vertices_per_edge(); here
  /// it is measured off the live stream instead of sampled a priori.
  double vertices_per_edge = 2.0;
  double ewma_queue_depth = 0.0;  ///< submit-queue depth at batch completion
  /// Sum / max of the per-stage EWMA means — the serial service time and
  /// the pipeline bottleneck period of Eq. 18's software analogue.
  [[nodiscard]] double total_ewma_s() const;
  [[nodiscard]] double bottleneck_ewma_s() const;
  [[nodiscard]] std::size_t bottleneck_stage() const;
  /// One-line summary ("stage ms p50/p95: ...") for bench banners.
  [[nodiscard]] std::string describe() const;
};

/// The accumulator. NOT internally synchronized — the ServingEngine records
/// and snapshots under its own mutex; standalone users do their own locking.
class StageProfiler {
 public:
  /// `alpha` is the EWMA weight of a new sample; `window` the per-stage
  /// ring size percentiles are computed over (memory cost: 4 * window
  /// doubles, fixed at construction).
  explicit StageProfiler(double alpha = 0.2, std::size_t window = 128);

  /// Record one completed micro-batch. `stage_s` are the four stage times
  /// in core::Stage order; `unique_vertices` the batch's deduplicated
  /// endpoint count; `queue_depth` the submit-queue depth right now.
  void record(const std::array<double, core::kNumStages>& stage_s,
              std::size_t batch_edges, std::size_t unique_vertices,
              std::size_t queue_depth);

  /// Percentiles are computed here (sorting a copy of each stage window),
  /// not in record() — snapshots are occasional, records are per-batch.
  [[nodiscard]] StageProfile snapshot() const;

  [[nodiscard]] std::size_t batches() const { return batches_; }

  void reset();

 private:
  double alpha_;
  std::size_t window_;
  std::size_t batches_ = 0;
  std::size_t ring_fill_ = 0;  ///< valid entries per ring (same for all)
  std::size_t ring_pos_ = 0;
  std::array<std::vector<double>, core::kNumStages> ring_;
  std::vector<double> ring_edges_;  ///< batch sizes, aligned with ring_
  std::array<double, core::kNumStages> ewma_{};
  std::array<double, core::kNumStages> sum_{};
  double ewma_edges_ = 0.0;
  double sum_edges_ = 0.0;
  double ewma_vpe_ = 2.0;
  double ewma_queue_ = 0.0;
};

}  // namespace tgnn::perf
