#include "perf/auto_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace tgnn::perf {

std::string SwCandidate::describe() const {
  char buf[96];
  if (pipelined)
    std::snprintf(buf, sizeof buf, "batch %zu, pipelined depth %zu",
                  max_batch, pipeline_depth);
  else if (workers > 1)
    std::snprintf(buf, sizeof buf, "batch %zu, %zu workers", max_batch,
                  workers);
  else
    std::snprintf(buf, sizeof buf, "batch %zu, serial", max_batch);
  return buf;
}

SoftwarePerfModel::SoftwarePerfModel(const StageProfile& profile) {
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    fixed_[k] = profile.stages[k].fixed_s;
    per_edge_[k] = profile.stages[k].per_edge_s;
  }
  vpe_ = profile.vertices_per_edge;
}

SoftwarePerfModel::SoftwarePerfModel(const StageProfile& lo,
                                     const StageProfile& hi) {
  const double e_lo = lo.ewma_batch_edges;
  const double e_hi = hi.ewma_batch_edges;
  const double spread = e_hi - e_lo;
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    const double m_lo = lo.stages[k].ewma_s;
    const double m_hi = hi.stages[k].ewma_s;
    const auto through_origin = [&] {
      fixed_[k] = 0.0;
      per_edge_[k] = e_hi > 0.0 ? m_hi / e_hi : 0.0;
    };
    if (spread < 1.0) {  // less than one edge apart: no slope information
      through_origin();
      continue;
    }
    const double slope = (m_hi - m_lo) / spread;
    const double intercept = m_lo - slope * e_lo;
    // Monotonicity prior, as in the windowed fit: stage time cannot shrink
    // with batch size and fixed cost cannot be negative.
    if (slope < 0.0 || intercept < 0.0) {
      through_origin();
      continue;
    }
    fixed_[k] = intercept;
    per_edge_[k] = slope;
  }
  vpe_ = hi.vertices_per_edge;
}

void SoftwarePerfModel::set_hardware_threads(std::size_t hw) {
  hw_ = std::max<std::size_t>(hw, 1);
}

void SoftwarePerfModel::set_num_nodes(std::size_t n) { num_nodes_ = n; }

void SoftwarePerfModel::set_backend_threads(std::size_t t) {
  backend_threads_ = std::max<std::size_t>(t, 1);
}

void SoftwarePerfModel::calibrate_overhead(const StageProfile& lo,
                                           double rps_lo,
                                           const StageProfile& hi,
                                           double rps_hi) {
  const double b_lo = lo.mean_batch_edges;
  const double b_hi = hi.mean_batch_edges;
  if (rps_lo <= 0.0 || rps_hi <= 0.0 || b_lo <= 0.0 || b_hi <= 0.0) return;
  const auto residual = [&](double b, double rps) {
    double stage_s = 0.0;
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      stage_s += fixed_[k] + per_edge_[k] * b;
    return b / rps - stage_s;  // measured period minus bucketed period
  };
  const double r_lo = residual(b_lo, rps_lo);
  const double r_hi = residual(b_hi, rps_hi);
  const double spread = b_hi - b_lo;
  if (spread < 1.0) {  // no slope information: all-fixed overhead
    oh_fixed_s_ = std::max(r_hi, 0.0);
    oh_per_item_s_ = 0.0;
    return;
  }
  const double slope = (r_hi - r_lo) / spread;
  const double intercept = r_lo - slope * b_lo;
  // Same monotonicity prior as the stage fits: overhead cannot be
  // negative and cannot shrink with batch size. A negative slope means
  // the lo point was noisy — keep the fixed character (mean residual);
  // a negative intercept means the overhead is item-dominated — keep the
  // through-origin slope.
  if (slope < 0.0) {
    oh_fixed_s_ = std::max(0.5 * (r_lo + r_hi), 0.0);
    oh_per_item_s_ = 0.0;
  } else if (intercept < 0.0) {
    oh_fixed_s_ = 0.0;
    oh_per_item_s_ = std::max(r_hi, 0.0) / b_hi;
  } else {
    oh_fixed_s_ = intercept;
    oh_per_item_s_ = slope;
  }
}

double SoftwarePerfModel::stage_time_s(std::size_t stage,
                                       std::size_t batch_edges) const {
  return fixed_[stage] +
         per_edge_[stage] * static_cast<double>(batch_edges);
}

SwPrediction SoftwarePerfModel::predict(const SwCandidate& c) const {
  SwPrediction p;
  const auto batch = static_cast<double>(std::max<std::size_t>(c.max_batch, 1));
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    p.stage_s[k] = stage_time_s(k, c.max_batch);
    p.batch_s += p.stage_s[k];
    p.bottleneck_s = std::max(p.bottleneck_s, p.stage_s[k]);
  }
  p.fill_s = p.batch_s;
  p.period_s = p.batch_s;
  if (c.pipelined) {
    const std::size_t overlap = std::max<std::size_t>(
        std::min({c.pipeline_depth, core::kNumStages, hw_}), 1);
    const auto dilate = static_cast<double>(
        std::min<std::size_t>(overlap, backend_threads_));
    p.fill_s = p.batch_s * dilate;
    p.period_s = std::max(p.bottleneck_s * dilate,
                          p.batch_s * dilate / static_cast<double>(overlap));
  } else if (c.workers > 1) {
    const auto w =
        static_cast<double>(std::min<std::size_t>(c.workers, hw_));
    const double footprint = vpe_ * batch;
    const double disjoint =
        num_nodes_ > 0
            ? std::exp(-(footprint * footprint) /
                       static_cast<double>(num_nodes_))
            : 1.0;
    const double parallelism = 1.0 + (w - 1.0) * disjoint;
    p.period_s = p.batch_s / parallelism;
  }
  // Scheduler overhead (batch formation, queue handoff, bookkeeping) is
  // serialized on the dispatch path in every mode — it adds to the period
  // whole, never overlapped or divided across lanes.
  const double oh = overhead_s(batch);
  p.period_s += oh;
  p.fill_s += oh;
  if (p.period_s > 0.0) p.throughput_rps = batch / p.period_s;
  p.latency_s = p.fill_s;
  return p;
}

AutoTuner::AutoTuner(runtime::Backend& backend, AutoTunerOptions opts)
    : backend_(backend), opts_(std::move(opts)) {
  if (opts_.hardware_threads == 0)
    opts_.hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
}

runtime::ServingOptions AutoTuner::options_for(const SwCandidate& c) const {
  runtime::ServingOptions o;
  o.max_batch = std::max<std::size_t>(c.max_batch, 1);
  o.max_wait_s = opts_.max_wait_s;
  o.queue_capacity = std::max<std::size_t>(4 * o.max_batch, 4096);
  o.workers = c.pipelined ? 1 : c.workers;
  o.pipelined = c.pipelined;
  o.pipeline_depth = c.pipeline_depth;
  return o;
}

std::vector<SwCandidate> AutoTuner::candidates() const {
  const auto* cb = dynamic_cast<runtime::ConcurrentBackend*>(&backend_);
  const auto* sb = dynamic_cast<runtime::StagedBackend*>(&backend_);
  std::vector<SwCandidate> out;
  for (std::size_t b : opts_.batch_grid) {
    SwCandidate c;
    c.max_batch = b;
    out.push_back(c);
    if (cb != nullptr)
      for (std::size_t w : opts_.worker_grid)
        if (w > 1 && w <= cb->lanes()) {
          c.workers = w;
          out.push_back(c);
        }
    if (sb != nullptr) {
      c.workers = 1;
      c.pipelined = true;
      for (std::size_t d : opts_.depth_grid)
        if (d >= 2) {
          c.pipeline_depth = d;
          out.push_back(c);
        }
    }
  }
  return out;
}

StageProfile AutoTuner::profile_run(const runtime::ServingOptions& sopts,
                                    std::size_t begin, std::size_t events,
                                    double* measured_rps) {
  runtime::ServingEngine server(backend_, sopts);
  for (std::size_t i = begin; i < begin + events; ++i) server.submit(i);
  server.drain();
  const auto stats = server.stats();
  if (measured_rps != nullptr) *measured_rps = stats.throughput_rps;
  return stats.stage_profile;
}

TuneResult AutoTuner::search(std::size_t start_index) {
  TuneResult result;
  result.next_index = start_index;
  result.options = runtime::ServingOptions{};

  // ---- calibration: two short serves at deliberately different batch
  // sizes (the two-point affine needs the spread closed-loop traffic
  // would otherwise never produce).
  SwCandidate calib;
  calib.max_batch = opts_.calib_batch_lo;
  double calib_rps_lo = 0.0;
  const StageProfile lo = profile_run(options_for(calib), result.next_index,
                                      opts_.calib_events, &calib_rps_lo);
  result.next_index += opts_.calib_events;
  calib.max_batch = opts_.calib_batch_hi;
  double calib_rps_hi = 0.0;
  const StageProfile hi = profile_run(options_for(calib), result.next_index,
                                      opts_.calib_events, &calib_rps_hi);
  result.next_index += opts_.calib_events;
  result.profile = hi;

  // A backend that reports no stage times (apan) gives the model nothing
  // to rank with — return the defaults rather than a fabricated winner.
  if (hi.total_ewma_s() <= 0.0) {
    result.chosen = SwCandidate{};
    result.chosen.max_batch = result.options.max_batch;
    return result;
  }

  SoftwarePerfModel model(lo, hi);
  model.set_hardware_threads(opts_.hardware_threads);
  model.set_num_nodes(backend_.dataset().graph.num_nodes());
  model.set_backend_threads(opts_.backend_threads);
  model.calibrate_overhead(lo, calib_rps_lo, hi, calib_rps_hi);

  for (const SwCandidate& c : candidates())
    result.ranked.push_back({c, model.predict(c), 0.0});
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.predicted.throughput_rps >
                            b.predicted.throughput_rps;
                   });

  // ---- validation: re-measure the top-K predicted candidates and let the
  // measurement overrule the model among them (the model orders the whole
  // space; the measurement picks within the shortlist).
  const std::size_t k =
      std::min<std::size_t>(opts_.validate_top_k, result.ranked.size());
  std::size_t best = 0;
  for (std::size_t i = 0; i < k; ++i) {
    double rps = 0.0;
    profile_run(options_for(result.ranked[i].candidate), result.next_index,
                opts_.validate_events, &rps);
    result.next_index += opts_.validate_events;
    result.ranked[i].measured_rps = rps;
    if (rps > result.ranked[best].measured_rps) best = i;
  }

  result.chosen = result.ranked[best].candidate;
  result.predicted = result.ranked[best].predicted;
  result.options = options_for(result.chosen);
  return result;
}

std::string TuneResult::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "auto-tuned: %s (predicted %.0f req/s, period %.3f ms)",
                chosen.describe().c_str(), predicted.throughput_rps,
                predicted.period_s * 1e3);
  std::string out = buf;
  const std::size_t show = std::min<std::size_t>(ranked.size(), 5);
  for (std::size_t i = 0; i < show; ++i) {
    std::snprintf(buf, sizeof buf, "\n  #%zu %-28s predicted %8.0f req/s",
                  i + 1, ranked[i].candidate.describe().c_str(),
                  ranked[i].predicted.throughput_rps);
    out += buf;
    if (ranked[i].measured_rps > 0.0) {
      std::snprintf(buf, sizeof buf, "  measured %8.0f req/s",
                    ranked[i].measured_rps);
      out += buf;
    }
  }
  return out;
}

}  // namespace tgnn::perf
