#include "perf/stage_profile.hpp"

#include <algorithm>
#include <cstdio>

namespace tgnn::perf {

const char* stage_name(std::size_t stage) {
  switch (static_cast<core::Stage>(stage)) {
    case core::Stage::kMemoryUpdate: return "MemoryUpdate";
    case core::Stage::kNeighborGather: return "NeighborGather";
    case core::Stage::kGnnCompute: return "GnnCompute";
    case core::Stage::kDecode: return "Decode";
  }
  return "?";
}

double StageProfile::total_ewma_s() const {
  double sum = 0.0;
  for (const auto& s : stages) sum += s.ewma_s;
  return sum;
}

double StageProfile::bottleneck_ewma_s() const {
  return stages[bottleneck_stage()].ewma_s;
}

std::size_t StageProfile::bottleneck_stage() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < core::kNumStages; ++k)
    if (stages[k].ewma_s > stages[best].ewma_s) best = k;
  return best;
}

std::string StageProfile::describe() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "stage profile over %zu batches (~%.0f edges/batch):\n",
                batches, ewma_batch_edges);
  out += buf;
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    std::snprintf(buf, sizeof buf,
                  "  %-14s ewma %8.3f ms  p50 %8.3f ms  p95 %8.3f ms%s\n",
                  stage_name(k), stages[k].ewma_s * 1e3, stages[k].p50_s * 1e3,
                  stages[k].p95_s * 1e3,
                  k == bottleneck_stage() ? "  <- bottleneck" : "");
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  fan-out %.2f vertices/edge, queue depth ~%.1f\n",
                vertices_per_edge, ewma_queue_depth);
  out += buf;
  return out;
}

StageProfiler::StageProfiler(double alpha, std::size_t window)
    : alpha_(alpha), window_(std::max<std::size_t>(window, 2)) {
  for (auto& r : ring_) r.assign(window_, 0.0);
  ring_edges_.assign(window_, 0.0);
}

namespace {

/// Least-squares affine fit y = fixed + per_edge * x over the window, with
/// a monotonicity prior (stage time cannot shrink with batch size): a
/// negative slope or intercept degrades to the through-origin fit.
void affine_fit(const std::vector<double>& x, const std::vector<double>& y,
                std::size_t n, double* fixed, double* per_edge) {
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  const double origin_slope = sx > 0.0 ? sy / sx : 0.0;
  // Relative variance guard: a window of near-identical batch sizes has no
  // slope information — denom / (n * mean_x^2) measures the spread.
  if (sx <= 0.0 || denom <= 1e-6 * sx * sx) {
    *fixed = 0.0;
    *per_edge = origin_slope;
    return;
  }
  double slope = (dn * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / dn;
  if (slope < 0.0 || intercept < 0.0) {
    slope = origin_slope;
    intercept = 0.0;
  }
  *fixed = intercept;
  *per_edge = slope;
}

}  // namespace

void StageProfiler::record(const std::array<double, core::kNumStages>& stage_s,
                           std::size_t batch_edges,
                           std::size_t unique_vertices,
                           std::size_t queue_depth) {
  const bool first = batches_ == 0;
  ++batches_;
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    ewma_[k] = first ? stage_s[k]
                     : alpha_ * stage_s[k] + (1.0 - alpha_) * ewma_[k];
    sum_[k] += stage_s[k];
    ring_[k][ring_pos_] = stage_s[k];
  }
  ring_edges_[ring_pos_] = static_cast<double>(batch_edges);
  ring_pos_ = (ring_pos_ + 1) % window_;
  ring_fill_ = std::min(ring_fill_ + 1, window_);

  const auto edges = static_cast<double>(batch_edges);
  ewma_edges_ = first ? edges : alpha_ * edges + (1.0 - alpha_) * ewma_edges_;
  sum_edges_ += edges;
  if (batch_edges > 0) {
    const double vpe = static_cast<double>(unique_vertices) / edges;
    ewma_vpe_ = first ? vpe : alpha_ * vpe + (1.0 - alpha_) * ewma_vpe_;
  }
  const auto depth = static_cast<double>(queue_depth);
  ewma_queue_ = first ? depth : alpha_ * depth + (1.0 - alpha_) * ewma_queue_;
}

StageProfile StageProfiler::snapshot() const {
  StageProfile p;
  p.batches = batches_;
  if (batches_ == 0) return p;
  const auto n = static_cast<double>(batches_);
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    p.stages[k].ewma_s = ewma_[k];
    p.stages[k].mean_s = sum_[k] / n;
    // Percentiles over the valid prefix of the ring (order is irrelevant —
    // the window is sorted whole).
    std::vector<double> win(ring_[k].begin(),
                            ring_[k].begin() +
                                static_cast<std::ptrdiff_t>(ring_fill_));
    std::sort(win.begin(), win.end());
    const auto idx = [&](double q) {
      return win[static_cast<std::size_t>(
          q * static_cast<double>(win.size() - 1))];
    };
    p.stages[k].p50_s = idx(0.50);
    p.stages[k].p95_s = idx(0.95);
    affine_fit(ring_edges_, ring_[k], ring_fill_, &p.stages[k].fixed_s,
               &p.stages[k].per_edge_s);
  }
  p.ewma_batch_edges = ewma_edges_;
  p.mean_batch_edges = sum_edges_ / n;
  p.vertices_per_edge = ewma_vpe_;
  p.ewma_queue_depth = ewma_queue_;
  return p;
}

void StageProfiler::reset() {
  batches_ = 0;
  ring_fill_ = 0;
  ring_pos_ = 0;
  for (auto& r : ring_) std::fill(r.begin(), r.end(), 0.0);
  std::fill(ring_edges_.begin(), ring_edges_.end(), 0.0);
  ewma_.fill(0.0);
  sum_.fill(0.0);
  ewma_edges_ = 0.0;
  sum_edges_ = 0.0;
  ewma_vpe_ = 2.0;
  ewma_queue_ = 0.0;
}

}  // namespace tgnn::perf
