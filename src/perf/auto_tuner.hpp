// The paper's design-space-exploration loop, applied to the software
// runtime: a calibrated cost model over measured stage profiles
// (perf/stage_profile.hpp) ranks ServingOptions candidates, and an offline
// searcher picks the best configuration for a backend + workload.
//
// SoftwarePerfModel is the sibling of the Section V analytic model
// (perf/perf_model.hpp): where PerfModel predicts the accelerator's
// pipeline period Tp = max stage and fill = sum of stages from design
// parameters (Eq. 18-22), SoftwarePerfModel predicts the serving engine's
// period and fill from MEASURED per-stage affine cost fits
// t_k(B) = fixed_k + per_edge_k * B:
//
//   serial       period = sum_k t_k(B)                  (one batch at a time)
//   pipelined    period = max(max_k t_k(B) * d, sum_k t_k(B) * d / overlap)
//                with overlap = min(depth, kNumStages, hw threads) and
//                d = min(overlap, backend internal threads): a backend whose
//                serial batch already ran on T omp threads gives each
//                concurrent stage only T/overlap of them, so stage times
//                dilate — pipelining buys nothing a work-conserving
//                parallel backend didn't already have.
//   workers W    period = sum_k t_k(B) / P with
//                P = 1 + (min(W, hw) - 1) * exp(-(vpe*B)^2 / num_nodes):
//                the probability two batch footprints of vpe*B vertices
//                drawn from num_nodes collide (birthday approximation)
//                discounts the lanes head-of-line admission will stall.
//
//   throughput = B / period,  first-batch latency = fill = sum_k t_k(B) * d
//
// On top of the stage terms every mode's period pays oh(B) — the affine
// per-batch scheduler overhead (formation, queue handoff, bookkeeping)
// that the stage buckets cannot see, fitted by calibrate_overhead() from
// the residual between measured and bucketed period at the two
// calibration serves (zero if never calibrated).
//
// Calibration comes either from one live profile (its windowed affine
// fits) or from two profiles taken at deliberately different batch sizes
// (two-point affine through the EWMA means — the offline tuner's route,
// robust when closed-loop serving gives the window no size variance).
//
// AutoTuner::search() is the DSE loop: run short calibration serves at two
// batch sizes, build the model, rank every candidate the backend's
// contracts admit (workers need a ConcurrentBackend, pipelining a
// StagedBackend), optionally re-measure the top-K predicted candidates,
// and return the winning ServingOptions. The search CONSUMES stream events
// (calibration and validation serve real traffic and advance backend
// state) — tune on a throwaway backend, or treat the consumed prefix as
// warmup and continue serving from TuneResult::next_index.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "perf/stage_profile.hpp"
#include "runtime/serving.hpp"

namespace tgnn::perf {

/// One point of the software design space (the knobs ServingOptions
/// exposes that change throughput, minus admission policy).
struct SwCandidate {
  std::size_t max_batch = 256;
  std::size_t workers = 1;       ///< > 1 requires a ConcurrentBackend
  bool pipelined = false;        ///< requires a StagedBackend
  std::size_t pipeline_depth = core::kNumStages;
  [[nodiscard]] std::string describe() const;
};

/// The model's output for one candidate (the software Eq. 18-22 row).
struct SwPrediction {
  std::array<double, core::kNumStages> stage_s{};  ///< t_k(B)
  double batch_s = 0.0;       ///< sum of stages: serial service time
  double bottleneck_s = 0.0;  ///< max stage: the pipeline's Tp analogue
  double period_s = 0.0;      ///< steady-state time between completions
  double fill_s = 0.0;        ///< first-batch end-to-end (pipeline fill)
  double throughput_rps = 0.0;
  double latency_s = 0.0;     ///< fill + half a formation wait
};

class SoftwarePerfModel {
 public:
  /// Calibrate from one live profile's windowed affine fits.
  explicit SoftwarePerfModel(const StageProfile& profile);
  /// Two-point affine calibration across profiles measured at two batch
  /// sizes (EWMA means vs EWMA batch edges). Degenerate spacing (same
  /// batch size twice) falls back to the through-origin fit of `hi`.
  SoftwarePerfModel(const StageProfile& lo, const StageProfile& hi);

  /// Core count the candidate's parallelism is capped by (default 1).
  void set_hardware_threads(std::size_t hw);
  /// Graph size anchoring the footprint-collision discount for workers.
  void set_num_nodes(std::size_t n);
  /// OpenMP width the calibration profile's serial batches ran with
  /// (default 1); > 1 dilates pipelined stage times (see file comment).
  void set_backend_threads(std::size_t t);

  /// Fold the scheduler overhead the stage buckets cannot see into the
  /// model. The stage fits only cover time spent INSIDE process_batch's
  /// instrumented sections; batch formation, queue handoff, and
  /// bookkeeping are invisible to them yet sit on the serial critical
  /// path every period. Given the measured throughput of the two
  /// calibration serves, this fits the residual
  ///   measured_period(B) - sum_k t_k(B)
  /// as an affine per-batch overhead oh(B) = oh_fixed + oh_per_item * B
  /// (clamped non-negative) that predict() adds to every candidate's
  /// period and fill. Without this call the overhead is zero and
  /// predictions are pure stage sums.
  void calibrate_overhead(const StageProfile& lo, double rps_lo,
                          const StageProfile& hi, double rps_hi);
  /// oh(B): calibrated per-batch scheduler overhead (0 before calibration).
  [[nodiscard]] double overhead_s(double batch) const {
    return oh_fixed_s_ + oh_per_item_s_ * batch;
  }

  [[nodiscard]] SwPrediction predict(const SwCandidate& c) const;
  /// t_k(B) from the calibrated fit.
  [[nodiscard]] double stage_time_s(std::size_t stage,
                                    std::size_t batch_edges) const;
  [[nodiscard]] double vertices_per_edge() const { return vpe_; }

 private:
  std::array<double, core::kNumStages> fixed_{};
  std::array<double, core::kNumStages> per_edge_{};
  double oh_fixed_s_ = 0.0;     ///< per-batch scheduler overhead, fixed part
  double oh_per_item_s_ = 0.0;  ///< per-batch scheduler overhead, per item
  double vpe_ = 2.0;
  std::size_t hw_ = 1;
  std::size_t num_nodes_ = 0;
  std::size_t backend_threads_ = 1;
};

struct AutoTunerOptions {
  std::size_t calib_events = 1536;   ///< stream events per calibration run
  std::size_t calib_batch_lo = 32;   ///< the two calibration batch sizes
  std::size_t calib_batch_hi = 128;
  /// Candidate grids. Worker counts above the backend's lanes() and modes
  /// the backend's contracts don't admit are skipped, not errors.
  std::vector<std::size_t> batch_grid = {16, 32, 64, 128, 256, 512};
  std::vector<std::size_t> worker_grid = {2, 4, 8};
  std::vector<std::size_t> depth_grid = {2, core::kNumStages};
  double max_wait_s = 1e-3;  ///< formation wait of every candidate
  std::size_t hardware_threads = 0;  ///< 0 = std::thread::hardware_concurrency
  std::size_t backend_threads = 1;   ///< omp width of a serial batch (cpu-mt)
  /// Re-measure the top-K predicted candidates on real traffic and return
  /// the measured-best (0 = trust the model outright).
  std::size_t validate_top_k = 3;
  std::size_t validate_events = 1024;
};

/// One ranked design point of the search.
struct RankedCandidate {
  SwCandidate candidate;
  SwPrediction predicted;
  double measured_rps = 0.0;  ///< 0 unless this candidate was validated
};

struct TuneResult {
  runtime::ServingOptions options;  ///< the winner, engine-ready
  SwCandidate chosen;
  SwPrediction predicted;           ///< the winner's model row
  StageProfile profile;             ///< calibration profile (batch_hi run)
  std::vector<RankedCandidate> ranked;  ///< every candidate, best first
  std::size_t next_index = 0;  ///< first stream index search() left unconsumed
  [[nodiscard]] std::string describe() const;
};

class AutoTuner {
 public:
  /// The backend must outlive the tuner; search() serves traffic on it.
  explicit AutoTuner(runtime::Backend& backend, AutoTunerOptions opts = {});

  /// Run the DSE loop starting at stream index `start_index` (the backend
  /// must already be fast-forwarded to it). See the file comment.
  [[nodiscard]] TuneResult search(std::size_t start_index);

  /// The candidate list the backend's contracts admit (serial always;
  /// workers / pipelined modes gated on the backend's interfaces) — split
  /// out for tests and for callers with their own ranking.
  [[nodiscard]] std::vector<SwCandidate> candidates() const;

  /// ServingOptions realizing one candidate under this tuner's options.
  [[nodiscard]] runtime::ServingOptions options_for(
      const SwCandidate& c) const;

  /// Serve `events` requests from `begin` under `sopts` and return the
  /// engine's stage profile (and, optionally, its measured throughput).
  StageProfile profile_run(const runtime::ServingOptions& sopts,
                           std::size_t begin, std::size_t events,
                           double* measured_rps = nullptr);

 private:
  runtime::Backend& backend_;
  AutoTunerOptions opts_;
};

}  // namespace tgnn::perf
