#include "fpga/memory_update_unit.hpp"

#include <cmath>
#include <stdexcept>

namespace tgnn::fpga {

namespace {
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

std::uint64_t MemoryUpdateUnit::encode_cycles(std::size_t nv) const {
  if (mc_.time_encoder == core::TimeEncoderKind::kLut)
    return nv;  // one fused-table read per vertex (§III-C: 1 clock cycle)
  return nv * ceil_div(mc_.time_dim, dc_.sg);
}

std::uint64_t MemoryUpdateUnit::gate_cycles(std::size_t nv) const {
  // Effective GRU input width: the LUT encoder pre-fuses the Phi slice.
  std::uint64_t in = mc_.gru_in_dim();
  if (mc_.time_encoder == core::TimeEncoderKind::kLut) in -= mc_.time_dim;
  const std::uint64_t per_gate =
      ceil_div(in, dc_.sg) * ceil_div(mc_.mem_dim, dc_.sg) +
      ceil_div(mc_.mem_dim, dc_.sg) * ceil_div(mc_.mem_dim, dc_.sg);
  return nv * per_gate;
}

Tensor MemoryUpdateUnit::forward_tiled(const nn::GruCell& gru, const Tensor& x,
                                       const Tensor& h,
                                       std::uint64_t* cycles) const {
  if (x.rows() != h.rows())
    throw std::invalid_argument("MUU::forward_tiled: row mismatch");
  const std::size_t nv = x.rows();
  const std::size_t in = x.cols();
  const std::size_t hid = h.cols();
  const std::size_t sg = dc_.sg;

  // Tiled matrix-vector: out[o] += sum over sg x sg tiles, accumulating in
  // the MAC array's order (tile rows outer, tile cols inner).
  auto matvec_tiled = [&](const Tensor& w, const float* v, std::size_t vdim,
                          const Tensor& b, float* out) {
    std::uint64_t tile_count = 0;
    for (std::size_t ot = 0; ot < w.rows(); ot += sg) {
      const std::size_t oe = std::min(w.rows(), ot + sg);
      for (std::size_t o = ot; o < oe; ++o) out[o] = b[o];
      for (std::size_t it = 0; it < vdim; it += sg) {
        const std::size_t ie = std::min(vdim, it + sg);
        ++tile_count;
        for (std::size_t o = ot; o < oe; ++o) {
          float acc = 0.0f;
          for (std::size_t i = it; i < ie; ++i) acc += w(o, i) * v[i];
          out[o] += acc;
        }
      }
    }
    if (cycles) *cycles += tile_count;
  };

  Tensor out(nv, hid);
  std::vector<float> pre_r(hid), pre_z(hid), pre_n(hid), tmp(hid), q(hid);
  for (std::size_t r = 0; r < nv; ++r) {
    const float* xv = x.row(r).data();
    const float* hv = h.row(r).data();
    // Reset gate.
    matvec_tiled(gru.w_ir.value, xv, in, gru.b_ir.value, pre_r.data());
    matvec_tiled(gru.w_hr.value, hv, hid, gru.b_hr.value, tmp.data());
    for (std::size_t d = 0; d < hid; ++d)
      pre_r[d] = 1.0f / (1.0f + std::exp(-(pre_r[d] + tmp[d])));
    // Update gate.
    matvec_tiled(gru.w_iz.value, xv, in, gru.b_iz.value, pre_z.data());
    matvec_tiled(gru.w_hz.value, hv, hid, gru.b_hz.value, tmp.data());
    for (std::size_t d = 0; d < hid; ++d)
      pre_z[d] = 1.0f / (1.0f + std::exp(-(pre_z[d] + tmp[d])));
    // Memory gate.
    matvec_tiled(gru.w_in.value, xv, in, gru.b_in.value, pre_n.data());
    matvec_tiled(gru.w_hn.value, hv, hid, gru.b_hn.value, q.data());
    for (std::size_t d = 0; d < hid; ++d)
      pre_n[d] = std::tanh(pre_n[d] + pre_r[d] * q[d]);
    // Merging gate.
    for (std::size_t d = 0; d < hid; ++d)
      out(r, d) = (1.0f - pre_z[d]) * pre_n[d] + pre_z[d] * hv[d];
  }
  return out;
}

}  // namespace tgnn::fpga
