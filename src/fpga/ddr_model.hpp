// External DDR memory model.
//
// Effective bandwidth follows the burst-length dependence measured by Lu et
// al. (FPGA'21, the paper's [21]): a transaction of l bytes pays a fixed
// per-burst overhead, so alpha(l) = l / (l + overhead) and sustained
// bandwidth is alpha(l) * BW_peak. On top of that, DRAM refresh steals
// t_RFC every t_REFI — the "refreshing behaviour ... hard to predict" the
// paper cites as a performance-model error source (§VI-B); the cycle
// simulator charges it, the analytic model of Section V does not.
#pragma once

#include <cstddef>

namespace tgnn::fpga {

class DdrModel {
 public:
  /// peak_gbps in GB/s (1e9 bytes).
  explicit DdrModel(double peak_gbps, double burst_overhead_bytes = 64.0,
                    double t_refi_s = 7.8e-6, double t_rfc_s = 350e-9);

  /// Burst-efficiency factor alpha(l) in (0, 1].
  [[nodiscard]] double alpha(std::size_t burst_bytes) const;

  /// Transfer time for total_bytes moved in bursts of burst_bytes,
  /// WITHOUT refresh (what Eq. 21 models).
  [[nodiscard]] double seconds_for(std::size_t total_bytes,
                                   std::size_t burst_bytes) const;

  /// Same, plus the refresh stalls that fall inside the busy window starting
  /// at absolute time t_start (deterministic periodic refresh).
  [[nodiscard]] double seconds_with_refresh(double t_start,
                                            std::size_t total_bytes,
                                            std::size_t burst_bytes) const;

  [[nodiscard]] double peak_bytes_per_s() const { return peak_; }

 private:
  double peak_;      ///< bytes/s
  double overhead_;  ///< bytes-equivalent per burst
  double t_refi_;
  double t_rfc_;
};

}  // namespace tgnn::fpga
