#include "fpga/accelerator.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace tgnn::fpga {

namespace {
constexpr std::size_t kNumStages = 9;
// Stage indices.
constexpr std::size_t kLoadEdges = 0, kLoadState = 1, kPrefetch = 2,
                      kMuuEncode = 3, kMuuGates = 4, kEuAttn = 5, kEuAgg = 6,
                      kWriteback = 7, kStoreEmb = 8;
constexpr bool kIsDdrStage[kNumStages] = {true,  true,  true,  false, false,
                                          false, false, true,  true};
}  // namespace

Accelerator::Accelerator(const core::TgnModel& model, const data::Dataset& ds,
                         DesignConfig dc, FpgaDevice dev)
    : model_(model), dc_(std::move(dc)), dev_(std::move(dev)),
      ddr_(dev_.ddr_bandwidth_gbps), loader_(model.config()),
      muu_(dc_, model.config()), eu_(dc_, model.config()),
      cache_(static_cast<std::size_t>(dc_.ncu) * 4 * dc_.nb, dc_.ncu,
             dc_.updater_scan),
      engine_(model, ds, /*use_fifo=*/true) {
  if (model.config().attention != core::AttentionKind::kSimplified)
    throw std::invalid_argument(
        "Accelerator: requires a co-designed (simplified-attention) model — "
        "the vanilla attention cannot be scheduled with prefetching");
}

void Accelerator::reset() {
  engine_.reset();
  cache_.reset();
  sim_time_ = 0.0;
}

double Accelerator::simulate_batch_seconds(
    std::span<const graph::TemporalEdge> edges) {
  if (edges.empty()) return 0.0;
  const auto& mc = model_.config();
  const double cyc = dc_.cycle_seconds();

  // Partition into processing batches of Nb edges, round-robin over CUs.
  struct Chunk {
    BatchShape shape;
    std::array<double, kNumStages> dur{};
  };
  std::vector<Chunk> chunks;
  for (std::size_t base = 0; base < edges.size(); base += dc_.nb) {
    const std::size_t n = std::min(dc_.nb, edges.size() - base);
    Chunk ck;
    ck.shape.edges = n;

    // Unique vertices in the chunk + total kept-neighbor slots (table fill
    // read from pre-batch state; budget-capped).
    std::set<graph::NodeId> uniq;
    for (std::size_t i = 0; i < n; ++i) {
      uniq.insert(edges[base + i].src);
      uniq.insert(edges[base + i].dst);
    }
    ck.shape.vertices = uniq.size();
    std::size_t nbr = 0;
    const auto& table = *engine_.state().table;
    for (graph::NodeId v : uniq)
      nbr += std::min<std::size_t>(mc.effective_neighbors(), table.fill(v));
    ck.shape.neighbors = nbr;

    // Updater cache: two vertex records per edge; duplicates within the
    // in-flight window are eliminated (redundant-update elimination).
    const int cu = static_cast<int>((base / dc_.nb) % dc_.ncu);
    std::size_t writes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (graph::NodeId v : {edges[base + i].src, edges[base + i].dst}) {
        if (!cache_.write(cu, v)) {
          cache_.drain();
          cache_.write(cu, v);
        }
        ++writes;
      }
    }
    ck.shape.commits = cache_.drain().size();

    // ---- DDR stage durations (refresh charged at the stream's phase).
    ck.dur[kLoadEdges] = loader_.load_edges(ck.shape).seconds_at(ddr_, sim_time_);
    ck.dur[kLoadState] =
        loader_.load_vertex_state(ck.shape).seconds_at(ddr_, sim_time_);
    ck.dur[kPrefetch] =
        loader_.prefetch_neighbors(ck.shape).seconds_at(ddr_, sim_time_);
    ck.dur[kWriteback] =
        loader_.writeback_state(ck.shape).seconds_at(ddr_, sim_time_) +
        static_cast<double>(cache_.drain_cycles(writes)) * cyc;
    ck.dur[kStoreEmb] =
        loader_.store_embeddings(ck.shape).seconds_at(ddr_, sim_time_);

    // ---- compute stage durations.
    const std::size_t nv = ck.shape.vertices;
    ck.dur[kMuuEncode] = static_cast<double>(muu_.encode_cycles(nv)) * cyc;
    ck.dur[kMuuGates] = static_cast<double>(muu_.gate_cycles(nv)) * cyc;
    ck.dur[kEuAttn] =
        static_cast<double>(eu_.attention_cycles(nv) + eu_.encode_cycles(nv)) *
        cyc;
    ck.dur[kEuAgg] = static_cast<double>(eu_.aggregation_cycles(nv) +
                                         eu_.transform_cycles(nv)) *
                     cyc;
    chunks.push_back(ck);
  }

  // Reservation-table schedule: DDR stages share the memory controller,
  // compute stages are per-CU, write-back is serialized in chunk order.
  std::array<double, kNumStages> ddr_free{};
  std::vector<std::array<double, kNumStages>> cu_free(dc_.ncu);
  for (auto& f : cu_free) f.fill(0.0);
  double serialize_free = 0.0;
  double last_finish = 0.0;
  for (std::size_t b = 0; b < chunks.size(); ++b) {
    const int cu = static_cast<int>(b % dc_.ncu);
    double t = 0.0;
    for (std::size_t s = 0; s < kNumStages; ++s) {
      double start = t;
      if (kIsDdrStage[s])
        start = std::max(start, ddr_free[s]);
      else
        start = std::max(start, cu_free[cu][s]);
      if (s == kWriteback) start = std::max(start, serialize_free);
      const double finish = start + chunks[b].dur[s];
      if (kIsDdrStage[s])
        ddr_free[s] = finish;
      else
        cu_free[cu][s] = finish;
      if (s == kWriteback) serialize_free = finish;
      t = finish;
    }
    last_finish = std::max(last_finish, t);
  }
  sim_time_ += last_finish;
  return last_finish;
}

Accelerator::Output Accelerator::process_batch(
    const graph::BatchRange& r, std::span<const graph::NodeId> extra_nodes) {
  Output out;
  // Timing uses the pre-batch state (neighbor fills); then the functional
  // engine advances the state.
  out.latency_s =
      simulate_batch_seconds(engine_.dataset().graph.edges(r));
  out.functional = engine_.process_batch(r, extra_nodes);
  return out;
}

Accelerator::RunSummary Accelerator::run(const graph::BatchRange& range,
                                         std::size_t batch_size) {
  const auto& g = engine_.dataset().graph;
  return runtime::drive_batches(
      g.fixed_size_batches(range.begin, range.end, batch_size),
      [this](const graph::BatchRange& b) {
        const auto out = process_batch(b);
        return runtime::StepOutcome{out.latency_s, out.functional.nodes.size(),
                                    {}};
      });
}

Accelerator::RunSummary Accelerator::run_windows(const graph::BatchRange& range,
                                                 double window_seconds) {
  const auto& g = engine_.dataset().graph;
  return runtime::drive_batches(
      g.fixed_window_batches(range.begin, range.end, window_seconds),
      [this](const graph::BatchRange& b) {
        const auto out = process_batch(b);
        return runtime::StepOutcome{out.latency_s, out.functional.nodes.size(),
                                    {}};
      });
}

}  // namespace tgnn::fpga
