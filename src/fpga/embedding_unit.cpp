#include "fpga/embedding_unit.hpp"

#include <cmath>
#include <stdexcept>

namespace tgnn::fpga {

namespace {
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

std::uint64_t EmbeddingUnit::attention_cycles(std::size_t nv) const {
  const std::uint64_t mr = mc_.num_neighbors;
  return nv * (ceil_div(mr * mr, dc_.sfam) + mr);
}

std::uint64_t EmbeddingUnit::encode_cycles(std::size_t nv) const {
  const std::uint64_t k = mc_.effective_neighbors();
  if (mc_.time_encoder == core::TimeEncoderKind::kLut) return nv * k;
  return nv * k * ceil_div(mc_.time_dim, dc_.sfam);
}

std::uint64_t EmbeddingUnit::aggregation_cycles(std::size_t nv) const {
  // Aggregation width: the raw per-neighbor payload the FAM tree sums.
  std::uint64_t w = mc_.kv_in_dim();
  if (mc_.time_encoder == core::TimeEncoderKind::kLut) w -= mc_.time_dim;
  return nv * mc_.effective_neighbors() * ceil_div(w, dc_.sfam);
}

std::uint64_t EmbeddingUnit::transform_cycles(std::size_t nv) const {
  std::uint64_t kv = mc_.kv_in_dim();
  if (mc_.time_encoder == core::TimeEncoderKind::kLut) kv -= mc_.time_dim;
  // W_v fold (kv -> emb) + output projection ((emb + mem) -> emb).
  const std::uint64_t macs =
      kv * mc_.emb_dim + (mc_.emb_dim + mc_.mem_dim) * mc_.emb_dim;
  return nv * ceil_div(macs, dc_.sftm);
}

Tensor EmbeddingUnit::forward_tiled(
    const core::SimplifiedAttention& sat, std::span<const float> f_self,
    const core::SimplifiedAttention::Scores& scores, const Tensor& v_in,
    std::uint64_t* cycles) const {
  const std::size_t kept = scores.keep.size();
  if (v_in.rows() != kept)
    throw std::invalid_argument("EU::forward_tiled: rows != kept");
  const std::size_t kv = v_in.cols();
  const std::size_t emb = sat.wv.out_dim();

  // AM: softmax over kept logits (comparators + exp LUT in hardware).
  std::vector<float> alpha(kept, 0.0f);
  if (kept > 0) {
    float mx = -1e30f;
    for (std::size_t i = 0; i < kept; ++i)
      mx = std::max(mx, scores.logits[scores.keep[i]]);
    float z = 0.0f;
    for (std::size_t i = 0; i < kept; ++i) {
      alpha[i] = std::exp(scores.logits[scores.keep[i]] - mx);
      z += alpha[i];
    }
    for (auto& a : alpha) a /= z;
  }
  if (cycles) *cycles += attention_cycles(1);

  // FAM: aggregate raw vectors on SFAM lanes.
  std::vector<float> agg(kv, 0.0f);
  for (std::size_t i = 0; i < kept; ++i) {
    const auto row = v_in.row(i);
    for (std::size_t d = 0; d < kv; ++d) agg[d] += alpha[i] * row[d];
  }
  if (cycles)
    *cycles += kept * ((kv + dc_.sfam - 1) / dc_.sfam);

  // FTM part 1: v_bar = W_v agg + b_v (skipped entirely for 0 neighbors —
  // alpha would be an empty sum; mirror the reference's attn = 0).
  std::vector<float> v_bar(emb, 0.0f);
  if (kept > 0) {
    for (std::size_t o = 0; o < emb; ++o) {
      float acc = sat.wv.b.value[o];
      for (std::size_t d = 0; d < kv; ++d) acc += sat.wv.w.value(o, d) * agg[d];
      v_bar[o] = acc;
    }
  }
  // FTM part 2: h = W_o [v_bar || f_self] + b_o.
  Tensor h(1, emb);
  const std::size_t mem = f_self.size();
  for (std::size_t o = 0; o < emb; ++o) {
    float acc = sat.wo.b.value[o];
    for (std::size_t d = 0; d < emb; ++d)
      acc += sat.wo.w.value(o, d) * v_bar[d];
    for (std::size_t d = 0; d < mem; ++d)
      acc += sat.wo.w.value(o, emb + d) * f_self[d];
    h(0, o) = acc;
  }
  if (cycles) *cycles += transform_cycles(1);
  return h;
}

}  // namespace tgnn::fpga
