// Top-level FPGA accelerator simulator (Fig. 2).
//
// Functional path: the numerics of Algorithm 1 (identical to the reference
// InferenceEngine; the tiled MUU/EU datapaths are proven equivalent in the
// test suite), so accuracy on the "FPGA" equals accuracy of the model —
// the paper's claim in §VI-B.
//
// Timing path: each application batch is split into processing batches of
// Nb edges dispatched round-robin over Ncu Computation Units; every
// processing batch walks the 9-stage schedule of Fig. 4 through a
// reservation-table simulation where
//   * DDR stages (load edges / load state / prefetch / write-back / store)
//     share one memory controller and pay burst-efficiency alpha(l) plus
//     periodic refresh,
//   * compute stages (MUU encode/gates, EU attention/aggregate/transform)
//     are per-CU, with cycle counts from the MAC-array shapes,
//   * the write-back stage is serialized in batch order through the Updater
//     cache, which also eliminates redundant vertex write-backs.
//
// The accelerator requires a co-designed model (simplified attention): the
// prefetch stage and the EU's aggregate-then-transform order both depend on
// Eq. 16 — exactly the model-architecture coupling the paper describes.
#pragma once

#include "fpga/data_loader.hpp"
#include "fpga/ddr_model.hpp"
#include "fpga/device.hpp"
#include "fpga/embedding_unit.hpp"
#include "fpga/memory_update_unit.hpp"
#include "fpga/updater_cache.hpp"
#include "runtime/stream_result.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::fpga {

class Accelerator {
 public:
  Accelerator(const core::TgnModel& model, const data::Dataset& ds,
              DesignConfig dc, FpgaDevice dev);

  struct Output {
    core::InferenceEngine::BatchResult functional;
    double latency_s = 0.0;
  };

  /// Process one application batch: simulated latency + functional result.
  Output process_batch(const graph::BatchRange& r,
                       std::span<const graph::NodeId> extra_nodes = {});

  /// Measurement accounting now shared with the runtime layer.
  using RunSummary = runtime::StreamResult;

  /// Stream a range in fixed-size batches.
  RunSummary run(const graph::BatchRange& range, std::size_t batch_size);
  /// Stream in fixed time windows (15-minute real-time scenario).
  RunSummary run_windows(const graph::BatchRange& range, double window_seconds);

  void warmup(const graph::BatchRange& range) { engine_.warmup(range); }
  void reset();

  [[nodiscard]] const UpdaterCache::Stats& updater_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] const DesignConfig& design() const { return dc_; }
  [[nodiscard]] const FpgaDevice& device() const { return dev_; }
  [[nodiscard]] core::InferenceEngine& engine() { return engine_; }

  /// Simulated wall time of one application batch (timing only).
  double simulate_batch_seconds(std::span<const graph::TemporalEdge> edges);

 private:
  const core::TgnModel& model_;
  DesignConfig dc_;
  FpgaDevice dev_;
  DdrModel ddr_;
  DataLoader loader_;
  MemoryUpdateUnit muu_;
  EmbeddingUnit eu_;
  UpdaterCache cache_;
  core::InferenceEngine engine_;
  double sim_time_ = 0.0;  ///< absolute accelerator time (for refresh phase)
};

}  // namespace tgnn::fpga
