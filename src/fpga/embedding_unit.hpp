// Embedding Unit (EU): Attention Module + Feature Aggregation Module +
// Feature Transformation Module (§IV-B).
//
// The EU exploits the co-design's key linearity: with simplified attention
// (Eq. 16) the weights alpha are independent of neighbor features, so
//
//   sum_j alpha_j (W_v x_j + b_v)  ==  W_v (sum_j alpha_j x_j) + b_v
//
// (alpha sums to 1). The FAM therefore aggregates *raw* neighbor vectors on
// a multiply-add tree (SFAM lanes) and the FTM applies W_v and the output
// transform once per vertex on an SFTM MAC array — this is why the hardware
// aggregates "alpha(u) . s_u" and transforms after aggregation, and it is
// what makes the EU cost per vertex instead of per neighbor.
//
// forward_tiled() computes exactly that order and is unit-tested to match
// SimplifiedAttention::aggregate (which projects per neighbor) to float
// tolerance — the numerical statement of the linearity.
#pragma once

#include "fpga/device.hpp"
#include "tgnn/simplified_attention.hpp"

namespace tgnn::fpga {

class EmbeddingUnit {
 public:
  EmbeddingUnit(const DesignConfig& dc, const core::ModelConfig& mc)
      : dc_(dc), mc_(mc) {}

  /// Stage 7-(1): attention logits a + W_t dt (mr x mr matvec on FAM lanes)
  /// + top-k selection (comparator tree, ~mr cycles).
  [[nodiscard]] std::uint64_t attention_cycles(std::size_t nv) const;
  /// Stage 7-(2): time encoding for kept neighbors.
  [[nodiscard]] std::uint64_t encode_cycles(std::size_t nv) const;
  /// Stage 7-(3): FAM aggregation of kept raw neighbor vectors.
  [[nodiscard]] std::uint64_t aggregation_cycles(std::size_t nv) const;
  /// Stage 7-(4): FTM transforms (W_v fold + output projection).
  [[nodiscard]] std::uint64_t transform_cycles(std::size_t nv) const;

  /// Functional EU for one vertex: aggregate-then-transform order.
  /// v_in rows correspond to scores.keep (as in SimplifiedAttention).
  [[nodiscard]] Tensor forward_tiled(const core::SimplifiedAttention& sat,
                                     std::span<const float> f_self,
                                     const core::SimplifiedAttention::Scores& scores,
                                     const Tensor& v_in,
                                     std::uint64_t* cycles = nullptr) const;

 private:
  DesignConfig dc_;
  core::ModelConfig mc_;
};

}  // namespace tgnn::fpga
