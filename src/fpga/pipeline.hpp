// Reservation-table pipeline scheduler for the 9-stage task schedule of
// Fig. 4. Each processing batch occupies each stage for a batch-dependent
// duration; batch b may enter stage s only when (a) it has left stage s-1
// and (b) batch b-1 has left stage s. The update stage is additionally
// serialized in arrival order across CUs (the Updater commits
// chronologically).
//
// Unlike the analytic model (Eq. 22), this accounts for pipeline fill /
// drain and for stage-time variation between batches — two of the error
// sources the paper attributes its model mismatch to.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace tgnn::fpga {

inline constexpr std::size_t kPipelineStages = 9;

/// Stage order (Fig. 4): 1 load edges, 2 load vertex state, 3 prefetch
/// neighbors, 6 MUU compute, 7 EU compute, 4 write back state, 5 store
/// embeddings, plus two commit slots folded into write-back below.
/// We model the schedule as a linear 7-deep pipeline; the MUU's five
/// internal sub-stages and the EU's four are folded into their occupancy
/// (their internal pipelining is inside the cycle counts).
struct StageDurations {
  // seconds per stage, in dataflow order.
  std::array<double, kPipelineStages> t{};
};

struct PipelineResult {
  double total_s = 0.0;                 ///< finish time of the last batch
  double fill_s = 0.0;                  ///< finish time of the first batch
  std::vector<double> batch_finish_s;   ///< per-batch completion times
};

class PipelineScheduler {
 public:
  /// `serialize_stage`: index of the stage whose executions must additionally
  /// finish in batch order across all lanes (the Updater write-back); pass
  /// kPipelineStages to disable.
  explicit PipelineScheduler(std::size_t serialize_stage = 5)
      : serialize_stage_(serialize_stage) {}

  [[nodiscard]] PipelineResult run(
      const std::vector<StageDurations>& batches) const;

 private:
  std::size_t serialize_stage_;
};

}  // namespace tgnn::fpga
