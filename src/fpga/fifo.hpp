// Bounded FIFO connecting hardware modules (the paper wires MUU gates, the
// EU sub-modules, and the SLR boundaries with on-chip FIFOs). Used
// functionally in the simulator and unit-tested for queue semantics; the
// occupancy high-water mark feeds the BRAM estimate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>

#include "util/check.hpp"

namespace tgnn::fpga {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : cap_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Fifo: capacity 0");
  }

  [[nodiscard]] bool full() const { return q_.size() >= cap_; }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// False if the FIFO is full (caller must stall).
  bool push(T v) {
    if (full()) return false;
    q_.push_back(std::move(v));
    high_water_ = std::max(high_water_, q_.size());
    check_occupancy();
    return true;
  }

  std::optional<T> pop() {
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    check_occupancy();
    return v;
  }

  void clear() { q_.clear(); }

 private:
  /// Occupancy contract of every queue transition: the bound holds, and
  /// the high-water mark both respects it and was actually witnessed.
  void check_occupancy() const {
    TGNN_DCHECK(q_.size() <= cap_, "bounded FIFO exceeded its capacity");
    TGNN_DCHECK(high_water_ <= cap_, "high-water mark exceeds capacity");
    TGNN_DCHECK(high_water_ >= q_.size(),
                "high-water mark below current occupancy");
  }

  std::size_t cap_;
  std::deque<T> q_;
  std::size_t high_water_ = 0;
};

}  // namespace tgnn::fpga
