// FPGA platform and design-point descriptions (Tables III & IV).
#pragma once

#include <cstddef>
#include <string>

namespace tgnn::fpga {

/// Physical platform budget (Table III). Resource counts are per die;
/// `dies` of them are available (U200 spans 3 SLRs).
struct FpgaDevice {
  std::string name;
  int dies = 1;
  std::size_t luts_per_die = 0;
  std::size_t dsps_per_die = 0;
  std::size_t brams_per_die = 0;  ///< 36 Kbit blocks
  std::size_t urams_per_die = 0;  ///< 288 Kbit blocks
  double ddr_bandwidth_gbps = 0;  ///< GB/s peak to external DDR

  [[nodiscard]] std::size_t total_luts() const { return dies * luts_per_die; }
  [[nodiscard]] std::size_t total_dsps() const { return dies * dsps_per_die; }
  [[nodiscard]] std::size_t total_brams() const { return dies * brams_per_die; }
  [[nodiscard]] std::size_t total_urams() const { return dies * urams_per_die; }
};

/// Xilinx Alveo U200: 3 SLRs, 394K LUT / 2280 DSP / 720 BRAM / 320 URAM per
/// die, 77 GB/s DDR4.
FpgaDevice alveo_u200();
/// Xilinx ZCU104: 230K LUT / 1728 DSP / 312 BRAM / 96 URAM, 19.2 GB/s DDR4.
FpgaDevice zcu104();

/// Accelerator design point (Table IV): number of Computation Units, the
/// MAC-array shapes, the processing-batch size Nb, and the post-P&R clock.
struct DesignConfig {
  std::string name;
  int ncu = 1;          ///< Computation Units
  std::size_t sg = 4;   ///< each MUU gate uses an Sg x Sg MAC array
  std::size_t sfam = 8; ///< FAM multiply-add tree lanes
  std::size_t sftm = 16;///< FTM MAC array size (rows x cols product)
  std::size_t nb = 8;   ///< edges per processing batch (pipeline stage width)
  double freq_mhz = 125.0;
  int updater_scan = 3; ///< Updater commit pointer: cache lines scanned/cycle

  [[nodiscard]] double cycle_seconds() const { return 1e-6 / freq_mhz; }
};

/// U200 design point: Ncu=2, Sg=8 (8x8 arrays), SFAM=16, SFTM=8x8, 250 MHz.
DesignConfig u200_design();
/// ZCU104 design point: Ncu=1, Sg=4, SFAM=8, SFTM=4x4, 125 MHz.
DesignConfig zcu104_design();

}  // namespace tgnn::fpga
