#include "fpga/ddr_model.hpp"

#include <cmath>
#include <stdexcept>

namespace tgnn::fpga {

DdrModel::DdrModel(double peak_gbps, double burst_overhead_bytes,
                   double t_refi_s, double t_rfc_s)
    : peak_(peak_gbps * 1e9), overhead_(burst_overhead_bytes),
      t_refi_(t_refi_s), t_rfc_(t_rfc_s) {
  if (peak_gbps <= 0.0) throw std::invalid_argument("DdrModel: bad bandwidth");
}

double DdrModel::alpha(std::size_t burst_bytes) const {
  if (burst_bytes == 0) return 1.0;
  const auto l = static_cast<double>(burst_bytes);
  return l / (l + overhead_);
}

double DdrModel::seconds_for(std::size_t total_bytes,
                             std::size_t burst_bytes) const {
  if (total_bytes == 0) return 0.0;
  return static_cast<double>(total_bytes) / (alpha(burst_bytes) * peak_);
}

double DdrModel::seconds_with_refresh(double t_start, std::size_t total_bytes,
                                      std::size_t burst_bytes) const {
  double busy = seconds_for(total_bytes, burst_bytes);
  if (busy == 0.0) return 0.0;
  // Refreshes whose scheduled instant lands inside [t_start, t_start+busy)
  // each extend the window by t_RFC (which can pull in further refreshes;
  // iterate to fixpoint — converges since t_rfc << t_refi).
  for (int iter = 0; iter < 4; ++iter) {
    const double n =
        std::floor((t_start + busy) / t_refi_) - std::floor(t_start / t_refi_);
    const double with = seconds_for(total_bytes, burst_bytes) + n * t_rfc_;
    if (with == busy) break;
    busy = with;
  }
  return busy;
}

}  // namespace tgnn::fpga
