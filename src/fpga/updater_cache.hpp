// The Updater (§IV-B, Fig. 3): a fully-associative cache with rotating
// pointers that (1) receives updated vertex records from the CUs, (2) keeps
// write-back to external memory in chronological order, and (3) eliminates
// redundant writes — if an *uncommitted* line holds the same vertex id as an
// incoming record, the stale line is invalidated so only the newest version
// reaches DDR.
//
// Geometry: CU c writes to positions c, c+Ncu, c+2*Ncu, ... (interleaved
// rotating write pointers), which encodes the round-robin edge assignment;
// the commit pointer walks the ring in order, scanning `scan` consecutive
// lines per cycle and committing valid ones, so chronology is preserved by
// construction.
#pragma once

#include <cstdint>
#include <vector>

namespace tgnn::fpga {

class UpdaterCache {
 public:
  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t invalidations = 0;  ///< redundant updates eliminated
    std::uint64_t commits = 0;        ///< lines written back to DDR
    std::uint64_t commit_cycles = 0;
  };

  UpdaterCache(std::size_t lines, int ncu, int scan_per_cycle = 3);

  /// CU `cu` hands over the updated record of vertex `vid`.
  /// Returns false if the ring is full (caller must drain first).
  bool write(int cu, std::uint32_t vid);

  /// Drain every pending line in chronological order; returns the vids
  /// committed (invalidated lines are skipped) and charges commit cycles.
  std::vector<std::uint32_t> drain();

  /// Cycles the commit pointer needs to retire n lines (scan lines/cycle).
  [[nodiscard]] std::uint64_t drain_cycles(std::size_t n_lines) const;

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t capacity() const { return lines_.size(); }

  void reset();

 private:
  struct Line {
    std::uint32_t vid = 0;
    std::uint64_t seq = 0;  ///< arrival order (what "chronological" means)
    bool valid = false;
  };
  std::vector<Line> lines_;
  std::vector<std::size_t> write_pos_;  ///< next ring slot per CU
  std::uint64_t next_seq_ = 0;
  int ncu_;
  int scan_;
  Stats stats_;
};

}  // namespace tgnn::fpga
