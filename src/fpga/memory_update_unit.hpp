// Memory Update Unit (MUU): the GRU of Eq. 7-10 mapped onto Sg x Sg
// multiply-accumulate arrays, one per gate, connected by FIFOs (§IV-B).
//
// Two faces:
//  * cycle model — stage occupancies used by the pipeline scheduler.
//    Following Fig. 4 / Eq. 19, the gates are SEPARATE pipeline stages
//    (6-(2)..6-(5)), each with its own Sg x Sg array, so the MUU's
//    steady-state occupancy per processing batch is ONE gate's GEMM time:
//    gate_cycles(nv) ~ nv * (f_mail + f_mem) * f_mem / Sg^2. The total
//    MUU work (Eq. 20's "3 *" bound) is total_gate_cycles().
//  * functional datapath — forward_tiled() actually computes the GRU with
//    Sg x Sg tiled loops (the MAC-array execution order) and counts the
//    cycles the tiling implies. Unit tests assert it matches nn::GruCell to
//    float tolerance, which is the simulator's claim that FPGA accuracy
//    equals model accuracy.
#pragma once

#include "fpga/device.hpp"
#include "nn/gru_cell.hpp"
#include "tgnn/config.hpp"

namespace tgnn::fpga {

class MemoryUpdateUnit {
 public:
  MemoryUpdateUnit(const DesignConfig& dc, const core::ModelConfig& mc)
      : dc_(dc), mc_(mc) {}

  /// Time-encoding stage 6-(1): LUT encoder reads 1 entry/cycle; the cos
  /// encoder computes time_dim elements on Sg lanes.
  [[nodiscard]] std::uint64_t encode_cycles(std::size_t nv) const;

  /// Occupancy of ONE gate stage (6-(2..4) are identical GEMMs) for nv
  /// vertex updates — the MUU's pipeline-period contribution (Eq. 19).
  [[nodiscard]] std::uint64_t gate_cycles(std::size_t nv) const;
  /// Total gate work across the three GEMM gates (Eq. 20's bound); equals
  /// the cycles forward_tiled() counts.
  [[nodiscard]] std::uint64_t total_gate_cycles(std::size_t nv) const {
    return 3 * gate_cycles(nv);
  }

  /// Functional tiled GRU over a batch: x [nv, gru_in], h [nv, mem].
  /// If `cycles` is non-null, accumulates the MAC-array cycles consumed.
  [[nodiscard]] Tensor forward_tiled(const nn::GruCell& gru, const Tensor& x,
                                     const Tensor& h,
                                     std::uint64_t* cycles = nullptr) const;

 private:
  DesignConfig dc_;
  core::ModelConfig mc_;
};

}  // namespace tgnn::fpga
