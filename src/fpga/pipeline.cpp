#include "fpga/pipeline.hpp"

#include <algorithm>

namespace tgnn::fpga {

PipelineResult PipelineScheduler::run(
    const std::vector<StageDurations>& batches) const {
  PipelineResult res;
  if (batches.empty()) return res;

  // finish[s] = when stage s last became free.
  std::array<double, kPipelineStages> stage_free{};
  double serialize_free = 0.0;
  res.batch_finish_s.reserve(batches.size());

  for (std::size_t b = 0; b < batches.size(); ++b) {
    double t = 0.0;  // when this batch leaves the previous stage
    for (std::size_t s = 0; s < kPipelineStages; ++s) {
      double start = std::max(t, stage_free[s]);
      if (s == serialize_stage_) start = std::max(start, serialize_free);
      const double finish = start + batches[b].t[s];
      stage_free[s] = finish;
      if (s == serialize_stage_) serialize_free = finish;
      t = finish;
    }
    res.batch_finish_s.push_back(t);
    if (b == 0) res.fill_s = t;
  }
  res.total_s = res.batch_finish_s.back();
  return res;
}

}  // namespace tgnn::fpga
