#include "fpga/resource_estimator.hpp"

namespace tgnn::fpga {

namespace {
constexpr std::size_t kDspPerMult = 3;
constexpr std::size_t kDspPerAcc = 2;
constexpr std::size_t kDspPerMac = kDspPerMult + kDspPerAcc;
constexpr std::size_t kBramBits = 36 * 1024;
constexpr std::size_t kUramBits = 288 * 1024;
}  // namespace

std::size_t ResourceEstimator::dsps_per_cu() const {
  // MUU: three gate MAC arrays of Sg x Sg, plus the merging gate's
  // elementwise lane (2 mults per lane, Sg lanes).
  const std::size_t muu =
      3 * dc_.sg * dc_.sg * kDspPerMac + dc_.sg * 2 * kDspPerMult;
  // EU: FAM multiply-add tree (SFAM multipliers; adders in fabric),
  // FTM MAC array of SFTM lanes. The AM's logit matvec reuses FAM lanes.
  const std::size_t eu = dc_.sfam * kDspPerMult + dc_.sftm * kDspPerMac;
  return muu + eu;
}

std::size_t ResourceEstimator::lut_table_bytes() const {
  if (mc_.time_encoder != core::TimeEncoderKind::kLut) return 0;
  // Fused tables (§III-C): Phi-slice products pre-computed for the three
  // GRU input gates (each bins x mem) and the EU value path (bins x emb).
  const std::size_t out_dims = 3 * mc_.mem_dim + mc_.emb_dim;
  return mc_.lut_bins * out_dims * 4;
}

Utilization ResourceEstimator::estimate() const {
  Utilization u;
  u.freq_mhz = dc_.freq_mhz;

  u.dsps = static_cast<std::size_t>(dc_.ncu) * dsps_per_cu();

  // ---- BRAM: inter-module FIFOs + Updater cache + fused LUT tables (on
  // devices without URAM) + edge-parser buffers.
  const std::size_t fifo_bits =
      /*per boundary*/ 2 * dc_.nb * (mc_.raw_mail_dim() + mc_.mem_dim) * 32;
  const std::size_t n_fifos = 8;  // module boundaries in Fig. 2
  std::size_t bram_bits = n_fifos * fifo_bits * dc_.ncu;
  const std::size_t cache_bits =
      static_cast<std::size_t>(dc_.ncu) * 4 * dc_.nb *
      (mc_.raw_mail_dim() + mc_.mem_dim + 2) * 32;
  bram_bits += cache_bits;

  // ---- URAM: prefetch buffers for neighbor memory/features + fused LUT
  // tables on boards that have URAM; otherwise everything lands in BRAM.
  const std::size_t prefetch_bits = static_cast<std::size_t>(dc_.ncu) * dc_.nb *
                                    2 * mc_.num_neighbors *
                                    (mc_.mem_dim + mc_.edge_dim) * 32;
  const std::size_t lut_bits = lut_table_bytes() * 8;
  if (dev_.total_urams() > 0) {
    u.urams = (prefetch_bits + lut_bits + kUramBits - 1) / kUramBits;
  } else {
    bram_bits += prefetch_bits + lut_bits;
  }
  u.brams = (bram_bits + kBramBits - 1) / kBramBits;

  // ---- LUT fabric: calibrated per-module estimates (control FSMs, FIFO
  // glue, comparator trees, float add trees for the FAM, AXI shell).
  const std::size_t per_cu_luts = 24'000 /* MUU control + elementwise */ +
                                  14'000 /* EU incl. top-k comparators */ +
                                  6'000 /* loader lanes */;
  u.luts = 40'000 /* shell + DMA + edge parser + updater */ +
           static_cast<std::size_t>(dc_.ncu) * per_cu_luts +
           (dev_.dies > 1 ? 12'000 * (dev_.dies - 1) : 0) /* SLR crossings */;
  return u;
}

}  // namespace tgnn::fpga
