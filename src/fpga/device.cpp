#include "fpga/device.hpp"

namespace tgnn::fpga {

FpgaDevice alveo_u200() {
  FpgaDevice d;
  d.name = "Xilinx Alveo U200";
  d.dies = 3;
  d.luts_per_die = 394'000;
  d.dsps_per_die = 2280;
  d.brams_per_die = 720;
  d.urams_per_die = 320;
  d.ddr_bandwidth_gbps = 77.0;
  return d;
}

FpgaDevice zcu104() {
  FpgaDevice d;
  d.name = "Xilinx ZCU104";
  d.dies = 1;
  d.luts_per_die = 230'000;
  d.dsps_per_die = 1728;
  d.brams_per_die = 312;
  d.urams_per_die = 96;
  d.ddr_bandwidth_gbps = 19.2;
  return d;
}

DesignConfig u200_design() {
  DesignConfig c;
  c.name = "U200";
  c.ncu = 2;
  c.sg = 8;
  c.sfam = 16;
  c.sftm = 64;  // 8 x 8
  c.nb = 16;
  c.freq_mhz = 250.0;
  return c;
}

DesignConfig zcu104_design() {
  DesignConfig c;
  c.name = "ZCU104";
  c.ncu = 1;
  c.sg = 4;
  c.sfam = 8;
  c.sftm = 16;  // 4 x 4
  c.nb = 8;
  c.freq_mhz = 125.0;
  return c;
}

}  // namespace tgnn::fpga
