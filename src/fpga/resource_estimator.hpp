// FPGA resource estimator for Table IV.
//
// Counting rules (from the paper's §VI-A and standard Vitis HLS float32
// mappings):
//   * one float32 multiplier  = 3 DSP48E2
//   * one float32 accumulator = 2 DSP48E2
//   * a MAC lane therefore costs 5 DSPs; FAM adder-tree adders beyond the
//     multipliers are absorbed into fabric (the paper describes the FAM as
//     a multiply-add *tree*)
//   * BRAM = 36 Kbit, URAM = 288 Kbit
//
// LUT counts are calibrated per-module constants (control logic, FIFOs,
// comparators) — they are estimates, flagged as such in the bench output.
#pragma once

#include "fpga/device.hpp"
#include "tgnn/config.hpp"

namespace tgnn::fpga {

struct Utilization {
  std::size_t luts = 0;
  std::size_t dsps = 0;
  std::size_t brams = 0;
  std::size_t urams = 0;
  double freq_mhz = 0.0;

  [[nodiscard]] bool fits(const FpgaDevice& dev) const {
    return luts <= dev.total_luts() && dsps <= dev.total_dsps() &&
           brams <= dev.total_brams() && urams <= dev.total_urams();
  }
};

class ResourceEstimator {
 public:
  ResourceEstimator(const DesignConfig& dc, const core::ModelConfig& mc,
                    const FpgaDevice& dev)
      : dc_(dc), mc_(mc), dev_(dev) {}

  [[nodiscard]] Utilization estimate() const;

  /// DSPs of one Computation Unit (MUU + EU).
  [[nodiscard]] std::size_t dsps_per_cu() const;
  /// On-chip bytes of the fused LUT time-encoder tables (all consumers).
  [[nodiscard]] std::size_t lut_table_bytes() const;

 private:
  DesignConfig dc_;
  core::ModelConfig mc_;
  const FpgaDevice& dev_;
};

}  // namespace tgnn::fpga
