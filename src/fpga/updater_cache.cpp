#include "fpga/updater_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace tgnn::fpga {

UpdaterCache::UpdaterCache(std::size_t lines, int ncu, int scan_per_cycle)
    : lines_(lines), write_pos_(ncu), ncu_(ncu), scan_(scan_per_cycle) {
  if (ncu <= 0 || scan_per_cycle <= 0 || lines == 0)
    throw std::invalid_argument("UpdaterCache: bad geometry");
  if (lines % ncu != 0)
    throw std::invalid_argument("UpdaterCache: lines must be divisible by ncu");
  for (int c = 0; c < ncu; ++c) write_pos_[c] = static_cast<std::size_t>(c);
}

bool UpdaterCache::write(int cu, std::uint32_t vid) {
  if (cu < 0 || cu >= ncu_) throw std::out_of_range("UpdaterCache: bad cu");
  const std::size_t pos = write_pos_[cu];
  if (lines_[pos].valid) return false;  // ring full for this CU lane
  // Fully-associative duplicate check over uncommitted lines: a newer
  // version of the vertex supersedes the pending one.
  for (auto& line : lines_) {
    if (line.valid && line.vid == vid) {
      line.valid = false;
      ++stats_.invalidations;
    }
  }
  lines_[pos] = {vid, next_seq_++, true};
  ++stats_.writes;
  write_pos_[cu] = (pos + static_cast<std::size_t>(ncu_)) % lines_.size();
  return true;
}

std::vector<std::uint32_t> UpdaterCache::drain() {
  // Commit pending lines oldest-first. Ring position alone is NOT arrival
  // order once a CU's write pointer has wrapped past slots another CU
  // still holds pending, so chronology is pinned by the per-line sequence
  // stamp (the hardware's commit pointer achieves the same order because
  // it advances as it retires; this model drains all-at-once instead).
  std::vector<Line*> pend;
  pend.reserve(lines_.size());
  for (auto& line : lines_)
    if (line.valid) pend.push_back(&line);
  std::sort(pend.begin(), pend.end(),
            [](const Line* a, const Line* b) { return a->seq < b->seq; });
  std::vector<std::uint32_t> out;
  out.reserve(pend.size());
  for (Line* line : pend) {
    out.push_back(line->vid);
    line->valid = false;
    ++stats_.commits;
  }
  stats_.commit_cycles += drain_cycles(lines_.size());
  return out;
}

std::uint64_t UpdaterCache::drain_cycles(std::size_t n_lines) const {
  return (n_lines + static_cast<std::size_t>(scan_) - 1) /
         static_cast<std::size_t>(scan_);
}

std::size_t UpdaterCache::pending() const {
  std::size_t n = 0;
  for (const auto& l : lines_)
    if (l.valid) ++n;
  return n;
}

void UpdaterCache::reset() {
  for (auto& l : lines_) l.valid = false;
  for (int c = 0; c < ncu_; ++c) write_pos_[c] = static_cast<std::size_t>(c);
  next_seq_ = 0;
  stats_ = {};
}

}  // namespace tgnn::fpga
