#include "fpga/data_loader.hpp"

namespace tgnn::fpga {

Transfer DataLoader::load_edges(const BatchShape& s) const {
  const std::size_t pkt = 16 + mc_.edge_dim * kZd;  // ids + ts + feature
  return {s.edges * pkt, pkt};
}

Transfer DataLoader::load_vertex_state(const BatchShape& s) const {
  const std::size_t nbr_row = mc_.num_neighbors * 12;  // id + eid + ts
  const std::size_t mem_row = mc_.mem_dim * kZd;
  const std::size_t mail_row = mc_.raw_mail_dim() * kZd + kZd;
  const std::size_t per_v = nbr_row + mem_row + mail_row;
  return {s.vertices * per_v, mail_row};
}

Transfer DataLoader::prefetch_neighbors(const BatchShape& s) const {
  const std::size_t per_n =
      mc_.mem_dim * kZd + mc_.edge_dim * kZd + mc_.node_dim * kZd;
  return {s.neighbors * per_n, mc_.mem_dim * kZd};
}

Transfer DataLoader::writeback_state(const BatchShape& s) const {
  const std::size_t mem_row = mc_.mem_dim * kZd;
  const std::size_t mail_row = mc_.raw_mail_dim() * kZd + kZd;
  const std::size_t nbr_entry = 12;
  return {s.commits * (mem_row + mail_row + nbr_entry), mail_row};
}

Transfer DataLoader::store_embeddings(const BatchShape& s) const {
  const std::size_t row = mc_.emb_dim * kZd;
  return {s.vertices * row, row};
}

std::size_t DataLoader::total_bytes(const BatchShape& s) const {
  return load_edges(s).bytes + load_vertex_state(s).bytes +
         prefetch_neighbors(s).bytes + writeback_state(s).bytes +
         store_embeddings(s).bytes;
}

}  // namespace tgnn::fpga
