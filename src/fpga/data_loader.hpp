// Data Loader / Updater DDR traffic: byte counts and burst lengths for each
// memory-touching pipeline stage (Fig. 4 stages 1-5), per processing batch.
//
// Burst length = the row size of the table being streamed (mail row, memory
// row, feature row ...), which is what determines alpha(l) in the DDR model.
#pragma once

#include "fpga/ddr_model.hpp"
#include "tgnn/config.hpp"

namespace tgnn::fpga {

struct Transfer {
  std::size_t bytes = 0;
  std::size_t burst = 1;  ///< bytes per burst transaction

  [[nodiscard]] double seconds(const DdrModel& ddr) const {
    return ddr.seconds_for(bytes, burst);
  }
  [[nodiscard]] double seconds_at(const DdrModel& ddr, double t_start) const {
    return ddr.seconds_with_refresh(t_start, bytes, burst);
  }
};

/// Per-processing-batch statistics the traffic depends on.
struct BatchShape {
  std::size_t edges = 0;      ///< Nb
  std::size_t vertices = 0;   ///< unique involved vertices (<= 2 Nb)
  std::size_t neighbors = 0;  ///< total neighbor slots fetched (after pruning)
  std::size_t commits = 0;    ///< vertex records surviving the Updater cache
};

class DataLoader {
 public:
  explicit DataLoader(const core::ModelConfig& mc) : mc_(mc) {}

  /// Stage 1: edge packets (src, dst, ts, eid) + the new edge's own feature.
  [[nodiscard]] Transfer load_edges(const BatchShape& s) const;
  /// Stage 2: neighbor-table rows + vertex memory + mail vectors.
  [[nodiscard]] Transfer load_vertex_state(const BatchShape& s) const;
  /// Stage 3: prefetch of kept neighbors' memory + edge features
  /// (enabled by Eq. 16 — scores precede any neighbor fetch).
  [[nodiscard]] Transfer prefetch_neighbors(const BatchShape& s) const;
  /// Stage 4: write back neighbor table, memory, mail (post Updater dedup).
  [[nodiscard]] Transfer writeback_state(const BatchShape& s) const;
  /// Stage 5: store output embeddings.
  [[nodiscard]] Transfer store_embeddings(const BatchShape& s) const;

  /// Sum of all five stages' bytes (for roofline sanity checks).
  [[nodiscard]] std::size_t total_bytes(const BatchShape& s) const;

 private:
  static constexpr std::size_t kZd = 4;  ///< float32
  core::ModelConfig mc_;
};

}  // namespace tgnn::fpga
