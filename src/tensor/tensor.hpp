// Dense row-major float32 tensor. This is the numeric substrate everything
// else builds on: the NN layers, the reference TGNN datapath, and the
// functional mode of the FPGA simulator all operate on these buffers.
//
// Design notes (deliberate restrictions):
//  * float32 only — matches the paper's IEEE float32 accelerator datapath.
//  * rank 1 or 2 — the TGNN model only needs vectors and matrices; batched
//    3-D tensors are expressed as [batch*rows, cols] slices.
//  * owning, contiguous storage — views are expressed via spans/offsets in
//    the ops layer, keeping aliasing rules trivial.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tgnn {

class Rng;

class Tensor {
 public:
  Tensor() = default;

  /// 1-D tensor of `n` zeros.
  explicit Tensor(std::size_t n) : rows_(n), cols_(1), data_(n, 0.0f) {}

  /// 2-D tensor of zeros.
  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Tensor zeros(std::size_t rows, std::size_t cols) {
    return Tensor(rows, cols);
  }
  static Tensor full(std::size_t rows, std::size_t cols, float v);
  /// I.i.d. normal(0, stddev).
  static Tensor randn(std::size_t rows, std::size_t cols, Rng& rng,
                      float stddev = 1.0f);
  /// Xavier/Glorot uniform for a [fan_out, fan_in] weight matrix.
  static Tensor xavier(std::size_t fan_out, std::size_t fan_in, Rng& rng);
  /// Build from explicit values (row-major), for tests.
  static Tensor from(std::size_t rows, std::size_t cols,
                     std::initializer_list<float> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Mutable / const view of row r.
  [[nodiscard]] std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Reinterpret as [rows, cols]; total size must match.
  void reshape(std::size_t rows, std::size_t cols);

  /// Re-dimension to [rows, cols], reusing the existing allocation when it is
  /// large enough (capacity is never released). Contents are unspecified
  /// afterwards — every element must be written before being read. This is
  /// the reuse primitive behind the inference-engine batch workspace.
  void resize(std::size_t rows, std::size_t cols);
  /// Capacity-preserving reserve for later resize() calls.
  void reserve(std::size_t rows, std::size_t cols) {
    data_.reserve(rows * cols);
  }

  /// Elementwise in-place helpers (shape-checked).
  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);
  Tensor& operator*=(float s);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float abs_max() const;
  [[nodiscard]] std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace tgnn
