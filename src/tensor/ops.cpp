#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tgnn::ops {

namespace {

// Parallelize GEMMs only when the output is large enough to amortize the
// fork/join; tiny per-batch matrices (common at small TGNN batch sizes)
// run serially for latency.
constexpr std::size_t kParallelThreshold = 64 * 64;

void check(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.rows(), "matmul: inner dims mismatch");
  Tensor c(a.rows(), b.cols());
  matmul_acc(a, b, c);
  return c;
}

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  check(a.cols() == b.rows(), "matmul_acc: inner dims mismatch");
  check(c.rows() == a.rows() && c.cols() == b.cols(),
        "matmul_acc: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: unit-stride inner loop over both B and C rows.
#pragma omp parallel for schedule(static) if (m * n >= kParallelThreshold)
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.cols(), "matmul_nt: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
#pragma omp parallel for schedule(static) if (m * n >= kParallelThreshold)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  check(a.rows() == b.rows(), "matmul_tn: inner dims mismatch");
  check(c.rows() == a.cols() && c.cols() == b.cols(),
        "matmul_tn_acc: output shape mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Serial over k (accumulation order), parallel-safe only across i; keep
  // serial: weight-gradient matrices are small (hidden x input dims).
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor affine(const Tensor& x, const Tensor& w, const Tensor& b) {
  check(w.cols() == x.cols(), "affine: weight in-dim mismatch");
  check(b.size() == w.rows(), "affine: bias dim mismatch");
  Tensor y = matmul_nt(x, w);
  const std::size_t m = y.rows(), n = y.cols();
  float* py = y.data();
  const float* pb = b.data();
#pragma omp parallel for schedule(static) if (m * n >= kParallelThreshold)
  for (std::size_t i = 0; i < m; ++i) {
    float* row = py + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += pb[j];
  }
  return y;
}

Tensor sigmoid(const Tensor& x) {
  Tensor y = x;
  sigmoid_inplace(y);
  return y;
}

void sigmoid_inplace(Tensor& x) {
  float* p = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = 1.0f / (1.0f + std::exp(-p[i]));
}

Tensor tanh(const Tensor& x) {
  Tensor y = x;
  tanh_inplace(y);
  return y;
}

void tanh_inplace(Tensor& x) {
  float* p = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
}

Tensor relu(const Tensor& x) {
  Tensor y = x;
  relu_inplace(y);
  return y;
}

void relu_inplace(Tensor& x) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) p[i] = std::max(0.0f, p[i]);
}

Tensor hadamard(const Tensor& a, const Tensor& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape mismatch");
  Tensor c = a;
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= pb[i];
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c += b;
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c -= b;
  return c;
}

Tensor softmax_rows(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.rows(); ++i) softmax_span(y.row(i));
  return y;
}

void softmax_span(std::span<float> v) {
  if (v.empty()) return;
  const float uniform = 1.0f / static_cast<float>(v.size());
  float mx = v[0];
  for (float f : v) mx = std::max(mx, f);
  // A fully masked (all -inf) or NaN/inf-poisoned row has no well-defined
  // softmax; exp(-inf - -inf) would mint NaN weights that silently poison
  // everything downstream (vertex memory, embeddings). Fall back to a
  // uniform distribution instead.
  if (!std::isfinite(mx)) {
    for (auto& f : v) f = uniform;
    return;
  }
  float total = 0.0f;
  for (auto& f : v) {
    f = std::exp(f - mx);
    total += f;
  }
  if (!(total > 0.0f) || !std::isfinite(total)) {
    for (auto& f : v) f = uniform;
    return;
  }
  const float inv = 1.0f / total;
  for (auto& f : v) f *= inv;
}

Tensor concat_cols(const std::vector<const Tensor*>& parts) {
  check(!parts.empty(), "concat_cols: no parts");
  const std::size_t rows = parts[0]->rows();
  std::size_t cols = 0;
  for (const auto* p : parts) {
    check(p->rows() == rows, "concat_cols: row mismatch");
    cols += p->cols();
  }
  Tensor out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    float* dst = out.data() + i * cols;
    for (const auto* p : parts) {
      const auto src = p->row(i);
      std::copy(src.begin(), src.end(), dst);
      dst += src.size();
    }
  }
  return out;
}

Tensor slice_cols(const Tensor& x, std::size_t lo, std::size_t hi) {
  check(lo <= hi && hi <= x.cols(), "slice_cols: bad range");
  Tensor out(x.rows(), hi - lo);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    std::copy(src.begin() + lo, src.begin() + hi, out.row(i).begin());
  }
  return out;
}

Tensor colsum(const Tensor& x) {
  Tensor out(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) out[j] += src[j];
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "max_abs_diff: shape");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace tgnn::ops
