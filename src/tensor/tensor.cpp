#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace tgnn {

Tensor Tensor::full(std::size_t rows, std::size_t cols, float v) {
  Tensor t(rows, cols);
  t.fill(v);
  return t;
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols, Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::xavier(std::size_t fan_out, std::size_t fan_in, Rng& rng) {
  Tensor t(fan_out, fan_in);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-bound, bound);
  return t;
}

Tensor Tensor::from(std::size_t rows, std::size_t cols,
                    std::initializer_list<float> values) {
  if (values.size() != rows * cols)
    throw std::invalid_argument("Tensor::from: size mismatch");
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

void Tensor::reshape(std::size_t rows, std::size_t cols) {
  if (rows * cols != data_.size())
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  rows_ = rows;
  cols_ = cols;
}

void Tensor::resize(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  if (o.size() != size()) throw std::invalid_argument("Tensor+=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  if (o.size() != size()) throw std::invalid_argument("Tensor-=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  // Built by append (not chained operator+): GCC 12's -Wrestrict misfires
  // on the temporary chain under -O2, and the library builds with -Werror.
  std::string s = "[";
  s += std::to_string(rows_);
  s += ", ";
  s += std::to_string(cols_);
  s += ']';
  return s;
}

}  // namespace tgnn
