// Dense kernels over Tensor: GEMM (plain / transposed variants), elementwise
// activations, row-wise softmax, and column concatenation/slicing.
//
// GEMM is cache-blocked and OpenMP-parallel across row blocks; everything
// the TGNN model computes — GRU gates, attention keys/queries/values, the
// decoder — reduces to these kernels, so they are also what the
// micro-benchmarks (bench/micro_kernels) measure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace tgnn::ops {

/// C = A[m,k] * B[k,n]. Allocates C.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A[m,k] * B[n,k]^T  (B stored row-major as [n,k]). Allocates C[m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C = A[k,m]^T * B[k,n]. Allocates C[m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C += A[k,m]^T * B[k,n] (accumulating; used for weight-gradient updates).
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);
/// C += A[m,k] * B[k,n].
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);

/// Y = X * W^T + broadcast(b); W is [out,in], b is [out] (1-D tensor).
Tensor affine(const Tensor& x, const Tensor& w, const Tensor& b);

/// Elementwise sigmoid / tanh (allocating and in-place variants).
Tensor sigmoid(const Tensor& x);
Tensor tanh(const Tensor& x);
void sigmoid_inplace(Tensor& x);
void tanh_inplace(Tensor& x);
/// ReLU (used by the decoder MLP).
Tensor relu(const Tensor& x);
void relu_inplace(Tensor& x);

/// Elementwise product / sum (allocating).
Tensor hadamard(const Tensor& a, const Tensor& b);
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);

/// Row-wise softmax (numerically stable).
Tensor softmax_rows(const Tensor& x);
/// Softmax over a contiguous span (in place), numerically stable.
void softmax_span(std::span<float> v);

/// Column-wise concatenation of parts (all with equal row count).
Tensor concat_cols(const std::vector<const Tensor*>& parts);
/// Copy columns [lo, hi) of x into a new tensor.
Tensor slice_cols(const Tensor& x, std::size_t lo, std::size_t hi);
/// Sum over rows -> 1-D tensor of length cols (bias gradients).
Tensor colsum(const Tensor& x);

/// Max |a-b| over all elements; shapes must match. For tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace tgnn::ops
