#include "baselines/gpu_sim.hpp"

#include <algorithm>
#include <set>

namespace tgnn::baselines {

GpuSpec titan_xp() {
  GpuSpec s;
  s.name = "Titan Xp";
  s.peak_flops = 12.15e12;  // 3840 cores * 1.582 GHz boost * 2 FLOP
  s.mem_bw = 547e9;
  s.kernel_launch_s = 10e-6;  // launch + Python dispatch on small kernels
  s.flop_eff = 0.25;  // thin GEMMs (<=512 wide) sustain ~quarter peak
  s.bw_eff = 0.70;
  s.framework_ops_factor = 6.0;
  return s;
}

std::size_t kernels_per_batch(const core::ModelConfig& cfg) {
  using core::AttentionKind;
  using core::TimeEncoderKind;
  const bool cos = cfg.time_encoder == TimeEncoderKind::kCos;
  // sample: neighbor gather + dt compute.
  std::size_t k = 2;
  // memory: mail gather, (time enc), 3 input GEMMs, 3 hidden GEMMs,
  // 3 sigmoid/tanh elementwise, merge.
  k += 1 + (cos ? 1 : 1 /* LUT gather is still a kernel on GPU */) + 3 + 3 + 3 + 1;
  // gnn:
  if (cfg.attention == AttentionKind::kVanilla) {
    // q, K, V GEMMs, (time enc), scores bmm, softmax, alphaV bmm, FTM.
    k += 3 + (cos ? 1 : 1) + 1 + 1 + 1 + 1;
  } else {
    // logits (a + Wt dt), top-k, V GEMM, (time enc), softmax, alphaV, FTM.
    k += 1 + (cfg.uses_pruning() ? 1 : 0) + 1 + 1 + 1 + 1 + 1;
  }
  // update: memory scatter, mail build+scatter, neighbor-table update.
  k += 3;
  return k;
}

double GpuSim::batch_seconds(std::size_t num_edges,
                             std::size_t num_embeddings) const {
  const auto parts = batch_parts(num_edges, num_embeddings);
  return parts.total();
}

core::PartTimes GpuSim::batch_parts(std::size_t num_edges,
                                    std::size_t num_embeddings) const {
  const core::ComplexityReport rep = core::analyze(cfg_);
  const auto emb = static_cast<double>(num_embeddings);
  const double launch = spec_.kernel_launch_s;

  auto roofline = [&](double macs, double mems, std::size_t kernels) {
    const double flops_t =
        2.0 * macs / (spec_.peak_flops * spec_.flop_eff);
    const double bytes_t = 4.0 * mems / (spec_.mem_bw * spec_.bw_eff);
    return static_cast<double>(kernels) * spec_.framework_ops_factor * launch +
           std::max(flops_t, bytes_t);
  };

  // Distribute the kernel budget over the four parts roughly as structured
  // in kernels_per_batch().
  const std::size_t k_total = kernels_per_batch(cfg_);
  const std::size_t k_sample = 2, k_update = 3;
  const std::size_t k_memory = 12;
  const std::size_t k_gnn = k_total - k_sample - k_update - k_memory;

  core::PartTimes t;
  t.sample = roofline(rep.sample.macs * emb, rep.sample.mems * emb, k_sample);
  t.memory = roofline(rep.memory.macs * emb, rep.memory.mems * emb, k_memory);
  t.gnn = roofline(rep.gnn.macs * emb, rep.gnn.mems * emb, k_gnn);
  t.update = roofline(rep.update.macs * emb, rep.update.mems * emb, k_update);
  (void)num_edges;
  return t;
}

double GpuSim::run_seconds(const data::Dataset& ds,
                           const graph::BatchRange& range,
                           std::size_t batch_size) const {
  double total = 0.0;
  for (const auto& b :
       ds.graph.fixed_size_batches(range.begin, range.end, batch_size)) {
    // Unique involved vertices: bounded by 2 edges' endpoints; estimate the
    // dedupe factor from the batch itself (cheap exact count).
    std::set<graph::NodeId> uniq;
    for (const auto& e : ds.graph.edges(b)) {
      uniq.insert(e.src);
      uniq.insert(e.dst);
    }
    total += batch_seconds(b.size(), uniq.size());
  }
  return total;
}

}  // namespace tgnn::baselines
