#include "baselines/apan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "nn/loss.hpp"
#include "tensor/ops.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::baselines {

namespace {
tgnn::Rng& ctor_rng(std::uint64_t seed) {
  thread_local tgnn::Rng rng(0);
  rng.reseed(seed);
  return rng;
}
}  // namespace

Apan::Apan(const ApanConfig& cfg, const data::Dataset& ds, std::uint64_t seed)
    : cfg_(cfg), ds_(ds), time_enc_(cfg.time_dim, ctor_rng(seed)),
      w_score_("apan.w_score", cfg.mail_in_dim(), cfg.score_hidden,
               ctor_rng(seed + 1)),
      a_("apan.a", Tensor(cfg.score_hidden)),
      w_value_("apan.w_value", cfg.mail_in_dim(), cfg.emb_dim,
               ctor_rng(seed + 2)),
      mailbox_(ds.graph.num_nodes()), mail_head_(ds.graph.num_nodes(), 0) {
  {
    core::ModelConfig mc;
    mc.emb_dim = cfg.emb_dim;
    mc.decoder_hidden = cfg.decoder_hidden;
    tgnn::Rng r(seed + 3);
    decoder_ = core::Decoder(mc, r);
  }
  tgnn::Rng r(seed + 4);
  for (std::size_t i = 0; i < a_.value.size(); ++i)
    a_.value[i] = r.uniform(-0.3f, 0.3f);

  for (auto* p : time_enc_.parameters()) params_.add(p);
  for (auto* p : w_score_.parameters()) params_.add(p);
  params_.add(&a_);
  for (auto* p : w_value_.parameters()) params_.add(p);
  for (auto* p : decoder_.parameters()) params_.add(p);

  dst_pool_ = data::destination_pool(ds);
}

void Apan::reset_state() {
  for (auto& box : mailbox_) box.clear();
  std::fill(mail_head_.begin(), mail_head_.end(), 0);
}

void Apan::deliver(const graph::TemporalEdge& e) {
  auto payload_for = [&](graph::NodeId other) {
    Mail m;
    m.ts = e.ts;
    m.payload.resize(cfg_.payload_dim());
    if (cfg_.edge_dim > 0) {
      const auto f = ds_.edge_features.row(e.eid);
      std::copy(f.begin(), f.end(), m.payload.begin());
    } else if (cfg_.node_dim > 0) {
      const auto f = ds_.node_features.row(other);
      std::copy(f.begin(), f.end(), m.payload.begin());
    }
    return m;
  };
  auto push = [&](graph::NodeId v, Mail m) {
    auto& box = mailbox_[v];
    if (box.size() < cfg_.mailbox_size) {
      box.push_back(std::move(m));
    } else {
      box[mail_head_[v]] = std::move(m);
      mail_head_[v] = (mail_head_[v] + 1) % cfg_.mailbox_size;
    }
  };
  push(e.src, payload_for(e.dst));
  push(e.dst, payload_for(e.src));
}

void Apan::fast_forward(const graph::BatchRange& range) {
  for (std::size_t i = range.begin; i < range.end; ++i)
    deliver(ds_.graph.edge(i));
}

Tensor Apan::embed(graph::NodeId v, double t) const {
  return embed_cached(v, t, nullptr);
}

Tensor Apan::embed_cached(graph::NodeId v, double t, EmbedCache* cache) const {
  const auto& box = mailbox_[v];
  const std::size_t m = box.size();
  Tensor h(1, cfg_.emb_dim);
  if (m == 0) {
    if (cache) *cache = EmbedCache{};
    return h;
  }

  Tensor x(m, cfg_.mail_in_dim());
  std::vector<double> dts(m);
  for (std::size_t k = 0; k < m; ++k) {
    auto row = x.row(k);
    std::copy(box[k].payload.begin(), box[k].payload.end(), row.begin());
    dts[k] = std::max(0.0, t - box[k].ts);
    time_enc_.encode_scalar(dts[k],
                            row.subspan(cfg_.payload_dim(), cfg_.time_dim));
  }
  // score_k = a . tanh(W_s x_k); alpha = softmax(score); h = sum alpha V_k
  Tensor hidden = ops::tanh(w_score_.forward(x));
  std::vector<float> scores(m, 0.0f);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t d = 0; d < cfg_.score_hidden; ++d)
      scores[k] += a_.value[d] * hidden(k, d);
  std::vector<float> alpha(scores);
  ops::softmax_span(alpha);
  Tensor v_rows = w_value_.forward(x);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t d = 0; d < cfg_.emb_dim; ++d)
      h(0, d) += alpha[k] * v_rows(k, d);

  if (cache) {
    cache->x = std::move(x);
    cache->hidden = std::move(hidden);
    cache->alpha = std::move(alpha);
    cache->scores = std::move(scores);
    cache->v = std::move(v_rows);
    cache->dts = std::move(dts);
  }
  return h;
}

void Apan::embed_backward(const EmbedCache& c, const Tensor& dh) {
  const std::size_t m = c.x.rows();
  if (m == 0) return;

  std::vector<float> dalpha(m, 0.0f);
  Tensor dv(m, cfg_.emb_dim);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t d = 0; d < cfg_.emb_dim; ++d) {
      dalpha[k] += dh(0, d) * c.v(k, d);
      dv(k, d) = c.alpha[k] * dh(0, d);
    }
  }
  float dot = 0.0f;
  for (std::size_t k = 0; k < m; ++k) dot += c.alpha[k] * dalpha[k];
  std::vector<float> dscore(m);
  for (std::size_t k = 0; k < m; ++k)
    dscore[k] = c.alpha[k] * (dalpha[k] - dot);

  // score_k = a . hidden_k
  Tensor dhidden(m, cfg_.score_hidden);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t d = 0; d < cfg_.score_hidden; ++d) {
      a_.grad[d] += dscore[k] * c.hidden(k, d);
      dhidden(k, d) = dscore[k] * a_.value[d];
    }
  // tanh backward.
  for (std::size_t i = 0; i < dhidden.size(); ++i)
    dhidden[i] *= 1.0f - c.hidden[i] * c.hidden[i];

  Tensor dx = w_score_.backward(c.x, dhidden);
  dx += w_value_.backward(c.x, dv);

  // Route the time-encoding slice of dx into the encoder.
  Tensor dphi(m, cfg_.time_dim);
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t d = 0; d < cfg_.time_dim; ++d)
      dphi(k, d) = dx(k, cfg_.payload_dim() + d);
  time_enc_.backward(c.dts, dphi);
}

void Apan::train(const TrainOptions& opts) {
  nn::Adam::Options aopts;
  aopts.lr = opts.lr;
  nn::Adam adam(params_, aopts);
  tgnn::Rng rng(opts.seed);

  const auto range = ds_.train_range();
  const auto batches =
      ds_.graph.fixed_size_batches(range.begin, range.end, opts.batch_size);
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    reset_state();
    for (const auto& b : batches) {
      const auto edges = ds_.graph.edges(b);
      if (edges.empty()) continue;

      // Unique nodes to embed: endpoints + negatives.
      std::vector<graph::NodeId> nodes;
      std::vector<double> t_ev;
      std::unordered_map<graph::NodeId, std::size_t> index;
      auto touch = [&](graph::NodeId v, double ts) {
        auto [it, ins] = index.try_emplace(v, nodes.size());
        if (ins) {
          nodes.push_back(v);
          t_ev.push_back(ts);
        } else {
          t_ev[it->second] = std::max(t_ev[it->second], ts);
        }
      };
      for (const auto& e : edges) {
        touch(e.src, e.ts);
        touch(e.dst, e.ts);
      }
      std::vector<graph::NodeId> negs(edges.size());
      for (auto& v : negs) {
        v = dst_pool_[rng.uniform_int(dst_pool_.size())];
        touch(v, edges.back().ts);
      }

      std::vector<EmbedCache> caches(nodes.size());
      Tensor emb(nodes.size(), cfg_.emb_dim);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        Tensor h = embed_cached(nodes[i], t_ev[i], &caches[i]);
        std::copy(h.row(0).begin(), h.row(0).end(), emb.row(i).begin());
      }

      const std::size_t n_pairs = 2 * edges.size();
      Tensor pairs(n_pairs, 3 * cfg_.emb_dim);
      Tensor targets(n_pairs, 1);
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const auto hu = emb.row(index.at(edges[k].src));
        const auto hv = emb.row(index.at(edges[k].dst));
        const auto hn = emb.row(index.at(negs[k]));
        core::Decoder::build_pair(hu, hv, pairs.row(k));
        targets(k, 0) = 1.0f;
        core::Decoder::build_pair(hu, hn, pairs.row(edges.size() + k));
        targets(edges.size() + k, 0) = 0.0f;
      }
      core::Decoder::Cache dcache;
      Tensor logits = decoder_.forward(pairs, &dcache);
      const auto bce = nn::bce_with_logits(logits, targets);

      params_.zero_grad();
      Tensor dpairs = decoder_.backward(dcache, bce.grad);
      Tensor dh(nodes.size(), cfg_.emb_dim);
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const std::size_t iu = index.at(edges[k].src);
        const std::size_t iv = index.at(edges[k].dst);
        const std::size_t in_ = index.at(negs[k]);
        core::Decoder::route_pair_grad(dpairs.row(k), emb.row(iu),
                                       emb.row(iv), dh.row(iu), dh.row(iv));
        core::Decoder::route_pair_grad(dpairs.row(edges.size() + k),
                                       emb.row(iu), emb.row(in_), dh.row(iu),
                                       dh.row(in_));
      }
      Tensor dh_row(1, cfg_.emb_dim);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        std::copy(dh.row(i).begin(), dh.row(i).end(), dh_row.row(0).begin());
        embed_backward(caches[i], dh_row);
      }
      params_.clip_grad_norm(opts.grad_clip);
      adam.step();

      for (const auto& e : edges) deliver(e);
    }
  }
}

double Apan::evaluate_ap(const graph::BatchRange& range, std::size_t batch_size,
                         tgnn::Rng& rng) {
  std::vector<core::ScoredSample> samples;
  for (const auto& b :
       ds_.graph.fixed_size_batches(range.begin, range.end, batch_size)) {
    const auto edges = ds_.graph.edges(b);
    for (const auto& e : edges) {
      const Tensor hu = embed(e.src, e.ts);
      const Tensor hv = embed(e.dst, e.ts);
      const graph::NodeId neg = dst_pool_[rng.uniform_int(dst_pool_.size())];
      const Tensor hn = embed(neg, e.ts);
      samples.push_back({decoder_.score(hu.row(0), hv.row(0)), true});
      samples.push_back({decoder_.score(hu.row(0), hn.row(0)), false});
    }
    for (const auto& e : edges) deliver(e);
  }
  return core::average_precision(std::move(samples));
}

Apan::BatchOut Apan::process_batch(const graph::BatchRange& r,
                                   std::span<const graph::NodeId> extra_nodes) {
  const auto edges = ds_.graph.edges(r);
  BatchOut out;
  auto touch = [&](graph::NodeId v) {
    if (out.index.try_emplace(v, out.nodes.size()).second)
      out.nodes.push_back(v);
  };
  for (const auto& e : edges) {
    touch(e.src);
    touch(e.dst);
  }
  for (graph::NodeId v : extra_nodes) touch(v);
  const double t = edges.empty() ? 0.0 : edges.back().ts;

  out.embeddings = Tensor(out.nodes.size(), cfg_.emb_dim);
  Stopwatch sw;
  for (std::size_t i = 0; i < out.nodes.size(); ++i) {
    const Tensor h = embed(out.nodes[i], t);
    std::copy(h.row(0).begin(), h.row(0).end(), out.embeddings.row(i).begin());
  }
  out.latency_s = sw.seconds();
  // Mail delivery happens asynchronously in APAN: excluded from latency,
  // still applied to keep state moving.
  for (const auto& e : edges) deliver(e);
  return out;
}

std::vector<double> Apan::measure_latency(const graph::BatchRange& range,
                                          std::size_t batch_size) {
  std::vector<double> lat;
  for (const auto& b :
       ds_.graph.fixed_size_batches(range.begin, range.end, batch_size))
    lat.push_back(process_batch(b).latency_s);
  return lat;
}

}  // namespace tgnn::baselines
