// CPU baseline runner: streams a dataset range through an InferenceEngine
// and measures latency / throughput / the Table I per-part breakdown, with
// a configurable thread count (1 thread and 32 threads in the paper).
//
// This is a *real* measurement of the reference implementation on the build
// machine — the only baseline in this repo that is not modelled (see
// DESIGN.md §1). The runtime layer wraps it as the "cpu" / "cpu-mt"
// backends; run()/run_windows() delegate to the same shared streaming loop
// the runtime driver uses.
#pragma once

#include "runtime/stream_result.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::baselines {

/// Measurement accounting now shared with the runtime layer.
using RunResult = runtime::StreamResult;

class CpuRunner {
 public:
  /// threads == 1 runs fully serial; otherwise the GNN stage is OpenMP-
  /// parallel across vertices and the GEMMs use OpenMP internally.
  /// `memory_budget` bytes caps the resident vertex state (0 = all in RAM;
  /// see RuntimeState).
  CpuRunner(const core::TgnModel& model, const data::Dataset& ds, int threads,
            std::size_t memory_budget = 0);

  /// Stream [range] in fixed-size batches; state starts from whatever the
  /// engine currently holds (call warmup() first to fast-forward).
  RunResult run(const graph::BatchRange& range, std::size_t batch_size);

  /// Stream in fixed time windows (the paper's 15-minute real-time
  /// scenario); returns one latency sample per non-empty window.
  RunResult run_windows(const graph::BatchRange& range, double window_seconds);

  /// Apply this runner's thread count to the OpenMP runtime (called before
  /// every measured batch; cheap).
  void bind_threads();

  void warmup(const graph::BatchRange& range) { engine_.warmup(range); }
  core::InferenceEngine& engine() { return engine_; }
  [[nodiscard]] const core::InferenceEngine& engine() const { return engine_; }
  [[nodiscard]] int threads() const { return threads_; }

 private:
  core::InferenceEngine engine_;
  int threads_;
};

}  // namespace tgnn::baselines
