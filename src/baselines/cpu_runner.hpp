// CPU baseline runner: streams a dataset range through an InferenceEngine
// and measures latency / throughput / the Table I per-part breakdown, with
// a configurable thread count (1 thread and 32 threads in the paper).
//
// This is a *real* measurement of the reference implementation on the build
// machine — the only baseline in this repo that is not modelled (see
// DESIGN.md §1).
#pragma once

#include "tgnn/inference.hpp"

namespace tgnn::baselines {

struct RunResult {
  double total_seconds = 0.0;
  std::size_t num_edges = 0;
  std::size_t num_embeddings = 0;
  core::PartTimes parts;
  std::vector<double> batch_latency_s;  ///< per processed batch

  [[nodiscard]] double throughput_eps() const {
    return total_seconds > 0.0 ? static_cast<double>(num_edges) / total_seconds
                               : 0.0;
  }
  [[nodiscard]] double mean_latency_s() const;
  [[nodiscard]] double ns_per_embedding() const {
    return num_embeddings > 0
               ? total_seconds * 1e9 / static_cast<double>(num_embeddings)
               : 0.0;
  }
};

class CpuRunner {
 public:
  /// threads == 1 runs fully serial; otherwise the GNN stage is OpenMP-
  /// parallel across vertices and the GEMMs use OpenMP internally.
  CpuRunner(const core::TgnModel& model, const data::Dataset& ds, int threads);

  /// Stream [range] in fixed-size batches; state starts from whatever the
  /// engine currently holds (call warmup() first to fast-forward).
  RunResult run(const graph::BatchRange& range, std::size_t batch_size);

  /// Stream in fixed time windows (the paper's 15-minute real-time
  /// scenario); returns one latency sample per non-empty window.
  RunResult run_windows(const graph::BatchRange& range, double window_seconds);

  void warmup(const graph::BatchRange& range) { engine_.warmup(range); }
  core::InferenceEngine& engine() { return engine_; }

 private:
  core::InferenceEngine engine_;
  int threads_;
};

}  // namespace tgnn::baselines
