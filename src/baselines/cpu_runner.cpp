#include "baselines/cpu_runner.hpp"

#include <numeric>

#include <omp.h>

#include "util/stopwatch.hpp"

namespace tgnn::baselines {

double RunResult::mean_latency_s() const {
  if (batch_latency_s.empty()) return 0.0;
  return std::accumulate(batch_latency_s.begin(), batch_latency_s.end(), 0.0) /
         static_cast<double>(batch_latency_s.size());
}

CpuRunner::CpuRunner(const core::TgnModel& model, const data::Dataset& ds,
                     int threads)
    : engine_(model, ds, /*use_fifo=*/true), threads_(threads) {
  engine_.set_parallel_gnn(threads > 1);
}

RunResult CpuRunner::run(const graph::BatchRange& range,
                         std::size_t batch_size) {
  omp_set_num_threads(threads_);
  RunResult res;
  const auto batches = engine_.dataset().graph.fixed_size_batches(
      range.begin, range.end, batch_size);
  Stopwatch total;
  for (const auto& b : batches) {
    Stopwatch sw;
    const auto out = engine_.process_batch(b, {}, &res.parts);
    res.batch_latency_s.push_back(sw.seconds());
    res.num_edges += b.size();
    res.num_embeddings += out.nodes.size();
  }
  res.total_seconds = total.seconds();
  return res;
}

RunResult CpuRunner::run_windows(const graph::BatchRange& range,
                                 double window_seconds) {
  omp_set_num_threads(threads_);
  RunResult res;
  const auto batches = engine_.dataset().graph.fixed_window_batches(
      range.begin, range.end, window_seconds);
  Stopwatch total;
  for (const auto& b : batches) {
    if (b.size() == 0) continue;
    Stopwatch sw;
    const auto out = engine_.process_batch(b, {}, &res.parts);
    res.batch_latency_s.push_back(sw.seconds());
    res.num_edges += b.size();
    res.num_embeddings += out.nodes.size();
  }
  res.total_seconds = total.seconds();
  return res;
}

}  // namespace tgnn::baselines
