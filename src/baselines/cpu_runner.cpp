#include "baselines/cpu_runner.hpp"

#include <omp.h>

#include "util/stopwatch.hpp"

namespace tgnn::baselines {

CpuRunner::CpuRunner(const core::TgnModel& model, const data::Dataset& ds,
                     int threads, std::size_t memory_budget)
    : engine_(model, ds, /*use_fifo=*/true, memory_budget),
      threads_(threads) {
  engine_.set_parallel_gnn(threads > 1);
}

void CpuRunner::bind_threads() { omp_set_num_threads(threads_); }

RunResult CpuRunner::run(const graph::BatchRange& range,
                         std::size_t batch_size) {
  bind_threads();
  return runtime::drive_batches(
      engine_.dataset().graph.fixed_size_batches(range.begin, range.end,
                                                 batch_size),
      [this](const graph::BatchRange& b) {
        runtime::StepOutcome out;
        Stopwatch sw;
        out.num_embeddings = engine_.process_batch(b, {}, &out.parts).nodes.size();
        out.latency_s = sw.seconds();
        return out;
      });
}

RunResult CpuRunner::run_windows(const graph::BatchRange& range,
                                 double window_seconds) {
  bind_threads();
  return runtime::drive_batches(
      engine_.dataset().graph.fixed_window_batches(range.begin, range.end,
                                                   window_seconds),
      [this](const graph::BatchRange& b) {
        runtime::StepOutcome out;
        Stopwatch sw;
        out.num_embeddings = engine_.process_batch(b, {}, &out.parts).nodes.size();
        out.latency_s = sw.seconds();
        return out;
      });
}

}  // namespace tgnn::baselines
