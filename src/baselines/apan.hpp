// APAN (Wang et al., SIGMOD'21) — the latency-targeted comparator of Fig. 7.
//
// APAN's key idea: move all graph aggregation OFF the inference critical
// path. Each vertex keeps a small mailbox of the most recent mails delivered
// to it; producing an embedding only reads the vertex's own mailbox (no
// neighbor sampling, no neighbor-memory fetch). When an edge arrives, its
// payload is *asynchronously* propagated as mail to the endpoints'
// mailboxes. Inference latency is therefore tiny and batch-size-insensitive,
// at the cost of staler information — which is exactly the accuracy/latency
// position Fig. 7 plots it at.
//
// This implementation keeps the mechanism faithful at the scale this repo
// needs: K-mail mailboxes, attention over mails with a learned scorer,
// 1-hop asynchronous propagation, self-supervised training with the same
// BCE objective and decoder as the TGN models.
#pragma once

#include <span>
#include <unordered_map>

#include "data/dataset.hpp"
#include "nn/linear.hpp"
#include "nn/optim.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/metrics.hpp"
#include "tgnn/time_encoder.hpp"
#include "util/rng.hpp"

namespace tgnn::baselines {

struct ApanConfig {
  std::size_t mailbox_size = 10;  ///< K mails per vertex
  std::size_t time_dim = 100;
  std::size_t emb_dim = 100;
  std::size_t edge_dim = 172;  ///< mail payload = edge feature, or ...
  std::size_t node_dim = 0;    ///< ... counterpart node feature if no edges
  std::size_t score_hidden = 32;
  std::size_t decoder_hidden = 64;

  [[nodiscard]] std::size_t payload_dim() const {
    return edge_dim > 0 ? edge_dim : node_dim;
  }
  [[nodiscard]] std::size_t mail_in_dim() const {
    return payload_dim() + time_dim;
  }
};

class Apan {
 public:
  Apan(const ApanConfig& cfg, const data::Dataset& ds, std::uint64_t seed);

  struct TrainOptions {
    std::size_t epochs = 3;
    std::size_t batch_size = 200;
    double lr = 1e-3;
    double grad_clip = 5.0;
    std::uint64_t seed = 7;
  };

  /// Self-supervised training over the dataset's train split.
  void train(const TrainOptions& opts);

  /// AP over a range (state warmed through everything before range.begin).
  double evaluate_ap(const graph::BatchRange& range, std::size_t batch_size,
                     tgnn::Rng& rng);

  /// One serving batch (the runtime-backend entry point): embed every vertex
  /// involved in [r] plus `extra_nodes` at the batch-end timestamp — the
  /// synchronous path, timed — then deliver the batch's mails (asynchronous
  /// in APAN, excluded from the latency).
  struct BatchOut {
    std::vector<graph::NodeId> nodes;
    Tensor embeddings;  ///< [nodes.size(), emb_dim]
    std::unordered_map<graph::NodeId, std::size_t> index;
    double latency_s = 0.0;
  };
  BatchOut process_batch(const graph::BatchRange& r,
                         std::span<const graph::NodeId> extra_nodes = {});

  /// Measured synchronous-path latency: embed the vertices of each batch
  /// (mail delivery is excluded — it is asynchronous in APAN). Returns
  /// seconds per batch.
  std::vector<double> measure_latency(const graph::BatchRange& range,
                                      std::size_t batch_size);

  void reset_state();
  /// Deliver the mails of a range without computing embeddings.
  void fast_forward(const graph::BatchRange& range);

  [[nodiscard]] const ApanConfig& config() const { return cfg_; }
  [[nodiscard]] core::Decoder& decoder() { return decoder_; }

 private:
  struct Mail {
    std::vector<float> payload;
    double ts = 0.0;
  };

  /// Embedding of vertex v at time t from its mailbox (allocating).
  Tensor embed(graph::NodeId v, double t) const;

  /// Embedding with cached intermediates for backward.
  struct EmbedCache {
    Tensor x;                   ///< [m_mails, mail_in]
    Tensor hidden;              ///< [m_mails, score_hidden] post-tanh
    std::vector<float> alpha;   ///< softmax weights
    std::vector<float> scores;  ///< raw scores
    Tensor v;                   ///< [m_mails, emb]
    std::vector<double> dts;
  };
  Tensor embed_cached(graph::NodeId v, double t, EmbedCache* cache) const;
  /// Backward for one embed; accumulates parameter grads.
  void embed_backward(const EmbedCache& cache, const Tensor& dh);

  void deliver(const graph::TemporalEdge& e);

  ApanConfig cfg_;
  const data::Dataset& ds_;
  core::CosTimeEncoder time_enc_;
  nn::Linear w_score_;  ///< mail_in -> score_hidden
  nn::Parameter a_;     ///< [score_hidden] scoring vector
  nn::Linear w_value_;  ///< mail_in -> emb
  core::Decoder decoder_;
  nn::ParamStore params_;
  std::vector<std::vector<Mail>> mailbox_;  ///< ring per vertex (<= K)
  std::vector<std::size_t> mail_head_;
  std::vector<graph::NodeId> dst_pool_;
};

}  // namespace tgnn::baselines
