// Analytic GPU baseline (substitution for the paper's Nvidia Titan Xp —
// see DESIGN.md §1).
//
// Per-batch execution time is modelled as
//
//   T = N_kernels * t_launch
//     + max(FLOPs / (peak_flops * flop_eff), bytes / (mem_bw * bw_eff))
//
// i.e. a fixed kernel-launch budget plus a roofline over compute and HBM
// traffic. This captures the two GPU behaviours the paper's evaluation
// hinges on: (1) small batches are launch-latency-bound, so latency is flat
// while throughput collapses; (2) large batches become roofline-bound and
// overtake the CPU. Kernel counts come from the model structure (so SAT/LUT
// genuinely remove kernels); FLOP/byte counts come from the same complexity
// meter used for Tables I/II.
#pragma once

#include <string>

#include "tgnn/complexity.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::baselines {

struct GpuSpec {
  std::string name;
  double peak_flops;      ///< FP32 FLOP/s
  double mem_bw;          ///< bytes/s
  double kernel_launch_s; ///< per-kernel launch + sync overhead
  double flop_eff;        ///< achieved fraction of peak on these GEMM shapes
  double bw_eff;          ///< achieved fraction of peak bandwidth
  /// PyTorch-graph expansion: each logical op in kernels_per_batch() lowers
  /// to several framework kernels (slicing, cat, index_select, dtype casts)
  /// plus Python dispatch. Calibrated against the TGN reference code's
  /// small-batch GPU latency (Table I / Fig. 5).
  double framework_ops_factor;
};

/// Titan Xp (Table III): 3840 CUDA cores @ 1.53 GHz, 547 GB/s.
GpuSpec titan_xp();

/// Number of kernel launches per processed batch for a model config
/// (memory gates, attention GEMMs, softmax, scatter/gather ...).
std::size_t kernels_per_batch(const core::ModelConfig& cfg);

class GpuSim {
 public:
  GpuSim(GpuSpec spec, core::ModelConfig cfg)
      : spec_(std::move(spec)), cfg_(std::move(cfg)) {}

  /// Estimated wall time to process one batch of `num_edges` edges
  /// producing `num_embeddings` embeddings.
  [[nodiscard]] double batch_seconds(std::size_t num_edges,
                                     std::size_t num_embeddings) const;

  /// Table I-style per-part breakdown of the same estimate.
  [[nodiscard]] core::PartTimes batch_parts(std::size_t num_edges,
                                            std::size_t num_embeddings) const;

  /// Stream an edge range in fixed-size batches: total seconds.
  [[nodiscard]] double run_seconds(const data::Dataset& ds,
                                   const graph::BatchRange& range,
                                   std::size_t batch_size) const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
  core::ModelConfig cfg_;
};

}  // namespace tgnn::baselines
