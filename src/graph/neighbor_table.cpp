#include "graph/neighbor_table.hpp"

#include <stdexcept>

namespace tgnn::graph {

NeighborTable::NeighborTable(NodeId num_nodes, std::size_t mr)
    : num_nodes_(num_nodes), mr_(mr), slots_(std::size_t{num_nodes} * mr),
      head_(num_nodes, 0), counts_(num_nodes, 0) {
  if (mr == 0) throw std::invalid_argument("NeighborTable: mr must be > 0");
}

void NeighborTable::insert(NodeId v, NodeId neighbor, EdgeId eid, double ts) {
  if (v >= num_nodes_)
    throw std::out_of_range("NeighborTable::insert: node out of range");
  Slot& s = slots_[std::size_t{v} * mr_ + head_[v]];
  s.node = neighbor;
  s.eid = eid;
  s.ts = ts;
  head_[v] = static_cast<std::uint32_t>((head_[v] + 1) % mr_);
  if (counts_[v] < mr_) ++counts_[v];
}

void NeighborTable::clear_row(NodeId v) {
  if (v >= num_nodes_)
    throw std::out_of_range("NeighborTable::clear_row: node out of range");
  head_[v] = 0;
  counts_[v] = 0;
}

void NeighborTable::insert_edge(const TemporalEdge& e) {
  insert(e.src, e.dst, e.eid, e.ts);
  insert(e.dst, e.src, e.eid, e.ts);
}

std::vector<NeighborHit> NeighborTable::row(NodeId v) const {
  std::vector<NeighborHit> out;
  row_into(v, out);
  return out;
}

void NeighborTable::row_into(NodeId v, std::vector<NeighborHit>& out) const {
  if (v >= num_nodes_)
    throw std::out_of_range("NeighborTable::row: node out of range");
  out.clear();
  const std::size_t n = counts_[v];
  out.reserve(n);
  // Oldest entry sits at head - count (mod mr).
  std::size_t idx = (head_[v] + mr_ - n) % mr_;
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[std::size_t{v} * mr_ + idx];
    out.push_back({s.node, s.eid, s.ts});
    idx = (idx + 1) % mr_;
  }
}

}  // namespace tgnn::graph
