// Software most-recent temporal neighbor sampler — the "sample" stage of the
// baseline TGN pipeline (Table I). Maintains per-node interaction histories
// in chronological order; most_recent(v, t, k) returns up to k interactions
// strictly before t, newest first.
//
// This is the general (unbounded-history) sampler the CPU/GPU baselines use.
// The FPGA design replaces it with the bounded FIFO NeighborTable
// (graph/neighbor_table.hpp) — one of the paper's hardware optimizations.
#pragma once

#include <vector>

#include "graph/temporal_graph.hpp"

namespace tgnn::graph {

struct NeighborHit {
  NodeId node = 0;
  EdgeId eid = 0;
  double ts = 0.0;
};

class NeighborFinder {
 public:
  explicit NeighborFinder(NodeId num_nodes) : hist_(num_nodes) {}

  /// Record an interaction (appended for both endpoints). Timestamps must be
  /// non-decreasing per node (guaranteed by chronological edge streams).
  void insert(const TemporalEdge& e);

  /// Up to k most recent interactions of v strictly before time t,
  /// ordered oldest -> newest (the order the attention layer consumes:
  /// t_v0 <= t_v1 <= ... as in §III-A).
  [[nodiscard]] std::vector<NeighborHit> most_recent(NodeId v, double t,
                                                     std::size_t k) const;

  /// Allocation-free variant: clears `out` and fills it with the same
  /// entries, reusing its capacity (the engine batch-workspace hot path).
  void most_recent_into(NodeId v, double t, std::size_t k,
                        std::vector<NeighborHit>& out) const;

  /// Total stored interactions of v (degree over all time).
  [[nodiscard]] std::size_t degree(NodeId v) const { return hist_[v].size(); }

  /// Full stored history of v, oldest -> newest (the checkpoint export
  /// seam — most_recent is a filtered view, this is the raw table row).
  [[nodiscard]] const std::vector<NeighborHit>& history(NodeId v) const {
    return hist_[v];
  }
  /// Replace v's history wholesale (checkpoint import). Entries must be
  /// in the chronological order insert() would have left them.
  void restore_history(NodeId v, std::vector<NeighborHit> hits) {
    hist_[v] = std::move(hits);
  }

  void clear();

 private:
  std::vector<std::vector<NeighborHit>> hist_;
};

}  // namespace tgnn::graph
