// Out-of-core row store: the capacity layer under VertexMemory /
// VertexMailbox (§IV-B — the Updater's chronology-preserving cache,
// re-targeted from BRAM-vs-DDR to RAM-vs-spill-file).
//
// A store holds `num_rows` fixed-size records. Two regimes:
//
//  * All-resident (budget 0 or >= total): one flat allocation, row
//    pointers stable forever, every pin/unpin/prefetch a no-op. This is
//    the default and is byte-for-byte the pre-store behavior — the whole
//    serving stack pays nothing until someone asks for a budget.
//
//  * Out-of-core (0 < budget < total): rows are grouped into pages of
//    `rows_per_page` records; a fixed set of page frames (budget /
//    page_bytes, min 4) caches the hot set, and cold pages live in an
//    mmap'd spill file (PagedFile). CLOCK eviction with pinned-page
//    exemption approximates LRU — under the Zipf-skewed streams the
//    synthetic generator produces, the head of the popularity
//    distribution stays resident and the tail cycles through the
//    remaining frames.
//
// Concurrency contract (matches how the engine's stage machinery and the
// sharded lanes actually access state):
//
//  * pin_rows / unpin_rows / prefetch_rows / stats / reset take the store
//    mutex and may be called from any thread.
//  * row() / row_mut() are lock-free. They are safe concurrently iff the
//    row's page is pinned by the calling batch (the pin's mutex acquire
//    is the happens-before edge that makes the page-table read valid);
//    writes to the same row are the caller's problem, exactly as with
//    flat arrays (the shard-lock layer already serializes them).
//  * Unpinned row()/row_mut() on an out-of-core store is allowed only
//    single-threaded (tests, warmup-style direct access): it faults the
//    page in under the mutex and the pointer stays valid until the next
//    store call.
//
// Write-back ports the UpdaterCache idioms: a dirty page is queued when
// its last pin drops (batch completion order == chronological commit
// order), queued pages are flushed in batches of `writeback_batch`, and a
// page re-dirtied while still queued invalidates the stale entry — only
// the newest version ever spills (counted in `writeback_invalidations`,
// the §IV-B redundant-write elimination).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/paged_file.hpp"
#include "graph/temporal_graph.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tgnn::graph {

struct VertexStoreOptions {
  /// Resident budget in bytes. 0 = all-resident (no cap).
  std::size_t budget_bytes = 0;
  /// Records per page. Coarse pages amortize spill I/O; fine pages track
  /// the hot set more precisely. 64 rows ~= tens of KiB per page at
  /// paper dims.
  std::size_t rows_per_page = 64;
  /// Flush the write-back queue once this many pages are pending. The ring
  /// depth is the §IV-B redundant-write window: a hot page re-dirtied while
  /// queued invalidates its stale entry instead of spilling, so deeper
  /// queues convert hot-page write-backs into invalidations (16 writes
  /// ~every page each batch under serving load; 128 spills mostly the
  /// genuinely cooling tail).
  std::size_t writeback_batch = 128;
  /// Spill directory; empty = $TMPDIR or /tmp.
  std::string spill_dir;
};

/// Counters surfaced through Backend::store_stats() into ServingStats.
/// hits/misses count row-granular pin requests (the serving path's access
/// notion); prefetch traffic is tracked separately so a prefetched page's
/// later pin legitimately counts as a hit — hiding the fault latency is
/// the prefetcher's whole purpose.
struct VertexStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spill_page_writes = 0;
  std::uint64_t spill_page_reads = 0;
  /// Stale queued write-backs superseded by a newer dirtying of the same
  /// page (only the newest version spills — §IV-B invalidation).
  std::uint64_t writeback_invalidations = 0;
  std::uint64_t prefetch_hits = 0;   ///< prefetch requests already resident
  std::uint64_t prefetch_loads = 0;  ///< pages faulted in by prefetch
  /// Frames allocated past the configured budget because every frame was
  /// pinned at fault time (budget smaller than one batch's footprint).
  std::uint64_t overcommit_frames = 0;
  /// Spill-I/O attempts retried after a transient (injected) fault.
  std::uint64_t io_retries = 0;
  /// Spill-I/O operations that failed permanently. A failed eviction
  /// write-back propagates as a typed error (the frame stays resident and
  /// dirty — no data loss); a failed queue flush re-queues the entry for
  /// the next drain attempt.
  std::uint64_t io_failures = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  VertexStoreStats& operator+=(const VertexStoreStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    spill_page_writes += o.spill_page_writes;
    spill_page_reads += o.spill_page_reads;
    writeback_invalidations += o.writeback_invalidations;
    prefetch_hits += o.prefetch_hits;
    prefetch_loads += o.prefetch_loads;
    overcommit_frames += o.overcommit_frames;
    io_retries += o.io_retries;
    io_failures += o.io_failures;
    return *this;
  }
};

class VertexStore {
 public:
  VertexStore(std::size_t num_rows, std::size_t row_bytes,
              VertexStoreOptions opts = {});

  VertexStore(const VertexStore&) = delete;
  VertexStore& operator=(const VertexStore&) = delete;

  [[nodiscard]] bool out_of_core() const { return !resident_; }
  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  /// Row stride. Rounded up to 8 so every row is 8-byte aligned and the
  /// [timestamp][payload...] record layouts can be addressed in place.
  [[nodiscard]] std::size_t row_bytes() const { return row_bytes_; }
  [[nodiscard]] std::size_t rows_per_page() const { return rows_per_page_; }
  [[nodiscard]] std::size_t num_pages() const { return num_pages_; }
  /// Configured frame count (excludes overcommit growth).
  [[nodiscard]] std::size_t num_frames() const { return budget_frames_; }

  /// Read pointer for row r. See the concurrency contract above.
  [[nodiscard]] const std::byte* row(std::size_t r) const;
  /// Write pointer for row r; marks the page dirty (and invalidates a
  /// stale queued write-back of it).
  [[nodiscard]] std::byte* row_mut(std::size_t r);

  /// Fault in + reference-count the pages covering `rows`. Duplicate ids
  /// pin (and later must unpin) once each — pin/unpin calls are symmetric
  /// per id, not per unique page. Strong exception guarantee: a spill
  /// fault mid-call rolls back every pin the call already took, so the
  /// batch either holds all its pins or none.
  void pin_rows(std::span<const NodeId> rows) TGNN_EXCLUDES(mu_);
  void unpin_rows(std::span<const NodeId> rows) TGNN_EXCLUDES(mu_);
  /// Best-effort fault-in without pinning (the NeighborGather-driven
  /// prefetch hook): pages already resident count as prefetch_hits, the
  /// rest are loaded unless doing so would require evicting a pinned page.
  void prefetch_rows(std::span<const NodeId> rows) TGNN_EXCLUDES(mu_);

  /// Zero every row and drop all spilled content. Requires no pins held.
  void reset() TGNN_EXCLUDES(mu_);

  [[nodiscard]] VertexStoreStats stats() const TGNN_EXCLUDES(mu_);

  /// Structural validator (the §IV-B cache states as executable
  /// contracts): page-table/frame-table agreement, pin accounting against
  /// the redundant total_pins_ counter, write-back-queue chronology
  /// (strictly increasing sequence numbers, live entries matching their
  /// frame's queued_seq and dirty bit), spill-file consistency, and
  /// free-list/buffer agreement. TGNN_CHECK-aborts on the first violation;
  /// a checked build (-DTGNN_CHECKED=ON) runs it automatically after every
  /// unpin_rows and reset. Cheap relative to a batch (O(pages + frames +
  /// queue)), a no-op on an all-resident store.
  void check_invariants() const TGNN_EXCLUDES(mu_);

 private:
  struct Frame {
    std::int64_t page = -1;  ///< resident page id, -1 = free
    std::uint32_t pins = 0;
    bool ref = false;  ///< CLOCK reference bit (set on pin/fault)
    /// Content differs from the spill file. Set lock-free by row_mut.
    std::atomic<bool> dirty{false};
    /// Nonzero = a write-back queue entry with this sequence number is
    /// pending for this page. row_mut zeroes it (lock-free) to invalidate
    /// the stale entry when the page is dirtied again before flushing.
    std::atomic<std::uint64_t> queued_seq{0};
    std::unique_ptr<std::byte[]> data;
  };

  std::size_t frame_for(std::size_t page, bool prefetch) TGNN_REQUIRES(mu_);
  std::size_t find_victim_frame(bool allow_overcommit) TGNN_REQUIRES(mu_);
  void evict_frame(std::size_t f) TGNN_REQUIRES(mu_);
  void flush_queue(std::size_t max_entries) TGNN_REQUIRES(mu_);
  void write_back(std::size_t f) TGNN_REQUIRES(mu_);
  void trim_overcommit() TGNN_REQUIRES(mu_);
  /// Slow path of row()/row_mut(): fault `page` in under the lock and
  /// return its frame (single-threaded unpinned-access contract). The
  /// returned pointer is growth-stable (frames_ is a deque) and valid
  /// until the next store call.
  Frame* fault_page(std::size_t page) TGNN_EXCLUDES(mu_);
  void check_invariants_locked() const TGNN_REQUIRES(mu_);

  std::size_t num_rows_;
  std::size_t row_bytes_;
  std::size_t rows_per_page_ = 0;
  std::size_t num_pages_ = 0;
  std::size_t page_bytes_ = 0;
  std::size_t budget_frames_ = 0;
  std::size_t writeback_batch_ = 0;
  bool resident_;

  // All-resident fast path.
  std::vector<std::byte> flat_;

  // Out-of-core state. row()/row_mut() resolve pages lock-free through
  // page_frame_ — a fixed-size array of atomic Frame pointers (all
  // remaps happen under mu_ and the pin protocol excludes remapping a
  // pinned page; the acquire load pairs with frame_for's release store,
  // which is why page_frame_ itself carries no TGNN_GUARDED_BY). The deque
  // is touched only under mu_: element addresses are growth-stable, but
  // its internal index map is not, so even frames_[i] is off-limits
  // without the lock. Frame's own fields split the same way — page / pins
  // / ref are mu_-only, data is stable while the page is pinned, and
  // dirty / queued_seq are lock-free atomics written by row_mut.
  mutable util::Mutex mu_;
  std::deque<Frame> frames_ TGNN_GUARDED_BY(mu_);  // growth never moves a Frame
  std::vector<std::atomic<Frame*>> page_frame_;
  /// Retired frame slots (data released after overcommit growth); popped
  /// and re-armed before the pool grows again. Invariant: a frame's data
  /// is null iff its index is in this list.
  std::vector<std::size_t> free_frames_ TGNN_GUARDED_BY(mu_);
  /// Frames currently holding a buffer.
  std::size_t allocated_frames_ TGNN_GUARDED_BY(mu_) = 0;
  std::vector<std::int32_t> frame_of_ TGNN_GUARDED_BY(mu_);
  /// Page has ever been spilled.
  std::vector<std::uint8_t> on_disk_ TGNN_GUARDED_BY(mu_);
  std::size_t hand_ TGNN_GUARDED_BY(mu_) = 0;  ///< CLOCK sweep position
  std::uint64_t next_seq_ TGNN_GUARDED_BY(mu_) = 1;
  /// Outstanding pins across all frames — redundant with the per-frame
  /// counts by construction, which is exactly what lets check_invariants
  /// catch a forged or leaked pin.
  std::uint64_t total_pins_ TGNN_GUARDED_BY(mu_) = 0;
  struct WbEntry {
    std::size_t page;
    std::uint64_t seq;
  };
  std::deque<WbEntry> wb_queue_ TGNN_GUARDED_BY(mu_);
  std::unique_ptr<PagedFile> file_;

  VertexStoreStats stats_ TGNN_GUARDED_BY(mu_);  // except:
  mutable std::atomic<std::uint64_t> invalidations_{0};

  /// Test seam: deliberately corrupts internals to prove the validators
  /// fire (defined in tests/graph/vertex_store_test.cpp only).
  friend struct VertexStoreTestPeer;
};

}  // namespace tgnn::graph
