#include "graph/temporal_graph.hpp"

#include <stdexcept>

namespace tgnn::graph {

TemporalGraph::TemporalGraph(NodeId num_nodes, std::vector<TemporalEdge> edges,
                             bool assign_eids)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    auto& e = edges_[i];
    if (e.src >= num_nodes_ || e.dst >= num_nodes_)
      throw std::invalid_argument("TemporalGraph: node id out of range");
    if (i > 0 && e.ts < edges_[i - 1].ts)
      throw std::invalid_argument("TemporalGraph: edges not chronological");
    if (assign_eids) e.eid = static_cast<EdgeId>(i);
  }
}

std::vector<BatchRange> TemporalGraph::fixed_size_batches(
    std::size_t from, std::size_t to, std::size_t batch_size) const {
  if (batch_size == 0) throw std::invalid_argument("batch_size must be > 0");
  if (to > edges_.size() || from > to)
    throw std::invalid_argument("fixed_size_batches: bad range");
  std::vector<BatchRange> out;
  for (std::size_t b = from; b < to; b += batch_size)
    out.push_back({b, std::min(to, b + batch_size)});
  return out;
}

std::vector<BatchRange> TemporalGraph::fixed_window_batches(
    std::size_t from, std::size_t to, double window) const {
  if (window <= 0.0) throw std::invalid_argument("window must be > 0");
  if (to > edges_.size() || from > to)
    throw std::invalid_argument("fixed_window_batches: bad range");
  std::vector<BatchRange> out;
  if (from == to) return out;
  double w_start = edges_[from].ts;
  std::size_t begin = from;
  for (std::size_t i = from; i < to; ++i) {
    while (edges_[i].ts >= w_start + window) {
      out.push_back({begin, i});
      begin = i;
      w_start += window;
    }
  }
  out.push_back({begin, to});
  return out;
}

}  // namespace tgnn::graph
