// Shard-partitioned mutation views of the persistent vertex tables.
//
// Each view wraps one table plus one (ShardMap, shard) pair and only allows
// *mutations* of vertices routed to that shard; reads stay unrestricted
// (cross-shard reads are the GNN stage's normal access pattern). Because
// every vertex row is a disjoint slice of the underlying storage, two views
// over different shards can be driven from different threads with no lock
// at all — the property the sharded runtime backend builds its per-shard
// reset/rebuild paths on, and the seam later PRs (per-shard replication,
// async checkpointing) extend.
//
// Ownership violations throw std::invalid_argument rather than silently
// corrupting another shard's rows; the checks are cheap (one hash).
#pragma once

#include "graph/neighbor_table.hpp"
#include "graph/shard_map.hpp"
#include "graph/vertex_state.hpp"

namespace tgnn::graph {

class VertexMemoryShard {
 public:
  VertexMemoryShard(VertexMemory& base, const ShardMap& map, std::size_t shard);

  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] bool owns(NodeId v) const {
    return map_->shard_of(v) == shard_;
  }

  [[nodiscard]] std::span<const float> get(NodeId v) const {
    return base_->get(v);
  }
  [[nodiscard]] double last_update(NodeId v) const {
    return base_->last_update(v);
  }

  /// Write v's memory row; v must belong to this view's shard.
  void set(NodeId v, std::span<const float> value, double ts);

  /// Zero every row owned by this shard (other shards untouched).
  void reset();

 private:
  void check(NodeId v, const char* op) const;

  VertexMemory* base_;
  const ShardMap* map_;
  std::size_t shard_;
};

class VertexMailboxShard {
 public:
  VertexMailboxShard(VertexMailbox& base, const ShardMap& map,
                     std::size_t shard);

  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] bool owns(NodeId v) const {
    return map_->shard_of(v) == shard_;
  }

  [[nodiscard]] bool has_mail(NodeId v) const { return base_->has_mail(v); }
  [[nodiscard]] std::span<const float> mail(NodeId v) const {
    return base_->mail(v);
  }
  [[nodiscard]] double mail_ts(NodeId v) const { return base_->mail_ts(v); }

  /// Cache a message for v; v must belong to this view's shard.
  void put(NodeId v, std::span<const float> raw, double ts);

  /// Drop every cached message owned by this shard.
  void reset();

 private:
  void check(NodeId v, const char* op) const;

  VertexMailbox* base_;
  const ShardMap* map_;
  std::size_t shard_;
};

class NeighborTableShard {
 public:
  NeighborTableShard(NeighborTable& base, const ShardMap& map,
                     std::size_t shard);

  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] bool owns(NodeId v) const {
    return map_->shard_of(v) == shard_;
  }

  [[nodiscard]] std::vector<NeighborHit> row(NodeId v) const {
    return base_->row(v);
  }
  [[nodiscard]] std::size_t fill(NodeId v) const { return base_->fill(v); }

  /// Append one interaction to v's FIFO row; v must belong to this shard.
  /// Note insert_edge() has no per-shard equivalent: an edge's endpoints
  /// may live in different shards, so cross-shard edges are recorded by
  /// calling insert() once on each endpoint's view.
  void insert(NodeId v, NodeId neighbor, EdgeId eid, double ts);

  /// Empty every FIFO row owned by this shard.
  void reset();

 private:
  void check(NodeId v, const char* op) const;

  NeighborTable* base_;
  const ShardMap* map_;
  std::size_t shard_;
};

}  // namespace tgnn::graph
