#include "graph/vertex_state.hpp"

#include <algorithm>
#include <stdexcept>

namespace tgnn::graph {

VertexMemory::VertexMemory(NodeId num_nodes, std::size_t dim)
    : num_nodes_(num_nodes), dim_(dim),
      data_(std::size_t{num_nodes} * dim, 0.0f), ts_(num_nodes, 0.0) {}

std::span<const float> VertexMemory::get(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::get");
  return {data_.data() + std::size_t{v} * dim_, dim_};
}

void VertexMemory::set(NodeId v, std::span<const float> value, double ts) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::set");
  if (value.size() != dim_)
    throw std::invalid_argument("VertexMemory::set: dim mismatch");
  std::copy(value.begin(), value.end(), data_.begin() + std::size_t{v} * dim_);
  ts_[v] = ts;
}

void VertexMemory::reset() {
  std::fill(data_.begin(), data_.end(), 0.0f);
  std::fill(ts_.begin(), ts_.end(), 0.0);
}

void VertexMemory::clear_row(NodeId v) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::clear_row");
  auto row = data_.begin() + std::size_t{v} * dim_;
  std::fill(row, row + dim_, 0.0f);
  ts_[v] = 0.0;
}

VertexMailbox::VertexMailbox(NodeId num_nodes, std::size_t raw_dim)
    : num_nodes_(num_nodes), dim_(raw_dim),
      data_(std::size_t{num_nodes} * raw_dim, 0.0f), ts_(num_nodes, 0.0),
      valid_(num_nodes, 0) {}

std::span<const float> VertexMailbox::mail(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::mail");
  return {data_.data() + std::size_t{v} * dim_, dim_};
}

void VertexMailbox::put(NodeId v, std::span<const float> raw, double ts) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::put");
  if (raw.size() != dim_)
    throw std::invalid_argument("VertexMailbox::put: dim mismatch");
  std::copy(raw.begin(), raw.end(), data_.begin() + std::size_t{v} * dim_);
  ts_[v] = ts;
  valid_[v] = 1;
}

void VertexMailbox::reset() {
  std::fill(data_.begin(), data_.end(), 0.0f);
  std::fill(ts_.begin(), ts_.end(), 0.0);
  std::fill(valid_.begin(), valid_.end(), 0);
}

void VertexMailbox::clear_row(NodeId v) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::clear_row");
  auto row = data_.begin() + std::size_t{v} * dim_;
  std::fill(row, row + dim_, 0.0f);
  ts_[v] = 0.0;
  valid_[v] = 0;
}

}  // namespace tgnn::graph
