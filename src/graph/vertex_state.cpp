#include "graph/vertex_state.hpp"

#include <cstring>
#include <stdexcept>

namespace tgnn::graph {

// Record layouts (offsets within a store row):
//   VertexMemory:  [0: f64 ts][8: f32 x dim]
//   VertexMailbox: [0: f64 ts][8: f32 x raw_dim][8 + 4*raw_dim: u8 valid]
// Rows are 8-aligned (VertexStore rounds the stride), so the in-place
// float/double views below are aligned loads.

namespace {
constexpr std::size_t kPayloadOff = sizeof(double);

double load_ts(const std::byte* row) {
  double ts;
  std::memcpy(&ts, row, sizeof(double));
  return ts;
}

void store_ts(std::byte* row, double ts) {
  std::memcpy(row, &ts, sizeof(double));
}
}  // namespace

VertexMemory::VertexMemory(NodeId num_nodes, std::size_t dim,
                           const VertexStoreOptions& store_opts)
    : num_nodes_(num_nodes), dim_(dim),
      store_(num_nodes, store_row_bytes(dim), store_opts) {}

std::span<const float> VertexMemory::get(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::get");
  return {reinterpret_cast<const float*>(store_.row(v) + kPayloadOff), dim_};
}

void VertexMemory::set(NodeId v, std::span<const float> value, double ts) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::set");
  if (value.size() != dim_)
    throw std::invalid_argument("VertexMemory::set: dim mismatch");
  std::byte* row = store_.row_mut(v);
  std::memcpy(row + kPayloadOff, value.data(), dim_ * sizeof(float));
  store_ts(row, ts);
}

double VertexMemory::last_update(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::last_update");
  return load_ts(store_.row(v));
}

void VertexMemory::reset() { store_.reset(); }

void VertexMemory::clear_row(NodeId v) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMemory::clear_row");
  std::memset(store_.row_mut(v), 0, store_.row_bytes());
}

VertexMailbox::VertexMailbox(NodeId num_nodes, std::size_t raw_dim,
                             const VertexStoreOptions& store_opts)
    : num_nodes_(num_nodes), dim_(raw_dim),
      store_(num_nodes, store_row_bytes(raw_dim), store_opts) {}

bool VertexMailbox::has_mail(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::has_mail");
  const std::byte* row = store_.row(v);
  return row[kPayloadOff + dim_ * sizeof(float)] != std::byte{0};
}

std::span<const float> VertexMailbox::mail(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::mail");
  return {reinterpret_cast<const float*>(store_.row(v) + kPayloadOff), dim_};
}

double VertexMailbox::mail_ts(NodeId v) const {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::mail_ts");
  return load_ts(store_.row(v));
}

void VertexMailbox::put(NodeId v, std::span<const float> raw, double ts) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::put");
  if (raw.size() != dim_)
    throw std::invalid_argument("VertexMailbox::put: dim mismatch");
  std::byte* row = store_.row_mut(v);
  std::memcpy(row + kPayloadOff, raw.data(), dim_ * sizeof(float));
  store_ts(row, ts);
  row[kPayloadOff + dim_ * sizeof(float)] = std::byte{1};
}

void VertexMailbox::reset() { store_.reset(); }

void VertexMailbox::clear_row(NodeId v) {
  if (v >= num_nodes_) throw std::out_of_range("VertexMailbox::clear_row");
  std::memset(store_.row_mut(v), 0, store_.row_bytes());
}

}  // namespace tgnn::graph
