// Temporal graph: a chronologically ordered stream of timestamped edges.
//
// Matches the paper's data model (§IV-A): each edge is e(src, dst, f_e, t_e)
// where f_e is stored externally (row `eid` of the dataset's edge-feature
// matrix) so the graph structure stays compact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tgnn::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

struct TemporalEdge {
  NodeId src = 0;
  NodeId dst = 0;
  double ts = 0.0;  ///< event timestamp (seconds)
  EdgeId eid = 0;   ///< row in the dataset's edge-feature matrix
};

/// A batch is a contiguous [begin, end) range of the edge stream.
struct BatchRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

class TemporalGraph {
 public:
  TemporalGraph() = default;
  /// Takes ownership of the edge stream; verifies chronological order and
  /// assigns sequential eids if `assign_eids`.
  TemporalGraph(NodeId num_nodes, std::vector<TemporalEdge> edges,
                bool assign_eids = true);

  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const TemporalEdge& edge(std::size_t i) const {
    return edges_[i];
  }
  [[nodiscard]] std::span<const TemporalEdge> edges() const { return edges_; }
  [[nodiscard]] std::span<const TemporalEdge> edges(const BatchRange& r) const {
    return {edges_.data() + r.begin, r.size()};
  }

  [[nodiscard]] double t_min() const {
    return edges_.empty() ? 0.0 : edges_.front().ts;
  }
  [[nodiscard]] double t_max() const {
    return edges_.empty() ? 0.0 : edges_.back().ts;
  }

  /// Split [from, to) into batches of `batch_size` edges (last may be short).
  [[nodiscard]] std::vector<BatchRange> fixed_size_batches(
      std::size_t from, std::size_t to, std::size_t batch_size) const;

  /// Split [from, to) into batches covering fixed time windows of `window`
  /// seconds (the paper's 15-minute real-time inference scenario, Fig. 5
  /// right column). Empty windows produce empty batches.
  [[nodiscard]] std::vector<BatchRange> fixed_window_batches(
      std::size_t from, std::size_t to, double window) const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<TemporalEdge> edges_;
};

}  // namespace tgnn::graph
