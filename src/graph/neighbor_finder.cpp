#include "graph/neighbor_finder.hpp"

#include <algorithm>
#include <stdexcept>

namespace tgnn::graph {

void NeighborFinder::insert(const TemporalEdge& e) {
  if (e.src >= hist_.size() || e.dst >= hist_.size())
    throw std::out_of_range("NeighborFinder::insert: node out of range");
  hist_[e.src].push_back({e.dst, e.eid, e.ts});
  hist_[e.dst].push_back({e.src, e.eid, e.ts});
}

std::vector<NeighborHit> NeighborFinder::most_recent(NodeId v, double t,
                                                     std::size_t k) const {
  std::vector<NeighborHit> out;
  most_recent_into(v, t, k, out);
  return out;  // oldest -> newest
}

void NeighborFinder::most_recent_into(NodeId v, double t, std::size_t k,
                                      std::vector<NeighborHit>& out) const {
  if (v >= hist_.size())
    throw std::out_of_range("NeighborFinder::most_recent: node out of range");
  out.clear();
  const auto& h = hist_[v];
  // Binary search for the first interaction at ts >= t; history is sorted.
  auto it = std::lower_bound(
      h.begin(), h.end(), t,
      [](const NeighborHit& hit, double tt) { return hit.ts < tt; });
  const std::size_t end = static_cast<std::size_t>(it - h.begin());
  const std::size_t take = std::min(k, end);
  out.reserve(take);
  for (std::size_t i = end - take; i < end; ++i) out.push_back(h[i]);
}

void NeighborFinder::clear() {
  for (auto& h : hist_) h.clear();
}

}  // namespace tgnn::graph
