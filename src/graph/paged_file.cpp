#include "graph/paged_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace tgnn::graph {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

PagedFile::PagedFile(std::size_t page_bytes, std::size_t num_pages,
                     std::string dir)
    : page_bytes_(page_bytes), num_pages_(num_pages), dir_(std::move(dir)) {
  if (page_bytes_ == 0) throw std::invalid_argument("PagedFile: page_bytes 0");
}

PagedFile::~PagedFile() {
  if (base_ != nullptr) ::munmap(base_, page_bytes_ * num_pages_);
  if (fd_ >= 0) ::close(fd_);
}

void PagedFile::ensure_open() {
  if (base_ != nullptr) return;
  std::string dir = dir_;
  if (dir.empty()) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; nothing
    // in the process calls setenv.
    const char* env = std::getenv("TMPDIR");
    dir = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  std::string templ = dir + "/tgnn_spill_XXXXXX";
  fd_ = ::mkstemp(templ.data());
  if (fd_ < 0) throw_errno("PagedFile: mkstemp");
  // Unlink immediately: the fd keeps the inode alive, and the spill data
  // can never outlive (or leak past) the process.
  ::unlink(templ.c_str());
  const std::size_t total = page_bytes_ * num_pages_;
  if (::ftruncate(fd_, static_cast<off_t>(total)) != 0)
    throw_errno("PagedFile: ftruncate");
  void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) throw_errno("PagedFile: mmap");
  base_ = static_cast<std::byte*>(p);
}

void PagedFile::write_page(std::size_t page, const std::byte* src) {
  if (page >= num_pages_) throw std::out_of_range("PagedFile::write_page");
  ensure_open();
  std::memcpy(base_ + page * page_bytes_, src, page_bytes_);
}

void PagedFile::read_page(std::size_t page, std::byte* dst) const {
  if (page >= num_pages_) throw std::out_of_range("PagedFile::read_page");
  if (base_ == nullptr)
    throw std::logic_error("PagedFile::read_page: no page ever written");
  std::memcpy(dst, base_ + page * page_bytes_, page_bytes_);
}

void PagedFile::reset() {
  if (fd_ < 0) return;
  const std::size_t total = page_bytes_ * num_pages_;
  // Truncate to zero and back: the kernel frees the blocks and the regrown
  // file reads as zeros — same state as a fresh, never-written file.
  if (::ftruncate(fd_, 0) != 0) throw_errno("PagedFile::reset: ftruncate");
  if (::ftruncate(fd_, static_cast<off_t>(total)) != 0)
    throw_errno("PagedFile::reset: ftruncate");
}

}  // namespace tgnn::graph
