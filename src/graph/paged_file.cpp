#include "graph/paged_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/fault_injector.hpp"

namespace tgnn::graph {

SpillIoError::SpillIoError(std::string op, std::size_t page, int err)
    : std::runtime_error(
          op + (page == kNoPage ? std::string()
                                : " (page " + std::to_string(page) + ")") +
          (err != 0 ? std::string(": ") + std::strerror(err) : std::string())),
      op_(std::move(op)),
      page_(page),
      err_(err) {}

PagedFile::PagedFile(std::size_t page_bytes, std::size_t num_pages,
                     std::string dir)
    : page_bytes_(page_bytes), num_pages_(num_pages), dir_(std::move(dir)) {
  if (page_bytes_ == 0) throw std::invalid_argument("PagedFile: page_bytes 0");
}

PagedFile::~PagedFile() {
  if (base_ != nullptr) ::munmap(base_, page_bytes_ * num_pages_);
  if (fd_ >= 0) ::close(fd_);
}

void PagedFile::ensure_open() {
  if (base_ != nullptr) return;
  util::fault_point(util::FaultSite::kSpillOpen);
  std::string dir = dir_;
  if (dir.empty()) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup; nothing
    // in the process calls setenv.
    const char* env = std::getenv("TMPDIR");
    dir = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  std::string templ = dir + "/tgnn_spill_XXXXXX";
  fd_ = ::mkstemp(templ.data());
  if (fd_ < 0) throw SpillIoError("PagedFile: mkstemp", SpillIoError::kNoPage,
                                  errno);
  // Unlink immediately: the fd keeps the inode alive, and the spill data
  // can never outlive (or leak past) the process.
  ::unlink(templ.c_str());
  const std::size_t total = page_bytes_ * num_pages_;
  if (::ftruncate(fd_, static_cast<off_t>(total)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;  // leave the file closed so a retry starts clean
    throw SpillIoError("PagedFile: ftruncate", SpillIoError::kNoPage, err);
  }
  void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SpillIoError("PagedFile: mmap", SpillIoError::kNoPage, err);
  }
  base_ = static_cast<std::byte*>(p);
}

void PagedFile::write_page(std::size_t page, const std::byte* src) {
  if (page >= num_pages_)
    throw SpillIoError("PagedFile::write_page: page out of range", page, 0);
  util::fault_point(util::FaultSite::kSpillWrite);
  ensure_open();
  std::memcpy(base_ + page * page_bytes_, src, page_bytes_);
}

void PagedFile::read_page(std::size_t page, std::byte* dst) const {
  if (page >= num_pages_)
    throw SpillIoError("PagedFile::read_page: page out of range", page, 0);
  if (base_ == nullptr)
    throw SpillIoError("PagedFile::read_page: no page ever written", page, 0);
  util::fault_point(util::FaultSite::kSpillRead);
  std::memcpy(dst, base_ + page * page_bytes_, page_bytes_);
}

void PagedFile::reset() {
  if (fd_ < 0) return;
  const std::size_t total = page_bytes_ * num_pages_;
  // Truncate to zero and back: the kernel frees the blocks and the regrown
  // file reads as zeros — same state as a fresh, never-written file.
  if (::ftruncate(fd_, 0) != 0)
    throw SpillIoError("PagedFile::reset: ftruncate", SpillIoError::kNoPage,
                       errno);
  if (::ftruncate(fd_, static_cast<off_t>(total)) != 0)
    throw SpillIoError("PagedFile::reset: ftruncate", SpillIoError::kNoPage,
                       errno);
}

}  // namespace tgnn::graph
