// Spill file backing the out-of-core vertex store: a flat array of
// fixed-size pages in an unlinked temp file, mapped MAP_SHARED so a page
// written back and later faulted in again round-trips bit-exactly through
// the kernel page cache (no serialization step, no flush requirement —
// the mapping IS the file for the lifetime of the process).
//
// The file is created lazily on the first write_page(): a store whose hot
// set never overflows its budget (or that only ever reads zero pages)
// costs no disk at all. Until a page has been written the caller is
// expected to treat it as all-zero — VertexStore tracks that with its own
// on-disk bitmap and never issues a read_page for a page it has not
// spilled, so the sparse file stays sparse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tgnn::graph {

/// Typed spill-I/O failure: every PagedFile error path (mkstemp,
/// ftruncate, mmap, page-range violations) surfaces as one of these, with
/// the operation that failed, the page involved (kNoPage for whole-file
/// operations), and the errno when the kernel supplied one. VertexStore
/// retries transient injected faults and converts the rest into a clean
/// batch failure; counted in VertexStoreStats::io_failures.
class SpillIoError : public std::runtime_error {
 public:
  static constexpr std::size_t kNoPage = static_cast<std::size_t>(-1);

  SpillIoError(std::string op, std::size_t page, int err);

  [[nodiscard]] const std::string& op() const { return op_; }
  /// The page whose transfer failed, or kNoPage for open/reset failures.
  [[nodiscard]] std::size_t page() const { return page_; }
  [[nodiscard]] int error_code() const { return err_; }

 private:
  std::string op_;
  std::size_t page_;
  int err_;
};

class PagedFile {
 public:
  /// Geometry is fixed up front; the file itself is created on first use.
  /// `dir` empty means $TMPDIR (or /tmp). The temp file is unlinked
  /// immediately after creation, so it disappears with the process no
  /// matter how it exits.
  PagedFile(std::size_t page_bytes, std::size_t num_pages,
            std::string dir = {});
  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  [[nodiscard]] std::size_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::size_t num_pages() const { return num_pages_; }
  /// True once the backing file exists (i.e. at least one page spilled).
  [[nodiscard]] bool open() const { return base_ != nullptr; }

  /// Copy one page out to the file; creates + maps the file on first call.
  /// Throws SpillIoError on any failure (including injected spill faults).
  void write_page(std::size_t page, const std::byte* src);
  /// Copy one page back in. Only valid for pages previously written
  /// (the caller tracks which — reading an unwritten page returns the
  /// file's zeros, but that is a contract violation, not a feature).
  /// Throws SpillIoError on any failure.
  void read_page(std::size_t page, std::byte* dst) const;

  /// Drop all spilled content (punch the whole file back to zero length
  /// and regrow it sparse). Geometry is unchanged. No-op if never opened.
  void reset();

 private:
  void ensure_open();

  std::size_t page_bytes_;
  std::size_t num_pages_;
  std::string dir_;
  int fd_ = -1;
  std::byte* base_ = nullptr;
};

}  // namespace tgnn::graph
