// The shard layer's routing rule: every vertex belongs to exactly one of
// `num_shards` shards, chosen by a stable integer hash of its id. Stability
// matters — the assignment must be identical across runs, processes, and
// backends so that persisted state, conflict schedules, and (later)
// replicas all agree on where a vertex lives. std::hash gives no such
// guarantee, so the mix function is pinned here.
//
// Shards are the granularity of everything the concurrency layer does to
// the persistent vertex tables:
//  * ShardLockTable — one shared_mutex per shard protecting cross-batch
//    reads of vertex memory while another lane writes it (the bounded-
//    staleness path of the conflict-aware serving scheduler).
//  * shard_view.hpp — per-shard mutation windows over VertexMemory /
//    VertexMailbox / NeighborTable: disjoint shards touch disjoint rows,
//    so they can be mutated from different threads without a global lock.
//
// Picking the shard count: it only bounds lock/view granularity (conflict
// detection in the serving scheduler is per-vertex, not per-shard), so a
// few times the worker-lane count is plenty; see DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/temporal_graph.hpp"
#include "util/mutex.hpp"

namespace tgnn::graph {

class ShardMap {
 public:
  /// `num_shards` >= 1 (a single shard degenerates to the unsharded layout).
  explicit ShardMap(std::size_t num_shards);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }

  [[nodiscard]] std::size_t shard_of(NodeId v) const {
    return mix(v) % num_shards_;
  }

  /// The stable 32-bit mix the routing rule is built on (exposed for tests
  /// pinning cross-run stability).
  [[nodiscard]] static std::uint32_t mix(std::uint32_t x) {
    x += 0x9e3779b9u;
    x ^= x >> 16;
    x *= 0x21f0aaadu;
    x ^= x >> 15;
    x *= 0x735a2d97u;
    x ^= x >> 15;
    return x;
  }

 private:
  std::size_t num_shards_;
};

/// One reader/writer lock per shard. A serving lane holds the shard's
/// exclusive lock only around individual vertex-memory row writes
/// (util::ExclusiveLock), and the shared lock around row reads of vertices
/// outside its own batch (util::SharedLock) — the minimal protection that
/// makes bounded-staleness cross-shard reads race-free without serializing
/// disjoint batches. The locks are annotated capabilities
/// (util::SharedMutex), but note what the compile-time analysis can and
/// cannot prove here: acquisition/release pairing is checked, while WHICH
/// shard's lock guards which row is a dynamic property (mutex_of(v)) the
/// per-vertex conflict ledger and the TSan job cover.
class ShardLockTable {
 public:
  explicit ShardLockTable(std::size_t num_shards);

  [[nodiscard]] const ShardMap& map() const { return map_; }

  [[nodiscard]] util::SharedMutex& mutex_of(NodeId v) const {
    return mu_[map_.shard_of(v)];
  }

 private:
  ShardMap map_;
  std::unique_ptr<util::SharedMutex[]> mu_;
};

}  // namespace tgnn::graph
