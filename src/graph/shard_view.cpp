#include "graph/shard_view.hpp"

#include <stdexcept>
#include <string>

namespace tgnn::graph {

namespace {

[[noreturn]] void ownership_error(const char* cls, const char* op, NodeId v,
                                  std::size_t shard) {
  throw std::invalid_argument(std::string(cls) + "::" + op + ": vertex " +
                              std::to_string(v) +
                              " is not routed to shard " +
                              std::to_string(shard));
}

}  // namespace

VertexMemoryShard::VertexMemoryShard(VertexMemory& base, const ShardMap& map,
                                     std::size_t shard)
    : base_(&base), map_(&map), shard_(shard) {}

void VertexMemoryShard::check(NodeId v, const char* op) const {
  if (!owns(v)) ownership_error("VertexMemoryShard", op, v, shard_);
}

void VertexMemoryShard::set(NodeId v, std::span<const float> value,
                            double ts) {
  check(v, "set");
  base_->set(v, value, ts);
}

void VertexMemoryShard::reset() {
  for (NodeId v = 0; v < base_->num_nodes(); ++v)
    if (owns(v)) base_->clear_row(v);
}

VertexMailboxShard::VertexMailboxShard(VertexMailbox& base,
                                       const ShardMap& map, std::size_t shard)
    : base_(&base), map_(&map), shard_(shard) {}

void VertexMailboxShard::check(NodeId v, const char* op) const {
  if (!owns(v)) ownership_error("VertexMailboxShard", op, v, shard_);
}

void VertexMailboxShard::put(NodeId v, std::span<const float> raw, double ts) {
  check(v, "put");
  base_->put(v, raw, ts);
}

void VertexMailboxShard::reset() {
  for (NodeId v = 0; v < base_->num_nodes(); ++v)
    if (owns(v)) base_->clear_row(v);
}

NeighborTableShard::NeighborTableShard(NeighborTable& base,
                                       const ShardMap& map, std::size_t shard)
    : base_(&base), map_(&map), shard_(shard) {}

void NeighborTableShard::check(NodeId v, const char* op) const {
  if (!owns(v)) ownership_error("NeighborTableShard", op, v, shard_);
}

void NeighborTableShard::insert(NodeId v, NodeId neighbor, EdgeId eid,
                                double ts) {
  check(v, "insert");
  base_->insert(v, neighbor, eid, ts);
}

void NeighborTableShard::reset() {
  for (NodeId v = 0; v < base_->num_nodes(); ++v)
    if (owns(v)) base_->clear_row(v);
}

}  // namespace tgnn::graph
