// Persistent per-vertex state of a memory-based TGNN (§II, §IV-A):
//
//  * VertexMemory — the node-memory table {s_v}: one f_mem vector per vertex
//    plus the timestamp of its last update (needed for the Δt fed to the
//    time encoder when the memory is next refreshed).
//  * VertexMailbox — the cached raw messages {m_v}: written when an edge
//    touches v, consumed by the GRU updater at v's NEXT event. Storing the
//    *raw* concatenation [s_v || s_other || f_e] plus the mail timestamp
//    (rather than a time-encoded vector) lets the consumer pick its own time
//    encoder — this is what makes the LUT-encoder substitution (§III-C) a
//    drop-in change.
//
// Both tables live in "external memory" from the accelerator's point of
// view; their row sizes feed the DDR traffic model.
//
// Since the out-of-core PR both tables sit on a graph::VertexStore: with
// the default (zero) budget the store is a single flat allocation and
// behaves exactly like the old std::vector members — stable row pointers,
// no locks, no counters. With a byte budget the store keeps only the hot
// pages resident and spills the rest (see vertex_store.hpp for the pin /
// prefetch contract the engine follows in that regime). Record layout is
// [f64 timestamp][payload...] per row, so one spill round-trip moves the
// timestamp and the vector together and bit-exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/temporal_graph.hpp"
#include "graph/vertex_store.hpp"

namespace tgnn::graph {

class VertexMemory {
 public:
  VertexMemory(NodeId num_nodes, std::size_t dim,
               const VertexStoreOptions& store_opts = {});

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  [[nodiscard]] std::span<const float> get(NodeId v) const;
  void set(NodeId v, std::span<const float> value, double ts);

  /// Timestamp of the last memory update of v (0 before any update).
  [[nodiscard]] double last_update(NodeId v) const;

  void reset();
  /// Zero a single vertex's row (the per-shard reset primitive).
  void clear_row(NodeId v);

  [[nodiscard]] std::size_t row_bytes() const { return dim_ * sizeof(float); }
  /// Store-row stride for a given dim (timestamp + payload, 8-aligned);
  /// what a byte budget is actually spent on.
  [[nodiscard]] static std::size_t store_row_bytes(std::size_t dim) {
    return (sizeof(double) + dim * sizeof(float) + 7) & ~std::size_t{7};
  }

  // Out-of-core seam (all no-ops on an all-resident store).
  [[nodiscard]] bool out_of_core() const { return store_.out_of_core(); }
  void pin_rows(std::span<const NodeId> rows) { store_.pin_rows(rows); }
  void unpin_rows(std::span<const NodeId> rows) { store_.unpin_rows(rows); }
  void prefetch_rows(std::span<const NodeId> rows) {
    store_.prefetch_rows(rows);
  }
  [[nodiscard]] VertexStoreStats store_stats() const { return store_.stats(); }

 private:
  NodeId num_nodes_;
  std::size_t dim_;
  VertexStore store_;
};

class VertexMailbox {
 public:
  VertexMailbox(NodeId num_nodes, std::size_t raw_dim,
                const VertexStoreOptions& store_opts = {});

  [[nodiscard]] std::size_t raw_dim() const { return dim_; }
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  /// True once v has received at least one message.
  [[nodiscard]] bool has_mail(NodeId v) const;
  [[nodiscard]] std::span<const float> mail(NodeId v) const;
  [[nodiscard]] double mail_ts(NodeId v) const;

  /// Overwrite v's cached message ("most-recent" aggregator: the newest
  /// message simply replaces the old one).
  void put(NodeId v, std::span<const float> raw, double ts);

  void reset();
  /// Drop a single vertex's cached message (the per-shard reset
  /// primitive). Clears payload, timestamp AND the valid byte — a cleared
  /// row is indistinguishable from a never-mailed one.
  void clear_row(NodeId v);

  [[nodiscard]] std::size_t row_bytes() const {
    return dim_ * sizeof(float) + sizeof(float);  // payload + timestamp
  }
  [[nodiscard]] static std::size_t store_row_bytes(std::size_t raw_dim) {
    return (sizeof(double) + raw_dim * sizeof(float) + 1 + 7) &
           ~std::size_t{7};
  }

  // Out-of-core seam (all no-ops on an all-resident store).
  [[nodiscard]] bool out_of_core() const { return store_.out_of_core(); }
  void pin_rows(std::span<const NodeId> rows) { store_.pin_rows(rows); }
  void unpin_rows(std::span<const NodeId> rows) { store_.unpin_rows(rows); }
  void prefetch_rows(std::span<const NodeId> rows) {
    store_.prefetch_rows(rows);
  }
  [[nodiscard]] VertexStoreStats store_stats() const { return store_.stats(); }

 private:
  NodeId num_nodes_;
  std::size_t dim_;
  VertexStore store_;
};

}  // namespace tgnn::graph
