// Persistent per-vertex state of a memory-based TGNN (§II, §IV-A):
//
//  * VertexMemory — the node-memory table {s_v}: one f_mem vector per vertex
//    plus the timestamp of its last update (needed for the Δt fed to the
//    time encoder when the memory is next refreshed).
//  * VertexMailbox — the cached raw messages {m_v}: written when an edge
//    touches v, consumed by the GRU updater at v's NEXT event. Storing the
//    *raw* concatenation [s_v || s_other || f_e] plus the mail timestamp
//    (rather than a time-encoded vector) lets the consumer pick its own time
//    encoder — this is what makes the LUT-encoder substitution (§III-C) a
//    drop-in change.
//
// Both tables live in "external memory" from the accelerator's point of
// view; their row sizes feed the DDR traffic model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/temporal_graph.hpp"

namespace tgnn::graph {

class VertexMemory {
 public:
  VertexMemory(NodeId num_nodes, std::size_t dim);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  [[nodiscard]] std::span<const float> get(NodeId v) const;
  void set(NodeId v, std::span<const float> value, double ts);

  /// Timestamp of the last memory update of v (0 before any update).
  [[nodiscard]] double last_update(NodeId v) const { return ts_[v]; }

  void reset();
  /// Zero a single vertex's row (the per-shard reset primitive).
  void clear_row(NodeId v);

  [[nodiscard]] std::size_t row_bytes() const { return dim_ * sizeof(float); }

 private:
  NodeId num_nodes_;
  std::size_t dim_;
  std::vector<float> data_;
  std::vector<double> ts_;
};

class VertexMailbox {
 public:
  VertexMailbox(NodeId num_nodes, std::size_t raw_dim);

  [[nodiscard]] std::size_t raw_dim() const { return dim_; }
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  /// True once v has received at least one message.
  [[nodiscard]] bool has_mail(NodeId v) const { return valid_[v]; }
  [[nodiscard]] std::span<const float> mail(NodeId v) const;
  [[nodiscard]] double mail_ts(NodeId v) const { return ts_[v]; }

  /// Overwrite v's cached message ("most-recent" aggregator: the newest
  /// message simply replaces the old one).
  void put(NodeId v, std::span<const float> raw, double ts);

  void reset();
  /// Drop a single vertex's cached message (the per-shard reset primitive).
  void clear_row(NodeId v);

  [[nodiscard]] std::size_t row_bytes() const {
    return dim_ * sizeof(float) + sizeof(float);  // payload + timestamp
  }

 private:
  NodeId num_nodes_;
  std::size_t dim_;
  std::vector<float> data_;
  std::vector<double> ts_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace tgnn::graph
