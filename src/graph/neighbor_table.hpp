// Bounded FIFO neighbor table — the paper's FIFO-based hardware sampler
// (§I, §IV-A "Vertex Neighbor Table").
//
// Each vertex keeps exactly `mr` slots holding its most recent interactions;
// inserting into a full row evicts the oldest entry, which is exactly the
// behaviour of the on-chip FIFO the accelerator uses instead of a general
// temporal sampler. Reads return the row oldest -> newest so the attention
// layer sees timestamp-sorted neighbors (§III-A).
//
// Because evicted history is gone forever, the FIFO table can differ from
// the unbounded NeighborFinder when a node is asked for more neighbors than
// it interacted with recently; the equivalence (and divergence) conditions
// are pinned down in tests/graph/neighbor_table_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/neighbor_finder.hpp"

namespace tgnn::graph {

class NeighborTable {
 public:
  NeighborTable(NodeId num_nodes, std::size_t mr);

  [[nodiscard]] std::size_t capacity() const { return mr_; }
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  /// Append one interaction for vertex v (FIFO-evicts if full).
  void insert(NodeId v, NodeId neighbor, EdgeId eid, double ts);

  /// Record an edge for both endpoints (Alg. 1 lines 13-14).
  void insert_edge(const TemporalEdge& e);

  /// Current entries of v, oldest -> newest (up to mr of them).
  [[nodiscard]] std::vector<NeighborHit> row(NodeId v) const;

  /// Allocation-free variant: clears `out` and fills it with the row,
  /// reusing its capacity (the engine batch-workspace hot path).
  void row_into(NodeId v, std::vector<NeighborHit>& out) const;

  /// Number of valid entries for v.
  [[nodiscard]] std::size_t fill(NodeId v) const { return counts_[v]; }

  /// Empty a single vertex's FIFO row (the per-shard reset primitive).
  void clear_row(NodeId v);

  /// Bytes of one table row in the external-memory layout (for the DDR
  /// traffic model): mr * (node id + edge id + timestamp).
  [[nodiscard]] std::size_t row_bytes() const {
    return mr_ * (sizeof(NodeId) + sizeof(EdgeId) + sizeof(float));
  }

 private:
  struct Slot {
    NodeId node;
    EdgeId eid;
    double ts;
  };
  NodeId num_nodes_;
  std::size_t mr_;
  std::vector<Slot> slots_;          ///< num_nodes x mr ring buffers
  std::vector<std::uint32_t> head_;  ///< next write position per vertex
  std::vector<std::uint32_t> counts_;
};

}  // namespace tgnn::graph
