#include "graph/shard_map.hpp"

#include <stdexcept>

namespace tgnn::graph {

ShardMap::ShardMap(std::size_t num_shards) : num_shards_(num_shards) {
  if (num_shards == 0)
    throw std::invalid_argument("ShardMap: num_shards must be >= 1");
}

ShardLockTable::ShardLockTable(std::size_t num_shards)
    : map_(num_shards),
      mu_(std::make_unique<util::SharedMutex[]>(num_shards)) {}

}  // namespace tgnn::graph
