#include "graph/vertex_store.hpp"

#include <cstring>
#include <stdexcept>

#include "util/check.hpp"
#include "util/fault_injector.hpp"

namespace tgnn::graph {

namespace {
constexpr std::size_t kMinFrames = 4;
/// Bounded retry budget for transient spill-I/O faults. Permanent faults
/// and real SpillIoErrors are never retried here — they propagate to the
/// caller as the typed failure.
constexpr int kSpillRetries = 3;

std::size_t round_up8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

template <class F>
void retry_spill(F&& op, VertexStoreStats& stats) {
  for (int attempt = 0;; ++attempt) {
    try {
      op();
      return;
    } catch (const util::InjectedFault& e) {
      if (!e.transient() || attempt >= kSpillRetries) throw;
      ++stats.io_retries;
    }
  }
}
}  // namespace

VertexStore::VertexStore(std::size_t num_rows, std::size_t row_bytes,
                         VertexStoreOptions opts)
    : num_rows_(num_rows), row_bytes_(round_up8(row_bytes)) {
  if (row_bytes == 0) throw std::invalid_argument("VertexStore: row_bytes 0");
  const std::size_t total = num_rows_ * row_bytes_;
  resident_ = opts.budget_bytes == 0 || opts.budget_bytes >= total ||
              num_rows_ == 0;
  if (resident_) {
    flat_.assign(total, std::byte{0});
    return;
  }
  rows_per_page_ = opts.rows_per_page == 0 ? 64 : opts.rows_per_page;
  if (rows_per_page_ > num_rows_) rows_per_page_ = num_rows_;
  num_pages_ = (num_rows_ + rows_per_page_ - 1) / rows_per_page_;
  page_bytes_ = rows_per_page_ * row_bytes_;
  budget_frames_ = opts.budget_bytes / page_bytes_;
  if (budget_frames_ < kMinFrames) budget_frames_ = kMinFrames;
  if (budget_frames_ >= num_pages_) {
    // The floor pushed the cache to full coverage: degenerate to resident.
    resident_ = true;
    flat_.assign(total, std::byte{0});
    return;
  }
  writeback_batch_ = opts.writeback_batch == 0 ? 1 : opts.writeback_batch;
  // Nothing else can hold the store yet, but taking the lock keeps every
  // guarded-member write inside the capability the analysis checks.
  util::MutexLock lk(mu_);
  for (std::size_t i = 0; i < budget_frames_; ++i) {
    frames_.emplace_back();
    frames_.back().data =
        std::make_unique<std::byte[]>(page_bytes_);
  }
  allocated_frames_ = budget_frames_;
  frame_of_.assign(num_pages_, -1);
  page_frame_ = std::vector<std::atomic<Frame*>>(num_pages_);
  for (auto& p : page_frame_) p.store(nullptr, std::memory_order_relaxed);
  on_disk_.assign(num_pages_, 0);
  file_ = std::make_unique<PagedFile>(page_bytes_, num_pages_,
                                      std::move(opts.spill_dir));
}

const std::byte* VertexStore::row(std::size_t r) const {
  TGNN_DCHECK(r < num_rows_, "row index out of range");
  if (resident_) return flat_.data() + r * row_bytes_;
  const std::size_t page = r / rows_per_page_;
  const std::size_t offset = (r - page * rows_per_page_) * row_bytes_;
  const Frame* fr = page_frame_[page].load(std::memory_order_acquire);
  if (fr != nullptr) return fr->data.get() + offset;
  // Unpinned access: fault the page in (single-threaded contract).
  return const_cast<VertexStore*>(this)->fault_page(page)->data.get() + offset;
}

std::byte* VertexStore::row_mut(std::size_t r) {
  TGNN_DCHECK(r < num_rows_, "row index out of range");
  if (resident_) return flat_.data() + r * row_bytes_;
  const std::size_t page = r / rows_per_page_;
  Frame* frp = page_frame_[page].load(std::memory_order_acquire);
  if (frp == nullptr) frp = fault_page(page);
  Frame& fr = *frp;
  fr.dirty.store(true, std::memory_order_relaxed);
  // Re-dirtying a page whose write-back is still queued supersedes the
  // queued version: invalidate the stale entry (§IV-B — only the newest
  // version spills). The last unpin re-queues it at the tail, which is
  // also what restores chronological commit order for the new version.
  if (fr.queued_seq.exchange(0, std::memory_order_relaxed) != 0)
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  return fr.data.get() + (r - page * rows_per_page_) * row_bytes_;
}

VertexStore::Frame* VertexStore::fault_page(std::size_t page) {
  util::MutexLock lk(mu_);
  return &frames_[frame_for(page, /*prefetch=*/false)];
}

std::size_t VertexStore::frame_for(std::size_t page, bool prefetch) {
  const std::int32_t existing = frame_of_[page];
  if (existing >= 0) {
    frames_[static_cast<std::size_t>(existing)].ref = true;
    return static_cast<std::size_t>(existing);
  }
  const std::size_t f = find_victim_frame(/*allow_overcommit=*/!prefetch);
  Frame& fr = frames_[f];
  if (fr.page >= 0) evict_frame(f);
  fr.dirty.store(false, std::memory_order_relaxed);
  fr.queued_seq.store(0, std::memory_order_relaxed);
  // Fill BEFORE claiming the page in the tables: a spill-read failure
  // leaves the frame free and every table consistent (the typed error
  // propagates as a clean batch failure, not a corrupted cache).
  if (on_disk_[page] != 0) {
    retry_spill([&] { file_->read_page(page, fr.data.get()); }, stats_);
    ++stats_.spill_page_reads;
  } else {
    std::memset(fr.data.get(), 0, page_bytes_);
  }
  fr.page = static_cast<std::int64_t>(page);
  fr.ref = true;
  frame_of_[page] = static_cast<std::int32_t>(f);
  // Publish AFTER the content is in place: a pinned-page reader that
  // loads this pointer sees a fully-faulted frame.
  page_frame_[page].store(&fr, std::memory_order_release);
  return f;
}

std::size_t VertexStore::find_victim_frame(bool allow_overcommit) {
  // Retired slots first: re-arming one is cheaper than evicting and keeps
  // the pool at the budget.
  if (!free_frames_.empty()) {
    const std::size_t f = free_frames_.back();
    free_frames_.pop_back();
    frames_[f].data = std::make_unique<std::byte[]>(page_bytes_);
    ++allocated_frames_;
    return f;
  }
  // Two full CLOCK sweeps: the first pass clears reference bits, the
  // second finds any unpinned frame. Pinned frames are exempt.
  const std::size_t n = frames_.size();
  for (std::size_t sweep = 0; sweep < 2 * n; ++sweep) {
    const std::size_t f = hand_;
    hand_ = (hand_ + 1) % n;
    Frame& fr = frames_[f];
    if (!fr.data) continue;    // retired slot (free list is empty ≠ none)
    if (fr.page < 0) return f;  // free frame
    if (fr.pins > 0) continue;
    if (fr.ref) {
      fr.ref = false;
      continue;
    }
    return f;
  }
  if (!allow_overcommit)
    throw std::logic_error("VertexStore: no evictable frame for prefetch");
  // Every frame pinned: the budget is smaller than one batch's footprint.
  // Grow past the budget rather than deadlock (trim_overcommit reclaims
  // the excess once pins drop); the counter makes the misconfiguration
  // visible in ServingStats.
  frames_.emplace_back();
  frames_.back().data = std::make_unique<std::byte[]>(page_bytes_);
  ++allocated_frames_;
  ++stats_.overcommit_frames;
  return frames_.size() - 1;
}

void VertexStore::evict_frame(std::size_t f) {
  Frame& fr = frames_[f];
  TGNN_CHECK(fr.pins == 0, "evicting a pinned frame");
  if (fr.dirty.load(std::memory_order_relaxed)) {
    try {
      write_back(f);
    } catch (...) {
      // Eviction must not lose the only copy: the frame stays resident
      // and dirty, the typed error propagates to the faulting caller.
      ++stats_.io_failures;
      throw;
    }
  }
  frame_of_[static_cast<std::size_t>(fr.page)] = -1;
  page_frame_[static_cast<std::size_t>(fr.page)].store(
      nullptr, std::memory_order_release);
  fr.page = -1;
  ++stats_.evictions;
}

void VertexStore::write_back(std::size_t f) {
  Frame& fr = frames_[f];
  retry_spill(
      [&] { file_->write_page(static_cast<std::size_t>(fr.page),
                              fr.data.get()); },
      stats_);
  on_disk_[static_cast<std::size_t>(fr.page)] = 1;
  ++stats_.spill_page_writes;
  fr.dirty.store(false, std::memory_order_relaxed);
  fr.queued_seq.store(0, std::memory_order_relaxed);
}

void VertexStore::flush_queue(std::size_t max_entries) {
  std::size_t done = 0;
  while (!wb_queue_.empty() && done < max_entries) {
    const WbEntry e = wb_queue_.front();
    wb_queue_.pop_front();
    ++done;
    const std::int32_t f = frame_of_[e.page];
    // Stale entry: the page was evicted (flushed on the way out) or
    // re-dirtied (row_mut zeroed queued_seq; a fresher entry follows).
    if (f < 0) continue;
    Frame& fr = frames_[static_cast<std::size_t>(f)];
    if (fr.queued_seq.load(std::memory_order_relaxed) != e.seq) continue;
    if (fr.pins > 0) continue;  // re-pinned: its unpin re-queues
    try {
      write_back(static_cast<std::size_t>(f));
    } catch (const std::exception&) {
      // Permanent write-back failure: the entry goes back at the head
      // (its seq still matches the frame's queued_seq, and it is older
      // than everything behind it) and this drain stops. The page stays
      // resident and dirty — nothing is lost, the next flush retries.
      ++stats_.io_failures;
      wb_queue_.push_front(e);
      return;
    }
  }
}

void VertexStore::pin_rows(std::span<const NodeId> rows) {
  if (resident_) return;
  util::MutexLock lk(mu_);
  std::size_t done = 0;
  try {
    for (; done < rows.size(); ++done) {
      const std::size_t page =
          static_cast<std::size_t>(rows[done]) / rows_per_page_;
      if (frame_of_[page] >= 0)
        ++stats_.hits;
      else
        ++stats_.misses;
      Frame& fr = frames_[frame_for(page, /*prefetch=*/false)];
      ++fr.pins;
      ++total_pins_;
    }
  } catch (...) {
    // Strong guarantee: a spill fault mid-batch rolls the already-taken
    // pins back, so the caller's abort path never sees a half-pinned
    // batch (and no pin ever leaks into the eviction accounting).
    for (std::size_t i = 0; i < done; ++i) {
      const std::size_t page =
          static_cast<std::size_t>(rows[i]) / rows_per_page_;
      Frame& fr = frames_[static_cast<std::size_t>(frame_of_[page])];
      --fr.pins;
      --total_pins_;
    }
    throw;
  }
}

void VertexStore::unpin_rows(std::span<const NodeId> rows) {
  if (resident_) return;
  util::MutexLock lk(mu_);
  for (const NodeId r : rows) {
    const std::size_t page = static_cast<std::size_t>(r) / rows_per_page_;
    const std::int32_t f = frame_of_[page];
    TGNN_CHECK(f >= 0, "unpin of a page with no resident frame");
    Frame& fr = frames_[static_cast<std::size_t>(f)];
    TGNN_CHECK(fr.pins > 0, "unpin of an unpinned page");
    --fr.pins;
    TGNN_DCHECK(total_pins_ > 0, "outstanding-pin total underflow");
    --total_pins_;
    // Last pin gone on a dirty page with no pending entry: queue its
    // write-back. Batch completion order == chronological commit order.
    if (fr.pins == 0 && fr.dirty.load(std::memory_order_relaxed) &&
        fr.queued_seq.load(std::memory_order_relaxed) == 0) {
      fr.queued_seq.store(next_seq_, std::memory_order_relaxed);
      wb_queue_.push_back({page, next_seq_});
      ++next_seq_;
    }
  }
  // Drain one batch worth, oldest first, once the ring fills — a bounded
  // drip rather than a full drain, so no single unpin call absorbs a
  // flush storm and younger entries get their chance to be invalidated.
  if (wb_queue_.size() >= writeback_batch_) flush_queue(writeback_batch_);
  trim_overcommit();
#ifdef TGNN_CHECKED
  check_invariants_locked();
#endif
}

void VertexStore::trim_overcommit() {
  // Shrink the pool back to the budget once pins allow: overcommit keeps a
  // too-small budget live through one batch, it must not silently become a
  // bigger budget. Victims are chosen by the same CLOCK policy as faults
  // (dirty pages write back on the way out); the emptied slot's buffer is
  // released and the slot parked on the free list.
  if (allocated_frames_ <= budget_frames_) return;
  const std::size_t n = frames_.size();
  for (std::size_t sweep = 0;
       sweep < 2 * n && allocated_frames_ > budget_frames_; ++sweep) {
    const std::size_t f = hand_;
    hand_ = (hand_ + 1) % n;
    Frame& fr = frames_[f];
    if (!fr.data || fr.pins > 0) continue;
    if (fr.page >= 0) {
      if (fr.ref) {
        fr.ref = false;
        continue;
      }
      evict_frame(f);
    }
    fr.data.reset();
    free_frames_.push_back(f);
    --allocated_frames_;
  }
}

void VertexStore::prefetch_rows(std::span<const NodeId> rows) {
  if (resident_) return;
  util::MutexLock lk(mu_);
  for (const NodeId r : rows) {
    const std::size_t page = static_cast<std::size_t>(r) / rows_per_page_;
    if (frame_of_[page] >= 0) {
      ++stats_.prefetch_hits;
      frames_[static_cast<std::size_t>(frame_of_[page])].ref = true;
      continue;
    }
    try {
      frame_for(page, /*prefetch=*/true);
      ++stats_.prefetch_loads;
    } catch (const std::logic_error&) {
      return;  // everything pinned right now; prefetch is best-effort
    } catch (const util::InjectedFault&) {
      return;  // spill fault on an advisory load: give up, pin will retry
    } catch (const SpillIoError&) {
      return;
    }
  }
}

void VertexStore::reset() {
  if (resident_) {
    std::memset(flat_.data(), 0, flat_.size());
    return;
  }
  util::MutexLock lk(mu_);
  for (auto& fr : frames_) {
    if (fr.pins != 0)
      throw std::logic_error("VertexStore::reset with pins held");
    fr.page = -1;
    fr.ref = false;
    fr.dirty.store(false, std::memory_order_relaxed);
    fr.queued_seq.store(0, std::memory_order_relaxed);
  }
  TGNN_DCHECK(total_pins_ == 0, "reset with outstanding pins");
  std::fill(frame_of_.begin(), frame_of_.end(), -1);
  for (auto& p : page_frame_) p.store(nullptr, std::memory_order_relaxed);
  std::fill(on_disk_.begin(), on_disk_.end(), 0);
  wb_queue_.clear();
  hand_ = 0;
  file_->reset();
#ifdef TGNN_CHECKED
  check_invariants_locked();
#endif
}

VertexStoreStats VertexStore::stats() const {
  if (resident_) return {};
  util::MutexLock lk(mu_);
  VertexStoreStats s = stats_;
  s.writeback_invalidations =
      invalidations_.load(std::memory_order_relaxed);
  return s;
}

void VertexStore::check_invariants() const {
  if (resident_) return;
  util::MutexLock lk(mu_);
  check_invariants_locked();
}

void VertexStore::check_invariants_locked() const {
  // The §IV-B cache-state contract, executable. Everything here is
  // redundant with how the store updates its tables — which is the point:
  // a single forgotten transition (or a forged value) breaks one of the
  // redundancies.
  const std::size_t nf = frames_.size();
  TGNN_CHECK(nf == 0 || hand_ < nf, "CLOCK hand out of range");
  TGNN_CHECK(frame_of_.size() == num_pages_, "page->frame table size");
  TGNN_CHECK(on_disk_.size() == num_pages_, "spill bitmap size");
  TGNN_CHECK(page_frame_.size() == num_pages_, "published-frame table size");

  // Frame side: every resident frame agrees with the page tables; pins and
  // buffers add up to their redundant totals.
  std::uint64_t pins = 0;
  std::size_t with_buffer = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    const Frame& fr = frames_[f];
    pins += fr.pins;
    if (fr.data) ++with_buffer;
    if (fr.page >= 0) {
      TGNN_CHECK(fr.data != nullptr, "resident page in a retired frame");
      const auto page = static_cast<std::size_t>(fr.page);
      TGNN_CHECK(page < num_pages_, "frame holds an out-of-range page");
      TGNN_CHECK(frame_of_[page] == static_cast<std::int32_t>(f),
                 "frame and page tables disagree");
      TGNN_CHECK(page_frame_[page].load(std::memory_order_acquire) == &fr,
                 "published frame pointer disagrees with the page table");
    } else {
      TGNN_CHECK(fr.pins == 0, "pinned frame without a page");
    }
  }
  TGNN_CHECK(pins == total_pins_,
             "per-frame pin counts disagree with the outstanding-pin total");
  TGNN_CHECK(with_buffer == allocated_frames_,
             "buffer count disagrees with allocated_frames_");
  TGNN_CHECK(nf - with_buffer == free_frames_.size(),
             "retired frames not accounted on the free list");
  for (const std::size_t f : free_frames_) {
    TGNN_CHECK(f < nf, "free-list index out of range");
    TGNN_CHECK(!frames_[f].data, "free-listed frame still holds a buffer");
    TGNN_CHECK(frames_[f].page < 0, "free-listed frame still maps a page");
  }

  // Page side: unmapped pages must not be published.
  for (std::size_t p = 0; p < num_pages_; ++p) {
    const std::int32_t f = frame_of_[p];
    TGNN_CHECK(f >= -1 && f < static_cast<std::int32_t>(nf),
               "page maps to an out-of-range frame");
    if (f < 0)
      TGNN_CHECK(page_frame_[p].load(std::memory_order_acquire) == nullptr,
                 "evicted page still published");
  }

  // Write-back queue chronology: sequence numbers strictly increase toward
  // next_seq_, and a live entry's frame is still dirty. A frame whose
  // queued_seq moved past an entry was legitimately re-dirtied (0) or
  // re-queued (> seq) — it can never sit behind one.
  std::uint64_t prev = 0;
  for (const WbEntry& e : wb_queue_) {
    TGNN_CHECK(e.seq > prev, "write-back queue out of chronological order");
    prev = e.seq;
    TGNN_CHECK(e.seq < next_seq_, "queued write-back from the future");
    TGNN_CHECK(e.page < num_pages_, "queued write-back of an invalid page");
    const std::int32_t f = frame_of_[e.page];
    if (f >= 0) {
      const Frame& fr = frames_[static_cast<std::size_t>(f)];
      const std::uint64_t q = fr.queued_seq.load(std::memory_order_relaxed);
      if (q == e.seq)
        TGNN_CHECK(fr.dirty.load(std::memory_order_relaxed),
                   "queued write-back of a clean page");
      else
        TGNN_CHECK(q == 0 || q > e.seq,
                   "frame's queued_seq behind a live queue entry");
    }
  }

  // Spill-offset consistency: the file's geometry is the store's, so every
  // on-disk page maps to a valid fixed offset; a file that was never
  // opened cannot have spilled pages.
  TGNN_CHECK(file_ != nullptr, "out-of-core store without a spill file");
  TGNN_CHECK(file_->page_bytes() == page_bytes_, "spill-file page size");
  TGNN_CHECK(file_->num_pages() == num_pages_, "spill-file page count");
  bool any_on_disk = false;
  for (std::size_t p = 0; p < num_pages_; ++p)
    any_on_disk = any_on_disk || on_disk_[p] != 0;
  TGNN_CHECK(!any_on_disk || file_->open(),
             "pages marked spilled but the spill file was never created");
}

}  // namespace tgnn::graph
