// The unified runtime seam: one Backend interface in front of every
// execution path the paper compares — the reference CPU engine, the OpenMP
// multi-threaded CPU baseline, the analytic GPU model, APAN, and the
// cycle-simulated FPGA accelerator.
//
// A Backend owns its persistent vertex state (memory / mailbox / neighbor
// table) and its reusable batch workspace; backends built over the same
// model+dataset are fully independent streams. All of them speak the same
// contract:
//
//   process_batch(range, extras) -> BatchOutput{functional, latency, parts}
//
// where `functional` is always the real numerics (for modelled platforms the
// timing is a model but the embeddings are exact — the same split the
// paper's FPGA simulator makes), and `latency_s` is measured wall time or
// the platform model's estimate, flagged by `modelled_timing`.
//
// Backends are constructed through the string-keyed factory `make_backend`
// ("cpu" | "cpu-mt" | "sharded-cpu" | "gpu-sim" | "apan" | "fpga"); the
// engine-backed CPU keys additionally take a precision suffix
// ("cpu:int8" | "cpu-mt:bf16" | "sharded-cpu:int8" | ...":fp32") selecting
// the quantized inference path. See DESIGN.md for the registry and for how
// to add a new backend.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/gpu_sim.hpp"
#include "data/dataset.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::baselines {
class Apan;
}

namespace tgnn::runtime {

/// Functional result shared by every backend (APAN converts its own).
using Functional = core::InferenceEngine::BatchResult;

struct BatchOutput {
  Functional functional;
  double latency_s = 0.0;  ///< measured wall time or platform-model estimate
  core::PartTimes parts;   ///< sample/memory/GNN/update split where reported
  bool modelled_timing = false;  ///< true when latency_s comes from a model
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Process one chronological batch of the edge stream; `extra_nodes` are
  /// embedded alongside it without mutating their state.
  virtual BatchOutput process_batch(
      const graph::BatchRange& r,
      std::span<const graph::NodeId> extra_nodes = {}) = 0;

  /// Fast-forward persistent state through [range] without producing
  /// embeddings, and size the batch workspace for steady-state serving.
  virtual void warmup(const graph::BatchRange& range) = 0;

  /// Drop all persistent state (memory, mailboxes, neighbor tables).
  virtual void reset() = 0;

  /// Registry key this backend was built under ("cpu", "fpga", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// Human-readable platform description for bench banners and tables.
  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual const data::Dataset& dataset() const = 0;

  /// Out-of-core vertex-store counters (hits/misses/evictions/spill
  /// traffic). All-zero on a backend running all-resident — the default
  /// implementation, overridden by the engine-backed CPU keys.
  [[nodiscard]] virtual graph::VertexStoreStats store_stats() const {
    return {};
  }

  /// Switch the numeric mode of the hot path at runtime — the serving
  /// engine's graceful-degradation seam (fp32 -> bf16 -> int8 under
  /// sustained overload, and back up when pressure clears). Must only be
  /// called with no batch in flight. Returns false when the backend has no
  /// runtime-switchable precision (the modelled platforms) — the engine
  /// then disables degradation rather than erroring.
  virtual bool set_precision(kernels::Precision p) {
    (void)p;
    return false;
  }
  /// Numeric mode the hot path currently runs in (kFp32 for backends
  /// without a switchable precision).
  [[nodiscard]] virtual kernels::Precision precision() const {
    return kernels::Precision::kFp32;
  }

  /// The engine's mutable per-vertex state, for checkpoint/restore through
  /// core::save_state / load_state. Null on modelled platforms that keep
  /// no restorable state of their own (apan); the engine-backed keys and
  /// simulators expose theirs.
  [[nodiscard]] virtual core::RuntimeState* runtime_state() { return nullptr; }
};

/// A backend that can execute several batches CONCURRENTLY over one shared
/// vertex state, provided the batches' vertex footprints are disjoint — the
/// contract the multi-worker ServingEngine schedules against ("sharded-cpu"
/// implements it; see DESIGN.md "The shard layer").
///
/// The caller (one scheduler thread) guarantees that two batches in flight
/// on different lanes never overlap in the vertices they WRITE (their edge
/// endpoints); the backend in turn guarantees that the remaining shared
/// access — reading a sampled neighbor's memory row — is race-free (shard
/// locks). Per-vertex state writes therefore stay chronological: batches
/// touching the same vertex are serialized in dispatch (= stream) order.
class ConcurrentBackend : public Backend {
 public:
  /// Number of independent execution lanes (each with its own workspace).
  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// process_batch, on a specific lane. Distinct lanes may run in parallel
  /// from different threads; the same lane must never run twice at once.
  virtual BatchOutput process_batch_on(
      std::size_t lane, const graph::BatchRange& r,
      std::span<const graph::NodeId> extra_nodes = {}) = 0;

  /// Vertices the batch will READ beyond its own endpoints: the sampled
  /// temporal neighbors of every endpoint, from current state. Only safe to
  /// call while no in-flight batch writes r's endpoints (their neighbor
  /// rows are then quiescent) — the deterministic serving mode's exact-
  /// footprint query.
  virtual void read_footprint(const graph::BatchRange& r,
                              std::vector<graph::NodeId>& out) const = 0;
};

/// A backend whose engine exposes the staged pipeline (core::Stage): the
/// serving layer can run stage k of batch i concurrently with stage k-1 of
/// batch i+1 — the software port of the paper's hardware dataflow, where
/// the memory-update unit, embedding unit, and decoder overlap consecutive
/// event batches across bounded FIFOs.
///
/// A slot is one in-flight batch's StageContext. The caller (one pipelined
/// ServingEngine) drives each slot through begin_batch -> run_stage(each
/// Stage, in order) -> finish_batch, and guarantees:
///   * a slot is driven by one thread at a time (handoffs between stage
///     workers are synchronized),
///   * in-flight batches' WRITE footprints (edge endpoints) are pairwise
///     disjoint, and — unless race_free_reads() — their READ footprints
///     (read_footprint()) never overlap an in-flight batch's writes.
/// Under that contract, concurrent run_stage calls on distinct slots are
/// data-race-free and per-vertex state writes stay chronological.
///
/// Implemented by "cpu", "cpu-mt" (read-tracked admission), and
/// "sharded-cpu" (whose shard locks make relaxed reads race-free — its
/// lanes compose with pipelining by mapping slots onto lanes).
class StagedBackend {
 public:
  virtual ~StagedBackend() = default;

  /// (Re)create `slots` pipeline contexts, each workspace-reserved for
  /// batches of up to `max_batch_edges` edges. Called once before any
  /// staged execution; discards previous contexts.
  virtual void prepare_pipeline(std::size_t slots,
                                std::size_t max_batch_edges) = 0;
  [[nodiscard]] virtual std::size_t pipeline_slots() const = 0;

  /// Bind batch `r` to `slot` (vertex collection; reads only the immutable
  /// edge stream, so this may run before hazard admission).
  virtual void begin_batch(std::size_t slot, const graph::BatchRange& r) = 0;
  /// Execute one pipeline stage of the batch bound to `slot`.
  virtual void run_stage(core::Stage s, std::size_t slot) = 0;
  /// Release the slot's per-batch result; the slot is then reusable.
  virtual void finish_batch(std::size_t slot) = 0;
  /// Abandon the slot's batch after a faulted stage: release its pin
  /// window and clear the context. Legal at any point before kDecode has
  /// run — stages 0..2 write only the slot's context, so an aborted batch
  /// leaves per-vertex state untouched (no partial commit, chronology
  /// preserved). The slot is then reusable.
  virtual void abort_batch(std::size_t slot) = 0;

  /// Vertices the batch will READ beyond its own endpoints (the sampled
  /// temporal neighbors of every endpoint, from current state). Only safe
  /// to call while no in-flight batch writes r's endpoints.
  virtual void read_footprint(const graph::BatchRange& r,
                              std::vector<graph::NodeId>& out) const = 0;

  /// True when cross-batch neighbor-memory reads are internally
  /// synchronized (shard locks): the scheduler may then overlap a batch
  /// with writers of rows it merely reads (relaxed admission). When false,
  /// the scheduler must track read footprints regardless of the requested
  /// conflict policy — which incidentally makes execution deterministic.
  [[nodiscard]] virtual bool race_free_reads() const { return false; }

  /// Hint that `nodes`' vertex-state pages will be touched by a batch that
  /// just passed admission: an out-of-core store faults them in ahead of
  /// the stage that reads them (the pipelined scheduler calls this with
  /// the write + read footprints it already computed). Purely advisory —
  /// default no-op, and a no-op on all-resident state.
  virtual void prefetch_rows(std::span<const graph::NodeId> nodes) {
    (void)nodes;
  }
};

/// Per-key construction knobs. `model` and `ds` passed to make_backend must
/// outlive the backend; so must `apan` when set.
struct BackendOptions {
  int threads = 0;  ///< "cpu-mt" worker count / "sharded-cpu" lane count;
                    ///< 0 = hardware concurrency
  std::size_t shards = 16;  ///< "sharded-cpu": vertex-state shard count
  std::string fpga_device = "u200";       ///< "fpga": "u200" | "zcu104"
  baselines::GpuSpec gpu;                 ///< "gpu-sim" platform (default Titan Xp)
  baselines::Apan* apan = nullptr;        ///< "apan": wrap this trained model
  std::uint64_t seed = 5;                 ///< "apan": seed when self-built
  std::size_t warmup_batch = 500;         ///< fast-forward batch size
  std::size_t max_batch_hint = 1024;      ///< workspace pre-sizing at warmup

  /// Numeric mode of the CPU execution backends' hot path. kFp32 defers to
  /// ModelConfig::inference_precision; a ":int8" / ":bf16" / ":fp32" key
  /// suffix ("cpu:int8") overrides both. Only the engine-backed keys
  /// (cpu | cpu-mt | sharded-cpu) accept a non-fp32 mode — the modelled
  /// platforms (gpu-sim, fpga, apan) reject the suffix.
  kernels::Precision precision = kernels::Precision::kFp32;

  /// Resident vertex-state budget in bytes for the engine-backed CPU keys
  /// (cpu | cpu-mt | sharded-cpu): 0 = all-resident (the default, exactly
  /// the pre-out-of-core behavior); nonzero spills cold memory/mailbox
  /// pages through graph::VertexStore. Also settable per key via a
  /// ":mem=<size>" suffix — "cpu:mem=64m", "sharded-cpu:int8:mem=10%"
  /// (bytes with optional k/m/g binary multiplier, or a percentage of
  /// RuntimeState::state_bytes). The modelled platforms reject an
  /// explicitly requested budget just like a precision suffix.
  std::size_t memory_budget = 0;

  BackendOptions();
};

/// Parse a "--memory_budget" / ":mem=" value: "0" = all-resident, plain
/// bytes, "64k" / "512m" / "2g" binary multiples, or "50%" of
/// `total_state_bytes`. Throws std::invalid_argument on malformed input
/// (including non-finite or size_t-overflowing values — "1e300g" and "nan"
/// are rejected, never silently truncated).
std::size_t parse_memory_budget(const std::string& spec,
                                std::size_t total_state_bytes);

/// A registry key split into its parts: "sharded-cpu:int8:mem=10%" ->
/// base "sharded-cpu", precision int8 (requested), memory budget resolved
/// against `total_state_bytes`, and the normalized display name ("cpu:fp32"
/// -> "cpu"). Pure string/number work — no model or dataset involved —
/// which is what makes it independently testable (and fuzzable).
struct ResolvedBackendKey {
  std::string base;
  std::string display;
  kernels::Precision precision = kernels::Precision::kFp32;
  bool precision_requested = false;  ///< suffix or options asked for it
  std::size_t memory_budget = 0;
  bool mem_requested = false;  ///< a mem= suffix was present
};

/// Split the ":"-suffixed registry key. `default_precision` is the
/// starting point (BackendOptions::precision, itself possibly overridden
/// by ModelConfig downstream); `total_state_bytes` anchors percentage
/// budgets. Throws std::invalid_argument on unknown suffixes or malformed
/// budgets. Does NOT validate the base against the registry — make_backend
/// does that with the full registry list in the message.
ResolvedBackendKey resolve_backend_key(const std::string& key,
                                       kernels::Precision default_precision,
                                       std::size_t total_state_bytes);

/// Build a backend by registry key. Throws std::invalid_argument for an
/// unknown key (the message lists the registry).
std::unique_ptr<Backend> make_backend(const std::string& key,
                                      const core::TgnModel& model,
                                      const data::Dataset& ds,
                                      const BackendOptions& opts = {});

/// Every key make_backend accepts, in registration order.
const std::vector<std::string>& backend_keys();

}  // namespace tgnn::runtime
