// The unified runtime seam: one Backend interface in front of every
// execution path the paper compares — the reference CPU engine, the OpenMP
// multi-threaded CPU baseline, the analytic GPU model, APAN, and the
// cycle-simulated FPGA accelerator.
//
// A Backend owns its persistent vertex state (memory / mailbox / neighbor
// table) and its reusable batch workspace; backends built over the same
// model+dataset are fully independent streams. All of them speak the same
// contract:
//
//   process_batch(range, extras) -> BatchOutput{functional, latency, parts}
//
// where `functional` is always the real numerics (for modelled platforms the
// timing is a model but the embeddings are exact — the same split the
// paper's FPGA simulator makes), and `latency_s` is measured wall time or
// the platform model's estimate, flagged by `modelled_timing`.
//
// Backends are constructed through the string-keyed factory `make_backend`
// ("cpu" | "cpu-mt" | "sharded-cpu" | "gpu-sim" | "apan" | "fpga"); see
// DESIGN.md for the registry and for how to add a new backend.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/gpu_sim.hpp"
#include "data/dataset.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::baselines {
class Apan;
}

namespace tgnn::runtime {

/// Functional result shared by every backend (APAN converts its own).
using Functional = core::InferenceEngine::BatchResult;

struct BatchOutput {
  Functional functional;
  double latency_s = 0.0;  ///< measured wall time or platform-model estimate
  core::PartTimes parts;   ///< sample/memory/GNN/update split where reported
  bool modelled_timing = false;  ///< true when latency_s comes from a model
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Process one chronological batch of the edge stream; `extra_nodes` are
  /// embedded alongside it without mutating their state.
  virtual BatchOutput process_batch(
      const graph::BatchRange& r,
      std::span<const graph::NodeId> extra_nodes = {}) = 0;

  /// Fast-forward persistent state through [range] without producing
  /// embeddings, and size the batch workspace for steady-state serving.
  virtual void warmup(const graph::BatchRange& range) = 0;

  /// Drop all persistent state (memory, mailboxes, neighbor tables).
  virtual void reset() = 0;

  /// Registry key this backend was built under ("cpu", "fpga", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// Human-readable platform description for bench banners and tables.
  [[nodiscard]] virtual std::string describe() const = 0;
  [[nodiscard]] virtual const data::Dataset& dataset() const = 0;
};

/// A backend that can execute several batches CONCURRENTLY over one shared
/// vertex state, provided the batches' vertex footprints are disjoint — the
/// contract the multi-worker ServingEngine schedules against ("sharded-cpu"
/// implements it; see DESIGN.md "The shard layer").
///
/// The caller (one scheduler thread) guarantees that two batches in flight
/// on different lanes never overlap in the vertices they WRITE (their edge
/// endpoints); the backend in turn guarantees that the remaining shared
/// access — reading a sampled neighbor's memory row — is race-free (shard
/// locks). Per-vertex state writes therefore stay chronological: batches
/// touching the same vertex are serialized in dispatch (= stream) order.
class ConcurrentBackend : public Backend {
 public:
  /// Number of independent execution lanes (each with its own workspace).
  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// process_batch, on a specific lane. Distinct lanes may run in parallel
  /// from different threads; the same lane must never run twice at once.
  virtual BatchOutput process_batch_on(
      std::size_t lane, const graph::BatchRange& r,
      std::span<const graph::NodeId> extra_nodes = {}) = 0;

  /// Vertices the batch will READ beyond its own endpoints: the sampled
  /// temporal neighbors of every endpoint, from current state. Only safe to
  /// call while no in-flight batch writes r's endpoints (their neighbor
  /// rows are then quiescent) — the deterministic serving mode's exact-
  /// footprint query.
  virtual void read_footprint(const graph::BatchRange& r,
                              std::vector<graph::NodeId>& out) const = 0;
};

/// Per-key construction knobs. `model` and `ds` passed to make_backend must
/// outlive the backend; so must `apan` when set.
struct BackendOptions {
  int threads = 0;  ///< "cpu-mt" worker count / "sharded-cpu" lane count;
                    ///< 0 = hardware concurrency
  std::size_t shards = 16;  ///< "sharded-cpu": vertex-state shard count
  std::string fpga_device = "u200";       ///< "fpga": "u200" | "zcu104"
  baselines::GpuSpec gpu;                 ///< "gpu-sim" platform (default Titan Xp)
  baselines::Apan* apan = nullptr;        ///< "apan": wrap this trained model
  std::uint64_t seed = 5;                 ///< "apan": seed when self-built
  std::size_t warmup_batch = 500;         ///< fast-forward batch size
  std::size_t max_batch_hint = 1024;      ///< workspace pre-sizing at warmup

  BackendOptions();
};

/// Build a backend by registry key. Throws std::invalid_argument for an
/// unknown key (the message lists the registry).
std::unique_ptr<Backend> make_backend(const std::string& key,
                                      const core::TgnModel& model,
                                      const data::Dataset& ds,
                                      const BackendOptions& opts = {});

/// Every key make_backend accepts, in registration order.
const std::vector<std::string>& backend_keys();

}  // namespace tgnn::runtime
