// Offline streaming driver over the unified Backend interface — the one
// warmup/stream/measure loop every bench and example goes through (the
// per-file copies it replaced are gone; see DESIGN.md).
#pragma once

#include "runtime/backend.hpp"
#include "runtime/stream_result.hpp"

namespace tgnn::runtime {

/// Fast-forward a backend's persistent state through the stream prefix
/// [0, stream_end) — the shared warmup helper (every bench used to hand-roll
/// `x.warmup({0, region.begin})`).
void fast_forward(Backend& b, std::size_t stream_end);

/// Stream [range] in fixed-size batches through the backend.
StreamResult run_stream(Backend& b, const graph::BatchRange& range,
                        std::size_t batch_size);

/// Stream [range] in fixed time windows (the paper's 15-minute real-time
/// scenario); empty windows are skipped.
StreamResult run_windows(Backend& b, const graph::BatchRange& range,
                         double window_seconds);

/// fast_forward to the region start, then run_stream — the standard
/// "measure the test split" shape.
StreamResult measure_stream(Backend& b, const graph::BatchRange& region,
                            std::size_t batch_size);

/// fast_forward to the region start, then run_windows.
StreamResult measure_windows(Backend& b, const graph::BatchRange& region,
                             double window_seconds);

}  // namespace tgnn::runtime
