// Shared measurement types for every streaming execution path.
//
// StreamResult is the single latency/throughput accounting struct used by
// the runtime driver, the CPU baseline runner, and the FPGA accelerator —
// before the runtime layer existed each of those carried its own copy of
// this struct and of the warmup/stream/measure loop around it.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/temporal_graph.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::runtime {

/// Terminal disposition of one submitted request (edge event) under the
/// serving engine's admission policies. Every request submitted to a
/// ServingEngine ends in exactly one of these — the typed outcome the
/// fault-tolerant serving path reports instead of blocking forever or
/// dying on the first fault.
enum class RequestOutcome : std::uint8_t {
  kServed = 0,   ///< dispatched and completed (has a latency sample)
  kShed = 1,     ///< rejected at admission (kShed policy, queue full)
  kExpired = 2,  ///< dropped before dispatch (kDeadline policy, waited
                 ///< longer than the budget)
  kFailed = 3,   ///< batch execution failed permanently (fault injection /
                 ///< spill I/O); state untouched, stream continued
};

[[nodiscard]] const char* outcome_name(RequestOutcome o);

struct StreamResult {
  double total_seconds = 0.0;  ///< sum of per-batch service latencies
  std::size_t num_edges = 0;
  std::size_t num_embeddings = 0;
  core::PartTimes parts;                ///< per-stage breakdown (if reported)
  std::vector<double> batch_latency_s;  ///< one entry per non-empty batch

  [[nodiscard]] double throughput_eps() const {
    return total_seconds > 0.0 ? static_cast<double>(num_edges) / total_seconds
                               : 0.0;
  }
  [[nodiscard]] double mean_latency_s() const;
  /// q-quantile of the per-batch latencies, q in [0, 1] (0.5 = p50).
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double ns_per_embedding() const {
    return num_embeddings > 0
               ? total_seconds * 1e9 / static_cast<double>(num_embeddings)
               : 0.0;
  }
};

/// q-quantile (q in [0, 1]) of an unsorted sample set — the one quantile
/// implementation shared by StreamResult and the ServingEngine stats.
double percentile_of(std::vector<double> samples, double q);

/// What one streaming step reports back to the shared loop.
struct StepOutcome {
  double latency_s = 0.0;
  std::size_t num_embeddings = 0;
  core::PartTimes parts;
};

/// THE streaming loop: runs `step` over every non-empty batch in order and
/// accumulates a StreamResult. All higher-level drivers (runtime::run_stream,
/// CpuRunner::run, fpga::Accelerator::run, …) are thin wrappers around this.
StreamResult drive_batches(
    const std::vector<graph::BatchRange>& batches,
    const std::function<StepOutcome(const graph::BatchRange&)>& step);

}  // namespace tgnn::runtime
