// "sharded-cpu": N serial InferenceEngine lanes over ONE shared, shard-
// partitioned RuntimeState — the CPU realization of the parallelism the
// paper's hardware Updater exploits (per-vertex chronological writes, no
// global serialization; §II-A / Alg. 1).
//
// Driven through the plain Backend contract (process_batch on lane 0) it
// is bit-identical to the "cpu" backend: same engine numerics, same state.
// Driven through the ConcurrentBackend contract by a multi-worker
// ServingEngine, non-conflicting micro-batches execute on different lanes
// at once; cross-batch neighbor-memory reads go through the per-shard
// reader/writer locks (graph::ShardLockTable), so disjoint-footprint
// batches never serialize on a global lock.
//
// Each lane pins its OpenMP thread count to 1: lane-level concurrency
// replaces intra-batch OpenMP, keeping N lanes from oversubscribing the
// machine N times over.
#pragma once

#include <memory>
#include <vector>

#include "graph/shard_map.hpp"
#include "runtime/backend.hpp"

namespace tgnn::runtime {

class ShardedCpuBackend final : public ConcurrentBackend {
 public:
  /// `lanes` >= 1 execution lanes, state partitioned into `opts.shards`
  /// shards. `model` and `ds` must outlive the backend.
  ShardedCpuBackend(const core::TgnModel& model, const data::Dataset& ds,
                    std::size_t lanes, const BackendOptions& opts);

  BatchOutput process_batch(
      const graph::BatchRange& r,
      std::span<const graph::NodeId> extras = {}) override;
  void warmup(const graph::BatchRange& range) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "sharded-cpu"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const data::Dataset& dataset() const override { return ds_; }

  [[nodiscard]] std::size_t lanes() const override { return lanes_.size(); }
  BatchOutput process_batch_on(
      std::size_t lane, const graph::BatchRange& r,
      std::span<const graph::NodeId> extras = {}) override;
  void read_footprint(const graph::BatchRange& r,
                      std::vector<graph::NodeId>& out) const override;

  [[nodiscard]] std::size_t num_shards() const {
    return locks_.map().num_shards();
  }

 private:
  const core::TgnModel& model_;
  const data::Dataset& ds_;
  graph::ShardLockTable locks_;
  core::RuntimeState state_;
  std::vector<std::unique_ptr<core::InferenceEngine>> lanes_;
  BackendOptions opts_;
};

}  // namespace tgnn::runtime
