// "sharded-cpu": N serial InferenceEngine lanes over ONE shared, shard-
// partitioned RuntimeState — the CPU realization of the parallelism the
// paper's hardware Updater exploits (per-vertex chronological writes, no
// global serialization; §II-A / Alg. 1).
//
// Driven through the plain Backend contract (process_batch on lane 0) it
// is bit-identical to the "cpu" backend: same engine numerics, same state.
// Driven through the ConcurrentBackend contract by a multi-worker
// ServingEngine, non-conflicting micro-batches execute on different lanes
// at once; cross-batch neighbor-memory reads go through the per-shard
// reader/writer locks (graph::ShardLockTable), so disjoint-footprint
// batches never serialize on a global lock.
//
// Each lane pins its OpenMP thread count to 1: lane-level concurrency
// replaces intra-batch OpenMP, keeping N lanes from oversubscribing the
// machine N times over.
//
// Also a StagedBackend: the lanes compose with pipelining by mapping
// pipeline slots onto lanes (slot i runs its stages on engine lane
// i % lanes()), so a pipelined ServingEngine overlaps STAGES of adjacent
// batches on the same machinery the multi-worker scheduler overlaps WHOLE
// batches on. The shard locks make cross-batch neighbor-memory reads
// race-free (race_free_reads() == true), which is what permits relaxed
// (write-footprint-only) pipelined admission.
#pragma once

#include <memory>
#include <vector>

#include "graph/shard_map.hpp"
#include "runtime/backend.hpp"

namespace tgnn::runtime {

class ShardedCpuBackend final : public ConcurrentBackend,
                                public StagedBackend {
 public:
  /// `lanes` >= 1 execution lanes, state partitioned into `opts.shards`
  /// shards. `model` and `ds` must outlive the backend.
  ShardedCpuBackend(const core::TgnModel& model, const data::Dataset& ds,
                    std::size_t lanes, const BackendOptions& opts);

  BatchOutput process_batch(
      const graph::BatchRange& r,
      std::span<const graph::NodeId> extras = {}) override;
  void warmup(const graph::BatchRange& range) override;
  void reset() override;
  [[nodiscard]] std::string name() const override {
    if (opts_.precision == kernels::Precision::kFp32) return "sharded-cpu";
    return std::string("sharded-cpu:") +
           kernels::precision_name(opts_.precision);
  }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const data::Dataset& dataset() const override { return ds_; }
  [[nodiscard]] graph::VertexStoreStats store_stats() const override {
    return state_.store_stats();
  }
  /// Degradation seam: flips every lane's numeric mode (legal only with no
  /// batch in flight — the lanes share the model's precision caches).
  bool set_precision(kernels::Precision p) override;
  [[nodiscard]] kernels::Precision precision() const override;
  [[nodiscard]] core::RuntimeState* runtime_state() override {
    return &state_;
  }

  [[nodiscard]] std::size_t lanes() const override { return lanes_.size(); }
  BatchOutput process_batch_on(
      std::size_t lane, const graph::BatchRange& r,
      std::span<const graph::NodeId> extras = {}) override;
  void read_footprint(const graph::BatchRange& r,
                      std::vector<graph::NodeId>& out) const override;

  // ---- StagedBackend --------------------------------------------------
  void prepare_pipeline(std::size_t slots,
                        std::size_t max_batch_edges) override;
  [[nodiscard]] std::size_t pipeline_slots() const override {
    return slots_.size();
  }
  void begin_batch(std::size_t slot, const graph::BatchRange& r) override;
  void run_stage(core::Stage s, std::size_t slot) override;
  void finish_batch(std::size_t slot) override;
  void abort_batch(std::size_t slot) override;
  [[nodiscard]] bool race_free_reads() const override { return true; }
  void prefetch_rows(std::span<const graph::NodeId> nodes) override {
    state_.prefetch_rows(nodes);
  }

  [[nodiscard]] std::size_t num_shards() const {
    return locks_.map().num_shards();
  }

 private:
  /// Engine lane a pipeline slot's stages execute on.
  [[nodiscard]] core::InferenceEngine& lane_of(std::size_t slot) {
    return *lanes_[slot % lanes_.size()];
  }

  const core::TgnModel& model_;
  const data::Dataset& ds_;
  graph::ShardLockTable locks_;
  core::RuntimeState state_;
  std::vector<std::unique_ptr<core::InferenceEngine>> lanes_;
  BackendOptions opts_;
  std::vector<core::StageContext> slots_;
};

}  // namespace tgnn::runtime
