#include "runtime/serving.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "kernels/quant.hpp"
#include "perf/auto_tuner.hpp"
#include "tgnn/serialize.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"

namespace tgnn::runtime {

namespace {

/// Lanes actually usable: opts.workers clamped to the backend's lane count
/// (1 when the backend has no concurrent contract).
std::size_t resolve_workers(const ServingOptions& opts,
                            const ConcurrentBackend* cb) {
  if (opts.workers <= 1 || cb == nullptr) return 1;
  return std::min(opts.workers, cb->lanes());
}

/// True when no id is marked in the conflict ledger.
bool disjoint(const std::vector<graph::NodeId>& ids,
              const std::vector<std::uint32_t>& marks) {
  return std::all_of(ids.begin(), ids.end(),
                     [&](graph::NodeId v) { return marks[v] == 0; });
}

/// The batch's WRITE footprint: its edge endpoints, deduplicated, straight
/// off the immutable stream (safe to compute any time).
void write_footprint(const graph::TemporalGraph& g,
                     const graph::BatchRange& range,
                     std::vector<graph::NodeId>& wfp) {
  wfp.clear();
  for (const auto& e : g.edges(range)) {
    wfp.push_back(e.src);
    wfp.push_back(e.dst);
  }
  std::sort(wfp.begin(), wfp.end());
  wfp.erase(std::unique(wfp.begin(), wfp.end()), wfp.end());
}

/// PartTimes buckets in core::Stage order (memory -> MemoryUpdate,
/// sample -> NeighborGather, gnn -> GnnCompute, update -> Decode); see
/// perf/stage_profile.hpp for the attribution convention.
std::array<double, core::kNumStages> stage_array(const core::PartTimes& p) {
  return {p.memory, p.sample, p.gnn, p.update};
}

}  // namespace

std::string ServingStats::describe() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "%zu requests in %zu batches (mean %.1f/batch), %.0f req/s, "
                "latency p50/p95/p99 %.2f/%.2f/%.2f ms\n",
                num_requests, num_batches, mean_batch_size, throughput_rps,
                p50_latency_s * 1e3, p95_latency_s * 1e3, p99_latency_s * 1e3);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  queue wait p50 %.2f ms, service p50 %.2f ms; stage "
                "p50/p95 ms:",
                p50_queue_wait_s * 1e3, p50_service_s * 1e3);
  out += buf;
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    std::snprintf(buf, sizeof buf, " %s %.2f/%.2f",
                  perf::stage_name(k), p50_stage_s[k] * 1e3,
                  p95_stage_s[k] * 1e3);
    out += buf;
  }
  out += '\n';
  std::snprintf(buf, sizeof buf,
                "  knobs: max_batch %zu, max_wait %.2f ms, precision %s; "
                "%zu retune step(s), %zu degrade step(s)\n",
                max_batch, max_wait_s * 1e3,
                kernels::precision_name(precision), retune_steps,
                degrade_steps);
  out += buf;
  if (stage_profile.batches > 0) out += stage_profile.describe();
  return out;
}

void audit_disjoint_footprints(
    std::span<const std::span<const graph::NodeId>> footprints) {
  std::unordered_set<graph::NodeId> seen;
  std::size_t total = 0;
  for (const auto& fp : footprints) total += fp.size();
  seen.reserve(total);
  for (const auto& fp : footprints)
    for (const graph::NodeId v : fp)
      TGNN_CHECK(seen.insert(v).second,
                 "hazard audit: vertex " + std::to_string(v) +
                     " appears in two in-flight footprints");
}

void ServingEngine::audit_in_flight_footprints() const {
  std::vector<std::span<const graph::NodeId>> occupied;
  occupied.reserve(slot_meta_.size());
  for (const SlotMeta& meta : slot_meta_)
    if (!meta.wfp.empty()) occupied.push_back(meta.wfp);
  // Cross-check the occupancy notion against the free-slot list before the
  // disjointness pass: every slot is either free or holds a footprint.
  TGNN_CHECK(occupied.size() + free_lanes_.size() == slot_meta_.size(),
             "hazard audit: occupied slots + free slots != pipeline depth");
  audit_disjoint_footprints(occupied);
}

ServingEngine::ServingEngine(Backend& backend, ServingOptions opts)
    : backend_(backend),
      concurrent_(dynamic_cast<ConcurrentBackend*>(&backend)),
      staged_(opts.pipelined ? dynamic_cast<StagedBackend*>(&backend)
                             : nullptr),
      opts_(opts),
      workers_(resolve_workers(opts, concurrent_)),
      base_max_wait_s_(opts.max_wait_s),
      hw_threads_(std::max<std::size_t>(
          1, std::thread::hardware_concurrency())),
      pool_(1 + (workers_ > 1 ? workers_ : 0) +
            (opts.pipelined ? core::kNumStages : 0)) {
  if (opts_.max_batch == 0)
    throw std::invalid_argument("ServingEngine: max_batch must be > 0");
  if (opts_.queue_capacity == 0)
    throw std::invalid_argument("ServingEngine: queue_capacity must be > 0");
  if (opts_.workers > 1 && concurrent_ == nullptr)
    throw std::invalid_argument(
        "ServingEngine: workers > 1 requires a ConcurrentBackend "
        "(e.g. \"sharded-cpu\"); backend '" +
        backend_.name() + "' is not one");
  if (opts_.admission == AdmissionPolicy::kShed && opts_.shed_wait_s < 0.0)
    throw std::invalid_argument("ServingEngine: shed_wait_s must be >= 0");
  if (opts_.admission == AdmissionPolicy::kDeadline && opts_.deadline_s <= 0.0)
    throw std::invalid_argument("ServingEngine: deadline_s must be > 0");
  if (opts_.degrade_under_overload &&
      !(opts_.degrade_low < opts_.degrade_high))
    throw std::invalid_argument(
        "ServingEngine: degrade_low must be < degrade_high");
  if (opts_.autotune_online) {
    if (opts_.retune_interval == 0)
      throw std::invalid_argument(
          "ServingEngine: retune_interval must be > 0");
    if (opts_.retune_min_batch == 0 ||
        opts_.retune_min_batch > opts_.retune_max_batch)
      throw std::invalid_argument(
          "ServingEngine: retune batch bounds must satisfy "
          "0 < retune_min_batch <= retune_max_batch");
    if (opts_.retune_margin < 1.0)
      throw std::invalid_argument(
          "ServingEngine: retune_margin must be >= 1 (a flip needs a "
          "predicted gain, not a predicted tie)");
  }
  {
    // Degradation ladder, anchored at the backend's base numeric mode.
    // One rung means "never degrade" — either the option is off or the
    // backend already serves int8.
    util::MutexLock lk(mu_);
    ladder_.push_back(backend_.precision());
    if (opts_.degrade_under_overload) {
      if (ladder_.front() == kernels::Precision::kFp32)
        ladder_.push_back(kernels::Precision::kBf16);
      if (ladder_.front() != kernels::Precision::kInt8)
        ladder_.push_back(kernels::Precision::kInt8);
    }
  }
  if (opts_.pipelined) {
    if (staged_ == nullptr)
      throw std::invalid_argument(
          "ServingEngine: pipelined requires a StagedBackend "
          "(cpu | cpu-mt | sharded-cpu); backend '" +
          backend_.name() + "' is not one");
    if (opts_.workers > 1)
      throw std::invalid_argument(
          "ServingEngine: pipelined and workers > 1 are mutually exclusive "
          "(a staged sharded backend composes its lanes as pipeline slots)");
    if (opts_.pipeline_depth == 0)
      throw std::invalid_argument(
          "ServingEngine: pipeline_depth must be > 0");
    // A backend without internally synchronized cross-batch reads cannot
    // run relaxed admission safely — track read footprints regardless of
    // the requested policy (which also makes execution deterministic).
    track_reads_ = opts_.deterministic || !staged_->race_free_reads();
    staged_->prepare_pipeline(opts_.pipeline_depth, opts_.max_batch);

    // Conflict ledger + slot pool + inter-stage FIFOs (capacity 1: classic
    // pipeline registers — a stage stalls until its successor drains). The
    // workers don't exist yet, but initializing the guarded ledger under
    // the lock keeps every write inside the capability.
    const auto& g = backend_.dataset().graph;
    {
      util::MutexLock lk(mu_);
      write_marks_.assign(g.num_nodes(), 0);
      full_marks_.assign(g.num_nodes(), 0);
      for (std::size_t s = opts_.pipeline_depth; s-- > 0;)
        free_lanes_.push_back(s);
      slot_meta_.assign(opts_.pipeline_depth, SlotMeta{});
    }
    stage_q_.reserve(core::kNumStages);
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      stage_q_.push_back(std::make_unique<StageChannel<std::size_t>>(1));
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      pool_.submit([this, k] { stage_worker(k); });
  }
  pool_.submit([this] { scheduler_loop(); });
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::stop() {
  {
    util::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  cv_state_.notify_all();  // release submitters blocked on queue capacity
  // The scheduler flushes and completes everything still queued or
  // mid-pipeline (next_batch keeps handing out batches until the queue is
  // empty), closes the stage FIFOs, and the workers drain them — so this
  // returns only after every submitted request has been resolved.
  pool_.wait_idle();
}

void ServingEngine::check_submit_locked(std::size_t edge_index) const {
  if (stop_)
    throw std::logic_error("ServingEngine::submit: engine is stopped");
  if (have_origin_ && edge_index != next_index_)
    throw std::invalid_argument(
        "ServingEngine::submit: requests must arrive in stream order (got " +
        std::to_string(edge_index) + ", expected " +
        std::to_string(next_index_) + ")");
}

void ServingEngine::enqueue_locked(std::size_t edge_index) {
  have_origin_ = true;
  next_index_ = edge_index + 1;
  const double now = clock_.seconds();
  if (first_submit_s_ < 0.0) first_submit_s_ = now;
  queue_.push_back({edge_index, now});
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  cv_submit_.notify_all();
}

bool ServingEngine::wait_for_space(util::MutexLock& lk, double timeout_s) {
  if (queue_.size() < opts_.queue_capacity) return true;
  const double deadline = clock_.seconds() + std::max(timeout_s, 0.0);
  while (!stop_ && queue_.size() >= opts_.queue_capacity) {
    const double remaining = deadline - clock_.seconds();
    if (remaining <= 0.0) return false;
    cv_state_.wait_for(lk, std::chrono::duration<double>(remaining));
  }
  return !stop_ && queue_.size() < opts_.queue_capacity;
}

bool ServingEngine::submit(std::size_t edge_index) {
  util::MutexLock lk(mu_);
  check_submit_locked(edge_index);
  if (opts_.admission == AdmissionPolicy::kShed) {
    if (!wait_for_space(lk, opts_.shed_wait_s)) {
      if (stop_)
        throw std::logic_error("ServingEngine::submit: engine is stopped");
      // Queue still full after the bounded wait: shed. The request is
      // CONSUMED — the cursor advances so the stream stays in order and
      // the caller moves on to the successor index.
      have_origin_ = true;
      next_index_ = edge_index + 1;
      outcomes_.push_back({edge_index, RequestOutcome::kShed});
      ++shed_;
      return false;
    }
  } else {
    while (!stop_ && queue_.size() >= opts_.queue_capacity) cv_state_.wait(lk);
  }
  if (stop_)
    throw std::logic_error("ServingEngine::submit: engine is stopped");
  enqueue_locked(edge_index);
  return true;
}

bool ServingEngine::submit(std::size_t edge_index, double timeout_s) {
  util::MutexLock lk(mu_);
  check_submit_locked(edge_index);
  if (!wait_for_space(lk, timeout_s)) {
    if (stop_)
      throw std::logic_error("ServingEngine::submit: engine is stopped");
    return false;  // timed out; NOT consumed — the caller may retry
  }
  enqueue_locked(edge_index);
  return true;
}

bool ServingEngine::try_submit(std::size_t edge_index) {
  util::MutexLock lk(mu_);
  check_submit_locked(edge_index);
  if (queue_.size() >= opts_.queue_capacity) return false;  // NOT consumed
  enqueue_locked(edge_index);
  return true;
}

void ServingEngine::drain() {
  util::MutexLock lk(mu_);
  // Force-flush whatever is pending instead of letting a partial batch sit
  // out the remainder of its max_wait deadline.
  if (!queue_.empty()) {
    flush_ = true;
    cv_submit_.notify_all();
  }
  while (!queue_.empty() || in_flight_ != 0) cv_state_.wait(lk);
}

std::size_t ServingEngine::contiguous_run_locked() const {
  std::size_t n = 1;
  while (n < queue_.size() && n < opts_.max_batch &&
         queue_[n].index == queue_[n - 1].index + 1)
    ++n;
  return n;
}

void ServingEngine::expire_stale_locked() {
  const double now = clock_.seconds();
  bool dropped = false;
  while (!queue_.empty() &&
         now - queue_.front().arrival_s > opts_.deadline_s) {
    outcomes_.push_back({queue_.front().index, RequestOutcome::kExpired});
    ++expired_;
    queue_.pop_front();
    dropped = true;
  }
  // Space freed: wake blocked submitters, and a drain() whose last pending
  // requests just expired.
  if (dropped) cv_state_.notify_all();
}

bool ServingEngine::next_batch(util::MutexLock& lk, graph::BatchRange& range,
                               std::vector<double>& arrivals) {
  for (;;) {
    while (!stop_ && queue_.empty()) cv_submit_.wait(lk);
    if (queue_.empty()) return false;  // only reachable when stopping

    // kDeadline: a request whose queue wait already exceeds the budget is
    // dropped before dispatch (also during drain/stop — serving it late
    // would be worse than the typed drop). Arrival times are monotone, so
    // the expired set is exactly a prefix.
    if (opts_.admission == AdmissionPolicy::kDeadline) {
      expire_stale_locked();
      if (queue_.empty()) continue;  // everything pending had expired
    }

    // Coalesce: hold the batch open until the leading contiguous run is
    // full, the oldest pending request hits the flush deadline, or a
    // drain/stop forces a flush. An index gap (left by a shed request)
    // caps the batch early — a BatchRange must be contiguous and the run
    // cannot grow past the gap. Under kDeadline the wait is also bounded
    // by the front request's remaining budget so expiry happens on time.
    bool expired_front = false;
    while (!stop_ && !flush_) {
      const std::size_t run = contiguous_run_locked();
      if (run >= opts_.max_batch) break;
      if (run < queue_.size()) break;  // gap: waiting cannot extend the run
      const double age = clock_.seconds() - queue_.front().arrival_s;
      double remaining = opts_.max_wait_s - age;
      if (opts_.admission == AdmissionPolicy::kDeadline) {
        const double budget = opts_.deadline_s - age;
        if (budget <= 0.0) {
          expired_front = true;
          break;
        }
        remaining = std::min(remaining, budget);
      }
      if (remaining <= 0.0) break;
      cv_submit_.wait_for(lk, std::chrono::duration<double>(remaining));
    }
    if (expired_front) continue;  // sweep the expired prefix, then re-form

    const std::size_t n = contiguous_run_locked();
    range = {queue_.front().index, queue_.front().index + n};
    arrivals.clear();
    arrivals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      arrivals.push_back(queue_.front().arrival_s);
      queue_.pop_front();
    }
    if (queue_.empty()) flush_ = false;  // forced flush fully served
    ++in_flight_;                        // formed => counted until completed
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    const bool degraded = maybe_degrade();
    maybe_retune(degraded);
    cv_state_.notify_all();  // queue space freed for blocked submitters
    return true;
  }
}

bool ServingEngine::maybe_degrade() {
  if (ladder_.size() <= 1) return false;  // off, or backend cannot degrade
  const double fill = static_cast<double>(queue_.size()) /
                      static_cast<double>(opts_.queue_capacity);
  if (fill >= opts_.degrade_high) {
    ++pressure_run_;
    clear_run_ = 0;
  } else if (fill <= opts_.degrade_low) {
    ++clear_run_;
    pressure_run_ = 0;
  } else {
    pressure_run_ = 0;
    clear_run_ = 0;
  }
  std::size_t target = degrade_level_;
  if (pressure_run_ >= opts_.degrade_patience &&
      degrade_level_ + 1 < ladder_.size())
    target = degrade_level_ + 1;
  else if (clear_run_ >= opts_.degrade_patience && degrade_level_ > 0)
    target = degrade_level_ - 1;
  if (target == degrade_level_) return false;
  // Precision flips require backend quiescence. The only point this
  // scheduler can guarantee it is right after batch formation when the
  // formed batch is the sole in-flight work and nothing is dispatched —
  // always true in serial mode, opportunistic (empty pipeline / idle
  // lanes) otherwise. The flip happens under mu_: set_precision only
  // rebuilds the model's precision caches, takes no engine lock, and
  // holding mu_ keeps stats()'s precision read race-free.
  if (in_flight_ != 1 || executing_ != 0) return false;
  pressure_run_ = 0;
  clear_run_ = 0;
  if (!backend_.set_precision(ladder_[target])) {
    ladder_.resize(1);  // backend refused: never try again
    return false;
  }
  if (target > degrade_level_) ++degrade_steps_;
  degrade_level_ = target;
  tuning_log_.push_back({batches_.size(), TuningEvent::Kind::kPrecision,
                         static_cast<std::size_t>(ladder_[target])});
  return true;
}

void ServingEngine::maybe_retune(bool degrade_flipped) {
  if (!opts_.autotune_online) return;
  ++formations_since_retune_;
  if (formations_since_retune_ < opts_.retune_interval) return;
  // Compose with the degradation ladder instead of fighting it: never two
  // knobs at one quiescent point, and a pressured ladder walk gets to act
  // (or time out) before batches are resized under it.
  if (degrade_flipped || pressure_run_ != 0) return;
  // The same quiescent condition the precision flip requires: the batch
  // just formed is the sole in-flight work. Resizing here means every
  // batch — in any scheduler mode — still forms and executes in stream
  // order against quiescent state, which is what keeps deterministic-mode
  // results bit-identical to a serial replay of batch_log().
  if (in_flight_ != 1 || executing_ != 0) return;
  const perf::StageProfile prof = profiler_.snapshot();
  // Need at least half a window of fresh evidence, and a backend that
  // reports stage times at all (modelled platforms may not).
  if (prof.batches < opts_.retune_interval / 2 || prof.total_ewma_s() <= 0.0)
    return;
  formations_since_retune_ = 0;

  perf::SoftwarePerfModel model(prof);
  model.set_hardware_threads(hw_threads_);
  model.set_num_nodes(backend_.dataset().graph.num_nodes());

  perf::SwCandidate cand;
  cand.workers = workers_;
  cand.pipelined = opts_.pipelined;
  cand.pipeline_depth = opts_.pipeline_depth;
  cand.max_batch = opts_.max_batch;
  const double current_rps = model.predict(cand).throughput_rps;
  std::size_t best_batch = opts_.max_batch;
  double best_rps = current_rps;
  perf::SwPrediction best_pred;
  for (std::size_t b = opts_.retune_min_batch;
       b <= std::min(opts_.retune_max_batch, opts_.queue_capacity); b *= 2) {
    cand.max_batch = b;
    const perf::SwPrediction pred = model.predict(cand);
    if (pred.throughput_rps > best_rps) {
      best_rps = pred.throughput_rps;
      best_batch = b;
      best_pred = pred;
    }
  }
  if (best_batch == opts_.max_batch ||
      best_rps < opts_.retune_margin * current_rps)
    return;
  // Direction hysteresis: reversing the previous flip needs two full
  // intervals of evidence — the no-flip-flop contract the tests pin.
  const int dir = best_batch > opts_.max_batch ? 1 : -1;
  if (dir == -last_retune_dir_ &&
      batches_.size() - last_retune_batch_ < 2 * opts_.retune_interval)
    return;
  opts_.max_batch = best_batch;
  // Re-derive the formation wait from the predicted service time (holding
  // a batch open much longer than it takes to serve one buys nothing),
  // bounded to one order of magnitude around the configured wait.
  opts_.max_wait_s = std::clamp(best_pred.batch_s, base_max_wait_s_ / 8.0,
                                base_max_wait_s_ * 8.0);
  ++retune_steps_;
  last_retune_dir_ = dir;
  last_retune_batch_ = batches_.size();
  tuning_log_.push_back(
      {batches_.size(), TuningEvent::Kind::kMaxBatch, best_batch});
}

void ServingEngine::record_stage_sample(
    const std::array<double, core::kNumStages>& stage_s,
    const graph::BatchRange& range, std::size_t unique_vertices) {
  profiler_.record(stage_s, range.size(), unique_vertices, queue_.size());
  for (std::size_t k = 0; k < core::kNumStages; ++k)
    stage_samples_[k].push_back(stage_s[k]);
}

void ServingEngine::record_batch(const graph::BatchRange& range,
                                 const std::vector<double>& arrivals,
                                 double dispatch_s, double service_s) {
  const double done = clock_.seconds();
  for (double a : arrivals) {
    const double wait = dispatch_s - a;
    latencies_.push_back(wait + service_s);
    queue_waits_.push_back(wait);
    services_.push_back(service_s);
  }
  for (std::size_t i = range.begin; i < range.end; ++i)
    outcomes_.push_back({i, RequestOutcome::kServed});
  last_done_s_ = std::max(last_done_s_, done);
  TGNN_DCHECK(in_flight_ > 0, "batch completion with none in flight");
  --in_flight_;
  cv_state_.notify_all();
}

void ServingEngine::fail_batch(const graph::BatchRange& range) {
  for (std::size_t i = range.begin; i < range.end; ++i)
    outcomes_.push_back({i, RequestOutcome::kFailed});
  failed_ += range.size();
  last_done_s_ = std::max(last_done_s_, clock_.seconds());
  TGNN_DCHECK(in_flight_ > 0, "batch failure with none in flight");
  --in_flight_;
  cv_state_.notify_all();
}

bool ServingEngine::run_with_retries(const std::function<void()>& op) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      op();
      return true;
    } catch (const util::InjectedFault& e) {
      if (e.transient() && attempt < opts_.fault_retries) {
        {
          util::MutexLock lk(mu_);
          ++fault_retries_;
        }
        if (opts_.retry_backoff_s > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::ldexp(opts_.retry_backoff_s, static_cast<int>(attempt))));
        continue;
      }
      util::MutexLock lk(mu_);
      last_error_ = e.what();
      return false;
    } catch (const std::exception& e) {
      // Anything else — a SpillIoError that outlived the store's own
      // retries, a backend error — is permanent for this batch.
      util::MutexLock lk(mu_);
      last_error_ = e.what();
      return false;
    }
  }
}

void ServingEngine::scheduler_loop() {
  if (staged_ != nullptr) {
    scheduler_loop_pipelined();
    return;
  }
  if (workers_ > 1) {
    scheduler_loop_parallel();
    return;
  }
  graph::BatchRange range;
  std::vector<double> arrivals;
  util::MutexLock lk(mu_);
  while (next_batch(lk, range, arrivals)) {
    batches_.push_back(range);
    executing_ = 1;
    peak_executing_ = std::max(peak_executing_, executing_);
    lk.unlock();
    const double dispatch_s = clock_.seconds();
    BatchOutput out;
    const bool ok = run_with_retries([&] {
      util::fault_point(util::FaultSite::kStageExec);
      out = backend_.process_batch(range);
    });
    lk.lock();
    executing_ = 0;
    if (ok) {
      record_stage_sample(stage_array(out.parts), range,
                          out.functional.nodes.size());
      record_batch(range, arrivals, dispatch_s, out.latency_s);
    } else {
      fail_batch(range);
    }
  }
}

void ServingEngine::scheduler_loop_parallel() {
  ConcurrentBackend& cb = *concurrent_;
  const auto& g = backend_.dataset().graph;

  graph::BatchRange range;
  std::vector<double> arrivals;
  std::vector<graph::NodeId> wfp, rfp;
  util::MutexLock lk(mu_);
  write_marks_.assign(g.num_nodes(), 0);
  full_marks_.assign(g.num_nodes(), 0);
  free_lanes_.clear();
  for (std::size_t l = 0; l < workers_; ++l) free_lanes_.push_back(l);
  while (next_batch(lk, range, arrivals)) {
    write_footprint(g, range, wfp);

    // Head-of-line admission, stage 1: a free lane, and our writes touch
    // nothing any in-flight batch reads or writes. In-flight work only
    // shrinks while we wait (this thread is the only dispatcher), so the
    // predicate is stable once satisfied.
    while (free_lanes_.empty() || !disjoint(wfp, full_marks_))
      cv_state_.wait(lk);

    // Stage 2 (deterministic mode): the READ footprint — sampled neighbors
    // of our endpoints. Stage 1 guarantees no in-flight batch writes our
    // endpoints, so their neighbor rows are quiescent and reading them
    // off-lock is safe. Dispatch once no in-flight batch writes anything
    // we will read; the result is bit-identical to serial execution.
    if (opts_.deterministic) {
      lk.unlock();
      cb.read_footprint(range, rfp);
      lk.lock();
      while (!disjoint(rfp, write_marks_)) cv_state_.wait(lk);
    } else {
      rfp.clear();
    }

    const std::size_t lane = free_lanes_.back();
    free_lanes_.pop_back();
    for (graph::NodeId v : wfp) {
      ++write_marks_[v];
      ++full_marks_[v];
    }
    for (graph::NodeId v : rfp) ++full_marks_[v];
    batches_.push_back(range);
    ++executing_;
    peak_executing_ = std::max(peak_executing_, executing_);
    const double dispatch_s = clock_.seconds();

    lk.unlock();
    pool_.submit([this, &cb, lane, range, wfp, rfp, dispatch_s,
                  batch_arrivals = arrivals] {
      BatchOutput out;
      const bool ok = run_with_retries([&] {
        util::fault_point(util::FaultSite::kStageExec);
        out = cb.process_batch_on(lane, range);
      });
      util::MutexLock done_lk(mu_);
      for (graph::NodeId v : wfp) {
        TGNN_DCHECK(write_marks_[v] > 0, "write-mark release underflow");
        --write_marks_[v];
        --full_marks_[v];
      }
      for (graph::NodeId v : rfp) --full_marks_[v];
      free_lanes_.push_back(lane);
      --executing_;
      if (ok) {
        // The write footprint is the batch's unique endpoints — exactly
        // the fan-out signal the profiler wants.
        record_stage_sample(stage_array(out.parts), range, wfp.size());
        record_batch(range, batch_arrivals, dispatch_s, out.latency_s);
      } else {
        fail_batch(range);
      }
    });
    lk.lock();
  }
}

void ServingEngine::scheduler_loop_pipelined() {
  // The admitter of the staged dataflow pipeline. Micro-batches are formed
  // in stream order exactly as in serial mode; each then enters the
  // four-stage pipeline once the hazard check clears, and the stage
  // workers carry it MemoryUpdate -> NeighborGather -> GnnCompute ->
  // Decode over the bounded StageChannels. Because admission is
  // head-of-line and every stage worker is serial, batches traverse every
  // stage in stream order — combined with write-footprint disjointness
  // this keeps per-vertex state writes chronological, and with read
  // tracking (track_reads_) no in-flight batch ever observes another's
  // effects: bit-identical to the serial path.
  StagedBackend& sb = *staged_;
  const auto& g = backend_.dataset().graph;

  graph::BatchRange range;
  std::vector<double> arrivals;
  std::vector<graph::NodeId> wfp, rfp;
  util::MutexLock lk(mu_);
  while (next_batch(lk, range, arrivals)) {
    write_footprint(g, range, wfp);

    // Admission, stage 1: a free pipeline slot, and our writes touch
    // nothing any in-flight batch reads or writes. In-flight work only
    // shrinks while we wait (this thread is the only admitter), so the
    // predicate is stable once satisfied.
    while (free_lanes_.empty() || !disjoint(wfp, full_marks_))
      cv_state_.wait(lk);

    // Admission, stage 2 (read tracking): the READ footprint — sampled
    // neighbors of our endpoints. Stage 1 guarantees no in-flight batch
    // writes our endpoints, so their neighbor rows are quiescent and
    // reading them off-lock is safe. Enter once no in-flight batch writes
    // anything we will read.
    if (track_reads_) {
      lk.unlock();
      sb.read_footprint(range, rfp);
      lk.lock();
      while (!disjoint(rfp, write_marks_)) cv_state_.wait(lk);
    } else {
      rfp.clear();
    }

    const std::size_t slot = free_lanes_.back();
    free_lanes_.pop_back();
    for (graph::NodeId v : wfp) {
      ++write_marks_[v];
      ++full_marks_[v];
    }
    for (graph::NodeId v : rfp) ++full_marks_[v];
    batches_.push_back(range);
    ++executing_;
    peak_executing_ = std::max(peak_executing_, executing_);
    // Swap, don't copy: the admission loop rebuilds wfp/rfp/arrivals from
    // scratch each iteration, and this runs under the engine-wide mutex.
    SlotMeta& meta = slot_meta_[slot];
    meta.wfp.swap(wfp);
    meta.rfp.swap(rfp);
    meta.arrivals.swap(arrivals);
    meta.range = range;
    meta.dispatch_s = clock_.seconds();
    meta.stage_s.fill(0.0);
    if constexpr (util::kCheckedBuild) audit_in_flight_footprints();

    lk.unlock();
    // Out-of-core prefetch, one stage early: the admitted batch's write
    // footprint (its endpoints) and — when read tracking already computed
    // it — the rows it will read are faulted in now, while predecessor
    // batches still occupy the pipeline ahead of it. No-op on an
    // all-resident store.
    sb.prefetch_rows(meta.wfp);
    if (!meta.rfp.empty()) sb.prefetch_rows(meta.rfp);
    // Pipeline entry runs under the same retry envelope as the stages:
    // begin_batch reads only the immutable stream, and the handoff into
    // the first FIFO is a fault site of its own. A permanent fault here
    // aborts the batch before any stage ran.
    bool ok = run_with_retries([&] {
      util::fault_point(util::FaultSite::kStageExec);
      sb.begin_batch(slot, range);
    });
    if (ok)
      ok = run_with_retries(
          [] { util::fault_point(util::FaultSite::kChannelHandoff); });
    if (ok)
      stage_q_[0]->push(slot);  // stalls while the first stage is busy
    else
      abort_slot(slot);
    lk.lock();
  }
  // Stream over (stop with an empty queue): close the pipe; the close
  // cascades stage by stage once each worker has drained its input, so
  // everything mid-pipeline still completes in order.
  stage_q_[0]->close();
}

void ServingEngine::abort_slot(std::size_t slot) {
  // Backend first (needs no engine lock): release the slot's pins and
  // scratch. Stages before Decode write only the slot's context, so no
  // persistent state was committed — per-vertex chronology is intact and
  // the stream simply continues past the failed batch.
  staged_->abort_batch(slot);
  util::MutexLock lk(mu_);
  SlotMeta& meta = slot_meta_[slot];
  for (graph::NodeId v : meta.wfp) {
    TGNN_DCHECK(write_marks_[v] > 0, "write-mark release underflow");
    --write_marks_[v];
    --full_marks_[v];
  }
  for (graph::NodeId v : meta.rfp) --full_marks_[v];
  fail_batch(meta.range);
  meta.wfp.clear();
  meta.rfp.clear();
  meta.arrivals.clear();
  free_lanes_.push_back(slot);
  --executing_;
}

void ServingEngine::stage_worker(std::size_t k) {
  StagedBackend& sb = *staged_;
  while (auto slot = stage_q_[k]->pop()) {
    // The stage body is a fault site: transient faults are retried before
    // the stage runs (the fault point precedes the work, so a retry never
    // re-executes a half-run stage); a permanent fault aborts the batch.
    const double stage_begin_s = clock_.seconds();
    const bool ran = run_with_retries([&] {
      util::fault_point(util::FaultSite::kStageExec);
      sb.run_stage(static_cast<core::Stage>(k), *slot);
    });
    const double stage_s = clock_.seconds() - stage_begin_s;
    if (!ran) {
      abort_slot(*slot);
      continue;
    }
    if (k + 1 < core::kNumStages) {
      // Bank this stage's wall time for the profiler record Decode will
      // make. One short lock per stage per batch — microseconds against
      // stage times themselves, and the annotation scheme keeps every
      // SlotMeta access inside the capability.
      {
        util::MutexLock lk(mu_);
        slot_meta_[*slot].stage_s[k] = stage_s;
      }
      // Stage-channel handoff is the third fault site — the software
      // analogue of a dropped FIFO beat between hardware modules.
      const bool handed = run_with_retries(
          [] { util::fault_point(util::FaultSite::kChannelHandoff); });
      if (!handed) {
        abort_slot(*slot);
        continue;
      }
      stage_q_[k + 1]->push(*slot);
      continue;
    }
    // Decode done: the batch's writes are committed — release its
    // footprint marks and slot, and account the request latencies.
    // Service time spans admission to completion (inter-stage queueing
    // included), so percentiles describe what a request actually saw.
    sb.finish_batch(*slot);
    util::MutexLock done_lk(mu_);
    SlotMeta& meta = slot_meta_[*slot];
    for (graph::NodeId v : meta.wfp) {
      TGNN_DCHECK(write_marks_[v] > 0, "write-mark release underflow");
      --write_marks_[v];
      --full_marks_[v];
    }
    for (graph::NodeId v : meta.rfp) --full_marks_[v];
    meta.stage_s[k] = stage_s;
    record_stage_sample(meta.stage_s, meta.range, meta.wfp.size());
    record_batch(meta.range, meta.arrivals, meta.dispatch_s,
                 clock_.seconds() - meta.dispatch_s);
    // Emptying the meta is what marks the slot free for the hazard audit's
    // occupancy notion — do it before parking the slot.
    meta.wfp.clear();
    meta.rfp.clear();
    meta.arrivals.clear();
    free_lanes_.push_back(*slot);
    --executing_;
  }
  if (k + 1 < core::kNumStages) stage_q_[k + 1]->close();
}

std::uint64_t ServingEngine::checkpoint(const std::string& path) {
  core::RuntimeState* state = backend_.runtime_state();
  if (state == nullptr)
    throw std::logic_error("ServingEngine::checkpoint: backend '" +
                           backend_.name() +
                           "' does not expose its runtime state");
  // Quiesce: queue empty, nothing in flight, every write committed. The
  // caller must not submit concurrently with the snapshot.
  drain();
  std::uint64_t cursor = 0;
  {
    util::MutexLock lk(mu_);
    cursor = next_index_;
  }
  if (!core::save_state(path, *state, cursor))
    throw std::runtime_error("ServingEngine::checkpoint: cannot write '" +
                             path + "'");
  return cursor;
}

std::uint64_t restore_backend(Backend& backend, const std::string& path) {
  core::RuntimeState* state = backend.runtime_state();
  if (state == nullptr)
    throw std::logic_error("restore_backend: backend '" + backend.name() +
                           "' does not expose its runtime state");
  std::uint64_t cursor = 0;
  if (!core::load_state(path, *state, cursor))
    throw std::runtime_error("restore_backend: cannot read '" + path + "'");
  return cursor;
}

ServingStats ServingEngine::stats() const {
  // Store counters first: the backend's store has its own lock, and the
  // query touches no engine state guarded by mu_.
  graph::VertexStoreStats store = backend_.store_stats();
  util::MutexLock lk(mu_);
  ServingStats s;
  s.store = store;
  s.num_requests = latencies_.size();
  s.num_batches = batches_.size();
  s.peak_parallel_batches = peak_executing_;
  s.peak_in_flight_batches = peak_in_flight_;
  s.peak_queue_depth = peak_queue_depth_;
  s.num_shed = shed_;
  s.num_expired = expired_;
  s.num_failed = failed_;
  s.degrade_steps = degrade_steps_;
  s.fault_retries = fault_retries_;
  s.retune_steps = retune_steps_;
  // Live knob values: under online autotune these move at quiescent
  // points, and this read (under mu_) is how callers observe them.
  s.max_batch = opts_.max_batch;
  s.max_wait_s = opts_.max_wait_s;
  s.stage_profile = profiler_.snapshot();
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    s.p50_stage_s[k] = percentile_of(stage_samples_[k], 0.50);
    s.p95_stage_s[k] = percentile_of(stage_samples_[k], 0.95);
  }
  // Under mu_ so a concurrent degradation step (which flips under mu_)
  // cannot race this read.
  s.precision = backend_.precision();
  // Idle engine (or every batch still in flight): all-zero stats rather
  // than 0/0 = NaN percentiles and means. percentile_of itself returns 0
  // on an empty sample set, but the explicit gate keeps the contract
  // obvious and guards mean_batch_size's division too.
  if (latencies_.empty() || batches_.empty()) return s;

  s.p50_latency_s = percentile_of(latencies_, 0.50);
  s.p95_latency_s = percentile_of(latencies_, 0.95);
  s.p99_latency_s = percentile_of(latencies_, 0.99);
  s.max_latency_s = percentile_of(latencies_, 1.0);
  s.p50_queue_wait_s = percentile_of(queue_waits_, 0.50);
  s.p95_queue_wait_s = percentile_of(queue_waits_, 0.95);
  s.p50_service_s = percentile_of(services_, 0.50);
  s.p95_service_s = percentile_of(services_, 0.95);

  const double span = last_done_s_ - first_submit_s_;
  s.throughput_rps =
      span > 0.0 ? static_cast<double>(latencies_.size()) / span : 0.0;
  s.mean_batch_size = static_cast<double>(latencies_.size()) /
                      static_cast<double>(batches_.size());
  return s;
}

std::vector<double> ServingEngine::request_latency_s() const {
  util::MutexLock lk(mu_);
  return latencies_;
}

std::vector<graph::BatchRange> ServingEngine::batch_log() const {
  util::MutexLock lk(mu_);
  return batches_;
}

std::vector<OutcomeRecord> ServingEngine::outcome_log() const {
  util::MutexLock lk(mu_);
  return outcomes_;
}

std::vector<TuningEvent> ServingEngine::tuning_log() const {
  util::MutexLock lk(mu_);
  return tuning_log_;
}

std::string ServingEngine::last_error() const {
  util::MutexLock lk(mu_);
  return last_error_;
}

}  // namespace tgnn::runtime
