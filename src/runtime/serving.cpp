#include "runtime/serving.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "runtime/stream_result.hpp"
#include "util/check.hpp"

namespace tgnn::runtime {

namespace {

/// Lanes actually usable: opts.workers clamped to the backend's lane count
/// (1 when the backend has no concurrent contract).
std::size_t resolve_workers(const ServingOptions& opts,
                            const ConcurrentBackend* cb) {
  if (opts.workers <= 1 || cb == nullptr) return 1;
  return std::min(opts.workers, cb->lanes());
}

/// True when no id is marked in the conflict ledger.
bool disjoint(const std::vector<graph::NodeId>& ids,
              const std::vector<std::uint32_t>& marks) {
  return std::all_of(ids.begin(), ids.end(),
                     [&](graph::NodeId v) { return marks[v] == 0; });
}

/// The batch's WRITE footprint: its edge endpoints, deduplicated, straight
/// off the immutable stream (safe to compute any time).
void write_footprint(const graph::TemporalGraph& g,
                     const graph::BatchRange& range,
                     std::vector<graph::NodeId>& wfp) {
  wfp.clear();
  for (const auto& e : g.edges(range)) {
    wfp.push_back(e.src);
    wfp.push_back(e.dst);
  }
  std::sort(wfp.begin(), wfp.end());
  wfp.erase(std::unique(wfp.begin(), wfp.end()), wfp.end());
}

}  // namespace

void audit_disjoint_footprints(
    std::span<const std::span<const graph::NodeId>> footprints) {
  std::unordered_set<graph::NodeId> seen;
  std::size_t total = 0;
  for (const auto& fp : footprints) total += fp.size();
  seen.reserve(total);
  for (const auto& fp : footprints)
    for (const graph::NodeId v : fp)
      TGNN_CHECK(seen.insert(v).second,
                 "hazard audit: vertex " + std::to_string(v) +
                     " appears in two in-flight footprints");
}

void ServingEngine::audit_in_flight_footprints() const {
  std::vector<std::span<const graph::NodeId>> occupied;
  occupied.reserve(slot_meta_.size());
  for (const SlotMeta& meta : slot_meta_)
    if (!meta.wfp.empty()) occupied.push_back(meta.wfp);
  // Cross-check the occupancy notion against the free-slot list before the
  // disjointness pass: every slot is either free or holds a footprint.
  TGNN_CHECK(occupied.size() + free_lanes_.size() == slot_meta_.size(),
             "hazard audit: occupied slots + free slots != pipeline depth");
  audit_disjoint_footprints(occupied);
}

ServingEngine::ServingEngine(Backend& backend, ServingOptions opts)
    : backend_(backend),
      concurrent_(dynamic_cast<ConcurrentBackend*>(&backend)),
      staged_(opts.pipelined ? dynamic_cast<StagedBackend*>(&backend)
                             : nullptr),
      opts_(opts),
      workers_(resolve_workers(opts, concurrent_)),
      pool_(1 + (workers_ > 1 ? workers_ : 0) +
            (opts.pipelined ? core::kNumStages : 0)) {
  if (opts_.max_batch == 0)
    throw std::invalid_argument("ServingEngine: max_batch must be > 0");
  if (opts_.queue_capacity == 0)
    throw std::invalid_argument("ServingEngine: queue_capacity must be > 0");
  if (opts_.workers > 1 && concurrent_ == nullptr)
    throw std::invalid_argument(
        "ServingEngine: workers > 1 requires a ConcurrentBackend "
        "(e.g. \"sharded-cpu\"); backend '" +
        backend_.name() + "' is not one");
  if (opts_.pipelined) {
    if (staged_ == nullptr)
      throw std::invalid_argument(
          "ServingEngine: pipelined requires a StagedBackend "
          "(cpu | cpu-mt | sharded-cpu); backend '" +
          backend_.name() + "' is not one");
    if (opts_.workers > 1)
      throw std::invalid_argument(
          "ServingEngine: pipelined and workers > 1 are mutually exclusive "
          "(a staged sharded backend composes its lanes as pipeline slots)");
    if (opts_.pipeline_depth == 0)
      throw std::invalid_argument(
          "ServingEngine: pipeline_depth must be > 0");
    // A backend without internally synchronized cross-batch reads cannot
    // run relaxed admission safely — track read footprints regardless of
    // the requested policy (which also makes execution deterministic).
    track_reads_ = opts_.deterministic || !staged_->race_free_reads();
    staged_->prepare_pipeline(opts_.pipeline_depth, opts_.max_batch);

    // Conflict ledger + slot pool + inter-stage FIFOs (capacity 1: classic
    // pipeline registers — a stage stalls until its successor drains). The
    // workers don't exist yet, but initializing the guarded ledger under
    // the lock keeps every write inside the capability.
    const auto& g = backend_.dataset().graph;
    {
      util::MutexLock lk(mu_);
      write_marks_.assign(g.num_nodes(), 0);
      full_marks_.assign(g.num_nodes(), 0);
      for (std::size_t s = opts_.pipeline_depth; s-- > 0;)
        free_lanes_.push_back(s);
      slot_meta_.assign(opts_.pipeline_depth, SlotMeta{});
    }
    stage_q_.reserve(core::kNumStages);
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      stage_q_.push_back(std::make_unique<StageChannel<std::size_t>>(1));
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      pool_.submit([this, k] { stage_worker(k); });
  }
  pool_.submit([this] { scheduler_loop(); });
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::stop() {
  {
    util::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  cv_state_.notify_all();  // release submitters blocked on queue capacity
  // The scheduler flushes and completes everything still queued or
  // mid-pipeline (next_batch keeps handing out batches until the queue is
  // empty), closes the stage FIFOs, and the workers drain them — so this
  // returns only after every submitted request has been served.
  pool_.wait_idle();
}

void ServingEngine::submit(std::size_t edge_index) {
  util::MutexLock lk(mu_);
  if (have_origin_ && edge_index != next_index_)
    throw std::invalid_argument(
        "ServingEngine::submit: requests must arrive in stream order (got " +
        std::to_string(edge_index) + ", expected " +
        std::to_string(next_index_) + ")");
  while (!stop_ && queue_.size() >= opts_.queue_capacity) cv_state_.wait(lk);
  if (stop_)
    throw std::logic_error("ServingEngine::submit: engine is stopped");
  have_origin_ = true;
  next_index_ = edge_index + 1;
  const double now = clock_.seconds();
  if (first_submit_s_ < 0.0) first_submit_s_ = now;
  queue_.push_back({edge_index, now});
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  cv_submit_.notify_all();
}

void ServingEngine::drain() {
  util::MutexLock lk(mu_);
  // Force-flush whatever is pending instead of letting a partial batch sit
  // out the remainder of its max_wait deadline.
  if (!queue_.empty()) {
    flush_ = true;
    cv_submit_.notify_all();
  }
  while (!queue_.empty() || in_flight_ != 0) cv_state_.wait(lk);
}

bool ServingEngine::next_batch(util::MutexLock& lk, graph::BatchRange& range,
                               std::vector<double>& arrivals) {
  while (!stop_ && queue_.empty()) cv_submit_.wait(lk);
  if (queue_.empty()) return false;  // only reachable when stopping
  // Coalesce: hold the batch open until it is full, the oldest pending
  // request hits the flush deadline, or a drain/stop forces a flush.
  while (!stop_ && !flush_ && queue_.size() < opts_.max_batch) {
    const double age = clock_.seconds() - queue_.front().arrival_s;
    const double remaining = opts_.max_wait_s - age;
    if (remaining <= 0.0) break;
    cv_submit_.wait_for(lk, std::chrono::duration<double>(remaining));
  }

  const std::size_t n = std::min(queue_.size(), opts_.max_batch);
  // Submission order is stream order, so the first n pending requests are
  // a contiguous chronological range.
  range = {queue_.front().index, queue_.front().index + n};
  arrivals.clear();
  arrivals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    arrivals.push_back(queue_.front().arrival_s);
    queue_.pop_front();
  }
  if (queue_.empty()) flush_ = false;  // forced flush fully served
  ++in_flight_;                        // formed => counted until completed
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  cv_state_.notify_all();  // queue space freed for blocked submitters
  return true;
}

void ServingEngine::record_batch(const std::vector<double>& arrivals,
                                 double dispatch_s, double service_s) {
  const double done = clock_.seconds();
  for (double a : arrivals) {
    const double wait = dispatch_s - a;
    latencies_.push_back(wait + service_s);
    queue_waits_.push_back(wait);
    services_.push_back(service_s);
  }
  last_done_s_ = std::max(last_done_s_, done);
  TGNN_DCHECK(in_flight_ > 0, "batch completion with none in flight");
  --in_flight_;
  cv_state_.notify_all();
}

void ServingEngine::scheduler_loop() {
  if (staged_ != nullptr) {
    scheduler_loop_pipelined();
    return;
  }
  if (workers_ > 1) {
    scheduler_loop_parallel();
    return;
  }
  graph::BatchRange range;
  std::vector<double> arrivals;
  util::MutexLock lk(mu_);
  while (next_batch(lk, range, arrivals)) {
    batches_.push_back(range);
    executing_ = 1;
    peak_executing_ = std::max(peak_executing_, executing_);
    lk.unlock();
    const double dispatch_s = clock_.seconds();
    const BatchOutput out = backend_.process_batch(range);
    lk.lock();
    executing_ = 0;
    record_batch(arrivals, dispatch_s, out.latency_s);
  }
}

void ServingEngine::scheduler_loop_parallel() {
  ConcurrentBackend& cb = *concurrent_;
  const auto& g = backend_.dataset().graph;

  graph::BatchRange range;
  std::vector<double> arrivals;
  std::vector<graph::NodeId> wfp, rfp;
  util::MutexLock lk(mu_);
  write_marks_.assign(g.num_nodes(), 0);
  full_marks_.assign(g.num_nodes(), 0);
  free_lanes_.clear();
  for (std::size_t l = 0; l < workers_; ++l) free_lanes_.push_back(l);
  while (next_batch(lk, range, arrivals)) {
    write_footprint(g, range, wfp);

    // Head-of-line admission, stage 1: a free lane, and our writes touch
    // nothing any in-flight batch reads or writes. In-flight work only
    // shrinks while we wait (this thread is the only dispatcher), so the
    // predicate is stable once satisfied.
    while (free_lanes_.empty() || !disjoint(wfp, full_marks_))
      cv_state_.wait(lk);

    // Stage 2 (deterministic mode): the READ footprint — sampled neighbors
    // of our endpoints. Stage 1 guarantees no in-flight batch writes our
    // endpoints, so their neighbor rows are quiescent and reading them
    // off-lock is safe. Dispatch once no in-flight batch writes anything
    // we will read; the result is bit-identical to serial execution.
    if (opts_.deterministic) {
      lk.unlock();
      cb.read_footprint(range, rfp);
      lk.lock();
      while (!disjoint(rfp, write_marks_)) cv_state_.wait(lk);
    } else {
      rfp.clear();
    }

    const std::size_t lane = free_lanes_.back();
    free_lanes_.pop_back();
    for (graph::NodeId v : wfp) {
      ++write_marks_[v];
      ++full_marks_[v];
    }
    for (graph::NodeId v : rfp) ++full_marks_[v];
    batches_.push_back(range);
    ++executing_;
    peak_executing_ = std::max(peak_executing_, executing_);
    const double dispatch_s = clock_.seconds();

    lk.unlock();
    pool_.submit([this, &cb, lane, range, wfp, rfp, dispatch_s,
                  batch_arrivals = arrivals] {
      const BatchOutput out = cb.process_batch_on(lane, range);
      util::MutexLock done_lk(mu_);
      for (graph::NodeId v : wfp) {
        TGNN_DCHECK(write_marks_[v] > 0, "write-mark release underflow");
        --write_marks_[v];
        --full_marks_[v];
      }
      for (graph::NodeId v : rfp) --full_marks_[v];
      free_lanes_.push_back(lane);
      --executing_;
      record_batch(batch_arrivals, dispatch_s, out.latency_s);
    });
    lk.lock();
  }
}

void ServingEngine::scheduler_loop_pipelined() {
  // The admitter of the staged dataflow pipeline. Micro-batches are formed
  // in stream order exactly as in serial mode; each then enters the
  // four-stage pipeline once the hazard check clears, and the stage
  // workers carry it MemoryUpdate -> NeighborGather -> GnnCompute ->
  // Decode over the bounded StageChannels. Because admission is
  // head-of-line and every stage worker is serial, batches traverse every
  // stage in stream order — combined with write-footprint disjointness
  // this keeps per-vertex state writes chronological, and with read
  // tracking (track_reads_) no in-flight batch ever observes another's
  // effects: bit-identical to the serial path.
  StagedBackend& sb = *staged_;
  const auto& g = backend_.dataset().graph;

  graph::BatchRange range;
  std::vector<double> arrivals;
  std::vector<graph::NodeId> wfp, rfp;
  util::MutexLock lk(mu_);
  while (next_batch(lk, range, arrivals)) {
    write_footprint(g, range, wfp);

    // Admission, stage 1: a free pipeline slot, and our writes touch
    // nothing any in-flight batch reads or writes. In-flight work only
    // shrinks while we wait (this thread is the only admitter), so the
    // predicate is stable once satisfied.
    while (free_lanes_.empty() || !disjoint(wfp, full_marks_))
      cv_state_.wait(lk);

    // Admission, stage 2 (read tracking): the READ footprint — sampled
    // neighbors of our endpoints. Stage 1 guarantees no in-flight batch
    // writes our endpoints, so their neighbor rows are quiescent and
    // reading them off-lock is safe. Enter once no in-flight batch writes
    // anything we will read.
    if (track_reads_) {
      lk.unlock();
      sb.read_footprint(range, rfp);
      lk.lock();
      while (!disjoint(rfp, write_marks_)) cv_state_.wait(lk);
    } else {
      rfp.clear();
    }

    const std::size_t slot = free_lanes_.back();
    free_lanes_.pop_back();
    for (graph::NodeId v : wfp) {
      ++write_marks_[v];
      ++full_marks_[v];
    }
    for (graph::NodeId v : rfp) ++full_marks_[v];
    batches_.push_back(range);
    ++executing_;
    peak_executing_ = std::max(peak_executing_, executing_);
    // Swap, don't copy: the admission loop rebuilds wfp/rfp/arrivals from
    // scratch each iteration, and this runs under the engine-wide mutex.
    SlotMeta& meta = slot_meta_[slot];
    meta.wfp.swap(wfp);
    meta.rfp.swap(rfp);
    meta.arrivals.swap(arrivals);
    meta.dispatch_s = clock_.seconds();
    if constexpr (util::kCheckedBuild) audit_in_flight_footprints();

    lk.unlock();
    // Out-of-core prefetch, one stage early: the admitted batch's write
    // footprint (its endpoints) and — when read tracking already computed
    // it — the rows it will read are faulted in now, while predecessor
    // batches still occupy the pipeline ahead of it. No-op on an
    // all-resident store.
    sb.prefetch_rows(meta.wfp);
    if (!meta.rfp.empty()) sb.prefetch_rows(meta.rfp);
    sb.begin_batch(slot, range);   // reads only the immutable stream
    stage_q_[0]->push(slot);       // stalls while the first stage is busy
    lk.lock();
  }
  // Stream over (stop with an empty queue): close the pipe; the close
  // cascades stage by stage once each worker has drained its input, so
  // everything mid-pipeline still completes in order.
  stage_q_[0]->close();
}

void ServingEngine::stage_worker(std::size_t k) {
  StagedBackend& sb = *staged_;
  while (auto slot = stage_q_[k]->pop()) {
    sb.run_stage(static_cast<core::Stage>(k), *slot);
    if (k + 1 < core::kNumStages) {
      stage_q_[k + 1]->push(*slot);
      continue;
    }
    // Decode done: the batch's writes are committed — release its
    // footprint marks and slot, and account the request latencies.
    // Service time spans admission to completion (inter-stage queueing
    // included), so percentiles describe what a request actually saw.
    sb.finish_batch(*slot);
    util::MutexLock done_lk(mu_);
    SlotMeta& meta = slot_meta_[*slot];
    for (graph::NodeId v : meta.wfp) {
      TGNN_DCHECK(write_marks_[v] > 0, "write-mark release underflow");
      --write_marks_[v];
      --full_marks_[v];
    }
    for (graph::NodeId v : meta.rfp) --full_marks_[v];
    record_batch(meta.arrivals, meta.dispatch_s,
                 clock_.seconds() - meta.dispatch_s);
    // Emptying the meta is what marks the slot free for the hazard audit's
    // occupancy notion — do it before parking the slot.
    meta.wfp.clear();
    meta.rfp.clear();
    meta.arrivals.clear();
    free_lanes_.push_back(*slot);
    --executing_;
  }
  if (k + 1 < core::kNumStages) stage_q_[k + 1]->close();
}

ServingStats ServingEngine::stats() const {
  // Store counters first: the backend's store has its own lock, and the
  // query touches no engine state guarded by mu_.
  graph::VertexStoreStats store = backend_.store_stats();
  util::MutexLock lk(mu_);
  ServingStats s;
  s.store = store;
  s.num_requests = latencies_.size();
  s.num_batches = batches_.size();
  s.peak_parallel_batches = peak_executing_;
  s.peak_in_flight_batches = peak_in_flight_;
  s.peak_queue_depth = peak_queue_depth_;
  // Idle engine (or every batch still in flight): all-zero stats rather
  // than 0/0 = NaN percentiles and means. percentile_of itself returns 0
  // on an empty sample set, but the explicit gate keeps the contract
  // obvious and guards mean_batch_size's division too.
  if (latencies_.empty() || batches_.empty()) return s;

  s.p50_latency_s = percentile_of(latencies_, 0.50);
  s.p95_latency_s = percentile_of(latencies_, 0.95);
  s.p99_latency_s = percentile_of(latencies_, 0.99);
  s.max_latency_s = percentile_of(latencies_, 1.0);
  s.p50_queue_wait_s = percentile_of(queue_waits_, 0.50);
  s.p95_queue_wait_s = percentile_of(queue_waits_, 0.95);
  s.p50_service_s = percentile_of(services_, 0.50);
  s.p95_service_s = percentile_of(services_, 0.95);

  const double span = last_done_s_ - first_submit_s_;
  s.throughput_rps =
      span > 0.0 ? static_cast<double>(latencies_.size()) / span : 0.0;
  s.mean_batch_size = static_cast<double>(latencies_.size()) /
                      static_cast<double>(batches_.size());
  return s;
}

std::vector<double> ServingEngine::request_latency_s() const {
  util::MutexLock lk(mu_);
  return latencies_;
}

std::vector<graph::BatchRange> ServingEngine::batch_log() const {
  util::MutexLock lk(mu_);
  return batches_;
}

}  // namespace tgnn::runtime
