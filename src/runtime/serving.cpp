#include "runtime/serving.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "runtime/stream_result.hpp"

namespace tgnn::runtime {

ServingEngine::ServingEngine(Backend& backend, ServingOptions opts)
    : backend_(backend), opts_(opts) {
  if (opts_.max_batch == 0)
    throw std::invalid_argument("ServingEngine: max_batch must be > 0");
  if (opts_.queue_capacity == 0)
    throw std::invalid_argument("ServingEngine: queue_capacity must be > 0");
  pool_.submit([this] { scheduler_loop(); });
}

ServingEngine::~ServingEngine() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  pool_.wait_idle();
}

void ServingEngine::submit(std::size_t edge_index) {
  std::unique_lock lk(mu_);
  if (have_origin_ && edge_index != next_index_)
    throw std::invalid_argument(
        "ServingEngine::submit: requests must arrive in stream order (got " +
        std::to_string(edge_index) + ", expected " +
        std::to_string(next_index_) + ")");
  cv_state_.wait(lk, [this] { return queue_.size() < opts_.queue_capacity; });
  have_origin_ = true;
  next_index_ = edge_index + 1;
  const double now = clock_.seconds();
  if (first_submit_s_ < 0.0) first_submit_s_ = now;
  queue_.push_back({edge_index, now});
  cv_submit_.notify_all();
}

void ServingEngine::drain() {
  std::unique_lock lk(mu_);
  // Force-flush whatever is pending instead of letting a partial batch sit
  // out the remainder of its max_wait deadline.
  if (!queue_.empty()) {
    flush_ = true;
    cv_submit_.notify_all();
  }
  cv_state_.wait(lk, [this] { return queue_.empty() && !busy_; });
}

void ServingEngine::scheduler_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_submit_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Coalesce: hold the batch open until it is full, the oldest pending
    // request hits the flush deadline, or a drain/stop forces a flush.
    while (!stop_ && !flush_ && queue_.size() < opts_.max_batch) {
      const double age = clock_.seconds() - queue_.front().arrival_s;
      const double remaining = opts_.max_wait_s - age;
      if (remaining <= 0.0) break;
      cv_submit_.wait_for(lk, std::chrono::duration<double>(remaining));
    }

    const std::size_t n = std::min(queue_.size(), opts_.max_batch);
    // Submission order is stream order, so the first n pending requests are
    // a contiguous chronological range.
    const graph::BatchRange range{queue_.front().index,
                                  queue_.front().index + n};
    std::vector<double> arrivals;
    arrivals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      arrivals.push_back(queue_.front().arrival_s);
      queue_.pop_front();
    }
    if (queue_.empty()) flush_ = false;  // forced flush fully served
    busy_ = true;
    cv_state_.notify_all();  // queue space freed for blocked submitters

    lk.unlock();
    const double dispatch_s = clock_.seconds();
    const BatchOutput out = backend_.process_batch(range);
    lk.lock();

    const double done = clock_.seconds();
    for (double a : arrivals)
      latencies_.push_back((dispatch_s - a) + out.latency_s);
    batches_.push_back(range);
    last_done_s_ = done;
    busy_ = false;
    cv_state_.notify_all();
  }
}

ServingStats ServingEngine::stats() const {
  std::lock_guard lk(mu_);
  ServingStats s;
  s.num_requests = latencies_.size();
  s.num_batches = batches_.size();
  if (latencies_.empty()) return s;

  s.p50_latency_s = percentile_of(latencies_, 0.50);
  s.p95_latency_s = percentile_of(latencies_, 0.95);
  s.p99_latency_s = percentile_of(latencies_, 0.99);
  s.max_latency_s = percentile_of(latencies_, 1.0);

  const double span = last_done_s_ - first_submit_s_;
  s.throughput_rps =
      span > 0.0 ? static_cast<double>(latencies_.size()) / span : 0.0;
  s.mean_batch_size = static_cast<double>(latencies_.size()) /
                      static_cast<double>(batches_.size());
  return s;
}

std::vector<double> ServingEngine::request_latency_s() const {
  std::lock_guard lk(mu_);
  return latencies_;
}

std::vector<graph::BatchRange> ServingEngine::batch_log() const {
  std::lock_guard lk(mu_);
  return batches_;
}

}  // namespace tgnn::runtime
