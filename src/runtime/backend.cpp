#include "runtime/backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include <omp.h>

#include "baselines/apan.hpp"
#include "baselines/cpu_runner.hpp"
#include "fpga/accelerator.hpp"
#include "runtime/sharded_backend.hpp"
#include "util/stopwatch.hpp"

namespace tgnn::runtime {

BackendOptions::BackendOptions() : gpu(baselines::titan_xp()) {}

namespace {

/// "cpu" / "cpu-mt": measured execution of the reference engine, wrapping
/// the OpenMP CpuRunner baseline. Also a StagedBackend: pipeline slots are
/// engine StageContexts; the engine holds no per-batch state of its own, so
/// stage calls on distinct slots are safe from different stage workers as
/// long as the scheduler keeps in-flight footprints disjoint (reads too —
/// race_free_reads() stays false: there are no shard locks here).
class CpuBackend final : public Backend, public StagedBackend {
 public:
  CpuBackend(std::string key, const core::TgnModel& model,
             const data::Dataset& ds, int threads, const BackendOptions& opts)
      : key_(std::move(key)), ds_(ds),
        runner_(model, ds, threads, opts.memory_budget), opts_(opts) {
    // opts.precision arrives fully resolved from make_backend (key suffix >
    // options > ModelConfig); kFp32 is a cheap no-op on a fresh engine.
    runner_.engine().set_precision(opts.precision);
  }

  BatchOutput process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extras) override {
    runner_.bind_threads();
    BatchOutput out;
    Stopwatch sw;
    out.functional = runner_.engine().process_batch(r, extras, &out.parts);
    out.latency_s = sw.seconds();
    return out;
  }

  void warmup(const graph::BatchRange& range) override {
    runner_.engine().reserve_workspace(opts_.max_batch_hint);
    runner_.engine().warmup(range, opts_.warmup_batch);
  }

  void reset() override { runner_.engine().reset(); }

  [[nodiscard]] std::string name() const override { return key_; }
  [[nodiscard]] std::string describe() const override {
    std::string d =
        "host CPU, " + std::to_string(runner_.threads()) + " thread(s)";
    if (opts_.precision != kernels::Precision::kFp32)
      d += std::string(", ") + kernels::precision_name(opts_.precision);
    if (opts_.memory_budget != 0)
      d += ", resident budget " +
           std::to_string(opts_.memory_budget / (1024 * 1024)) + " MiB";
    return d + " (measured)";
  }
  [[nodiscard]] const data::Dataset& dataset() const override { return ds_; }

  [[nodiscard]] graph::VertexStoreStats store_stats() const override {
    return runner_.engine().state().store_stats();
  }

  bool set_precision(kernels::Precision p) override {
    runner_.engine().set_precision(p);
    return true;
  }
  [[nodiscard]] kernels::Precision precision() const override {
    return runner_.engine().precision();
  }

  [[nodiscard]] core::RuntimeState* runtime_state() override {
    return &runner_.engine().state();
  }

  // ---- StagedBackend --------------------------------------------------
  void prepare_pipeline(std::size_t slots,
                        std::size_t max_batch_edges) override {
    slots_.clear();
    slots_.resize(slots);
    for (auto& ctx : slots_)
      runner_.engine().reserve_context(ctx, max_batch_edges);
  }
  [[nodiscard]] std::size_t pipeline_slots() const override {
    return slots_.size();
  }
  void begin_batch(std::size_t slot, const graph::BatchRange& r) override {
    runner_.engine().stage_begin(slots_.at(slot), r);
  }
  void run_stage(core::Stage s, std::size_t slot) override {
    // Split the runner's thread budget across the stages that can actually
    // run concurrently (never more than there are slots): binding the full
    // count in every stage worker would oversubscribe the machine up to
    // kNumStages times over (the same reason sharded lanes pin to 1).
    // omp_set_num_threads is per-calling-thread, and thread count never
    // moves a bit.
    const auto concurrent = static_cast<int>(
        std::min(slots_.size(), core::kNumStages));
    omp_set_num_threads(
        std::max(1, runner_.threads() / std::max(1, concurrent)));
    runner_.engine().stage_run(s, slots_.at(slot));
  }
  void finish_batch(std::size_t slot) override {
    (void)runner_.engine().stage_finish(slots_.at(slot));
  }
  void abort_batch(std::size_t slot) override {
    runner_.engine().stage_abort(slots_.at(slot));
  }
  void read_footprint(const graph::BatchRange& r,
                      std::vector<graph::NodeId>& out) const override {
    runner_.engine().read_footprint(r, out);
  }
  void prefetch_rows(std::span<const graph::NodeId> nodes) override {
    runner_.engine().state().prefetch_rows(nodes);
  }

 private:
  std::string key_;
  const data::Dataset& ds_;
  baselines::CpuRunner runner_;
  BackendOptions opts_;
  std::vector<core::StageContext> slots_;
};

/// "gpu-sim": exact functional numerics from the reference engine, batch
/// latency from the analytic roofline + kernel-launch GPU model — the same
/// functional/timing split the FPGA simulator makes.
class GpuSimBackend final : public Backend {
 public:
  GpuSimBackend(const core::TgnModel& model, const data::Dataset& ds,
                const BackendOptions& opts)
      : engine_(model, ds, /*use_fifo=*/true),
        sim_(opts.gpu, model.config()),
        opts_(opts) {}

  BatchOutput process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extras) override {
    BatchOutput out;
    out.functional = engine_.process_batch(r, extras);
    const std::size_t n_emb = out.functional.nodes.size();
    out.latency_s = sim_.batch_seconds(r.size(), n_emb);
    out.parts = sim_.batch_parts(r.size(), n_emb);
    out.modelled_timing = true;
    return out;
  }

  void warmup(const graph::BatchRange& range) override {
    engine_.reserve_workspace(opts_.max_batch_hint);
    engine_.warmup(range, opts_.warmup_batch);
  }

  void reset() override { engine_.reset(); }

  [[nodiscard]] std::string name() const override { return "gpu-sim"; }
  [[nodiscard]] std::string describe() const override {
    return sim_.spec().name + " (modelled roofline + launch overhead)";
  }
  [[nodiscard]] const data::Dataset& dataset() const override {
    return engine_.dataset();
  }

  [[nodiscard]] core::RuntimeState* runtime_state() override {
    return &engine_.state();
  }

 private:
  core::InferenceEngine engine_;
  baselines::GpuSim sim_;
  BackendOptions opts_;
};

/// "apan": the asynchronous-propagation comparator. Functional output is
/// APAN's own mailbox-attention embedding; latency is the measured
/// synchronous path (mail delivery is asynchronous and excluded).
class ApanBackend final : public Backend {
 public:
  ApanBackend(const core::TgnModel& model, const data::Dataset& ds,
              const BackendOptions& opts)
      : ds_(ds) {
    if (opts.apan != nullptr) {
      apan_ = opts.apan;
    } else {
      baselines::ApanConfig cfg;
      cfg.edge_dim = ds.edge_dim();
      cfg.node_dim = ds.node_dim();
      cfg.emb_dim = model.config().emb_dim;
      owned_ = std::make_unique<baselines::Apan>(cfg, ds, opts.seed);
      apan_ = owned_.get();
    }
  }

  BatchOutput process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extras) override {
    auto res = apan_->process_batch(r, extras);
    BatchOutput out;
    out.functional.nodes = std::move(res.nodes);
    out.functional.embeddings = std::move(res.embeddings);
    out.functional.index = std::move(res.index);
    out.latency_s = res.latency_s;
    return out;
  }

  void warmup(const graph::BatchRange& range) override {
    apan_->fast_forward(range);
  }

  void reset() override { apan_->reset_state(); }

  [[nodiscard]] std::string name() const override { return "apan"; }
  [[nodiscard]] std::string describe() const override {
    return "APAN mailbox attention, K=" +
           std::to_string(apan_->config().mailbox_size) + " (measured)";
  }
  [[nodiscard]] const data::Dataset& dataset() const override { return ds_; }

 private:
  const data::Dataset& ds_;
  baselines::Apan* apan_ = nullptr;
  std::unique_ptr<baselines::Apan> owned_;
};

/// "fpga": the co-designed accelerator — exact functional numerics, latency
/// from the cycle-level reservation-table simulation.
class FpgaBackend final : public Backend {
 public:
  FpgaBackend(const core::TgnModel& model, const data::Dataset& ds,
              const BackendOptions& opts)
      : device_key_(opts.fpga_device), ds_(ds),
        acc_(model, ds, design_for(opts.fpga_device),
             device_for(opts.fpga_device)),
        opts_(opts) {}

  static fpga::DesignConfig design_for(const std::string& dev) {
    if (dev == "u200") return fpga::u200_design();
    if (dev == "zcu104") return fpga::zcu104_design();
    throw std::invalid_argument("fpga backend: unknown device '" + dev +
                                "' (u200 | zcu104)");
  }
  static fpga::FpgaDevice device_for(const std::string& dev) {
    return dev == "u200" ? fpga::alveo_u200() : fpga::zcu104();
  }

  BatchOutput process_batch(const graph::BatchRange& r,
                            std::span<const graph::NodeId> extras) override {
    auto res = acc_.process_batch(r, extras);
    BatchOutput out;
    out.functional = std::move(res.functional);
    out.latency_s = res.latency_s;
    out.modelled_timing = true;
    return out;
  }

  void warmup(const graph::BatchRange& range) override {
    acc_.engine().reserve_workspace(opts_.max_batch_hint);
    acc_.warmup(range);
  }

  void reset() override { acc_.reset(); }

  [[nodiscard]] std::string name() const override { return "fpga"; }
  [[nodiscard]] std::string describe() const override {
    return acc_.device().name + ", " + std::to_string(acc_.design().ncu) +
           " CU @ " + std::to_string(static_cast<int>(acc_.design().freq_mhz)) +
           " MHz (cycle-simulated)";
  }
  [[nodiscard]] const data::Dataset& dataset() const override { return ds_; }

  [[nodiscard]] fpga::Accelerator& accelerator() { return acc_; }

  [[nodiscard]] core::RuntimeState* runtime_state() override {
    return &acc_.engine().state();
  }

 private:
  std::string device_key_;
  const data::Dataset& ds_;
  fpga::Accelerator acc_;
  BackendOptions opts_;
};

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

}  // namespace

std::size_t parse_memory_budget(const std::string& spec,
                                std::size_t total_state_bytes) {
  if (spec.empty())
    throw std::invalid_argument("parse_memory_budget: empty spec");
  std::size_t idx = 0;
  double value = 0.0;
  try {
    value = std::stod(spec, &idx);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_memory_budget: malformed '" + spec +
                                "'");
  }
  if (value < 0.0)
    throw std::invalid_argument("parse_memory_budget: negative '" + spec +
                                "'");
  const std::string unit = spec.substr(idx);
  double scale = 1.0;
  if (unit == "%")
    scale = static_cast<double>(total_state_bytes) / 100.0;
  else if (unit == "k" || unit == "K")
    scale = 1024.0;
  else if (unit == "m" || unit == "M")
    scale = 1024.0 * 1024.0;
  else if (unit == "g" || unit == "G")
    scale = 1024.0 * 1024.0 * 1024.0;
  else if (!unit.empty())
    throw std::invalid_argument("parse_memory_budget: unknown unit '" + unit +
                                "' in '" + spec + "' (k | m | g | %)");
  // Guard the float->size_t cast: stod accepts "nan" (which sails past the
  // negative check) and values like "1e300" that a multiplier pushes to
  // infinity — both are UB to cast. Compare against 2^64 exactly (max
  // size_t rounds UP to it as a double, so >= is the correct exclusion).
  const double bytes = value * scale;
  constexpr double kSizeLimit = 18446744073709551616.0;  // 2^64
  if (!std::isfinite(bytes) || bytes >= kSizeLimit)
    throw std::invalid_argument("parse_memory_budget: '" + spec +
                                "' is not a representable byte count");
  return static_cast<std::size_t>(bytes);
}

ResolvedBackendKey resolve_backend_key(const std::string& key,
                                       kernels::Precision default_precision,
                                       std::size_t total_state_bytes) {
  // Split optional ":"-separated suffixes off the registry key: a numeric
  // mode ("fp32" | "int8" | "bf16") and/or a resident-state budget
  // ("mem=<size>"), e.g. "sharded-cpu:int8:mem=10%".
  ResolvedBackendKey r;
  r.precision = default_precision;
  r.precision_requested = default_precision != kernels::Precision::kFp32;
  auto pos = key.find(':');
  r.base = key.substr(0, pos);
  while (pos != std::string::npos) {
    const auto next = key.find(':', pos + 1);
    const std::string part = key.substr(
        pos + 1, (next == std::string::npos ? key.size() : next) - pos - 1);
    if (part.rfind("mem=", 0) == 0) {
      r.memory_budget = parse_memory_budget(part.substr(4), total_state_bytes);
      r.mem_requested = true;
    } else if (kernels::parse_precision(part, r.precision)) {
      r.precision_requested = true;
    } else {
      throw std::invalid_argument(
          "make_backend: unknown suffix '" + part + "' in key '" + key +
          "' (fp32 | int8 | bf16 | mem=<size>)");
    }
    pos = next;
  }
  // display reflects the EFFECTIVE mode, normalized: "cpu:fp32" -> "cpu",
  // and a default-driven int8 shows up as "cpu:int8" too.
  r.display = r.precision == kernels::Precision::kFp32
                  ? r.base
                  : r.base + ":" + kernels::precision_name(r.precision);
  return r;
}

std::unique_ptr<Backend> make_backend(const std::string& key,
                                      const core::TgnModel& model,
                                      const data::Dataset& ds,
                                      const BackendOptions& opts) {
  // Resolution order for each suffix: key suffix > BackendOptions >
  // ModelConfig (precision only).
  ResolvedBackendKey r = resolve_backend_key(
      key, opts.precision,
      core::RuntimeState::state_bytes(ds.graph.num_nodes(), model.config()));
  BackendOptions eff = opts;
  if (r.mem_requested) eff.memory_budget = r.memory_budget;
  eff.precision = r.precision_requested ? r.precision
                                        : model.config().inference_precision;
  const std::string& base = r.base;
  const bool requested = r.precision_requested;
  const bool mem_requested = r.mem_requested;

  // The display name must track the EFFECTIVE precision, which may have
  // just come from ModelConfig rather than the key.
  const std::string display =
      eff.precision == kernels::Precision::kFp32
          ? base
          : base + ":" + kernels::precision_name(eff.precision);
  if (base == "cpu")
    return std::make_unique<CpuBackend>(display, model, ds, /*threads=*/1,
                                        eff);
  if (base == "cpu-mt")
    return std::make_unique<CpuBackend>(display, model, ds,
                                        resolve_threads(eff.threads), eff);
  if (base == "sharded-cpu")
    return std::make_unique<ShardedCpuBackend>(
        model, ds, static_cast<std::size_t>(resolve_threads(eff.threads)),
        eff);

  // The modelled / comparator platforms have no reduced-precision datapath;
  // an explicitly requested mode there would silently measure the wrong
  // thing. (ModelConfig::inference_precision is not a request — the
  // modelled platforms' reference engines pick it up on their own.) The
  // same goes for a key-requested memory budget: their timing models know
  // nothing about spill latency. An options-level budget is merely ignored
  // — benches set one BackendOptions for mixed platform rows.
  if (requested && eff.precision != kernels::Precision::kFp32)
    throw std::invalid_argument(
        "make_backend: backend '" + base + "' does not support precision '" +
        kernels::precision_name(eff.precision) +
        "' (only cpu | cpu-mt | sharded-cpu run the quantized path)");
  if (mem_requested)
    throw std::invalid_argument(
        "make_backend: backend '" + base +
        "' does not support a memory budget (only cpu | cpu-mt | sharded-cpu "
        "run the out-of-core vertex store)");

  if (base == "gpu-sim") return std::make_unique<GpuSimBackend>(model, ds, eff);
  if (base == "apan") return std::make_unique<ApanBackend>(model, ds, eff);
  if (base == "fpga") return std::make_unique<FpgaBackend>(model, ds, eff);

  std::string registry;
  for (const auto& k : backend_keys())
    registry += (registry.empty() ? "" : " | ") + k;
  throw std::invalid_argument("make_backend: unknown key '" + key +
                              "' (registry: " + registry + ")");
}

const std::vector<std::string>& backend_keys() {
  static const std::vector<std::string> keys = {
      "cpu", "cpu-mt", "sharded-cpu", "gpu-sim", "apan", "fpga"};
  return keys;
}

}  // namespace tgnn::runtime
