// Blocking bounded channel wiring the serving pipeline's stage workers —
// the software analogue of the on-chip FIFOs the paper uses between the
// memory-update unit, the embedding unit, and the decoder. The queueing
// semantics (bounded capacity, producer stalls when full) are
// fpga::Fifo's, reused directly as the contract; this
// wrapper only adds the host-side synchronization the hardware gets for
// free (condition variables instead of ready/valid wires) plus a close()
// for drain-then-shutdown.
#pragma once

#include <optional>

#include "fpga/fifo.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tgnn::runtime {

template <typename T>
class StageChannel {
 public:
  explicit StageChannel(std::size_t capacity) : q_(capacity) {}

  /// Blocks while the channel is full (the upstream stage stalls, exactly
  /// like a hardware producer seeing a full FIFO). Returns false — and
  /// drops `v` — only if the channel was closed.
  bool push(T v) TGNN_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    while (!closed_ && q_.full()) cv_space_.wait(lk);
    if (closed_) return false;
    q_.push(std::move(v));
    cv_data_.notify_one();
    return true;
  }

  /// Blocks while the channel is empty; returns nullopt once it is closed
  /// AND fully drained (in-flight items are always delivered).
  std::optional<T> pop() TGNN_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    while (!closed_ && q_.empty()) cv_data_.wait(lk);
    auto v = q_.pop();
    if (v) cv_space_.notify_one();
    return v;
  }

  /// No further pushes; pending items remain poppable.
  void close() TGNN_EXCLUDES(mu_) {
    {
      util::MutexLock lk(mu_);
      closed_ = true;
    }
    cv_data_.notify_all();
    cv_space_.notify_all();
  }

 private:
  mutable util::Mutex mu_;
  util::CondVar cv_data_;   ///< signals: item available or closed
  util::CondVar cv_space_;  ///< signals: capacity freed or closed
  fpga::Fifo<T> q_ TGNN_GUARDED_BY(mu_);
  bool closed_ TGNN_GUARDED_BY(mu_) = false;
};

}  // namespace tgnn::runtime
