#include "runtime/sharded_backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include <omp.h>

#include "util/stopwatch.hpp"

namespace tgnn::runtime {

ShardedCpuBackend::ShardedCpuBackend(const core::TgnModel& model,
                                     const data::Dataset& ds,
                                     std::size_t lanes,
                                     const BackendOptions& opts)
    : model_(model), ds_(ds), locks_(opts.shards),
      state_(ds.graph.num_nodes(), model.config(), /*use_fifo=*/true),
      opts_(opts) {
  if (lanes == 0)
    throw std::invalid_argument("sharded-cpu: lane count must be >= 1");
  lanes_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    auto engine = std::make_unique<core::InferenceEngine>(model, ds, state_);
    engine->set_shard_locks(&locks_);
    lanes_.push_back(std::move(engine));
  }
}

BatchOutput ShardedCpuBackend::process_batch(
    const graph::BatchRange& r, std::span<const graph::NodeId> extras) {
  return process_batch_on(0, r, extras);
}

BatchOutput ShardedCpuBackend::process_batch_on(
    std::size_t lane, const graph::BatchRange& r,
    std::span<const graph::NodeId> extras) {
  // Serial within the lane: parallelism comes from concurrent lanes, not
  // from intra-batch OpenMP (which would oversubscribe lanes x threads).
  omp_set_num_threads(1);
  BatchOutput out;
  Stopwatch sw;
  out.functional = lanes_.at(lane)->process_batch(r, extras, &out.parts);
  out.latency_s = sw.seconds();
  return out;
}

void ShardedCpuBackend::warmup(const graph::BatchRange& range) {
  for (auto& lane : lanes_) lane->reserve_workspace(opts_.max_batch_hint);
  lanes_[0]->warmup(range, opts_.warmup_batch);
}

void ShardedCpuBackend::reset() { state_.reset(); }

std::string ShardedCpuBackend::describe() const {
  return "host CPU, " + std::to_string(lanes_.size()) + " lane(s) x " +
         std::to_string(num_shards()) + " shard(s), conflict-aware (measured)";
}

void ShardedCpuBackend::read_footprint(const graph::BatchRange& r,
                                       std::vector<graph::NodeId>& out) const {
  out.clear();
  const auto edges = ds_.graph.edges(r);
  // Per unique endpoint, the engine samples neighbors at the vertex's most
  // recent in-batch event time — mirror that exactly so the footprint is a
  // superset of the GNN stage's reads.
  std::unordered_map<graph::NodeId, double> t_event;
  for (const auto& e : edges) {
    for (graph::NodeId v : {e.src, e.dst}) {
      auto [it, inserted] = t_event.try_emplace(v, e.ts);
      if (!inserted) it->second = std::max(it->second, e.ts);
    }
  }
  const std::size_t k = model_.config().num_neighbors;
  std::vector<graph::NeighborHit> hits;
  for (const auto& [v, t] : t_event) {
    state_.neighbors_into(v, t, k, hits);
    for (const auto& h : hits) out.push_back(h.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace tgnn::runtime
