#include "runtime/sharded_backend.hpp"

#include <stdexcept>

#include <omp.h>

#include "util/stopwatch.hpp"

namespace tgnn::runtime {

ShardedCpuBackend::ShardedCpuBackend(const core::TgnModel& model,
                                     const data::Dataset& ds,
                                     std::size_t lanes,
                                     const BackendOptions& opts)
    : model_(model), ds_(ds), locks_(opts.shards),
      state_(ds.graph.num_nodes(), model.config(), /*use_fifo=*/true,
             opts.memory_budget),
      opts_(opts) {
  if (lanes == 0)
    throw std::invalid_argument("sharded-cpu: lane count must be >= 1");
  lanes_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    auto engine = std::make_unique<core::InferenceEngine>(model, ds, state_);
    engine->set_shard_locks(&locks_);
    // Every lane runs the same resolved numeric mode (make_backend already
    // folded key suffix / options / model config). The lanes share the
    // model, so later calls just rewrite the same deterministic snapshot.
    engine->set_precision(opts.precision);
    lanes_.push_back(std::move(engine));
  }
}

BatchOutput ShardedCpuBackend::process_batch(
    const graph::BatchRange& r, std::span<const graph::NodeId> extras) {
  return process_batch_on(0, r, extras);
}

BatchOutput ShardedCpuBackend::process_batch_on(
    std::size_t lane, const graph::BatchRange& r,
    std::span<const graph::NodeId> extras) {
  // Serial within the lane: parallelism comes from concurrent lanes, not
  // from intra-batch OpenMP (which would oversubscribe lanes x threads).
  omp_set_num_threads(1);
  BatchOutput out;
  Stopwatch sw;
  out.functional = lanes_.at(lane)->process_batch(r, extras, &out.parts);
  out.latency_s = sw.seconds();
  return out;
}

void ShardedCpuBackend::warmup(const graph::BatchRange& range) {
  for (auto& lane : lanes_) lane->reserve_workspace(opts_.max_batch_hint);
  lanes_[0]->warmup(range, opts_.warmup_batch);
}

void ShardedCpuBackend::reset() { state_.reset(); }

std::string ShardedCpuBackend::describe() const {
  std::string d = "host CPU, " + std::to_string(lanes_.size()) + " lane(s) x " +
                  std::to_string(num_shards()) + " shard(s), conflict-aware";
  if (opts_.precision != kernels::Precision::kFp32)
    d += std::string(", ") + kernels::precision_name(opts_.precision);
  if (opts_.memory_budget != 0)
    d += ", resident budget " +
         std::to_string(opts_.memory_budget / (1024 * 1024)) + " MiB";
  return d + " (measured)";
}

void ShardedCpuBackend::read_footprint(const graph::BatchRange& r,
                                       std::vector<graph::NodeId>& out) const {
  // The engine's footprint query over the shared state (every lane sees
  // the same state, so lane 0 answers for all of them).
  lanes_[0]->read_footprint(r, out);
}

void ShardedCpuBackend::prepare_pipeline(std::size_t slots,
                                         std::size_t max_batch_edges) {
  slots_.clear();
  slots_.resize(slots);
  for (auto& ctx : slots_) lanes_[0]->reserve_context(ctx, max_batch_edges);
}

void ShardedCpuBackend::begin_batch(std::size_t slot,
                                    const graph::BatchRange& r) {
  lane_of(slot).stage_begin(slots_.at(slot), r);
}

void ShardedCpuBackend::run_stage(core::Stage s, std::size_t slot) {
  // Serial within the stage call, as in process_batch_on: pipeline-level
  // concurrency replaces intra-batch OpenMP.
  omp_set_num_threads(1);
  lane_of(slot).stage_run(s, slots_.at(slot));
}

void ShardedCpuBackend::finish_batch(std::size_t slot) {
  (void)lane_of(slot).stage_finish(slots_.at(slot));
}

void ShardedCpuBackend::abort_batch(std::size_t slot) {
  lane_of(slot).stage_abort(slots_.at(slot));
}

bool ShardedCpuBackend::set_precision(kernels::Precision p) {
  // Caller guarantees quiescence (no batch in flight on any lane); the
  // lanes share one model whose precision caches are rebuilt once and
  // reused by every lane.
  for (auto& lane : lanes_) lane->set_precision(p);
  return true;
}

kernels::Precision ShardedCpuBackend::precision() const {
  return lanes_[0]->precision();
}

}  // namespace tgnn::runtime
