// Online serving on top of a runtime Backend — the piece that turns the
// repo from an offline replayer into a serving-shaped system.
//
// Callers submit individual edge events (stream indices, in chronological
// order — the fraud-detection / recommendation request pattern of §II-A). A
// dedicated scheduler thread coalesces pending requests into micro-batches
// and dispatches them to the backend when either
//   * `max_batch` requests are pending (batch-size cap), or
//   * the oldest pending request has waited `max_wait_s` (latency flush).
//
// With `workers == 1` (the default) the scheduler is a single serial
// executor: batches are dispatched strictly chronologically — the
// state-write ordering Algorithm 1 requires — while still amortizing
// per-batch overhead, exactly the latency/throughput trade the paper
// sweeps in Fig. 5.
//
// With `pipelined` set the backend must implement StagedBackend ("cpu",
// "cpu-mt", "sharded-cpu"): micro-batches are still FORMED and ADMITTED in
// strict stream order, but each admitted batch then flows through the four
// engine stages (core::Stage — MemoryUpdate, NeighborGather, GnnCompute,
// Decode) on dedicated stage-worker threads wired by bounded StageChannels
// (the software port of the paper's inter-module FIFOs, reusing
// fpga::Fifo's stall semantics), so stage k of batch i overlaps stage k-1
// of batch i+1. Admission runs the same conflict ledger as the worker
// mode: a batch enters the pipeline only once its write footprint is
// disjoint from every in-flight batch (and, in deterministic mode or on a
// backend without race-free reads, once nothing in flight writes what it
// will read) — per-vertex state writes stay chronological, and
// deterministic pipelining is bit-identical to the serial path.
//
// With `workers > 1` the backend must implement ConcurrentBackend
// ("sharded-cpu"): micro-batches are still FORMED and DISPATCHED in strict
// stream order, but a batch whose vertex footprint is disjoint from every
// in-flight batch starts executing on a free lane without waiting for its
// predecessors — the parallelism the paper's hardware Updater exploits
// (per-vertex chronological writes, no global serialization). Head-of-line
// admission means any two batches touching a common vertex serialize in
// stream order, so per-vertex state writes stay chronological in every
// mode. Two conflict policies:
//   * default (relaxed): only WRITE footprints (batch endpoints) are kept
//     disjoint; a batch may read a neighbor's memory while another
//     in-flight batch — earlier OR later in stream order — updates it.
//     The read is race-free via shard locks but may observe either the
//     pre- or post-update row (it can see a later batch's write early,
//     not just a stale value).
//   * deterministic: READ footprints (sampled neighbors) are tracked too,
//     so no in-flight batch ever observes another's effects — the served
//     state and embeddings are bit-identical to the serial "cpu" backend.
//
// The submit queue is bounded: what happens when it fills is the
// engine's admission policy (overload behavior under §II-A's bursty
// request arrivals):
//   * kBlock (default): submit() blocks until space frees — backpressure
//     instead of unbounded growth; today's behavior.
//   * kShed: submit() waits at most `shed_wait_s`, then REJECTS the
//     request with a typed RequestOutcome::kShed — the request is consumed
//     (the stream cursor advances past it) and the engine stays
//     responsive instead of propagating the stall upstream.
//   * kDeadline: submit() blocks like kBlock, but a request whose queue
//     wait exceeds `deadline_s` is dropped BEFORE dispatch with
//     RequestOutcome::kExpired — a request that already blew its latency
//     budget is worthless to serve, and dropping it lets the queue clear.
// try_submit() (never blocks) and the timed submit() overload (bounded
// wait, request NOT consumed on timeout) exist for callers that manage
// their own admission.
//
// Under sustained overload the engine can optionally degrade gracefully:
// when the queue stays above `degrade_high` of capacity for
// `degrade_patience` consecutive batch formations it steps the backend's
// numeric mode down one rung (fp32 -> bf16 -> int8, via
// Backend::set_precision at a quiescent point), and steps back up when
// the queue stays below `degrade_low` — trading accuracy for throughput
// exactly along the quantization ladder of the inference path.
//
// Faults: every batch execution runs under a retry envelope. A transient
// util::InjectedFault is retried up to `fault_retries` times with
// exponential backoff; a permanent fault (or exhausted retries, or any
// other exception) fails the BATCH — its requests end in
// RequestOutcome::kFailed, pinned rows are released (StagedBackend::
// abort_batch before Decode, so no partial state commits), the conflict
// ledger is unwound, and the engine keeps serving. Nothing deadlocks and
// per-vertex chronology is preserved: failed batches commit nothing.
//
// Every completed batch also feeds a low-overhead per-stage profiler
// (perf::StageProfiler — EWMA + windowed percentiles over the four
// core::Stage times, gather fan-out, queue depth), exposed via
// ServingStats::stage_profile and the per-stage percentile fields. With
// `autotune_online` set the engine additionally retunes itself from that
// live profile: every `retune_interval` batch formations it asks the
// calibrated SoftwarePerfModel (perf/auto_tuner.hpp) whether a different
// max_batch would beat the current one by at least `retune_margin`, and
// if so flips max_batch (and max_wait_s, re-derived from the predicted
// batch service time) at the SAME quiescent point the precision ladder
// uses — the batch just formed is the sole in-flight work. One knob per
// quiescent point: a formation that stepped the precision ladder (or sits
// mid-pressure-walk) never also resizes batches, and reversing the
// previous resize direction needs two full intervals of evidence — the
// no-flip-flop contract. In deterministic mode the flips stay
// bit-identity-safe: batch boundaries move, but every batch still executes
// in stream order against quiescent state. Flips are journaled in
// tuning_log() for benches and tests.
//
// Per-request latency = queueing wait (measured) + batch service latency
// (the backend's measured or modelled latency_s), so percentiles are
// meaningful for simulated platforms too; the two components are also
// tracked separately (ServingStats queue/service percentiles) so batching
// delay and compute are separable, as in the paper's Fig. 5 trade.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "perf/stage_profile.hpp"
#include "runtime/backend.hpp"
#include "runtime/stage_channel.hpp"
#include "runtime/stream_result.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace tgnn::runtime {

/// What submit() does when the bounded queue is full (see file comment).
enum class AdmissionPolicy : std::uint8_t {
  kBlock = 0,     ///< block until space frees (backpressure)
  kShed = 1,      ///< wait shed_wait_s, then reject with kShed
  kDeadline = 2,  ///< block, but drop requests whose queue wait exceeds
                  ///< deadline_s before dispatch (kExpired)
};

struct ServingOptions {
  std::size_t max_batch = 256;       ///< micro-batch size cap
  double max_wait_s = 2e-3;          ///< oldest-request age that forces a flush
  std::size_t queue_capacity = 4096; ///< bounded queue (submit backpressure)
  std::size_t workers = 1;   ///< parallel dispatch lanes; > 1 requires a
                             ///< ConcurrentBackend (clamped to its lanes())
  bool deterministic = false;  ///< track read footprints too: bit-identical
                               ///< to serial execution (workers > 1 or
                               ///< pipelined only)
  bool pipelined = false;  ///< stage-level cross-batch overlap; requires a
                           ///< StagedBackend, mutually exclusive with
                           ///< workers > 1
  std::size_t pipeline_depth = core::kNumStages;  ///< max in-flight batches
                                                  ///< (StageContext slots)

  // ---- Overload admission (see file comment) --------------------------
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  double shed_wait_s = 0.0;  ///< kShed: bounded wait before rejecting
  double deadline_s = 10e-3; ///< kDeadline: queue-wait budget before a
                             ///< pending request is dropped undispatched

  // ---- Graceful degradation under sustained overload ------------------
  bool degrade_under_overload = false;  ///< step fp32->bf16->int8 when the
                                        ///< queue stays pressured
  double degrade_high = 0.75;  ///< queue fill ratio that counts as pressure
  double degrade_low = 0.25;   ///< queue fill ratio that counts as clear
  std::size_t degrade_patience = 4;  ///< consecutive pressured (clear) batch
                                     ///< formations before stepping down (up)

  // ---- Fault handling -------------------------------------------------
  std::size_t fault_retries = 3;   ///< transient-fault retries per batch
  double retry_backoff_s = 1e-4;   ///< backoff base (doubles per attempt)

  // ---- Online auto-tuning (see file comment) --------------------------
  bool autotune_online = false;  ///< retune max_batch / max_wait_s at
                                 ///< quiescent points from the live profile
  std::size_t retune_interval = 32;  ///< batch formations between retune
                                     ///< evaluations (the hysteresis window)
  double retune_margin = 1.2;  ///< min predicted throughput gain to flip
  std::size_t retune_min_batch = 8;     ///< bounds of the online batch search
  std::size_t retune_max_batch = 1024;
};

struct ServingStats {
  std::size_t num_requests = 0;
  std::size_t num_batches = 0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// End-to-end latency split: time spent waiting for the micro-batch to
  /// form/dispatch vs the batch's service (compute) time.
  double p50_queue_wait_s = 0.0;
  double p95_queue_wait_s = 0.0;
  double p50_service_s = 0.0;
  double p95_service_s = 0.0;
  double throughput_rps = 0.0;  ///< requests per wall-clock second
  double mean_batch_size = 0.0;
  /// Most batches ever executing at once (1 in serial mode; > 1 proves
  /// disjoint-footprint batches actually overlapped — across lanes in
  /// worker mode, across stages in pipelined mode).
  std::size_t peak_parallel_batches = 0;
  /// Occupancy gauges: most batches ever formed-but-incomplete (pipeline /
  /// lane occupancy incl. batches waiting on the hazard check) and most
  /// requests ever pending in the submit queue — what makes pipelined vs
  /// serial occupancy observable next to peak_parallel_batches.
  std::size_t peak_in_flight_batches = 0;
  std::size_t peak_queue_depth = 0;
  /// Overload / fault disposition counters. num_requests counts SERVED
  /// requests only (they alone have latency samples); every submitted
  /// request ends up in exactly one of served/shed/expired/failed.
  std::size_t num_shed = 0;      ///< rejected at admission (kShed)
  std::size_t num_expired = 0;   ///< dropped before dispatch (kDeadline)
  std::size_t num_failed = 0;    ///< batch failed permanently (faults)
  std::size_t degrade_steps = 0; ///< precision downshifts taken so far
  std::size_t fault_retries = 0; ///< transient faults absorbed by retry
  /// Numeric mode the backend is serving at right now (moves along the
  /// fp32 -> bf16 -> int8 ladder when degradation is on).
  kernels::Precision precision = kernels::Precision::kFp32;
  /// Out-of-core vertex-store counters (hit/miss/eviction/spill traffic,
  /// write-back invalidations, prefetch effectiveness, spill I/O retries
  /// and permanent failures), queried from the backend at stats() time.
  /// All-zero when serving all-resident.
  graph::VertexStoreStats store;
  /// Per-stage per-batch time percentiles (core::Stage order: MemoryUpdate,
  /// NeighborGather, GnnCompute, Decode) over every completed batch —
  /// which stage the workload actually bottlenecks on, not just the
  /// aggregate service time. Serial/worker modes attribute via the
  /// PartTimes buckets, the pipelined mode via stage wall times (see
  /// perf/stage_profile.hpp for the convention).
  std::array<double, core::kNumStages> p50_stage_s{};
  std::array<double, core::kNumStages> p95_stage_s{};
  /// The live profile the online tuner reads (EWMA means, windowed
  /// percentiles, fan-out, queue depth).
  perf::StageProfile stage_profile;
  std::size_t retune_steps = 0;  ///< online max_batch flips taken so far
  std::size_t max_batch = 0;     ///< live knob values (these move under
  double max_wait_s = 0.0;       ///< online autotune)
  /// Multi-line human-readable summary: throughput, latency percentiles,
  /// per-stage breakdown, tuner/degradation state.
  [[nodiscard]] std::string describe() const;
};

/// One online knob flip (precision ladder or batch retune), journaled in
/// ServingEngine::tuning_log(). Tests assert event spacing — the
/// no-flip-flop hysteresis contract; benches print the trajectory.
struct TuningEvent {
  enum class Kind : std::uint8_t { kPrecision = 0, kMaxBatch = 1 };
  std::size_t at_batch = 0;  ///< batches dispatched when the flip happened
  Kind kind = Kind::kMaxBatch;
  std::size_t value = 0;  ///< new max_batch, or the kernels::Precision value
};

/// One request's terminal disposition, in resolution order (the order
/// outcomes were decided, not submission order — a shed is resolved at
/// submit time, a served request at batch completion).
struct OutcomeRecord {
  std::size_t index;        ///< the request's stream index
  RequestOutcome outcome;
};

/// Hazard-ledger audit primitive: TGNN_CHECK-aborts unless every vertex id
/// appears in at most one of the given footprints — the disjointness that
/// head-of-line admission is supposed to maintain across in-flight batches,
/// restated as an executable contract over the raw footprints instead of
/// the mark counters it normally trusts. A checked build
/// (-DTGNN_CHECKED=ON) runs it over the pipeline's occupied slots after
/// every admission.
void audit_disjoint_footprints(
    std::span<const std::span<const graph::NodeId>> footprints);

class ServingEngine {
 public:
  /// The backend must outlive the engine. Warm it up (or reset it) before
  /// construction; the engine owns it exclusively while alive. Throws
  /// std::invalid_argument when opts.workers > 1 and the backend is not a
  /// ConcurrentBackend.
  explicit ServingEngine(Backend& backend, ServingOptions opts = {});
  /// stop()s, draining outstanding requests first.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueue one edge event. Indices must arrive in stream order (each call
  /// passes the successor of the previous index; the first call sets the
  /// origin) — out-of-order submission throws std::invalid_argument.
  /// Throws std::logic_error after stop().
  ///
  /// Queue-full behavior follows opts.admission: kBlock and kDeadline
  /// block until space frees (always returns true); kShed waits at most
  /// opts.shed_wait_s and then CONSUMES the request as shed — returns
  /// false, the outcome is recorded as kShed, and the next submit must
  /// pass the successor index.
  bool submit(std::size_t edge_index) TGNN_EXCLUDES(mu_);

  /// Bounded-wait admission: like submit(), but waits at most `timeout_s`
  /// for queue space. Returns false when the timeout elapses with the
  /// queue still full — the request is NOT consumed (regardless of the
  /// admission policy), so the caller may retry or shed it itself.
  bool submit(std::size_t edge_index, double timeout_s) TGNN_EXCLUDES(mu_);

  /// Non-blocking admission: enqueue if there is space right now, else
  /// return false WITHOUT consuming the request (the caller may retry the
  /// same index). Same ordering/stopped checks as submit().
  bool try_submit(std::size_t edge_index) TGNN_EXCLUDES(mu_);

  /// Block until every submitted request has been dispatched and completed.
  /// Pending partial batches are force-flushed rather than waiting out the
  /// remainder of their max_wait deadline.
  void drain() TGNN_EXCLUDES(mu_);

  /// Graceful shutdown: everything submitted so far — including batches
  /// mid-pipeline — is flushed, executed in stream order, and recorded;
  /// then the scheduler (and any stage workers) exit. No batch runs
  /// twice, and nothing is dropped silently: under kDeadline, requests
  /// already past their budget still expire with a typed outcome rather
  /// than being served late. Idempotent; further submits throw. The
  /// destructor calls this.
  void stop() TGNN_EXCLUDES(mu_);

  /// Aggregate latency/throughput statistics over everything served so far.
  [[nodiscard]] ServingStats stats() const TGNN_EXCLUDES(mu_);

  /// Per-request end-to-end latencies, in completion order.
  [[nodiscard]] std::vector<double> request_latency_s() const
      TGNN_EXCLUDES(mu_);
  /// Dispatched micro-batches, in dispatch (= chronological) order.
  [[nodiscard]] std::vector<graph::BatchRange> batch_log() const
      TGNN_EXCLUDES(mu_);
  /// Terminal disposition of every resolved request, in resolution order.
  [[nodiscard]] std::vector<OutcomeRecord> outcome_log() const
      TGNN_EXCLUDES(mu_);
  /// Online knob flips (precision / max_batch), in the order taken.
  [[nodiscard]] std::vector<TuningEvent> tuning_log() const
      TGNN_EXCLUDES(mu_);
  /// Message of the most recent permanent batch failure ("" when none).
  [[nodiscard]] std::string last_error() const TGNN_EXCLUDES(mu_);

  /// Snapshot the backend's runtime state (memory / mailbox / neighbor
  /// table, including spilled pages) plus the stream cursor to `path`.
  /// Drains first so the snapshot is quiescent; returns the cursor — the
  /// stream index the restored engine must be fed next. Throws
  /// std::logic_error when the backend exposes no runtime state and
  /// std::runtime_error when the write fails. The engine keeps serving
  /// afterwards.
  std::uint64_t checkpoint(const std::string& path) TGNN_EXCLUDES(mu_);

  /// Worker lanes actually in use (opts.workers clamped to backend lanes).
  [[nodiscard]] std::size_t workers() const { return workers_; }

 private:
  void scheduler_loop() TGNN_EXCLUDES(mu_);
  void scheduler_loop_parallel() TGNN_EXCLUDES(mu_);
  void scheduler_loop_pipelined() TGNN_EXCLUDES(mu_);
  /// Stage worker k: pops slots from stage_q_[k], runs Stage k, hands the
  /// slot to stage k+1 (Decode completes the batch instead).
  void stage_worker(std::size_t k) TGNN_EXCLUDES(mu_);
  /// Pop the next micro-batch (held open per max_batch/max_wait/flush)
  /// under `lk` (which must hold mu_); returns false when stopping with an
  /// empty queue.
  bool next_batch(util::MutexLock& lk, graph::BatchRange& range,
                  std::vector<double>& arrivals) TGNN_REQUIRES(mu_);
  void record_batch(const graph::BatchRange& range,
                    const std::vector<double>& arrivals, double dispatch_s,
                    double service_s) TGNN_REQUIRES(mu_);
  /// Shared submit tail: stamp the arrival, enqueue, advance the cursor.
  void enqueue_locked(std::size_t edge_index) TGNN_REQUIRES(mu_);
  /// Order/stopped preconditions every admission entry point shares.
  void check_submit_locked(std::size_t edge_index) const TGNN_REQUIRES(mu_);
  /// Wait up to timeout_s for queue space; false on timeout or stop.
  bool wait_for_space(util::MutexLock& lk, double timeout_s)
      TGNN_REQUIRES(mu_);
  /// Leading contiguous-index run of the queue, capped at max_batch — the
  /// largest batch the front of the queue can form (shed / expired
  /// requests leave index gaps, and a BatchRange must be contiguous).
  [[nodiscard]] std::size_t contiguous_run_locked() const TGNN_REQUIRES(mu_);
  /// kDeadline: drop the expired prefix of the queue (arrivals are
  /// monotone, so the expired set is exactly a prefix).
  void expire_stale_locked() TGNN_REQUIRES(mu_);
  /// Degradation hysteresis, evaluated at each batch formation; steps the
  /// backend's precision only at a quiescent point (the batch just formed
  /// is the sole in-flight work and nothing is dispatched). Returns true
  /// when a precision flip was taken — the retune pass then yields this
  /// quiescent point (one knob per flip).
  bool maybe_degrade() TGNN_REQUIRES(mu_);
  /// Online retune, evaluated after maybe_degrade at each batch formation:
  /// every retune_interval formations, at the same quiescent condition,
  /// flip max_batch/max_wait_s when the profile-calibrated model predicts
  /// >= retune_margin throughput gain (see file comment for the
  /// composition and hysteresis rules).
  void maybe_retune(bool degrade_flipped) TGNN_REQUIRES(mu_);
  /// Feed one completed batch's stage times into the profiler and the
  /// percentile samples. `unique_vertices` is the batch's deduplicated
  /// endpoint count (the fan-out signal).
  void record_stage_sample(const std::array<double, core::kNumStages>& stage_s,
                           const graph::BatchRange& range,
                           std::size_t unique_vertices) TGNN_REQUIRES(mu_);
  /// Runs `op` under the transient-fault retry envelope (fault_retries,
  /// exponential backoff). False on permanent failure; last_error_ set.
  bool run_with_retries(const std::function<void()>& op) TGNN_EXCLUDES(mu_);
  /// Resolve every request of a permanently failed batch as kFailed and
  /// retire the batch (in-flight count, completion signal).
  void fail_batch(const graph::BatchRange& range) TGNN_REQUIRES(mu_);
  /// Pipelined failure path: abort the slot's batch on the backend
  /// (releases pins; no state was committed — stages before Decode only
  /// write the slot's context), unwind its ledger marks, resolve its
  /// requests as kFailed, and free the slot.
  void abort_slot(std::size_t slot) TGNN_EXCLUDES(mu_);
  /// Checked-build hazard audit: rebuilds the in-flight picture from the
  /// occupied pipeline slots' stored write footprints (a slot is occupied
  /// iff its SlotMeta still holds one) and TGNN_CHECKs they are pairwise
  /// disjoint — catching a ledger desync (mark leak, footprint drift, slot
  /// reuse before release) the counters alone would hide.
  void audit_in_flight_footprints() const TGNN_REQUIRES(mu_);

  Backend& backend_;
  ConcurrentBackend* concurrent_ = nullptr;  ///< set when workers_ > 1
  StagedBackend* staged_ = nullptr;          ///< set when opts.pipelined
  ServingOptions opts_;
  std::size_t workers_ = 1;
  bool track_reads_ = false;  ///< pipelined: read-footprint admission on
                              ///< (deterministic, or no race-free reads)

  mutable util::Mutex mu_;
  util::CondVar cv_submit_;  ///< signals: new request or stop
  util::CondVar cv_state_;   ///< signals: queue space / lane free /
                             ///< batch completion

  struct Pending {
    std::size_t index;
    double arrival_s;
  };
  std::deque<Pending> queue_ TGNN_GUARDED_BY(mu_);
  bool stop_ TGNN_GUARDED_BY(mu_) = false;
  /// Drain requested: dispatch without waiting.
  bool flush_ TGNN_GUARDED_BY(mu_) = false;
  /// Batches formed or executing.
  std::size_t in_flight_ TGNN_GUARDED_BY(mu_) = 0;
  /// Batches dispatched to a lane right now.
  std::size_t executing_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t peak_executing_ TGNN_GUARDED_BY(mu_) = 0;
  /// Gauge: in_flight_ high-water.
  std::size_t peak_in_flight_ TGNN_GUARDED_BY(mu_) = 0;
  /// Gauge: submit queue high-water.
  std::size_t peak_queue_depth_ TGNN_GUARDED_BY(mu_) = 0;
  bool have_origin_ TGNN_GUARDED_BY(mu_) = false;
  /// Required index of the next submit.
  std::size_t next_index_ TGNN_GUARDED_BY(mu_) = 0;

  // Overload / fault disposition state.
  std::vector<OutcomeRecord> outcomes_ TGNN_GUARDED_BY(mu_);
  std::size_t shed_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t expired_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t failed_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t fault_retries_ TGNN_GUARDED_BY(mu_) = 0;
  std::string last_error_ TGNN_GUARDED_BY(mu_);

  // Stage profiling + online retune state. The profiler is fed under mu_
  // from every completion path; tuning_log_ journals both knob families.
  perf::StageProfiler profiler_ TGNN_GUARDED_BY(mu_);
  std::array<std::vector<double>, core::kNumStages> stage_samples_
      TGNN_GUARDED_BY(mu_);
  std::vector<TuningEvent> tuning_log_ TGNN_GUARDED_BY(mu_);
  std::size_t retune_steps_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t formations_since_retune_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t last_retune_batch_ TGNN_GUARDED_BY(mu_) = 0;
  int last_retune_dir_ TGNN_GUARDED_BY(mu_) = 0;  ///< +1 grew, -1 shrank
  double base_max_wait_s_;    ///< ctor-time max_wait_s (retune drift anchor);
                              ///< immutable after construction
  std::size_t hw_threads_;    ///< cores the retune model caps parallelism at

  // Degradation ladder (built from the backend's base precision at
  // construction; shrunk to one rung when the backend refuses the flip)
  // and the hysteresis run counters.
  std::vector<kernels::Precision> ladder_ TGNN_GUARDED_BY(mu_);
  std::size_t degrade_level_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t degrade_steps_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t pressure_run_ TGNN_GUARDED_BY(mu_) = 0;
  std::size_t clear_run_ TGNN_GUARDED_BY(mu_) = 0;

  // Conflict ledger of the parallel and pipelined modes (incremented at
  // dispatch, decremented at completion). write = batch endpoints; full =
  // endpoints + tracked neighbor reads. free_lanes_ doubles as the free
  // pipeline-slot list in pipelined mode.
  std::vector<std::uint32_t> write_marks_ TGNN_GUARDED_BY(mu_);
  std::vector<std::uint32_t> full_marks_ TGNN_GUARDED_BY(mu_);
  std::vector<std::size_t> free_lanes_ TGNN_GUARDED_BY(mu_);

  /// Per-slot metadata of a batch in the staged pipeline, written at
  /// admission and cleared at Decode completion — so an occupied slot is
  /// exactly one whose footprint is still stored, which is what the
  /// checked-build hazard audit keys on.
  struct SlotMeta {
    std::vector<graph::NodeId> wfp, rfp;  ///< marked footprints to release
    std::vector<double> arrivals;
    graph::BatchRange range;  ///< for typed outcomes at completion/abort
    double dispatch_s = 0.0;
    /// Stage wall times, written by each stage worker as it finishes its
    /// stage; fed to the profiler at Decode completion.
    std::array<double, core::kNumStages> stage_s{};
  };
  std::vector<SlotMeta> slot_meta_ TGNN_GUARDED_BY(mu_);
  /// Inter-stage channels: stage_q_[k] feeds stage worker k (slot indices).
  /// The vector itself is immutable after construction (each channel has
  /// its own internal lock), so it carries no guard.
  std::vector<std::unique_ptr<StageChannel<std::size_t>>> stage_q_;

  Stopwatch clock_;
  std::vector<double> latencies_ TGNN_GUARDED_BY(mu_);
  std::vector<double> queue_waits_ TGNN_GUARDED_BY(mu_);
  std::vector<double> services_ TGNN_GUARDED_BY(mu_);
  std::vector<graph::BatchRange> batches_ TGNN_GUARDED_BY(mu_);
  double first_submit_s_ TGNN_GUARDED_BY(mu_) = -1.0;
  double last_done_s_ TGNN_GUARDED_BY(mu_) = 0.0;

  /// Runs scheduler_loop (+ the worker lanes in parallel mode); with one
  /// worker the scheduler is a strict serial executor.
  ThreadPool pool_;
};

/// Restore a ServingEngine::checkpoint into `backend` — load the saved
/// runtime state over the backend's (shapes must match) and return the
/// stream cursor: the index the first submit to a new engine over this
/// backend must pass. Call BEFORE constructing the engine (the first
/// submit sets its origin, so serving resumes exactly where the
/// checkpointed engine left off). Throws std::logic_error when the
/// backend exposes no runtime state, std::runtime_error on a missing /
/// mismatched / corrupt checkpoint.
std::uint64_t restore_backend(Backend& backend, const std::string& path);

}  // namespace tgnn::runtime
