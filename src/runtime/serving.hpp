// Online serving on top of a runtime Backend — the piece that turns the
// repo from an offline replayer into a serving-shaped system.
//
// Callers submit individual edge events (stream indices, in chronological
// order — the fraud-detection / recommendation request pattern of §II-A). A
// dedicated scheduler thread, driven by a 1-worker util::ThreadPool,
// coalesces pending requests into micro-batches and dispatches them to the
// backend when either
//   * `max_batch` requests are pending (batch-size cap), or
//   * the oldest pending request has waited `max_wait_s` (latency flush).
//
// Because the scheduler is a single serial executor and requests are
// accepted only in stream order, batches are dispatched strictly
// chronologically — the state-write ordering Algorithm 1 requires — while
// still amortizing per-batch overhead, exactly the latency/throughput
// trade the paper sweeps in Fig. 5.
//
// The submit queue is bounded: submit() blocks when `queue_capacity`
// requests are pending (backpressure instead of unbounded growth).
//
// Per-request latency = queueing wait (measured) + batch service latency
// (the backend's measured or modelled latency_s), so percentiles are
// meaningful for simulated platforms too.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/backend.hpp"
#include "util/stopwatch.hpp"
#include "util/threadpool.hpp"

namespace tgnn::runtime {

struct ServingOptions {
  std::size_t max_batch = 256;       ///< micro-batch size cap
  double max_wait_s = 2e-3;          ///< oldest-request age that forces a flush
  std::size_t queue_capacity = 4096; ///< bounded queue (submit backpressure)
};

struct ServingStats {
  std::size_t num_requests = 0;
  std::size_t num_batches = 0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  double throughput_rps = 0.0;  ///< requests per wall-clock second
  double mean_batch_size = 0.0;
};

class ServingEngine {
 public:
  /// The backend must outlive the engine. Warm it up (or reset it) before
  /// construction; the engine owns it exclusively while alive.
  explicit ServingEngine(Backend& backend, ServingOptions opts = {});
  /// Drains outstanding requests, then stops the scheduler.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueue one edge event. Indices must arrive in stream order (each call
  /// passes the successor of the previous index; the first call sets the
  /// origin) — out-of-order submission throws std::invalid_argument.
  /// Blocks while the queue is at capacity.
  void submit(std::size_t edge_index);

  /// Block until every submitted request has been dispatched and completed.
  /// Pending partial batches are force-flushed rather than waiting out the
  /// remainder of their max_wait deadline.
  void drain();

  /// Aggregate latency/throughput statistics over everything served so far.
  [[nodiscard]] ServingStats stats() const;

  /// Per-request end-to-end latencies, in completion order.
  [[nodiscard]] std::vector<double> request_latency_s() const;
  /// Dispatched micro-batches, in dispatch (= chronological) order.
  [[nodiscard]] std::vector<graph::BatchRange> batch_log() const;

 private:
  void scheduler_loop();

  Backend& backend_;
  ServingOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_submit_;  ///< signals: new request or stop
  std::condition_variable cv_state_;   ///< signals: queue space / completion

  struct Pending {
    std::size_t index;
    double arrival_s;
  };
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool flush_ = false;         ///< drain requested: dispatch without waiting
  bool busy_ = false;          ///< a batch is currently executing
  bool have_origin_ = false;
  std::size_t next_index_ = 0; ///< required index of the next submit

  Stopwatch clock_;
  std::vector<double> latencies_;
  std::vector<graph::BatchRange> batches_;
  double first_submit_s_ = -1.0;
  double last_done_s_ = 0.0;

  ThreadPool pool_{1};  ///< runs scheduler_loop; 1 worker => serial batches
};

}  // namespace tgnn::runtime
