#include "runtime/stream_result.hpp"

#include <algorithm>
#include <numeric>

namespace tgnn::runtime {

const char* outcome_name(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kServed: return "served";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kExpired: return "expired";
    case RequestOutcome::kFailed: return "failed";
  }
  return "unknown";
}

double StreamResult::mean_latency_s() const {
  if (batch_latency_s.empty()) return 0.0;
  return std::accumulate(batch_latency_s.begin(), batch_latency_s.end(), 0.0) /
         static_cast<double>(batch_latency_s.size());
}

double percentile_of(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

double StreamResult::percentile(double q) const {
  return percentile_of(batch_latency_s, q);
}

StreamResult drive_batches(
    const std::vector<graph::BatchRange>& batches,
    const std::function<StepOutcome(const graph::BatchRange&)>& step) {
  StreamResult res;
  for (const auto& b : batches) {
    if (b.size() == 0) continue;  // empty time windows produce no batch
    const StepOutcome out = step(b);
    res.batch_latency_s.push_back(out.latency_s);
    res.total_seconds += out.latency_s;
    res.num_edges += b.size();
    res.num_embeddings += out.num_embeddings;
    res.parts += out.parts;
  }
  return res;
}

}  // namespace tgnn::runtime
