#include "runtime/driver.hpp"

namespace tgnn::runtime {

void fast_forward(Backend& b, std::size_t stream_end) {
  if (stream_end == 0) return;
  b.warmup({0, stream_end});
}

namespace {

StreamResult drive(Backend& b, const std::vector<graph::BatchRange>& batches) {
  return drive_batches(batches, [&b](const graph::BatchRange& r) {
    const BatchOutput out = b.process_batch(r);
    return StepOutcome{out.latency_s, out.functional.nodes.size(), out.parts};
  });
}

}  // namespace

StreamResult run_stream(Backend& b, const graph::BatchRange& range,
                        std::size_t batch_size) {
  return drive(b, b.dataset().graph.fixed_size_batches(range.begin, range.end,
                                                       batch_size));
}

StreamResult run_windows(Backend& b, const graph::BatchRange& range,
                         double window_seconds) {
  return drive(b, b.dataset().graph.fixed_window_batches(
                      range.begin, range.end, window_seconds));
}

StreamResult measure_stream(Backend& b, const graph::BatchRange& region,
                            std::size_t batch_size) {
  fast_forward(b, region.begin);
  return run_stream(b, region, batch_size);
}

StreamResult measure_windows(Backend& b, const graph::BatchRange& region,
                             double window_seconds) {
  fast_forward(b, region.begin);
  return run_windows(b, region, window_seconds);
}

}  // namespace tgnn::runtime
