// Dataset = temporal graph + feature matrices + chronological split.
//
// The paper evaluates on Wikipedia/Reddit (JODIE; 172-d edge features, no
// node features) and GDELT (200-d node features, no edge features). Those
// corpora are not redistributable here, so src/data/synthetic.cpp generates
// stand-ins matching their dimensionality, Δt distribution, and recency
// structure — see DESIGN.md §1 for the substitution argument.
#pragma once

#include <string>
#include <vector>

#include "graph/temporal_graph.hpp"
#include "tensor/tensor.hpp"

namespace tgnn::data {

struct Dataset {
  std::string name;
  graph::TemporalGraph graph;
  Tensor edge_features;  ///< [num_edges, edge_dim]; empty if edge_dim == 0
  Tensor node_features;  ///< [num_nodes, node_dim]; empty if node_dim == 0

  /// Chronological split boundaries (edge indices): train = [0, train_end),
  /// val = [train_end, val_end), test = [val_end, num_edges).
  std::size_t train_end = 0;
  std::size_t val_end = 0;

  [[nodiscard]] std::size_t edge_dim() const { return edge_features.cols(); }
  [[nodiscard]] std::size_t node_dim() const { return node_features.cols(); }
  [[nodiscard]] std::size_t num_edges() const { return graph.num_edges(); }
  [[nodiscard]] graph::NodeId num_nodes() const { return graph.num_nodes(); }

  [[nodiscard]] graph::BatchRange train_range() const { return {0, train_end}; }
  [[nodiscard]] graph::BatchRange val_range() const {
    return {train_end, val_end};
  }
  [[nodiscard]] graph::BatchRange test_range() const {
    return {val_end, graph.num_edges()};
  }
};

/// Apply the standard 70/15/15 chronological split.
void apply_chrono_split(Dataset& ds, double train_frac = 0.70,
                        double val_frac = 0.15);

/// Sorted unique destination node ids of the stream — the negative-sample
/// pool shared by the inference engine, APAN, and the application examples.
std::vector<graph::NodeId> destination_pool(const Dataset& ds);

/// Summary statistics used by dataset sanity tests and the Fig. 1 bench.
struct DatasetStats {
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  double span_seconds = 0.0;
  double mean_degree = 0.0;
  double repeat_fraction = 0.0;  ///< fraction of edges repeating a prior pair
};
DatasetStats compute_stats(const Dataset& ds);

}  // namespace tgnn::data
