#include "data/synthetic.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/rng.hpp"

namespace tgnn::data {

namespace {

/// Community prototype vectors: unit-scaled random directions, one per
/// community, reused for both edge and node features.
std::vector<Tensor> make_prototypes(std::size_t k, std::size_t dim, Rng& rng) {
  std::vector<Tensor> protos;
  protos.reserve(k);
  for (std::size_t c = 0; c < k; ++c)
    protos.push_back(Tensor::randn(1, dim, rng, 1.0f));
  return protos;
}

}  // namespace

Dataset make_synthetic(const SyntheticConfig& cfg) {
  if (cfg.num_users == 0 || cfg.num_items == 0 || cfg.num_edges == 0)
    throw std::invalid_argument("make_synthetic: empty config");
  Rng rng(cfg.seed);

  const graph::NodeId n_nodes = cfg.num_users + cfg.num_items;

  // Latent community per user and per item.
  std::vector<std::uint32_t> user_comm(cfg.num_users), item_comm(cfg.num_items);
  for (auto& c : user_comm)
    c = static_cast<std::uint32_t>(rng.uniform_int(cfg.num_communities));
  for (auto& c : item_comm)
    c = static_cast<std::uint32_t>(rng.uniform_int(cfg.num_communities));

  // Items grouped by community for fast in-community sampling.
  std::vector<std::vector<graph::NodeId>> comm_items(cfg.num_communities);
  for (graph::NodeId i = 0; i < cfg.num_items; ++i)
    comm_items[item_comm[i]].push_back(cfg.num_users + i);
  // Guarantee every community owns at least one item.
  for (std::uint32_t c = 0; c < cfg.num_communities; ++c)
    if (comm_items[c].empty())
      comm_items[c].push_back(cfg.num_users +
                              static_cast<graph::NodeId>(
                                  rng.uniform_int(cfg.num_items)));

  // Per-user event clocks: heavy-tailed activity (Zipf over users) and
  // Pareto inter-event gaps produce the Fig. 1 power-law Δt histogram.
  std::vector<double> user_clock(cfg.num_users, 0.0);
  std::vector<std::deque<graph::NodeId>> recent(cfg.num_users);

  struct Pending {
    double ts;
    graph::NodeId user;
  };
  // Draw each event's user by Zipf popularity, then advance that user's
  // clock by a Pareto gap. Collect, then sort by timestamp.
  std::vector<Pending> pend;
  pend.reserve(cfg.num_edges);
  for (std::size_t e = 0; e < cfg.num_edges; ++e) {
    // Zipf needs s > 1 (Devroye rejection); at or below 1 fall back to
    // uniform users — the flat workload concurrency benches want.
    const auto u = static_cast<graph::NodeId>(
        cfg.user_zipf_s > 1.0 ? rng.zipf(cfg.num_users, cfg.user_zipf_s)
                              : rng.uniform_int(cfg.num_users));
    user_clock[u] += rng.pareto(cfg.pareto_xm, cfg.pareto_alpha);
    pend.push_back({user_clock[u], u});
  }
  std::sort(pend.begin(), pend.end(),
            [](const Pending& a, const Pending& b) { return a.ts < b.ts; });

  // Feature prototypes per community.
  const std::size_t fdim = std::max<std::size_t>(cfg.edge_dim, 1);
  auto edge_protos = make_prototypes(cfg.num_communities, fdim, rng);
  std::vector<Tensor> node_protos;
  if (cfg.node_dim > 0)
    node_protos = make_prototypes(cfg.num_communities, cfg.node_dim, rng);

  std::vector<graph::TemporalEdge> edges;
  edges.reserve(cfg.num_edges);
  Tensor edge_feat;
  if (cfg.edge_dim > 0)
    edge_feat = Tensor(cfg.num_edges, cfg.edge_dim);

  for (std::size_t e = 0; e < pend.size(); ++e) {
    const graph::NodeId u = pend[e].user;
    const double ts = pend[e].ts;
    graph::NodeId item;
    auto& rec = recent[u];
    if (!rec.empty() && rng.bernoulli(cfg.repeat_prob)) {
      // Recency: revisit one of the user's last few items (JODIE behaviour).
      item = rec[rng.uniform_int(rec.size())];
    } else {
      // Fresh pick: usually within the user's community.
      const std::uint32_t c =
          rng.bernoulli(cfg.in_community_prob)
              ? user_comm[u]
              : static_cast<std::uint32_t>(
                    rng.uniform_int(cfg.num_communities));
      const auto& pool = comm_items[c];
      item = pool[rng.uniform_int(pool.size())];
      rec.push_back(item);
      if (rec.size() > cfg.recency_window) rec.pop_front();
    }

    edges.push_back({u, item, ts, static_cast<graph::EdgeId>(e)});

    if (cfg.edge_dim > 0) {
      // Edge feature = item-community prototype + noise: node memory then
      // accumulates community evidence the link-prediction decoder can use.
      const auto& proto = edge_protos[item_comm[item - cfg.num_users]];
      auto dst = edge_feat.row(e);
      for (std::size_t d = 0; d < cfg.edge_dim; ++d)
        dst[d] = proto(0, d) +
                 static_cast<float>(rng.normal(0.0, cfg.feature_noise));
    }
  }

  Dataset ds;
  ds.name = cfg.name;
  ds.graph = graph::TemporalGraph(n_nodes, std::move(edges),
                                  /*assign_eids=*/true);
  ds.edge_features = std::move(edge_feat);

  if (cfg.node_dim > 0) {
    ds.node_features = Tensor(n_nodes, cfg.node_dim);
    for (graph::NodeId v = 0; v < n_nodes; ++v) {
      const std::uint32_t c = v < cfg.num_users
                                  ? user_comm[v]
                                  : item_comm[v - cfg.num_users];
      const auto& proto = node_protos[c];
      auto dst = ds.node_features.row(v);
      for (std::size_t d = 0; d < cfg.node_dim; ++d)
        dst[d] = proto(0, d) +
                 static_cast<float>(rng.normal(0.0, cfg.feature_noise));
    }
  }

  apply_chrono_split(ds);
  return ds;
}

Dataset wikipedia_like(double edge_scale, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "wikipedia";
  cfg.num_users = 800;
  cfg.num_items = 200;   // few heavily-edited pages
  cfg.num_edges = static_cast<std::size_t>(30000 * edge_scale);
  cfg.edge_dim = 172;
  cfg.node_dim = 0;
  cfg.seed = seed;
  return make_synthetic(cfg);
}

Dataset reddit_like(double edge_scale, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "reddit";
  cfg.num_users = 2000;
  cfg.num_items = 100;   // subreddits: fewer, hotter items
  cfg.num_edges = static_cast<std::size_t>(30000 * edge_scale);
  cfg.edge_dim = 172;
  cfg.node_dim = 0;
  cfg.repeat_prob = 0.8;  // redditors revisit the same subs more
  cfg.seed = seed;
  return make_synthetic(cfg);
}

Dataset gdelt_like(double edge_scale, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "gdelt";
  cfg.num_users = 1500;
  cfg.num_items = 500;
  cfg.num_edges = static_cast<std::size_t>(30000 * edge_scale);
  cfg.edge_dim = 0;
  cfg.node_dim = 200;  // SeDyT pre-trained embeddings in the paper
  cfg.seed = seed;
  return make_synthetic(cfg);
}

Dataset by_name(const std::string& name, double edge_scale) {
  if (name == "wikipedia") return wikipedia_like(edge_scale);
  if (name == "reddit") return reddit_like(edge_scale);
  if (name == "gdelt") return gdelt_like(edge_scale);
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace tgnn::data
