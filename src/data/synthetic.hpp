// Synthetic temporal-graph generators standing in for the paper's datasets.
//
// What each experiment needs from the data (and what we therefore plant):
//  1. Dimensionality — Wikipedia/Reddit have 172-d edge features and no node
//     features; GDELT has 200-d node features and no edge features. These
//     drive every kMAC/kMEM count in Tables I/II.
//  2. Power-law inter-event times — Fig. 1 shows Δt at the time-encoder
//     input following a power law with mass near zero. Per-user inter-event
//     gaps are drawn from a Pareto distribution, giving the same shape.
//  3. Learnable temporal link structure — AP in Table II requires that
//     observed (u, i) pairs be separable from random negatives. We plant
//     (a) community structure: users and items carry latent communities and
//     users interact overwhelmingly within their community; (b) recency:
//     users re-visit recently-touched items (JODIE-style repeat behaviour);
//     (c) feature signal: edge/node features are community-prototype plus
//     noise, so node memory accumulates community evidence the decoder can
//     match.
//
// Generators are deterministic in (config, seed).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace tgnn::data {

struct SyntheticConfig {
  std::string name = "synthetic";
  std::uint32_t num_users = 1000;
  std::uint32_t num_items = 1000;
  std::size_t num_edges = 30000;
  std::size_t edge_dim = 172;   ///< 0 for GDELT-like
  std::size_t node_dim = 0;     ///< 200 for GDELT-like
  std::uint32_t num_communities = 8;
  double pareto_alpha = 1.2;    ///< inter-event-time tail exponent
  double pareto_xm = 30.0;      ///< minimum inter-event gap (seconds)
  double user_zipf_s = 1.4;     ///< user popularity skew (<= 1.0 = uniform
                                ///< users — the low-conflict serving shape)
  double repeat_prob = 0.75;    ///< P(revisit one of the last few items)
  double in_community_prob = 0.9;
  double feature_noise = 0.35;  ///< stddev of noise around prototypes
  std::uint32_t recency_window = 3;  ///< size of the user's revisit pool
  std::uint64_t seed = 42;
};

/// General generator (bipartite user-item interaction stream).
Dataset make_synthetic(const SyntheticConfig& cfg);

/// Presets mirroring the paper's three datasets (scaled by `edge_scale`
/// relative to the default 30k-edge stand-in; dims are exact).
Dataset wikipedia_like(double edge_scale = 1.0, std::uint64_t seed = 42);
Dataset reddit_like(double edge_scale = 1.0, std::uint64_t seed = 43);
Dataset gdelt_like(double edge_scale = 1.0, std::uint64_t seed = 44);

/// Dataset lookup by paper name ("wikipedia" | "reddit" | "gdelt").
Dataset by_name(const std::string& name, double edge_scale = 1.0);

}  // namespace tgnn::data
