#include "data/dataset.hpp"

#include <set>
#include <stdexcept>

namespace tgnn::data {

void apply_chrono_split(Dataset& ds, double train_frac, double val_frac) {
  if (train_frac <= 0.0 || val_frac < 0.0 || train_frac + val_frac >= 1.0)
    throw std::invalid_argument("apply_chrono_split: bad fractions");
  const auto n = ds.graph.num_edges();
  ds.train_end = static_cast<std::size_t>(static_cast<double>(n) * train_frac);
  ds.val_end = static_cast<std::size_t>(
      static_cast<double>(n) * (train_frac + val_frac));
}

DatasetStats compute_stats(const Dataset& ds) {
  DatasetStats st;
  st.num_nodes = ds.graph.num_nodes();
  st.num_edges = ds.graph.num_edges();
  st.span_seconds = ds.graph.t_max() - ds.graph.t_min();
  st.mean_degree = st.num_nodes == 0
                       ? 0.0
                       : 2.0 * static_cast<double>(st.num_edges) /
                             static_cast<double>(st.num_nodes);
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  std::size_t repeats = 0;
  for (const auto& e : ds.graph.edges()) {
    if (!seen.insert({e.src, e.dst}).second) ++repeats;
  }
  st.repeat_fraction = st.num_edges == 0
                           ? 0.0
                           : static_cast<double>(repeats) /
                                 static_cast<double>(st.num_edges);
  return st;
}

std::vector<graph::NodeId> destination_pool(const Dataset& ds) {
  std::set<graph::NodeId> dsts;
  for (const auto& e : ds.graph.edges()) dsts.insert(e.dst);
  return {dsts.begin(), dsts.end()};
}

}  // namespace tgnn::data
