// AutoTuner: the candidate space is gated by the backend's contracts,
// options_for realizes candidates into engine-ready ServingOptions, and
// search() runs the full DSE loop — calibrate, rank by prediction,
// validate the top-K on real traffic, return the measured-best — while
// consuming exactly the stream prefix it accounts for in next_index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>

#include "data/synthetic.hpp"
#include "perf/auto_tuner.hpp"
#include "runtime/serving.hpp"

namespace tgnn::perf {
namespace {

data::Dataset tuner_ds() {
  data::SyntheticConfig dcfg;
  dcfg.name = "tuner";
  dcfg.num_users = 500;
  dcfg.num_items = 400;
  dcfg.num_edges = 5000;
  dcfg.edge_dim = 8;
  dcfg.seed = 31;
  return data::make_synthetic(dcfg);
}

core::TgnModel tuner_model(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 8;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  return core::TgnModel(cfg, 13);
}

TEST(AutoTuner, CandidatesGatedByBackendContracts) {
  const auto ds = tuner_ds();
  const auto model = tuner_model(ds);
  AutoTunerOptions topts;
  topts.batch_grid = {32, 128};
  topts.worker_grid = {2, 4, 64};  // 64 exceeds any lane count: skipped
  topts.depth_grid = {2, 4};

  // "cpu" is a StagedBackend but not a ConcurrentBackend: serial and
  // pipelined candidates only.
  auto cpu = runtime::make_backend("cpu", model, ds);
  AutoTuner cpu_tuner(*cpu, topts);
  std::size_t serial = 0, workers = 0, pipelined = 0;
  for (const auto& c : cpu_tuner.candidates()) {
    if (c.pipelined)
      ++pipelined;
    else if (c.workers > 1)
      ++workers;
    else
      ++serial;
  }
  EXPECT_EQ(serial, 2u);
  EXPECT_EQ(workers, 0u);
  EXPECT_EQ(pipelined, 4u);  // 2 batches x 2 depths

  // "sharded-cpu" is both: worker candidates appear, capped at lanes().
  runtime::BackendOptions bopts;
  bopts.threads = 4;
  auto sharded = runtime::make_backend("sharded-cpu", model, ds, bopts);
  AutoTuner sh_tuner(*sharded, topts);
  serial = workers = pipelined = 0;
  for (const auto& c : sh_tuner.candidates()) {
    if (c.pipelined)
      ++pipelined;
    else if (c.workers > 1) {
      EXPECT_LE(c.workers, 4u);
      ++workers;
    } else {
      ++serial;
    }
  }
  EXPECT_EQ(serial, 2u);
  EXPECT_EQ(workers, 4u);  // 2 batches x {2, 4} workers; 64 skipped
  EXPECT_EQ(pipelined, 4u);

  // "gpu-sim" is neither: serial candidates only.
  auto gpu = runtime::make_backend("gpu-sim", model, ds);
  AutoTuner gpu_tuner(*gpu, topts);
  for (const auto& c : gpu_tuner.candidates()) {
    EXPECT_FALSE(c.pipelined);
    EXPECT_EQ(c.workers, 1u);
  }
  EXPECT_EQ(gpu_tuner.candidates().size(), 2u);
}

TEST(AutoTuner, OptionsRealizeCandidate) {
  const auto ds = tuner_ds();
  const auto model = tuner_model(ds);
  auto backend = runtime::make_backend("cpu", model, ds);
  AutoTunerOptions topts;
  topts.max_wait_s = 5e-4;
  AutoTuner tuner(*backend, topts);

  SwCandidate c;
  c.max_batch = 2048;
  c.pipelined = true;
  c.pipeline_depth = 3;
  const auto o = tuner.options_for(c);
  EXPECT_EQ(o.max_batch, 2048u);
  EXPECT_TRUE(o.pipelined);
  EXPECT_EQ(o.pipeline_depth, 3u);
  EXPECT_EQ(o.workers, 1u);  // pipelined candidates never set lanes
  EXPECT_EQ(o.max_wait_s, 5e-4);
  EXPECT_GE(o.queue_capacity, 4 * o.max_batch);  // cap never starves a batch

  c.pipelined = false;
  c.workers = 4;
  EXPECT_EQ(tuner.options_for(c).workers, 4u);
}

TEST(AutoTuner, SearchReturnsMeasuredBestAndAccountsForTheStream) {
  const auto ds = tuner_ds();
  const auto model = tuner_model(ds);
  auto backend = runtime::make_backend("cpu", model, ds);

  AutoTunerOptions topts;
  topts.calib_events = 320;
  topts.calib_batch_lo = 16;
  topts.calib_batch_hi = 64;
  topts.batch_grid = {16, 64, 256};
  topts.worker_grid = {};
  topts.depth_grid = {};  // serial-only space: 3 candidates
  topts.validate_top_k = 2;
  topts.validate_events = 256;
  AutoTuner tuner(*backend, topts);

  const auto r = tuner.search(0);
  // Stream accounting: 2 calibration runs + 2 validation runs consumed.
  EXPECT_EQ(r.next_index, 2 * 320u + 2 * 256u);
  EXPECT_EQ(r.ranked.size(), 3u);
  // Ranked best-first by prediction, and predictions are real numbers.
  for (std::size_t i = 1; i < r.ranked.size(); ++i)
    EXPECT_GE(r.ranked[i - 1].predicted.throughput_rps,
              r.ranked[i].predicted.throughput_rps);
  // Exactly the top-K carry measurements, and the chosen candidate is the
  // measured-best among them (the measurement overrules the model).
  EXPECT_GT(r.ranked[0].measured_rps, 0.0);
  EXPECT_GT(r.ranked[1].measured_rps, 0.0);
  EXPECT_EQ(r.ranked[2].measured_rps, 0.0);
  const double winner =
      std::max(r.ranked[0].measured_rps, r.ranked[1].measured_rps);
  const bool chose_0 = r.chosen.max_batch == r.ranked[0].candidate.max_batch;
  EXPECT_EQ(r.ranked[chose_0 ? 0 : 1].measured_rps, winner);
  // The returned options realize the chosen candidate.
  EXPECT_EQ(r.options.max_batch, r.chosen.max_batch);
  EXPECT_FALSE(r.options.pipelined);
  EXPECT_GT(r.profile.batches, 0u);
  EXPECT_FALSE(r.describe().empty());
}

TEST(AutoTuner, SearchWithoutValidationTrustsTheModel) {
  const auto ds = tuner_ds();
  const auto model = tuner_model(ds);
  auto backend = runtime::make_backend("cpu", model, ds);

  AutoTunerOptions topts;
  topts.calib_events = 256;
  topts.batch_grid = {32, 128};
  topts.worker_grid = {};
  topts.depth_grid = {};
  topts.validate_top_k = 0;
  AutoTuner tuner(*backend, topts);

  const auto r = tuner.search(0);
  EXPECT_EQ(r.next_index, 2 * 256u);  // no validation traffic
  ASSERT_FALSE(r.ranked.empty());
  // With no measurement, the model's top prediction wins outright.
  EXPECT_EQ(r.chosen.max_batch, r.ranked[0].candidate.max_batch);
  EXPECT_EQ(r.options.max_batch, r.chosen.max_batch);
}

}  // namespace
}  // namespace tgnn::perf
