// StageProfiler: EWMA/mean accumulation, windowed percentiles, the affine
// t(B) = fixed + per_edge * B fit (with its through-origin fallback when
// the window has no batch-size variance), bottleneck identification, and
// reset semantics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "perf/stage_profile.hpp"

namespace tgnn::perf {
namespace {

using Stages = std::array<double, core::kNumStages>;

TEST(StageProfile, EmptyProfileIsInert) {
  StageProfiler prof;
  const auto p = prof.snapshot();
  EXPECT_EQ(p.batches, 0u);
  EXPECT_EQ(p.total_ewma_s(), 0.0);
  EXPECT_EQ(p.bottleneck_ewma_s(), 0.0);
  for (const auto& s : p.stages) {
    EXPECT_EQ(s.ewma_s, 0.0);
    EXPECT_EQ(s.p95_s, 0.0);
  }
}

TEST(StageProfile, ConstantSamplesConvergeEverywhere) {
  // Identical batches: EWMA == mean == p50 == p95 per stage, and the fit
  // has no size variance to exploit — through-origin fallback, so
  // fixed == 0 and per_edge * edges reproduces the stage time.
  StageProfiler prof(0.2, 32);
  const Stages t{1e-3, 2e-3, 4e-3, 0.5e-3};
  for (int i = 0; i < 64; ++i) prof.record(t, 50, 80, 3);
  const auto p = prof.snapshot();
  EXPECT_EQ(p.batches, 64u);
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    EXPECT_NEAR(p.stages[k].ewma_s, t[k], 1e-12);
    EXPECT_NEAR(p.stages[k].mean_s, t[k], 1e-12);
    EXPECT_NEAR(p.stages[k].p50_s, t[k], 1e-12);
    EXPECT_NEAR(p.stages[k].p95_s, t[k], 1e-12);
    EXPECT_EQ(p.stages[k].fixed_s, 0.0);
    EXPECT_NEAR(p.stages[k].per_edge_s * 50.0, t[k], 1e-12);
  }
  EXPECT_NEAR(p.mean_batch_edges, 50.0, 1e-9);
  EXPECT_NEAR(p.ewma_batch_edges, 50.0, 1e-9);
  EXPECT_NEAR(p.vertices_per_edge, 80.0 / 50.0, 1e-9);
  EXPECT_NEAR(p.ewma_queue_depth, 3.0, 1e-9);
  EXPECT_NEAR(p.total_ewma_s(), 7.5e-3, 1e-12);
  EXPECT_NEAR(p.bottleneck_ewma_s(), 4e-3, 1e-12);
  EXPECT_EQ(p.bottleneck_stage(), 2u);  // GnnCompute
  EXPECT_FALSE(p.describe().empty());
}

TEST(StageProfile, AffineFitRecoversFixedAndPerEdgeCost) {
  // Batches alternating between two sizes with a known affine law: the
  // least-squares fit must recover both coefficients.
  StageProfiler prof(0.2, 64);
  const double fixed = 2e-4, per_edge = 3e-6;
  for (int i = 0; i < 40; ++i) {
    const std::size_t edges = (i % 2 == 0) ? 20 : 120;
    Stages t{};
    t[0] = fixed + per_edge * static_cast<double>(edges);
    prof.record(t, edges, 2 * edges, 0);
  }
  const auto p = prof.snapshot();
  EXPECT_NEAR(p.stages[0].fixed_s, fixed, 1e-9);
  EXPECT_NEAR(p.stages[0].per_edge_s, per_edge, 1e-11);
}

TEST(StageProfile, NegativeFitFallsBackToThroughOrigin) {
  // A decreasing cost-vs-size relation (bigger batches cheaper per batch —
  // measurement noise, cache effects) would extrapolate to negative stage
  // times; the fit must refuse it and keep t(B) = m/E * B instead.
  StageProfiler prof(0.2, 64);
  for (int i = 0; i < 40; ++i) {
    const std::size_t edges = (i % 2 == 0) ? 20 : 120;
    Stages t{};
    t[0] = (edges == 20) ? 4e-3 : 1e-3;  // negative slope
    prof.record(t, edges, 2 * edges, 0);
  }
  const auto p = prof.snapshot();
  EXPECT_EQ(p.stages[0].fixed_s, 0.0);
  EXPECT_GT(p.stages[0].per_edge_s, 0.0);
  // Through-origin slope: mean(t)/mean(E) over the window.
  EXPECT_NEAR(p.stages[0].per_edge_s, 2.5e-3 / 70.0, 1e-6);
}

TEST(StageProfile, PercentilesTrackTheRecentWindowOnly) {
  // 8-sample window: a burst of slow batches after many fast ones must own
  // the percentiles (the EWMA moves slowly, the window moves fast).
  StageProfiler prof(0.2, 8);
  Stages fast{};
  fast[2] = 1e-3;
  Stages slow{};
  slow[2] = 9e-3;
  for (int i = 0; i < 100; ++i) prof.record(fast, 10, 20, 0);
  for (int i = 0; i < 8; ++i) prof.record(slow, 10, 20, 0);
  const auto p = prof.snapshot();
  EXPECT_NEAR(p.stages[2].p50_s, 9e-3, 1e-12);
  EXPECT_NEAR(p.stages[2].p95_s, 9e-3, 1e-12);
  EXPECT_LT(p.stages[2].ewma_s, 9e-3);  // EWMA still remembers the past
}

TEST(StageProfile, EwmaRespondsFasterThanMean) {
  StageProfiler prof(0.5, 16);
  Stages a{};
  a[0] = 1e-3;
  Stages b{};
  b[0] = 5e-3;
  for (int i = 0; i < 50; ++i) prof.record(a, 10, 20, 0);
  for (int i = 0; i < 5; ++i) prof.record(b, 10, 20, 0);
  const auto p = prof.snapshot();
  EXPECT_GT(p.stages[0].ewma_s, p.stages[0].mean_s);
}

TEST(StageProfile, ResetClearsEverything) {
  StageProfiler prof;
  const Stages t{1e-3, 1e-3, 1e-3, 1e-3};
  for (int i = 0; i < 10; ++i) prof.record(t, 30, 60, 2);
  prof.reset();
  EXPECT_EQ(prof.batches(), 0u);
  const auto p = prof.snapshot();
  EXPECT_EQ(p.batches, 0u);
  EXPECT_EQ(p.total_ewma_s(), 0.0);
  EXPECT_EQ(p.stages[0].p95_s, 0.0);
}

TEST(StageProfile, StageNamesMatchCoreOrder) {
  EXPECT_STREQ(stage_name(0), "MemoryUpdate");
  EXPECT_STREQ(stage_name(1), "NeighborGather");
  EXPECT_STREQ(stage_name(2), "GnnCompute");
  EXPECT_STREQ(stage_name(3), "Decode");
}

}  // namespace
}  // namespace tgnn::perf
