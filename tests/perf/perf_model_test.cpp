#include "perf/perf_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "fpga/accelerator.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::perf {
namespace {

core::ModelConfig np_m() { return core::np_config('M', 172, 0); }

TEST(PerfModel, SteadyStateBasics) {
  PerfModel pm(fpga::u200_design(), fpga::alveo_u200(), np_m());
  const auto p = pm.steady_state();
  EXPECT_GT(p.t_comp_s, 0.0);
  EXPECT_GT(p.t_ls_s, 0.0);
  EXPECT_GE(p.tp_s, std::max(p.t_comp_s, p.t_ls_s) - 1e-15);
  EXPECT_GT(p.throughput_eps, 0.0);
}

TEST(PerfModel, LatencyLinearInBatchWaves) {
  PerfModel pm(fpga::u200_design(), fpga::alveo_u200(), np_m());
  const auto p1 = pm.predict(1000);
  const auto p2 = pm.predict(2000);
  // Eq. 22: latency = (beta - 1 + waves) * Tp — doubling N roughly doubles
  // the wave count but not the pipeline-fill constant.
  EXPECT_GT(p2.latency_s, p1.latency_s);
  EXPECT_LT(p2.latency_s, 2.0 * p1.latency_s);
}

TEST(PerfModel, U200PredictsFasterThanZcu104) {
  PerfModel u(fpga::u200_design(), fpga::alveo_u200(), np_m());
  PerfModel z(fpga::zcu104_design(), fpga::zcu104(), np_m());
  EXPECT_GT(u.steady_state().throughput_eps, z.steady_state().throughput_eps);
  EXPECT_LT(u.predict(1000).latency_s, z.predict(1000).latency_s);
}

TEST(PerfModel, PruningImprovesThroughputPrediction) {
  auto l = core::np_config('L', 172, 0);
  auto s = core::np_config('S', 172, 0);
  PerfModel pl(fpga::u200_design(), fpga::alveo_u200(), l);
  PerfModel ps(fpga::u200_design(), fpga::alveo_u200(), s);
  EXPECT_GE(ps.steady_state().throughput_eps,
            pl.steady_state().throughput_eps);
}

// The Fig. 6 property: the analytic model predicts the cycle simulator
// within a modest error band (the paper reports 9.9-12.8%; we accept a
// looser band since our simulator charges refresh + flush + dedup effects).
class PredictionError : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictionError, WithinBandOfSimulator) {
  const std::size_t batch = GetParam();
  data::SyntheticConfig dcfg;
  dcfg.num_users = 300;
  dcfg.num_items = 100;
  dcfg.num_edges = 4000;
  dcfg.edge_dim = 172;
  dcfg.seed = 5;
  const auto ds = data::make_synthetic(dcfg);
  core::TgnModel model(np_m(), 1);
  model.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));

  fpga::Accelerator acc(model, ds, fpga::u200_design(), fpga::alveo_u200());
  acc.warmup({0, 2000});
  const auto edges = ds.graph.edges({2000, 2000 + batch});
  const double actual = acc.simulate_batch_seconds(edges);

  PerfModel pm(fpga::u200_design(), fpga::alveo_u200(), np_m());
  // Dedup factor measured on the same stream region being predicted — the
  // workload statistic changes as the graph warms up (early edges touch
  // mostly fresh vertices).
  pm.set_vertices_per_edge(PerfModel::measure_vertices_per_edge(
      ds, {2000, 2000 + batch}, fpga::u200_design().nb));
  const double predicted = pm.predict(batch).latency_s;

  const double err = std::fabs(predicted - actual) / actual;
  EXPECT_LT(err, 0.5) << "batch=" << batch << " predicted=" << predicted
                      << " actual=" << actual;
}

INSTANTIATE_TEST_SUITE_P(Batches, PredictionError,
                         ::testing::Values(100, 400, 1000, 2000));

}  // namespace
}  // namespace tgnn::perf
