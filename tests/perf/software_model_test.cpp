// SoftwarePerfModel: the model math on synthetic fits (pipelining, worker
// discount, backend-thread dilation, overhead residual), and the
// calibration contract the auto-tuner rests on — two-point calibration off
// real serving profiles predicts measured throughput within a pinned
// tolerance on every CPU backend flavor, including at a held-out batch
// size neither calibration run used.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>

#include "data/synthetic.hpp"
#include "perf/auto_tuner.hpp"
#include "runtime/serving.hpp"

namespace tgnn::perf {
namespace {

/// A profile with known affine stage laws (so the model's inputs are
/// exact): t_k(B) = fixed[k] + per_edge[k] * B.
StageProfile synthetic_profile(const std::array<double, core::kNumStages>& fx,
                               const std::array<double, core::kNumStages>& pe,
                               double batch_edges) {
  StageProfile p;
  p.batches = 64;
  p.ewma_batch_edges = batch_edges;
  p.mean_batch_edges = batch_edges;
  p.vertices_per_edge = 2.0;
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    p.stages[k].fixed_s = fx[k];
    p.stages[k].per_edge_s = pe[k];
    p.stages[k].ewma_s = fx[k] + pe[k] * batch_edges;
    p.stages[k].mean_s = p.stages[k].ewma_s;
  }
  return p;
}

const std::array<double, core::kNumStages> kFx{1e-4, 2e-4, 4e-4, 1e-4};
const std::array<double, core::kNumStages> kPe{1e-6, 2e-6, 6e-6, 1e-6};

TEST(SoftwarePerfModel, SerialPeriodIsSumOfStages) {
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  SwCandidate c;
  c.max_batch = 100;
  const auto p = m.predict(c);
  double expect = 0.0;
  for (std::size_t k = 0; k < core::kNumStages; ++k)
    expect += kFx[k] + kPe[k] * 100.0;
  EXPECT_NEAR(p.batch_s, expect, 1e-12);
  EXPECT_NEAR(p.period_s, expect, 1e-12);
  EXPECT_NEAR(p.throughput_rps, 100.0 / expect, 1e-6);
  EXPECT_NEAR(p.bottleneck_s, kFx[2] + kPe[2] * 100.0, 1e-12);
}

TEST(SoftwarePerfModel, FixedCostMakesLargerBatchesWin) {
  // With a per-batch fixed cost, throughput must increase with batch size
  // (amortization) — the gradient the online tuner climbs.
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  SwCandidate lo, hi;
  lo.max_batch = 32;
  hi.max_batch = 256;
  EXPECT_GT(m.predict(hi).throughput_rps, m.predict(lo).throughput_rps);
}

TEST(SoftwarePerfModel, PipeliningBeatsSerialOnParallelHardware) {
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  m.set_hardware_threads(8);
  SwCandidate serial, piped;
  serial.max_batch = piped.max_batch = 128;
  piped.pipelined = true;
  piped.pipeline_depth = core::kNumStages;
  const auto ps = m.predict(serial);
  const auto pp = m.predict(piped);
  // Steady state: period collapses toward the bottleneck stage...
  EXPECT_LT(pp.period_s, ps.period_s);
  EXPECT_GE(pp.period_s, pp.bottleneck_s - 1e-12);
  // ...but the first batch still pays the full fill.
  EXPECT_GE(pp.fill_s, ps.batch_s - 1e-12);
}

TEST(SoftwarePerfModel, PipeliningBuysNothingOnOneCore) {
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  m.set_hardware_threads(1);
  SwCandidate serial, piped;
  serial.max_batch = piped.max_batch = 128;
  piped.pipelined = true;
  EXPECT_NEAR(m.predict(piped).period_s, m.predict(serial).period_s, 1e-12);
}

TEST(SoftwarePerfModel, BackendThreadsDilatePipelinedStages) {
  // A backend whose serial batch already used all the cores: concurrent
  // stages contend, stage times dilate, and pipelining must predict no
  // better than serial (within the model: equal at full dilation).
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  m.set_hardware_threads(4);
  SwCandidate piped;
  piped.max_batch = 128;
  piped.pipelined = true;
  piped.pipeline_depth = 4;
  const auto lone = m.predict(piped);
  m.set_backend_threads(4);
  const auto contended = m.predict(piped);
  EXPECT_GT(contended.period_s, lone.period_s);
  SwCandidate serial;
  serial.max_batch = 128;
  EXPECT_GE(contended.period_s, m.predict(serial).period_s - 1e-12);
}

TEST(SoftwarePerfModel, WorkerDiscountShrinksWithFootprint) {
  // Small batches on a big graph rarely collide -> near-linear speedup;
  // batches whose footprints cover the graph collide always -> serial.
  SoftwarePerfModel m(synthetic_profile(kFx, kPe, 100));
  m.set_hardware_threads(8);
  m.set_num_nodes(1000000);
  SwCandidate w;
  w.workers = 4;
  w.max_batch = 16;
  const auto small = m.predict(w);
  SwCandidate serial = w;
  serial.workers = 1;
  EXPECT_LT(small.period_s, m.predict(serial).period_s);

  m.set_num_nodes(100);  // footprint >> graph: every batch collides
  const auto collide = m.predict(w);
  serial.max_batch = w.max_batch;
  // exp(-footprint^2/nodes) is ~3.6e-5, not exactly 0: near-serial.
  const double serial_s = m.predict(serial).period_s;
  EXPECT_NEAR(collide.period_s, serial_s, 1e-3 * serial_s);
}

TEST(SoftwarePerfModel, TwoPointCalibrationRecoversAffineLaw) {
  const auto lo = synthetic_profile(kFx, kPe, 40);
  const auto hi = synthetic_profile(kFx, kPe, 160);
  SoftwarePerfModel m(lo, hi);
  for (std::size_t k = 0; k < core::kNumStages; ++k) {
    EXPECT_NEAR(m.stage_time_s(k, 40), kFx[k] + kPe[k] * 40.0, 1e-12);
    EXPECT_NEAR(m.stage_time_s(k, 400), kFx[k] + kPe[k] * 400.0, 1e-12);
  }
}

TEST(SoftwarePerfModel, DegenerateSpacingFallsBackToThroughOrigin) {
  const auto p = synthetic_profile(kFx, kPe, 100);
  SoftwarePerfModel m(p, p);  // zero spread
  for (std::size_t k = 0; k < core::kNumStages; ++k)
    EXPECT_NEAR(m.stage_time_s(k, 100), p.stages[k].ewma_s, 1e-12);
}

TEST(SoftwarePerfModel, OverheadCalibrationRecoversResidual) {
  // Measured throughput implying a known affine scheduler overhead on top
  // of the stage law: the residual fit must recover it exactly, and
  // predict() must charge it to the period.
  const auto lo = synthetic_profile(kFx, kPe, 40);
  const auto hi = synthetic_profile(kFx, kPe, 160);
  SoftwarePerfModel m(lo, hi);
  const double oh_fx = 1e-3, oh_pi = 1e-5;
  const auto rps_with_overhead = [&](double b) {
    double stage_s = 0.0;
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      stage_s += kFx[k] + kPe[k] * b;
    return b / (stage_s + oh_fx + oh_pi * b);
  };
  EXPECT_NEAR(m.overhead_s(40), 0.0, 1e-15);  // zero before calibration
  m.calibrate_overhead(lo, rps_with_overhead(40), hi, rps_with_overhead(160));
  EXPECT_NEAR(m.overhead_s(40), oh_fx + oh_pi * 40.0, 1e-12);
  EXPECT_NEAR(m.overhead_s(400), oh_fx + oh_pi * 400.0, 1e-12);
  SwCandidate c;
  c.max_batch = 100;
  const auto p = m.predict(c);
  double expect = oh_fx + oh_pi * 100.0;
  for (std::size_t k = 0; k < core::kNumStages; ++k)
    expect += kFx[k] + kPe[k] * 100.0;
  EXPECT_NEAR(p.period_s, expect, 1e-12);
}

TEST(SoftwarePerfModel, NegativeResidualClampsToZeroOverhead) {
  // A measurement FASTER than the bucketed stage sum (possible under
  // noise) must not produce a negative overhead that inflates predictions.
  const auto lo = synthetic_profile(kFx, kPe, 40);
  const auto hi = synthetic_profile(kFx, kPe, 160);
  SoftwarePerfModel m(lo, hi);
  const auto fast_rps = [&](double b) {
    double stage_s = 0.0;
    for (std::size_t k = 0; k < core::kNumStages; ++k)
      stage_s += kFx[k] + kPe[k] * b;
    return b / (0.5 * stage_s);
  };
  m.calibrate_overhead(lo, fast_rps(40), hi, fast_rps(160));
  EXPECT_NEAR(m.overhead_s(40), 0.0, 1e-15);
  EXPECT_NEAR(m.overhead_s(160), 0.0, 1e-15);
}

// ---- calibration against real measurements ---------------------------------
//
// The pinned contract: tune-time calibration (two profile runs at batch 32
// and 96, stage fits + overhead residual — exactly what AutoTuner::search
// does) predicts the measured serial throughput of a HELD-OUT third run at
// batch 64 within [1/3, 3]x on every CPU backend flavor, and reproduces
// the two calibration points themselves. On a quiet machine the error is
// well under 2x; the band leaves room for ctest -j neighbors stealing CPU
// from some runs and not others. Without the overhead term the error at
// small batches is 3-4x even when quiet — the scheduler work outside the
// PartTimes buckets dominates there — so this also pins that the residual
// fit earns its keep.

constexpr double kRatioLo = 1.0 / 3.0;
constexpr double kRatioHi = 3.0;

void expect_calibrated(const std::string& key) {
  data::SyntheticConfig dcfg;
  dcfg.name = "swmodel";
  dcfg.num_users = 600;
  dcfg.num_items = 500;
  dcfg.num_edges = 16000;  // room for warmup + nine measured runs
  dcfg.edge_dim = 16;
  dcfg.seed = 29;
  const auto ds = data::make_synthetic(dcfg);
  // Dims large enough that stage compute dominates the per-batch
  // scheduler overhead PartTimes cannot see — the model predicts
  // compute, so the workload must be compute-bound for the comparison
  // to be stable.
  core::ModelConfig cfg;
  cfg.mem_dim = 64;
  cfg.time_dim = 8;
  cfg.emb_dim = 32;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 10;
  const core::TgnModel model(cfg, 5);
  runtime::BackendOptions bopts;
  bopts.threads = 2;
  auto backend = runtime::make_backend(key, model, ds, bopts);

  AutoTuner tuner(*backend, {});
  // Divisible by 32, 96, AND the held-out 64 so every run's mean batch
  // size is exact. This is a wall-clock test on a shared machine (ctest -j
  // neighbors, container CPU steal, and a ~5x throughput ramp over a fresh
  // process's first few hundred ms), so two defenses:
  //  * a LONG warmup (re-serving the warmup region until enough wall time
  //    has burned) to get past the ramp before anything is measured,
  //  * each point measured best-of-3 with the three points interleaved
  //    round-robin — interference only ever slows a run down, so max rps
  //    is the quiet-machine throughput the model actually predicts, and
  //    interleaving spreads any residual drift across all points instead
  //    of biasing whichever was measured last.
  const std::size_t kEvents = 1152;
  const std::size_t kWarmup = 2304;
  std::size_t cursor = 0;
  runtime::ServingOptions sopts;
  sopts.max_wait_s = 10.0;  // closed loop: every batch forms at the cap
  struct Run {
    StageProfile prof;
    double rps = 0.0;
  };
  const auto measure = [&](std::size_t batch, Run& best) {
    sopts.max_batch = batch;
    double rps = 0.0;
    auto prof = tuner.profile_run(sopts, cursor, kEvents, &rps);
    cursor += kEvents;
    if (rps > best.rps) best = {prof, rps};
  };

  // Warmup: re-serve the opening region until ~0.4 s of wall time has
  // burned. Re-serving the same events keeps backend state valid (they
  // are legal traffic) without consuming the measured regions.
  sopts.max_batch = 64;
  const auto warm_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  do {
    (void)tuner.profile_run(sopts, 0, kWarmup);
  } while (std::chrono::steady_clock::now() < warm_until);
  cursor = kWarmup;

  Run lo, hi, mid;
  for (int rep = 0; rep < 3; ++rep) {
    measure(32, lo);
    measure(96, hi);
    measure(64, mid);
  }
  const double rps_lo = lo.rps, rps_hi = hi.rps, rps_mid = mid.rps;
  ASSERT_GT(hi.prof.total_ewma_s(), 0.0) << key;
  ASSERT_GT(rps_lo, 0.0) << key;
  ASSERT_GT(rps_mid, 0.0) << key;

  SoftwarePerfModel m(lo.prof, hi.prof);
  m.set_num_nodes(ds.graph.num_nodes());
  m.calibrate_overhead(lo.prof, rps_lo, hi.prof, rps_hi);
  SwCandidate c;
  const std::pair<std::size_t, double> points[] = {
      {32, rps_lo}, {64, rps_mid}, {96, rps_hi}};
  for (const auto& [batch, measured] : points) {
    c.max_batch = batch;
    const double predicted = m.predict(c).throughput_rps;
    ASSERT_GT(predicted, 0.0) << key << " batch " << batch;
    const double ratio = predicted / measured;
    EXPECT_GE(ratio, kRatioLo) << key << " batch " << batch << ": predicted "
                               << predicted << " vs measured " << measured;
    EXPECT_LE(ratio, kRatioHi) << key << " batch " << batch << ": predicted "
                               << predicted << " vs measured " << measured;
  }
}

TEST(SoftwareModelCalibration, Cpu) { expect_calibrated("cpu"); }

TEST(SoftwareModelCalibration, CpuMt) { expect_calibrated("cpu-mt"); }

TEST(SoftwareModelCalibration, ShardedCpu) { expect_calibrated("sharded-cpu"); }

}  // namespace
}  // namespace tgnn::perf
