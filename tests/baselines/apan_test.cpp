#include "baselines/apan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"

namespace tgnn::baselines {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 600;
  dcfg.edge_dim = 6;
  dcfg.seed = 17;
  return data::make_synthetic(dcfg);
}

ApanConfig tiny_cfg(const data::Dataset& ds) {
  ApanConfig cfg;
  cfg.mailbox_size = 5;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.node_dim = ds.node_dim();
  cfg.score_hidden = 8;
  cfg.decoder_hidden = 8;
  return cfg;
}

TEST(Apan, PayloadDimPrefersEdgeFeatures) {
  ApanConfig cfg;
  cfg.edge_dim = 172;
  cfg.node_dim = 0;
  EXPECT_EQ(cfg.payload_dim(), 172u);
  cfg.edge_dim = 0;
  cfg.node_dim = 200;
  EXPECT_EQ(cfg.payload_dim(), 200u);
}

TEST(Apan, TrainAndEvaluateAboveChance) {
  const auto ds = tiny_ds();
  Apan apan(tiny_cfg(ds), ds, 1);
  Apan::TrainOptions opts;
  opts.epochs = 6;
  opts.batch_size = 60;
  opts.lr = 2e-3;
  apan.train(opts);
  apan.reset_state();
  apan.fast_forward({0, ds.val_end});
  Rng rng(3);
  const double ap = apan.evaluate_ap(ds.test_range(), 60, rng);
  EXPECT_GT(ap, 0.5);
  EXPECT_LE(ap, 1.0);
}

TEST(Apan, LatencyMeasurementProducesSamples) {
  const auto ds = tiny_ds();
  Apan apan(tiny_cfg(ds), ds, 1);
  apan.fast_forward({0, ds.val_end});
  const auto lat = apan.measure_latency(ds.test_range(), 30);
  EXPECT_EQ(lat.size(),
            (ds.num_edges() - ds.val_end + 29) / 30);
  for (double l : lat) EXPECT_GE(l, 0.0);
}

TEST(Apan, ResetStateClearsMailboxes) {
  const auto ds = tiny_ds();
  Apan apan(tiny_cfg(ds), ds, 1);
  apan.fast_forward({0, 100});
  apan.reset_state();
  // After reset, evaluation scores come from empty mailboxes; every
  // embedding is zero so all scores equal -> AP near 0.5 bound check only.
  Rng rng(4);
  const double ap = apan.evaluate_ap({100, 160}, 30, rng);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

}  // namespace
}  // namespace tgnn::baselines
