#include "baselines/gpu_sim.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace tgnn::baselines {
namespace {

TEST(GpuSim, TitanXpSpecMatchesTableIII) {
  const auto s = titan_xp();
  EXPECT_NEAR(s.mem_bw, 547e9, 1e9);
  EXPECT_GT(s.peak_flops, 10e12);
}

TEST(GpuSim, SmallBatchIsLaunchBound) {
  const auto cfg = core::baseline_config(172, 0);
  GpuSim sim(titan_xp(), cfg);
  const double t1 = sim.batch_seconds(1, 2);
  const double launch_budget = static_cast<double>(kernels_per_batch(cfg)) *
                               titan_xp().framework_ops_factor *
                               titan_xp().kernel_launch_s;
  // At batch 1 nearly all time is kernel launches.
  EXPECT_GT(launch_budget / t1, 0.8);
}

TEST(GpuSim, LatencyMonotoneInBatchSize) {
  GpuSim sim(titan_xp(), core::baseline_config(172, 0));
  double prev = 0.0;
  for (std::size_t b : {10, 100, 1000, 10000}) {
    const double t = sim.batch_seconds(b, 2 * b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GpuSim, ThroughputImprovesWithBatchSize) {
  GpuSim sim(titan_xp(), core::baseline_config(172, 0));
  const double tp_small = 10.0 / sim.batch_seconds(10, 20);
  const double tp_large = 5000.0 / sim.batch_seconds(5000, 10000);
  EXPECT_GT(tp_large, 5.0 * tp_small);  // the paper's GPU batch behaviour
}

TEST(GpuSim, SimplifiedModelUsesFewerKernels) {
  auto base = core::baseline_config(172, 0);
  auto sat = base;
  sat.attention = core::AttentionKind::kSimplified;
  EXPECT_LT(kernels_per_batch(sat), kernels_per_batch(base));
}

TEST(GpuSim, CoDesignedModelIsFasterAtLargeBatch) {
  const auto base = core::baseline_config(172, 0);
  const auto np = core::np_config('M', 172, 0);
  GpuSim sb(titan_xp(), base), sn(titan_xp(), np);
  EXPECT_LT(sn.batch_seconds(5000, 10000), sb.batch_seconds(5000, 10000));
}

TEST(GpuSim, PartsSumToTotal) {
  GpuSim sim(titan_xp(), core::baseline_config(172, 0));
  const auto parts = sim.batch_parts(100, 200);
  EXPECT_NEAR(parts.total(), sim.batch_seconds(100, 200), 1e-12);
  EXPECT_GT(parts.gnn, parts.sample);
}

TEST(GpuSim, RunSeconds) {
  const auto ds = data::wikipedia_like(0.02);
  GpuSim sim(titan_xp(), core::baseline_config(ds.edge_dim(), ds.node_dim()));
  const double t = sim.run_seconds(ds, {0, 500}, 100);
  EXPECT_GT(t, 0.0);
  // 5 batches, each at least 20 logical kernels of launch overhead.
  EXPECT_GE(t, 5 * 20 * titan_xp().framework_ops_factor *
                   titan_xp().kernel_launch_s);
}

}  // namespace
}  // namespace tgnn::baselines
