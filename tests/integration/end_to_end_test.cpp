// Integration tests spanning training, inference, baselines, and the FPGA
// simulator — the small-scale versions of the paper's headline claims.
#include <gtest/gtest.h>

#include "baselines/cpu_runner.hpp"
#include "baselines/gpu_sim.hpp"
#include "data/synthetic.hpp"
#include "fpga/accelerator.hpp"
#include "perf/perf_model.hpp"
#include "tgnn/trainer.hpp"

namespace tgnn {
namespace {

data::Dataset small_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 80;
  dcfg.num_items = 25;
  dcfg.num_edges = 1200;
  dcfg.edge_dim = 8;
  dcfg.seed = 31;
  return data::make_synthetic(dcfg);
}

core::ModelConfig cfg_for(const data::Dataset& ds, bool student) {
  core::ModelConfig cfg;
  cfg.mem_dim = 10;
  cfg.time_dim = 5;
  cfg.emb_dim = 8;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.decoder_hidden = 12;
  if (student) {
    cfg.attention = core::AttentionKind::kSimplified;
    cfg.time_encoder = core::TimeEncoderKind::kLut;
    cfg.lut_bins = 16;
    cfg.prune_budget = 3;
  }
  return cfg;
}

TEST(EndToEnd, DistilledStudentApClosesOnTeacher) {
  const auto ds = small_ds();
  core::TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 80;

  const auto tcfg = cfg_for(ds, false);
  core::TgnModel teacher(tcfg, 1);
  Rng drng(2);
  core::Decoder tdec(tcfg, drng);
  const auto tfit = core::fit_and_eval(teacher, tdec, ds, opts);

  const auto scfg = cfg_for(ds, true);
  core::TgnModel student(scfg, 3);
  core::Decoder sdec(scfg, drng);
  core::TrainOptions sopts = opts;
  sopts.teacher = &teacher;
  const auto sfit = core::fit_and_eval(student, sdec, ds, sopts);

  EXPECT_GT(tfit.test_ap, 0.55);
  EXPECT_GT(sfit.test_ap, 0.55);
  // The Table II property at small scale: the distilled student stays in
  // the teacher's neighborhood. The band is wide because this smoke test
  // runs 3 epochs on 1.2k edges; bench/table2_model_opts reproduces the
  // paper-scale gap (<0.01).
  EXPECT_GT(sfit.test_ap, tfit.test_ap - 0.25);
}

TEST(EndToEnd, FpgaAccuracyEqualsCpuAccuracy) {
  // §VI-B: "the accuracy of our simplified models are the same on FPGAs as
  // on CPU". The accelerator's functional path must reproduce the engine's
  // AP exactly (same RNG stream, same embeddings).
  const auto ds = small_ds();
  const auto scfg = cfg_for(ds, true);
  core::TgnModel student(scfg, 3);
  Rng drng(2);
  core::Decoder dec(scfg, drng);
  core::TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 80;
  core::Trainer(student, dec, ds, opts).train();

  core::InferenceEngine cpu(student, ds, true);
  cpu.warmup({0, ds.val_end});
  Rng r1(9);
  const double cpu_ap = cpu.evaluate_ap(ds.test_range(), dec, 60, r1);

  fpga::Accelerator acc(student, ds, fpga::zcu104_design(), fpga::zcu104());
  acc.warmup({0, ds.val_end});
  Rng r2(9);
  // Evaluate through the accelerator's engine (functional path).
  const double fpga_ap =
      acc.engine().evaluate_ap(ds.test_range(), dec, 60, r2);
  EXPECT_DOUBLE_EQ(cpu_ap, fpga_ap);
}

TEST(EndToEnd, FpgaBeatsMeasuredCpuAtSmallBatch) {
  // The headline latency claim, at test scale: the simulated U200 processes
  // a small batch faster than the measured 1-thread CPU reference.
  const auto ds = small_ds();
  const auto scfg = cfg_for(ds, true);
  core::TgnModel student(scfg, 3);
  student.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));

  baselines::CpuRunner cpu(student, ds, 1);
  cpu.warmup({0, ds.val_end});
  const auto cpu_res = cpu.run(ds.test_range(), 100);

  fpga::Accelerator acc(student, ds, fpga::u200_design(), fpga::alveo_u200());
  acc.warmup({0, ds.val_end});
  const auto fpga_res = acc.run(ds.test_range(), 100);

  EXPECT_LT(fpga_res.mean_latency_s(), cpu_res.mean_latency_s());
}

TEST(EndToEnd, GpuModelSlowerThanFpgaAtSmallBatchFasterAtNothing) {
  // Fig. 5 shape: at small batches the GPU is launch-bound and the FPGA
  // wins on latency.
  const auto cfg = core::np_config('M', 172, 0);
  baselines::GpuSim gpu(baselines::titan_xp(), cfg);
  perf::PerfModel pm(fpga::u200_design(), fpga::alveo_u200(), cfg);
  const double gpu_latency = gpu.batch_seconds(200, 400);
  const double fpga_latency = pm.predict(200).latency_s;
  EXPECT_LT(fpga_latency, gpu_latency);
}

}  // namespace
}  // namespace tgnn
