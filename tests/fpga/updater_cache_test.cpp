#include "fpga/updater_cache.hpp"

#include <gtest/gtest.h>

namespace tgnn::fpga {
namespace {

TEST(UpdaterCache, DrainReturnsChronologicalOrder) {
  UpdaterCache cache(8, /*ncu=*/2);
  // CU 0 writes 10, 11; CU 1 writes 20, 21. Interleaved slots: CU0 at
  // 0,2,..., CU1 at 1,3,... The ring order is the arrival order.
  cache.write(0, 10);
  cache.write(1, 20);
  cache.write(0, 11);
  cache.write(1, 21);
  const auto out = cache.drain();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 20u);
  EXPECT_EQ(out[2], 11u);
  EXPECT_EQ(out[3], 21u);
}

TEST(UpdaterCache, DuplicateVertexInvalidatesOlderLine) {
  UpdaterCache cache(8, 2);
  cache.write(0, 42);
  cache.write(1, 42);  // newer version of vertex 42
  const auto out = cache.drain();
  ASSERT_EQ(out.size(), 1u);  // only the newest survives
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(UpdaterCache, RedundantEliminationAcrossManyWrites) {
  UpdaterCache cache(16, 1);
  for (int i = 0; i < 8; ++i) cache.write(0, 7);  // same vertex 8 times
  EXPECT_EQ(cache.pending(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 7u);
}

TEST(UpdaterCache, WriteFailsWhenLaneFull) {
  UpdaterCache cache(4, 2);  // CU 0 owns slots 0, 2.
  EXPECT_TRUE(cache.write(0, 1));
  EXPECT_TRUE(cache.write(0, 2));
  EXPECT_FALSE(cache.write(0, 3));  // lane full
  cache.drain();
  EXPECT_TRUE(cache.write(0, 3));
}

TEST(UpdaterCache, DrainCyclesScansThreePerCycle) {
  UpdaterCache cache(12, 1, 3);
  EXPECT_EQ(cache.drain_cycles(12), 4u);
  EXPECT_EQ(cache.drain_cycles(1), 1u);
  EXPECT_EQ(cache.drain_cycles(0), 0u);
}

TEST(UpdaterCache, StatsAccumulate) {
  UpdaterCache cache(8, 2);
  cache.write(0, 1);
  cache.write(1, 2);
  cache.drain();
  EXPECT_EQ(cache.stats().writes, 2u);
  EXPECT_EQ(cache.stats().commits, 2u);
  EXPECT_GT(cache.stats().commit_cycles, 0u);
}

TEST(UpdaterCache, ResetClearsEverything) {
  UpdaterCache cache(8, 2);
  cache.write(0, 1);
  cache.reset();
  EXPECT_EQ(cache.pending(), 0u);
  EXPECT_EQ(cache.stats().writes, 0u);
}

TEST(UpdaterCache, DrainStaysChronologicalAfterWriteWrap) {
  // Regression: ring position alone is not arrival order once a write
  // pointer wraps. With 4 lines / 1 CU: A,B,C fill slots 0-2, drain, then
  // D,E land in slots 3 and 0 — a plain ring walk from slot 0 would
  // return E before D.
  UpdaterCache cache(4, 1);
  cache.write(0, 1);
  cache.write(0, 2);
  cache.write(0, 3);
  (void)cache.drain();
  cache.write(0, 4);  // slot 3
  cache.write(0, 5);  // slot 0 (wrapped)
  const auto out = cache.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 5u);
}

TEST(UpdaterCache, InvalidatedSlotStaysUsableAndOrdered) {
  // An invalidated line frees its slot for the owning CU's next write;
  // the re-written slot commits at its NEW position in arrival order.
  UpdaterCache cache(4, 2);
  cache.write(0, 10);  // slot 0
  cache.write(1, 10);  // slot 1 — invalidates slot 0
  cache.write(0, 11);  // slot 0 is CU0's lane but pointer moved: slot 2
  EXPECT_EQ(cache.pending(), 2u);
  const auto out = cache.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 11u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(UpdaterCache, RejectsBadGeometry) {
  EXPECT_THROW(UpdaterCache(0, 1), std::invalid_argument);
  EXPECT_THROW(UpdaterCache(7, 2), std::invalid_argument);  // not divisible
  UpdaterCache cache(4, 2);
  EXPECT_THROW(cache.write(5, 0), std::out_of_range);
}

}  // namespace
}  // namespace tgnn::fpga
