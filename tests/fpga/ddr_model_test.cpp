#include "fpga/ddr_model.hpp"

#include <gtest/gtest.h>

namespace tgnn::fpga {
namespace {

TEST(DdrModel, AlphaIncreasesWithBurstLength) {
  DdrModel ddr(77.0);
  EXPECT_LT(ddr.alpha(16), ddr.alpha(64));
  EXPECT_LT(ddr.alpha(64), ddr.alpha(4096));
  EXPECT_GT(ddr.alpha(16), 0.0);
  EXPECT_LE(ddr.alpha(1 << 20), 1.0);
}

TEST(DdrModel, SecondsLinearInBytes) {
  DdrModel ddr(77.0);
  const double t1 = ddr.seconds_for(1000, 64);
  const double t2 = ddr.seconds_for(2000, 64);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
}

TEST(DdrModel, ShortBurstsPayOverhead) {
  DdrModel ddr(77.0);
  // Same bytes, shorter bursts -> more time.
  EXPECT_GT(ddr.seconds_for(1 << 20, 32), ddr.seconds_for(1 << 20, 4096));
}

TEST(DdrModel, PeakBandwidthBound) {
  DdrModel ddr(77.0);
  // A huge burst approaches peak: 1 GB at 77 GB/s ~ 13 ms.
  const double t = ddr.seconds_for(1'000'000'000, 1 << 22);
  EXPECT_NEAR(t, 1.0 / 77.0, 1e-3);
}

TEST(DdrModel, RefreshAddsTime) {
  DdrModel ddr(19.2);
  const std::size_t bytes = 10'000'000;  // ~0.5 ms busy: spans ~66 tREFI
  const double plain = ddr.seconds_for(bytes, 4096);
  const double with = ddr.seconds_with_refresh(0.0, bytes, 4096);
  EXPECT_GT(with, plain);
  // Refresh overhead ~ tRFC/tREFI ~ 4.5%.
  EXPECT_LT(with, plain * 1.10);
}

TEST(DdrModel, RefreshNoopForZeroBytes) {
  DdrModel ddr(19.2);
  EXPECT_EQ(ddr.seconds_with_refresh(1.0, 0, 64), 0.0);
}

TEST(DdrModel, RejectsBadBandwidth) {
  EXPECT_THROW(DdrModel(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::fpga
