#include "fpga/embedding_unit.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tgnn::fpga {
namespace {

core::ModelConfig sat_cfg() {
  core::ModelConfig cfg;
  cfg.mem_dim = 10;
  cfg.time_dim = 6;
  cfg.emb_dim = 8;
  cfg.edge_dim = 5;
  cfg.num_neighbors = 6;
  cfg.attention = core::AttentionKind::kSimplified;
  return cfg;
}

// The hardware linearity claim (§IV-B): FAM aggregate-then-FTM-transform
// equals the reference per-neighbor-projection order, because alpha is
// feature-independent and sums to 1.
class EuEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EuEquivalence, AggregateThenTransformMatchesReference) {
  const std::size_t n_valid = GetParam();
  const auto cfg = sat_cfg();
  Rng rng(n_valid * 13 + 1);
  core::SimplifiedAttention sat(cfg, rng);
  EmbeddingUnit eu(u200_design(), cfg);

  std::vector<double> dts(n_valid);
  for (auto& d : dts) d = rng.uniform() * 100.0;
  const auto scores = sat.score(dts, /*budget=*/0);
  const Tensor v_in = Tensor::randn(scores.keep.size(), cfg.kv_in_dim(), rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);

  const Tensor ref = sat.aggregate(f.row(0), scores, v_in);
  std::uint64_t cycles = 0;
  const Tensor got = eu.forward_tiled(sat, f.row(0), scores, v_in, &cycles);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-4f);
  EXPECT_GT(cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(NeighborCounts, EuEquivalence,
                         ::testing::Values(0, 1, 2, 4, 6));

TEST(EmbeddingUnit, EquivalenceHoldsUnderPruning) {
  const auto cfg = sat_cfg();
  Rng rng(71);
  core::SimplifiedAttention sat(cfg, rng);
  EmbeddingUnit eu(u200_design(), cfg);
  const std::vector<double> dts = {5.0, 2.0, 80.0, 0.5, 12.0, 1.0};
  const auto scores = sat.score(dts, /*budget=*/3);
  ASSERT_EQ(scores.keep.size(), 3u);
  const Tensor v_in = Tensor::randn(3, cfg.kv_in_dim(), rng);
  const Tensor f = Tensor::randn(1, cfg.mem_dim, rng);
  EXPECT_LT(ops::max_abs_diff(sat.aggregate(f.row(0), scores, v_in),
                              eu.forward_tiled(sat, f.row(0), scores, v_in)),
            1e-4f);
}

TEST(EmbeddingUnit, CycleCountsScaleWithVerticesAndBudget) {
  auto cfg = sat_cfg();
  EmbeddingUnit eu(u200_design(), cfg);
  EXPECT_EQ(eu.aggregation_cycles(10), 2 * eu.aggregation_cycles(5));
  auto pruned = cfg;
  pruned.prune_budget = 2;
  EmbeddingUnit eu_pruned(u200_design(), pruned);
  EXPECT_LT(eu_pruned.aggregation_cycles(10), eu.aggregation_cycles(10));
  EXPECT_LT(eu_pruned.encode_cycles(10), eu.encode_cycles(10));
}

TEST(EmbeddingUnit, LutEncoderReducesCycles) {
  // Paper-scale widths so the ceil() quantization cannot mask the change.
  auto cfg = sat_cfg();
  cfg.time_dim = 100;
  cfg.mem_dim = 100;
  cfg.emb_dim = 100;
  cfg.edge_dim = 172;
  EmbeddingUnit cos_eu(u200_design(), cfg);
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  EmbeddingUnit lut_eu(u200_design(), cfg);
  EXPECT_LT(lut_eu.encode_cycles(10), cos_eu.encode_cycles(10));
  EXPECT_LT(lut_eu.aggregation_cycles(10), cos_eu.aggregation_cycles(10));
  EXPECT_LT(lut_eu.transform_cycles(10), cos_eu.transform_cycles(10));
}

TEST(EmbeddingUnit, RejectsRowMismatch) {
  const auto cfg = sat_cfg();
  Rng rng(5);
  core::SimplifiedAttention sat(cfg, rng);
  EmbeddingUnit eu(u200_design(), cfg);
  const auto scores = sat.score({1.0, 2.0}, 0);
  EXPECT_THROW(eu.forward_tiled(sat, Tensor(1, cfg.mem_dim).row(0), scores,
                                Tensor(3, cfg.kv_in_dim())),
               std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::fpga
