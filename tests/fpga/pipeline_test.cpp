#include "fpga/pipeline.hpp"

#include <gtest/gtest.h>

namespace tgnn::fpga {
namespace {

StageDurations uniform(double t) {
  StageDurations s;
  s.t.fill(t);
  return s;
}

TEST(Pipeline, SingleBatchIsSumOfStages) {
  PipelineScheduler sched(kPipelineStages);  // no serialization
  const auto res = sched.run({uniform(1.0)});
  EXPECT_DOUBLE_EQ(res.total_s, 9.0);
  EXPECT_DOUBLE_EQ(res.fill_s, 9.0);
}

TEST(Pipeline, SteadyStatePeriodIsMaxStage) {
  PipelineScheduler sched(kPipelineStages);
  StageDurations s = uniform(1.0);
  s.t[4] = 3.0;  // dominant stage
  const std::vector<StageDurations> batches(50, s);
  const auto res = sched.run(batches);
  // total ~ fill + (n-1) * Tp where Tp = 3.
  EXPECT_NEAR(res.total_s, res.fill_s + 49 * 3.0, 1e-9);
}

TEST(Pipeline, ThroughputNeverExceedsBottleneck) {
  PipelineScheduler sched(kPipelineStages);
  StageDurations s = uniform(0.5);
  s.t[7] = 2.0;
  const auto res = sched.run(std::vector<StageDurations>(100, s));
  const double period = (res.total_s - res.fill_s) / 99.0;
  EXPECT_GE(period, 2.0 - 1e-9);
}

TEST(Pipeline, SerializationOrdersUpdates) {
  // With serialization on stage 5, a long stage-5 in batch 0 delays batch 1
  // even if batch 1 reaches stage 5 early.
  StageDurations fast = uniform(0.1);
  StageDurations slow = uniform(0.1);
  slow.t[5] = 10.0;
  PipelineScheduler with(5), without(kPipelineStages);
  const std::vector<StageDurations> batches = {slow, fast};
  // Both orders serialize the same here because stage reservation already
  // orders same-stage executions; serialization matters across *lanes*,
  // exercised in the accelerator test. Here just check totals are sane.
  EXPECT_GE(with.run(batches).total_s, without.run(batches).total_s - 1e-12);
}

TEST(Pipeline, EmptyInput) {
  PipelineScheduler sched;
  const auto res = sched.run({});
  EXPECT_EQ(res.total_s, 0.0);
  EXPECT_TRUE(res.batch_finish_s.empty());
}

TEST(Pipeline, MonotoneFinishTimes) {
  PipelineScheduler sched;
  std::vector<StageDurations> batches;
  for (int i = 0; i < 10; ++i) batches.push_back(uniform(0.2 + 0.05 * i));
  const auto res = sched.run(batches);
  for (std::size_t i = 1; i < res.batch_finish_s.size(); ++i)
    EXPECT_GT(res.batch_finish_s[i], res.batch_finish_s[i - 1]);
}

}  // namespace
}  // namespace tgnn::fpga
