#include "fpga/resource_estimator.hpp"

#include <gtest/gtest.h>

namespace tgnn::fpga {
namespace {

core::ModelConfig np_m() { return core::np_config('M', 172, 0); }

TEST(ResourceEstimator, U200DesignFitsDevice) {
  const auto u = ResourceEstimator(u200_design(), np_m(), alveo_u200())
                     .estimate();
  EXPECT_TRUE(u.fits(alveo_u200()));
  EXPECT_GT(u.dsps, 0u);
  EXPECT_GT(u.luts, 0u);
}

TEST(ResourceEstimator, Zcu104DesignFitsDevice) {
  const auto u =
      ResourceEstimator(zcu104_design(), np_m(), zcu104()).estimate();
  EXPECT_TRUE(u.fits(zcu104()));
}

TEST(ResourceEstimator, U200DspsNearTableIV) {
  // Table IV reports 2512 DSPs on U200; the estimator must land in the
  // neighborhood (same architecture, calibrated counting rules).
  const auto u = ResourceEstimator(u200_design(), np_m(), alveo_u200())
                     .estimate();
  EXPECT_GT(u.dsps, 1800u);
  EXPECT_LT(u.dsps, 3300u);
}

TEST(ResourceEstimator, Zcu104DspsNearTableIV) {
  // Table IV reports 744 DSPs on ZCU104; pure datapath math for the Sg=4
  // design gives ~370 — the paper's figure includes HLS-generated glue our
  // estimator books to fabric. Accept the architectural count.
  const auto u =
      ResourceEstimator(zcu104_design(), np_m(), zcu104()).estimate();
  EXPECT_GT(u.dsps, 250u);
  EXPECT_LT(u.dsps, 1100u);
}

TEST(ResourceEstimator, DspsScaleWithCuCount) {
  auto one_cu = u200_design();
  one_cu.ncu = 1;
  const auto u1 =
      ResourceEstimator(one_cu, np_m(), alveo_u200()).dsps_per_cu();
  const auto full =
      ResourceEstimator(u200_design(), np_m(), alveo_u200()).estimate();
  EXPECT_EQ(full.dsps, 2 * u1);
}

TEST(ResourceEstimator, LutTablesOnlyForLutEncoder) {
  auto cos_cfg = np_m();
  cos_cfg.time_encoder = core::TimeEncoderKind::kCos;
  EXPECT_EQ(
      ResourceEstimator(u200_design(), cos_cfg, alveo_u200()).lut_table_bytes(),
      0u);
  const auto lut_bytes =
      ResourceEstimator(u200_design(), np_m(), alveo_u200()).lut_table_bytes();
  EXPECT_EQ(lut_bytes, 128u * (3u * 100u + 100u) * 4u);
}

TEST(ResourceEstimator, Zcu104UsesNoUram) {
  // Table IV: URAM 0 on ZCU104... the device HAS URAM blocks; the paper's
  // design simply doesn't map to them. Our estimator maps prefetch buffers
  // to URAM only when the board budget is nonzero, so ZCU104 lands in BRAM
  // when modelled without URAM. Verify the U200 build does use URAM.
  const auto u200_u =
      ResourceEstimator(u200_design(), np_m(), alveo_u200()).estimate();
  EXPECT_GT(u200_u.urams, 0u);
}

TEST(ResourceEstimator, FrequencyMatchesDesign) {
  const auto u = ResourceEstimator(u200_design(), np_m(), alveo_u200())
                     .estimate();
  EXPECT_DOUBLE_EQ(u.freq_mhz, 250.0);
}

}  // namespace
}  // namespace tgnn::fpga
