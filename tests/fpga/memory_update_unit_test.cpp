#include "fpga/memory_update_unit.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tgnn::fpga {
namespace {

core::ModelConfig small_cfg() {
  core::ModelConfig cfg;
  cfg.mem_dim = 10;
  cfg.time_dim = 6;
  cfg.emb_dim = 8;
  cfg.edge_dim = 5;
  return cfg;
}

// The key functional claim: the MAC-array-tiled GRU equals the reference
// nn::GruCell to float tolerance, for several array sizes Sg.
class MuuEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MuuEquivalence, TiledForwardMatchesReference) {
  const auto cfg = small_cfg();
  DesignConfig dc = zcu104_design();
  dc.sg = GetParam();
  MemoryUpdateUnit muu(dc, cfg);

  Rng rng(GetParam() * 31);
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  const Tensor x = Tensor::randn(7, cfg.gru_in_dim(), rng);
  const Tensor h = Tensor::randn(7, cfg.mem_dim, rng);

  const Tensor ref = gru.forward(x, h);
  std::uint64_t cycles = 0;
  const Tensor got = muu.forward_tiled(gru, x, h, &cycles);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-4f);
  EXPECT_GT(cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, MuuEquivalence,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(MemoryUpdateUnit, GateCyclesMatchTiling) {
  // Cycle formula must equal what the tiled execution actually counts for
  // the gate GEMMs (3 gates x (input + hidden) tiles per vertex).
  const auto cfg = small_cfg();
  DesignConfig dc = zcu104_design();
  dc.sg = 4;
  MemoryUpdateUnit muu(dc, cfg);
  Rng rng(5);
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  const std::size_t nv = 5;
  const Tensor x = Tensor::randn(nv, cfg.gru_in_dim(), rng);
  const Tensor h = Tensor::randn(nv, cfg.mem_dim, rng);
  std::uint64_t tiled_cycles = 0;
  muu.forward_tiled(gru, x, h, &tiled_cycles);
  // The tiled execution runs all three GEMM gates; the per-stage occupancy
  // is one gate. (Config uses the cos encoder, so the effective input
  // equals gru_in_dim.)
  EXPECT_EQ(muu.total_gate_cycles(nv), tiled_cycles);
  EXPECT_EQ(muu.gate_cycles(nv) * 3, tiled_cycles);
}

TEST(MemoryUpdateUnit, LutEncoderShrinksGateWork) {
  auto cfg = small_cfg();
  DesignConfig dc = zcu104_design();
  MemoryUpdateUnit cos_muu(dc, cfg);
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  MemoryUpdateUnit lut_muu(dc, cfg);
  EXPECT_LT(lut_muu.gate_cycles(10), cos_muu.gate_cycles(10));
  EXPECT_LT(lut_muu.encode_cycles(10), cos_muu.encode_cycles(10));
  EXPECT_EQ(lut_muu.encode_cycles(10), 10u);  // 1 cycle per vertex
}

TEST(MemoryUpdateUnit, CyclesScaleWithVertices) {
  const auto cfg = small_cfg();
  MemoryUpdateUnit muu(zcu104_design(), cfg);
  EXPECT_EQ(muu.gate_cycles(20), 2 * muu.gate_cycles(10));
}

TEST(MemoryUpdateUnit, BiggerArrayFewerCycles) {
  const auto cfg = small_cfg();
  DesignConfig small = zcu104_design();
  small.sg = 2;
  DesignConfig big = zcu104_design();
  big.sg = 8;
  EXPECT_GT(MemoryUpdateUnit(small, cfg).gate_cycles(10),
            MemoryUpdateUnit(big, cfg).gate_cycles(10));
}

TEST(MemoryUpdateUnit, RejectsRowMismatch) {
  const auto cfg = small_cfg();
  MemoryUpdateUnit muu(zcu104_design(), cfg);
  Rng rng(1);
  nn::GruCell gru("g", cfg.gru_in_dim(), cfg.mem_dim, rng);
  EXPECT_THROW(muu.forward_tiled(gru, Tensor(2, cfg.gru_in_dim()),
                                 Tensor(3, cfg.mem_dim)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::fpga
