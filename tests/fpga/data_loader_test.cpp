#include "fpga/data_loader.hpp"

#include <gtest/gtest.h>

#include "tgnn/config.hpp"

namespace tgnn::fpga {
namespace {

core::ModelConfig np_m() { return core::np_config('M', 172, 0); }

BatchShape shape_for(std::size_t nb, const core::ModelConfig& cfg) {
  BatchShape s;
  s.edges = nb;
  s.vertices = 2 * nb;
  s.neighbors = s.vertices * cfg.effective_neighbors();
  s.commits = s.vertices;
  return s;
}

TEST(DataLoader, TotalIsSumOfStages) {
  const auto cfg = np_m();
  DataLoader loader(cfg);
  const auto s = shape_for(16, cfg);
  const std::size_t sum =
      loader.load_edges(s).bytes + loader.load_vertex_state(s).bytes +
      loader.prefetch_neighbors(s).bytes + loader.writeback_state(s).bytes +
      loader.store_embeddings(s).bytes;
  EXPECT_EQ(loader.total_bytes(s), sum);
}

TEST(DataLoader, TrafficScalesLinearlyWithBatch) {
  const auto cfg = np_m();
  DataLoader loader(cfg);
  EXPECT_EQ(loader.total_bytes(shape_for(32, cfg)),
            2 * loader.total_bytes(shape_for(16, cfg)));
}

TEST(DataLoader, PruningCutsPrefetchTraffic) {
  auto full = np_m();
  full.prune_budget = 0;  // 10 neighbors
  auto pruned = np_m();   // 4 neighbors
  const auto sf = shape_for(16, full);
  const auto sp = shape_for(16, pruned);
  EXPECT_EQ(DataLoader(pruned).prefetch_neighbors(sp).bytes * 10,
            DataLoader(full).prefetch_neighbors(sf).bytes * 4);
}

TEST(DataLoader, UpdaterDedupCutsWritebackOnly) {
  const auto cfg = np_m();
  DataLoader loader(cfg);
  auto s = shape_for(16, cfg);
  const auto before = loader.writeback_state(s).bytes;
  const auto prefetch_before = loader.prefetch_neighbors(s).bytes;
  s.commits /= 2;  // Updater eliminated half the write-backs
  EXPECT_EQ(loader.writeback_state(s).bytes, before / 2);
  EXPECT_EQ(loader.prefetch_neighbors(s).bytes, prefetch_before);
}

TEST(DataLoader, BurstLengthsAreRowSizes) {
  const auto cfg = np_m();
  DataLoader loader(cfg);
  const auto s = shape_for(8, cfg);
  // Mail row = raw mail + timestamp; memory row = mem_dim floats.
  EXPECT_EQ(loader.load_vertex_state(s).burst,
            cfg.raw_mail_dim() * 4 + 4);
  EXPECT_EQ(loader.prefetch_neighbors(s).burst, cfg.mem_dim * 4);
  EXPECT_EQ(loader.store_embeddings(s).burst, cfg.emb_dim * 4);
}

TEST(DataLoader, NodeFeaturesAddPrefetchBytes) {
  auto gdelt = core::np_config('M', 0, 200);
  auto wiki = core::np_config('M', 172, 0);
  const auto sg = shape_for(16, gdelt);
  const auto sw = shape_for(16, wiki);
  // GDELT prefetches 200-d node features per neighbor vs 172-d edge
  // features: more bytes per neighbor.
  EXPECT_GT(DataLoader(gdelt).prefetch_neighbors(sg).bytes,
            DataLoader(wiki).prefetch_neighbors(sw).bytes);
}

TEST(Transfer, SecondsUsesBurstEfficiency) {
  DdrModel ddr(77.0);
  Transfer t{1 << 20, 64};
  EXPECT_DOUBLE_EQ(t.seconds(ddr), ddr.seconds_for(1 << 20, 64));
  // Refresh-charged variant is never faster.
  EXPECT_GE(t.seconds_at(ddr, 0.0), t.seconds(ddr));
}

}  // namespace
}  // namespace tgnn::fpga
