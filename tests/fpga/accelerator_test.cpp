#include "fpga/accelerator.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace tgnn::fpga {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 500;
  dcfg.edge_dim = 6;
  dcfg.seed = 21;
  return data::make_synthetic(dcfg);
}

core::ModelConfig sat_cfg(const data::Dataset& ds) {
  core::ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.prune_budget = 3;
  cfg.attention = core::AttentionKind::kSimplified;
  cfg.time_encoder = core::TimeEncoderKind::kLut;
  cfg.lut_bins = 16;
  return cfg;
}

core::TgnModel make_model(const data::Dataset& ds) {
  core::TgnModel model(sat_cfg(ds), 1);
  model.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  return model;
}

TEST(Accelerator, RejectsVanillaModel) {
  const auto ds = tiny_ds();
  auto cfg = sat_cfg(ds);
  cfg.attention = core::AttentionKind::kVanilla;
  cfg.time_encoder = core::TimeEncoderKind::kCos;
  core::TgnModel vanilla(cfg, 1);
  EXPECT_THROW(Accelerator(vanilla, ds, zcu104_design(), zcu104()),
               std::invalid_argument);
}

TEST(Accelerator, FunctionalOutputEqualsReferenceEngine) {
  // The accelerator's embeddings must be bit-identical to the reference
  // inference engine's — the paper's "same accuracy on FPGA" claim.
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  core::InferenceEngine ref(model, ds, true);
  for (const auto& b : ds.graph.fixed_size_batches(0, 300, 60)) {
    const auto out = acc.process_batch(b);
    const auto expect = ref.process_batch(b);
    ASSERT_EQ(out.functional.nodes.size(), expect.nodes.size());
    EXPECT_EQ(ops::max_abs_diff(out.functional.embeddings, expect.embeddings),
              0.0f);
  }
}

TEST(Accelerator, LatencyPositiveAndGrowsWithBatch) {
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  const double t_small = acc.simulate_batch_seconds(ds.graph.edges({0, 20}));
  const double t_large =
      acc.simulate_batch_seconds(ds.graph.edges({20, 220}));
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_large, t_small);
}

TEST(Accelerator, U200FasterThanZcu104) {
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator u200_acc(model, ds, u200_design(), alveo_u200());
  Accelerator zcu_acc(model, ds, zcu104_design(), zcu104());
  const auto edges = ds.graph.edges({0, 200});
  EXPECT_LT(u200_acc.simulate_batch_seconds(edges),
            zcu_acc.simulate_batch_seconds(edges));
}

TEST(Accelerator, RunAccumulatesSummary) {
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  const auto sum = acc.run({0, 300}, 60);
  EXPECT_EQ(sum.num_edges, 300u);
  EXPECT_EQ(sum.batch_latency_s.size(), 5u);
  EXPECT_GT(sum.throughput_eps(), 0.0);
}

TEST(Accelerator, UpdaterEliminatesRedundantWrites) {
  // Repeat-heavy synthetic traffic: the same vertices recur within batches,
  // so the Updater cache must eliminate some write-backs.
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  acc.run({0, 400}, 100);
  EXPECT_GT(acc.updater_stats().writes, 0u);
  EXPECT_GT(acc.updater_stats().invalidations, 0u);
}

TEST(Accelerator, ResetClearsState) {
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  const auto first = acc.process_batch({0, 50});
  acc.process_batch({50, 100});
  acc.reset();
  const auto again = acc.process_batch({0, 50});
  EXPECT_EQ(ops::max_abs_diff(first.functional.embeddings,
                              again.functional.embeddings),
            0.0f);
}

TEST(Accelerator, PruningReducesSimulatedLatency) {
  const auto ds = tiny_ds();
  auto cfg_l = sat_cfg(ds);
  cfg_l.prune_budget = 5;
  auto cfg_s = sat_cfg(ds);
  cfg_s.prune_budget = 1;
  core::TgnModel ml(cfg_l, 1), ms(cfg_s, 1);
  ml.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  ms.fit_lut(core::collect_dt_samples(ds, {0, ds.train_end}));
  Accelerator al(ml, ds, zcu104_design(), zcu104());
  Accelerator as(ms, ds, zcu104_design(), zcu104());
  al.warmup({0, 300});
  as.warmup({0, 300});
  const auto edges = ds.graph.edges({300, 500});
  EXPECT_LT(as.simulate_batch_seconds(edges),
            al.simulate_batch_seconds(edges));
}

TEST(Accelerator, WindowedRunSkipsEmptyWindows) {
  const auto ds = tiny_ds();
  const auto model = make_model(ds);
  Accelerator acc(model, ds, zcu104_design(), zcu104());
  const auto sum = acc.run_windows({0, 200}, 3600.0);
  EXPECT_EQ(sum.num_edges, 200u);
  for (double l : sum.batch_latency_s) EXPECT_GT(l, 0.0);
}

}  // namespace
}  // namespace tgnn::fpga
