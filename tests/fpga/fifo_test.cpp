#include "fpga/fifo.hpp"

#include <gtest/gtest.h>

namespace tgnn::fpga {
namespace {

TEST(Fifo, FifoOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.push(3));
  EXPECT_EQ(f.pop().value(), 1);
  EXPECT_EQ(f.pop().value(), 2);
  EXPECT_EQ(f.pop().value(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(Fifo, CapacityBlocksPush) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.push(3));
  f.pop();
  EXPECT_TRUE(f.push(3));
}

TEST(Fifo, HighWaterTracksPeak) {
  Fifo<int> f(8);
  f.push(1);
  f.push(2);
  f.push(3);
  f.pop();
  f.pop();
  EXPECT_EQ(f.high_water(), 3u);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Fifo, ClearEmpties) {
  Fifo<int> f(2);
  f.push(1);
  f.clear();
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(Fifo<int>(0), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn::fpga
