#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tgnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const float v = r.uniform(-2.5f, 3.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 3.5f);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.uniform_int(10)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(42);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, ParetoRespectsMinimumAndIsHeavyTailed) {
  Rng r(42);
  const int n = 20000;
  double median_acc = 0.0, mean = 0.0;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = r.pareto(1.0, 1.2);
    EXPECT_GE(xs[i], 1.0);
    mean += xs[i] / n;
  }
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  median_acc = xs[n / 2];
  // Heavy tail: mean far above median (Fig. 1 power-law shape).
  EXPECT_GT(mean, 2.0 * median_acc);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(42);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsZeroTotal) {
  Rng r(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(r.categorical(w), std::invalid_argument);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng r(42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = r.zipf(100, 1.4);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20 * std::max(1, counts[50]));
}

TEST(Rng, BernoulliProbability) {
  Rng r(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace tgnn
