#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tgnn {
namespace {

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyRange) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, WorksWithFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace tgnn
