#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tgnn {
namespace {

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Table, PrintContainsAllCells) {
  Table t({"col1", "column_two"});
  t.add_row({"x", "y"});
  t.add_row({"longer_cell", "z"});
  std::ostringstream os;
  t.print(os, "My Title");
  const std::string s = os.str();
  EXPECT_NE(s.find("My Title"), std::string::npos);
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("longer_cell"), std::string::npos);
  EXPECT_NE(s.find("column_two"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "with,comma"});
  const std::string path = "/tmp/tgnn_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,\"with,comma\"");
  std::remove(path.c_str());
}

TEST(Table, CsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir/x.csv"));
}

}  // namespace
}  // namespace tgnn
