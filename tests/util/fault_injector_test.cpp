#include "util/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace tgnn::util {
namespace {

/// Install an injector for one test and guarantee removal on every exit
/// path — a leaked global injector would poison later tests in the binary.
struct InjectorGuard {
  explicit InjectorGuard(std::uint64_t seed) : fi(seed) {
    set_fault_injector(&fi);
  }
  ~InjectorGuard() { set_fault_injector(nullptr); }
  FaultInjector fi;
};

/// Which of the first n checks at `site` fault, as a bitmap.
std::vector<bool> fault_pattern(FaultInjector& fi, FaultSite site,
                                std::size_t n) {
  std::vector<bool> hit(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      fi.check(site);
    } catch (const InjectedFault& e) {
      hit[i] = true;
      EXPECT_EQ(e.site(), site);
      EXPECT_EQ(e.ordinal(), i);
    }
  }
  return hit;
}

TEST(FaultInjector, UnarmedAndNullInjectorAreNoops) {
  // No global injector: the probe is a single load and never throws.
  ASSERT_EQ(fault_injector(), nullptr);
  EXPECT_NO_THROW(fault_point(FaultSite::kStageExec));

  // Installed but unarmed: checks pass and are not even counted.
  InjectorGuard g(1);
  EXPECT_NO_THROW(fault_point(FaultSite::kStageExec));
  EXPECT_NO_THROW(fault_point(FaultSite::kSpillRead));
  EXPECT_EQ(g.fi.injected(FaultSite::kStageExec), 0u);
}

TEST(FaultInjector, SameSeedSameSiteSamePattern) {
  // The determinism contract: whether check k faults depends only on
  // (seed, site, k) — two injectors with the same seed agree check by
  // check, which is what makes the CI fault matrix reproducible.
  FaultPlan plan;
  plan.probability = 0.4;
  const std::size_t kChecks = 200;

  FaultInjector a(42), b(42), c(43);
  a.arm(FaultSite::kStageExec, plan);
  b.arm(FaultSite::kStageExec, plan);
  c.arm(FaultSite::kStageExec, plan);
  const auto pa = fault_pattern(a, FaultSite::kStageExec, kChecks);
  const auto pb = fault_pattern(b, FaultSite::kStageExec, kChecks);
  const auto pc = fault_pattern(c, FaultSite::kStageExec, kChecks);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);  // a different seed draws a different pattern

  // p = 0.4 over 200 draws: the count lands well inside [40, 120].
  const auto hits =
      static_cast<std::size_t>(std::count(pa.begin(), pa.end(), true));
  EXPECT_GT(hits, 40u);
  EXPECT_LT(hits, 120u);
  EXPECT_EQ(a.injected(FaultSite::kStageExec), hits);
  EXPECT_EQ(a.checks(FaultSite::kStageExec), kChecks);
}

TEST(FaultInjector, SitesKeepIndependentCounters) {
  // Arming one site never perturbs another — per-site ordinals are what
  // keeps injection stable under cross-site interleaving.
  FaultInjector fi(7);
  FaultPlan always;  // probability 1
  fi.arm(FaultSite::kSpillRead, always);
  EXPECT_NO_THROW(fi.check(FaultSite::kSpillWrite));
  EXPECT_THROW(fi.check(FaultSite::kSpillRead), InjectedFault);
  EXPECT_EQ(fi.checks(FaultSite::kSpillWrite), 1u);
  EXPECT_EQ(fi.injected(FaultSite::kSpillWrite), 0u);
  EXPECT_EQ(fi.injected(FaultSite::kSpillRead), 1u);
}

TEST(FaultInjector, MaxFaultsBoundsInjection) {
  FaultInjector fi(5);
  FaultPlan plan;  // probability 1
  plan.max_faults = 3;
  fi.arm(FaultSite::kChannelHandoff, plan);
  std::size_t thrown = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      fi.check(FaultSite::kChannelHandoff);
    } catch (const InjectedFault&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3u);
  EXPECT_EQ(fi.injected(FaultSite::kChannelHandoff), 3u);
  EXPECT_EQ(fi.checks(FaultSite::kChannelHandoff), 10u);
}

TEST(FaultInjector, SkipFirstPlacesFaultMidStream) {
  FaultInjector fi(5);
  FaultPlan plan;  // probability 1
  plan.skip_first = 4;
  plan.max_faults = 1;
  fi.arm(FaultSite::kStageExec, plan);
  const auto hit = fault_pattern(fi, FaultSite::kStageExec, 8);
  const std::vector<bool> want = {false, false, false, false,
                                  true,  false, false, false};
  EXPECT_EQ(hit, want);
}

TEST(FaultInjector, TransientFlagRidesTheException) {
  FaultInjector fi(9);
  FaultPlan plan;
  plan.transient = false;
  fi.arm(FaultSite::kSpillOpen, plan);
  try {
    fi.check(FaultSite::kSpillOpen);
    FAIL() << "armed check did not throw";
  } catch (const InjectedFault& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.site(), FaultSite::kSpillOpen);
    EXPECT_NE(std::string(e.what()).find(fault_site_name(e.site())),
              std::string::npos);
  }
}

TEST(FaultInjector, DisarmStopsInjection) {
  InjectorGuard g(3);
  g.fi.arm(FaultSite::kStageExec, FaultPlan{});
  EXPECT_THROW(fault_point(FaultSite::kStageExec), InjectedFault);
  g.fi.disarm(FaultSite::kStageExec);
  EXPECT_NO_THROW(fault_point(FaultSite::kStageExec));
}

TEST(FaultInjector, SiteNamesAreDistinct) {
  for (std::size_t i = 0; i < kNumFaultSites; ++i)
    for (std::size_t j = i + 1; j < kNumFaultSites; ++j)
      EXPECT_STRNE(fault_site_name(static_cast<FaultSite>(i)),
                   fault_site_name(static_cast<FaultSite>(j)));
}

}  // namespace
}  // namespace tgnn::util
