// Contract tests for the TGNN_CHECK / TGNN_DCHECK layer itself: a failed
// check must abort with a message naming the file and the violated
// expression (the property every validator in the tree relies on), a
// passing check must be a true no-op, and an unchecked-build TGNN_DCHECK
// must not even evaluate its condition.
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace tgnn::util {
namespace {

TEST(Check, PassingCheckIsANoOp) {
  TGNN_CHECK(1 + 1 == 2);
  TGNN_CHECK(true, "never shown");
  SUCCEED();
}

TEST(CheckDeathTest, FailedCheckAbortsNamingTheExpression) {
  EXPECT_DEATH(TGNN_CHECK(2 + 2 == 5), "TGNN_CHECK failed");
  EXPECT_DEATH(TGNN_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
  EXPECT_DEATH(TGNN_CHECK(2 + 2 == 5), "check_test");
}

TEST(CheckDeathTest, FailedCheckCarriesTheMessage) {
  EXPECT_DEATH(TGNN_CHECK(false, "queue went back in time"),
               "queue went back in time");
  const int got = 7;
  EXPECT_DEATH(TGNN_CHECK(got == 3, "got " + std::to_string(got)), "got 7");
}

TEST(Check, MessageIsLazilyEvaluated) {
  // The message expression of a PASSING check must never run — validators
  // build strings there and sit on hot paths.
  bool evaluated = false;
  auto expensive = [&] {
    evaluated = true;
    return std::string("msg");
  };
  TGNN_CHECK(true, expensive());
  EXPECT_FALSE(evaluated);
}

TEST(CheckDeathTest, DcheckFiresExactlyInCheckedBuilds) {
  if constexpr (kCheckedBuild) {
    EXPECT_DEATH(TGNN_DCHECK(false, "debug contract"), "debug contract");
  } else {
    TGNN_DCHECK(false, "debug contract");  // compiled, not evaluated
    SUCCEED();
  }
}

TEST(Check, UncheckedDcheckDoesNotEvaluateItsCondition) {
  int calls = 0;
  auto touch = [&] {
    ++calls;
    return true;
  };
  TGNN_DCHECK(touch());
  EXPECT_EQ(calls, kCheckedBuild ? 1 : 0);
}

}  // namespace
}  // namespace tgnn::util
