#include "util/argparse.hpp"

#include <gtest/gtest.h>

namespace tgnn {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& storage) {
  std::vector<char*> out;
  for (auto& s : storage) out.push_back(s.data());
  return out;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p;
  p.add_flag("x", "7", "help");
  std::vector<std::string> args = {"prog"};
  auto argv = make_argv(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("x"), 7);
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p;
  p.add_flag("rate", "0", "help");
  std::vector<std::string> args = {"prog", "--rate=2.5"};
  auto argv = make_argv(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.5);
}

TEST(ArgParser, SpaceSyntax) {
  ArgParser p;
  p.add_flag("name", "", "help");
  std::vector<std::string> args = {"prog", "--name", "hello"};
  auto argv = make_argv(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get("name"), "hello");
}

TEST(ArgParser, BareFlagIsTrue) {
  ArgParser p;
  p.add_flag("verbose", "false", "help");
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = make_argv(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser p;
  p.add_flag("x", "1", "help");
  std::vector<std::string> args = {"prog", "--nope=3"};
  auto argv = make_argv(args);
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, UnknownGetThrows) {
  ArgParser p;
  EXPECT_THROW(p.get("missing"), std::invalid_argument);
}

}  // namespace
}  // namespace tgnn
