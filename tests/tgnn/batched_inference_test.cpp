// Engine-level acceptance of the batch-level inference pipeline: the
// batched gather -> batched-GEMM -> scatter GNN stage must be BIT-identical
// to the legacy per-row path — across attention variants, ragged batch
// sizes (1, prime, large), pruning, zero-degree vertices (cold extras), and
// every CPU execution mode (serial, OpenMP cpu-mt, sharded-cpu lanes).
#include <gtest/gtest.h>

#include <omp.h>

#include <thread>

#include "baselines/cpu_runner.hpp"
#include "data/synthetic.hpp"
#include "runtime/backend.hpp"
#include "tensor/ops.hpp"
#include "tgnn/decoder.hpp"
#include "tgnn/inference.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

data::Dataset tiny_ds(std::size_t edge_dim = 6) {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 600;
  dcfg.edge_dim = edge_dim;
  dcfg.seed = 33;
  return data::make_synthetic(dcfg);
}

ModelConfig small_cfg(AttentionKind attn, std::size_t edge_dim,
                      std::size_t prune_budget = 0) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = edge_dim;
  cfg.num_neighbors = 5;
  cfg.prune_budget = prune_budget;
  cfg.attention = attn;
  return cfg;
}

/// Stream `ds` through a batched and a per-row engine in lock-step and
/// require bit-identical embeddings on every batch. `extras_every` > 0
/// adds never-seen (zero-degree) extra vertices to each batch.
void expect_lockstep_identical(const data::Dataset& ds, const TgnModel& model,
                               std::size_t batch_size,
                               std::size_t extras_every = 0) {
  InferenceEngine batched(model, ds);
  InferenceEngine per_row(model, ds);
  per_row.set_batched_gnn(false);
  ASSERT_TRUE(batched.batched_gnn());
  ASSERT_FALSE(per_row.batched_gnn());

  std::vector<graph::NodeId> extras;
  for (const auto& b :
       ds.graph.fixed_size_batches(0, ds.graph.num_edges(), batch_size)) {
    extras.clear();
    if (extras_every > 0) {
      // Cold vertices: valid ids that never appear in the edge stream, so
      // they have no history — zero-degree, empty mailbox, zero memory.
      extras.push_back(ds.graph.num_nodes() - 1);
      extras.push_back(ds.graph.num_nodes() - 2);
    }
    const auto a = batched.process_batch(b, extras);
    const auto r = per_row.process_batch(b, extras);
    ASSERT_EQ(a.nodes, r.nodes);
    ASSERT_EQ(a.embeddings.rows(), r.embeddings.rows());
    EXPECT_EQ(ops::max_abs_diff(a.embeddings, r.embeddings), 0.0f)
        << "batch [" << b.begin << "," << b.end << ")";
  }
}

TEST(BatchedInference, VanillaBitIdenticalAcrossBatchSizes) {
  const auto ds = tiny_ds();
  const TgnModel model(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 1);
  for (const std::size_t batch : {1u, 7u, 97u})  // ragged: 1, primes
    expect_lockstep_identical(ds, model, batch);
}

TEST(BatchedInference, SimplifiedWithPruningBitIdentical) {
  const auto ds = tiny_ds();
  const TgnModel model(
      small_cfg(AttentionKind::kSimplified, ds.edge_dim(), /*prune=*/3), 1);
  for (const std::size_t batch : {1u, 13u, 80u})
    expect_lockstep_identical(ds, model, batch);
}

TEST(BatchedInference, ZeroDegreeExtrasBitIdentical) {
  // Cold negative-sample vertices exercise the empty-segment path (and the
  // per-row neighborless path) on every batch, for both variants.
  const auto ds = tiny_ds();
  for (const auto kind : {AttentionKind::kVanilla, AttentionKind::kSimplified}) {
    const TgnModel model(small_cfg(kind, ds.edge_dim()), 1);
    expect_lockstep_identical(ds, model, 50, /*extras_every=*/1);
  }
}

TEST(BatchedInference, NoEdgeFeaturesBitIdentical) {
  // edge_dim == 0 shifts every kv gather offset; keep both paths honest.
  const auto ds = tiny_ds(/*edge_dim=*/0);
  for (const auto kind : {AttentionKind::kVanilla, AttentionKind::kSimplified}) {
    const TgnModel model(small_cfg(kind, ds.edge_dim()), 1);
    expect_lockstep_identical(ds, model, 60);
  }
}

TEST(BatchedInference, CpuMtMatchesSerialPerRow) {
  // cpu-mt splits the batch matrices across OpenMP threads (gather loops +
  // GEMM row panels); bits must not move relative to the serial per-row
  // engine.
  const auto ds = tiny_ds();
  const TgnModel model(
      small_cfg(AttentionKind::kSimplified, ds.edge_dim(), /*prune=*/3), 1);

  baselines::CpuRunner mt(model, ds, /*threads=*/2);
  ASSERT_TRUE(mt.engine().batched_gnn());
  InferenceEngine per_row(model, ds);
  per_row.set_batched_gnn(false);

  mt.bind_threads();
  for (const auto& b : ds.graph.fixed_size_batches(0, 400, 37)) {
    const auto a = mt.engine().process_batch(b);
    const auto r = per_row.process_batch(b);
    ASSERT_EQ(a.nodes, r.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.embeddings, r.embeddings), 0.0f);
  }
  omp_set_num_threads(std::max(1, static_cast<int>(
                                      std::thread::hardware_concurrency())));
}

TEST(BatchedInference, ShardedCpuMatchesSerialPerRow) {
  const auto ds = tiny_ds();
  const TgnModel model(
      small_cfg(AttentionKind::kSimplified, ds.edge_dim(), /*prune=*/3), 1);

  runtime::BackendOptions opts;
  opts.threads = 2;
  opts.shards = 8;
  auto sharded = runtime::make_backend("sharded-cpu", model, ds, opts);
  InferenceEngine per_row(model, ds);
  per_row.set_batched_gnn(false);

  for (const auto& b : ds.graph.fixed_size_batches(0, 400, 53)) {
    const auto a = sharded->process_batch(b);
    const auto r = per_row.process_batch(b);
    ASSERT_EQ(a.functional.nodes, r.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.functional.embeddings, r.embeddings), 0.0f);
  }
}

TEST(BatchedInference, EvaluateApMatchesPerRowEngine) {
  // The batched decoder scoring in evaluate_ap must reproduce the per-row
  // engine's AP exactly (same embeddings, same pair scores, same order).
  const auto ds = tiny_ds();
  const TgnModel model(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 1);
  Rng drng(9);
  const Decoder dec(model.config(), drng);

  InferenceEngine batched(model, ds);
  InferenceEngine per_row(model, ds);
  per_row.set_batched_gnn(false);
  Rng rng_a(42), rng_b(42);
  const double ap_a =
      batched.evaluate_ap({0, ds.graph.num_edges()}, dec, 64, rng_a);
  const double ap_b =
      per_row.evaluate_ap({0, ds.graph.num_edges()}, dec, 64, rng_b);
  EXPECT_EQ(ap_a, ap_b);
}

TEST(BatchedInference, WorkspaceGrowthSurvivesRaggedBatches) {
  // Batches of wildly varying size reuse one workspace; after the first
  // large batch, smaller and equal-sized ones must not reallocate the
  // batched staging matrices (pointers stable = allocation-free steady
  // state).
  const auto ds = tiny_ds();
  const TgnModel model(small_cfg(AttentionKind::kVanilla, ds.edge_dim()), 1);
  InferenceEngine eng(model, ds);
  eng.reserve_workspace(128);
  (void)eng.process_batch({0, 128});
  (void)eng.process_batch({128, 129});   // batch of 1
  (void)eng.process_batch({129, 256});
  SUCCEED();  // exercised: growth policy + ragged reuse without UB (ASan/
              // UBSan builds catch violations; functional bits are covered
              // by the lock-step tests above)
}

}  // namespace
}  // namespace tgnn::core
