#include "tgnn/decoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tgnn::core {
namespace {

ModelConfig cfg_small() {
  ModelConfig cfg;
  cfg.emb_dim = 4;
  cfg.decoder_hidden = 6;
  return cfg;
}

TEST(Decoder, BuildPairLayout) {
  const std::vector<float> hu = {1, 2}, hv = {3, 4};
  std::vector<float> out(6);
  Decoder::build_pair(hu, hv, out);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 2.0f);
  EXPECT_EQ(out[2], 3.0f);
  EXPECT_EQ(out[3], 4.0f);
  EXPECT_EQ(out[4], 3.0f);   // 1*3
  EXPECT_EQ(out[5], 8.0f);   // 2*4
}

TEST(Decoder, BuildPairRejectsBadSizes) {
  std::vector<float> hu = {1, 2}, hv = {3};
  std::vector<float> out(6);
  EXPECT_THROW(Decoder::build_pair(hu, hv, out), std::invalid_argument);
}

TEST(Decoder, ScoreMatchesForward) {
  Rng rng(1);
  const auto cfg = cfg_small();
  Decoder dec(cfg, rng);
  const Tensor hu = Tensor::randn(1, 4, rng);
  const Tensor hv = Tensor::randn(1, 4, rng);
  Tensor x(1, 12);
  Decoder::build_pair(hu.row(0), hv.row(0), x.row(0));
  EXPECT_NEAR(dec.score(hu.row(0), hv.row(0)), dec.forward(x)(0, 0), 1e-6);
}

TEST(Decoder, RoutePairGradMatchesFiniteDifference) {
  Rng rng(2);
  const auto cfg = cfg_small();
  Decoder dec(cfg, rng);
  Tensor hu = Tensor::randn(1, 4, rng);
  Tensor hv = Tensor::randn(1, 4, rng);

  // loss = score(hu, hv); analytic grad via backward + route_pair_grad.
  Tensor x(1, 12);
  Decoder::build_pair(hu.row(0), hv.row(0), x.row(0));
  Decoder::Cache cache;
  dec.forward(x, &cache);
  Tensor dlogit(1, 1);
  dlogit(0, 0) = 1.0f;
  const Tensor dx = dec.backward(cache, dlogit);
  Tensor dhu(1, 4), dhv(1, 4);
  Decoder::route_pair_grad(dx.row(0), hu.row(0), hv.row(0), dhu.row(0),
                           dhv.row(0));

  const double eps = 1e-3;
  for (std::size_t i = 0; i < 4; ++i) {
    Tensor p = hu, m = hu;
    p[i] += static_cast<float>(eps);
    m[i] -= static_cast<float>(eps);
    const double numeric =
        (dec.score(p.row(0), hv.row(0)) - dec.score(m.row(0), hv.row(0))) /
        (2 * eps);
    EXPECT_NEAR(numeric, dhu[i], 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    Tensor p = hv, m = hv;
    p[i] += static_cast<float>(eps);
    m[i] -= static_cast<float>(eps);
    const double numeric =
        (dec.score(hu.row(0), p.row(0)) - dec.score(hu.row(0), m.row(0))) /
        (2 * eps);
    EXPECT_NEAR(numeric, dhv[i], 2e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(Decoder, BatchForwardShape) {
  Rng rng(3);
  Decoder dec(cfg_small(), rng);
  const Tensor x = Tensor::randn(7, 12, rng);
  const Tensor y = dec.forward(x);
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 1u);
}

}  // namespace
}  // namespace tgnn::core
