#include "tgnn/metrics.hpp"

#include <gtest/gtest.h>

namespace tgnn::core {
namespace {

TEST(AveragePrecision, PerfectRankingIsOne) {
  std::vector<ScoredSample> s = {
      {0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(average_precision(s), 1.0);
}

TEST(AveragePrecision, WorstRankingKnownValue) {
  // Positives at ranks 3 and 4 of 4: AP = (1/3 + 2/4) / 2 = 5/12.
  std::vector<ScoredSample> s = {
      {0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}};
  EXPECT_NEAR(average_precision(s), 5.0 / 12.0, 1e-12);
}

TEST(AveragePrecision, MixedKnownValue) {
  // Ranked: pos, neg, pos -> AP = (1/1 + 2/3)/2 = 5/6.
  std::vector<ScoredSample> s = {{0.9, true}, {0.5, false}, {0.4, true}};
  EXPECT_NEAR(average_precision(s), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, AllNegativesIsZero) {
  std::vector<ScoredSample> s = {{0.9, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(average_precision(s), 0.0);
}

TEST(AveragePrecision, EmptyThrows) {
  std::vector<ScoredSample> s;
  EXPECT_THROW(average_precision(s), std::invalid_argument);
}

TEST(AveragePrecision, InvariantToScoreMonotoneTransform) {
  std::vector<ScoredSample> a = {
      {0.9, true}, {0.5, false}, {0.4, true}, {0.2, false}};
  std::vector<ScoredSample> b = a;
  for (auto& s : b) s.score = s.score * 100.0 - 3.0;
  EXPECT_DOUBLE_EQ(average_precision(a), average_precision(b));
}

TEST(AucRoc, PerfectSeparationIsOne) {
  std::vector<ScoredSample> s = {{0.9, true}, {0.8, true}, {0.2, false}};
  EXPECT_DOUBLE_EQ(auc_roc(s), 1.0);
}

TEST(AucRoc, RandomTiesGiveHalf) {
  std::vector<ScoredSample> s = {{0.5, true}, {0.5, false}, {0.5, true},
                                 {0.5, false}};
  EXPECT_DOUBLE_EQ(auc_roc(s), 0.5);
}

TEST(AucRoc, ReversedIsZero) {
  std::vector<ScoredSample> s = {{0.9, false}, {0.1, true}};
  EXPECT_DOUBLE_EQ(auc_roc(s), 0.0);
}

TEST(AucRoc, DegenerateClassesGiveHalf) {
  std::vector<ScoredSample> s = {{0.9, true}, {0.8, true}};
  EXPECT_DOUBLE_EQ(auc_roc(s), 0.5);
}

}  // namespace
}  // namespace tgnn::core
