#include "tgnn/complexity.hpp"

#include <gtest/gtest.h>

namespace tgnn::core {
namespace {

// These tests pin the Table I / Table II *trends* as properties of the
// complexity meter: SAT halves GNN compute, LUT removes the time-encoding
// share, pruning is near-linear, and the GNN dominates the baseline.

TEST(Complexity, GnnDominatesBaseline) {
  const auto r = analyze(baseline_config(172, 0));
  EXPECT_GT(r.gnn.macs / r.total_macs(), 0.8);  // paper: 93.6%
}

TEST(Complexity, MemoryAccessesDominatedByMemoryAndGnnParts) {
  const auto r = analyze(baseline_config(172, 0));
  EXPECT_GT((r.memory.mems + r.gnn.mems) / r.total_mems(), 0.85);
}

TEST(Complexity, SatRoughlyHalvesTotalMacs) {
  auto cfg = baseline_config(172, 0);
  const double base = analyze(cfg).total_macs();
  cfg.attention = AttentionKind::kSimplified;
  const double sat = analyze(cfg).total_macs();
  // Paper: 53.1%. Accept the neighborhood.
  EXPECT_GT(sat / base, 0.35);
  EXPECT_LT(sat / base, 0.65);
}

TEST(Complexity, LutRemovesTimeEncodingShare) {
  auto cfg = baseline_config(172, 0);
  cfg.attention = AttentionKind::kSimplified;
  const double sat = analyze(cfg).total_macs();
  cfg.time_encoder = TimeEncoderKind::kLut;
  const auto lut_rep = analyze(cfg);
  const double lut = lut_rep.total_macs();
  // Paper: 53.1% -> 37.0% of baseline, i.e. ~30% off the SAT model.
  EXPECT_LT(lut, sat);
  EXPECT_GT((sat - lut) / sat, 0.15);
  // LUT also shrinks the GRU (pre-fused Phi x W products).
  auto cfg_sat = baseline_config(172, 0);
  cfg_sat.attention = AttentionKind::kSimplified;
  EXPECT_LT(lut_rep.gru_macs(), analyze(cfg_sat).gru_macs());
}

class PruningLinear : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PruningLinear, GnnMacsScaleWithBudget) {
  const std::size_t budget = GetParam();
  auto full = np_config('L', 172, 0);
  full.prune_budget = 0;  // all 10 neighbors
  auto pruned = full;
  pruned.prune_budget = budget;
  const auto rf = analyze(full);
  const auto rp = analyze(pruned);
  const double expect_ratio = static_cast<double>(budget) / 10.0;
  const double got_ratio = rp.gnn.macs / rf.gnn.macs;
  // Near-linear: per-neighbor work scales exactly; small fixed terms allowed.
  EXPECT_NEAR(got_ratio, expect_ratio, 0.12);
}

TEST_P(PruningLinear, MemAccessesDropWithBudget) {
  const std::size_t budget = GetParam();
  auto full = np_config('L', 172, 0);
  full.prune_budget = 0;
  auto pruned = full;
  pruned.prune_budget = budget;
  EXPECT_LT(analyze(pruned).total_mems(), analyze(full).total_mems());
}

INSTANTIATE_TEST_SUITE_P(Budgets, PruningLinear, ::testing::Values(2, 4, 6, 8));

TEST(Complexity, TableIIRelativeLadderIsMonotone) {
  // Accumulated optimizations must monotonically decrease both MACs & MEMs.
  const auto ladder = presets(172, 0);
  double prev_macs = 1e18, prev_mems = 1e18;
  for (const auto& rung : ladder) {
    const auto r = analyze(rung.config);
    EXPECT_LE(r.total_macs(), prev_macs) << rung.label;
    EXPECT_LE(r.total_mems(), prev_mems + 1e-9) << rung.label;
    prev_macs = r.total_macs();
    prev_mems = r.total_mems();
  }
}

TEST(Complexity, GdeltIncludesNodeFeatureWork) {
  const auto with_nodes = analyze(baseline_config(0, 200));
  const auto without = analyze(baseline_config(0, 0));
  EXPECT_GT(with_nodes.gnn.macs, without.gnn.macs);
  EXPECT_GT(with_nodes.gnn.mems, without.gnn.mems);
}

TEST(Complexity, BytesPerEmbeddingIs4xMems) {
  const auto cfg = baseline_config(172, 0);
  EXPECT_DOUBLE_EQ(bytes_per_embedding(cfg), analyze(cfg).total_mems() * 4.0);
}

TEST(Complexity, SampleAndUpdatePartsHaveNoMacs) {
  const auto r = analyze(baseline_config(172, 0));
  EXPECT_EQ(r.sample.macs, 0.0);
  EXPECT_EQ(r.update.macs, 0.0);
}

}  // namespace
}  // namespace tgnn::core
