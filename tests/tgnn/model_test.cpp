#include "tgnn/model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tgnn::core {
namespace {

TEST(ModelConfig, DerivedDims) {
  ModelConfig cfg;
  cfg.mem_dim = 100;
  cfg.time_dim = 100;
  cfg.edge_dim = 172;
  EXPECT_EQ(cfg.raw_mail_dim(), 372u);
  EXPECT_EQ(cfg.gru_in_dim(), 472u);
  EXPECT_EQ(cfg.kv_in_dim(), 372u);
  EXPECT_EQ(cfg.q_in_dim(), 200u);
}

TEST(ModelConfig, EffectiveNeighbors) {
  ModelConfig cfg;
  cfg.num_neighbors = 10;
  EXPECT_EQ(cfg.effective_neighbors(), 10u);
  EXPECT_FALSE(cfg.uses_pruning());
  cfg.prune_budget = 4;
  EXPECT_EQ(cfg.effective_neighbors(), 4u);
  EXPECT_TRUE(cfg.uses_pruning());
  cfg.prune_budget = 15;  // larger than mr: no pruning
  EXPECT_EQ(cfg.effective_neighbors(), 10u);
}

TEST(ModelConfig, PresetsLadderMatchesTableII) {
  const auto ladder = presets(172, 0);
  ASSERT_EQ(ladder.size(), 6u);
  EXPECT_EQ(ladder[0].label, "Baseline");
  EXPECT_EQ(ladder[0].config.attention, AttentionKind::kVanilla);
  EXPECT_EQ(ladder[1].label, "+SAT");
  EXPECT_EQ(ladder[1].config.attention, AttentionKind::kSimplified);
  EXPECT_EQ(ladder[1].config.time_encoder, TimeEncoderKind::kCos);
  EXPECT_EQ(ladder[2].label, "+LUT");
  EXPECT_EQ(ladder[2].config.time_encoder, TimeEncoderKind::kLut);
  EXPECT_EQ(ladder[3].config.prune_budget, 6u);
  EXPECT_EQ(ladder[4].config.prune_budget, 4u);
  EXPECT_EQ(ladder[5].config.prune_budget, 2u);
}

TEST(ModelConfig, NpConfigValidation) {
  EXPECT_EQ(np_config('L', 172, 0).prune_budget, 6u);
  EXPECT_THROW(np_config('X', 172, 0), std::invalid_argument);
}

TEST(TgnModel, ConstructsVariants) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = 3;
  TgnModel vanilla(cfg, 1);
  EXPECT_NE(vanilla.vanilla(), nullptr);
  EXPECT_EQ(vanilla.simplified(), nullptr);
  EXPECT_EQ(vanilla.lut_encoder(), nullptr);

  cfg.attention = AttentionKind::kSimplified;
  cfg.time_encoder = TimeEncoderKind::kLut;
  TgnModel student(cfg, 2);
  EXPECT_EQ(student.vanilla(), nullptr);
  EXPECT_NE(student.simplified(), nullptr);
  EXPECT_NE(student.lut_encoder(), nullptr);
}

TEST(TgnModel, ParameterRegistryNonEmptyAndUnique) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = 3;
  TgnModel model(cfg, 1);
  const auto& params = model.params().params();
  EXPECT_GT(params.size(), 10u);
  std::set<const nn::Parameter*> uniq(params.begin(), params.end());
  EXPECT_EQ(uniq.size(), params.size());
  EXPECT_GT(model.params().count(), 100u);
}

TEST(TgnModel, FPrimeWithoutNodeFeaturesIsIdentity) {
  ModelConfig cfg;
  cfg.mem_dim = 4;
  cfg.time_dim = 2;
  cfg.emb_dim = 3;
  cfg.edge_dim = 2;
  TgnModel model(cfg, 1);
  const std::vector<float> s = {1, 2, 3, 4};
  std::vector<float> out(4);
  model.f_prime(s, {}, out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], s[i]);
}

TEST(TgnModel, FPrimeAddsNodeProjection) {
  ModelConfig cfg;
  cfg.mem_dim = 3;
  cfg.time_dim = 2;
  cfg.emb_dim = 3;
  cfg.edge_dim = 0;
  cfg.node_dim = 2;
  TgnModel model(cfg, 1);
  ASSERT_NE(model.node_proj(), nullptr);
  const std::vector<float> s = {1, 1, 1};
  const std::vector<float> f = {0.5f, -0.5f};
  std::vector<float> out(3);
  model.f_prime(s, f, out);
  // out = s + W_s f + b_s.
  const auto& ws = *model.node_proj();
  for (int o = 0; o < 3; ++o) {
    const float expect = 1.0f + ws.b.value[o] + ws.w.value(o, 0) * 0.5f -
                         ws.w.value(o, 1) * 0.5f;
    EXPECT_NEAR(out[o], expect, 1e-5f);
  }
}

TEST(TgnModel, FitLutIsNoOpForCos) {
  ModelConfig cfg;
  cfg.mem_dim = 4;
  cfg.time_dim = 2;
  cfg.emb_dim = 3;
  cfg.edge_dim = 1;
  TgnModel model(cfg, 1);
  EXPECT_NO_THROW(model.fit_lut({1.0, 2.0}));
}

TEST(TgnModel, DeterministicInit) {
  ModelConfig cfg;
  cfg.mem_dim = 4;
  cfg.time_dim = 2;
  cfg.emb_dim = 3;
  cfg.edge_dim = 1;
  TgnModel a(cfg, 7), b(cfg, 7);
  EXPECT_EQ(a.updater().gru.w_ir.value(0, 0), b.updater().gru.w_ir.value(0, 0));
  TgnModel c(cfg, 8);
  EXPECT_NE(a.updater().gru.w_ir.value(0, 0), c.updater().gru.w_ir.value(0, 0));
}

}  // namespace
}  // namespace tgnn::core
