#include "tgnn/message.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tgnn::core {
namespace {

TEST(Message, RawMailLayout) {
  const std::vector<float> s_self = {1, 2}, s_other = {3, 4}, fe = {5};
  std::vector<float> out(5);
  build_raw_mail(s_self, s_other, fe, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4, 5}));
}

TEST(Message, RawMailWithoutEdgeFeatures) {
  const std::vector<float> s_self = {1, 2}, s_other = {3, 4};
  std::vector<float> out(4);
  build_raw_mail(s_self, s_other, {}, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Message, RawMailRejectsSizeMismatch) {
  const std::vector<float> a = {1}, b = {2};
  std::vector<float> out(3);
  EXPECT_THROW(build_raw_mail(a, b, {}, out), std::invalid_argument);
}

TEST(Message, GruInputAppendsTimeEncoding) {
  const std::vector<float> raw = {1, 2, 3}, phi = {9, 8};
  std::vector<float> out(5);
  build_gru_input(raw, phi, out);
  EXPECT_EQ(out, (std::vector<float>{1, 2, 3, 9, 8}));
}

TEST(Message, MirroredMessagesSwapEndpoints) {
  // Eq. 4/5: m_i = s_i||s_j||fe, m_j = s_j||s_i||fe.
  const std::vector<float> si = {1}, sj = {2}, fe = {7};
  std::vector<float> mi(3), mj(3);
  build_raw_mail(si, sj, fe, mi);
  build_raw_mail(sj, si, fe, mj);
  EXPECT_EQ(mi[0], mj[1]);
  EXPECT_EQ(mi[1], mj[0]);
  EXPECT_EQ(mi[2], mj[2]);
}

}  // namespace
}  // namespace tgnn::core
