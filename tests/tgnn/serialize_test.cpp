#include "tgnn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"
#include "tgnn/inference.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 10;
  dcfg.num_edges = 300;
  dcfg.edge_dim = 6;
  dcfg.seed = 3;
  return data::make_synthetic(dcfg);
}

ModelConfig student_cfg(const data::Dataset& ds) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 4;
  cfg.attention = AttentionKind::kSimplified;
  cfg.time_encoder = TimeEncoderKind::kLut;
  cfg.lut_bins = 8;
  cfg.prune_budget = 2;
  return cfg;
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(std::string("/tmp/") + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Serialize, RoundTripRestoresInferenceExactly) {
  const auto ds = tiny_ds();
  const auto cfg = student_cfg(ds);
  TgnModel a(cfg, 1);
  a.fit_lut(collect_dt_samples(ds, ds.train_range()));
  Rng drng(2);
  Decoder dec_a(cfg, drng);

  TempFile ckpt("tgnn_ckpt_roundtrip.bin");
  ASSERT_TRUE(save_checkpoint(ckpt.path(), a, &dec_a));

  // A differently-seeded model must produce different embeddings ...
  TgnModel b(cfg, 99);
  b.fit_lut({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
  Rng drng2(77);
  Decoder dec_b(cfg, drng2);
  // (First batch is skipped for the difference check: cold state makes all
  // models output exactly zero there.)
  InferenceEngine ea(a, ds, true), eb(b, ds, true);
  ea.process_batch({0, 100});
  eb.process_batch({0, 100});
  const auto ra0 = ea.process_batch({100, 200});
  const auto rb0 = eb.process_batch({100, 200});
  EXPECT_GT(ops::max_abs_diff(ra0.embeddings, rb0.embeddings), 0.0f);

  // ... until the checkpoint is loaded, after which they match bit-for-bit.
  ASSERT_TRUE(load_checkpoint(ckpt.path(), b, &dec_b));
  ea.reset();
  eb.reset();
  for (const auto& r : ds.graph.fixed_size_batches(0, 200, 50)) {
    const auto ra = ea.process_batch(r);
    const auto rb = eb.process_batch(r);
    EXPECT_EQ(ops::max_abs_diff(ra.embeddings, rb.embeddings), 0.0f);
  }
  // Decoder weights too.
  EXPECT_EQ(ops::max_abs_diff(dec_a.l1.w.value, dec_b.l1.w.value), 0.0f);
  // And the LUT edges.
  ASSERT_TRUE(b.lut_encoder()->fitted());
  EXPECT_EQ(a.lut_encoder()->edges(), b.lut_encoder()->edges());
}

TEST(Serialize, MissingFileReturnsFalse) {
  const auto ds = tiny_ds();
  TgnModel m(student_cfg(ds), 1);
  EXPECT_FALSE(load_checkpoint("/tmp/definitely_not_there.bin", m));
}

TEST(Serialize, MismatchedConfigThrows) {
  const auto ds = tiny_ds();
  const auto cfg = student_cfg(ds);
  TgnModel a(cfg, 1);
  a.fit_lut(collect_dt_samples(ds, ds.train_range()));
  TempFile ckpt("tgnn_ckpt_mismatch.bin");
  ASSERT_TRUE(save_checkpoint(ckpt.path(), a));

  auto other = cfg;
  other.mem_dim = 10;  // different shapes
  TgnModel b(other, 1);
  EXPECT_THROW(load_checkpoint(ckpt.path(), b), std::runtime_error);

  auto vanilla = cfg;
  vanilla.attention = AttentionKind::kVanilla;
  vanilla.time_encoder = TimeEncoderKind::kCos;
  TgnModel c(vanilla, 1);
  EXPECT_THROW(load_checkpoint(ckpt.path(), c), std::runtime_error);
}

TEST(Serialize, CorruptFileThrows) {
  TempFile ckpt("tgnn_ckpt_corrupt.bin");
  {
    std::FILE* f = std::fopen(ckpt.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  const auto ds = tiny_ds();
  TgnModel m(student_cfg(ds), 1);
  EXPECT_THROW(load_checkpoint(ckpt.path(), m), std::runtime_error);
}

TEST(Serialize, VanillaModelWithoutLutSavesEmptyEdgeSection) {
  const auto ds = tiny_ds();
  ModelConfig cfg = student_cfg(ds);
  cfg.attention = AttentionKind::kVanilla;
  cfg.time_encoder = TimeEncoderKind::kCos;
  TgnModel a(cfg, 1), b(cfg, 2);
  TempFile ckpt("tgnn_ckpt_vanilla.bin");
  ASSERT_TRUE(save_checkpoint(ckpt.path(), a));
  ASSERT_TRUE(load_checkpoint(ckpt.path(), b));
  EXPECT_EQ(ops::max_abs_diff(a.updater().gru.w_ir.value,
                              b.updater().gru.w_ir.value),
            0.0f);
}

}  // namespace
}  // namespace tgnn::core
