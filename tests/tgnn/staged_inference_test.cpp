// The staged-execution contract of InferenceEngine: driving a batch stage
// by stage over a caller-owned StageContext is bit-identical to
// process_batch (which is itself the four stages on the engine's own
// context), state evolves identically, contexts are reusable, and
// process_batch / staged driving may interleave between batches on one
// engine. This is the engine-level half of what the pipelined
// ServingEngine builds on (tests/runtime/pipelined_serving_test.cpp is the
// serving-level half).
#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.hpp"
#include "tensor/ops.hpp"
#include "tgnn/inference.hpp"

namespace tgnn::core {
namespace {

data::Dataset staged_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 120;
  dcfg.num_items = 90;
  dcfg.num_edges = 900;
  dcfg.edge_dim = 5;
  dcfg.seed = 17;
  return data::make_synthetic(dcfg);
}

TgnModel staged_model(const data::Dataset& ds, AttentionKind kind) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.num_neighbors = 5;
  cfg.prune_budget = 3;
  cfg.attention = kind;
  return TgnModel(cfg, 3);
}

/// Drive one batch through the staged API on `ctx`.
BatchResult run_staged(InferenceEngine& eng, StageContext& ctx,
                       const graph::BatchRange& r,
                       std::span<const graph::NodeId> extras = {}) {
  eng.stage_begin(ctx, r, extras);
  eng.stage_run(Stage::kMemoryUpdate, ctx);
  eng.stage_run(Stage::kNeighborGather, ctx);
  eng.stage_run(Stage::kGnnCompute, ctx);
  eng.stage_run(Stage::kDecode, ctx);
  return eng.stage_finish(ctx);
}

class StagedInference : public ::testing::TestWithParam<AttentionKind> {};

TEST_P(StagedInference, StageByStageMatchesProcessBatch) {
  // Two fresh engines over the same model: one streams through
  // process_batch, the other through the staged API on one reused
  // caller-owned context. Every batch's embeddings — and therefore the
  // state both leave behind — must match bit for bit.
  const auto ds = staged_ds();
  const auto model = staged_model(ds, GetParam());
  InferenceEngine serial(model, ds);
  InferenceEngine staged(model, ds);
  StageContext ctx;
  staged.reserve_context(ctx, 64);

  for (const auto& r : ds.graph.fixed_size_batches(0, 600, 64)) {
    const auto a = serial.process_batch(r);
    const auto b = run_staged(staged, ctx, r);
    ASSERT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.embeddings, b.embeddings), 0.0f);
    EXPECT_GT(ctx.parts.total(), 0.0);  // stages are individually timed
  }
}

TEST_P(StagedInference, InterleavesWithProcessBatchBetweenBatches) {
  // One engine alternating drivers batch by batch equals pure
  // process_batch streaming — the staged API shares the engine's state,
  // not its serial context.
  const auto ds = staged_ds();
  const auto model = staged_model(ds, GetParam());
  InferenceEngine serial(model, ds);
  InferenceEngine mixed(model, ds);
  StageContext ctx;

  std::size_t i = 0;
  for (const auto& r : ds.graph.fixed_size_batches(0, 600, 50)) {
    const auto a = serial.process_batch(r);
    const auto b = (i++ % 2 == 0) ? mixed.process_batch(r)
                                  : run_staged(mixed, ctx, r);
    ASSERT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.embeddings, b.embeddings), 0.0f);
  }
}

TEST_P(StagedInference, ExtrasEmbeddedWithoutCommittingState) {
  // Negative-sample extras flow through the staged path exactly as through
  // process_batch: embedded, not committed.
  const auto ds = staged_ds();
  const auto model = staged_model(ds, GetParam());
  InferenceEngine serial(model, ds);
  InferenceEngine staged(model, ds);
  StageContext ctx;
  const std::vector<graph::NodeId> extras = {3, 7, 11};

  for (const auto& r : ds.graph.fixed_size_batches(0, 300, 60)) {
    const auto a = serial.process_batch(r, extras);
    const auto b = run_staged(staged, ctx, r, extras);
    ASSERT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(ops::max_abs_diff(a.embeddings, b.embeddings), 0.0f);
    for (graph::NodeId v : extras) ASSERT_TRUE(b.index.count(v) > 0);
  }
  // After identical streams, the next batch (no extras) still matches: the
  // extras never leaked into either engine's state.
  const graph::BatchRange next{300, 360};
  const auto a = serial.process_batch(next);
  const auto b = run_staged(staged, ctx, next);
  ASSERT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(ops::max_abs_diff(a.embeddings, b.embeddings), 0.0f);
}

TEST_P(StagedInference, ReadFootprintCoversSampledNeighbors) {
  // The hazard-admission query: after any prefix, the footprint of the
  // next batch contains every neighbor the stages would read for it.
  const auto ds = staged_ds();
  const auto model = staged_model(ds, GetParam());
  InferenceEngine eng(model, ds);
  for (const auto& r : ds.graph.fixed_size_batches(0, 400, 50))
    eng.process_batch(r);

  const graph::BatchRange next{400, 450};
  std::vector<graph::NodeId> fp;
  eng.read_footprint(next, fp);
  EXPECT_TRUE(std::is_sorted(fp.begin(), fp.end()));
  EXPECT_TRUE(std::adjacent_find(fp.begin(), fp.end()) == fp.end());

  std::vector<graph::NeighborHit> hits;
  StageContext probe;
  eng.stage_begin(probe, next);
  for (std::size_t i = 0; i < probe.res.nodes.size(); ++i) {
    eng.state().neighbors_into(probe.res.nodes[i], probe.ws.t_event[i],
                               model.config().num_neighbors, hits);
    for (const auto& h : hits)
      EXPECT_TRUE(std::binary_search(fp.begin(), fp.end(), h.node))
          << "missing neighbor " << h.node;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, StagedInference,
                         ::testing::Values(AttentionKind::kVanilla,
                                           AttentionKind::kSimplified));

TEST(BatchWorkspaceGrow, GrowToNeverShrinks) {
  // The one shared high-water growth rule: grows to the requested size,
  // keeps the high-water mark on smaller requests.
  std::vector<int> v;
  BatchWorkspace::grow_to(v, 5);
  EXPECT_EQ(v.size(), 5u);
  BatchWorkspace::grow_to(v, 3);
  EXPECT_EQ(v.size(), 5u);
  BatchWorkspace::grow_to(v, 9);
  EXPECT_EQ(v.size(), 9u);
}

}  // namespace
}  // namespace tgnn::core
