#include "tgnn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace tgnn::core {
namespace {

data::Dataset tiny_ds() {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 15;
  dcfg.num_edges = 600;
  dcfg.edge_dim = 6;
  dcfg.seed = 7;
  return data::make_synthetic(dcfg);
}

ModelConfig tiny_cfg(const data::Dataset& ds, bool student) {
  ModelConfig cfg;
  cfg.mem_dim = 8;
  cfg.time_dim = 4;
  cfg.emb_dim = 6;
  cfg.edge_dim = ds.edge_dim();
  cfg.node_dim = ds.node_dim();
  cfg.num_neighbors = 5;
  cfg.decoder_hidden = 8;
  if (student) {
    cfg.attention = AttentionKind::kSimplified;
    cfg.time_encoder = TimeEncoderKind::kLut;
    cfg.lut_bins = 16;
    cfg.prune_budget = 3;
  }
  return cfg;
}

TEST(Trainer, LossDecreasesOverEpochs) {
  const auto ds = tiny_ds();
  const auto cfg = tiny_cfg(ds, false);
  TgnModel model(cfg, 1);
  Rng drng(2);
  Decoder dec(cfg, drng);
  TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 60;
  Trainer trainer(model, dec, ds, opts);
  const auto stats = trainer.train();
  ASSERT_EQ(stats.epoch_bce.size(), 4u);
  for (double l : stats.epoch_bce) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LT(stats.epoch_bce.back(), stats.epoch_bce.front());
}

TEST(Trainer, LearnsBetterThanChance) {
  const auto ds = tiny_ds();
  const auto cfg = tiny_cfg(ds, false);
  TgnModel model(cfg, 1);
  Rng drng(2);
  Decoder dec(cfg, drng);
  TrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 60;
  const auto fit = fit_and_eval(model, dec, ds, opts);
  EXPECT_GT(fit.test_ap, 0.55);  // chance is ~0.5 with 1:1 negatives
}

TEST(Trainer, StudentTrainsWithDistillation) {
  const auto ds = tiny_ds();
  // Teacher first (short).
  const auto tcfg = tiny_cfg(ds, false);
  TgnModel teacher(tcfg, 1);
  Rng drng(2);
  Decoder tdec(tcfg, drng);
  TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = 60;
  Trainer(teacher, tdec, ds, topts).train();

  const auto scfg = tiny_cfg(ds, true);
  TgnModel student(scfg, 3);
  Decoder sdec(scfg, drng);
  TrainOptions sopts = topts;
  sopts.teacher = &teacher;
  Trainer strainer(student, sdec, ds, sopts);
  const auto stats = strainer.train();
  // Distillation loss must be non-zero (it is being applied) and finite.
  EXPECT_GT(stats.epoch_distill.back(), 0.0);
  EXPECT_TRUE(std::isfinite(stats.epoch_distill.back()));
}

TEST(Trainer, DistillationRequiresSimplifiedStudent) {
  const auto ds = tiny_ds();
  const auto cfg = tiny_cfg(ds, false);
  TgnModel teacher(cfg, 1), vanilla_student(cfg, 2);
  Rng drng(2);
  Decoder dec(cfg, drng);
  TrainOptions opts;
  opts.teacher = &teacher;
  EXPECT_THROW(Trainer(vanilla_student, dec, ds, opts),
               std::invalid_argument);
}

TEST(Trainer, DistillationRequiresVanillaTeacher) {
  const auto ds = tiny_ds();
  TgnModel sat_teacher(tiny_cfg(ds, true), 1);
  TgnModel student(tiny_cfg(ds, true), 2);
  Rng drng(2);
  Decoder dec(tiny_cfg(ds, true), drng);
  TrainOptions opts;
  opts.teacher = &sat_teacher;
  EXPECT_THROW(Trainer(student, dec, ds, opts), std::invalid_argument);
}

TEST(Trainer, FitsLutAutomatically) {
  const auto ds = tiny_ds();
  const auto cfg = tiny_cfg(ds, true);
  TgnModel model(cfg, 1);
  EXPECT_FALSE(model.lut_encoder()->fitted());
  Rng drng(2);
  Decoder dec(cfg, drng);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 100;
  Trainer trainer(model, dec, ds, opts);
  EXPECT_TRUE(model.lut_encoder()->fitted());
}

TEST(Trainer, GdeltLikeNodeFeaturesTrain) {
  data::SyntheticConfig dcfg;
  dcfg.num_users = 30;
  dcfg.num_items = 10;
  dcfg.num_edges = 300;
  dcfg.edge_dim = 0;
  dcfg.node_dim = 8;
  dcfg.seed = 11;
  const auto ds = data::make_synthetic(dcfg);
  auto cfg = tiny_cfg(ds, false);
  cfg.edge_dim = 0;
  cfg.node_dim = 8;
  TgnModel model(cfg, 1);
  Rng drng(2);
  Decoder dec(cfg, drng);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 50;
  Trainer trainer(model, dec, ds, opts);
  const auto stats = trainer.train();
  EXPECT_TRUE(std::isfinite(stats.epoch_bce.back()));
}

}  // namespace
}  // namespace tgnn::core
